#include "beamline/fft.hpp"

#include <cassert>
#include <cmath>

namespace coe::beamline {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Iterative radix-2 Cooley-Tukey, in place, size must be a power of two.
void fft_radix2(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z for arbitrary n, built on the radix-2 kernel.
void fft_bluestein(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  const std::size_t m = next_pow2(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = sign * M_PI * static_cast<double>(k) *
                       static_cast<double>(k) / static_cast<double>(n);
    chirp[k] = cplx(std::cos(ang), std::sin(ang));
  }
  std::vector<cplx> x(m, cplx(0, 0)), y(m, cplx(0, 0));
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = cplx(1, 0);
  for (std::size_t k = 1; k < n; ++k) {
    y[k] = y[m - k] = std::conj(chirp[k]);
  }
  fft_radix2(x, false);
  fft_radix2(y, false);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  fft_radix2(x, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * inv_m * chirp[k];
}

}  // namespace

void fft(core::ExecContext& ctx, std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n <= 1) return;
  const double dn = static_cast<double>(n);
  ctx.record_kernel({5.0 * dn * std::log2(dn), 2.0 * 16.0 * dn});
  if (is_pow2(n)) {
    fft_radix2(a, inverse);
  } else {
    fft_bluestein(a, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / dn;
    for (auto& v : a) v *= inv_n;
  }
}

std::vector<cplx> dft_reference(const std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<cplx> out(n, cplx(0, 0));
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI * static_cast<double>(k) *
                         static_cast<double>(j) / static_cast<double>(n);
      out[k] += a[j] * cplx(std::cos(ang), std::sin(ang));
    }
  }
  if (inverse) {
    for (auto& v : out) v /= static_cast<double>(n);
  }
  return out;
}

void transpose(core::ExecContext& ctx, const std::vector<cplx>& in,
               std::vector<cplx>& out, std::size_t rows, std::size_t cols,
               TransposeKind kind) {
  assert(in.size() >= rows * cols);
  out.resize(rows * cols);
  const double total = static_cast<double>(rows * cols);
  if (kind == TransposeKind::Naive) {
    // Strided writes miss on every element: ~2 full traversals, one
    // uncoalesced (charge 3x the tiled traffic, as NVProf shows for the
    // RAJA transpose).
    ctx.record_kernel({0.0, 3.0 * 16.0 * total});
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        out[c * rows + r] = in[r * cols + c];
      }
    }
  } else {
    ctx.record_kernel({0.0, 2.0 * 16.0 * total});
    constexpr std::size_t kTile = 32;
    for (std::size_t rb = 0; rb < rows; rb += kTile) {
      for (std::size_t cb = 0; cb < cols; cb += kTile) {
        const std::size_t rmax = std::min(rows, rb + kTile);
        const std::size_t cmax = std::min(cols, cb + kTile);
        for (std::size_t r = rb; r < rmax; ++r) {
          for (std::size_t c = cb; c < cmax; ++c) {
            out[c * rows + r] = in[r * cols + c];
          }
        }
      }
    }
  }
}

void fft2d(core::ExecContext& ctx, std::vector<cplx>& a, std::size_t n,
           bool inverse, TransposeKind kind) {
  assert(a.size() >= n * n);
  std::vector<cplx> row(n), tmp;
  auto rows_pass = [&](std::vector<cplx>& data) {
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(r * n),
                data.begin() + static_cast<std::ptrdiff_t>((r + 1) * n),
                row.begin());
      fft(ctx, row, inverse);
      std::copy(row.begin(), row.end(),
                data.begin() + static_cast<std::ptrdiff_t>(r * n));
    }
  };
  rows_pass(a);
  transpose(ctx, a, tmp, n, n, kind);
  rows_pass(tmp);
  transpose(ctx, tmp, a, n, n, kind);
}

}  // namespace coe::beamline
