#pragma once
// Complex FFT built from scratch (the cuFFT substitute for VBL, Section
// 4.11): iterative radix-2 Cooley-Tukey for power-of-two sizes, Bluestein's
// chirp-z for everything else, and a row-column 2D transform whose
// transpose step is pluggable (the paper's RAJA-vs-native-CUDA transpose
// comparison).

#include <complex>
#include <cstddef>
#include <vector>

#include "core/exec.hpp"

namespace coe::beamline {

using cplx = std::complex<double>;

/// In-place forward/inverse FFT of arbitrary length (inverse includes the
/// 1/n normalization). Charges ~5 n log2 n flops to the context.
void fft(core::ExecContext& ctx, std::vector<cplx>& a, bool inverse);

/// Out-of-place naive DFT (O(n^2)) -- test oracle only.
std::vector<cplx> dft_reference(const std::vector<cplx>& a, bool inverse);

enum class TransposeKind { Naive, Tiled };

/// Square/rectangular transpose of row-major [rows x cols] into
/// [cols x rows]. Tiled variant blocks for locality (32x32 tiles), the
/// "native CUDA transpose"; naive strides the full matrix, the "RAJA
/// transpose" that lost (Section 4.11).
void transpose(core::ExecContext& ctx, const std::vector<cplx>& in,
               std::vector<cplx>& out, std::size_t rows, std::size_t cols,
               TransposeKind kind);

/// 2D FFT on row-major [n x n] data via row FFTs + transpose + row FFTs +
/// transpose.
void fft2d(core::ExecContext& ctx, std::vector<cplx>& a, std::size_t n,
           bool inverse, TransposeKind kind = TransposeKind::Tiled);

}  // namespace coe::beamline
