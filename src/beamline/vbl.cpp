#include "beamline/vbl.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace coe::beamline {

Beamline::Beamline(core::ExecContext& ctx, VblConfig cfg)
    : ctx_(&ctx), cfg_(cfg), e_(cfg.n * cfg.n, cplx(0, 0)), kx2_(cfg.n) {
  const double dk = 2.0 * M_PI / cfg_.physical_size;
  for (std::size_t m = 0; m < cfg_.n; ++m) {
    const double f = m <= cfg_.n / 2
                         ? static_cast<double>(m)
                         : static_cast<double>(m) -
                               static_cast<double>(cfg_.n);
    kx2_[m] = (f * dk) * (f * dk);
  }
}

void Beamline::set_gaussian(double w0, double amplitude) {
  const std::size_t n = cfg_.n;
  const double h = cfg_.physical_size / static_cast<double>(n);
  const double c = 0.5 * cfg_.physical_size;
  ctx_->forall2(n, n, {10.0, 16.0}, [&](std::size_t i, std::size_t j) {
    const double x = h * (static_cast<double>(i) + 0.5) - c;
    const double y = h * (static_cast<double>(j) + 0.5) - c;
    e_[i * n + j] = amplitude * std::exp(-(x * x + y * y) / (w0 * w0));
  });
  z_ = 0.0;
}

void Beamline::add_phase_defect(double cx, double cy, double radius,
                                double phase) {
  const std::size_t n = cfg_.n;
  const double h = cfg_.physical_size / static_cast<double>(n);
  ctx_->forall2(n, n, {12.0, 32.0}, [&](std::size_t i, std::size_t j) {
    const double x = h * (static_cast<double>(i) + 0.5);
    const double y = h * (static_cast<double>(j) + 0.5);
    const double dx = x - cx, dy = y - cy;
    if (dx * dx + dy * dy <= radius * radius) {
      e_[i * n + j] *= cplx(std::cos(phase), std::sin(phase));
    }
  });
}

void Beamline::step() {
  const std::size_t n = cfg_.n;
  const double k0 = 2.0 * M_PI / cfg_.wavelength;
  // Diffraction half: E = IFFT[ exp(-i k_perp^2 dz / (2 k0)) FFT[E] ].
  fft2d(*ctx_, e_, n, /*inverse=*/false, cfg_.transpose);
  ctx_->forall2(n, n, {14.0, 40.0}, [&](std::size_t i, std::size_t j) {
    const double k2 = kx2_[i] + kx2_[j];
    const double ang = -k2 * cfg_.dz / (2.0 * k0);
    e_[i * n + j] *= cplx(std::cos(ang), std::sin(ang));
  });
  fft2d(*ctx_, e_, n, /*inverse=*/true, cfg_.transpose);
  // Amplifier: saturating gain (the "full amplifier step").
  if (cfg_.gain0 != 0.0) {
    ctx_->forall2(n, n, {12.0, 32.0}, [&](std::size_t i, std::size_t j) {
      const double inten = std::norm(e_[i * n + j]);
      const double g = cfg_.gain0 / (1.0 + inten / cfg_.i_sat);
      e_[i * n + j] *= std::exp(0.5 * g * cfg_.dz);
    });
  }
  z_ += cfg_.dz;
}

void Beamline::propagate(double distance) {
  const auto steps = static_cast<std::size_t>(
      std::ceil(distance / cfg_.dz - 1e-12));
  for (std::size_t s = 0; s < steps; ++s) step();
}

double Beamline::intensity(std::size_t i, std::size_t j) const {
  return std::norm(e_[i * cfg_.n + j]);
}

double Beamline::total_power() const {
  double p = 0.0;
  for (const auto& v : e_) p += std::norm(v);
  const double h = cfg_.physical_size / static_cast<double>(cfg_.n);
  return p * h * h;
}

double Beamline::beam_width() const {
  const std::size_t n = cfg_.n;
  const double h = cfg_.physical_size / static_cast<double>(n);
  const double c = 0.5 * cfg_.physical_size;
  double p = 0.0, r2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double x = h * (static_cast<double>(i) + 0.5) - c;
      const double y = h * (static_cast<double>(j) + 0.5) - c;
      const double inten = std::norm(e_[i * n + j]);
      p += inten;
      r2 += inten * (x * x + y * y);
    }
  }
  return p > 0.0 ? std::sqrt(r2 / p) : 0.0;
}

double Beamline::fluence_contrast() const {
  const std::size_t n = cfg_.n;
  double peak = 0.0, mean = 0.0;
  std::size_t count = 0;
  for (std::size_t i = n / 4; i < 3 * n / 4; ++i) {
    for (std::size_t j = n / 4; j < 3 * n / 4; ++j) {
      const double inten = std::norm(e_[i * n + j]);
      peak = std::max(peak, inten);
      mean += inten;
      ++count;
    }
  }
  mean /= static_cast<double>(count);
  return mean > 0.0 ? peak / mean : 0.0;
}

TransferPath gpudirect_h2d() {
  // Low-latency path, modest sustained bandwidth.
  return {"GPUDirect H2D", 1.6e-6, 5.0e9};
}

TransferPath gpudirect_d2h() {
  // The D2H direction sustains much less bandwidth, so staged copies win
  // already at a few hundred bytes (Section 4.11).
  return {"GPUDirect D2H", 1.2e-6, 0.35e9};
}

TransferPath cudamemcpy_path() {
  // Staged copy: higher setup cost, full NVLink bandwidth.
  return {"cudaMemcpy", 2.4e-6, 33.0e9};
}

double crossover_bytes(const TransferPath& a, const TransferPath& b) {
  // Solve a.latency + x/a.bw = b.latency + x/b.bw.
  const double inv_diff = 1.0 / a.bandwidth - 1.0 / b.bandwidth;
  if (inv_diff <= 0.0) return std::numeric_limits<double>::infinity();
  return (b.latency - a.latency) / inv_diff;
}

}  // namespace coe::beamline
