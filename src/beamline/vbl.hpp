#pragma once
// The VBL laser-propagation mini-app (Section 4.11): split-step paraxial
// beam propagation -- discrete FFTs for the diffraction half-step plus
// pointwise field updates (the "triply-nested loops" parallelized with
// RAJA), a saturating amplifier gain step, and phase-plate defects whose
// downstream fluence ripples reproduce the Figure 9 experiment.

#include <complex>
#include <vector>

#include "beamline/fft.hpp"

namespace coe::beamline {

struct VblConfig {
  std::size_t n = 64;          ///< grid points per side (power of two)
  double physical_size = 0.01; ///< aperture side, meters
  double wavelength = 1.053e-6;///< meters (NIF-like)
  double dz = 0.1;             ///< propagation step, meters
  double gain0 = 0.0;          ///< small-signal gain per meter
  double i_sat = 1.0;          ///< saturation intensity
  TransposeKind transpose = TransposeKind::Tiled;
};

class Beamline {
 public:
  Beamline(core::ExecContext& ctx, VblConfig cfg);

  std::size_t n() const { return cfg_.n; }
  double z() const { return z_; }

  /// Gaussian beam of 1/e^2 intensity radius w0 centered in the aperture.
  void set_gaussian(double w0, double amplitude = 1.0);

  /// Circular phase defect (radius in meters, phase in radians) stamped
  /// onto the current field -- the "150 micron phase defects" of Fig. 9.
  void add_phase_defect(double cx, double cy, double radius, double phase);

  /// One split-step: diffraction (FFT - phase - IFFT) then amplifier gain.
  void step();

  /// Propagate a total distance (multiple steps).
  void propagate(double distance);

  double intensity(std::size_t i, std::size_t j) const;
  /// Total power sum |E|^2 dA.
  double total_power() const;
  /// RMS intensity radius (beam width measure).
  double beam_width() const;
  /// Peak-to-mean fluence contrast in the central half of the aperture --
  /// the ripple metric for the phase-defect experiment.
  double fluence_contrast() const;

  const std::vector<cplx>& field() const { return e_; }

 private:
  core::ExecContext* ctx_;
  VblConfig cfg_;
  std::vector<cplx> e_;
  std::vector<double> kx2_;  ///< squared transverse wavenumbers per index
  double z_ = 0.0;
};

/// Host<->device transfer paths for the GPUDirect-vs-cudaMemcpy study.
struct TransferPath {
  const char* name;
  double latency;    ///< seconds
  double bandwidth;  ///< bytes/second

  double time(double bytes) const { return latency + bytes / bandwidth; }
};

TransferPath gpudirect_h2d();
TransferPath gpudirect_d2h();
TransferPath cudamemcpy_path();

/// Transfer size at which path b becomes faster than path a (infinity if
/// never).
double crossover_bytes(const TransferPath& a, const TransferPath& b);

}  // namespace coe::beamline
