#include "amg/struct_solver.hpp"

#include <cassert>
#include <cmath>

namespace coe::amg {

namespace {

// Ghosted row-major indexing helpers: arrays are (nx+2) x (ny+2), interior
// indices run 1..nx / 1..ny, ghosts hold the zero Dirichlet boundary.
inline std::size_t gidx(std::size_t i, std::size_t j, std::size_t ny) {
  return i * (ny + 2) + j;
}

}  // namespace

StructSolver::StructSolver(std::size_t nx, std::size_t ny,
                           StructStencil5 stencil, Options opts)
    : opts_(opts) {
  // Vertex-centered hierarchy: coarsen while both extents have the
  // (2m + 1) shape required by full weighting / bilinear interpolation.
  std::size_t cx = nx, cy = ny;
  for (;;) {
    Level lev;
    lev.nx = cx;
    lev.ny = cy;
    lev.st = stencil;
    const std::size_t total = (cx + 2) * (cy + 2);
    lev.u.assign(total, 0.0);
    lev.f.assign(total, 0.0);
    lev.r.assign(total, 0.0);
    levels_.push_back(std::move(lev));
    if (cx <= opts_.coarse_size || cy <= opts_.coarse_size) break;
    if (cx % 2 == 0 || cy % 2 == 0) break;  // parity exhausted
    cx = (cx - 1) / 2;
    cy = (cy - 1) / 2;
  }
}

void StructSolver::smooth(core::ExecContext& ctx, const Level& lev,
                          std::size_t sweeps) const {
  const auto st = lev.st;
  const std::size_t ny = lev.ny;
  const double w = opts_.jacobi_weight;
  Box2 box{1, lev.nx + 1, 1, lev.ny + 1};
  for (std::size_t s = 0; s < sweeps; ++s) {
    // Jacobi needs the old iterate: compute into r, then swap-copy.
    box_loop(ctx, box, {10.0, 56.0}, [&](std::size_t i, std::size_t j) {
      const double sum = st.west * lev.u[gidx(i - 1, j, ny)] +
                         st.east * lev.u[gidx(i + 1, j, ny)] +
                         st.south * lev.u[gidx(i, j - 1, ny)] +
                         st.north * lev.u[gidx(i, j + 1, ny)];
      const double unew = (lev.f[gidx(i, j, ny)] - sum) / st.center;
      lev.r[gidx(i, j, ny)] =
          (1.0 - w) * lev.u[gidx(i, j, ny)] + w * unew;
    });
    box_loop(ctx, box, {0.0, 16.0}, [&](std::size_t i, std::size_t j) {
      lev.u[gidx(i, j, ny)] = lev.r[gidx(i, j, ny)];
    });
  }
}

void StructSolver::residual(core::ExecContext& ctx, const Level& lev) const {
  const auto st = lev.st;
  const std::size_t ny = lev.ny;
  Box2 box{1, lev.nx + 1, 1, lev.ny + 1};
  box_loop(ctx, box, {10.0, 56.0}, [&](std::size_t i, std::size_t j) {
    const double au = st.center * lev.u[gidx(i, j, ny)] +
                      st.west * lev.u[gidx(i - 1, j, ny)] +
                      st.east * lev.u[gidx(i + 1, j, ny)] +
                      st.south * lev.u[gidx(i, j - 1, ny)] +
                      st.north * lev.u[gidx(i, j + 1, ny)];
    lev.r[gidx(i, j, ny)] = lev.f[gidx(i, j, ny)] - au;
  });
}

void StructSolver::vcycle(core::ExecContext& ctx, std::size_t l) const {
  const Level& lev = levels_[l];
  if (l + 1 == levels_.size()) {
    // Coarsest grid is tiny: smooth it to convergence.
    smooth(ctx, lev, 200);
    return;
  }
  smooth(ctx, lev, opts_.pre_sweeps);
  residual(ctx, lev);

  const Level& next = levels_[l + 1];
  const std::size_t nyf = lev.ny;
  const std::size_t nyc = next.ny;
  // Full-weighting restriction; the factor 4 rediscretizes the unscaled
  // stencil on the doubled mesh spacing.
  Box2 cbox{1, next.nx + 1, 1, next.ny + 1};
  box_loop(ctx, cbox, {13.0, 80.0}, [&](std::size_t ic, std::size_t jc) {
    const std::size_t i = 2 * ic, j = 2 * jc;
    const auto& r = lev.r;
    const double fw =
        (r[gidx(i - 1, j - 1, nyf)] + r[gidx(i + 1, j - 1, nyf)] +
         r[gidx(i - 1, j + 1, nyf)] + r[gidx(i + 1, j + 1, nyf)] +
         2.0 * (r[gidx(i - 1, j, nyf)] + r[gidx(i + 1, j, nyf)] +
                r[gidx(i, j - 1, nyf)] + r[gidx(i, j + 1, nyf)]) +
         4.0 * r[gidx(i, j, nyf)]) /
        16.0;
    next.f[gidx(ic, jc, nyc)] = 4.0 * fw;
  });
  box_loop(ctx, Box2{0, next.nx + 2, 0, next.ny + 2}, {0.0, 8.0},
           [&](std::size_t i, std::size_t j) {
             next.u[gidx(i, j, nyc)] = 0.0;
           });
  vcycle(ctx, l + 1);

  // Bilinear prolongation and correction.
  Box2 fbox{1, lev.nx + 1, 1, lev.ny + 1};
  box_loop(ctx, fbox, {4.0, 48.0}, [&](std::size_t i, std::size_t j) {
    const auto& uc = next.u;
    double corr;
    if (i % 2 == 0 && j % 2 == 0) {
      corr = uc[gidx(i / 2, j / 2, nyc)];
    } else if (i % 2 == 1 && j % 2 == 0) {
      corr = 0.5 * (uc[gidx(i / 2, j / 2, nyc)] +
                    uc[gidx(i / 2 + 1, j / 2, nyc)]);
    } else if (i % 2 == 0 && j % 2 == 1) {
      corr = 0.5 * (uc[gidx(i / 2, j / 2, nyc)] +
                    uc[gidx(i / 2, j / 2 + 1, nyc)]);
    } else {
      corr = 0.25 * (uc[gidx(i / 2, j / 2, nyc)] +
                     uc[gidx(i / 2 + 1, j / 2, nyc)] +
                     uc[gidx(i / 2, j / 2 + 1, nyc)] +
                     uc[gidx(i / 2 + 1, j / 2 + 1, nyc)]);
    }
    lev.u[gidx(i, j, nyf)] += corr;
  });
  smooth(ctx, lev, opts_.post_sweeps);
}

double StructSolver::residual_norm(core::ExecContext& ctx,
                                   std::span<const double> f,
                                   std::span<const double> u) const {
  const Level& lev = levels_[0];
  const std::size_t ny = lev.ny;
  // Load u, f into the ghosted arrays.
  for (std::size_t i = 1; i <= lev.nx; ++i) {
    for (std::size_t j = 1; j <= lev.ny; ++j) {
      lev.u[gidx(i, j, ny)] = u[(i - 1) * lev.ny + (j - 1)];
      lev.f[gidx(i, j, ny)] = f[(i - 1) * lev.ny + (j - 1)];
    }
  }
  residual(ctx, lev);
  double s = 0.0;
  for (std::size_t i = 1; i <= lev.nx; ++i) {
    for (std::size_t j = 1; j <= lev.ny; ++j) {
      s += lev.r[gidx(i, j, ny)] * lev.r[gidx(i, j, ny)];
    }
  }
  return std::sqrt(s);
}

std::size_t StructSolver::solve(core::ExecContext& ctx,
                                std::span<const double> f,
                                std::span<double> u, double rel_tol,
                                std::size_t max_cycles) const {
  const Level& lev = levels_[0];
  assert(f.size() >= lev.nx * lev.ny && u.size() >= lev.nx * lev.ny);
  const std::size_t ny = lev.ny;
  for (std::size_t i = 1; i <= lev.nx; ++i) {
    for (std::size_t j = 1; j <= lev.ny; ++j) {
      lev.u[gidx(i, j, ny)] = u[(i - 1) * lev.ny + (j - 1)];
      lev.f[gidx(i, j, ny)] = f[(i - 1) * lev.ny + (j - 1)];
    }
  }

  auto rnorm = [&]() {
    residual(ctx, lev);
    double s = 0.0;
    for (std::size_t i = 1; i <= lev.nx; ++i) {
      for (std::size_t j = 1; j <= lev.ny; ++j) {
        s += lev.r[gidx(i, j, ny)] * lev.r[gidx(i, j, ny)];
      }
    }
    return std::sqrt(s);
  };

  const double r0 = rnorm();
  std::size_t cycles = 0;
  if (r0 > 0.0) {
    while (cycles < max_cycles) {
      vcycle(ctx, 0);
      ++cycles;
      if (rnorm() <= rel_tol * r0) break;
    }
  }
  for (std::size_t i = 1; i <= lev.nx; ++i) {
    for (std::size_t j = 1; j <= lev.ny; ++j) {
      u[(i - 1) * lev.ny + (j - 1)] = lev.u[gidx(i, j, ny)];
    }
  }
  return cycles;
}

}  // namespace coe::amg
