#pragma once
// mini-hypre structured-grid side. hypre's structured solvers are
// "abstracted with macros called BoxLoops ... completely restructured to
// allow ports of CUDA, OpenMP 4.5, RAJA and Kokkos into the isolated
// BoxLoops" (Section 4.10.1). Here BoxLoop is a function template over the
// portability layer, and a PFMG-style geometric multigrid for 5-point
// operators is built on top of it.

#include <cstddef>
#include <functional>
#include <vector>

#include "core/exec.hpp"
#include "core/view.hpp"

namespace coe::amg {

/// Index box [ilo, ihi) x [jlo, jhi) -- the hypre Box analog.
struct Box2 {
  std::size_t ilo = 0, ihi = 0;
  std::size_t jlo = 0, jhi = 0;

  std::size_t ni() const { return ihi - ilo; }
  std::size_t nj() const { return jhi - jlo; }
  std::size_t size() const { return ni() * nj(); }
};

/// The isolated BoxLoop: all structured kernels funnel through here, so a
/// backend change is a one-line change for the whole structured stack.
template <typename Body>
void box_loop(core::ExecContext& ctx, const Box2& box, hsim::Workload w,
              Body&& body) {
  ctx.forall2(box.ni(), box.nj(), w,
              [&](std::size_t di, std::size_t dj) {
                body(box.ilo + di, box.jlo + dj);
              });
}

/// 5-point constant-coefficient operator on an (nx+2)x(ny+2) array with a
/// one-cell ghost frame (Dirichlet zeros live in the ghosts).
struct StructStencil5 {
  double center = 4.0;
  double west = -1.0, east = -1.0, south = -1.0, north = -1.0;
};

/// PFMG-style geometric multigrid solving  A u = f  for the 5-point
/// stencil on a structured grid, Jacobi-smoothed, full-weighting
/// restriction, bilinear interpolation.
struct StructOptions {
  std::size_t pre_sweeps = 2;
  std::size_t post_sweeps = 2;
  double jacobi_weight = 0.8;
  std::size_t coarse_size = 4;  ///< stop coarsening at this many cells/axis
};

class StructSolver {
 public:
  using Options = StructOptions;

  StructSolver(std::size_t nx, std::size_t ny, StructStencil5 stencil,
               Options opts = Options{});

  std::size_t num_levels() const { return levels_.size(); }

  /// Solves to rel_tol, returns V-cycles used. u and f are interior-sized
  /// (nx*ny row-major), zero Dirichlet boundary.
  std::size_t solve(core::ExecContext& ctx, std::span<const double> f,
                    std::span<double> u, double rel_tol = 1e-8,
                    std::size_t max_cycles = 60) const;

  /// Residual 2-norm for given u, f.
  double residual_norm(core::ExecContext& ctx, std::span<const double> f,
                       std::span<const double> u) const;

 private:
  struct Level {
    std::size_t nx, ny;                 // interior cells
    StructStencil5 st;
    mutable std::vector<double> u, f, r;  // ghosted (nx+2)*(ny+2)
  };

  void smooth(core::ExecContext& ctx, const Level& lev, std::size_t sweeps)
      const;
  void residual(core::ExecContext& ctx, const Level& lev) const;
  void vcycle(core::ExecContext& ctx, std::size_t l) const;

  Options opts_;
  std::vector<Level> levels_;
};

}  // namespace coe::amg
