#include "amg/boomeramg.hpp"

#include <cassert>
#include <cmath>

#include "core/rng.hpp"
#include "la/smoothers.hpp"
#include "la/vector_ops.hpp"

namespace coe::amg {

la::CsrMatrix strength_graph(const la::CsrMatrix& a, double theta) {
  std::vector<la::Triplet> strong;
  const auto rowptr = a.rowptr();
  const auto colind = a.colind();
  const auto values = a.values();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double max_off = 0.0;
    for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      if (colind[k] != i && -values[k] > max_off) max_off = -values[k];
    }
    if (max_off <= 0.0) continue;
    for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      if (colind[k] != i && -values[k] >= theta * max_off) {
        strong.push_back({i, colind[k], 1.0});
      }
    }
  }
  return la::CsrMatrix::from_triplets(a.rows(), a.cols(), std::move(strong));
}

std::vector<PointType> pmis_coarsen(const la::CsrMatrix& s,
                                    std::uint64_t seed) {
  const std::size_t n = s.rows();
  // Measure: number of points strongly influenced by i (column count of S),
  // plus a deterministic random tiebreak in (0, 1).
  auto st = s.transpose();
  std::vector<double> measure(n);
  core::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    measure[i] =
        static_cast<double>(st.rowptr()[i + 1] - st.rowptr()[i]) +
        rng.uniform();
  }

  enum : std::uint8_t { kUndecided = 0, kC = 1, kF = 2 };
  std::vector<std::uint8_t> state(n, kUndecided);
  // Points with no strong connections at all become F immediately (they
  // smooth perfectly) unless they also influence nothing.
  for (std::size_t i = 0; i < n; ++i) {
    const bool no_out = s.rowptr()[i + 1] == s.rowptr()[i];
    const bool no_in = st.rowptr()[i + 1] == st.rowptr()[i];
    if (no_out && no_in) state[i] = kF;
  }

  auto neighbors_undecided_or_c = [&](std::size_t i) {
    // Union of S(i) and S^T(i) forms the PMIS neighborhood.
    std::vector<std::size_t> nb;
    for (std::size_t k = s.rowptr()[i]; k < s.rowptr()[i + 1]; ++k) {
      nb.push_back(s.colind()[k]);
    }
    for (std::size_t k = st.rowptr()[i]; k < st.rowptr()[i + 1]; ++k) {
      nb.push_back(st.colind()[k]);
    }
    return nb;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Select local maxima among undecided points as C.
    std::vector<std::size_t> new_c;
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] != kUndecided) continue;
      bool is_max = true;
      for (std::size_t j : neighbors_undecided_or_c(i)) {
        if (state[j] == kUndecided && measure[j] > measure[i]) {
          is_max = false;
          break;
        }
      }
      if (is_max) new_c.push_back(i);
    }
    for (std::size_t i : new_c) {
      state[i] = kC;
      changed = true;
      for (std::size_t j : neighbors_undecided_or_c(i)) {
        if (state[j] == kUndecided) state[j] = kF;
      }
    }
  }

  // Fixup: every F point must keep a strong C neighbour for interpolation.
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] != kF) continue;
    if (s.rowptr()[i + 1] == s.rowptr()[i]) continue;  // truly isolated row
    bool has_c = false;
    for (std::size_t k = s.rowptr()[i]; k < s.rowptr()[i + 1]; ++k) {
      if (state[s.colind()[k]] == kC) {
        has_c = true;
        break;
      }
    }
    if (!has_c) state[i] = kC;
  }

  std::vector<PointType> cf(n, PointType::Fine);
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == kC) cf[i] = PointType::Coarse;
  }
  return cf;
}

la::CsrMatrix direct_interpolation(const la::CsrMatrix& a,
                                   const la::CsrMatrix& s,
                                   const std::vector<PointType>& cf) {
  const std::size_t n = a.rows();
  std::vector<std::size_t> coarse_index(n, 0);
  std::size_t nc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cf[i] == PointType::Coarse) coarse_index[i] = nc++;
  }

  // Strong-connection lookup per row of S.
  std::vector<la::Triplet> trips;
  const auto ar = a.rowptr();
  const auto ac = a.colind();
  const auto av = a.values();
  for (std::size_t i = 0; i < n; ++i) {
    if (cf[i] == PointType::Coarse) {
      trips.push_back({i, coarse_index[i], 1.0});
      continue;
    }
    // Collect the strong coarse set C_i.
    double sum_all_off = 0.0;
    double diag = 0.0;
    for (std::size_t k = ar[i]; k < ar[i + 1]; ++k) {
      if (ac[k] == i) {
        diag = av[k];
      } else {
        sum_all_off += av[k];
      }
    }
    double sum_strong_c = 0.0;
    for (std::size_t k = s.rowptr()[i]; k < s.rowptr()[i + 1]; ++k) {
      const std::size_t j = s.colind()[k];
      if (cf[j] != PointType::Coarse) continue;
      // Find a_ij.
      for (std::size_t l = ar[i]; l < ar[i + 1]; ++l) {
        if (ac[l] == j) {
          sum_strong_c += av[l];
          break;
        }
      }
    }
    if (sum_strong_c == 0.0 || diag == 0.0) continue;  // isolated fine point
    const double alpha = sum_all_off / sum_strong_c;
    for (std::size_t k = s.rowptr()[i]; k < s.rowptr()[i + 1]; ++k) {
      const std::size_t j = s.colind()[k];
      if (cf[j] != PointType::Coarse) continue;
      for (std::size_t l = ar[i]; l < ar[i + 1]; ++l) {
        if (ac[l] == j) {
          trips.push_back({i, coarse_index[j], -alpha * av[l] / diag});
          break;
        }
      }
    }
  }
  return la::CsrMatrix::from_triplets(n, nc, std::move(trips));
}

BoomerAmg::BoomerAmg(la::CsrMatrix a_fine, const AmgOptions& opts)
    : opts_(opts) {
  la::CsrMatrix a = std::move(a_fine);
  auto charge_setup = [&](double nnz) {
    if (opts_.setup_ctx != nullptr) {
      // Strength graph + PMIS + interpolation + RAP: ~12 flops and ~70
      // bytes per level nonzero (dominated by the sparse triple product).
      opts_.setup_ctx->record_kernel({12.0 * nnz, 70.0 * nnz});
    }
  };
  for (std::size_t l = 0; l < opts_.max_levels; ++l) {
    AmgLevel level;
    level.a = std::move(a);
    level.diag = level.a.diagonal();
    level.l1 = level.a.l1_row_sums();
    const std::size_t n = level.a.rows();
    level.x.assign(n, 0.0);
    level.b.assign(n, 0.0);
    level.tmp.assign(n, 0.0);

    if (n <= opts_.coarse_size || l + 1 == opts_.max_levels) {
      levels_.push_back(std::move(level));
      break;
    }
    charge_setup(static_cast<double>(level.a.nnz()));
    auto s = strength_graph(level.a, opts_.strength_theta);
    auto cf = pmis_coarsen(s);
    std::size_t nc = 0;
    for (auto t : cf) nc += (t == PointType::Coarse);
    if (nc == 0 || nc == n) {  // coarsening stalled
      levels_.push_back(std::move(level));
      break;
    }
    level.p = direct_interpolation(level.a, s, cf);
    level.r = level.p.transpose();
    a = level.r.multiply(level.a).multiply(level.p);  // Galerkin RAP
    levels_.push_back(std::move(level));
  }

  // Dense factorization of the coarsest operator.
  const auto& ac = levels_.back().a;
  la::DenseMatrix dense(ac.rows(), ac.cols());
  for (std::size_t i = 0; i < ac.rows(); ++i) {
    for (std::size_t k = ac.rowptr()[i]; k < ac.rowptr()[i + 1]; ++k) {
      dense(i, ac.colind()[k]) = ac.values()[k];
    }
  }
  coarse_lu_ = std::make_unique<la::LuFactor>(dense);
}

double BoomerAmg::grid_complexity() const {
  double fine = static_cast<double>(levels_[0].a.rows());
  double total = 0.0;
  for (const auto& l : levels_) total += static_cast<double>(l.a.rows());
  return total / fine;
}

double BoomerAmg::operator_complexity() const {
  double fine = static_cast<double>(levels_[0].a.nnz());
  double total = 0.0;
  for (const auto& l : levels_) total += static_cast<double>(l.a.nnz());
  return total / fine;
}

void BoomerAmg::cycle(core::ExecContext& ctx, std::size_t l) const {
  const AmgLevel& lev = levels_[l];
  const std::size_t n = lev.a.rows();
  if (l + 1 == levels_.size()) {
    // Coarse solve: copy b, LU solve. Charged as one dense solve kernel.
    for (std::size_t i = 0; i < n; ++i) lev.x[i] = lev.b[i];
    ctx.record_kernel({coarse_lu_->solve_flops(),
                       static_cast<double>(n * n) * 8.0});
    coarse_lu_->solve(lev.x);
    return;
  }

  la::fill(ctx, lev.x, 0.0);
  for (std::size_t s = 0; s < opts_.pre_sweeps; ++s) {
    la::jacobi_sweep(ctx, lev.a, lev.diag, opts_.jacobi_weight, lev.b, lev.x,
                     lev.tmp);
  }
  // Residual r = b - A x.
  lev.a.spmv(ctx, lev.x, lev.tmp);
  ctx.forall(n, {1.0, 24.0},
             [&](std::size_t i) { lev.tmp[i] = lev.b[i] - lev.tmp[i]; });
  // Restrict to the next level's b.
  const AmgLevel& next = levels_[l + 1];
  lev.r.spmv(ctx, lev.tmp, next.b);
  cycle(ctx, l + 1);
  // Prolongate and correct: x += P * x_coarse.
  lev.p.spmv(ctx, next.x, lev.tmp);
  la::axpy(ctx, 1.0, lev.tmp, lev.x);
  for (std::size_t s = 0; s < opts_.post_sweeps; ++s) {
    la::jacobi_sweep(ctx, lev.a, lev.diag, opts_.jacobi_weight, lev.b, lev.x,
                     lev.tmp);
  }
}

void BoomerAmg::apply(core::ExecContext& ctx, std::span<const double> r,
                      std::span<double> z) const {
  const AmgLevel& top = levels_[0];
  assert(r.size() == top.a.rows());
  for (std::size_t i = 0; i < r.size(); ++i) top.b[i] = r[i];
  cycle(ctx, 0);
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = top.x[i];
}

std::size_t BoomerAmg::solve(core::ExecContext& ctx,
                             std::span<const double> b, std::span<double> x,
                             double rel_tol, std::size_t max_iters) const {
  const auto& a = levels_[0].a;
  const std::size_t n = a.rows();
  std::vector<double> r(n), z(n);
  a.spmv(ctx, x, r);
  la::axpby(ctx, 1.0, b, -1.0, r, r);
  const double r0 = la::norm2(ctx, r);
  if (r0 == 0.0) return 0;
  for (std::size_t it = 1; it <= max_iters; ++it) {
    apply(ctx, r, z);
    la::axpy(ctx, 1.0, z, x);
    a.spmv(ctx, x, r);
    la::axpby(ctx, 1.0, b, -1.0, r, r);
    if (la::norm2(ctx, r) <= rel_tol * r0) return it;
  }
  return max_iters;
}

}  // namespace coe::amg
