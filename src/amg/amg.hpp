#pragma once
// Umbrella header for the mini-hypre module.

#include "amg/boomeramg.hpp"
#include "amg/struct_solver.hpp"
