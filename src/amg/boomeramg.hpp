#pragma once
// mini-hypre: a BoomerAMG-shaped algebraic multigrid solver (Section
// 4.10.1). Mirrors the structure the paper describes: a (CPU-side) setup
// phase -- strength graph, PMIS-style coarsening, direct interpolation,
// Galerkin RAP -- and a solve phase expressed entirely as SpMV + pointwise
// kernels so it runs on the Device backend. The setup internals are exposed
// as free functions for unit testing.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/exec.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/operator.hpp"

namespace coe::amg {

/// Classical strength-of-connection: keep a_ij with
/// -a_ij >= theta * max_k(-a_ik). Returns a 0/1 pattern matrix.
la::CsrMatrix strength_graph(const la::CsrMatrix& a, double theta);

enum class PointType : std::uint8_t { Fine = 0, Coarse = 1 };

/// PMIS-style coarsening on the strength graph; deterministic given `seed`.
/// Guarantees every fine point keeps at least one strong coarse neighbour
/// (isolated fine points are promoted).
std::vector<PointType> pmis_coarsen(const la::CsrMatrix& strength,
                                    std::uint64_t seed = 42);

/// Classical direct interpolation from the C/F splitting.
/// Returns P (n_fine x n_coarse).
la::CsrMatrix direct_interpolation(const la::CsrMatrix& a,
                                   const la::CsrMatrix& strength,
                                   const std::vector<PointType>& cf);

struct AmgOptions {
  double strength_theta = 0.25;
  std::size_t max_levels = 20;
  std::size_t coarse_size = 64;   ///< direct-solve threshold
  std::size_t pre_sweeps = 1;
  std::size_t post_sweeps = 1;
  double jacobi_weight = 0.8;
  /// When set, the setup phase (strength graph, coarsening, interpolation,
  /// Galerkin RAP) charges its work to this context -- the paper's stated
  /// follow-on: "Ongoing research will port the AMG setup phase in hypre
  /// to GPUs." Null keeps setup unpriced (the paper's CPU-setup status).
  core::ExecContext* setup_ctx = nullptr;
};

/// One level of the hierarchy.
struct AmgLevel {
  la::CsrMatrix a;
  la::CsrMatrix p;         ///< prolongation to this level's fine points
  la::CsrMatrix r;         ///< restriction (P^T)
  std::vector<double> diag;
  std::vector<double> l1;
  // Work vectors sized for this level.
  mutable std::vector<double> x, b, tmp;
};

/// The assembled hierarchy. Setup runs on the host (the paper kept
/// BoomerAMG setup on the CPU); vcycle charges costs to the given context.
class BoomerAmg final : public la::Preconditioner {
 public:
  BoomerAmg(la::CsrMatrix a_fine, const AmgOptions& opts = {});

  std::size_t num_levels() const { return levels_.size(); }
  const AmgLevel& level(std::size_t l) const { return levels_[l]; }

  /// Total grid + operator complexity (classic AMG health metrics).
  double grid_complexity() const;
  double operator_complexity() const;

  /// One V(pre,post)-cycle applied to r, result in z (z initialized to 0).
  void apply(core::ExecContext& ctx, std::span<const double> r,
             std::span<double> z) const override;

  /// Stand-alone iteration: repeated V-cycles until ||b - Ax|| drops by
  /// rel_tol. Returns iterations used (0 if already converged).
  std::size_t solve(core::ExecContext& ctx, std::span<const double> b,
                    std::span<double> x, double rel_tol = 1e-8,
                    std::size_t max_iters = 100) const;

 private:
  void cycle(core::ExecContext& ctx, std::size_t l) const;

  AmgOptions opts_;
  std::vector<AmgLevel> levels_;
  std::unique_ptr<la::LuFactor> coarse_lu_;
};

}  // namespace coe::amg
