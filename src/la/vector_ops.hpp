#pragma once
// BLAS-1 style kernels with machine-model cost annotations. These are the
// building blocks the Krylov solvers and SUNDIALS-style NVectors share.

#include <cmath>
#include <span>

#include "core/exec.hpp"

namespace coe::la {

/// y += a*x
inline void axpy(core::ExecContext& ctx, double a, std::span<const double> x,
                 std::span<double> y) {
  ctx.forall(x.size(), {2.0, 24.0},
             [&](std::size_t i) { y[i] += a * x[i]; });
}

/// y = x + b*y
inline void xpby(core::ExecContext& ctx, std::span<const double> x, double b,
                 std::span<double> y) {
  ctx.forall(x.size(), {2.0, 24.0},
             [&](std::size_t i) { y[i] = x[i] + b * y[i]; });
}

/// z = a*x + b*y
inline void axpby(core::ExecContext& ctx, double a, std::span<const double> x,
                  double b, std::span<const double> y, std::span<double> z) {
  ctx.forall(x.size(), {3.0, 24.0},
             [&](std::size_t i) { z[i] = a * x[i] + b * y[i]; });
}

inline void scale(core::ExecContext& ctx, double a, std::span<double> x) {
  ctx.forall(x.size(), {1.0, 16.0}, [&](std::size_t i) { x[i] *= a; });
}

inline void fill(core::ExecContext& ctx, std::span<double> x, double v) {
  ctx.forall(x.size(), {0.0, 8.0}, [&](std::size_t i) { x[i] = v; });
}

inline void copy(core::ExecContext& ctx, std::span<const double> x,
                 std::span<double> y) {
  ctx.forall(x.size(), {0.0, 16.0}, [&](std::size_t i) { y[i] = x[i]; });
}

inline double dot(core::ExecContext& ctx, std::span<const double> x,
                  std::span<const double> y) {
  return ctx.reduce_sum(x.size(), {2.0, 16.0},
                        [&](std::size_t i) { return x[i] * y[i]; });
}

inline double norm2(core::ExecContext& ctx, std::span<const double> x) {
  return std::sqrt(dot(ctx, x, x));
}

inline double norm_inf(core::ExecContext& ctx, std::span<const double> x) {
  return ctx.reduce_max(x.size(), {1.0, 8.0},
                        [&](std::size_t i) { return std::abs(x[i]); });
}

}  // namespace coe::la
