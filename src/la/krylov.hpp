#pragma once
// Krylov solvers (the hypre Krylov-layer substitute): preconditioned CG for
// SPD systems, BiCGStab and restarted GMRES for nonsymmetric ones (Cretin's
// rate matrices, the cuSPARSE-built iterative solver of Section 4.3).

#include <cstddef>
#include <functional>
#include <span>

#include "la/csr.hpp"
#include "la/operator.hpp"

namespace coe::prof {
class Profiler;
}

namespace coe::la {

struct SolveOptions {
  std::size_t max_iters = 1000;
  double rel_tol = 1e-8;
  double abs_tol = 0.0;
  /// CG only: fuse the iteration's vector kernels (both axpy updates plus
  /// the residual reduction into one launch; the elementwise-preconditioner
  /// apply plus the r.z reduction into another), so the five BLAS-1
  /// launches per iteration become two. Pure launch-structure/pricing
  /// change — the arithmetic per element is unchanged, so results are
  /// bitwise identical to the unfused path on deterministic backends.
  bool fused = false;
  /// Optional span sink (appended last: positional initializers predate
  /// it). When set, cg() wraps the solve in a "cg" prof::Scope with
  /// "spmv" / "precond" / "blas1" children, so profiled benches get a
  /// per-stage predicted-vs-measured skew for the solver.
  prof::Profiler* profiler = nullptr;
  /// CG only: ABFT residual guard. Every `abft_every` iterations (0:
  /// never) the true residual b - A x is recomputed and compared against
  /// the recursion's residual norm; a relative mismatch beyond `abft_tol`
  /// counts as a trip, and the recursion restarts from the recomputed
  /// residual — self-healing against silent corruption of the Krylov
  /// vectors (the iterate itself is healed only insofar as CG re-converges;
  /// bitwise recovery needs the guard/resil rollback path). The extra
  /// SpMV + reductions are priced like any other work, so the detection
  /// tax is visible in simulated time.
  std::size_t abft_every = 0;
  double abft_tol = 1e-6;
  /// Global-reduction hook for distributed CG: every scalar produced by a
  /// dot/norm (pap, ||r||^2, r.z, the ABFT true-residual norm) is passed
  /// through it before use, so ranks running CG over row slices of one
  /// system can plug in a collective (e.g. net::allreduce_sum on their
  /// communicator). Unset = single-domain solve, values pass through
  /// untouched. The hook must reduce elementwise and identically on all
  /// ranks. Only cg() honors it.
  std::function<void(std::span<double>)> reduce;
  /// CG only, comm-avoiding: combine the iteration's two reduction rounds
  /// (the ||r||^2 convergence check and the preconditioned r.z product)
  /// into ONE 2-wide call of `reduce` per iteration, halving the
  /// latency-bound collective count. The preconditioner apply moves before
  /// the convergence check (one elementwise apply of wasted work on the
  /// final iteration); every element is still reduced exactly as the
  /// two-round path reduces it, so results are bitwise identical.
  /// Ignored when abft_every > 0 (the guard consumes z mid-iteration).
  bool fused_reductions = false;
};

struct SolveResult {
  bool converged = false;
  std::size_t iterations = 0;
  double final_residual = 0.0;
  double initial_residual = 0.0;
  std::size_t abft_checks = 0;  ///< true-residual recomputations performed
  std::size_t abft_trips = 0;   ///< checks that forced a recursion restart
  std::size_t reductions = 0;   ///< global reduction rounds (cg only)
};

/// Preconditioned conjugate gradients. `x` holds the initial guess on entry
/// and the solution on exit.
SolveResult cg(core::ExecContext& ctx, const Operator& a,
               const Preconditioner& m, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts = {});

/// Preconditioned BiCGStab.
SolveResult bicgstab(core::ExecContext& ctx, const Operator& a,
                     const Preconditioner& m, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});

/// Right-preconditioned GMRES(restart).
SolveResult gmres(core::ExecContext& ctx, const Operator& a,
                  const Preconditioner& m, std::span<const double> b,
                  std::span<double> x, std::size_t restart = 30,
                  const SolveOptions& opts = {});

/// Adapts a CsrMatrix to the Operator interface.
class CsrOperator final : public Operator {
 public:
  explicit CsrOperator(const CsrMatrix& a) : a_(&a) {}
  std::size_t rows() const override { return a_->rows(); }
  std::size_t cols() const override { return a_->cols(); }
  double footprint_bytes() const override { return a_->footprint_bytes(); }
  void apply(core::ExecContext& ctx, std::span<const double> x,
             std::span<double> y) const override {
    a_->spmv(ctx, x, y);
  }

 private:
  const CsrMatrix* a_;
};

/// Jacobi (diagonal) preconditioner.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a) : diag_(a.diagonal()) {}
  void apply(core::ExecContext& ctx, std::span<const double> r,
             std::span<double> z) const override {
    const auto& d = diag_;
    ctx.forall(r.size(), {1.0, 24.0},
               [&](std::size_t i) { z[i] = r[i] / d[i]; });
  }
  std::span<const double> diag() const override { return diag_; }

 private:
  std::vector<double> diag_;
};

}  // namespace coe::la
