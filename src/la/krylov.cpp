#include "la/krylov.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/vector_ops.hpp"
#include "prof/span.hpp"

namespace coe::la {

namespace {

bool done(const SolveOptions& opts, double rnorm, double r0) {
  return rnorm <= opts.abs_tol || rnorm <= opts.rel_tol * r0;
}

}  // namespace

SolveResult cg(core::ExecContext& ctx, const Operator& a,
               const Preconditioner& m, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts) {
  const std::size_t n = a.rows();
  std::vector<double> r(n), z(n), p(n), ap(n);

  // Declare the solver's working set to the residency arena (no-op when none
  // is attached). The matrix and vectors are re-touched every iteration, so
  // under capacity pressure the arena prices the refault traffic an
  // oversubscribed GPU would see.
  const double vb = static_cast<double>(n) * 8.0;
  const auto touch_operands = [&] {
    ctx.touch_device("cg.A", a.footprint_bytes(), core::MemAccess::Read);
    ctx.touch_device("cg.b", vb, core::MemAccess::Read);
    ctx.touch_device("cg.x", vb, core::MemAccess::Write);
    ctx.touch_device("cg.r", vb, core::MemAccess::Write);
    ctx.touch_device("cg.z", vb, core::MemAccess::Write);
    ctx.touch_device("cg.p", vb, core::MemAccess::Write);
    ctx.touch_device("cg.ap", vb, core::MemAccess::Write);
  };

  prof::Scope solve_span(opts.profiler, &ctx, "cg");
  touch_operands();
  {
    prof::Scope s(opts.profiler, &ctx, "spmv");
    a.apply(ctx, x, ap);
  }
  {
    prof::Scope s(opts.profiler, &ctx, "blas1");
    axpby(ctx, 1.0, b, -1.0, ap, r);
  }
  {
    prof::Scope s(opts.profiler, &ctx, "precond");
    m.apply(ctx, r, z);
  }
  copy(ctx, z, p);

  SolveResult res;
  // Every scalar a dot/norm produces goes through the (optional) global
  // reduction hook; counting rounds even without a hook keeps the
  // communication structure visible to single-process callers.
  auto greduce = [&](std::span<double> vals) {
    if (opts.reduce) opts.reduce(vals);
    res.reductions += 1;
  };
  // The ABFT guard rewrites z mid-iteration, which the fused round's early
  // preconditioner apply would then clobber — fall back to two rounds.
  const bool fuse_rounds = opts.fused_reductions && opts.abft_every == 0;

  double rz = dot(ctx, r, z);
  double rr0 = dot(ctx, r, r);
  if (fuse_rounds) {
    double pair[2] = {rz, rr0};
    greduce(pair);
    rz = pair[0];
    rr0 = pair[1];
  } else {
    greduce(std::span<double>(&rz, 1));
    greduce(std::span<double>(&rr0, 1));
  }
  const double r0 = std::sqrt(rr0);
  res.initial_residual = r0;
  res.final_residual = r0;
  if (done(opts, r0, r0) || r0 == 0.0) {
    res.converged = true;
    return res;
  }

  // Fused iterations need an elementwise preconditioner to fold the apply
  // into the r.z kernel; anything else falls back to apply() + dot.
  const std::span<const double> md = m.diag();

  for (std::size_t it = 1; it <= opts.max_iters; ++it) {
    touch_operands();
    {
      prof::Scope s(opts.profiler, &ctx, "spmv");
      a.apply(ctx, p, ap);
    }
    double pap, alpha, rr = 0.0, rnorm = 0.0;
    double rz_new = 0.0;
    bool have_rz_new = false;
    {
      prof::Scope s(opts.profiler, &ctx, "blas1");
      pap = dot(ctx, p, ap);
      greduce(std::span<double>(&pap, 1));
      if (pap == 0.0) break;
      alpha = rz / pap;
      if (opts.fused) {
        // x += alpha p, r -= alpha ap, and the r.r reduction share one
        // launch; r's store+reload between the update and the reduction
        // stays in registers (one 8-byte elision per element).
        rr = ctx.fused(n)
                 .then({2.0, 24.0},
                       [&](std::size_t i) { x[i] += alpha * p[i]; })
                 .then({2.0, 24.0},
                       [&](std::size_t i) { r[i] -= alpha * ap[i]; })
                 .elide(8.0)
                 .reduce_sum({2.0, 16.0},
                             [&](std::size_t i) { return r[i] * r[i]; });
      } else {
        axpy(ctx, alpha, p, x);
        axpy(ctx, -alpha, ap, r);
        rr = dot(ctx, r, r);
      }
    }
    if (fuse_rounds) {
      // Comm-avoiding round fusion: compute the preconditioned product
      // locally now, then reduce {||r||^2, r.z} in ONE 2-wide round. Each
      // element crosses the wire exactly as its own 1-wide round would, so
      // the scalars — and the whole solve — stay bitwise identical.
      prof::Scope s(opts.profiler, &ctx, "precond");
      if (opts.fused && !md.empty()) {
        rz_new = ctx.fused(n)
                     .then({1.0, 24.0},
                           [&](std::size_t i) { z[i] = r[i] / md[i]; })
                     .elide(8.0)
                     .reduce_sum({2.0, 16.0},
                                 [&](std::size_t i) { return r[i] * z[i]; });
      } else {
        m.apply(ctx, r, z);
        rz_new = dot(ctx, r, z);
      }
      double pair[2] = {rr, rz_new};
      greduce(pair);
      rr = pair[0];
      rz_new = pair[1];
      have_rz_new = true;
    } else {
      greduce(std::span<double>(&rr, 1));
    }
    rnorm = std::sqrt(rr);
    bool restart = false;
    if (opts.abft_every > 0 && it % opts.abft_every == 0) {
      // ABFT residual guard: the recursion's rnorm must track the true
      // residual. z is free here (fully rewritten by the precond stage).
      prof::Scope s(opts.profiler, &ctx, "abft");
      a.apply(ctx, x, ap);
      axpby(ctx, 1.0, b, -1.0, ap, z);
      double tsq = dot(ctx, z, z);
      greduce(std::span<double>(&tsq, 1));
      const double tnorm = std::sqrt(tsq);
      ++res.abft_checks;
      const double mismatch = std::abs(tnorm - rnorm);
      if (!(mismatch <= opts.abft_tol * std::max(tnorm, rnorm))) {
        // Adopt the recomputed residual and drop the (possibly corrupt)
        // search direction; beta = 0 below restarts the recursion.
        ++res.abft_trips;
        copy(ctx, z, r);
        rnorm = tnorm;
        restart = true;
      }
    }
    res.iterations = it;
    res.final_residual = rnorm;
    if (done(opts, rnorm, r0)) {
      res.converged = true;
      return res;
    }
    if (!have_rz_new) {
      prof::Scope s(opts.profiler, &ctx, "precond");
      if (opts.fused && !md.empty()) {
        rz_new = ctx.fused(n)
                     .then({1.0, 24.0},
                           [&](std::size_t i) { z[i] = r[i] / md[i]; })
                     .elide(8.0)
                     .reduce_sum({2.0, 16.0},
                                 [&](std::size_t i) { return r[i] * z[i]; });
      } else {
        m.apply(ctx, r, z);
        rz_new = dot(ctx, r, z);
      }
      greduce(std::span<double>(&rz_new, 1));
    }
    const double beta = restart ? 0.0 : rz_new / rz;
    rz = rz_new;
    {
      prof::Scope s(opts.profiler, &ctx, "blas1");
      xpby(ctx, z, beta, p);
    }
  }
  return res;
}

SolveResult bicgstab(core::ExecContext& ctx, const Operator& a,
                     const Preconditioner& m, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts) {
  const std::size_t n = a.rows();
  std::vector<double> r(n), r0hat(n), p(n), v(n), s(n), t(n), phat(n), shat(n);

  a.apply(ctx, x, v);
  axpby(ctx, 1.0, b, -1.0, v, r);
  copy(ctx, r, r0hat);
  copy(ctx, r, p);

  const double rnorm0 = norm2(ctx, r);
  SolveResult res;
  res.initial_residual = rnorm0;
  res.final_residual = rnorm0;
  if (done(opts, rnorm0, rnorm0) || rnorm0 == 0.0) {
    res.converged = true;
    return res;
  }

  double rho = dot(ctx, r0hat, r);
  for (std::size_t it = 1; it <= opts.max_iters; ++it) {
    m.apply(ctx, p, phat);
    a.apply(ctx, phat, v);
    const double r0v = dot(ctx, r0hat, v);
    if (r0v == 0.0) break;
    const double alpha = rho / r0v;
    axpby(ctx, 1.0, r, -alpha, v, s);
    double snorm = norm2(ctx, s);
    res.iterations = it;
    if (done(opts, snorm, rnorm0)) {
      axpy(ctx, alpha, phat, x);
      res.final_residual = snorm;
      res.converged = true;
      return res;
    }
    m.apply(ctx, s, shat);
    a.apply(ctx, shat, t);
    const double tt = dot(ctx, t, t);
    if (tt == 0.0) break;
    const double omega = dot(ctx, t, s) / tt;
    axpy(ctx, alpha, phat, x);
    axpy(ctx, omega, shat, x);
    axpby(ctx, 1.0, s, -omega, t, r);
    const double rnorm = norm2(ctx, r);
    res.final_residual = rnorm;
    if (done(opts, rnorm, rnorm0)) {
      res.converged = true;
      return res;
    }
    const double rho_new = dot(ctx, r0hat, r);
    if (rho_new == 0.0 || omega == 0.0) break;
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta * (p - omega*v)
    ctx.forall(n, {4.0, 32.0}, [&](std::size_t i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    });
  }
  return res;
}

SolveResult gmres(core::ExecContext& ctx, const Operator& a,
                  const Preconditioner& m, std::span<const double> b,
                  std::span<double> x, std::size_t restart,
                  const SolveOptions& opts) {
  const std::size_t n = a.rows();
  const std::size_t k = restart;
  std::vector<std::vector<double>> v(k + 1, std::vector<double>(n));
  std::vector<double> h((k + 1) * k, 0.0);
  std::vector<double> cs(k), sn(k), g(k + 1), w(n), z(n);

  SolveResult res;
  double r0 = -1.0;
  std::size_t total_it = 0;

  for (std::size_t cycle = 0; total_it < opts.max_iters; ++cycle) {
    a.apply(ctx, x, w);
    axpby(ctx, 1.0, b, -1.0, w, v[0]);
    double beta = norm2(ctx, v[0]);
    if (r0 < 0.0) {
      r0 = beta;
      res.initial_residual = beta;
    }
    res.final_residual = beta;
    if (done(opts, beta, r0) || beta == 0.0) {
      res.converged = true;
      return res;
    }
    scale(ctx, 1.0 / beta, v[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t j = 0;
    for (; j < k && total_it < opts.max_iters; ++j, ++total_it) {
      m.apply(ctx, v[j], z);
      a.apply(ctx, z, w);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= j; ++i) {
        const double hij = dot(ctx, v[i], w);
        h[i * k + j] = hij;
        axpy(ctx, -hij, v[i], w);
      }
      const double hnext = norm2(ctx, w);
      h[(j + 1) * k + j] = hnext;
      if (hnext != 0.0) {
        copy(ctx, w, v[j + 1]);
        scale(ctx, 1.0 / hnext, v[j + 1]);
      }
      // Apply previous Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const double t1 = cs[i] * h[i * k + j] + sn[i] * h[(i + 1) * k + j];
        const double t2 = -sn[i] * h[i * k + j] + cs[i] * h[(i + 1) * k + j];
        h[i * k + j] = t1;
        h[(i + 1) * k + j] = t2;
      }
      // New rotation.
      const double denom =
          std::sqrt(h[j * k + j] * h[j * k + j] + hnext * hnext);
      if (denom == 0.0) {
        ++j;
        break;
      }
      cs[j] = h[j * k + j] / denom;
      sn[j] = hnext / denom;
      h[j * k + j] = denom;
      h[(j + 1) * k + j] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] *= cs[j];
      res.iterations = total_it + 1;
      res.final_residual = std::abs(g[j + 1]);
      if (done(opts, res.final_residual, r0)) {
        ++j;
        res.converged = true;
        break;
      }
    }

    // Solve the small triangular system and update x through the
    // preconditioner (right preconditioning: x += M^{-1} V y).
    std::vector<double> y(j, 0.0);
    for (std::size_t i = j; i-- > 0;) {
      double s = g[i];
      for (std::size_t l = i + 1; l < j; ++l) s -= h[i * k + l] * y[l];
      y[i] = s / h[i * k + i];
    }
    std::fill(w.begin(), w.end(), 0.0);
    for (std::size_t i = 0; i < j; ++i) axpy(ctx, y[i], v[i], w);
    m.apply(ctx, w, z);
    axpy(ctx, 1.0, z, x);

    if (res.converged) return res;
  }
  return res;
}

}  // namespace coe::la
