#include "la/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coe::la {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m(rows, cols);
  m.colind_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    m.rowptr_[r] = m.colind_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.colind_.push_back(static_cast<std::uint32_t>(c));
      m.values_.push_back(v);
    }
  }
  m.rowptr_[rows] = m.colind_.size();
  return m;
}

void CsrMatrix::spmv(core::ExecContext& ctx, std::span<const double> x,
                     std::span<double> y) const {
  assert(x.size() >= cols_ && y.size() >= rows_);
  const double flops = spmv_flops();
  const double bytes = spmv_bytes();
  ctx.forall(rows_,
             {flops / static_cast<double>(rows_ ? rows_ : 1),
              bytes / static_cast<double>(rows_ ? rows_ : 1)},
             [&](std::size_t r) {
               double s = 0.0;
               for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
                 s += values_[k] * x[colind_[k]];
               }
               y[r] = s;
             });
}

void CsrMatrix::spmv_transpose(std::span<const double> x,
                               std::span<double> y) const {
  assert(x.size() >= rows_ && y.size() >= cols_);
  std::fill(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(cols_), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      y[colind_[k]] += values_[k] * x[r];
    }
  }
}

CsrMatrix CsrMatrix::transpose() const {
  CsrMatrix t(cols_, rows_);
  std::vector<std::size_t> count(cols_, 0);
  for (auto c : colind_) ++count[c];
  t.rowptr_.assign(cols_ + 1, 0);
  for (std::size_t c = 0; c < cols_; ++c) {
    t.rowptr_[c + 1] = t.rowptr_[c] + count[c];
  }
  t.colind_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::size_t> cursor(t.rowptr_.begin(), t.rowptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      const std::size_t pos = cursor[colind_[k]]++;
      t.colind_[pos] = static_cast<std::uint32_t>(r);
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

CsrMatrix CsrMatrix::multiply(const CsrMatrix& b) const {
  assert(cols_ == b.rows_);
  CsrMatrix c(rows_, b.cols_);
  // Gustavson row-merge with a dense accumulator.
  std::vector<double> acc(b.cols_, 0.0);
  std::vector<std::uint32_t> marker(b.cols_, 0);
  std::vector<std::uint32_t> row_cols;
  std::uint32_t stamp = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    ++stamp;
    row_cols.clear();
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      const std::size_t ak = colind_[k];
      const double av = values_[k];
      for (std::size_t j = b.rowptr_[ak]; j < b.rowptr_[ak + 1]; ++j) {
        const std::uint32_t col = b.colind_[j];
        if (marker[col] != stamp) {
          marker[col] = stamp;
          acc[col] = 0.0;
          row_cols.push_back(col);
        }
        acc[col] += av * b.values_[j];
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    c.rowptr_[r] = c.colind_.size();
    for (auto col : row_cols) {
      c.colind_.push_back(col);
      c.values_.push_back(acc[col]);
    }
  }
  c.rowptr_[rows_] = c.colind_.size();
  return c;
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      if (colind_[k] == r) d[r] = values_[k];
    }
  }
  return d;
}

std::vector<double> CsrMatrix::l1_row_sums() const {
  std::vector<double> d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      d[r] += std::abs(values_[k]);
    }
  }
  return d;
}

std::vector<double> CsrMatrix::column_sums() const {
  std::vector<double> w(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      w[colind_[k]] += values_[k];
    }
  }
  return w;
}

CsrMatrix poisson2d(std::size_t nx, std::size_t ny) {
  const std::size_t n = nx * ny;
  std::vector<Triplet> t;
  t.reserve(5 * n);
  auto id = [nx](std::size_t i, std::size_t j) { return j * nx + i; };
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t r = id(i, j);
      t.push_back({r, r, 4.0});
      if (i > 0) t.push_back({r, id(i - 1, j), -1.0});
      if (i + 1 < nx) t.push_back({r, id(i + 1, j), -1.0});
      if (j > 0) t.push_back({r, id(i, j - 1), -1.0});
      if (j + 1 < ny) t.push_back({r, id(i, j + 1), -1.0});
    }
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

CsrMatrix poisson3d(std::size_t nx, std::size_t ny, std::size_t nz) {
  const std::size_t n = nx * ny * nz;
  std::vector<Triplet> t;
  t.reserve(7 * n);
  auto id = [nx, ny](std::size_t i, std::size_t j, std::size_t k) {
    return (k * ny + j) * nx + i;
  };
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t r = id(i, j, k);
        t.push_back({r, r, 6.0});
        if (i > 0) t.push_back({r, id(i - 1, j, k), -1.0});
        if (i + 1 < nx) t.push_back({r, id(i + 1, j, k), -1.0});
        if (j > 0) t.push_back({r, id(i, j - 1, k), -1.0});
        if (j + 1 < ny) t.push_back({r, id(i, j + 1, k), -1.0});
        if (k > 0) t.push_back({r, id(i, j, k - 1), -1.0});
        if (k + 1 < nz) t.push_back({r, id(i, j, k + 1), -1.0});
      }
    }
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

}  // namespace coe::la
