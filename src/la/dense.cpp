#include "la/dense.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace coe::la {

void DenseMatrix::matvec(std::span<const double> x,
                         std::span<double> y) const {
  assert(x.size() >= cols_ && y.size() >= rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* row = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

void DenseMatrix::add_scaled(double a, const DenseMatrix& b) {
  assert(rows_ == b.rows_ && cols_ == b.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * b.data_[i];
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

LuFactor::LuFactor(const DenseMatrix& a) : lu_(a), piv_(a.rows()) {
  assert(a.rows() == a.cols());
  const std::size_t n = lu_.rows();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv_[k] = p;
    if (best == 0.0) {
      ok_ = false;
      continue;
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(p, j));
      }
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = lu_(i, k) * inv;
      lu_(i, k) = l;
      if (l == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= l * lu_(k, j);
      }
    }
  }
}

void LuFactor::solve(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  assert(b.size() >= n);
  // Apply row permutation, forward substitution with unit lower factor.
  for (std::size_t k = 0; k < n; ++k) {
    if (piv_[k] != k) std::swap(b[k], b[piv_[k]]);
    for (std::size_t j = 0; j < k; ++j) b[k] -= lu_(k, j) * b[j];
  }
  // Back substitution.
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t j = k + 1; j < n; ++j) b[k] -= lu_(k, j) * b[j];
    b[k] /= lu_(k, k);
  }
}

void LuFactor::solve_many(std::span<double> rhs) const {
  const std::size_t n = lu_.rows();
  assert(rhs.size() % n == 0);
  for (std::size_t off = 0; off < rhs.size(); off += n) {
    solve(rhs.subspan(off, n));
  }
}

double LuFactor::factor_flops() const {
  const double n = static_cast<double>(lu_.rows());
  return 2.0 / 3.0 * n * n * n;
}

double LuFactor::solve_flops() const {
  const double n = static_cast<double>(lu_.rows());
  return 2.0 * n * n;
}

}  // namespace coe::la
