#pragma once
// Dense matrices with LU factorization. Used by the Cretin rate-matrix
// direct solve (the cuSOLVER substitute) and small element matrices in FEM.

#include <cstddef>
#include <span>
#include <vector>

namespace coe::la {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double init = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// y = A x (plain serial gemv).
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// this += a * B
  void add_scaled(double a, const DenseMatrix& b);

  static DenseMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting (LAPACK getrf/getrs shape).
class LuFactor {
 public:
  /// Factors a copy of `a`; `ok()` reports whether a nonzero pivot was
  /// found in every column.
  explicit LuFactor(const DenseMatrix& a);

  bool ok() const { return ok_; }
  std::size_t n() const { return lu_.rows(); }

  /// Solves A x = b in place (b becomes x).
  void solve(std::span<double> b) const;
  /// Solves for multiple right-hand sides stored contiguously (n each).
  void solve_many(std::span<double> rhs) const;

  /// Flop count of the factorization (2/3 n^3) -- for cost annotation.
  double factor_flops() const;
  /// Flop count of one triangular solve (2 n^2).
  double solve_flops() const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> piv_;
  bool ok_ = true;
};

}  // namespace coe::la
