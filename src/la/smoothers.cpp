#include "la/smoothers.hpp"

#include <cassert>

namespace coe::la {

void jacobi_sweep(core::ExecContext& ctx, const CsrMatrix& a,
                  std::span<const double> diag, double weight,
                  std::span<const double> b, std::span<double> x,
                  std::span<double> scratch) {
  assert(scratch.size() >= a.rows());
  a.spmv(ctx, x, scratch);
  ctx.forall(a.rows(), {3.0, 40.0}, [&](std::size_t i) {
    x[i] += weight * (b[i] - scratch[i]) / diag[i];
  });
}

void l1_jacobi_sweep(core::ExecContext& ctx, const CsrMatrix& a,
                     std::span<const double> l1, std::span<const double> b,
                     std::span<double> x, std::span<double> scratch) {
  assert(scratch.size() >= a.rows());
  a.spmv(ctx, x, scratch);
  ctx.forall(a.rows(), {3.0, 40.0}, [&](std::size_t i) {
    x[i] += (b[i] - scratch[i]) / l1[i];
  });
}

void gauss_seidel_sweep(core::ExecContext& ctx, const CsrMatrix& a,
                        std::span<const double> b, std::span<double> x) {
  const auto rowptr = a.rowptr();
  const auto colind = a.colind();
  const auto values = a.values();
  // Inherently sequential: charge it as one launch over all nnz.
  ctx.record_kernel({a.spmv_flops(), a.spmv_bytes()});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double s = b[r];
    double d = 1.0;
    for (std::size_t k = rowptr[r]; k < rowptr[r + 1]; ++k) {
      if (colind[k] == r) {
        d = values[k];
      } else {
        s -= values[k] * x[colind[k]];
      }
    }
    x[r] = s / d;
  }
}

}  // namespace coe::la
