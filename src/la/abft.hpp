#pragma once
// Algorithm-based fault tolerance (Huang–Abraham, 1984) for the Krylov
// stack. The checksum identity: for w = A^T e (per-column sums of A,
// computed once at setup), every product y = A x must satisfy
//
//   e^T y  =  (e^T A) x  =  w^T x
//
// exactly in real arithmetic, and to rounding accuracy in floating point.
// AbftCsrOperator verifies it after every SpMV — two extra reductions per
// apply, the classic O(n) check on an O(nnz) kernel — and counts trips
// without changing the product, so the solver (or the guard verify hook)
// decides how to react. The tolerance is scaled by sum(|w_i x_i|), the
// natural magnitude of the checksum accumulation, so the check adapts to
// the data: exponent-bit corruption trips it, rounding noise does not, and
// low-mantissa corruption below the tolerance escapes (that residual
// escape rate is exactly what the guard benches measure).
//
// CgStepper complements it: one preconditioned-CG iteration at a time with
// the Krylov recursion state checkpointable, so a linear solve can run
// under resil::run_resilient with SDC injection, detectors, and
// rollback-and-recompute like any other app driver.

#include <cstddef>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "la/operator.hpp"
#include "resil/checkpoint.hpp"

namespace coe::la {

/// Checksum-carrying SpMV: wraps a CsrMatrix and verifies the
/// Huang–Abraham identity after every apply.
class AbftCsrOperator final : public Operator {
 public:
  /// `rel_tol` bounds |e^T y - w^T x| relative to sum(|w_i x_i|); the
  /// default leaves ~6 decimal digits of headroom over double rounding on
  /// the problem sizes used here.
  explicit AbftCsrOperator(const CsrMatrix& a, double rel_tol = 1e-9);

  std::size_t rows() const override { return a_->rows(); }
  std::size_t cols() const override { return a_->cols(); }
  void apply(core::ExecContext& ctx, std::span<const double> x,
             std::span<double> y) const override;

  std::size_t checks() const { return checks_; }
  std::size_t trips() const { return trips_; }
  /// |e^T y - w^T x| / scale from the most recent apply.
  double last_relative_error() const { return last_rel_err_; }
  void clear_trips() { trips_ = 0; }

  std::span<const double> checksum() const { return w_; }

 private:
  const CsrMatrix* a_;
  std::vector<double> w_;  ///< A^T e, the column checksum vector
  double rel_tol_;
  // apply() is const in the Operator interface; the audit counters are
  // observability, not operator state.
  mutable std::size_t checks_ = 0;
  mutable std::size_t trips_ = 0;
  mutable double last_rel_err_ = 0.0;
};

/// Preconditioned CG, one iteration per step(), with the full Krylov
/// recursion state (x, r, z, p, scalars) checkpointable — restoring and
/// re-stepping reproduces the iterate sequence bitwise. This is the shape
/// resil::run_resilient wants, so a solve can be guarded end to end:
/// checkpoints, SDC targets, detectors, rollback.
class CgStepper : public resil::Checkpointable {
 public:
  /// `x` holds the initial guess and receives the iterate; it must outlive
  /// the stepper. The first residual/search direction is computed here.
  CgStepper(core::ExecContext& ctx, const Operator& a,
            const Preconditioner& m, std::span<const double> b,
            std::span<double> x);

  /// One PCG iteration. No-op once converged-to-breakdown (pAp == 0).
  void step();

  std::size_t iteration() const { return it_; }
  double residual() const { return rnorm_; }
  bool broke_down() const { return done_; }

  /// Live Krylov-state views for SDC targeting and checksum scrubbing.
  std::vector<std::pair<std::string, std::span<double>>> sdc_targets();

  /// Checkpointable: iterate, residual, preconditioned residual, search
  /// direction, and the recursion scalars.
  void save_state(std::vector<double>& out) const override;
  void restore_state(const std::vector<double>& in) override;

 private:
  core::ExecContext* ctx_;
  const Operator* a_;
  const Preconditioner* m_;
  std::span<const double> b_;
  std::span<double> x_;
  std::vector<double> r_, z_, p_, ap_;
  double rz_ = 0.0;
  double rnorm_ = 0.0;
  std::size_t it_ = 0;
  bool done_ = false;
};

}  // namespace coe::la
