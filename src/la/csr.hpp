#pragma once
// Compressed-sparse-row matrices: the hypre/cuSPARSE substitute. SpMV is
// annotated for the machine model (Section 4.10.1: the BoomerAMG solve
// phase "can completely be performed in terms of matrix-vector
// multiplications").

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/exec.hpp"

namespace coe::la {

/// Triplet (COO) entry used when assembling.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    rowptr_.assign(rows + 1, 0);
  }

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return colind_.size(); }

  std::span<const std::size_t> rowptr() const { return rowptr_; }
  std::span<const std::uint32_t> colind() const { return colind_; }
  std::span<const double> values() const { return values_; }
  std::span<double> values() { return values_; }

  /// y = A x, cost-annotated (2 flops/nnz, val+colind reads, x gather, y write).
  void spmv(core::ExecContext& ctx, std::span<const double> x,
            std::span<double> y) const;

  /// y = A^T x (serial; used in AMG setup only).
  void spmv_transpose(std::span<const double> x, std::span<double> y) const;

  CsrMatrix transpose() const;

  /// Sparse matrix-matrix product (this * B), classical row-merge.
  CsrMatrix multiply(const CsrMatrix& b) const;

  /// Extracts the diagonal (0 where absent).
  std::vector<double> diagonal() const;

  /// Sum of absolute values per row (for l1-Jacobi smoothing).
  std::vector<double> l1_row_sums() const;

  /// Per-column sums w = A^T e — the Huang–Abraham ABFT checksum vector:
  /// for any x, e^T (A x) must equal w^T x (see la/abft.hpp).
  std::vector<double> column_sums() const;

  /// Bytes the matrix itself occupies (values + colind + rowptr) — its
  /// device-memory footprint for residency accounting.
  double footprint_bytes() const {
    return static_cast<double>(nnz()) * (8.0 + 4.0) +
           static_cast<double>(rows() + 1) * 8.0;
  }

  /// Per-SpMV data traffic in bytes (for roofline reporting).
  double spmv_bytes() const {
    return static_cast<double>(nnz()) * (8.0 + 4.0 + 8.0) +
           static_cast<double>(rows()) * (8.0 + 8.0);
  }
  double spmv_flops() const { return 2.0 * static_cast<double>(nnz()); }

  /// Direct raw access for builders.
  std::vector<std::size_t>& rowptr_mut() { return rowptr_; }
  std::vector<std::uint32_t>& colind_mut() { return colind_; }
  std::vector<double>& values_mut() { return values_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> rowptr_;
  std::vector<std::uint32_t> colind_;
  std::vector<double> values_;
};

/// 5-point / 7-point Poisson test matrices used across tests and benches.
CsrMatrix poisson2d(std::size_t nx, std::size_t ny);
CsrMatrix poisson3d(std::size_t nx, std::size_t ny, std::size_t nz);

}  // namespace coe::la
