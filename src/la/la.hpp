#pragma once
// Umbrella header for the linear-algebra substrate.

#include "la/abft.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/krylov.hpp"
#include "la/operator.hpp"
#include "la/smoothers.hpp"
#include "la/vector_ops.hpp"
