#pragma once
// Pointwise smoothers used inside the AMG hierarchy. On GPUs hypre uses
// Jacobi-type smoothing (Gauss-Seidel is sequential), so the device path
// here is weighted/l1 Jacobi and the CPU baseline also gets Gauss-Seidel.

#include <span>
#include <vector>

#include "la/csr.hpp"

namespace coe::la {

/// One weighted-Jacobi sweep: x += w * D^{-1} (b - A x).
void jacobi_sweep(core::ExecContext& ctx, const CsrMatrix& a,
                  std::span<const double> diag, double weight,
                  std::span<const double> b, std::span<double> x,
                  std::span<double> scratch);

/// One l1-Jacobi sweep (diag replaced by l1 row sums; unconditionally
/// convergent for SPD M-matrices).
void l1_jacobi_sweep(core::ExecContext& ctx, const CsrMatrix& a,
                     std::span<const double> l1, std::span<const double> b,
                     std::span<double> x, std::span<double> scratch);

/// One forward Gauss-Seidel sweep (serial; the CPU-only smoother).
void gauss_seidel_sweep(core::ExecContext& ctx, const CsrMatrix& a,
                        std::span<const double> b, std::span<double> x);

}  // namespace coe::la
