#pragma once
// Linear-operator abstraction shared by the math-library stack. This is the
// integration seam Section 4.10 describes: hypre's AMG, MFEM's matrix-free
// operators, and SUNDIALS' solvers all speak this interface, so data can
// stay "on device" (in the modeled sense) across library boundaries.

#include <cstddef>
#include <span>

#include "core/exec.hpp"

namespace coe::la {

/// y = A x. Implementations charge their own cost to the context.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;
  virtual void apply(core::ExecContext& ctx, std::span<const double> x,
                     std::span<double> y) const = 0;

  /// Device-memory footprint of the operator's own data (matrix values and
  /// index arrays), used by capacity-aware solvers to declare it to the
  /// residency arena (DESIGN.md section 14). 0 means "unknown/immaterial"
  /// (matrix-free operators).
  virtual double footprint_bytes() const { return 0.0; }
};

/// z = M^{-1} r (approximately). Identity by default.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(core::ExecContext& ctx, std::span<const double> r,
                     std::span<double> z) const = 0;

  /// Elementwise preconditioners (Jacobi) expose their diagonal so solvers
  /// can fuse z[i] = r[i]/d[i] into adjacent vector kernels. Empty means
  /// "not elementwise"; callers must then go through apply().
  virtual std::span<const double> diag() const { return {}; }
};

class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(core::ExecContext& ctx, std::span<const double> r,
             std::span<double> z) const override {
    ctx.forall(r.size(), {0.0, 16.0},
               [&](std::size_t i) { z[i] = r[i]; });
  }
};

}  // namespace coe::la
