#include "la/abft.hpp"

#include <algorithm>
#include <cmath>

#include "la/vector_ops.hpp"

namespace coe::la {

AbftCsrOperator::AbftCsrOperator(const CsrMatrix& a, double rel_tol)
    : a_(&a), w_(a.column_sums()), rel_tol_(rel_tol) {}

void AbftCsrOperator::apply(core::ExecContext& ctx, std::span<const double> x,
                            std::span<double> y) const {
  a_->spmv(ctx, x, y);
  // e^T y, w^T x, and the magnitude scale sum(|w_i x_i|): three O(n)
  // reductions against the O(nnz) product — the ABFT tax.
  const double sy = ctx.reduce_sum(y.size(), {1.0, 8.0},
                                   [&](std::size_t i) { return y[i]; });
  const double wx = dot(ctx, w_, x);
  const double scale =
      ctx.reduce_sum(x.size(), {3.0, 16.0}, [&](std::size_t i) {
        return std::abs(w_[i] * x[i]);
      });
  ++checks_;
  const double err = std::abs(sy - wx);
  const double floor = 1e-300;
  last_rel_err_ = err / (scale + std::abs(sy) + floor);
  if (!(last_rel_err_ <= rel_tol_)) ++trips_;  // NaN/Inf trips too
}

CgStepper::CgStepper(core::ExecContext& ctx, const Operator& a,
                     const Preconditioner& m, std::span<const double> b,
                     std::span<double> x)
    : ctx_(&ctx), a_(&a), m_(&m), b_(b), x_(x) {
  const std::size_t n = a.rows();
  r_.resize(n);
  z_.resize(n);
  p_.resize(n);
  ap_.resize(n);
  a_->apply(*ctx_, x_, ap_);
  axpby(*ctx_, 1.0, b_, -1.0, ap_, r_);
  m_->apply(*ctx_, r_, z_);
  copy(*ctx_, z_, p_);
  rz_ = dot(*ctx_, r_, z_);
  rnorm_ = norm2(*ctx_, r_);
}

void CgStepper::step() {
  if (done_) return;
  a_->apply(*ctx_, p_, ap_);
  const double pap = dot(*ctx_, p_, ap_);
  if (pap == 0.0) {
    done_ = true;
    return;
  }
  const double alpha = rz_ / pap;
  axpy(*ctx_, alpha, p_, x_);
  axpy(*ctx_, -alpha, ap_, r_);
  rnorm_ = norm2(*ctx_, r_);
  m_->apply(*ctx_, r_, z_);
  const double rz_new = dot(*ctx_, r_, z_);
  const double beta = rz_new / rz_;
  rz_ = rz_new;
  xpby(*ctx_, z_, beta, p_);
  ++it_;
}

std::vector<std::pair<std::string, std::span<double>>>
CgStepper::sdc_targets() {
  return {{"cg.x", x_},
          {"cg.r", std::span<double>(r_)},
          {"cg.z", std::span<double>(z_)},
          {"cg.p", std::span<double>(p_)}};
}

void CgStepper::save_state(std::vector<double>& out) const {
  out.clear();
  out.push_back(rz_);
  out.push_back(rnorm_);
  out.push_back(static_cast<double>(it_));
  out.push_back(done_ ? 1.0 : 0.0);
  out.insert(out.end(), x_.begin(), x_.end());
  out.insert(out.end(), r_.begin(), r_.end());
  out.insert(out.end(), z_.begin(), z_.end());
  out.insert(out.end(), p_.begin(), p_.end());
}

void CgStepper::restore_state(const std::vector<double>& in) {
  const double* c = in.data();
  rz_ = *c++;
  rnorm_ = *c++;
  it_ = static_cast<std::size_t>(*c++);
  done_ = *c++ != 0.0;
  const std::size_t n = r_.size();
  std::copy(c, c + n, x_.begin());
  c += n;
  std::copy(c, c + n, r_.begin());
  c += n;
  std::copy(c, c + n, z_.begin());
  c += n;
  std::copy(c, c + n, p_.begin());
}

}  // namespace coe::la
