#pragma once
// minikin: the Cretin atomic-kinetics proxy (Section 4.3). Cretin's real
// atomic models (gold hohlraum walls) are export-controlled, so we generate
// synthetic screened-hydrogenic-style models with the same structure: a
// ladder of levels with statistical weights, and the transition types whose
// rates the mini-apps parallelized (collisional excitation/de-excitation
// with detailed balance, radiative decay).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coe::kinetics {

/// One atomic transition between levels lo < hi.
struct Transition {
  std::uint32_t lo, hi;
  double osc_strength;   ///< drives both collisional and radiative rates
  bool radiative;        ///< allowed radiative decay hi -> lo
};

/// A synthetic atomic model: energy ladder + transition list.
struct AtomicModel {
  std::vector<double> energy;   ///< level energies, ascending, energy[0]=0
  std::vector<double> weight;   ///< statistical weights g_i
  std::vector<Transition> transitions;

  std::size_t num_levels() const { return energy.size(); }
  /// Per-zone workspace for the dense rate matrix and factorization.
  double workspace_bytes() const {
    const double n = static_cast<double>(num_levels());
    return (2.0 * n * n + 4.0 * n) * 8.0;
  }
};

/// Builds a model with `levels` levels following a hydrogen-like 1/n^2
/// ladder; transition density controls how many level pairs couple.
AtomicModel make_model(std::size_t levels, double transition_density = 0.5,
                       std::uint64_t seed = 77);

/// Plasma conditions in one spatial zone (reduced units: energies and
/// temperatures on the same scale).
struct Zone {
  double te = 1.0;   ///< electron temperature
  double ne = 1.0;   ///< electron density
};

/// Collisional excitation rate lo->hi (van-Regemorter-like shape).
double collisional_up(const AtomicModel& m, const Transition& t,
                      const Zone& z);
/// Collisional de-excitation hi->lo by detailed balance.
double collisional_down(const AtomicModel& m, const Transition& t,
                        const Zone& z);
/// Spontaneous radiative decay hi->lo.
double radiative_down(const AtomicModel& m, const Transition& t);

}  // namespace coe::kinetics
