#pragma once
// The minikin solve path: assemble the rate matrix for each zone and solve
// for steady-state populations, either with a dense direct factorization
// (the cuSOLVER path) or with a sparse preconditioned iterative solver
// (the cuSPARSE-built solver of Section 4.3, needed because "AMGX can only
// solve one (potentially large) system at a time, while Cretin must solve
// multiple systems simultaneously").
//
// Two threading modes reproduce the paper's CPU/GPU memory asymmetry:
//  * ZoneParallel (CPU): one worker per zone, each needing a full private
//    workspace; with bounded memory, cores sit idle on large models
//    ("memory constraints require idling 60% of CPU cores").
//  * TransitionParallel (GPU): all lanes cooperate on one zone at a time,
//    so only one workspace is ever live.

#include <span>
#include <vector>

#include "core/exec.hpp"
#include "kinetics/atomic.hpp"
#include "la/csr.hpp"

namespace coe::kinetics {

enum class SolveMethod { DenseDirect, SparseIterative };
enum class ThreadMode { ZoneParallel, TransitionParallel };

/// Assembles the steady-state rate matrix with the closure sum(N) = 1:
/// rows are dN_i/dt = sum_j R_ij N_j with row 0 replaced by the
/// normalization. Returns a dense row-major matrix (levels x levels).
std::vector<double> assemble_rate_matrix(const AtomicModel& m, const Zone& z);

/// Steady-state populations of one zone (normalized to 1).
std::vector<double> solve_zone(const AtomicModel& m, const Zone& z,
                               SolveMethod method);

/// Residual ||R N||_inf of the kinetic equations (excluding the
/// normalization row) -- the invariant tests check this is ~0.
double kinetics_residual(const AtomicModel& m, const Zone& z,
                         std::span<const double> populations);

struct BatchReport {
  std::size_t zones = 0;
  double flops = 0.0;
  /// Effective workers after the memory-capacity constraint.
  std::size_t active_workers = 0;
  std::size_t total_workers = 0;
  /// Modeled wall time on the context's machine.
  double modeled_time = 0.0;
};

/// Processes all zones, charging cost to the context under the given
/// threading mode. `workers` is the core/SM-lane count and `mem_bytes` the
/// memory available for workspaces.
BatchReport process_zones(core::ExecContext& ctx, const AtomicModel& m,
                          std::span<const Zone> zones, SolveMethod method,
                          ThreadMode mode, std::size_t workers,
                          double mem_bytes,
                          std::vector<std::vector<double>>* out = nullptr);

}  // namespace coe::kinetics
