#include "kinetics/atomic.hpp"

#include <cmath>

#include "core/rng.hpp"

namespace coe::kinetics {

AtomicModel make_model(std::size_t levels, double transition_density,
                       std::uint64_t seed) {
  AtomicModel m;
  m.energy.resize(levels);
  m.weight.resize(levels);
  core::Rng rng(seed);
  // Hydrogen-like ladder: E_n = E_inf (1 - 1/n^2), weights 2n^2.
  const double e_inf = 1.0;
  for (std::size_t n = 0; n < levels; ++n) {
    const double nn = static_cast<double>(n + 1);
    m.energy[n] = e_inf * (1.0 - 1.0 / (nn * nn));
    m.weight[n] = 2.0 * nn * nn;
  }
  for (std::size_t i = 0; i < levels; ++i) {
    for (std::size_t j = i + 1; j < levels; ++j) {
      // Adjacent levels always couple; distant pairs with probability
      // transition_density (scaled down with gap).
      const bool adjacent = (j == i + 1);
      const double pkeep =
          adjacent ? 1.0
                   : transition_density /
                         (1.0 + 0.3 * static_cast<double>(j - i));
      if (!adjacent && rng.uniform() >= pkeep) continue;
      Transition t;
      t.lo = static_cast<std::uint32_t>(i);
      t.hi = static_cast<std::uint32_t>(j);
      t.osc_strength = rng.uniform(0.05, 1.0);
      t.radiative = rng.uniform() < 0.7;
      m.transitions.push_back(t);
    }
  }
  return m;
}

double collisional_up(const AtomicModel& m, const Transition& t,
                      const Zone& z) {
  const double de = m.energy[t.hi] - m.energy[t.lo];
  // van Regemorter shape: ~ ne f exp(-dE/Te) / (dE sqrt(Te)).
  return z.ne * t.osc_strength * std::exp(-de / z.te) /
         (std::max(de, 1e-6) * std::sqrt(z.te));
}

double collisional_down(const AtomicModel& m, const Transition& t,
                        const Zone& z) {
  // Detailed balance: C_down = C_up * (g_lo / g_hi) * exp(dE / Te).
  const double de = m.energy[t.hi] - m.energy[t.lo];
  return collisional_up(m, t, z) * (m.weight[t.lo] / m.weight[t.hi]) *
         std::exp(de / z.te);
}

double radiative_down(const AtomicModel& m, const Transition& t) {
  if (!t.radiative) return 0.0;
  const double de = m.energy[t.hi] - m.energy[t.lo];
  // A ~ f dE^2 in reduced units.
  return t.osc_strength * de * de;
}

}  // namespace coe::kinetics
