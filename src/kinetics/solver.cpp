#include "kinetics/solver.hpp"

#include <algorithm>
#include <cmath>

#include "la/dense.hpp"
#include "la/krylov.hpp"

namespace coe::kinetics {

namespace {

/// Total rate W[j -> i] contributions assembled as triplets (off-diagonal
/// gains, diagonal losses).
void accumulate_rates(const AtomicModel& m, const Zone& z,
                      std::vector<la::Triplet>& trips) {
  const std::size_t n = m.num_levels();
  std::vector<double> loss(n, 0.0);
  for (const auto& t : m.transitions) {
    const double up = collisional_up(m, t, z);
    const double down = collisional_down(m, t, z) + radiative_down(m, t);
    // lo -> hi at rate `up`: gain for hi, loss for lo.
    trips.push_back({t.hi, t.lo, up});
    loss[t.lo] += up;
    trips.push_back({t.lo, t.hi, down});
    loss[t.hi] += down;
  }
  for (std::size_t i = 0; i < n; ++i) trips.push_back({i, i, -loss[i]});
}

}  // namespace

std::vector<double> assemble_rate_matrix(const AtomicModel& m,
                                         const Zone& z) {
  const std::size_t n = m.num_levels();
  std::vector<la::Triplet> trips;
  accumulate_rates(m, z, trips);
  std::vector<double> a(n * n, 0.0);
  for (const auto& t : trips) {
    if (t.row == 0) continue;  // row 0 becomes the normalization
    a[t.row * n + t.col] += t.value;
  }
  for (std::size_t j = 0; j < n; ++j) a[j] = 1.0;  // sum(N) = 1
  return a;
}

std::vector<double> solve_zone(const AtomicModel& m, const Zone& z,
                               SolveMethod method) {
  const std::size_t n = m.num_levels();
  std::vector<double> rhs(n, 0.0);
  rhs[0] = 1.0;

  const auto a_flat = assemble_rate_matrix(m, z);
  if (method == SolveMethod::DenseDirect) {
    la::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n * n; ++i) a.data()[i] = a_flat[i];
    la::LuFactor lu(a);
    lu.solve(rhs);
    return rhs;
  }

  // Sparse iterative: CSR + Jacobi-preconditioned GMRES.
  std::vector<la::Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (a_flat[i * n + j] != 0.0) {
        trips.push_back({i, j, a_flat[i * n + j]});
      }
    }
  }
  auto csr = la::CsrMatrix::from_triplets(n, n, std::move(trips));
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  auto ctx = core::make_seq();
  la::CsrOperator op(csr);
  la::JacobiPreconditioner prec(csr);
  la::gmres(ctx, op, prec, rhs, x, std::min<std::size_t>(n, 60),
            {2000, 1e-12, 0.0});
  return x;
}

double kinetics_residual(const AtomicModel& m, const Zone& z,
                         std::span<const double> populations) {
  const std::size_t n = m.num_levels();
  std::vector<la::Triplet> trips;
  accumulate_rates(m, z, trips);
  std::vector<double> r(n, 0.0);
  for (const auto& t : trips) {
    r[t.row] += t.value * populations[t.col];
  }
  double worst = 0.0;
  for (std::size_t i = 1; i < n; ++i) {  // row 0 is the closure
    worst = std::max(worst, std::abs(r[i]));
  }
  return worst;
}

BatchReport process_zones(core::ExecContext& ctx, const AtomicModel& m,
                          std::span<const Zone> zones, SolveMethod method,
                          ThreadMode mode, std::size_t workers,
                          double mem_bytes,
                          std::vector<std::vector<double>>* out) {
  BatchReport rep;
  rep.zones = zones.size();
  rep.total_workers = workers;

  const double n = static_cast<double>(m.num_levels());
  const double ntrans = static_cast<double>(m.transitions.size());
  // Per-zone work: rate evaluation (~40 flops/transition for up+down+rad),
  // matrix assembly, and the solve.
  const double rate_flops = 40.0 * ntrans;
  const double assemble_flops = 4.0 * ntrans + n;
  double solve_flops;
  if (method == SolveMethod::DenseDirect) {
    solve_flops = 2.0 / 3.0 * n * n * n + 2.0 * n * n;
  } else {
    // Iterative: ~n/2 GMRES iterations of 2*nnz each (empirical fit).
    solve_flops = 0.5 * n * 2.0 * (2.0 * ntrans + n);
  }
  const double per_zone = rate_flops + assemble_flops + solve_flops;
  rep.flops = per_zone * static_cast<double>(zones.size());

  // Memory-constrained concurrency.
  if (mode == ThreadMode::ZoneParallel) {
    const auto fit = static_cast<std::size_t>(mem_bytes /
                                              m.workspace_bytes());
    rep.active_workers = std::clamp<std::size_t>(fit, 1, workers);
  } else {
    // One zone live at a time: always fits; lanes cooperate on the
    // transition loop and the factorization's row updates.
    rep.active_workers =
        std::min<std::size_t>(workers,
                              static_cast<std::size_t>(ntrans + n));
  }

  // Real computation (populations) + cost accounting.
  if (out != nullptr) {
    out->clear();
    out->reserve(zones.size());
    for (const auto& z : zones) out->push_back(solve_zone(m, z, method));
  }
  ctx.record_kernel({rep.flops, rep.flops * 2.0});

  const double lane_flops =
      ctx.model().machine().flops() / static_cast<double>(workers);
  const double efficiency =
      mode == ThreadMode::TransitionParallel ? 0.7 : 1.0;
  rep.modeled_time = rep.flops / (lane_flops *
                                  static_cast<double>(rep.active_workers) *
                                  efficiency);
  return rep;
}

}  // namespace coe::kinetics
