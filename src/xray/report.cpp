#include "xray/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/trace.hpp"

namespace coe::xray {

namespace {

const char* kind_name(net::NetEvent::Kind k) {
  switch (k) {
    case net::NetEvent::Kind::Send: return "send";
    case net::NetEvent::Kind::Recv: return "recv";
    case net::NetEvent::Kind::Compute: return "compute";
    case net::NetEvent::Kind::Allreduce: return "allreduce";
    case net::NetEvent::Kind::Barrier: return "barrier";
  }
  return "?";
}

obs::Json blame_json(const RankBlame& b) {
  obs::Json j = obs::Json::object();
  j.set("rank", obs::Json::number(b.rank));
  j.set("busy_s", obs::Json::number(b.busy_s));
  obs::Json sec = obs::Json::object();
  obs::Json pct = obs::Json::object();
  for (std::size_t k = 0; k < 5; ++k) {
    const Blame bk = static_cast<Blame>(k);
    sec.set(to_string(bk), obs::Json::number(b.seconds[k]));
    pct.set(to_string(bk), obs::Json::number(b.pct(bk)));
  }
  j.set("seconds", std::move(sec));
  j.set("pct", std::move(pct));
  j.set("dominant", obs::Json::string(to_string(b.dominant())));
  return j;
}

void blame_row(std::ostringstream& os, const RankBlame& b) {
  os << "    " << std::right << std::setw(5)
     << (b.rank < 0 ? std::string("fleet") : std::to_string(b.rank))
     << std::fixed << std::setprecision(1);
  for (std::size_t k = 0; k < 5; ++k) {
    os << std::setw(9) << b.pct(static_cast<Blame>(k));
  }
  os << "  " << to_string(b.dominant()) << "\n";
}

/// The viewer row merged net events land on; far above any simulated
/// stream id, so kernel rows and the net row never collide.
constexpr int kNetTid = 1000;

/// Piecewise map from one rank's local simulated clock onto the global
/// replay clock, built from its logged Compute windows: the k-th logged
/// compute interval [cum, cum+len) of local time ran at [global, global+len)
/// on the merged timeline.
struct ClockMap {
  struct Window {
    double local = 0.0, global = 0.0, len = 0.0;
  };
  std::vector<Window> windows;

  double to_global(double local) const {
    if (windows.empty()) return local;
    // Last window starting at or before `local` (windows are sorted).
    std::size_t lo = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (windows[i].local <= local) lo = i;
      else break;
    }
    const Window& w = windows[lo];
    // Clamp into the window: events past the last logged compute delta sit
    // at that window's end rather than drifting off the timeline.
    return w.global + std::min(std::max(0.0, local - w.local), w.len);
  }
};

ClockMap clock_map(const net::Replay& rep, std::size_t rank) {
  ClockMap m;
  if (rank >= rep.rank_events.size()) return m;
  double cum = 0.0;
  for (std::size_t ei : rep.rank_events[rank]) {
    const net::ReplayEvent& re = rep.events[ei];
    if (re.ev.kind != net::NetEvent::Kind::Compute) continue;
    m.windows.push_back({cum, re.t_before, re.ev.seconds});
    cum += re.ev.seconds;
  }
  return m;
}

}  // namespace

std::string straggler_report(const Report& rep, const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << "  ranks: " << rep.ranks << "   messages: " << rep.matched_messages
     << " matched";
  if (rep.unmatched_sends > 0) {
    os << ", " << rep.unmatched_sends << " UNMATCHED";
  }
  os << "   well-formed: " << (rep.well_formed ? "yes" : "NO") << "\n";
  os << std::scientific << std::setprecision(6);
  os << "  makespan: " << rep.makespan_s << " s   timeline: "
     << rep.timeline_s << " s   sequential bound: "
     << rep.replay.result.sequential_s << " s\n";
  os << "  distributed critical path: " << rep.critical_s << " s ("
     << std::fixed << std::setprecision(2) << 100.0 * rep.coverage
     << "% of makespan, " << rep.critical_path.size() << " steps)\n";
  os << "  critical path enters via:\n";
  for (std::size_t i = 0; i < 6; ++i) {
    if (rep.edge_seconds[i] <= 0.0) continue;
    os << "    " << std::left << std::setw(12)
       << to_string(static_cast<EdgeKind>(i)) << std::right << std::setw(12)
       << std::scientific << std::setprecision(3) << rep.edge_seconds[i]
       << " s  (" << std::fixed << std::setprecision(1)
       << (rep.critical_s > 0.0
               ? 100.0 * rep.edge_seconds[i] / rep.critical_s
               : 0.0)
       << "%)\n";
  }

  os << "  imbalance: max/mean busy " << std::fixed << std::setprecision(2)
     << rep.imbalance_ratio << "x";
  if (rep.straggler_rank >= 0) {
    os << "   dominant straggler: rank " << rep.straggler_rank;
  }
  os << "\n";
  if (!rep.stragglers.empty()) {
    os << "  stragglers (by logged compute):\n";
    for (const Straggler& s : rep.stragglers) {
      os << "    rank " << std::setw(4) << s.rank << ": " << std::scientific
         << std::setprecision(3) << s.busy_s << " s busy  (" << std::fixed
         << std::setprecision(1) << 100.0 * s.share << "% of fleet)\n";
    }
  }

  os << "  blame (% of timeline):\n";
  os << "    " << std::right << std::setw(5) << "rank" << std::setw(9)
     << "comp%" << std::setw(9) << "mem%" << std::setw(9) << "launch%"
     << std::setw(9) << "comm%" << std::setw(9) << "imbal%"
     << "  dominant\n";
  blame_row(os, rep.fleet);
  // Per-rank rows for the interesting ranks only: the stragglers plus the
  // worst comm-waiters (their neighbors, in a skewed run).
  std::set<int> rows;
  for (const Straggler& s : rep.stragglers) rows.insert(s.rank);
  std::vector<int> by_comm;
  for (const RankBlame& b : rep.blame) by_comm.push_back(b.rank);
  std::stable_sort(by_comm.begin(), by_comm.end(), [&](int a, int b) {
    return rep.blame[static_cast<std::size_t>(a)].pct(Blame::CommWait) >
           rep.blame[static_cast<std::size_t>(b)].pct(Blame::CommWait);
  });
  for (std::size_t i = 0; i < by_comm.size() && i < 4; ++i) {
    rows.insert(by_comm[i]);
  }
  for (int r : rows) {
    blame_row(os, rep.blame[static_cast<std::size_t>(r)]);
  }

  if (!rep.phases.empty()) {
    os << "  phase imbalance (across ranks):\n";
    os << "    " << std::left << std::setw(16) << "phase" << std::right
       << std::setw(12) << "mean (s)" << std::setw(12) << "max (s)"
       << std::setw(10) << "max rank" << std::setw(8) << "ratio\n";
    for (const PhaseImbalance& p : rep.phases) {
      os << "    " << std::left << std::setw(16) << p.name << std::right
         << std::setw(12) << std::scientific << std::setprecision(3)
         << p.mean_s << std::setw(12) << p.max_s << std::setw(10)
         << p.max_rank << std::setw(8) << std::fixed << std::setprecision(2)
         << p.ratio << "\n";
    }
  }

  for (const std::string& d : rep.diagnostics) {
    os << "  DIAGNOSTIC: " << d << "\n";
  }
  return os.str();
}

obs::Json report_json(const Report& rep, const std::string& name) {
  obs::Json j = obs::Json::object();
  j.set("schema", obs::Json::string("coe-xray-v1"));
  j.set("name", obs::Json::string(name));
  j.set("ranks", obs::Json::number(rep.ranks));
  j.set("well_formed", obs::Json::boolean(rep.well_formed));
  obs::Json diags = obs::Json::array();
  for (const std::string& d : rep.diagnostics) {
    diags.push(obs::Json::string(d));
  }
  j.set("diagnostics", std::move(diags));
  j.set("messages",
        obs::Json::number(static_cast<double>(rep.replay.result.messages)));
  j.set("matched",
        obs::Json::number(static_cast<double>(rep.matched_messages)));
  j.set("unmatched_sends",
        obs::Json::number(static_cast<double>(rep.unmatched_sends)));
  j.set("bytes", obs::Json::number(rep.replay.result.bytes));
  j.set("makespan_s", obs::Json::number(rep.makespan_s));
  j.set("timeline_s", obs::Json::number(rep.timeline_s));
  j.set("sequential_s", obs::Json::number(rep.replay.result.sequential_s));
  j.set("speedup", obs::Json::number(rep.replay.result.speedup()));
  j.set("critical_s", obs::Json::number(rep.critical_s));
  j.set("coverage", obs::Json::number(rep.coverage));
  j.set("critical_steps",
        obs::Json::number(static_cast<double>(rep.critical_path.size())));

  obs::Json edges = obs::Json::object();
  for (std::size_t i = 0; i < 6; ++i) {
    edges.set(to_string(static_cast<EdgeKind>(i)),
              obs::Json::number(rep.edge_seconds[i]));
  }
  j.set("critical_edge_seconds", std::move(edges));

  // The full path can run to thousands of steps on a long run; the
  // document keeps a bounded prefix (earliest-first) and says so.
  constexpr std::size_t kMaxSteps = 2048;
  obs::Json steps = obs::Json::array();
  for (std::size_t i = 0; i < rep.critical_path.size() && i < kMaxSteps;
       ++i) {
    const CritStep& s = rep.critical_path[i];
    const net::NetEvent& e = rep.replay.events[s.event].ev;
    obs::Json js = obs::Json::object();
    js.set("rank", obs::Json::number(s.rank));
    js.set("via", obs::Json::string(to_string(s.via)));
    js.set("kind", obs::Json::string(kind_name(e.kind)));
    js.set("peer", obs::Json::number(e.peer));
    js.set("start_s", obs::Json::number(s.start_s));
    js.set("end_s", obs::Json::number(s.end_s));
    steps.push(std::move(js));
  }
  j.set("critical_path", std::move(steps));
  j.set("critical_path_truncated",
        obs::Json::boolean(rep.critical_path.size() > kMaxSteps));

  obs::Json imb = obs::Json::object();
  imb.set("ratio", obs::Json::number(rep.imbalance_ratio));
  imb.set("straggler_rank", obs::Json::number(rep.straggler_rank));
  imb.set("mean_busy_s", obs::Json::number(rep.fleet.busy_s));
  double max_busy = 0.0;
  for (const RankBlame& b : rep.blame) max_busy = std::max(max_busy, b.busy_s);
  imb.set("max_busy_s", obs::Json::number(max_busy));
  j.set("imbalance", std::move(imb));

  obs::Json stragglers = obs::Json::array();
  for (const Straggler& s : rep.stragglers) {
    obs::Json js = obs::Json::object();
    js.set("rank", obs::Json::number(s.rank));
    js.set("busy_s", obs::Json::number(s.busy_s));
    js.set("share", obs::Json::number(s.share));
    stragglers.push(std::move(js));
  }
  j.set("stragglers", std::move(stragglers));

  obs::Json blame = obs::Json::array();
  for (const RankBlame& b : rep.blame) blame.push(blame_json(b));
  j.set("blame", std::move(blame));
  j.set("fleet_blame", blame_json(rep.fleet));

  obs::Json phases = obs::Json::array();
  for (const PhaseImbalance& p : rep.phases) {
    obs::Json jp = obs::Json::object();
    jp.set("name", obs::Json::string(p.name));
    jp.set("mean_s", obs::Json::number(p.mean_s));
    jp.set("max_s", obs::Json::number(p.max_s));
    jp.set("max_rank", obs::Json::number(p.max_rank));
    jp.set("ratio", obs::Json::number(p.ratio));
    phases.push(std::move(jp));
  }
  j.set("phases", std::move(phases));
  return j;
}

void write_merged_chrome_trace(
    std::ostream& os, const Report& rep,
    const std::vector<obs::TraceBuffer>* rank_traces) {
  const net::Replay& replay = rep.replay;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&]() {
    if (!first) os << ",";
    first = false;
  };

  std::uint64_t dropped = 0;
  std::string machine;
  double overhead = 0.0;
  for (int r = 0; r < rep.ranks; ++r) {
    sep();
    os << obs::process_metadata_events(r, "rank " + std::to_string(r));
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << r
       << ",\"tid\":" << kNetTid << ",\"args\":{\"name\":\"net\"}}";
    if (rank_traces && static_cast<std::size_t>(r) < rank_traces->size()) {
      const obs::TraceBuffer& buf = (*rank_traces)[static_cast<std::size_t>(r)];
      dropped += buf.dropped();
      if (machine.empty()) {
        machine = buf.source();
        overhead = buf.launch_overhead();
      }
    }
  }

  // The replayed net events, one complete event per action on the rank's
  // net row. Times are replay seconds -> trace microseconds.
  for (const net::ReplayEvent& re : replay.events) {
    const net::NetEvent& e = re.ev;
    if (e.rank < 0 || e.rank >= rep.ranks) continue;
    double start = re.t_before;
    double end = re.t_after;
    if (e.kind == net::NetEvent::Kind::Send) {
      start = re.wire_start;
      end = re.wire_end;
    } else if (e.kind == net::NetEvent::Kind::Recv) {
      end = std::max(re.done, re.t_before);
    }
    std::string name = kind_name(e.kind);
    if (e.kind == net::NetEvent::Kind::Send) {
      name += "->" + std::to_string(e.peer);
    } else if (e.kind == net::NetEvent::Kind::Recv) {
      name += "<-" + std::to_string(e.peer);
    }
    sep();
    // args carry "net_kind" (not "kind") so parse_chrome_trace treats the
    // net rows as decoration and only round-trips the kernel events.
    os << "{\"name\":\"" << obs::Json::escape(name)
       << "\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":"
       << obs::Json::number(start * 1e6).dump() << ",\"dur\":"
       << obs::Json::number(std::max(0.0, end - start) * 1e6).dump()
       << ",\"pid\":" << e.rank << ",\"tid\":" << kNetTid
       << ",\"args\":{\"net_kind\":\"" << kind_name(e.kind)
       << "\",\"peer\":" << e.peer << ",\"tag\":" << e.tag << ",\"bytes\":"
       << obs::Json::number(e.bytes).dump() << "}}";
  }

  // Flow arrows for matched Send/Recv pairs: from the send's wire start on
  // the source rank to the receive's completion on the destination.
  std::size_t flow = 0;
  for (const net::ReplayEvent& re : replay.events) {
    if (re.ev.kind != net::NetEvent::Kind::Recv || re.match < 0) continue;
    const net::ReplayEvent& snd =
        replay.events[static_cast<std::size_t>(re.match)];
    if (snd.ev.rank < 0 || snd.ev.rank >= rep.ranks || re.ev.rank < 0 ||
        re.ev.rank >= rep.ranks) {
      continue;
    }
    sep();
    os << "{\"name\":\"msg\",\"cat\":\"xray_msg\",\"ph\":\"s\",\"id\":"
       << flow << ",\"ts\":" << obs::Json::number(snd.wire_start * 1e6).dump()
       << ",\"pid\":" << snd.ev.rank << ",\"tid\":" << kNetTid << "},"
       << "{\"name\":\"msg\",\"cat\":\"xray_msg\",\"ph\":\"f\",\"bp\":\"e\","
       << "\"id\":" << flow << ",\"ts\":"
       << obs::Json::number(re.done * 1e6).dump() << ",\"pid\":" << re.ev.rank
       << ",\"tid\":" << kNetTid << "}";
    ++flow;
  }

  // Per-rank kernels/transfers, mapped from rank-local simulated time onto
  // the global clock through the rank's logged compute windows.
  if (rank_traces) {
    for (int r = 0; r < rep.ranks &&
                    static_cast<std::size_t>(r) < rank_traces->size();
         ++r) {
      const ClockMap map = clock_map(replay, static_cast<std::size_t>(r));
      for (const auto& e :
           (*rank_traces)[static_cast<std::size_t>(r)].snapshot()) {
        if (obs::is_marker(e.kind)) continue;
        const double g = map.to_global(e.t_start);
        sep();
        os << "{\"name\":\"" << obs::Json::escape(e.label) << "\",\"cat\":\""
           << obs::Json::escape(e.phase) << "\",\"ph\":\"X\",\"ts\":"
           << obs::Json::number(g * 1e6).dump() << ",\"dur\":"
           << obs::Json::number(e.duration * 1e6).dump() << ",\"pid\":" << r
           << ",\"tid\":" << e.stream << ",\"args\":{\"kind\":\""
           << to_string(e.kind) << "\",\"bound\":\"" << to_string(e.bound)
           << "\",\"backend\":\"" << obs::Json::escape(e.backend)
           << "\",\"flops\":" << obs::Json::number(e.flops).dump()
           << ",\"bytes\":" << obs::Json::number(e.bytes).dump()
           << ",\"stream\":" << e.stream << ",\"dep\":" << e.dep << "}}";
      }
    }
  }

  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << dropped << ",\"machine\":\"" << obs::Json::escape(machine)
     << "\",\"launch_overhead_s\":" << obs::Json::number(overhead).dump()
     << ",\"ranks\":" << rep.ranks << ",\"merged\":true}}";
}

std::string merged_chrome_trace_json(
    const Report& rep, const std::vector<obs::TraceBuffer>* rank_traces) {
  std::ostringstream os;
  write_merged_chrome_trace(os, rep, rank_traces);
  return os.str();
}

void publish(const Report& rep, obs::MetricsRegistry& metrics) {
  metrics.set("xray.ranks", rep.ranks);
  metrics.set("xray.well_formed", rep.well_formed ? 1.0 : 0.0);
  metrics.set("xray.messages",
              static_cast<double>(rep.replay.result.messages));
  metrics.set("xray.matched", static_cast<double>(rep.matched_messages));
  metrics.set("xray.unmatched_sends",
              static_cast<double>(rep.unmatched_sends));
  metrics.set("xray.makespan_s", rep.makespan_s);
  metrics.set("xray.timeline_s", rep.timeline_s);
  metrics.set("xray.critical_s", rep.critical_s);
  metrics.set("xray.coverage", rep.coverage);
  metrics.set("xray.imbalance_ratio", rep.imbalance_ratio);
  metrics.set("xray.straggler_rank", rep.straggler_rank);
  metrics.set("xray.straggler_share",
              rep.stragglers.empty() ? 0.0 : rep.stragglers.front().share);
  for (std::size_t k = 0; k < 5; ++k) {
    const Blame b = static_cast<Blame>(k);
    metrics.set(std::string("xray.blame.") + to_string(b) + "_pct",
                rep.fleet.pct(b));
  }
}

bool write_artifacts(const std::string& dir, const std::string& name,
                     const Report& rep,
                     const std::vector<obs::TraceBuffer>* rank_traces) {
  {
    std::ofstream os(dir + "/XRAY_" + name + ".json");
    if (!os) return false;
    os << report_json(rep, name).dump() << "\n";
  }
  if (rank_traces) {
    std::ofstream os(dir + "/XTRACE_" + name + ".json");
    if (!os) return false;
    write_merged_chrome_trace(os, rep, rank_traces);
    os << "\n";
  }
  return true;
}

}  // namespace coe::xray
