#pragma once
// Umbrella header for coe::xray — cluster-wide trace merge, distributed
// critical path, and straggler/imbalance attribution (DESIGN.md §16).

#include "xray/merge.hpp"
#include "xray/report.hpp"
