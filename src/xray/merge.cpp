#include "xray/merge.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace coe::xray {

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::Root: return "root";
    case EdgeKind::Program: return "program";
    case EdgeKind::Message: return "message";
    case EdgeKind::Injection: return "injection";
    case EdgeKind::Ejection: return "ejection";
    case EdgeKind::Collective: return "collective";
  }
  return "?";
}

const char* to_string(Blame b) {
  switch (b) {
    case Blame::Compute: return "compute";
    case Blame::Memory: return "memory";
    case Blame::LaunchTransfer: return "launch_transfer";
    case Blame::CommWait: return "comm_wait";
    case Blame::Imbalance: return "imbalance";
  }
  return "?";
}

Blame RankBlame::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < 5; ++i) {
    if (seconds[i] > seconds[best]) best = i;
  }
  return static_cast<Blame>(best);
}

namespace {

/// Which interval of an event the backward walk is currently chained
/// through: the rank's program clock, a send's injection-engine (wire)
/// occupancy, or a receive's ejection-engine drain.
enum class Aspect : std::uint8_t { Program, Wire, Eject };

struct Walker {
  const net::Replay& rep;
  Report& out;
  // Per-event index of the same rank's previous Send / previous Recv (the
  // event holding the engine before this one), -1 when none.
  std::vector<std::ptrdiff_t> prev_send;
  std::vector<std::ptrdiff_t> prev_recv;

  explicit Walker(const net::Replay& r, Report& o) : rep(r), out(o) {
    prev_send.assign(rep.events.size(), -1);
    prev_recv.assign(rep.events.size(), -1);
    for (const auto& order : rep.rank_events) {
      std::ptrdiff_t ls = -1, lr = -1;
      for (std::size_t ei : order) {
        prev_send[ei] = ls;
        prev_recv[ei] = lr;
        const auto k = rep.events[ei].ev.kind;
        if (k == net::NetEvent::Kind::Send) ls = static_cast<std::ptrdiff_t>(ei);
        if (k == net::NetEvent::Kind::Recv) lr = static_cast<std::ptrdiff_t>(ei);
      }
    }
  }

  void emit(std::size_t ei, EdgeKind via, double lower, double upper) {
    CritStep s;
    s.event = ei;
    s.rank = rep.events[ei].ev.rank;
    s.via = via;
    s.start_s = lower;
    s.end_s = upper;
    out.critical_path.push_back(s);
    out.edge_seconds[static_cast<std::size_t>(via)] += upper - lower;
  }

  struct Pred {
    bool has = false;
    std::size_t ei = 0;
    Aspect aspect = Aspect::Program;
  };

  /// Same-rank program predecessor of event `ei` (the event whose t_after
  /// is this one's t_before).
  Pred program_pred(std::size_t ei) const {
    const net::ReplayEvent& re = rep.events[ei];
    if (re.pos == 0) return {};
    const auto& order =
        rep.rank_events[static_cast<std::size_t>(re.ev.rank)];
    return {true, order[re.pos - 1], Aspect::Program};
  }

  /// Runs the backward walk from the terminal constraint. Steps come out
  /// latest-first; analyze() reverses them.
  void walk(std::size_t ei, Aspect aspect, double upper) {
    const double eps = 1e-12 * std::max(1.0, rep.makespan_s);
    // Positions strictly decrease along every rank's chain, so the walk
    // cannot loop; the cap is a belt-and-braces guard.
    std::size_t guard = 2 * rep.events.size() + 16;
    while (guard-- > 0) {
      const net::ReplayEvent& re = rep.events[ei];
      const auto kind = re.ev.kind;
      double lower = 0.0;
      EdgeKind via = EdgeKind::Root;
      Pred pred;

      if (aspect == Aspect::Wire) {
        // A send's wire occupancy [wire_start, upper]; upper includes the
        // alpha latency when the consumer is a message edge.
        lower = re.wire_start;
        if (re.t_before >= re.inj_before) {
          via = EdgeKind::Program;
          pred = program_pred(ei);
        } else {
          via = EdgeKind::Injection;
          if (prev_send[ei] >= 0) {
            pred = {true, static_cast<std::size_t>(prev_send[ei]),
                    Aspect::Wire};
          }
        }
      } else if (aspect == Aspect::Eject ||
                 (kind == net::NetEvent::Kind::Recv &&
                  re.t_after > re.t_before)) {
        // A receive's drain [eject_start, done]: bound either by the
        // matched message's arrival or by the ejection engine still
        // draining the previous receive.
        lower = re.eject_start;
        if (re.arrival >= re.ej_before) {
          via = EdgeKind::Message;
          if (re.match >= 0) {
            pred = {true, static_cast<std::size_t>(re.match), Aspect::Wire};
          }
        } else {
          via = EdgeKind::Ejection;
          if (prev_recv[ei] >= 0) {
            pred = {true, static_cast<std::size_t>(prev_recv[ei]),
                    Aspect::Eject};
          }
        }
      } else if (kind == net::NetEvent::Kind::Allreduce ||
                 kind == net::NetEvent::Kind::Barrier) {
        if (re.entry <= re.t_before) {
          // This rank arrived last: the collective chains to its own
          // program.
          lower = re.t_before;
          via = EdgeKind::Program;
          pred = program_pred(ei);
        } else {
          // Bound by the last-arriving member of the group.
          lower = re.entry;
          via = EdgeKind::Collective;
          if (re.group >= 0 &&
              static_cast<std::size_t>(re.group) < rep.groups.size()) {
            std::size_t late = ei;
            double best = -1.0;
            for (std::size_t mi :
                 rep.groups[static_cast<std::size_t>(re.group)]) {
              if (rep.events[mi].t_before > best) {
                best = rep.events[mi].t_before;
                late = mi;
              }
            }
            pred = program_pred(late);
          }
        }
      } else if (kind == net::NetEvent::Kind::Send && re.ev.blocking &&
                 re.t_after > re.t_before) {
        // Blocking send: the program rode the wire to wire_end.
        lower = re.wire_start;
        if (re.t_before >= re.inj_before) {
          via = EdgeKind::Program;
          pred = program_pred(ei);
        } else {
          via = EdgeKind::Injection;
          if (prev_send[ei] >= 0) {
            pred = {true, static_cast<std::size_t>(prev_send[ei]),
                    Aspect::Wire};
          }
        }
      } else {
        // Compute, posted send (alpha), or any zero-advance event: plain
        // program chaining.
        if (re.t_after <= re.t_before) {
          // No clock advance — transparent link in the chain.
          pred = program_pred(ei);
          if (!pred.has) {
            if (upper > eps) {
              out.diagnostics.push_back(
                  "critical-path chain broke at rank " +
                  std::to_string(re.ev.rank) + " t=" +
                  std::to_string(upper) + "s — inconsistent replay");
            }
            return;
          }
          ei = pred.ei;
          aspect = pred.aspect;
          continue;
        }
        lower = re.t_before;
        via = EdgeKind::Program;
        pred = program_pred(ei);
      }

      if (!pred.has) via = EdgeKind::Root;
      emit(ei, via, lower, upper);
      if (!pred.has || lower <= eps) {
        if (!pred.has && lower > eps) {
          out.diagnostics.push_back(
              "critical-path chain broke at rank " +
              std::to_string(re.ev.rank) + " t=" + std::to_string(lower) +
              "s — inconsistent replay");
        }
        return;
      }
      ei = pred.ei;
      aspect = pred.aspect;
      upper = lower;
    }
    out.diagnostics.push_back(
        "critical-path walk exceeded its step budget — inconsistent replay");
  }
};

/// Finds the terminal constraint — the (event, aspect) whose completion
/// time equals the event makespan — and runs the walk from it.
void critical_path(const net::Replay& rep, Report& out) {
  const double M = rep.makespan_s;
  if (M <= 0.0 || rep.events.empty()) {
    out.coverage = 1.0;
    return;
  }
  Walker w(rep, out);
  for (std::size_t r = 0; r < rep.finish.size(); ++r) {
    if (rep.finish[r] >= M && !rep.rank_events[r].empty()) {
      w.walk(rep.rank_events[r].back(), Aspect::Program, M);
      break;
    }
    if (rep.inj[r] >= M) {
      // The injection engine outlived the program: the makespan is the
      // last posted send still on the wire.
      std::ptrdiff_t last = -1;
      for (std::size_t ei : rep.rank_events[r]) {
        if (rep.events[ei].ev.kind == net::NetEvent::Kind::Send) {
          last = static_cast<std::ptrdiff_t>(ei);
        }
      }
      if (last >= 0) {
        w.walk(static_cast<std::size_t>(last), Aspect::Wire, M);
        break;
      }
    }
    if (rep.ej[r] >= M) {
      std::ptrdiff_t last = -1;
      for (std::size_t ei : rep.rank_events[r]) {
        if (rep.events[ei].ev.kind == net::NetEvent::Kind::Recv) {
          last = static_cast<std::ptrdiff_t>(ei);
        }
      }
      if (last >= 0) {
        w.walk(static_cast<std::size_t>(last), Aspect::Eject, M);
        break;
      }
    }
  }
  std::reverse(out.critical_path.begin(), out.critical_path.end());
  for (const CritStep& s : out.critical_path) {
    out.critical_s += s.seconds();
  }
  out.coverage = M > 0.0 ? out.critical_s / M : 1.0;
}

/// Roofline fractions of one rank's kernel trace: how its busy time splits
/// into compute-bound roofline time, memory-bound roofline time, and
/// launch overhead + host<->device transfers.
struct TraceSplit {
  double compute = 1.0, memory = 0.0, launch_transfer = 0.0;
};

TraceSplit trace_split(const obs::TraceBuffer& buf) {
  TraceSplit f;
  double comp = 0.0, mem = 0.0, lx = 0.0;
  const double overhead = buf.launch_overhead();
  for (const auto& e : buf.snapshot()) {
    if (obs::is_marker(e.kind)) continue;
    if (e.kind == obs::TraceEvent::Kind::Kernel) {
      const double launch = std::min(e.duration, overhead);
      lx += launch;
      if (e.bound == obs::TraceEvent::Bound::Compute) {
        comp += e.duration - launch;
      } else {
        mem += e.duration - launch;
      }
    } else {
      lx += e.duration;
    }
  }
  const double tot = comp + mem + lx;
  if (tot > 0.0) {
    f.compute = comp / tot;
    f.memory = mem / tot;
    f.launch_transfer = lx / tot;
  }
  return f;
}

void phase_imbalance(const MergeInputs& in, Report& out) {
  if (!in.rank_traces) return;
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> per_phase;
  const std::size_t nr = static_cast<std::size_t>(in.ranks);
  for (std::size_t r = 0; r < nr && r < in.rank_traces->size(); ++r) {
    for (const auto& e : (*in.rank_traces)[r].snapshot()) {
      if (obs::is_marker(e.kind) || e.duration <= 0.0) continue;
      auto [it, fresh] = per_phase.try_emplace(e.phase);
      if (fresh) {
        it->second.assign(nr, 0.0);
        order.push_back(e.phase);
      }
      it->second[r] += e.duration;
    }
  }
  for (const std::string& name : order) {
    PhaseImbalance p;
    p.name = name;
    p.per_rank_s = per_phase[name];
    double sum = 0.0;
    for (std::size_t r = 0; r < p.per_rank_s.size(); ++r) {
      sum += p.per_rank_s[r];
      if (p.per_rank_s[r] > p.max_s) {
        p.max_s = p.per_rank_s[r];
        p.max_rank = static_cast<int>(r);
      }
    }
    p.mean_s = p.per_rank_s.empty() ? 0.0 : sum / p.per_rank_s.size();
    p.ratio = p.mean_s > 0.0 ? p.max_s / p.mean_s : 1.0;
    out.phases.push_back(std::move(p));
  }
}

}  // namespace

Report analyze(const MergeInputs& in) {
  Report out;
  if (!in.log || !in.cluster || in.ranks <= 0) {
    out.well_formed = false;
    out.diagnostics.push_back("xray::analyze needs a log, a cluster model, "
                              "and a positive rank count");
    return out;
  }
  out.ranks = in.ranks;
  out.replay = net::replay(*in.log, *in.cluster, in.ranks);
  const net::Replay& rep = out.replay;
  out.diagnostics = rep.diagnostics;
  out.makespan_s = rep.makespan_s;
  out.timeline_s = rep.result.timeline_s;
  for (const auto& re : rep.events) {
    if (re.ev.kind == net::NetEvent::Kind::Recv && re.match >= 0) {
      ++out.matched_messages;
    }
    if (re.ev.kind == net::NetEvent::Kind::Send && re.match < 0) {
      ++out.unmatched_sends;
    }
  }

  // The distributed critical path only makes sense over a replay that ran
  // to completion; a deadlocked one has partial clocks.
  if (rep.result.well_formed) critical_path(rep, out);

  // Five-way blame. Per rank: program-clock advances classify directly
  // (compute stays compute for now; sends, receive waits + drains, and
  // collective costs are comm-wait; waiting at collective entry for a
  // slower rank is imbalance), the tail from the rank's finish to the
  // event makespan is imbalance, and any bisection-floor excess beyond the
  // makespan is comm-wait on every rank (the fabric held everyone back).
  // The five buckets therefore sum to timeline_s exactly, per rank.
  const std::size_t nr = static_cast<std::size_t>(in.ranks);
  out.blame.resize(nr);
  std::vector<double> raw_busy(nr, 0.0);
  for (std::size_t r = 0; r < nr && r < rep.rank_events.size(); ++r) {
    RankBlame& b = out.blame[r];
    b.rank = static_cast<int>(r);
    auto add = [&](Blame k, double s) {
      b.seconds[static_cast<std::size_t>(k)] += s;
    };
    for (std::size_t ei : rep.rank_events[r]) {
      const net::ReplayEvent& re = rep.events[ei];
      const double adv = re.t_after - re.t_before;
      switch (re.ev.kind) {
        case net::NetEvent::Kind::Compute:
          raw_busy[r] += adv;
          break;
        case net::NetEvent::Kind::Send:
        case net::NetEvent::Kind::Recv:
          add(Blame::CommWait, adv);
          break;
        case net::NetEvent::Kind::Allreduce:
        case net::NetEvent::Kind::Barrier:
          add(Blame::Imbalance, std::max(0.0, re.entry - re.t_before));
          add(Blame::CommWait, re.cost);
          break;
      }
    }
    const double finish = r < rep.finish.size() ? rep.finish[r] : 0.0;
    add(Blame::Imbalance, std::max(0.0, out.makespan_s - finish));
    add(Blame::CommWait, std::max(0.0, out.timeline_s - out.makespan_s));
    b.busy_s = raw_busy[r];

    // Refine the rank's busy seconds through its kernel trace's roofline
    // classification; without a trace everything stays Compute.
    TraceSplit f;
    if (in.rank_traces && r < in.rank_traces->size() &&
        !(*in.rank_traces)[r].empty()) {
      f = trace_split((*in.rank_traces)[r]);
    }
    add(Blame::Compute, raw_busy[r] * f.compute);
    add(Blame::Memory, raw_busy[r] * f.memory);
    add(Blame::LaunchTransfer, raw_busy[r] * f.launch_transfer);
  }

  // Fleet view: across-rank mean of every bucket.
  out.fleet.rank = -1;
  double busy_sum = 0.0, busy_max = 0.0;
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t k = 0; k < 5; ++k) {
      out.fleet.seconds[k] += out.blame[r].seconds[k] / nr;
    }
    busy_sum += raw_busy[r];
    if (raw_busy[r] > busy_max) {
      busy_max = raw_busy[r];
      out.straggler_rank = static_cast<int>(r);
    }
  }
  out.fleet.busy_s = busy_sum / nr;
  if (busy_sum > 0.0) {
    out.imbalance_ratio = busy_max / (busy_sum / nr);
    std::vector<std::size_t> by_busy(nr);
    for (std::size_t r = 0; r < nr; ++r) by_busy[r] = r;
    std::stable_sort(by_busy.begin(), by_busy.end(),
                     [&](std::size_t a, std::size_t b) {
                       return raw_busy[a] > raw_busy[b];
                     });
    const std::size_t k = std::min<std::size_t>(nr, 5);
    for (std::size_t i = 0; i < k; ++i) {
      out.stragglers.push_back({static_cast<int>(by_busy[i]),
                                raw_busy[by_busy[i]],
                                raw_busy[by_busy[i]] / busy_sum});
    }
  }

  phase_imbalance(in, out);
  out.well_formed = rep.result.well_formed && out.diagnostics.empty();
  return out;
}

}  // namespace coe::xray
