#pragma once
// Exporters for the merged cluster view: a human-readable straggler /
// imbalance report, the coe-xray-v1 JSON document (the XRAY_*.json
// artifact distributed benches write next to their BENCH_ JSON), the
// merged multi-rank Chrome trace (one viewer process per rank, matched
// Send/Recv pairs drawn as flow arrows), and the xray.* metrics family.

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "xray/merge.hpp"

namespace coe::xray {

/// Fixed-width text report: run summary, critical-path edge breakdown,
/// imbalance ratio + top-k stragglers, the fleet five-way blame split, a
/// per-rank blame table (stragglers plus the worst comm-waiters), the
/// per-phase imbalance table, and any diagnostics.
std::string straggler_report(const Report& rep, const std::string& title);

/// Builds the coe-xray-v1 document.
obs::Json report_json(const Report& rep, const std::string& name);

/// Writes the merged Chrome trace: per-rank process metadata rows
/// (process_name "rank N", sort index N), every replayed net event as a
/// complete event on a dedicated per-rank "net" row, one s->f flow pair
/// per matched Send/Recv, and — when per-rank kernel traces are given —
/// each rank's kernels/transfers mapped from rank-local simulated time
/// onto the global replay clock via that rank's logged compute windows.
void write_merged_chrome_trace(
    std::ostream& os, const Report& rep,
    const std::vector<obs::TraceBuffer>* rank_traces = nullptr);

/// Same, as a string.
std::string merged_chrome_trace_json(
    const Report& rep,
    const std::vector<obs::TraceBuffer>* rank_traces = nullptr);

/// Publishes the merged view as xray.* gauges (ranks, makespan/timeline,
/// critical path + coverage, message counts, imbalance ratio, straggler
/// rank/share, and the fleet blame percentages).
void publish(const Report& rep, obs::MetricsRegistry& metrics);

/// Writes XRAY_<name>.json (the coe-xray-v1 report) and, when traces are
/// given, XTRACE_<name>.json (the merged Chrome trace) into `dir`.
/// Returns false if either file could not be opened.
bool write_artifacts(const std::string& dir, const std::string& name,
                     const Report& rep,
                     const std::vector<obs::TraceBuffer>* rank_traces = nullptr);

}  // namespace coe::xray
