#pragma once
// coe::xray — cluster-wide observability (DESIGN.md section 16). Every
// distributed driver already leaves per-rank artifacts behind: a NetLog of
// its communication actions and compute deltas, per-rank NetStats, and
// (optionally) per-rank stream-tagged obs::TraceBuffer kernel traces. This
// module merges them into ONE view of the run:
//
//  * the net::replay schedule places every rank's events on a common
//    clock, with Send/Recv pairs matched exactly by the same FIFO
//    (src, dst, tag) discipline the mailbox substrate enforces;
//  * the prof-style critical path is extended ACROSS ranks: message edges
//    chain a receive's completion to the matched send on the source rank,
//    injection/ejection edges chain through the NIC engines, collective
//    edges jump to the last-arriving rank. The resulting distributed
//    critical path tiles [0, makespan] exactly, so its length equals the
//    net::reprice makespan (fuzz-tested to 1e-9);
//  * per-rank wall time is split five ways — compute / memory /
//    launch-transfer / comm-wait / imbalance — summing to 100%, and
//    across-rank imbalance (max/mean busy ratio, top-k stragglers,
//    per-phase ratios from the rank traces) names who is slow and who is
//    merely waiting.
//
// Everything works offline from the logs; nothing here is on any rank's
// hot path.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/reprice.hpp"
#include "obs/trace.hpp"

namespace coe::xray {

/// Which cross-rank constraint bound a critical step's start time.
enum class EdgeKind : std::uint8_t {
  Root,        ///< the chain reached time zero
  Program,     ///< previous event in the same rank's program order
  Message,     ///< the matched send on the source rank (comm wait)
  Injection,   ///< the source NIC's injection engine was still busy
  Ejection,    ///< this rank's ejection engine was still draining
  Collective,  ///< the last-arriving rank of a collective
};

const char* to_string(EdgeKind k);

/// The five-way blame taxonomy. Compute/Memory/LaunchTransfer partition a
/// rank's logged compute seconds (refined by its kernel trace's roofline
/// classification when one is provided; all Compute otherwise); CommWait
/// is program-clock time spent in sends, receive waits + drains, and
/// collective costs; Imbalance is idle time — waiting at collective entry
/// for slower ranks, plus the tail between the rank's own finish and the
/// run's makespan.
enum class Blame : std::uint8_t {
  Compute,
  Memory,
  LaunchTransfer,
  CommWait,
  Imbalance,
};

const char* to_string(Blame b);

/// One step of the distributed critical path, earliest-first. `event`
/// indexes Report::replay.events; [start_s, end_s] is the slice of the
/// makespan this step accounts for (consecutive slices abut, so they sum
/// to the makespan).
struct CritStep {
  std::size_t event = 0;
  int rank = 0;
  EdgeKind via = EdgeKind::Root;
  double start_s = 0.0;
  double end_s = 0.0;

  double seconds() const { return end_s - start_s; }
};

/// Per-rank five-way decomposition of the run's timeline. The five
/// seconds[] entries sum to the report's timeline_s for every rank, so
/// the percentage split always sums to 100.
struct RankBlame {
  int rank = 0;
  double seconds[5] = {0.0, 0.0, 0.0, 0.0, 0.0};  ///< indexed by Blame
  double busy_s = 0.0;  ///< logged compute seconds (the straggler metric)

  double total_s() const {
    return seconds[0] + seconds[1] + seconds[2] + seconds[3] + seconds[4];
  }
  double pct(Blame b) const {
    const double t = total_s();
    return t > 0.0 ? 100.0 * seconds[static_cast<std::size_t>(b)] / t : 0.0;
  }
  Blame dominant() const;
};

struct Straggler {
  int rank = 0;
  double busy_s = 0.0;
  double share = 0.0;  ///< fraction of the fleet's total busy seconds
};

/// Across-rank time spread of one phase (from the per-rank kernel traces).
struct PhaseImbalance {
  std::string name;
  double mean_s = 0.0;
  double max_s = 0.0;
  int max_rank = 0;
  double ratio = 1.0;  ///< max_s / mean_s, >= 1 whenever any time accrued
  std::vector<double> per_rank_s;
};

/// The merged cluster-wide view of one run.
struct Report {
  int ranks = 0;
  /// True only when the replay completed without diagnostics: no blocked
  /// receives, no unmatched sends, no out-of-range ranks, no mismatched
  /// collectives. False reports keep whatever could be computed and carry
  /// the human-readable reasons in `diagnostics`.
  bool well_formed = true;
  std::vector<std::string> diagnostics;

  net::Replay replay;        ///< the merged schedule (owns the events)
  double makespan_s = 0.0;   ///< replay event makespan
  double timeline_s = 0.0;   ///< reprice timeline (bisection-floored)
  std::size_t matched_messages = 0;
  std::size_t unmatched_sends = 0;

  std::vector<CritStep> critical_path;  ///< earliest-first, tiles [0, M]
  double critical_s = 0.0;
  double coverage = 0.0;  ///< critical_s / makespan_s (1.0 when tiled)
  double edge_seconds[6] = {0, 0, 0, 0, 0, 0};  ///< by EdgeKind

  std::vector<RankBlame> blame;  ///< per rank; each totals timeline_s
  RankBlame fleet;               ///< across-rank mean (rank = -1)
  std::vector<Straggler> stragglers;  ///< top-k by busy_s, descending
  double imbalance_ratio = 1.0;  ///< max busy / mean busy across ranks
  int straggler_rank = -1;       ///< argmax busy (-1 when no compute)
  std::vector<PhaseImbalance> phases;  ///< first-use order (needs traces)
};

struct MergeInputs {
  const net::NetLog* log = nullptr;
  const hsim::ClusterModel* cluster = nullptr;
  int ranks = 0;
  /// Optional per-rank kernel traces, indexed by rank (size == ranks).
  /// Refines compute blame into compute/memory/launch-transfer via the
  /// recorded roofline classification and feeds the per-phase imbalance
  /// table; without them all busy time is blamed on Compute and the phase
  /// table is empty.
  const std::vector<obs::TraceBuffer>* rank_traces = nullptr;
};

/// Merges the rank logs into the cluster-wide report. Malformed inputs
/// (unmatched sends, truncated logs that deadlock the replay) produce a
/// well_formed=false report with diagnostics — never a crash.
Report analyze(const MergeInputs& in);

}  // namespace coe::xray
