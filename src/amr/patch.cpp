#include "amr/patch.hpp"

namespace coe::amr {

namespace {

/// Maps an index to its periodic image inside [lo, hi].
std::int64_t wrap(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  const std::int64_t n = hi - lo + 1;
  std::int64_t r = (v - lo) % n;
  if (r < 0) r += n;
  return lo + r;
}

std::int64_t clampi(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

void PatchLevel::fill_ghosts(const std::string& field) {
  for (auto& pp : patches_) {
    Patch& p = *pp;
    PatchField& dst = p.field(field);
    const Box gb = p.box().grown(ghost_);
    for (std::int64_t i = gb.ilo; i <= gb.ihi; ++i) {
      for (std::int64_t j = gb.jlo; j <= gb.jhi; ++j) {
        if (p.box().contains(i, j)) continue;
        // Source index after applying the physical boundary rule.
        std::int64_t si = i, sj = j;
        if (!domain_.contains(i, j)) {
          if (bc_ == BoundaryKind::Periodic) {
            si = wrap(i, domain_.ilo, domain_.ihi);
            sj = wrap(j, domain_.jlo, domain_.jhi);
          } else {
            si = clampi(i, domain_.ilo, domain_.ihi);
            sj = clampi(j, domain_.jlo, domain_.jhi);
          }
        }
        // Own interior after wrapping/clamping?
        if (p.box().contains(si, sj)) {
          dst.at(i, j) = p.field(field).at(si, sj);
          continue;
        }
        for (const auto& qq : patches_) {
          if (qq->box().contains(si, sj)) {
            dst.at(i, j) = qq->field(field).at(si, sj);
            break;
          }
        }
      }
    }
  }
}

bool PatchLevel::covers(std::int64_t i, std::int64_t j) const {
  for (const auto& p : patches_) {
    if (p->box().contains(i, j)) return true;
  }
  return false;
}

double PatchLevel::value_at(const std::string& field, std::int64_t i,
                            std::int64_t j) const {
  for (const auto& p : patches_) {
    if (p->box().contains(i, j)) return p->field(field).at(i, j);
  }
  return 0.0;
}

void prolong_into(const PatchLevel& coarse, Patch& fine_patch,
                  const std::string& field, std::int64_t ratio) {
  PatchField& dst = fine_patch.field(field);
  const Box gb = fine_patch.box().grown(fine_patch.ghost());
  for (std::int64_t i = gb.ilo; i <= gb.ihi; ++i) {
    for (std::int64_t j = gb.jlo; j <= gb.jhi; ++j) {
      if (fine_patch.box().contains(i, j)) continue;
      auto fdiv = [ratio](std::int64_t a) {
        return a >= 0 ? a / ratio : -((-a + ratio - 1) / ratio);
      };
      std::int64_t ci = fdiv(i), cj = fdiv(j);
      // Clamp into the coarse domain (outflow-style at physical walls).
      ci = std::max(coarse.domain().ilo, std::min(ci, coarse.domain().ihi));
      cj = std::max(coarse.domain().jlo, std::min(cj, coarse.domain().jhi));
      if (coarse.covers(ci, cj)) {
        dst.at(i, j) = coarse.value_at(field, ci, cj);
      }
    }
  }
}

void restrict_onto(const PatchLevel& fine, PatchLevel& coarse,
                   const std::string& field, std::int64_t ratio) {
  const double inv = 1.0 / static_cast<double>(ratio * ratio);
  for (std::size_t cp = 0; cp < coarse.num_patches(); ++cp) {
    Patch& patch = coarse.patch(cp);
    PatchField& dst = patch.field(field);
    for (std::int64_t i = patch.box().ilo; i <= patch.box().ihi; ++i) {
      for (std::int64_t j = patch.box().jlo; j <= patch.box().jhi; ++j) {
        const std::int64_t fi = i * ratio, fj = j * ratio;
        if (!fine.covers(fi, fj)) continue;
        double sum = 0.0;
        bool all = true;
        for (std::int64_t di = 0; di < ratio && all; ++di) {
          for (std::int64_t dj = 0; dj < ratio; ++dj) {
            if (!fine.covers(fi + di, fj + dj)) {
              all = false;
              break;
            }
            sum += fine.value_at(field, fi + di, fj + dj);
          }
        }
        if (all) dst.at(i, j) = sum * inv;
      }
    }
  }
}

}  // namespace coe::amr
