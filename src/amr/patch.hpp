#pragma once
// mini-SAMRAI (Section 4.10.5): integer index boxes, patches with ghost
// cells, patch levels with ghost exchange, and a two-level refinement
// hierarchy with prolongation/restriction. Patch field storage draws from
// the Umpire-style MemoryPool so repeated regridding amortizes allocation
// cost, exactly the design the paper describes.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "core/pool.hpp"

namespace coe::amr {

/// Closed integer index box [lo, hi] in 2D cell space.
struct Box {
  std::int64_t ilo = 0, jlo = 0;
  std::int64_t ihi = -1, jhi = -1;

  std::int64_t ni() const { return ihi - ilo + 1; }
  std::int64_t nj() const { return jhi - jlo + 1; }
  bool empty() const { return ni() <= 0 || nj() <= 0; }
  std::size_t size() const {
    return empty() ? 0 : static_cast<std::size_t>(ni() * nj());
  }

  bool contains(std::int64_t i, std::int64_t j) const {
    return i >= ilo && i <= ihi && j >= jlo && j <= jhi;
  }

  Box grown(std::int64_t g) const {
    return {ilo - g, jlo - g, ihi + g, jhi + g};
  }

  static Box intersect(const Box& a, const Box& b) {
    return {std::max(a.ilo, b.ilo), std::max(a.jlo, b.jlo),
            std::min(a.ihi, b.ihi), std::min(a.jhi, b.jhi)};
  }

  /// Refines cell indices by `ratio` (each cell becomes ratio x ratio).
  Box refined(std::int64_t ratio) const {
    return {ilo * ratio, jlo * ratio, (ihi + 1) * ratio - 1,
            (jhi + 1) * ratio - 1};
  }
  Box coarsened(std::int64_t ratio) const {
    auto fdiv = [](std::int64_t a, std::int64_t b) {
      return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    return {fdiv(ilo, ratio), fdiv(jlo, ratio), fdiv(ihi, ratio),
            fdiv(jhi, ratio)};
  }
};

/// Cell-centered double field on a ghosted patch box, pool-allocated.
class PatchField {
 public:
  PatchField(core::MemoryPool& pool, const Box& interior, std::int64_t ghost)
      : interior_(interior), ghost_(ghost),
        data_(pool, interior.grown(ghost).size()) {
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] = 0.0;
  }

  const Box& interior() const { return interior_; }
  std::int64_t ghost() const { return ghost_; }

  double& at(std::int64_t i, std::int64_t j) {
    const Box gb = interior_.grown(ghost_);
    assert(gb.contains(i, j));
    return data_[static_cast<std::size_t>((i - gb.ilo) * gb.nj() +
                                          (j - gb.jlo))];
  }
  double at(std::int64_t i, std::int64_t j) const {
    return const_cast<PatchField*>(this)->at(i, j);
  }

 private:
  Box interior_;
  std::int64_t ghost_;
  core::PoolArray<double> data_;
};

/// A patch: one box plus named fields.
class Patch {
 public:
  Patch(core::MemoryPool& pool, const Box& box, std::int64_t ghost)
      : pool_(&pool), box_(box), ghost_(ghost) {}

  const Box& box() const { return box_; }
  std::int64_t ghost() const { return ghost_; }

  PatchField& add_field(const std::string& name) {
    auto [it, fresh] = fields_.try_emplace(name, nullptr);
    if (fresh) {
      it->second = std::make_unique<PatchField>(*pool_, box_, ghost_);
    }
    return *it->second;
  }
  PatchField& field(const std::string& name) { return *fields_.at(name); }
  const PatchField& field(const std::string& name) const {
    return *fields_.at(name);
  }
  std::vector<std::string> field_names() const {
    std::vector<std::string> names;
    for (const auto& [k, v] : fields_) names.push_back(k);
    return names;
  }

 private:
  core::MemoryPool* pool_;
  Box box_;
  std::int64_t ghost_;
  std::map<std::string, std::unique_ptr<PatchField>> fields_;
};

enum class BoundaryKind { Periodic, Outflow };

/// One refinement level: patches tiling (part of) the domain.
class PatchLevel {
 public:
  PatchLevel(core::MemoryPool& pool, Box domain, std::int64_t ghost,
             BoundaryKind bc)
      : pool_(&pool), domain_(domain), ghost_(ghost), bc_(bc) {}

  const Box& domain() const { return domain_; }
  std::int64_t ghost() const { return ghost_; }
  BoundaryKind boundary() const { return bc_; }

  Patch& add_patch(const Box& box) {
    patches_.push_back(std::make_unique<Patch>(*pool_, box, ghost_));
    return *patches_.back();
  }
  std::size_t num_patches() const { return patches_.size(); }
  Patch& patch(std::size_t p) { return *patches_[p]; }
  const Patch& patch(std::size_t p) const { return *patches_[p]; }

  /// Fills every patch's ghost cells for `field` from sibling patches and
  /// the physical boundary condition.
  void fill_ghosts(const std::string& field);

  /// Reads the level's value at a cell (must be interior to some patch).
  double value_at(const std::string& field, std::int64_t i,
                  std::int64_t j) const;
  bool covers(std::int64_t i, std::int64_t j) const;

 private:
  core::MemoryPool* pool_;
  Box domain_;
  std::int64_t ghost_;
  BoundaryKind bc_;
  std::vector<std::unique_ptr<Patch>> patches_;
};

/// Piecewise-constant prolongation of `field` from the coarse level into
/// a fine patch's ghost+interior region not covered by fine siblings.
void prolong_into(const PatchLevel& coarse, Patch& fine_patch,
                  const std::string& field, std::int64_t ratio);

/// Conservative (averaging) restriction of fine data onto coarse patches.
void restrict_onto(const PatchLevel& fine, PatchLevel& coarse,
                   const std::string& field, std::int64_t ratio);

}  // namespace coe::amr
