#include "amr/euler.hpp"

#include <array>
#include <cmath>

namespace coe::amr {

const char* EulerSolver::kRho = "rho";
const char* EulerSolver::kMx = "mx";
const char* EulerSolver::kMy = "my";
const char* EulerSolver::kE = "E";

namespace {

struct Cons {
  double rho, mx, my, e;
};

Cons to_cons(const PrimState& s, double gamma) {
  const double e =
      s.p / (gamma - 1.0) + 0.5 * s.rho * (s.u * s.u + s.v * s.v);
  return {s.rho, s.rho * s.u, s.rho * s.v, e};
}

PrimState to_prim(const Cons& c, double gamma) {
  PrimState s;
  s.rho = c.rho;
  s.u = c.mx / c.rho;
  s.v = c.my / c.rho;
  s.p = (gamma - 1.0) * (c.e - 0.5 * c.rho * (s.u * s.u + s.v * s.v));
  return s;
}

double sound_speed(const PrimState& s, double gamma) {
  return std::sqrt(gamma * std::max(s.p, 1e-12) / s.rho);
}

std::array<double, 4> flux_x(const Cons& c, const PrimState& s) {
  return {c.mx, c.mx * s.u + s.p, c.my * s.u, (c.e + s.p) * s.u};
}

std::array<double, 4> flux_y(const Cons& c, const PrimState& s) {
  return {c.my, c.mx * s.v, c.my * s.v + s.p, (c.e + s.p) * s.v};
}

}  // namespace

EulerSolver::EulerSolver(core::ExecContext& ctx, PatchLevel& level,
                         EulerConfig cfg)
    : ctx_(&ctx), level_(&level), cfg_(cfg) {
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    auto& patch = level_->patch(p);
    for (const char* f : {kRho, kMx, kMy, kE}) {
      patch.add_field(f);
      patch.add_field(std::string(f) + "_new");
    }
  }
}

void EulerSolver::init(
    const std::function<PrimState(std::int64_t, std::int64_t)>& f) {
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    auto& patch = level_->patch(p);
    const Box& b = patch.box();
    for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
      for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
        const Cons c = to_cons(f(i, j), cfg_.gamma);
        patch.field(kRho).at(i, j) = c.rho;
        patch.field(kMx).at(i, j) = c.mx;
        patch.field(kMy).at(i, j) = c.my;
        patch.field(kE).at(i, j) = c.e;
      }
    }
  }
  t_ = 0.0;
}

double EulerSolver::compute_dt() const {
  double max_speed = 1e-12;
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    const auto& patch = level_->patch(p);
    const Box& b = patch.box();
    for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
      for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
        const PrimState s = primitive_at(i, j);
        const double c = sound_speed(s, cfg_.gamma);
        max_speed = std::max(max_speed,
                             std::max(std::abs(s.u), std::abs(s.v)) + c);
      }
    }
  }
  return cfg_.cfl * std::min(cfg_.dx, cfg_.dy) / max_speed;
}

void EulerSolver::step(double dt) {
  for (const char* f : {kRho, kMx, kMy, kE}) level_->fill_ghosts(f);

  const double gamma = cfg_.gamma;
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    auto& patch = level_->patch(p);
    const Box& b = patch.box();
    auto& rho = patch.field(kRho);
    auto& mx = patch.field(kMx);
    auto& my = patch.field(kMy);
    auto& en = patch.field(kE);

    auto cons_at = [&](std::int64_t i, std::int64_t j) {
      return Cons{rho.at(i, j), mx.at(i, j), my.at(i, j), en.at(i, j)};
    };
    // LLF numerical flux between two cells along a given axis.
    auto llf = [&](const Cons& l, const Cons& r, bool xdir) {
      const PrimState pl = to_prim(l, gamma);
      const PrimState pr = to_prim(r, gamma);
      const auto fl = xdir ? flux_x(l, pl) : flux_y(l, pl);
      const auto fr = xdir ? flux_x(r, pr) : flux_y(r, pr);
      const double al = (xdir ? std::abs(pl.u) : std::abs(pl.v)) +
                        sound_speed(pl, gamma);
      const double ar = (xdir ? std::abs(pr.u) : std::abs(pr.v)) +
                        sound_speed(pr, gamma);
      const double a = std::max(al, ar);
      std::array<double, 4> f;
      const double ul[4] = {l.rho, l.mx, l.my, l.e};
      const double ur[4] = {r.rho, r.mx, r.my, r.e};
      for (int k = 0; k < 4; ++k) {
        f[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * a * (ur[k] - ul[k]);
      }
      return f;
    };

    // ~220 flops and ~320 bytes per cell (4 fields, 2 flux pairs).
    ctx_->record_kernel({220.0 * double(b.size()), 320.0 * double(b.size())});

    for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
      for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
        const Cons c = cons_at(i, j);
        const auto fxl = llf(cons_at(i - 1, j), c, true);
        const auto fxr = llf(c, cons_at(i + 1, j), true);
        const auto fyl = llf(cons_at(i, j - 1), c, false);
        const auto fyr = llf(c, cons_at(i, j + 1), false);
        const double u[4] = {c.rho, c.mx, c.my, c.e};
        double unew[4];
        for (int k = 0; k < 4; ++k) {
          unew[k] = u[k] - dt / cfg_.dx * (fxr[k] - fxl[k]) -
                    dt / cfg_.dy * (fyr[k] - fyl[k]);
        }
        patch.field(std::string(kRho) + "_new").at(i, j) = unew[0];
        patch.field(std::string(kMx) + "_new").at(i, j) = unew[1];
        patch.field(std::string(kMy) + "_new").at(i, j) = unew[2];
        patch.field(std::string(kE) + "_new").at(i, j) = unew[3];
      }
    }
  }
  // Commit.
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    auto& patch = level_->patch(p);
    const Box& b = patch.box();
    for (const char* f : {kRho, kMx, kMy, kE}) {
      auto& dst = patch.field(f);
      auto& src = patch.field(std::string(f) + "_new");
      for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
        for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
          dst.at(i, j) = src.at(i, j);
        }
      }
    }
  }
  t_ += dt;
}

std::size_t EulerSolver::advance(double t_end) {
  std::size_t steps = 0;
  while (t_ < t_end) {
    double dt = compute_dt();
    if (t_ + dt > t_end) dt = t_end - t_;
    step(dt);
    ++steps;
  }
  return steps;
}

double EulerSolver::total_mass() const {
  double m = 0.0;
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    const auto& patch = level_->patch(p);
    const Box& b = patch.box();
    for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
      for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
        m += patch.field(kRho).at(i, j);
      }
    }
  }
  return m * cfg_.dx * cfg_.dy;
}

double EulerSolver::total_energy() const {
  double e = 0.0;
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    const auto& patch = level_->patch(p);
    const Box& b = patch.box();
    for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
      for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
        e += patch.field(kE).at(i, j);
      }
    }
  }
  return e * cfg_.dx * cfg_.dy;
}

double EulerSolver::total_momentum_x() const {
  double m = 0.0;
  for (std::size_t p = 0; p < level_->num_patches(); ++p) {
    const auto& patch = level_->patch(p);
    const Box& b = patch.box();
    for (std::int64_t i = b.ilo; i <= b.ihi; ++i) {
      for (std::int64_t j = b.jlo; j <= b.jhi; ++j) {
        m += patch.field(kMx).at(i, j);
      }
    }
  }
  return m * cfg_.dx * cfg_.dy;
}

PrimState EulerSolver::primitive_at(std::int64_t i, std::int64_t j) const {
  const Cons c{level_->value_at(kRho, i, j), level_->value_at(kMx, i, j),
               level_->value_at(kMy, i, j), level_->value_at(kE, i, j)};
  return to_prim(c, cfg_.gamma);
}

PrimState sod_state(std::int64_t i, std::int64_t i_mid) {
  if (i < i_mid) return {1.0, 0.0, 0.0, 1.0};
  return {0.125, 0.0, 0.0, 0.1};
}

}  // namespace coe::amr
