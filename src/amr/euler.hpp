#pragma once
// CleverLeaf in miniature (Section 4.10.5, Table 5): a patch-based 2D
// compressible Euler solver (ideal gas, first-order local Lax-Friedrichs
// fluxes) running on the mini-SAMRAI patch hierarchy. All numerics are
// real; kernels charge flop/byte counts to the execution context so the
// Table 5 machine comparison can be regenerated.

#include <functional>
#include <string>

#include "amr/patch.hpp"

namespace coe::amr {

/// Primitive state (density, velocities, pressure).
struct PrimState {
  double rho = 1.0;
  double u = 0.0;
  double v = 0.0;
  double p = 1.0;
};

struct EulerConfig {
  double gamma = 1.4;
  double dx = 1.0;
  double dy = 1.0;
  double cfl = 0.4;
};

class EulerSolver {
 public:
  /// Registers the conserved fields on every patch of the level.
  EulerSolver(core::ExecContext& ctx, PatchLevel& level, EulerConfig cfg);

  /// Initializes from a primitive-state function of cell index.
  void init(const std::function<PrimState(std::int64_t, std::int64_t)>& f);

  /// CFL-limited timestep for the current state.
  double compute_dt() const;

  /// One conservative update of size dt.
  void step(double dt);

  /// Advances to time `t_end`; returns steps taken.
  std::size_t advance(double t_end);
  double time() const { return t_; }

  /// Domain integrals (conservation checks).
  double total_mass() const;
  double total_energy() const;
  double total_momentum_x() const;

  PrimState primitive_at(std::int64_t i, std::int64_t j) const;

  static const char* kRho;
  static const char* kMx;
  static const char* kMy;
  static const char* kE;

 private:
  core::ExecContext* ctx_;
  PatchLevel* level_;
  EulerConfig cfg_;
  double t_ = 0.0;
};

/// Standard Sod shock-tube initializer along x (interface at i = i_mid).
PrimState sod_state(std::int64_t i, std::int64_t i_mid);

}  // namespace coe::amr
