#pragma once
// Two-level Berger-Collela-style AMR advance for the CleverLeaf Euler
// solver: one coarse step, `ratio` fine substeps with ghost data prolonged
// from the coarse level, then conservative restriction of the fine
// solution onto the coarse cells it covers. (Flux correction at the
// coarse-fine boundary is omitted; conservation tests therefore use
// configurations where the interface flux mismatch vanishes.)

#include "amr/euler.hpp"

namespace coe::amr {

class TwoLevelEuler {
 public:
  /// Both levels must already carry the conserved fields; `fine` has a
  /// refined index space (cell i_coarse <-> cells [i*ratio, (i+1)*ratio)).
  TwoLevelEuler(core::ExecContext& ctx, PatchLevel& coarse, PatchLevel& fine,
                std::int64_t ratio, EulerConfig coarse_cfg);

  EulerSolver& coarse_solver() { return coarse_solver_; }
  EulerSolver& fine_solver() { return fine_solver_; }

  /// Initializes both levels from the same cell-indexed primitive function
  /// (evaluated in coarse index space; fine cells use their refined index
  /// mapped back through the ratio).
  void init(const std::function<PrimState(double, double)>& f_xy);

  /// Stable dt across both levels (fine substeps are dt / ratio).
  double compute_dt() const;

  /// One coarse step + ratio fine substeps + restriction.
  void step(double dt);
  std::size_t advance(double t_end);
  double time() const { return t_; }

  /// Solution lookup preferring the fine level where it exists (values in
  /// coarse index space).
  PrimState best_at(std::int64_t ci, std::int64_t cj) const;

 private:
  void fill_fine_from_coarse();

  PatchLevel* coarse_;
  PatchLevel* fine_;
  std::int64_t ratio_;
  EulerSolver coarse_solver_;
  EulerSolver fine_solver_;
  double t_ = 0.0;
};

}  // namespace coe::amr
