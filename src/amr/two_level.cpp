#include "amr/two_level.hpp"

namespace coe::amr {

namespace {

EulerConfig refined(EulerConfig cfg, std::int64_t ratio) {
  cfg.dx /= static_cast<double>(ratio);
  cfg.dy /= static_cast<double>(ratio);
  return cfg;
}

}  // namespace

TwoLevelEuler::TwoLevelEuler(core::ExecContext& ctx, PatchLevel& coarse,
                             PatchLevel& fine, std::int64_t ratio,
                             EulerConfig coarse_cfg)
    : coarse_(&coarse), fine_(&fine), ratio_(ratio),
      coarse_solver_(ctx, coarse, coarse_cfg),
      fine_solver_(ctx, fine, refined(coarse_cfg, ratio)) {}

void TwoLevelEuler::init(
    const std::function<PrimState(double, double)>& f_xy) {
  coarse_solver_.init([&](std::int64_t i, std::int64_t j) {
    return f_xy(static_cast<double>(i) + 0.5, static_cast<double>(j) + 0.5);
  });
  const double inv = 1.0 / static_cast<double>(ratio_);
  fine_solver_.init([&](std::int64_t i, std::int64_t j) {
    return f_xy((static_cast<double>(i) + 0.5) * inv,
                (static_cast<double>(j) + 0.5) * inv);
  });
  t_ = 0.0;
}

double TwoLevelEuler::compute_dt() const {
  const double dc = coarse_solver_.compute_dt();
  const double df = fine_solver_.compute_dt() * static_cast<double>(ratio_);
  return std::min(dc, df);
}

void TwoLevelEuler::fill_fine_from_coarse() {
  for (std::size_t p = 0; p < fine_->num_patches(); ++p) {
    for (const char* f :
         {EulerSolver::kRho, EulerSolver::kMx, EulerSolver::kMy,
          EulerSolver::kE}) {
      prolong_into(*coarse_, fine_->patch(p), f, ratio_);
    }
  }
}

void TwoLevelEuler::step(double dt) {
  coarse_solver_.step(dt);
  const double fine_dt = dt / static_cast<double>(ratio_);
  for (std::int64_t sub = 0; sub < ratio_; ++sub) {
    fill_fine_from_coarse();
    fine_solver_.step(fine_dt);
  }
  for (const char* f : {EulerSolver::kRho, EulerSolver::kMx,
                        EulerSolver::kMy, EulerSolver::kE}) {
    restrict_onto(*fine_, *coarse_, f, ratio_);
  }
  t_ += dt;
}

std::size_t TwoLevelEuler::advance(double t_end) {
  std::size_t steps = 0;
  while (t_ < t_end) {
    double dt = compute_dt();
    if (t_ + dt > t_end) dt = t_end - t_;
    step(dt);
    ++steps;
  }
  return steps;
}

PrimState TwoLevelEuler::best_at(std::int64_t ci, std::int64_t cj) const {
  const std::int64_t fi = ci * ratio_ + ratio_ / 2;
  const std::int64_t fj = cj * ratio_ + ratio_ / 2;
  if (fine_->covers(fi, fj)) return fine_solver_.primitive_at(fi, fj);
  return coarse_solver_.primitive_at(ci, cj);
}

}  // namespace coe::amr
