#pragma once
// coe::mem -- capacity-aware device memory (DESIGN.md section 14).
//
// The paper's applications lived inside a 16 GB V100 (or P100), and the
// porting work it describes -- Umpire pools, unified-memory paging on
// Sierra, "perform all computations on the GPU to minimize data migration"
// -- is largely about what happens when a working set flirts with that
// limit. DeviceArena is the model of that limit: a per-device resident-set
// tracker that enforces `hsim::MachineModel::mem_capacity`.
//
// Named allocations are admitted to the resident set on first device
// touch (admission of never-before-seen data is free, like cudaMalloc).
// When admitting would exceed capacity, least-recently-used victims are
// evicted -- and evictions are *priced*: a victim whose device copy is
// dirty spills d2h through ExecContext::record_transfer (it rides the DMA
// engine and shows up in the timeline, traces, and the prof DAG under a
// "mem/spill" span); a clean victim is dropped free, because the host
// backing copy is still current. Re-touching an evicted allocation
// re-faults it h2d ("mem/fault" span). Explicit upload()/writeback()
// calls replace drivers' raw record_transfer pairs; when the destination
// copy is already current they can be *elided* (skipped and counted)
// under ArenaConfig::elide_clean_transfers.
//
// Accounting contract: with the working set under capacity and elision
// off, an arena-attached run performs exactly the record_transfer calls a
// detached run performs -- bit-identical simulated time and counters
// (enforced by tests/test_mem.cpp).

#include <cstddef>
#include <cstdint>
#include <map>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/exec.hpp"
#include "core/pool.hpp"
#include "core/residency.hpp"

namespace coe::obs {
class MetricsRegistry;
}
namespace coe::prof {
class Profiler;
}

namespace coe::mem {

struct ArenaConfig {
  /// Device capacity in bytes; 0 takes the attached context's machine
  /// model (`mem_capacity`).
  double capacity_bytes = 0.0;
  /// Skip (and count) uploads whose device copy is already current and
  /// writebacks whose host copy is. Off, every explicit upload/writeback
  /// is priced exactly like the raw record_transfer it replaces.
  bool elide_clean_transfers = true;
  /// Optional span sink: arena-induced traffic (spills, faults) is wrapped
  /// in "mem/spill" / "mem/fault" prof::Scope regions so the DAG and the
  /// bottleneck report attribute the stalls. Null disables (and leaves the
  /// context's timeline phases untouched).
  prof::Profiler* profiler = nullptr;
};

/// Per-device resident-set model. Attach to the device ExecContext
/// (the constructor does this) and the context's upload()/writeback()/
/// touch_device()/touch_host() conveniences route through it. Not
/// thread-safe; one per device context, like the context itself.
class DeviceArena final : public core::ResidencyManager {
 public:
  struct Stats {
    double resident_bytes = 0.0;    ///< currently admitted
    double highwater_bytes = 0.0;   ///< max of resident_bytes
    std::uint64_t admits = 0;       ///< admissions into the resident set
    std::uint64_t evictions = 0;    ///< LRU victims removed
    double spill_bytes = 0.0;       ///< d2h traffic from dirty evictions
    std::uint64_t faults = 0;       ///< priced (re-)admissions h2d
    double fault_bytes = 0.0;
    std::uint64_t uploads = 0;      ///< explicit h2d copies priced
    double upload_bytes = 0.0;
    std::uint64_t writebacks = 0;   ///< explicit/coherence d2h copies priced
    double writeback_bytes = 0.0;
    std::uint64_t elided_transfers = 0;  ///< copies skipped as redundant
    double elided_bytes = 0.0;
  };

  /// Attaches itself to `ctx` (ctx.set_arena(this)); detaches on
  /// destruction if still attached.
  explicit DeviceArena(core::ExecContext& ctx, ArenaConfig cfg = {});
  ~DeviceArena() override;

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  double capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  core::ExecContext& context() { return *ctx_; }

  /// The Umpire-style pool backing ArenaArray allocations.
  core::MemoryPool& pool() { return pool_; }

  /// Registers a named allocation without touching it (it becomes
  /// resident on first device touch). Re-declaring grows the recorded
  /// size; it never shrinks it.
  void declare(std::string_view name, double bytes);

  // ResidencyManager:
  void device_touch(std::string_view name, double bytes,
                    Access access) override;
  void host_touch(std::string_view name, double bytes,
                  Access access) override;
  bool upload(std::string_view name, double bytes) override;
  bool writeback(std::string_view name, double bytes) override;
  void release(std::string_view name) override;

  // Introspection (tests, reports).
  bool resident(std::string_view name) const;
  bool dirty(std::string_view name) const;
  /// Resident allocations, least recently used first (the eviction order).
  std::vector<std::string> lru_order() const;

  /// Publishes the mem.* metrics family (DESIGN.md section 14):
  /// counters mem.admits/evictions/spill_bytes/faults/fault_bytes/
  /// uploads/upload_bytes/writebacks/writeback_bytes/elided_transfers/
  /// elided_bytes/pool_reuse, gauges mem.resident_bytes/
  /// resident_highwater/capacity_bytes/allocations/pool_highwater_bytes.
  void publish(obs::MetricsRegistry& reg) const;

 private:
  struct Entry {
    double bytes = 0.0;
    bool resident = false;
    bool device_dirty = false;  ///< device copy newer than host backing
    bool host_dirty = false;    ///< host copy newer than device copy
    bool ever_admitted = false; ///< first admission is free; later = fault
    std::uint64_t last_use = 0;
  };

  Entry& touch_entry(std::string_view name, double bytes);
  /// Evicts LRU victims (never `keep`) until `bytes` more fit.
  void make_room(double bytes, const Entry* keep);
  void evict(Entry& e);
  void admit(Entry& e, bool charge_fill);

  core::ExecContext* ctx_;
  ArenaConfig cfg_;
  double capacity_ = 0.0;
  std::map<std::string, Entry, std::less<>> entries_;
  std::uint64_t tick_ = 0;
  Stats stats_;
  core::MemoryPool pool_;
};

/// RAII typed array: storage from the arena's MemoryPool, residency under
/// the arena's capacity. The touch helpers are the read/write idiom of
/// core::Buffer expressed against the arena.
template <typename T>
class ArenaArray {
 public:
  ArenaArray(DeviceArena& arena, std::string name, std::size_t n)
      : arena_(&arena), name_(std::move(name)), n_(n),
        data_(static_cast<T*>(arena.pool().allocate(n * sizeof(T)))) {
    for (std::size_t i = 0; i < n_; ++i) new (data_ + i) T{};
    arena_->declare(name_, static_cast<double>(n_ * sizeof(T)));
  }
  ~ArenaArray() {
    arena_->release(name_);
    for (std::size_t i = 0; i < n_; ++i) data_[i].~T();
    arena_->pool().deallocate(data_, n_ * sizeof(T));
  }

  ArenaArray(const ArenaArray&) = delete;
  ArenaArray& operator=(const ArenaArray&) = delete;

  const std::string& name() const { return name_; }
  std::size_t size() const { return n_; }
  double bytes() const { return static_cast<double>(n_ * sizeof(T)); }

  std::span<const T> device_read() {
    arena_->device_touch(name_, bytes(), DeviceArena::Access::Read);
    return {data_, n_};
  }
  std::span<T> device_write() {
    arena_->device_touch(name_, bytes(), DeviceArena::Access::Write);
    return {data_, n_};
  }
  std::span<const T> host_read() {
    arena_->host_touch(name_, bytes(), DeviceArena::Access::Read);
    return {data_, n_};
  }
  std::span<T> host_write() {
    arena_->host_touch(name_, bytes(), DeviceArena::Access::Write);
    return {data_, n_};
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  DeviceArena* arena_;
  std::string name_;
  std::size_t n_;
  T* data_;
};

}  // namespace coe::mem
