#pragma once
// Umbrella header for coe::mem, the capacity-aware device-memory model
// (DESIGN.md section 14): DeviceArena (residency, priced LRU eviction,
// transfer elision) and ArenaArray (pool-backed named allocations).

#include "mem/arena.hpp"
