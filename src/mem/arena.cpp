#include "mem/arena.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "prof/span.hpp"

namespace coe::mem {

DeviceArena::DeviceArena(core::ExecContext& ctx, ArenaConfig cfg)
    : ctx_(&ctx), cfg_(cfg) {
  capacity_ = cfg_.capacity_bytes > 0.0
                  ? cfg_.capacity_bytes
                  : ctx.model().machine().mem_capacity;
  ctx_->set_arena(this);
}

DeviceArena::~DeviceArena() {
  if (ctx_->arena() == this) ctx_->set_arena(nullptr);
}

void DeviceArena::declare(std::string_view name, double bytes) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.last_use = ++tick_;
  }
  if (bytes > it->second.bytes) {
    Entry& e = it->second;
    if (e.resident) {
      stats_.resident_bytes += bytes - e.bytes;
      e.bytes = bytes;
      if (stats_.resident_bytes > stats_.highwater_bytes) {
        stats_.highwater_bytes = stats_.resident_bytes;
      }
      make_room(0.0, &e);
    } else {
      e.bytes = bytes;
    }
  }
}

DeviceArena::Entry& DeviceArena::touch_entry(std::string_view name,
                                             double bytes) {
  declare(name, bytes);
  Entry& e = entries_.find(name)->second;
  e.last_use = ++tick_;
  return e;
}

void DeviceArena::make_room(double bytes, const Entry* keep) {
  if (bytes > capacity_) {
    throw std::length_error(
        "DeviceArena: a single allocation of " + std::to_string(bytes) +
        " bytes exceeds device capacity (" + std::to_string(capacity_) +
        " bytes)");
  }
  while (stats_.resident_bytes + bytes > capacity_) {
    Entry* victim = nullptr;
    for (auto& [n, e] : entries_) {
      if (!e.resident || &e == keep) continue;
      if (!victim || e.last_use < victim->last_use) victim = &e;
    }
    if (!victim) break;  // nothing left to evict but `keep`
    evict(*victim);
  }
}

void DeviceArena::evict(Entry& e) {
  if (e.device_dirty) {
    // The only current copy lives on the device: spill it back over the
    // DMA engine before dropping it. This is the priced part of eviction.
    prof::Scope span(cfg_.profiler, ctx_, "mem/spill");
    ctx_->record_transfer(e.bytes, /*to_device=*/false);
    stats_.spill_bytes += e.bytes;
    e.device_dirty = false;
  }
  // A clean victim drops free: the host backing copy is still current.
  e.resident = false;
  stats_.resident_bytes -= e.bytes;
  ++stats_.evictions;
}

void DeviceArena::admit(Entry& e, bool charge_fill) {
  make_room(e.bytes, &e);
  e.resident = true;
  stats_.resident_bytes += e.bytes;
  if (stats_.resident_bytes > stats_.highwater_bytes) {
    stats_.highwater_bytes = stats_.resident_bytes;
  }
  ++stats_.admits;
  if (charge_fill && (e.ever_admitted || e.host_dirty)) {
    // Re-fault of evicted data (or host-seeded data): the device copy has
    // to be rebuilt from the host backing store.
    prof::Scope span(cfg_.profiler, ctx_, "mem/fault");
    ctx_->record_transfer(e.bytes, /*to_device=*/true);
    ++stats_.faults;
    stats_.fault_bytes += e.bytes;
    e.host_dirty = false;
  }
  e.ever_admitted = true;
}

void DeviceArena::device_touch(std::string_view name, double bytes,
                               Access access) {
  Entry& e = touch_entry(name, bytes);
  if (!e.resident) {
    admit(e, /*charge_fill=*/true);
  } else if (e.host_dirty) {
    // Host wrote since the device copy was made and the driver touched the
    // device without an explicit upload: coherence re-upload.
    prof::Scope span(cfg_.profiler, ctx_, "mem/fault");
    ctx_->record_transfer(e.bytes, /*to_device=*/true);
    ++stats_.faults;
    stats_.fault_bytes += e.bytes;
    e.host_dirty = false;
  }
  if (access == Access::Write) {
    e.device_dirty = true;
    e.host_dirty = false;
  }
}

void DeviceArena::host_touch(std::string_view name, double bytes,
                             Access access) {
  Entry& e = touch_entry(name, bytes);
  if (e.resident && e.device_dirty) {
    // Device copy is newer: the host read observes it, so it comes back.
    prof::Scope span(cfg_.profiler, ctx_, "mem/spill");
    ctx_->record_transfer(e.bytes, /*to_device=*/false);
    ++stats_.writebacks;
    stats_.writeback_bytes += e.bytes;
    e.device_dirty = false;
  }
  if (access == Access::Write) {
    e.host_dirty = true;
    e.device_dirty = false;
  }
}

bool DeviceArena::upload(std::string_view name, double bytes) {
  Entry& e = touch_entry(name, bytes);
  if (cfg_.elide_clean_transfers && e.resident && !e.host_dirty) {
    ++stats_.elided_transfers;
    stats_.elided_bytes += bytes;
    return false;
  }
  // The upload itself is the fill, so admission charges no fault.
  if (!e.resident) admit(e, /*charge_fill=*/false);
  ctx_->record_transfer(bytes, /*to_device=*/true);
  ++stats_.uploads;
  stats_.upload_bytes += bytes;
  e.host_dirty = false;
  e.device_dirty = false;
  return true;
}

bool DeviceArena::writeback(std::string_view name, double bytes) {
  Entry& e = touch_entry(name, bytes);
  if (cfg_.elide_clean_transfers && !e.device_dirty) {
    // Host copy is already current (a clean resident copy, or a spill
    // already wrote it back): the d2h is redundant.
    ++stats_.elided_transfers;
    stats_.elided_bytes += bytes;
    return false;
  }
  ctx_->record_transfer(bytes, /*to_device=*/false);
  ++stats_.writebacks;
  stats_.writeback_bytes += bytes;
  e.device_dirty = false;
  return true;
}

void DeviceArena::release(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  if (it->second.resident) {
    // Freeing device memory is not a copy; no spill, no eviction count.
    stats_.resident_bytes -= it->second.bytes;
  }
  entries_.erase(it);
}

bool DeviceArena::resident(std::string_view name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.resident;
}

bool DeviceArena::dirty(std::string_view name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.device_dirty;
}

std::vector<std::string> DeviceArena::lru_order() const {
  std::vector<std::pair<std::uint64_t, std::string>> order;
  for (const auto& [n, e] : entries_) {
    if (e.resident) order.emplace_back(e.last_use, n);
  }
  std::sort(order.begin(), order.end());
  std::vector<std::string> names;
  names.reserve(order.size());
  for (auto& [t, n] : order) names.push_back(std::move(n));
  return names;
}

void DeviceArena::publish(obs::MetricsRegistry& reg) const {
  reg.add("mem.admits", static_cast<double>(stats_.admits));
  reg.add("mem.evictions", static_cast<double>(stats_.evictions));
  reg.add("mem.spill_bytes", stats_.spill_bytes);
  reg.add("mem.faults", static_cast<double>(stats_.faults));
  reg.add("mem.fault_bytes", stats_.fault_bytes);
  reg.add("mem.uploads", static_cast<double>(stats_.uploads));
  reg.add("mem.upload_bytes", stats_.upload_bytes);
  reg.add("mem.writebacks", static_cast<double>(stats_.writebacks));
  reg.add("mem.writeback_bytes", stats_.writeback_bytes);
  reg.add("mem.elided_transfers",
          static_cast<double>(stats_.elided_transfers));
  reg.add("mem.elided_bytes", stats_.elided_bytes);
  reg.add("mem.pool_reuse", static_cast<double>(pool_.stats().reuse_count));
  reg.set("mem.resident_bytes", stats_.resident_bytes);
  reg.set("mem.resident_highwater", stats_.highwater_bytes);
  reg.set("mem.capacity_bytes", capacity_);
  reg.set("mem.allocations", static_cast<double>(entries_.size()));
  reg.set("mem.pool_highwater_bytes",
          static_cast<double>(pool_.stats().highwater_bytes));
}

}  // namespace coe::mem
