#pragma once
// A small message-passing substrate in the spirit of the MPI programs the
// iCoE workload is built from (every production code in the paper is
// MPI-based; the paper's node-level work sat on top of existing scalable
// MPI implementations). Ranks are real threads with blocking mailboxes,
// so send/recv/collective semantics are genuine; traffic is counted so
// cluster models can price a run.
//
// Failure semantics (coe::resil integration): every blocking operation
// carries a real-time deadline, so a mismatched-tag recv or a lost peer
// surfaces as a thrown CommTimeout rather than an indefinite hang. When any
// rank exits with an exception — including an injected resil::RankFailure —
// the world aborts: peers blocked in recv/barrier/allreduce wake
// immediately and throw PeerFailure, and run() rethrows the original
// failure after joining everyone.
//
// Run-through recovery (coe::phoenix integration, DESIGN.md §17): with
// RunOptions::recoverable set, an injected RankFailure no longer aborts the
// world. The dead rank's thread retires quietly; survivors' blocked and
// subsequent operations raise the *recoverable* RankFailed instead of the
// fatal PeerFailure, and the ULFM-style primitive set — revoke(),
// agree_min(), repair()/await_repair(), park_spare()/adopted_view() — lets
// a recovery protocol rebuild the world: acknowledge the dead, bump the
// mailbox epoch (pre-repair in-flight messages are purged and returned so
// a logger can drain them), shrink the collective membership or substitute
// a parked warm spare under the dead rank's id, and resume.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/machine.hpp"
#include "obs/metrics.hpp"
#include "resil/fault.hpp"

namespace coe::mpi {

struct TrafficStats {
  std::size_t messages = 0;
  double bytes = 0.0;
  std::size_t allreduces = 0;
  std::size_t barriers = 0;
  std::size_t retries = 0;  ///< deadline expiries retried with backoff

  /// Prices the recorded traffic on a cluster model (sequentialized upper
  /// bound: every message pays alpha + beta * bytes).
  double modeled_time(const hsim::ClusterModel& net) const {
    return static_cast<double>(messages) * net.alpha + net.beta * bytes;
  }
};

/// A blocking operation exceeded its real-time deadline (no matching send,
/// or a peer stopped participating without the abort flag being raised).
struct CommTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Raised out of a blocking operation on a surviving rank after another
/// rank failed: the collective/message can never complete.
struct PeerFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Recoverable peer-death notification (recoverable worlds only): raised on
/// survivors instead of the fatal PeerFailure when a rank dies or the world
/// is revoked. `rank` is the first unacknowledged dead rank, or -1 when the
/// world was merely revoked. Catch it, run the recovery protocol
/// (revoke -> agree_min -> repair/await_repair), and continue.
struct RankFailed : std::runtime_error {
  RankFailed(int rank_, const std::string& what)
      : std::runtime_error(what), rank(rank_) {}
  int rank;
};

/// One in-flight message discarded by repair() when the mailbox epoch was
/// bumped. Returned to the repair leader so recovery tooling can log a
/// synthetic drain receive for it (keeping a net::replay of the run free of
/// unmatched sends).
struct PurgedMessage {
  int epoch = 0;  ///< mailbox epoch the message was posted in
  int src = 0;
  int dest = 0;
  int tag = 0;
  double bytes = 0.0;
};

/// Membership change executed by one repair: dead ranks are either retired
/// (shrink — collectives stop expecting them) or adopted by a parked spare
/// (the spare wakes up owning the dead rank's id and mailbox address).
struct RepairPlan {
  std::vector<int> retire;
  /// {dead rank, spare physical thread} pairs.
  std::vector<std::pair<int, int>> adopt;
};

struct RepairResult {
  int epoch = 0;  ///< the new mailbox epoch
  std::vector<PurgedMessage> purged;
};

/// What an adopted spare wakes up with: the identity it now owns and the
/// rank that performed the repair (so the spare knows whom to ask for
/// bootstrap state).
struct Adoption {
  int rank = -1;    ///< adopted rank id (-1: world shut down, no adoption)
  int leader = -1;  ///< rank that committed the repair
  int epoch = 0;    ///< epoch the adoption happened in
  bool adopted() const { return rank >= 0; }
};

struct RunOptions {
  /// Real-time deadline (seconds) for each blocking operation; expiry
  /// throws CommTimeout instead of hanging forever.
  double timeout_seconds = 30.0;
  /// Deadline-retry policy: an expired wait is retried up to this many
  /// times before CommTimeout is raised, each retry waiting an
  /// exponentially growing extension (retry_backoff_seconds doubling per
  /// attempt, with ±50% seeded jitter so ranks that timed out together do
  /// not re-arm in lockstep). 0 restores fail-immediately behavior.
  int max_retries = 2;
  double retry_backoff_seconds = 0.05;
  std::uint64_t retry_seed = 0x5eed;
  /// Fault-injection hook, consulted on every communicator operation with
  /// (rank, operations completed by that rank). Returning true raises
  /// resil::RankFailure inside that rank. Called concurrently from all
  /// rank threads — must be thread-safe (see resil::make_rank_fault_hook).
  std::function<bool(int, std::size_t)> fault_hook;
  /// Optional telemetry sink (not owned; must outlive run()). Publishes
  /// "mpi.messages"/".bytes"/".allreduces"/".barriers"/".retries" when the
  /// world finishes, and "mpi.timeouts"/".rank_failures"/".peer_failures"
  /// as they occur.
  obs::MetricsRegistry* metrics = nullptr;
  /// Run-through recovery (coe::phoenix): a rank dying with RankFailure no
  /// longer aborts the world — survivors get the recoverable RankFailed and
  /// the revoke/agree/repair primitives become usable. Any other exception
  /// (CommTimeout, user errors) still aborts fatally.
  bool recoverable = false;
  /// Number of ranks at the top of the world reserved as parked warm
  /// spares. They must call park_spare() immediately; they take no part in
  /// collectives until a repair adopts them under a dead rank's id. Only
  /// meaningful together with `recoverable`.
  int spares = 0;
};

class World;
class Communicator;

/// Handle on a pending nonblocking operation (MPI_Request analog). Sends
/// are eager on the mailbox substrate, so an isend's request is born
/// complete; an irecv's request completes inside wait()/waitall(), which
/// run through the same deadline/retry/abort machinery as blocking recv —
/// a pending request wakes with PeerFailure when any rank dies, and
/// deadline expiries are retried with backoff before CommTimeout.
class Request {
 public:
  Request() = default;
  /// True once the operation finished (always true for isend requests).
  bool done() const { return done_; }
  /// True if this handle refers to an operation at all.
  bool valid() const { return world_ != nullptr; }
  /// True if the operation was cancelled (waitall unwinding past a failure,
  /// or an explicit Communicator::cancel) before it could complete; the
  /// payload is empty and wait()/test() are no-ops.
  bool cancelled() const { return cancelled_; }
  /// Completed irecv payload (empty for sends or before completion).
  const std::vector<double>& data() const { return data_; }
  /// Moves the payload out (irecv, after wait).
  std::vector<double> take() { return std::move(data_); }

 private:
  friend class Communicator;
  World* world_ = nullptr;
  int self_ = -1;   ///< posting rank
  int peer_ = -1;   ///< source (irecv) or destination (isend)
  int tag_ = 0;
  bool is_recv_ = false;
  bool done_ = false;
  bool cancelled_ = false;
  std::vector<double> data_;
};

/// Per-rank handle (MPI_Comm analog). Valid only inside run().
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send/recv of double payloads.
  void send(int dest, int tag, std::vector<double> data);
  std::vector<double> recv(int src, int tag);

  // --- nonblocking point-to-point (coe::net substrate) -------------------
  /// Posts a send; on this eager substrate the message is deposited
  /// immediately and the returned request is already complete (the traffic
  /// is counted at post time, like a buffered MPI_Isend).
  Request isend(int dest, int tag, std::vector<double> data);
  /// Posts a receive for (src, tag); completion is deferred to
  /// wait()/waitall()/test(). Multiple pending irecvs on the same (src,
  /// tag) drain the FIFO mailbox in the order they are *waited*, not the
  /// order they were posted.
  Request irecv(int src, int tag);
  /// Blocks until `r` completes; returns the payload for receives (empty
  /// for sends). Waiting an already-complete request is a no-op returning
  /// its payload. Deadline expiry retries with backoff, then CommTimeout;
  /// a peer failure wakes the wait with PeerFailure.
  std::vector<double> wait(Request& r);
  /// Completes every request, in order; done requests are skipped, so a
  /// mix of complete and pending handles is fine. Payloads stay readable
  /// through Request::data(). If a wait fails mid-flight (PeerFailure /
  /// RankFailed / CommTimeout), already-completed requests keep their
  /// payloads and every not-yet-completed request is cancelled before the
  /// failure propagates — no half-consumed request can leak a matched
  /// message into a repaired world.
  void waitall(std::span<Request> rs);
  /// Nonblocking completion probe: true (and fills the request's payload)
  /// if the operation can finish now.
  bool test(Request& r);
  /// Cancels a pending request: it reports done with an empty payload and
  /// cancelled() == true. Completed requests are left untouched.
  void cancel(Request& r);

  /// In-place sum-allreduce over all ranks.
  void allreduce_sum(std::span<double> inout);
  double allreduce_sum(double v);
  /// Max-allreduce, a native single-pass reduction on the shared-buffer
  /// plumbing (one collective, no messages).
  double allreduce_max(double v);
  void allreduce_max(std::span<double> inout);
  /// The pre-net allreduce_max: a two-phase gather/broadcast through rank
  /// 0 costing one message per non-root rank each way. Kept test-only so
  /// the suite can assert the native path is value-identical.
  double allreduce_max_legacy(double v);

  void barrier();

  // --- run-through recovery primitives (coe::phoenix, DESIGN.md §17) -----
  // All of these require RunOptions::recoverable; calling them on a
  // non-recoverable world throws std::logic_error.

  /// True when the world was built with RunOptions::recoverable.
  bool recoverable() const;
  /// Current mailbox epoch (bumped by every committed repair). Useful for
  /// salting logged tags so pre- and post-repair traffic cannot alias.
  int epoch() const;
  /// Dead-but-unacknowledged ranks, in death order.
  std::vector<int> failed_ranks() const;
  /// Poisons the world: every non-recovery operation on every rank raises
  /// RankFailed until a repair commits. Idempotent; survivors call it on
  /// catching RankFailed so peers still blocked in ordinary operations are
  /// flushed into the recovery protocol too.
  void revoke();
  /// Fault-tolerant agreement: blocks until every *live* active rank has
  /// contributed, then returns the minimum contributed value on all of
  /// them. Ranks dying mid-agreement are excluded and the round still
  /// completes (their death is reported through `dead`, the set of
  /// unacknowledged dead ranks snapshotted at completion — identical on
  /// every participant). Usable while the world is revoked; a kill can
  /// still land on entry, raising RankFailure in the victim.
  std::uint64_t agree_min(std::uint64_t value,
                          std::vector<int>* dead = nullptr);
  /// Leader side of recovery: acknowledges the plan's dead ranks (retiring
  /// them or activating spare adoptions), bumps the mailbox epoch, purges
  /// in-flight messages (returned for drain logging), resets collective
  /// state, and clears the revocation. Ranks that died after the agreement
  /// stay unacknowledged and re-trigger RankFailed on the next operation.
  RepairResult repair(const RepairPlan& plan);
  /// Non-leader side: blocks until a repair commits (returns the new
  /// epoch) or another death lands first (raises RankFailed so the caller
  /// restarts recovery).
  int await_repair(int epoch_before);
  /// Spare side: parks this rank until a repair adopts it (returns the
  /// adopted identity) or every non-parked thread has finished, which
  /// releases all spares with rank = -1. Parked ranks cannot be killed by
  /// the fault hook.
  Adoption park_spare();
  /// A view of the same world under a different rank id — how an adopted
  /// spare continues the dead rank's program. Using it while the original
  /// owner's thread is live would corrupt the mailbox; only use ids handed
  /// out by park_spare().
  Communicator adopted_view(int rank) const;

 private:
  friend TrafficStats run(int, const RunOptions&,
                          const std::function<void(Communicator&)>&);
  Communicator(World* w, int rank) : world_(w), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Runs fn on `ranks` concurrent threads with a shared mailbox world;
/// returns the aggregate traffic stats once every rank finishes. Any rank
/// throwing aborts the world (unblocking survivors) and propagates out of
/// run() after joining the others; survivors' secondary PeerFailure
/// exceptions never mask the original error.
TrafficStats run(int ranks, const RunOptions& opts,
                 const std::function<void(Communicator&)>& fn);

/// Default options: 30 s deadlines, no fault injection.
TrafficStats run(int ranks, const std::function<void(Communicator&)>& fn);

}  // namespace coe::mpi
