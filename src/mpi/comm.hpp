#pragma once
// A small message-passing substrate in the spirit of the MPI programs the
// iCoE workload is built from (every production code in the paper is
// MPI-based; the paper's node-level work sat on top of existing scalable
// MPI implementations). Ranks are real threads with blocking mailboxes,
// so send/recv/collective semantics are genuine; traffic is counted so
// cluster models can price a run.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <span>
#include <vector>

#include "core/machine.hpp"

namespace coe::mpi {

struct TrafficStats {
  std::size_t messages = 0;
  double bytes = 0.0;
  std::size_t allreduces = 0;
  std::size_t barriers = 0;

  /// Prices the recorded traffic on a cluster model (sequentialized upper
  /// bound: every message pays alpha + beta * bytes).
  double modeled_time(const hsim::ClusterModel& net) const {
    return static_cast<double>(messages) * net.alpha + net.beta * bytes;
  }
};

class World;

/// Per-rank handle (MPI_Comm analog). Valid only inside run().
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send/recv of double payloads.
  void send(int dest, int tag, std::vector<double> data);
  std::vector<double> recv(int src, int tag);

  /// In-place sum-allreduce over all ranks.
  void allreduce_sum(std::span<double> inout);
  double allreduce_sum(double v);
  double allreduce_max(double v);

  void barrier();

 private:
  friend TrafficStats run(int, const std::function<void(Communicator&)>&);
  Communicator(World* w, int rank) : world_(w), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Runs fn on `ranks` concurrent threads with a shared mailbox world;
/// returns the aggregate traffic stats once every rank finishes. Any rank
/// throwing propagates out of run() (after joining the others).
TrafficStats run(int ranks, const std::function<void(Communicator&)>& fn);

}  // namespace coe::mpi
