#pragma once
// A small message-passing substrate in the spirit of the MPI programs the
// iCoE workload is built from (every production code in the paper is
// MPI-based; the paper's node-level work sat on top of existing scalable
// MPI implementations). Ranks are real threads with blocking mailboxes,
// so send/recv/collective semantics are genuine; traffic is counted so
// cluster models can price a run.
//
// Failure semantics (coe::resil integration): every blocking operation
// carries a real-time deadline, so a mismatched-tag recv or a lost peer
// surfaces as a thrown CommTimeout rather than an indefinite hang. When any
// rank exits with an exception — including an injected resil::RankFailure —
// the world aborts: peers blocked in recv/barrier/allreduce wake
// immediately and throw PeerFailure, and run() rethrows the original
// failure after joining everyone.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/machine.hpp"
#include "obs/metrics.hpp"
#include "resil/fault.hpp"

namespace coe::mpi {

struct TrafficStats {
  std::size_t messages = 0;
  double bytes = 0.0;
  std::size_t allreduces = 0;
  std::size_t barriers = 0;
  std::size_t retries = 0;  ///< deadline expiries retried with backoff

  /// Prices the recorded traffic on a cluster model (sequentialized upper
  /// bound: every message pays alpha + beta * bytes).
  double modeled_time(const hsim::ClusterModel& net) const {
    return static_cast<double>(messages) * net.alpha + net.beta * bytes;
  }
};

/// A blocking operation exceeded its real-time deadline (no matching send,
/// or a peer stopped participating without the abort flag being raised).
struct CommTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Raised out of a blocking operation on a surviving rank after another
/// rank failed: the collective/message can never complete.
struct PeerFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct RunOptions {
  /// Real-time deadline (seconds) for each blocking operation; expiry
  /// throws CommTimeout instead of hanging forever.
  double timeout_seconds = 30.0;
  /// Deadline-retry policy: an expired wait is retried up to this many
  /// times before CommTimeout is raised, each retry waiting an
  /// exponentially growing extension (retry_backoff_seconds doubling per
  /// attempt, with ±50% seeded jitter so ranks that timed out together do
  /// not re-arm in lockstep). 0 restores fail-immediately behavior.
  int max_retries = 2;
  double retry_backoff_seconds = 0.05;
  std::uint64_t retry_seed = 0x5eed;
  /// Fault-injection hook, consulted on every communicator operation with
  /// (rank, operations completed by that rank). Returning true raises
  /// resil::RankFailure inside that rank. Called concurrently from all
  /// rank threads — must be thread-safe (see resil::make_rank_fault_hook).
  std::function<bool(int, std::size_t)> fault_hook;
  /// Optional telemetry sink (not owned; must outlive run()). Publishes
  /// "mpi.messages"/".bytes"/".allreduces"/".barriers"/".retries" when the
  /// world finishes, and "mpi.timeouts"/".rank_failures"/".peer_failures"
  /// as they occur.
  obs::MetricsRegistry* metrics = nullptr;
};

class World;
class Communicator;

/// Handle on a pending nonblocking operation (MPI_Request analog). Sends
/// are eager on the mailbox substrate, so an isend's request is born
/// complete; an irecv's request completes inside wait()/waitall(), which
/// run through the same deadline/retry/abort machinery as blocking recv —
/// a pending request wakes with PeerFailure when any rank dies, and
/// deadline expiries are retried with backoff before CommTimeout.
class Request {
 public:
  Request() = default;
  /// True once the operation finished (always true for isend requests).
  bool done() const { return done_; }
  /// True if this handle refers to an operation at all.
  bool valid() const { return world_ != nullptr; }
  /// Completed irecv payload (empty for sends or before completion).
  const std::vector<double>& data() const { return data_; }
  /// Moves the payload out (irecv, after wait).
  std::vector<double> take() { return std::move(data_); }

 private:
  friend class Communicator;
  World* world_ = nullptr;
  int self_ = -1;   ///< posting rank
  int peer_ = -1;   ///< source (irecv) or destination (isend)
  int tag_ = 0;
  bool is_recv_ = false;
  bool done_ = false;
  std::vector<double> data_;
};

/// Per-rank handle (MPI_Comm analog). Valid only inside run().
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send/recv of double payloads.
  void send(int dest, int tag, std::vector<double> data);
  std::vector<double> recv(int src, int tag);

  // --- nonblocking point-to-point (coe::net substrate) -------------------
  /// Posts a send; on this eager substrate the message is deposited
  /// immediately and the returned request is already complete (the traffic
  /// is counted at post time, like a buffered MPI_Isend).
  Request isend(int dest, int tag, std::vector<double> data);
  /// Posts a receive for (src, tag); completion is deferred to
  /// wait()/waitall()/test(). Multiple pending irecvs on the same (src,
  /// tag) drain the FIFO mailbox in the order they are *waited*, not the
  /// order they were posted.
  Request irecv(int src, int tag);
  /// Blocks until `r` completes; returns the payload for receives (empty
  /// for sends). Waiting an already-complete request is a no-op returning
  /// its payload. Deadline expiry retries with backoff, then CommTimeout;
  /// a peer failure wakes the wait with PeerFailure.
  std::vector<double> wait(Request& r);
  /// Completes every request, in order; done requests are skipped, so a
  /// mix of complete and pending handles is fine. Payloads stay readable
  /// through Request::data().
  void waitall(std::span<Request> rs);
  /// Nonblocking completion probe: true (and fills the request's payload)
  /// if the operation can finish now.
  bool test(Request& r);

  /// In-place sum-allreduce over all ranks.
  void allreduce_sum(std::span<double> inout);
  double allreduce_sum(double v);
  /// Max-allreduce, a native single-pass reduction on the shared-buffer
  /// plumbing (one collective, no messages).
  double allreduce_max(double v);
  void allreduce_max(std::span<double> inout);
  /// The pre-net allreduce_max: a two-phase gather/broadcast through rank
  /// 0 costing one message per non-root rank each way. Kept test-only so
  /// the suite can assert the native path is value-identical.
  double allreduce_max_legacy(double v);

  void barrier();

 private:
  friend TrafficStats run(int, const RunOptions&,
                          const std::function<void(Communicator&)>&);
  Communicator(World* w, int rank) : world_(w), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Runs fn on `ranks` concurrent threads with a shared mailbox world;
/// returns the aggregate traffic stats once every rank finishes. Any rank
/// throwing aborts the world (unblocking survivors) and propagates out of
/// run() after joining the others; survivors' secondary PeerFailure
/// exceptions never mask the original error.
TrafficStats run(int ranks, const RunOptions& opts,
                 const std::function<void(Communicator&)>& fn);

/// Default options: 30 s deadlines, no fault injection.
TrafficStats run(int ranks, const std::function<void(Communicator&)>& fn);

}  // namespace coe::mpi
