#include "mpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "core/rng.hpp"

namespace coe::mpi {

namespace {
using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}
}  // namespace

class World {
 public:
  /// Per-rank lifecycle under run-through recovery. Non-recoverable worlds
  /// only ever see Active.
  enum class RankState : std::uint8_t {
    Active,   ///< participating in collectives and agreement
    Parked,   ///< warm spare waiting for adoption
    Dead,     ///< failed, not yet acknowledged by a repair
    Retired,  ///< failed + acknowledged (shrink), or a spare whose thread
              ///< now runs under an adopted id
  };

  World(int ranks, RunOptions opts)
      : ranks_(ranks), opts_(std::move(opts)),
        ops_(static_cast<std::size_t>(ranks), 0),
        retry_rng_(opts_.retry_seed), reduce_buf_(),
        state_(static_cast<std::size_t>(ranks), RankState::Active),
        agree_contrib_(static_cast<std::size_t>(ranks), 0),
        spare_assign_(static_cast<std::size_t>(ranks)) {
    // Spares occupy the top of the world and start parked so collectives
    // never wait on them before they reach park_spare().
    for (int r = ranks_ - opts_.spares; r < ranks_; ++r) {
      if (r >= 0) state_[static_cast<std::size_t>(r)] = RankState::Parked;
    }
  }

  int size() const { return ranks_; }
  bool recoverable() const { return opts_.recoverable; }

  int epoch() const {
    std::lock_guard<std::mutex> lk(mtx_);
    return epoch_;
  }

  std::vector<int> failed_ranks() const {
    std::lock_guard<std::mutex> lk(mtx_);
    return dead_unacked_;
  }

  /// Fault-injection and abort gate, run at the top of every communicator
  /// operation. Each rank only touches its own ops_ slot. Recovery-protocol
  /// operations (agree/repair/await) use enter_recovery_op instead: the
  /// fault hook still fires (kills can land mid-recovery) but a pending
  /// failure does not bounce them — they ARE the failure handling.
  void enter_op(int rank) {
    {
      std::lock_guard<std::mutex> lk(mtx_);
      if (aborted_) throw_peer_failure();
      if (failure_pending_locked()) throw_rank_failed_locked();
    }
    run_fault_hook(rank);
  }

  void enter_recovery_op(int rank) {
    {
      std::lock_guard<std::mutex> lk(mtx_);
      if (aborted_) throw_peer_failure();
    }
    run_fault_hook(rank);
  }

  /// Marks the world failed and wakes every blocked rank.
  void mark_failed(int rank) {
    std::lock_guard<std::mutex> lk(mtx_);
    if (!aborted_) {
      aborted_ = true;
      failed_rank_ = rank;
    }
    cv_.notify_all();
  }

  /// Recoverable death: the rank leaves the membership, survivors' blocked
  /// and subsequent operations raise RankFailed, and any agreement round in
  /// flight re-checks completion without the casualty.
  void mark_dead(int rank) {
    std::lock_guard<std::mutex> lk(mtx_);
    if (rank >= 0 && rank < ranks_ &&
        state_[static_cast<std::size_t>(rank)] == RankState::Active) {
      state_[static_cast<std::size_t>(rank)] = RankState::Dead;
      dead_unacked_.push_back(rank);
      check_agree_locked();
    }
    cv_.notify_all();
  }

  void revoke() {
    require_recoverable("revoke");
    std::lock_guard<std::mutex> lk(mtx_);
    revoked_ = true;
    cv_.notify_all();
  }

  void send(int src, int dest, int tag, std::vector<double> data) {
    enter_op(src);
    std::lock_guard<std::mutex> lk(mtx_);
    stats_.messages += 1;
    stats_.bytes += static_cast<double>(data.size()) * 8.0;
    mail_[key(epoch_, src, dest, tag)].push(std::move(data));
    cv_.notify_all();
  }

  std::vector<double> recv(int src, int dest, int tag) {
    enter_op(dest);
    std::unique_lock<std::mutex> lk(mtx_);
    auto& q = mail_[key(epoch_, src, dest, tag)];
    wait_or_fail(lk, [&] { return !q.empty(); },
                 "recv(src=" + std::to_string(src) +
                     ", tag=" + std::to_string(tag) + ") on rank " +
                     std::to_string(dest));
    auto data = std::move(q.front());
    q.pop();
    return data;
  }

  /// Nonblocking probe: pops the matching message if one is queued.
  bool try_recv(int src, int dest, int tag, std::vector<double>& out) {
    enter_op(dest);
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = mail_.find(key(epoch_, src, dest, tag));
    if (it == mail_.end() || it->second.empty()) return false;
    out = std::move(it->second.front());
    it->second.pop();
    return true;
  }

  void barrier(int rank) {
    enter_op(rank);
    std::unique_lock<std::mutex> lk(mtx_);
    const std::size_t gen = barrier_gen_;
    if (++barrier_count_ >= collective_target_locked()) {
      barrier_count_ = 0;
      ++barrier_gen_;
      ++stats_.barriers;
      cv_.notify_all();
    } else {
      try {
        wait_or_fail(lk, [&] { return barrier_gen_ != gen; },
                     "barrier on rank " + std::to_string(rank));
      } catch (const RankFailed&) {
        // Withdraw the contribution so the repaired world's first barrier
        // starts from a clean count.
        if (barrier_gen_ == gen && barrier_count_ > 0) --barrier_count_;
        throw;
      }
    }
  }

  enum class ReduceOp { Sum, Max };

  void allreduce(int rank, std::span<double> inout, ReduceOp op) {
    enter_op(rank);
    std::unique_lock<std::mutex> lk(mtx_);
    // A new epoch may not start writing until every rank of the previous
    // epoch has copied its result out.
    wait_or_fail(lk, [&] { return reduce_readers_ == 0; },
                 "allreduce (epoch drain) on rank " + std::to_string(rank));
    const std::size_t gen = reduce_gen_;
    if (reduce_count_ == 0) {
      reduce_buf_.assign(inout.begin(), inout.end());
    } else if (op == ReduceOp::Sum) {
      for (std::size_t i = 0; i < inout.size(); ++i) {
        reduce_buf_[i] += inout[i];
      }
    } else {
      for (std::size_t i = 0; i < inout.size(); ++i) {
        reduce_buf_[i] = std::max(reduce_buf_[i], inout[i]);
      }
    }
    stats_.bytes += static_cast<double>(inout.size()) * 8.0;
    if (++reduce_count_ >= collective_target_locked()) {
      reduce_count_ = 0;
      ++reduce_gen_;
      reduce_readers_ = collective_target_locked();
      ++stats_.allreduces;
      cv_.notify_all();
    } else {
      try {
        wait_or_fail(lk, [&] { return reduce_gen_ != gen; },
                     "allreduce on rank " + std::to_string(rank));
      } catch (const RankFailed&) {
        if (reduce_gen_ == gen && reduce_count_ > 0) --reduce_count_;
        throw;
      }
    }
    std::copy(reduce_buf_.begin(),
              reduce_buf_.begin() + static_cast<std::ptrdiff_t>(inout.size()),
              inout.begin());
    if (--reduce_readers_ == 0) cv_.notify_all();
  }

  std::uint64_t agree(int rank, std::uint64_t value, std::vector<int>* dead) {
    require_recoverable("agree_min");
    enter_recovery_op(rank);
    std::unique_lock<std::mutex> lk(mtx_);
    const std::size_t gen = agree_gen_;
    agree_contrib_[static_cast<std::size_t>(rank)] = 1;
    agree_value_ = std::min(agree_value_, value);
    check_agree_locked();
    if (agree_gen_ == gen) {
      wait_or_fail(lk, [&] { return agree_gen_ != gen; },
                   "agree_min on rank " + std::to_string(rank),
                   /*escape=*/false);
    }
    // Safe to read after the generation bump: the next round cannot
    // complete (and overwrite the result) before this rank contributes to
    // it, and dead ranks never read.
    if (dead) *dead = agree_dead_;
    return agree_result_;
  }

  RepairResult repair(int leader, const RepairPlan& plan) {
    require_recoverable("repair");
    enter_recovery_op(leader);
    std::lock_guard<std::mutex> lk(mtx_);
    RepairResult res;
    auto ack = [&](int d) {
      dead_unacked_.erase(
          std::remove(dead_unacked_.begin(), dead_unacked_.end(), d),
          dead_unacked_.end());
    };
    for (int d : plan.retire) {
      if (d < 0 || d >= ranks_ ||
          state_[static_cast<std::size_t>(d)] != RankState::Dead) {
        throw std::logic_error("repair: retire target " + std::to_string(d) +
                               " is not an unacknowledged dead rank");
      }
      state_[static_cast<std::size_t>(d)] = RankState::Retired;
      ack(d);
    }
    for (const auto& [d, s] : plan.adopt) {
      if (d < 0 || d >= ranks_ ||
          state_[static_cast<std::size_t>(d)] != RankState::Dead) {
        throw std::logic_error("repair: adoption target " + std::to_string(d) +
                               " is not an unacknowledged dead rank");
      }
      if (s < 0 || s >= ranks_ ||
          state_[static_cast<std::size_t>(s)] != RankState::Parked ||
          spare_assign_[static_cast<std::size_t>(s)].rank >= 0) {
        throw std::logic_error("repair: spare " + std::to_string(s) +
                               " is not an unassigned parked rank");
      }
      state_[static_cast<std::size_t>(d)] = RankState::Active;
      state_[static_cast<std::size_t>(s)] = RankState::Retired;
      spare_assign_[static_cast<std::size_t>(s)] = {d, leader, epoch_ + 1};
      ack(d);
    }
    ++epoch_;
    // Purge pre-repair in-flight messages: the epoch-salted keys mean they
    // could never match a post-repair receive, so drop them and hand them
    // back for drain logging. Deaths that landed after the agreement stay
    // in dead_unacked_ and re-trigger recovery on the next operation.
    for (auto& [k, q] : mail_) {
      while (!q.empty()) {
        res.purged.push_back({static_cast<int>(k >> 48),
                              static_cast<int>((k >> 32) & 0xffff),
                              static_cast<int>((k >> 16) & 0xffff),
                              static_cast<int>(k & 0xffff),
                              static_cast<double>(q.front().size()) * 8.0});
        q.pop();
      }
    }
    mail_.clear();
    barrier_count_ = 0;
    reduce_count_ = 0;
    reduce_readers_ = 0;
    revoked_ = false;
    res.epoch = epoch_;
    if (opts_.metrics) opts_.metrics->add("mpi.repairs");
    cv_.notify_all();
    return res;
  }

  int await_repair(int rank, int epoch_before) {
    require_recoverable("await_repair");
    enter_recovery_op(rank);
    std::unique_lock<std::mutex> lk(mtx_);
    const std::size_t deaths_before = dead_unacked_.size();
    wait_or_fail(lk,
                 [&] {
                   return epoch_ != epoch_before ||
                          dead_unacked_.size() != deaths_before;
                 },
                 "await_repair on rank " + std::to_string(rank),
                 /*escape=*/false);
    if (epoch_ != epoch_before) return epoch_;
    // The leader (or another survivor) died before the repair committed:
    // restart recovery.
    throw_rank_failed_locked();
  }

  Adoption park_spare(int rank) {
    require_recoverable("park_spare");
    std::unique_lock<std::mutex> lk(mtx_);
    auto& slot = spare_assign_[static_cast<std::size_t>(rank)];
    state_[static_cast<std::size_t>(rank)] = RankState::Parked;
    ++parked_count_;
    maybe_release_spares_locked();
    // No deadline: the world's abort broadcast or the all-threads-done
    // release is guaranteed to wake a parked spare eventually.
    cv_.wait(lk, [&] {
      return slot.rank >= 0 || aborted_ || release_spares_;
    });
    --parked_count_;
    if (slot.rank >= 0) return slot;
    state_[static_cast<std::size_t>(rank)] = RankState::Retired;
    if (aborted_) throw_peer_failure();
    return {};
  }

  /// Called by every rank thread as it exits fn (any path). Once every
  /// non-parked thread is done, still-parked spares are released empty.
  void note_thread_done() {
    std::lock_guard<std::mutex> lk(mtx_);
    ++done_threads_;
    maybe_release_spares_locked();
  }

  const TrafficStats& stats() const { return stats_; }

 private:
  struct SpareSlot : Adoption {};

  void require_recoverable(const char* what) const {
    if (!opts_.recoverable) {
      throw std::logic_error(std::string(what) +
                             " requires RunOptions::recoverable");
    }
  }

  void run_fault_hook(int rank) {
    const auto r = static_cast<std::size_t>(rank);
    ops_[r] += 1;
    if (opts_.fault_hook && opts_.fault_hook(rank, ops_[r])) {
      if (opts_.metrics) opts_.metrics->add("mpi.rank_failures");
      throw resil::RankFailure(
          rank, "rank " + std::to_string(rank) + " killed by fault injection");
    }
  }

  bool failure_pending_locked() const {
    return opts_.recoverable && (revoked_ || !dead_unacked_.empty());
  }

  int collective_target_locked() const {
    int n = 0;
    for (const auto s : state_) n += s == RankState::Active ? 1 : 0;
    return n;
  }

  /// Completes the agreement round once every live active rank has
  /// contributed. Called on contribution and on mark_dead — a casualty
  /// mid-agreement shrinks the quorum instead of deadlocking it.
  void check_agree_locked() {
    bool any = false;
    for (int r = 0; r < ranks_; ++r) {
      const auto s = state_[static_cast<std::size_t>(r)];
      if (s == RankState::Active && !agree_contrib_[static_cast<std::size_t>(r)])
        return;
      any = any || agree_contrib_[static_cast<std::size_t>(r)] != 0;
    }
    if (!any) return;
    agree_result_ = agree_value_;
    agree_dead_.clear();
    for (int r = 0; r < ranks_; ++r) {
      if (state_[static_cast<std::size_t>(r)] == RankState::Dead) {
        agree_dead_.push_back(r);
      }
    }
    std::fill(agree_contrib_.begin(), agree_contrib_.end(), 0);
    agree_value_ = ~std::uint64_t{0};
    ++agree_gen_;
    cv_.notify_all();
  }

  [[noreturn]] void throw_peer_failure() const {
    if (opts_.metrics) opts_.metrics->add("mpi.peer_failures");
    throw PeerFailure("rank " + std::to_string(failed_rank_) +
                      " failed; aborting collective/messaging");
  }

  [[noreturn]] void throw_rank_failed_locked() const {
    const int dead = dead_unacked_.empty() ? -1 : dead_unacked_.front();
    if (opts_.metrics) opts_.metrics->add("mpi.rank_failed_raised");
    throw RankFailed(dead, dead >= 0
                               ? "rank " + std::to_string(dead) +
                                     " failed; world awaiting repair"
                               : "world revoked; awaiting repair");
  }

  /// Waits for pred, the abort flag, a recoverable failure (when `escape`
  /// is set and the world is recoverable), or the deadline — whichever
  /// first. An expired deadline is retried up to opts_.max_retries times
  /// with exponential backoff and seeded jitter (each retry is a further
  /// wait with a growing extension — the condition-variable analog of
  /// re-issuing the operation) before CommTimeout is raised. Caller holds
  /// lk; the jitter RNG is only touched under it. pred wins over failure:
  /// an operation that can complete, completes.
  template <typename Pred>
  void wait_or_fail(std::unique_lock<std::mutex>& lk, Pred pred,
                    const std::string& what, bool escape = true) {
    double waited = 0.0;
    for (int attempt = 0;; ++attempt) {
      double wait_s = opts_.timeout_seconds;
      if (attempt > 0) {
        const double scale = static_cast<double>(1 << (attempt - 1));
        wait_s = opts_.retry_backoff_seconds * scale *
                 (0.5 + retry_rng_.uniform());
      }
      const auto deadline = deadline_from(wait_s);
      const bool ok = cv_.wait_until(lk, deadline, [&] {
        return aborted_ || pred() || (escape && failure_pending_locked());
      });
      if (!pred()) {
        if (aborted_) throw_peer_failure();
        if (escape && failure_pending_locked()) throw_rank_failed_locked();
      }
      if (ok) return;
      waited += wait_s;
      if (attempt >= opts_.max_retries) {
        if (opts_.metrics) opts_.metrics->add("mpi.timeouts");
        throw CommTimeout("timeout after " + std::to_string(waited) +
                          "s (" + std::to_string(attempt) + " retries) in " +
                          what);
      }
      ++stats_.retries;
      if (opts_.metrics) opts_.metrics->add("mpi.retries");
    }
  }

  /// Mailbox key: (epoch, src, dest, tag), 16 bits each. The epoch salt is
  /// what guarantees a message posted before a repair can never match a
  /// receive posted after it (the double-delivery hazard of satellite
  /// repair bugs); repair() purges the orphaned pre-epoch queues.
  static std::uint64_t key(int epoch, int src, int dest, int tag) {
    return (std::uint64_t(std::uint16_t(epoch)) << 48) |
           (std::uint64_t(std::uint16_t(src)) << 32) |
           (std::uint64_t(std::uint16_t(dest)) << 16) |
           std::uint64_t(std::uint16_t(tag));
  }

  int ranks_;
  RunOptions opts_;
  std::vector<std::size_t> ops_;  ///< per-rank completed-operation counts
  core::Rng retry_rng_;           ///< backoff jitter; guarded by mtx_
  mutable std::mutex mtx_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::queue<std::vector<double>>> mail_;
  bool aborted_ = false;
  int failed_rank_ = -1;
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  int reduce_count_ = 0;
  int reduce_readers_ = 0;
  std::size_t reduce_gen_ = 0;
  std::vector<double> reduce_buf_;
  TrafficStats stats_;

  // --- run-through recovery state (all guarded by mtx_) -----------------
  std::vector<RankState> state_;
  std::vector<int> dead_unacked_;  ///< death order
  bool revoked_ = false;
  int epoch_ = 0;
  // Agreement round: per-rank contribution flags, the min accumulator, and
  // the published result + dead-set snapshot of the last completed round.
  std::vector<char> agree_contrib_;
  std::uint64_t agree_value_ = ~std::uint64_t{0};
  std::uint64_t agree_result_ = ~std::uint64_t{0};
  std::vector<int> agree_dead_;
  std::size_t agree_gen_ = 0;
  // Spare parking: assignment slots written by repair, plus the counters
  // that release still-parked spares once every other thread is done.
  std::vector<SpareSlot> spare_assign_;
  int parked_count_ = 0;
  int done_threads_ = 0;
  bool release_spares_ = false;

  void maybe_release_spares_locked() {
    if (!release_spares_ && done_threads_ + parked_count_ >= ranks_) {
      release_spares_ = true;
      cv_.notify_all();
    }
  }
};

int Communicator::size() const { return world_->size(); }

void Communicator::send(int dest, int tag, std::vector<double> data) {
  world_->send(rank_, dest, tag, std::move(data));
}

std::vector<double> Communicator::recv(int src, int tag) {
  return world_->recv(src, rank_, tag);
}

Request Communicator::isend(int dest, int tag, std::vector<double> data) {
  // Eager: the deposit happens at post time, so the request is complete.
  world_->send(rank_, dest, tag, std::move(data));
  Request r;
  r.world_ = world_;
  r.self_ = rank_;
  r.peer_ = dest;
  r.tag_ = tag;
  r.done_ = true;
  return r;
}

Request Communicator::irecv(int src, int tag) {
  Request r;
  r.world_ = world_;
  r.self_ = rank_;
  r.peer_ = src;
  r.tag_ = tag;
  r.is_recv_ = true;
  return r;
}

std::vector<double> Communicator::wait(Request& r) {
  if (!r.valid() || r.done_) return r.data_;
  r.data_ = r.world_->recv(r.peer_, r.self_, r.tag_);
  r.done_ = true;
  return r.data_;
}

void Communicator::waitall(std::span<Request> rs) {
  for (std::size_t i = 0; i < rs.size(); ++i) {
    try {
      (void)wait(rs[i]);
    } catch (...) {
      // A failure woke the waitall mid-flight: keep every already-completed
      // payload readable, cancel everything still pending (including the
      // request that failed), and let the failure propagate. Without this a
      // survivor retrying communication after a repair could consume a
      // stale matched message through a leaked half-waited handle.
      for (std::size_t j = i; j < rs.size(); ++j) cancel(rs[j]);
      throw;
    }
  }
}

bool Communicator::test(Request& r) {
  if (!r.valid() || r.done_) return r.valid();
  if (!r.world_->try_recv(r.peer_, r.self_, r.tag_, r.data_)) return false;
  r.done_ = true;
  return true;
}

void Communicator::cancel(Request& r) {
  if (!r.valid() || r.done_) return;
  r.done_ = true;
  r.cancelled_ = true;
  r.data_.clear();
}

void Communicator::allreduce_sum(std::span<double> inout) {
  world_->allreduce(rank_, inout, World::ReduceOp::Sum);
}

double Communicator::allreduce_sum(double v) {
  double buf = v;
  world_->allreduce(rank_, std::span<double>(&buf, 1), World::ReduceOp::Sum);
  return buf;
}

double Communicator::allreduce_max(double v) {
  // Native single-pass max on the shared reduce buffer: one collective
  // instead of the legacy two-phase gather's 2*(P-1) messages.
  double buf = v;
  world_->allreduce(rank_, std::span<double>(&buf, 1), World::ReduceOp::Max);
  return buf;
}

void Communicator::allreduce_max(std::span<double> inout) {
  world_->allreduce(rank_, inout, World::ReduceOp::Max);
}

double Communicator::allreduce_max_legacy(double v) {
  // The pre-net path, kept only so tests can assert value-identity with
  // the native reduction: gather every value to rank 0, broadcast back.
  if (world_->size() == 1) return v;
  if (rank_ == 0) {
    double best = v;
    for (int r = 1; r < world_->size(); ++r) {
      auto msg = world_->recv(r, 0, /*tag=*/0x7f);
      best = std::max(best, msg[0]);
    }
    for (int r = 1; r < world_->size(); ++r) {
      world_->send(0, r, 0x7e, {best});
    }
    return best;
  }
  world_->send(rank_, 0, 0x7f, {v});
  return world_->recv(0, rank_, 0x7e)[0];
}

void Communicator::barrier() { world_->barrier(rank_); }

bool Communicator::recoverable() const { return world_->recoverable(); }

int Communicator::epoch() const { return world_->epoch(); }

std::vector<int> Communicator::failed_ranks() const {
  return world_->failed_ranks();
}

void Communicator::revoke() { world_->revoke(); }

std::uint64_t Communicator::agree_min(std::uint64_t value,
                                      std::vector<int>* dead) {
  return world_->agree(rank_, value, dead);
}

RepairResult Communicator::repair(const RepairPlan& plan) {
  return world_->repair(rank_, plan);
}

int Communicator::await_repair(int epoch_before) {
  return world_->await_repair(rank_, epoch_before);
}

Adoption Communicator::park_spare() { return world_->park_spare(rank_); }

Communicator Communicator::adopted_view(int rank) const {
  return Communicator(world_, rank);
}

TrafficStats run(int ranks, const RunOptions& opts,
                 const std::function<void(Communicator&)>& fn) {
  World world(ranks, opts);
  std::vector<std::thread> threads;
  // The originating failure (RankFailure, CommTimeout, a user exception)
  // outranks the PeerFailures it cascades into on surviving ranks. In
  // recoverable worlds a RankFailure is not an error at all: the rank
  // retires quietly and survivors run their recovery protocol.
  std::exception_ptr primary;
  std::exception_ptr secondary;
  std::mutex error_mtx;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(&world, r);
      try {
        fn(comm);
      } catch (const PeerFailure&) {
        {
          std::lock_guard<std::mutex> lk(error_mtx);
          if (!secondary) secondary = std::current_exception();
        }
        world.mark_failed(r);
      } catch (const resil::RankFailure& rf) {
        if (opts.recoverable) {
          // The hook reports the logical rank that was killed — for an
          // adopted spare that is the adopted id, not this thread's slot.
          world.mark_dead(rf.rank >= 0 ? rf.rank : r);
        } else {
          {
            std::lock_guard<std::mutex> lk(error_mtx);
            if (!primary) primary = std::current_exception();
          }
          world.mark_failed(r);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mtx);
          if (!primary) primary = std::current_exception();
        }
        world.mark_failed(r);
      }
      world.note_thread_done();
    });
  }
  for (auto& t : threads) t.join();
  if (opts.metrics) {
    const auto& s = world.stats();
    opts.metrics->add("mpi.runs");
    opts.metrics->add("mpi.messages", static_cast<double>(s.messages));
    opts.metrics->add("mpi.bytes", s.bytes);
    opts.metrics->add("mpi.allreduces", static_cast<double>(s.allreduces));
    opts.metrics->add("mpi.barriers", static_cast<double>(s.barriers));
    opts.metrics->add("mpi.total_retries", static_cast<double>(s.retries));
  }
  if (primary) std::rethrow_exception(primary);
  if (secondary) std::rethrow_exception(secondary);
  return world.stats();
}

TrafficStats run(int ranks, const std::function<void(Communicator&)>& fn) {
  return run(ranks, RunOptions{}, fn);
}

}  // namespace coe::mpi
