#include "mpi/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace coe::mpi {

class World {
 public:
  explicit World(int ranks) : ranks_(ranks), reduce_buf_() {}

  int size() const { return ranks_; }

  void send(int src, int dest, int tag, std::vector<double> data) {
    std::lock_guard<std::mutex> lk(mtx_);
    stats_.messages += 1;
    stats_.bytes += static_cast<double>(data.size()) * 8.0;
    mail_[key(src, dest, tag)].push(std::move(data));
    cv_.notify_all();
  }

  std::vector<double> recv(int src, int dest, int tag) {
    std::unique_lock<std::mutex> lk(mtx_);
    auto& q = mail_[key(src, dest, tag)];
    cv_.wait(lk, [&] { return !q.empty(); });
    auto data = std::move(q.front());
    q.pop();
    return data;
  }

  void barrier() {
    std::unique_lock<std::mutex> lk(mtx_);
    const std::size_t gen = barrier_gen_;
    if (++barrier_count_ == ranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      ++stats_.barriers;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return barrier_gen_ != gen; });
    }
  }

  void allreduce_sum(std::span<double> inout) {
    std::unique_lock<std::mutex> lk(mtx_);
    // A new epoch may not start writing until every rank of the previous
    // epoch has copied its result out.
    cv_.wait(lk, [&] { return reduce_readers_ == 0; });
    const std::size_t gen = reduce_gen_;
    if (reduce_count_ == 0) {
      reduce_buf_.assign(inout.begin(), inout.end());
    } else {
      for (std::size_t i = 0; i < inout.size(); ++i) {
        reduce_buf_[i] += inout[i];
      }
    }
    stats_.bytes += static_cast<double>(inout.size()) * 8.0;
    if (++reduce_count_ == ranks_) {
      reduce_count_ = 0;
      ++reduce_gen_;
      reduce_readers_ = ranks_;
      ++stats_.allreduces;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return reduce_gen_ != gen; });
    }
    std::copy(reduce_buf_.begin(),
              reduce_buf_.begin() + static_cast<std::ptrdiff_t>(inout.size()),
              inout.begin());
    if (--reduce_readers_ == 0) cv_.notify_all();
  }

  const TrafficStats& stats() const { return stats_; }

 private:
  static std::uint64_t key(int src, int dest, int tag) {
    return (std::uint64_t(std::uint16_t(src)) << 32) |
           (std::uint64_t(std::uint16_t(dest)) << 16) |
           std::uint64_t(std::uint16_t(tag));
  }

  int ranks_;
  std::mutex mtx_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::queue<std::vector<double>>> mail_;
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  int reduce_count_ = 0;
  int reduce_readers_ = 0;
  std::size_t reduce_gen_ = 0;
  std::vector<double> reduce_buf_;
  TrafficStats stats_;
};

int Communicator::size() const { return world_->size(); }

void Communicator::send(int dest, int tag, std::vector<double> data) {
  world_->send(rank_, dest, tag, std::move(data));
}

std::vector<double> Communicator::recv(int src, int tag) {
  return world_->recv(src, rank_, tag);
}

void Communicator::allreduce_sum(std::span<double> inout) {
  world_->allreduce_sum(inout);
}

double Communicator::allreduce_sum(double v) {
  double buf = v;
  world_->allreduce_sum(std::span<double>(&buf, 1));
  return buf;
}

double Communicator::allreduce_max(double v) {
  // Built on the sum-reduce plumbing via a two-phase gather: simple and
  // rarely hot. Encode max via repeated pairwise exchange with rank 0.
  if (world_->size() == 1) return v;
  if (rank_ == 0) {
    double best = v;
    for (int r = 1; r < world_->size(); ++r) {
      auto msg = world_->recv(r, 0, /*tag=*/0x7f);
      best = std::max(best, msg[0]);
    }
    for (int r = 1; r < world_->size(); ++r) {
      world_->send(0, r, 0x7e, {best});
    }
    return best;
  }
  world_->send(rank_, 0, 0x7f, {v});
  return world_->recv(0, rank_, 0x7e)[0];
}

void Communicator::barrier() { world_->barrier(); }

TrafficStats run(int ranks, const std::function<void(Communicator&)>& fn) {
  World world(ranks);
  std::vector<std::thread> threads;
  std::exception_ptr error;
  std::mutex error_mtx;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(&world, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mtx);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  return world.stats();
}

}  // namespace coe::mpi
