#include "mpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "core/rng.hpp"

namespace coe::mpi {

namespace {
using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}
}  // namespace

class World {
 public:
  World(int ranks, RunOptions opts)
      : ranks_(ranks), opts_(std::move(opts)),
        ops_(static_cast<std::size_t>(ranks), 0),
        retry_rng_(opts_.retry_seed), reduce_buf_() {}

  int size() const { return ranks_; }

  /// Fault-injection and abort gate, run at the top of every communicator
  /// operation. Each rank only touches its own ops_ slot.
  void enter_op(int rank) {
    {
      std::lock_guard<std::mutex> lk(mtx_);
      if (aborted_) throw_peer_failure();
    }
    const auto r = static_cast<std::size_t>(rank);
    ops_[r] += 1;
    if (opts_.fault_hook && opts_.fault_hook(rank, ops_[r])) {
      if (opts_.metrics) opts_.metrics->add("mpi.rank_failures");
      throw resil::RankFailure(
          rank, "rank " + std::to_string(rank) + " killed by fault injection");
    }
  }

  /// Marks the world failed and wakes every blocked rank.
  void mark_failed(int rank) {
    std::lock_guard<std::mutex> lk(mtx_);
    if (!aborted_) {
      aborted_ = true;
      failed_rank_ = rank;
    }
    cv_.notify_all();
  }

  void send(int src, int dest, int tag, std::vector<double> data) {
    enter_op(src);
    std::lock_guard<std::mutex> lk(mtx_);
    stats_.messages += 1;
    stats_.bytes += static_cast<double>(data.size()) * 8.0;
    mail_[key(src, dest, tag)].push(std::move(data));
    cv_.notify_all();
  }

  std::vector<double> recv(int src, int dest, int tag) {
    enter_op(dest);
    std::unique_lock<std::mutex> lk(mtx_);
    auto& q = mail_[key(src, dest, tag)];
    wait_or_fail(lk, [&] { return !q.empty(); },
                 "recv(src=" + std::to_string(src) +
                     ", tag=" + std::to_string(tag) + ") on rank " +
                     std::to_string(dest));
    auto data = std::move(q.front());
    q.pop();
    return data;
  }

  /// Nonblocking probe: pops the matching message if one is queued.
  bool try_recv(int src, int dest, int tag, std::vector<double>& out) {
    enter_op(dest);
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = mail_.find(key(src, dest, tag));
    if (it == mail_.end() || it->second.empty()) return false;
    out = std::move(it->second.front());
    it->second.pop();
    return true;
  }

  void barrier(int rank) {
    enter_op(rank);
    std::unique_lock<std::mutex> lk(mtx_);
    const std::size_t gen = barrier_gen_;
    if (++barrier_count_ == ranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      ++stats_.barriers;
      cv_.notify_all();
    } else {
      wait_or_fail(lk, [&] { return barrier_gen_ != gen; },
                   "barrier on rank " + std::to_string(rank));
    }
  }

  enum class ReduceOp { Sum, Max };

  void allreduce(int rank, std::span<double> inout, ReduceOp op) {
    enter_op(rank);
    std::unique_lock<std::mutex> lk(mtx_);
    // A new epoch may not start writing until every rank of the previous
    // epoch has copied its result out.
    wait_or_fail(lk, [&] { return reduce_readers_ == 0; },
                 "allreduce (epoch drain) on rank " + std::to_string(rank));
    const std::size_t gen = reduce_gen_;
    if (reduce_count_ == 0) {
      reduce_buf_.assign(inout.begin(), inout.end());
    } else if (op == ReduceOp::Sum) {
      for (std::size_t i = 0; i < inout.size(); ++i) {
        reduce_buf_[i] += inout[i];
      }
    } else {
      for (std::size_t i = 0; i < inout.size(); ++i) {
        reduce_buf_[i] = std::max(reduce_buf_[i], inout[i]);
      }
    }
    stats_.bytes += static_cast<double>(inout.size()) * 8.0;
    if (++reduce_count_ == ranks_) {
      reduce_count_ = 0;
      ++reduce_gen_;
      reduce_readers_ = ranks_;
      ++stats_.allreduces;
      cv_.notify_all();
    } else {
      wait_or_fail(lk, [&] { return reduce_gen_ != gen; },
                   "allreduce on rank " + std::to_string(rank));
    }
    std::copy(reduce_buf_.begin(),
              reduce_buf_.begin() + static_cast<std::ptrdiff_t>(inout.size()),
              inout.begin());
    if (--reduce_readers_ == 0) cv_.notify_all();
  }

  const TrafficStats& stats() const { return stats_; }

 private:
  [[noreturn]] void throw_peer_failure() const {
    if (opts_.metrics) opts_.metrics->add("mpi.peer_failures");
    throw PeerFailure("rank " + std::to_string(failed_rank_) +
                      " failed; aborting collective/messaging");
  }

  /// Waits for pred, the abort flag, or the deadline — whichever first.
  /// An expired deadline is retried up to opts_.max_retries times with
  /// exponential backoff and seeded jitter (each retry is a further wait
  /// with a growing extension — the condition-variable analog of
  /// re-issuing the operation) before CommTimeout is raised. Caller holds
  /// lk; the jitter RNG is only touched under it.
  template <typename Pred>
  void wait_or_fail(std::unique_lock<std::mutex>& lk, Pred pred,
                    const std::string& what) {
    double waited = 0.0;
    for (int attempt = 0;; ++attempt) {
      double wait_s = opts_.timeout_seconds;
      if (attempt > 0) {
        const double scale = static_cast<double>(1 << (attempt - 1));
        wait_s = opts_.retry_backoff_seconds * scale *
                 (0.5 + retry_rng_.uniform());
      }
      const auto deadline = deadline_from(wait_s);
      const bool ok = cv_.wait_until(
          lk, deadline, [&] { return aborted_ || pred(); });
      if (aborted_ && !pred()) throw_peer_failure();
      if (ok) return;
      waited += wait_s;
      if (attempt >= opts_.max_retries) {
        if (opts_.metrics) opts_.metrics->add("mpi.timeouts");
        throw CommTimeout("timeout after " + std::to_string(waited) +
                          "s (" + std::to_string(attempt) + " retries) in " +
                          what);
      }
      ++stats_.retries;
      if (opts_.metrics) opts_.metrics->add("mpi.retries");
    }
  }

  static std::uint64_t key(int src, int dest, int tag) {
    return (std::uint64_t(std::uint16_t(src)) << 32) |
           (std::uint64_t(std::uint16_t(dest)) << 16) |
           std::uint64_t(std::uint16_t(tag));
  }

  int ranks_;
  RunOptions opts_;
  std::vector<std::size_t> ops_;  ///< per-rank completed-operation counts
  core::Rng retry_rng_;           ///< backoff jitter; guarded by mtx_
  std::mutex mtx_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::queue<std::vector<double>>> mail_;
  bool aborted_ = false;
  int failed_rank_ = -1;
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  int reduce_count_ = 0;
  int reduce_readers_ = 0;
  std::size_t reduce_gen_ = 0;
  std::vector<double> reduce_buf_;
  TrafficStats stats_;
};

int Communicator::size() const { return world_->size(); }

void Communicator::send(int dest, int tag, std::vector<double> data) {
  world_->send(rank_, dest, tag, std::move(data));
}

std::vector<double> Communicator::recv(int src, int tag) {
  return world_->recv(src, rank_, tag);
}

Request Communicator::isend(int dest, int tag, std::vector<double> data) {
  // Eager: the deposit happens at post time, so the request is complete.
  world_->send(rank_, dest, tag, std::move(data));
  Request r;
  r.world_ = world_;
  r.self_ = rank_;
  r.peer_ = dest;
  r.tag_ = tag;
  r.done_ = true;
  return r;
}

Request Communicator::irecv(int src, int tag) {
  Request r;
  r.world_ = world_;
  r.self_ = rank_;
  r.peer_ = src;
  r.tag_ = tag;
  r.is_recv_ = true;
  return r;
}

std::vector<double> Communicator::wait(Request& r) {
  if (!r.valid() || r.done_) return r.data_;
  r.data_ = r.world_->recv(r.peer_, r.self_, r.tag_);
  r.done_ = true;
  return r.data_;
}

void Communicator::waitall(std::span<Request> rs) {
  for (auto& r : rs) (void)wait(r);
}

bool Communicator::test(Request& r) {
  if (!r.valid() || r.done_) return r.valid();
  if (!r.world_->try_recv(r.peer_, r.self_, r.tag_, r.data_)) return false;
  r.done_ = true;
  return true;
}

void Communicator::allreduce_sum(std::span<double> inout) {
  world_->allreduce(rank_, inout, World::ReduceOp::Sum);
}

double Communicator::allreduce_sum(double v) {
  double buf = v;
  world_->allreduce(rank_, std::span<double>(&buf, 1), World::ReduceOp::Sum);
  return buf;
}

double Communicator::allreduce_max(double v) {
  // Native single-pass max on the shared reduce buffer: one collective
  // instead of the legacy two-phase gather's 2*(P-1) messages.
  double buf = v;
  world_->allreduce(rank_, std::span<double>(&buf, 1), World::ReduceOp::Max);
  return buf;
}

void Communicator::allreduce_max(std::span<double> inout) {
  world_->allreduce(rank_, inout, World::ReduceOp::Max);
}

double Communicator::allreduce_max_legacy(double v) {
  // The pre-net path, kept only so tests can assert value-identity with
  // the native reduction: gather every value to rank 0, broadcast back.
  if (world_->size() == 1) return v;
  if (rank_ == 0) {
    double best = v;
    for (int r = 1; r < world_->size(); ++r) {
      auto msg = world_->recv(r, 0, /*tag=*/0x7f);
      best = std::max(best, msg[0]);
    }
    for (int r = 1; r < world_->size(); ++r) {
      world_->send(0, r, 0x7e, {best});
    }
    return best;
  }
  world_->send(rank_, 0, 0x7f, {v});
  return world_->recv(0, rank_, 0x7e)[0];
}

void Communicator::barrier() { world_->barrier(rank_); }

TrafficStats run(int ranks, const RunOptions& opts,
                 const std::function<void(Communicator&)>& fn) {
  World world(ranks, opts);
  std::vector<std::thread> threads;
  // The originating failure (RankFailure, CommTimeout, a user exception)
  // outranks the PeerFailures it cascades into on surviving ranks.
  std::exception_ptr primary;
  std::exception_ptr secondary;
  std::mutex error_mtx;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(&world, r);
      try {
        fn(comm);
      } catch (const PeerFailure&) {
        {
          std::lock_guard<std::mutex> lk(error_mtx);
          if (!secondary) secondary = std::current_exception();
        }
        world.mark_failed(r);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mtx);
          if (!primary) primary = std::current_exception();
        }
        world.mark_failed(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (opts.metrics) {
    const auto& s = world.stats();
    opts.metrics->add("mpi.runs");
    opts.metrics->add("mpi.messages", static_cast<double>(s.messages));
    opts.metrics->add("mpi.bytes", s.bytes);
    opts.metrics->add("mpi.allreduces", static_cast<double>(s.allreduces));
    opts.metrics->add("mpi.barriers", static_cast<double>(s.barriers));
    opts.metrics->add("mpi.total_retries", static_cast<double>(s.retries));
  }
  if (primary) std::rethrow_exception(primary);
  if (secondary) std::rethrow_exception(secondary);
  return world.stats();
}

TrafficStats run(int ranks, const std::function<void(Communicator&)>& fn) {
  return run(ranks, RunOptions{}, fn);
}

}  // namespace coe::mpi
