#pragma once
// The portability layer the iCoE workload shares: a RAJA-style `forall`
// over pluggable backends. The Seq and Threads backends execute on the real
// host; the Device backend *also* executes on the host (all numerics are
// real) but charges time to an attached GPU machine model — the simulated
// heterogeneous node this reproduction targets (DESIGN.md section 2).
//
// The simulated clock is an event-based per-stream timeline (DESIGN.md
// section 11): launches and transfers issue onto the current stream
// (`stream(id)`), kernels overlap transfers always (separate DMA engines),
// and kernels overlap kernels from other streams up to the machine's
// `concurrent_kernels` limit. With a single stream the accounting is
// bit-for-bit the serialized clock earlier versions kept.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/cost.hpp"
#include "core/machine.hpp"
#include "core/residency.hpp"
#include "core/threadpool.hpp"
#include "obs/trace.hpp"

namespace coe::core {

enum class Backend {
  Seq,      ///< serial host execution
  Threads,  ///< host thread-pool execution (the OpenMP analog)
  Device,   ///< host execution, GPU-model time accounting (the CUDA analog)
};

inline const char* to_string(Backend b) {
  switch (b) {
    case Backend::Seq: return "seq";
    case Backend::Threads: return "threads";
    case Backend::Device: return "device";
  }
  return "?";
}

template <std::size_t Dim, typename... Bodies>
class FusedRegion;

/// Execution resource: a backend plus the machine model it charges time to.
/// Every kernel launch, reduction, and buffer transfer updates this
/// context's counters, simulated clock, and current timeline phase.
class ExecContext {
 public:
  /// Host-only context charging time to `host_model`.
  explicit ExecContext(Backend backend = Backend::Seq,
                       hsim::MachineModel model = hsim::machines::host())
      : backend_(backend), model_(std::move(model)) {
    kernel_slots_.assign(
        static_cast<std::size_t>(
            std::max(1, model_.machine().concurrent_kernels)),
        0.0);
  }

  Backend backend() const { return backend_; }
  const hsim::CostModel& model() const { return model_; }
  bool on_device() const { return backend_ == Backend::Device; }

  hsim::Counters& counters() { return counters_; }
  const hsim::Counters& counters() const { return counters_; }

  /// Simulated seconds at which the last-finishing operation ends (the
  /// makespan). With one stream this is the serialized sum of all
  /// operation times; with overlap it can be smaller than that sum.
  double simulated_time() const { return sim_time_; }
  void reset() {
    counters_.reset();
    sim_time_ = 0.0;
    timeline_.clear();
    // Shadow accumulators are part of the run being reset too — leaving
    // them would make shadow_time() report stale totals forever after.
    for (auto& s : shadows_) s.second = 0.0;
    if (trace_) trace_->clear();
    stream_ready_.assign(1, 0.0);
    std::fill(kernel_slots_.begin(), kernel_slots_.end(), 0.0);
    copy_ready_[0] = copy_ready_[1] = 0.0;
    cur_stream_ = 0;
    stream_floor_ = 0.0;
    next_event_id_ = 0;
  }

  hsim::Timeline& timeline() { return timeline_; }
  /// Subsequent launches/transfers accrue to this named timeline phase.
  void set_phase(std::string name) { phase_ = std::move(name); }
  const std::string& phase() const { return phase_; }

  // --- streams -----------------------------------------------------------

  /// Opaque marker of "everything issued on a stream so far" — the
  /// cudaEvent analog for cross-stream ordering.
  struct StreamEvent {
    double t = 0.0;        ///< simulated completion time of the recorded work
    std::int64_t id = -1;  ///< trace marker id linking record to waits
  };

  /// Subsequent launches/transfers issue onto simulated stream `id`
  /// (created on first use). Work on different streams may overlap per
  /// the machine model; work within one stream always serializes.
  void stream(std::size_t id) {
    cur_stream_ = id;
    (void)stream_ready(id);
  }
  std::size_t current_stream() const { return cur_stream_; }

  /// Records an event on the current stream: it completes when all work
  /// issued on this stream so far has completed.
  StreamEvent record_event() {
    StreamEvent ev{stream_ready(cur_stream_), next_event_id_++};
    if (trace_) push_marker(obs::TraceEvent::Kind::EventRecord, ev.t, ev.id);
    return ev;
  }

  /// Makes subsequent work on the current stream start no earlier than
  /// `ev` completes (cudaStreamWaitEvent).
  void wait_event(StreamEvent ev) {
    double& r = stream_ready(cur_stream_);
    if (ev.t > r) r = ev.t;
    if (trace_) push_marker(obs::TraceEvent::Kind::EventWait, r, ev.id);
  }

  /// Joins every stream (cudaDeviceSynchronize): subsequent work on any
  /// stream starts at or after the returned makespan.
  double sync() {
    stream_floor_ = sim_time_;
    for (auto& r : stream_ready_) r = sim_time_;
    if (trace_) push_marker(obs::TraceEvent::Kind::Sync, sim_time_, -1);
    return sim_time_;
  }

  /// Opt-in per-kernel tracing: attaches a (non-owned) ring buffer that
  /// receives one event per launch/transfer — phase, label, exact
  /// flop/byte counts, predicted duration, backend, stream id, and the
  /// roofline memory-/compute-bound classification against this machine's
  /// ridge. nullptr detaches; with no buffer attached the only cost per
  /// launch is one branch. The buffer is stamped with this machine's name
  /// and launch overhead so offline consumers can attribute durations.
  void set_trace(obs::TraceBuffer* buf) {
    trace_ = buf;
    if (trace_) {
      trace_->set_source(model_.machine().name,
                         model_.machine().launch_overhead);
    }
  }
  obs::TraceBuffer* trace() const { return trace_; }

  /// Subsequent launches are traced under this label; an empty label
  /// (the default) falls back to the operation kind ("forall",
  /// "reduce_sum", "transfer", ...). Like set_phase, it sticks until
  /// changed.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// RAJA-style parallel loop over [0, n). `w` annotates per-iteration work
  /// so the machine model can price the launch.
  template <typename Body>
  void forall(std::size_t n, hsim::Workload w, Body&& body) {
    launch_begin();
    dispatch(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
    launch_end(hsim::total(w, n), "forall");
  }

  /// Convenience overload with no work annotation (zero-cost bookkeeping
  /// launch; still counts the launch overhead).
  template <typename Body>
  void forall(std::size_t n, Body&& body) {
    forall(n, hsim::Workload{}, std::forward<Body>(body));
  }

  /// Nested 2D loop, collapsed for the pool backend. Index math is hoisted:
  /// one div/mod per chunk, then increment-carry per iteration.
  template <typename Body>
  void forall2(std::size_t ni, std::size_t nj, hsim::Workload w, Body&& body) {
    const std::size_t n = ni * nj;
    launch_begin();
    dispatch(n, [&, nj](std::size_t lo, std::size_t hi) {
      std::size_t i = lo / nj;
      std::size_t j = lo % nj;
      for (std::size_t idx = lo; idx < hi; ++idx) {
        body(i, j);
        if (++j == nj) {
          j = 0;
          ++i;
        }
      }
    });
    launch_end(hsim::total(w, n), "forall");
  }

  /// Nested 3D loop, collapsed for the pool backend. Same hoisting as
  /// forall2: the per-point `idx / (nj*nk)`, `idx % nk` pair becomes one
  /// div/mod at chunk entry plus carry increments.
  template <typename Body>
  void forall3(std::size_t ni, std::size_t nj, std::size_t nk,
               hsim::Workload w, Body&& body) {
    const std::size_t n = ni * nj * nk;
    launch_begin();
    dispatch(n, [&, nj, nk](std::size_t lo, std::size_t hi) {
      const std::size_t njk = nj * nk;
      std::size_t i = lo / njk;
      const std::size_t rem = lo % njk;
      std::size_t j = rem / nk;
      std::size_t k = rem % nk;
      for (std::size_t idx = lo; idx < hi; ++idx) {
        body(i, j, k);
        if (++k == nk) {
          k = 0;
          if (++j == nj) {
            j = 0;
            ++i;
          }
        }
      }
    });
    launch_end(hsim::total(w, n), "forall");
  }

  /// Sum reduction: body(i) returns each iterate's contribution.
  template <typename Body>
  double reduce_sum(std::size_t n, hsim::Workload w, Body&& body) {
    launch_begin();
    double sum = 0.0;
    if (backend_ == Backend::Threads && n > 1) {
      auto& pool = global_pool();
      // Sized to the exact chunk fan-out; the overflow accumulator keeps
      // the reduction correct even if a chunk lands past the slot array.
      std::vector<double> partial(pool.chunk_count(n), 0.0);
      std::atomic<std::size_t> next{0};
      std::atomic<double> overflow{0.0};
      pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += body(i);
        const std::size_t slot = next.fetch_add(1);
        if (slot < partial.size()) {
          partial[slot] = s;
        } else {
          double cur = overflow.load();
          while (!overflow.compare_exchange_weak(cur, cur + s)) {
          }
        }
      });
      for (double s : partial) sum += s;
      sum += overflow.load();
    } else {
      for (std::size_t i = 0; i < n; ++i) sum += body(i);
    }
    launch_end(hsim::total(w, n), "reduce_sum");
    return sum;
  }

  /// Max reduction.
  template <typename Body>
  double reduce_max(std::size_t n, hsim::Workload w, Body&& body) {
    constexpr double kLowest = -1.7976931348623157e308;
    launch_begin();
    double m = kLowest;
    if (backend_ == Backend::Threads && n > 1) {
      auto& pool = global_pool();
      std::vector<double> partial(pool.chunk_count(n), kLowest);
      std::atomic<std::size_t> next{0};
      std::atomic<double> overflow{kLowest};
      pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
        double lm = kLowest;
        for (std::size_t i = lo; i < hi; ++i) {
          const double v = body(i);
          if (v > lm) lm = v;
        }
        const std::size_t slot = next.fetch_add(1);
        if (slot < partial.size()) {
          partial[slot] = lm;
        } else {
          double cur = overflow.load();
          while (cur < lm && !overflow.compare_exchange_weak(cur, lm)) {
          }
        }
      });
      for (double v : partial) {
        if (v > m) m = v;
      }
      const double of = overflow.load();
      if (of > m) m = of;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const double v = body(i);
        if (v > m) m = v;
      }
    }
    launch_end(hsim::total(w, n), "reduce_max");
    return m;
  }

  // --- fusion ------------------------------------------------------------

  /// Opens a fused region over [0, n): chain `.then(w, body)` stages and
  /// finish with `.launch()` (one kernel, one launch-overhead charge,
  /// summed workloads) or `.reduce_sum(w, term)`. `.elide(bytes)` removes
  /// intermediate-temporary traffic that fusion keeps in registers.
  FusedRegion<1> fused(std::size_t n);
  /// 2D fused region (see fused()).
  FusedRegion<2> fused2(std::size_t ni, std::size_t nj);
  /// 3D fused region (see fused()).
  FusedRegion<3> fused3(std::size_t ni, std::size_t nj, std::size_t nk);

  /// Attaches a shadow machine: every subsequent kernel/transfer is also
  /// priced per-kernel on it, so one real run yields times for several
  /// machines. Returns the shadow's index for shadow_time().
  ///
  /// Shadows keep serialized (single-stream) accounting: they answer
  /// "what would this work cost there", not "how would it overlap".
  std::size_t add_shadow(hsim::MachineModel m) {
    shadows_.emplace_back(hsim::CostModel(std::move(m)), 0.0);
    return shadows_.size() - 1;
  }
  double shadow_time(std::size_t i) const { return shadows_[i].second; }

  /// Records a host<->device transfer of `bytes` (h2d if `to_device`).
  void record_transfer(double bytes, bool to_device) {
    counters_.transfers += 1;
    // The timeline gets the same delta as the global counters, so
    // per-phase breakdowns carry transfer counts and h2d/d2h bytes
    // instead of silently dropping them.
    hsim::Counters delta;
    delta.transfers = 1;
    if (to_device) {
      counters_.h2d_bytes += bytes;
      delta.h2d_bytes = bytes;
    } else {
      counters_.d2h_bytes += bytes;
      delta.d2h_bytes = bytes;
    }
    const double t = model_.transfer_time(bytes);
    const double start = schedule_transfer(t, to_device);
    timeline_.add(phase_, t, delta);
    if (trace_) {
      obs::TraceEvent e;
      e.kind = to_device ? obs::TraceEvent::Kind::TransferH2D
                         : obs::TraceEvent::Kind::TransferD2H;
      e.bound = obs::TraceEvent::Bound::Memory;
      e.backend = to_string(backend_);
      e.phase = phase_;
      e.label = label_.empty() ? "transfer" : label_;
      e.bytes = bytes;
      e.t_start = start;
      e.duration = t;
      e.stream = static_cast<int>(cur_stream_);
      trace_->push(std::move(e));
    }
    for (auto& s : shadows_) s.second += s.first.transfer_time(bytes);
  }

  /// Charges an explicit cost (for kernels not expressible as forall).
  void record_kernel(const hsim::KernelCost& c) {
    launch_begin();
    launch_end(c, "kernel");
  }

  // --- device-memory residency (DESIGN.md section 14) --------------------

  /// Attaches a residency/capacity manager (coe::mem::DeviceArena). With
  /// none attached (the default) the conveniences below degrade to the
  /// exact raw record_transfer accounting of earlier versions, so enabling
  /// the arena is opt-in per context.
  void set_arena(ResidencyManager* arena) { arena_ = arena; }
  ResidencyManager* arena() const { return arena_; }

  /// Residency-aware h2d copy into a named allocation: the arena may elide
  /// it (device copy already current) or add eviction traffic (capacity
  /// pressure). Falls back to record_transfer(bytes, true) with no arena.
  void upload(std::string_view name, double bytes) {
    if (arena_) {
      arena_->upload(name, bytes);
    } else {
      record_transfer(bytes, /*to_device=*/true);
    }
  }

  /// Residency-aware d2h copy out of a named allocation. Falls back to
  /// record_transfer(bytes, false) with no arena.
  void writeback(std::string_view name, double bytes) {
    if (arena_) {
      arena_->writeback(name, bytes);
    } else {
      record_transfer(bytes, /*to_device=*/false);
    }
  }

  /// Declares a device-kernel operand: with an arena attached the named
  /// allocation is admitted to the resident set (faults and evictions
  /// priced); a one-branch no-op otherwise.
  void touch_device(std::string_view name, double bytes, MemAccess access) {
    if (arena_) arena_->device_touch(name, bytes, access);
  }

  /// Declares a host-side use of a named allocation (a Write makes the
  /// next upload of it non-elidable); a one-branch no-op without an arena.
  void touch_host(std::string_view name, double bytes, MemAccess access) {
    if (arena_) arena_->host_touch(name, bytes, access);
  }

 private:
  template <std::size_t Dim, typename... Bodies>
  friend class FusedRegion;

  void launch_begin() {}

  /// Runs chunk(lo, hi) over [0, n): thread pool on the Threads backend
  /// (templated fast path, no std::function allocation), one chunk inline
  /// otherwise.
  template <typename Chunk>
  void dispatch(std::size_t n, Chunk&& chunk) {
    if (n == 0) return;
    if (backend_ == Backend::Threads) {
      global_pool().parallel_for(n, chunk);
    } else {
      chunk(0, n);
    }
  }

  /// Places a kernel of duration `t` on the current stream: it starts when
  /// the stream is ready AND a kernel slot (of the machine's
  /// concurrent_kernels many) frees up. Returns the start time.
  double schedule_kernel(double t) {
    double start = stream_ready(cur_stream_);
    auto slot = std::min_element(kernel_slots_.begin(), kernel_slots_.end());
    if (*slot > start) start = *slot;
    const double end = start + t;
    *slot = end;
    stream_ready_[cur_stream_] = end;
    if (end > sim_time_) sim_time_ = end;
    return start;
  }

  /// Places a transfer on the current stream and its direction's DMA copy
  /// engine (h2d and d2h engines are independent; both overlap kernels).
  double schedule_transfer(double t, bool to_device) {
    double& engine = copy_ready_[to_device ? 0 : 1];
    double start = stream_ready(cur_stream_);
    if (engine > start) start = engine;
    const double end = start + t;
    engine = end;
    stream_ready_[cur_stream_] = end;
    if (end > sim_time_) sim_time_ = end;
    return start;
  }

  double& stream_ready(std::size_t s) {
    if (s >= stream_ready_.size()) stream_ready_.resize(s + 1, stream_floor_);
    return stream_ready_[s];
  }

  /// Appends a zero-duration ordering marker (record/wait/sync) so offline
  /// consumers can rebuild the host-side dependency edges. Costs nothing on
  /// the simulated clock; only called with a trace attached.
  void push_marker(obs::TraceEvent::Kind kind, double t, std::int64_t dep) {
    obs::TraceEvent e;
    e.kind = kind;
    e.backend = to_string(backend_);
    e.phase = phase_;
    e.label = to_string(kind);
    e.t_start = t;
    e.stream = static_cast<int>(cur_stream_);
    e.dep = dep;
    trace_->push(std::move(e));
  }

  void launch_end(const hsim::KernelCost& c, const char* kind) {
    counters_.launches += 1;
    counters_.flops += c.flops;
    counters_.bytes += c.bytes;
    const double t = model_.kernel_time(c);
    const double start = schedule_kernel(t);
    hsim::Counters delta;
    delta.launches = 1;
    delta.flops = c.flops;
    delta.bytes = c.bytes;
    timeline_.add(phase_, t, delta);
    if (trace_) {
      obs::TraceEvent e;
      e.kind = obs::TraceEvent::Kind::Kernel;
      e.bound = compute_bound(c) ? obs::TraceEvent::Bound::Compute
                                 : obs::TraceEvent::Bound::Memory;
      e.backend = to_string(backend_);
      e.phase = phase_;
      e.label = label_.empty() ? kind : label_;
      e.flops = c.flops;
      e.bytes = c.bytes;
      e.t_start = start;
      e.duration = t;
      e.stream = static_cast<int>(cur_stream_);
      trace_->push(std::move(e));
    }
    for (auto& s : shadows_) s.second += s.first.kernel_time(c);
  }

  /// Roofline classification against the active machine's ridge point.
  /// Byte-free launches are compute-bound if they do any flops; pure
  /// launch-overhead events classify as memory-bound.
  bool compute_bound(const hsim::KernelCost& c) const {
    if (c.bytes <= 0.0) return c.flops > 0.0;
    return c.flops / c.bytes >= model_.machine().ridge();
  }

  Backend backend_;
  ResidencyManager* arena_ = nullptr;
  std::vector<std::pair<hsim::CostModel, double>> shadows_;
  hsim::CostModel model_;
  hsim::Counters counters_;
  hsim::Timeline timeline_;
  obs::TraceBuffer* trace_ = nullptr;
  double sim_time_ = 0.0;
  // Per-stream readiness, kernel execution slots, and the two DMA engines.
  // All start at stream_floor_, which sync() advances so streams created
  // after a join cannot schedule work before it.
  std::vector<double> stream_ready_ = {0.0};
  std::vector<double> kernel_slots_;
  double copy_ready_[2] = {0.0, 0.0};
  std::size_t cur_stream_ = 0;
  double stream_floor_ = 0.0;
  std::int64_t next_event_id_ = 0;
  std::string phase_ = "main";
  std::string label_;
};

/// Builder for a fused kernel: consecutive same-range loop bodies merged
/// into ONE launch. The paper's fusion wins (Cardioid reaction kernels,
/// SW4 RHS, ParaDyn SLNSP) come from exactly this transformation: one
/// launch-overhead charge instead of one per stage, and intermediate
/// temporaries that stay in registers (`elide`) instead of round-tripping
/// through memory. Stages run in order at each index, so fusing is
/// value-identical whenever stage k reads only what stage k-1 wrote at the
/// same index.
template <std::size_t Dim, typename... Bodies>
class FusedRegion {
 public:
  FusedRegion(ExecContext& ctx, std::array<std::size_t, Dim> shape,
              hsim::Workload w, std::tuple<Bodies...> bodies)
      : ctx_(&ctx), shape_(shape), w_(w), bodies_(std::move(bodies)) {}

  /// Appends a stage: per-iteration workload adds to the region's; the
  /// body runs after all previous stages at each index.
  template <typename Body>
  [[nodiscard]] FusedRegion<Dim, Bodies..., Body> then(hsim::Workload w,
                                                       Body body) && {
    const hsim::Workload sum{w_.flops_per_iter + w.flops_per_iter,
                             w_.bytes_per_iter + w.bytes_per_iter};
    return FusedRegion<Dim, Bodies..., Body>(
        *ctx_, shape_, sum,
        std::tuple_cat(std::move(bodies_), std::make_tuple(std::move(body))));
  }

  /// Drops `bytes_per_iter` from the priced traffic: the store+reload of
  /// an intermediate temporary that fusion keeps in registers.
  [[nodiscard]] FusedRegion elide(double bytes_per_iter) && {
    w_.bytes_per_iter -= bytes_per_iter;
    if (w_.bytes_per_iter < 0.0) w_.bytes_per_iter = 0.0;
    return std::move(*this);
  }

  /// Launches all stages as one kernel.
  void launch() && {
    auto run = [this](auto... idx) {
      std::apply([&](auto&... bs) { (bs(idx...), ...); }, bodies_);
    };
    if constexpr (Dim == 1) {
      ctx_->forall(shape_[0], w_, run);
    } else if constexpr (Dim == 2) {
      ctx_->forall2(shape_[0], shape_[1], w_, run);
    } else {
      static_assert(Dim == 3, "FusedRegion supports 1-3 dimensions");
      ctx_->forall3(shape_[0], shape_[1], shape_[2], w_, run);
    }
  }

  /// 1D only: fuses a trailing sum reduction into the same launch — the
  /// stages run first at each index, then term(i) contributes to the sum.
  template <typename Term>
  double reduce_sum(hsim::Workload w, Term term) && {
    static_assert(Dim == 1, "fused reductions are 1D");
    const hsim::Workload tot{w_.flops_per_iter + w.flops_per_iter,
                             w_.bytes_per_iter + w.bytes_per_iter};
    return ctx_->reduce_sum(shape_[0], tot, [&](std::size_t i) {
      std::apply([&](auto&... bs) { (bs(i), ...); }, bodies_);
      return term(i);
    });
  }

 private:
  ExecContext* ctx_;
  std::array<std::size_t, Dim> shape_;
  hsim::Workload w_;
  std::tuple<Bodies...> bodies_;
};

inline FusedRegion<1> ExecContext::fused(std::size_t n) {
  return FusedRegion<1>(*this, {n}, hsim::Workload{}, std::tuple<>{});
}
inline FusedRegion<2> ExecContext::fused2(std::size_t ni, std::size_t nj) {
  return FusedRegion<2>(*this, {ni, nj}, hsim::Workload{}, std::tuple<>{});
}
inline FusedRegion<3> ExecContext::fused3(std::size_t ni, std::size_t nj,
                                          std::size_t nk) {
  return FusedRegion<3>(*this, {ni, nj, nk}, hsim::Workload{}, std::tuple<>{});
}

/// Factory helpers for the machines the paper reports on.
inline ExecContext make_seq() { return ExecContext(Backend::Seq); }
inline ExecContext make_threads() { return ExecContext(Backend::Threads); }
inline ExecContext make_device(hsim::MachineModel m = hsim::machines::v100()) {
  return ExecContext(Backend::Device, std::move(m));
}
inline ExecContext make_cpu(hsim::MachineModel m = hsim::machines::power9()) {
  return ExecContext(Backend::Seq, std::move(m));
}

}  // namespace coe::core
