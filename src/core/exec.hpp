#pragma once
// The portability layer the iCoE workload shares: a RAJA-style `forall`
// over pluggable backends. The Seq and Threads backends execute on the real
// host; the Device backend *also* executes on the host (all numerics are
// real) but charges time to an attached GPU machine model — the simulated
// heterogeneous node this reproduction targets (DESIGN.md section 2).

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cost.hpp"
#include "core/machine.hpp"
#include "core/threadpool.hpp"
#include "obs/trace.hpp"

namespace coe::core {

enum class Backend {
  Seq,      ///< serial host execution
  Threads,  ///< host thread-pool execution (the OpenMP analog)
  Device,   ///< host execution, GPU-model time accounting (the CUDA analog)
};

inline const char* to_string(Backend b) {
  switch (b) {
    case Backend::Seq: return "seq";
    case Backend::Threads: return "threads";
    case Backend::Device: return "device";
  }
  return "?";
}

/// Execution resource: a backend plus the machine model it charges time to.
/// Every kernel launch, reduction, and buffer transfer updates this
/// context's counters, simulated clock, and current timeline phase.
class ExecContext {
 public:
  /// Host-only context charging time to `host_model`.
  explicit ExecContext(Backend backend = Backend::Seq,
                       hsim::MachineModel model = hsim::machines::host())
      : backend_(backend), model_(std::move(model)) {}

  Backend backend() const { return backend_; }
  const hsim::CostModel& model() const { return model_; }
  bool on_device() const { return backend_ == Backend::Device; }

  hsim::Counters& counters() { return counters_; }
  const hsim::Counters& counters() const { return counters_; }

  /// Simulated seconds accumulated so far on the modeled machine.
  double simulated_time() const { return sim_time_; }
  void reset() {
    counters_.reset();
    sim_time_ = 0.0;
    timeline_.clear();
    // Shadow accumulators are part of the run being reset too — leaving
    // them would make shadow_time() report stale totals forever after.
    for (auto& s : shadows_) s.second = 0.0;
    if (trace_) trace_->clear();
  }

  hsim::Timeline& timeline() { return timeline_; }
  /// Subsequent launches/transfers accrue to this named timeline phase.
  void set_phase(std::string name) { phase_ = std::move(name); }
  const std::string& phase() const { return phase_; }

  /// Opt-in per-kernel tracing: attaches a (non-owned) ring buffer that
  /// receives one event per launch/transfer — phase, label, exact
  /// flop/byte counts, predicted duration, backend, and the roofline
  /// memory-/compute-bound classification against this machine's ridge.
  /// nullptr detaches; with no buffer attached the only cost per launch
  /// is one branch.
  void set_trace(obs::TraceBuffer* buf) { trace_ = buf; }
  obs::TraceBuffer* trace() const { return trace_; }

  /// Subsequent launches are traced under this label; an empty label
  /// (the default) falls back to the operation kind ("forall",
  /// "reduce_sum", "transfer", ...). Like set_phase, it sticks until
  /// changed.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// RAJA-style parallel loop over [0, n). `w` annotates per-iteration work
  /// so the machine model can price the launch.
  template <typename Body>
  void forall(std::size_t n, hsim::Workload w, Body&& body) {
    launch_begin();
    if (backend_ == Backend::Threads) {
      global_pool().parallel_for(n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
    } else {
      for (std::size_t i = 0; i < n; ++i) body(i);
    }
    launch_end(hsim::total(w, n), "forall");
  }

  /// Convenience overload with no work annotation (zero-cost bookkeeping
  /// launch; still counts the launch overhead).
  template <typename Body>
  void forall(std::size_t n, Body&& body) {
    forall(n, hsim::Workload{}, std::forward<Body>(body));
  }

  /// Nested 2D loop, collapsed for the pool backend.
  template <typename Body>
  void forall2(std::size_t ni, std::size_t nj, hsim::Workload w, Body&& body) {
    forall(ni * nj, w, [&, nj](std::size_t idx) {
      body(idx / nj, idx % nj);
    });
  }

  /// Nested 3D loop, collapsed for the pool backend.
  template <typename Body>
  void forall3(std::size_t ni, std::size_t nj, std::size_t nk,
               hsim::Workload w, Body&& body) {
    forall(ni * nj * nk, w, [&, nj, nk](std::size_t idx) {
      const std::size_t i = idx / (nj * nk);
      const std::size_t rem = idx % (nj * nk);
      body(i, rem / nk, rem % nk);
    });
  }

  /// Sum reduction: body(i) returns each iterate's contribution.
  template <typename Body>
  double reduce_sum(std::size_t n, hsim::Workload w, Body&& body) {
    launch_begin();
    double sum = 0.0;
    if (backend_ == Backend::Threads && n > 1) {
      auto& pool = global_pool();
      // Sized to the exact chunk fan-out; the overflow accumulator keeps
      // the reduction correct even if a chunk lands past the slot array.
      std::vector<double> partial(pool.chunk_count(n), 0.0);
      std::atomic<std::size_t> next{0};
      std::atomic<double> overflow{0.0};
      pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += body(i);
        const std::size_t slot = next.fetch_add(1);
        if (slot < partial.size()) {
          partial[slot] = s;
        } else {
          double cur = overflow.load();
          while (!overflow.compare_exchange_weak(cur, cur + s)) {
          }
        }
      });
      for (double s : partial) sum += s;
      sum += overflow.load();
    } else {
      for (std::size_t i = 0; i < n; ++i) sum += body(i);
    }
    launch_end(hsim::total(w, n), "reduce_sum");
    return sum;
  }

  /// Max reduction.
  template <typename Body>
  double reduce_max(std::size_t n, hsim::Workload w, Body&& body) {
    constexpr double kLowest = -1.7976931348623157e308;
    launch_begin();
    double m = kLowest;
    if (backend_ == Backend::Threads && n > 1) {
      auto& pool = global_pool();
      std::vector<double> partial(pool.chunk_count(n), kLowest);
      std::atomic<std::size_t> next{0};
      std::atomic<double> overflow{kLowest};
      pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
        double lm = kLowest;
        for (std::size_t i = lo; i < hi; ++i) {
          const double v = body(i);
          if (v > lm) lm = v;
        }
        const std::size_t slot = next.fetch_add(1);
        if (slot < partial.size()) {
          partial[slot] = lm;
        } else {
          double cur = overflow.load();
          while (cur < lm && !overflow.compare_exchange_weak(cur, lm)) {
          }
        }
      });
      for (double v : partial) {
        if (v > m) m = v;
      }
      const double of = overflow.load();
      if (of > m) m = of;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const double v = body(i);
        if (v > m) m = v;
      }
    }
    launch_end(hsim::total(w, n), "reduce_max");
    return m;
  }

  /// Attaches a shadow machine: every subsequent kernel/transfer is also
  /// priced per-kernel on it, so one real run yields times for several
  /// machines. Returns the shadow's index for shadow_time().
  std::size_t add_shadow(hsim::MachineModel m) {
    shadows_.emplace_back(hsim::CostModel(std::move(m)), 0.0);
    return shadows_.size() - 1;
  }
  double shadow_time(std::size_t i) const { return shadows_[i].second; }

  /// Records a host<->device transfer of `bytes` (h2d if `to_device`).
  void record_transfer(double bytes, bool to_device) {
    counters_.transfers += 1;
    // The timeline gets the same delta as the global counters, so
    // per-phase breakdowns carry transfer counts and h2d/d2h bytes
    // instead of silently dropping them.
    hsim::Counters delta;
    delta.transfers = 1;
    if (to_device) {
      counters_.h2d_bytes += bytes;
      delta.h2d_bytes = bytes;
    } else {
      counters_.d2h_bytes += bytes;
      delta.d2h_bytes = bytes;
    }
    const double t = model_.transfer_time(bytes);
    sim_time_ += t;
    timeline_.add(phase_, t, delta);
    if (trace_) {
      obs::TraceEvent e;
      e.kind = to_device ? obs::TraceEvent::Kind::TransferH2D
                         : obs::TraceEvent::Kind::TransferD2H;
      e.bound = obs::TraceEvent::Bound::Memory;
      e.backend = to_string(backend_);
      e.phase = phase_;
      e.label = label_.empty() ? "transfer" : label_;
      e.bytes = bytes;
      e.t_start = sim_time_ - t;
      e.duration = t;
      trace_->push(std::move(e));
    }
    for (auto& s : shadows_) s.second += s.first.transfer_time(bytes);
  }

  /// Charges an explicit cost (for kernels not expressible as forall).
  void record_kernel(const hsim::KernelCost& c) {
    launch_begin();
    launch_end(c, "kernel");
  }

 private:
  void launch_begin() {}

  void launch_end(const hsim::KernelCost& c, const char* kind) {
    counters_.launches += 1;
    counters_.flops += c.flops;
    counters_.bytes += c.bytes;
    const double t = model_.kernel_time(c);
    sim_time_ += t;
    hsim::Counters delta;
    delta.launches = 1;
    delta.flops = c.flops;
    delta.bytes = c.bytes;
    timeline_.add(phase_, t, delta);
    if (trace_) {
      obs::TraceEvent e;
      e.kind = obs::TraceEvent::Kind::Kernel;
      e.bound = compute_bound(c) ? obs::TraceEvent::Bound::Compute
                                 : obs::TraceEvent::Bound::Memory;
      e.backend = to_string(backend_);
      e.phase = phase_;
      e.label = label_.empty() ? kind : label_;
      e.flops = c.flops;
      e.bytes = c.bytes;
      e.t_start = sim_time_ - t;
      e.duration = t;
      trace_->push(std::move(e));
    }
    for (auto& s : shadows_) s.second += s.first.kernel_time(c);
  }

  /// Roofline classification against the active machine's ridge point.
  /// Byte-free launches are compute-bound if they do any flops; pure
  /// launch-overhead events classify as memory-bound.
  bool compute_bound(const hsim::KernelCost& c) const {
    if (c.bytes <= 0.0) return c.flops > 0.0;
    return c.flops / c.bytes >= model_.machine().ridge();
  }

  Backend backend_;
  std::vector<std::pair<hsim::CostModel, double>> shadows_;
  hsim::CostModel model_;
  hsim::Counters counters_;
  hsim::Timeline timeline_;
  obs::TraceBuffer* trace_ = nullptr;
  double sim_time_ = 0.0;
  std::string phase_ = "main";
  std::string label_;
};

/// Factory helpers for the machines the paper reports on.
inline ExecContext make_seq() { return ExecContext(Backend::Seq); }
inline ExecContext make_threads() { return ExecContext(Backend::Threads); }
inline ExecContext make_device(hsim::MachineModel m = hsim::machines::v100()) {
  return ExecContext(Backend::Device, std::move(m));
}
inline ExecContext make_cpu(hsim::MachineModel m = hsim::machines::power9()) {
  return ExecContext(Backend::Seq, std::move(m));
}

}  // namespace coe::core
