#include "core/threadpool.hpp"

#include <algorithm>

namespace coe::core {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // The calling thread acts as worker 0; spawn the rest.
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mtx_);
    stop_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(const Job& job) {
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    const std::size_t lo = job.n * c / job.chunks;
    const std::size_t hi = job.n * (c + 1) / job.chunks;
    job.fn(lo, hi);
  }
}

void ThreadPool::run(std::size_t n, FnRef fn) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count(n);

  if (chunks == 1 || workers_.empty()) {
    fn(0, n);
    return;
  }

  // Waking every worker for a handful of chunks costs more than it saves;
  // only ids 1..participants take part, the rest skip this generation.
  const std::size_t participants = std::min(workers_.size(), chunks - 1);
  {
    std::lock_guard<std::mutex> lk(mtx_);
    job_ = Job{fn, n, chunks, participants};
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_ = participants;
    ++generation_;
  }
  cv_start_.notify_all();

  drain(job_);

  std::unique_lock<std::mutex> lk(mtx_);
  cv_done_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(std::size_t id) {
  std::size_t seen = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mtx_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      seen = generation_;
      if (stop_) return;
      job = job_;
    }
    if (job.fn.call != nullptr && id <= job.participants) {
      drain(job);
      std::lock_guard<std::mutex> lk(mtx_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace coe::core
