#include "core/threadpool.hpp"

namespace coe::core {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // The calling thread acts as worker 0; spawn the rest.
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mtx_);
    stop_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size());
  auto chunk_range = [n, chunks](std::size_t c) {
    const std::size_t lo = n * c / chunks;
    const std::size_t hi = n * (c + 1) / chunks;
    return std::pair<std::size_t, std::size_t>(lo, hi);
  };

  if (chunks == 1 || workers_.empty()) {
    fn(0, n);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(mtx_);
    job_ = Job{&fn, n, chunks};
    pending_ = chunks - 1;  // workers handle chunks 1..chunks-1
    ++generation_;
  }
  cv_start_.notify_all();

  auto [lo, hi] = chunk_range(0);
  fn(lo, hi);

  std::unique_lock<std::mutex> lk(mtx_);
  cv_done_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(std::size_t id) {
  std::size_t seen = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mtx_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      seen = generation_;
      if (stop_) return;
      job = job_;
    }
    if (job.fn != nullptr && id < job.chunks) {
      const std::size_t lo = job.n * id / job.chunks;
      const std::size_t hi = job.n * (id + 1) / job.chunks;
      (*job.fn)(lo, hi);
      std::lock_guard<std::mutex> lk(mtx_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace coe::core
