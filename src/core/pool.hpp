#pragma once
// Umpire-style pooled allocator (Section 4.10.5: "all data is allocated
// from memory pools that Umpire provides, which amortizes the cost of these
// allocations"). Freed blocks are kept in power-of-two size-class free
// lists and reused; statistics expose how much underlying allocation the
// pool avoided.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace coe::core {

class MemoryPool {
 public:
  struct Stats {
    std::size_t request_count = 0;    ///< allocate() calls
    std::size_t backing_allocs = 0;   ///< requests that hit the upstream heap
    std::size_t reuse_count = 0;      ///< requests served from the free list
    std::size_t bytes_requested = 0;  ///< sum of requested sizes
    std::size_t bytes_backed = 0;     ///< sum of upstream allocation sizes
    std::size_t current_bytes = 0;    ///< live (handed out) rounded bytes
    std::size_t highwater_bytes = 0;  ///< max of current_bytes
  };

  MemoryPool() = default;
  ~MemoryPool();

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Returns at least `bytes` of storage (rounded up to a power of two).
  /// Requests past the largest size class (2^63 bytes) throw
  /// std::length_error rather than indexing out of the free lists.
  void* allocate(std::size_t bytes);
  /// Returns the block to the pool's free list (never to the heap).
  /// With debug checks on (the default in !NDEBUG builds; see
  /// set_debug_checks) a double free or a size-mismatched free throws
  /// std::logic_error. With them off the statistics are clamped so a bad
  /// free can never underflow current_bytes.
  void deallocate(void* p, std::size_t bytes);

  /// Enables/disables the live-pointer validation in deallocate().
  /// Defaults to on in !NDEBUG builds, off otherwise; tests turn it on
  /// explicitly so the detection path runs under every build type.
  void set_debug_checks(bool on) { debug_checks_ = on; }
  bool debug_checks() const { return debug_checks_; }
  /// Releases all free-listed blocks back to the heap.
  void release();

  const Stats& stats() const { return stats_; }

  /// Number of power-of-two size classes (free lists) the pool keeps.
  static constexpr std::size_t kNumClasses = 64;

 private:
  static std::size_t size_class(std::size_t bytes);

  struct Block {
    std::unique_ptr<std::byte[]> storage;
  };

  // free_[k] holds blocks of 2^k bytes.
  std::vector<std::vector<std::unique_ptr<std::byte[]>>> free_ =
      std::vector<std::vector<std::unique_ptr<std::byte[]>>>(kNumClasses);
  Stats stats_;
  // Live (handed-out) blocks and their size class, maintained always so
  // debug checks can be switched on mid-stream (see set_debug_checks).
  std::unordered_map<const void*, std::size_t> live_;
#ifndef NDEBUG
  bool debug_checks_ = true;
#else
  bool debug_checks_ = false;
#endif
};

/// RAII convenience for typed pool arrays.
template <typename T>
class PoolArray {
 public:
  PoolArray(MemoryPool& pool, std::size_t n)
      : pool_(&pool), n_(n),
        data_(static_cast<T*>(pool.allocate(n * sizeof(T)))) {
    for (std::size_t i = 0; i < n_; ++i) new (data_ + i) T{};
  }
  ~PoolArray() {
    for (std::size_t i = 0; i < n_; ++i) data_[i].~T();
    pool_->deallocate(data_, n_ * sizeof(T));
  }

  PoolArray(const PoolArray&) = delete;
  PoolArray& operator=(const PoolArray&) = delete;

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return n_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  MemoryPool* pool_;
  std::size_t n_;
  T* data_;
};

}  // namespace coe::core
