#pragma once
// Device-memory residency hook (DESIGN.md section 14). Real heterogeneous
// nodes have finite device memory (16 GB on the V100s the paper's apps ran
// on); `hsim::MachineModel::mem_capacity` describes it, and this interface
// is where the simulation enforces it. An ExecContext may have a
// ResidencyManager attached (coe::mem::DeviceArena is the implementation);
// buffers and drivers announce which named allocations a kernel or copy is
// about to use, and the manager admits them into the device's resident set,
// evicting (and pricing the eviction of) older allocations when capacity is
// exceeded. Without a manager attached every call degrades to exactly the
// raw `record_transfer` accounting earlier versions performed, so
// under-capacity runs are bit-identical whether or not capacity modeling is
// compiled in, attached, or exercised.
//
// The interface lives in core (rather than mem) so core's buffers and every
// driver can speak it without a dependency cycle: core defines the seam,
// coe::mem implements it.

#include <string_view>

namespace coe::core {

/// Abstract residency/capacity manager for one simulated device.
/// Implementations price their traffic through the owning ExecContext.
class ResidencyManager {
 public:
  /// How a touch uses the data: Write marks the touched side's copy newer
  /// (a later copy from it cannot be elided); Read leaves both copies
  /// coherent when they already were.
  enum class Access { Read, Write };

  virtual ~ResidencyManager() = default;

  /// A device kernel is about to use the named allocation: ensure it is
  /// resident (admitting/evicting/faulting as needed, all priced).
  virtual void device_touch(std::string_view name, double bytes,
                            Access access) = 0;

  /// Host code is about to use the named allocation (reads back a
  /// device-dirty copy; a Write marks the host copy newer).
  virtual void host_touch(std::string_view name, double bytes,
                          Access access) = 0;

  /// Explicit h2d copy of `bytes` into the named allocation (the
  /// record_transfer(bytes, true) replacement). Returns false when the
  /// transfer was elided because the device copy is already current.
  virtual bool upload(std::string_view name, double bytes) = 0;

  /// Explicit d2h copy out of the named allocation. Returns false when
  /// elided because the host copy is already current.
  virtual bool writeback(std::string_view name, double bytes) = 0;

  /// The named allocation is gone; drop it from the resident set with no
  /// traffic (freeing device memory is not a copy).
  virtual void release(std::string_view name) = 0;
};

/// Shorthand used by the ExecContext conveniences and driver call sites.
using MemAccess = ResidencyManager::Access;

}  // namespace coe::core
