#pragma once
// Deterministic, fast RNG shared by workload generators so every experiment
// is reproducible bit-for-bit across runs (splitmix64 core).

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace coe::core {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Gamma(shape, scale) via Marsaglia-Tsang (shape >= 0 handled).
  double gamma(double shape, double scale = 1.0) {
    if (shape < 1.0) {
      const double u = uniform();
      return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, v;
      do {
        x = normal();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v * scale;
      }
    }
  }

  /// Appends the full generator state (3 doubles, including the Box-Muller
  /// spare) so a checkpointed simulation resumes its random stream exactly.
  void save_state(std::vector<double>& out) const {
    out.push_back(std::bit_cast<double>(state_));
    out.push_back(spare_);
    out.push_back(have_spare_ ? 1.0 : 0.0);
  }

  /// Restores state written by save_state; returns the advanced cursor.
  const double* load_state(const double* in) {
    state_ = std::bit_cast<std::uint64_t>(*in++);
    spare_ = *in++;
    have_spare_ = *in++ != 0.0;
    return in;
  }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace coe::core
