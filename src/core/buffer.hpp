#pragma once
// Dual-residency array. On real heterogeneous nodes this is the
// cudaMalloc/cudaMemcpy (or Unified Memory) story the paper's teams wrestled
// with; here a single host allocation backs both "copies" and the context
// records the transfers a real node would have performed.
//
// UnifiedBuffer models CUDA Unified Memory the way Section 4.11 describes
// it: migrations happen in 64 KiB blocks on first touch from the other side.
//
// Page-granularity policy (DESIGN.md section 14): a touched page moves as a
// whole — except the trailing page of an allocation that is not a page
// multiple, which is charged min(kPageBytes, bytes() - p * kPageBytes).
// Real UM migrates whole pages, but it never copies bytes past the end of
// the allocation; the old full-page charge billed a 64-byte buffer at
// 1024x its size per migration.

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/exec.hpp"

namespace coe::core {

/// Explicit-copy buffer (the cudaMemcpy idiom). An optional name enrolls
/// it with the context's residency arena (DESIGN.md section 14): device
/// accesses then admit it to the device's resident set — under capacity
/// pressure it can be evicted (dirty pages spilled d2h) and re-faulted —
/// and its uploads/readbacks become elidable when the destination copy is
/// already current. Unnamed buffers keep the raw record_transfer
/// accounting of earlier versions, bit for bit.
template <typename T>
class Buffer {
 public:
  Buffer(ExecContext& ctx, std::size_t n, T init = T{})
      : ctx_(&ctx), data_(n, init), valid_(Loc::Both) {}

  Buffer(ExecContext& ctx, std::string name, std::size_t n, T init = T{})
      : ctx_(&ctx), name_(std::move(name)), data_(n, init),
        valid_(Loc::Both) {}

  ~Buffer() {
    if (!name_.empty() && ctx_->arena()) ctx_->arena()->release(name_);
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  const std::string& name() const { return name_; }

  /// Read-only host access; pulls data back from the device if needed.
  std::span<const T> host_read() {
    if (valid_ == Loc::Device) {
      charge(/*to_device=*/false);
      valid_ = Loc::Both;
    }
    return {data_.data(), data_.size()};
  }

  /// Mutable host access; invalidates the device copy.
  std::span<T> host_write() {
    (void)host_read();
    valid_ = Loc::Host;
    if (!name_.empty()) {
      ctx_->touch_host(name_, static_cast<double>(bytes()),
                       MemAccess::Write);
    }
    return {data_.data(), data_.size()};
  }

  /// Read-only device access; uploads if the host copy is newer.
  std::span<const T> device_read() {
    if (valid_ == Loc::Host) {
      charge(/*to_device=*/true);
      valid_ = Loc::Both;
    } else if (!name_.empty()) {
      // Already device-valid, but the arena may have evicted it; a touch
      // re-faults (priced) when it did and is free when it did not.
      ctx_->touch_device(name_, static_cast<double>(bytes()),
                         MemAccess::Read);
    }
    return {data_.data(), data_.size()};
  }

  /// Mutable device access; invalidates the host copy.
  std::span<T> device_write() {
    (void)device_read();
    valid_ = Loc::Device;
    if (!name_.empty()) {
      ctx_->touch_device(name_, static_cast<double>(bytes()),
                         MemAccess::Write);
    }
    return {data_.data(), data_.size()};
  }

  /// Access on whichever side the context executes (the common idiom).
  std::span<T> write(ExecContext& ctx) {
    return ctx.on_device() ? device_write() : host_write();
  }
  std::span<const T> read(ExecContext& ctx) {
    return ctx.on_device() ? device_read() : host_read();
  }

 private:
  enum class Loc { Host, Device, Both };

  void charge(bool to_device) {
    const double b = static_cast<double>(bytes());
    if (name_.empty()) {
      ctx_->record_transfer(b, to_device);
    } else if (to_device) {
      ctx_->upload(name_, b);
    } else {
      ctx_->writeback(name_, b);
    }
  }

  ExecContext* ctx_;
  std::string name_;
  std::vector<T> data_;
  Loc valid_;
};

/// Unified-memory style buffer: accesses from the "wrong" side migrate the
/// touched 64 KiB blocks rather than the whole allocation. Per-page dirty
/// tracking distinguishes read sharing from writes: a read-touch leaves the
/// source side's copy valid, so bouncing *unmodified* pages between host
/// and device costs one migration instead of one per touch. The old model
/// kept a single "which side" bit per page and re-charged every crossing;
/// elided_transfers()/elided_bytes() count exactly the migrations that
/// model would have billed and dirty tracking avoids.
template <typename T>
class UnifiedBuffer {
 public:
  static constexpr std::size_t kPageBytes = 64 * 1024;

  UnifiedBuffer(ExecContext& ctx, std::size_t n, T init = T{})
      : ctx_(&ctx), data_(n, init) {
    const std::size_t pages = (bytes() + kPageBytes - 1) / kPageBytes;
    const std::size_t count = pages ? pages : 1;
    // Pages start host-valid only, exactly like the old "on host" bit.
    host_valid_.assign(count, true);
    dev_valid_.assign(count, false);
    legacy_on_device_.assign(count, false);
  }

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  std::size_t pages() const { return host_valid_.size(); }

  /// Write-touch of elements [lo, hi) from the host; migrates pages the
  /// host copy is stale for and invalidates their device copy. (The
  /// pre-dirty-tracking API: every touch was a write-touch.)
  std::span<T> host_touch(std::size_t lo, std::size_t hi) {
    touch(lo, hi, /*to_device=*/false, /*write=*/true);
    return {data_.data() + lo, hi - lo};
  }

  /// Write-touch from the device.
  std::span<T> device_touch(std::size_t lo, std::size_t hi) {
    touch(lo, hi, /*to_device=*/true, /*write=*/true);
    return {data_.data() + lo, hi - lo};
  }

  /// Read-touch from the host: migrates stale pages but keeps the device
  /// copy valid, so an unmodified page's return trip is free (elided).
  std::span<const T> host_read(std::size_t lo, std::size_t hi) {
    touch(lo, hi, /*to_device=*/false, /*write=*/false);
    return {data_.data() + lo, hi - lo};
  }

  /// Read-touch from the device.
  std::span<const T> device_read(std::size_t lo, std::size_t hi) {
    touch(lo, hi, /*to_device=*/true, /*write=*/false);
    return {data_.data() + lo, hi - lo};
  }

  std::span<T> all() { return {data_.data(), data_.size()}; }

  /// Migrations the single-residency model would have charged but dirty
  /// tracking elided (both copies were already coherent).
  std::size_t elided_transfers() const { return elided_transfers_; }
  double elided_bytes() const { return elided_bytes_; }

 private:
  /// Bytes a migration of page `p` moves: full pages except the trailing
  /// partial page, which only holds bytes() - p * kPageBytes.
  double page_bytes(std::size_t p) const {
    const std::size_t off = p * kPageBytes;
    const std::size_t remain = bytes() > off ? bytes() - off : 0;
    return static_cast<double>(remain < kPageBytes ? remain : kPageBytes);
  }

  void touch(std::size_t lo, std::size_t hi, bool to_device, bool write) {
    assert(lo <= hi && hi <= data_.size());
    const std::size_t p0 = lo * sizeof(T) / kPageBytes;
    const std::size_t p1 =
        hi == lo ? p0 : ((hi * sizeof(T) - 1) / kPageBytes + 1);
    for (std::size_t p = p0; p < p1 && p < pages(); ++p) {
      auto valid = to_device ? dev_valid_.begin() : host_valid_.begin();
      auto other = to_device ? host_valid_.begin() : dev_valid_.begin();
      // What the old single-residency model would have done: charge on
      // every side crossing.
      const bool legacy_charge = legacy_on_device_[p] != to_device;
      legacy_on_device_[p] = to_device;
      if (!valid[p]) {
        ctx_->record_transfer(page_bytes(p), to_device);
        valid[p] = true;
      } else if (legacy_charge) {
        ++elided_transfers_;
        elided_bytes_ += page_bytes(p);
      }
      if (write) other[p] = false;
    }
  }

  ExecContext* ctx_;
  std::vector<T> data_;
  // Per-page validity of each side's copy (at least one is always true).
  std::vector<bool> host_valid_;
  std::vector<bool> dev_valid_;
  // The old model's "which side owns the page" bit, maintained so elisions
  // can be counted against exactly what it would have billed.
  std::vector<bool> legacy_on_device_;
  std::size_t elided_transfers_ = 0;
  double elided_bytes_ = 0.0;
};

}  // namespace coe::core
