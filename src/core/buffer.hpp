#pragma once
// Dual-residency array. On real heterogeneous nodes this is the
// cudaMalloc/cudaMemcpy (or Unified Memory) story the paper's teams wrestled
// with; here a single host allocation backs both "copies" and the context
// records the transfers a real node would have performed.
//
// UnifiedBuffer models CUDA Unified Memory the way Section 4.11 describes
// it: migrations happen in 64 KiB blocks on first touch from the other side.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "core/exec.hpp"

namespace coe::core {

template <typename T>
class Buffer {
 public:
  Buffer(ExecContext& ctx, std::size_t n, T init = T{})
      : ctx_(&ctx), data_(n, init), valid_(Loc::Both) {}

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }

  /// Read-only host access; pulls data back from the device if needed.
  std::span<const T> host_read() {
    if (valid_ == Loc::Device) {
      ctx_->record_transfer(static_cast<double>(bytes()), /*to_device=*/false);
      valid_ = Loc::Both;
    }
    return {data_.data(), data_.size()};
  }

  /// Mutable host access; invalidates the device copy.
  std::span<T> host_write() {
    (void)host_read();
    valid_ = Loc::Host;
    return {data_.data(), data_.size()};
  }

  /// Read-only device access; uploads if the host copy is newer.
  std::span<const T> device_read() {
    if (valid_ == Loc::Host) {
      ctx_->record_transfer(static_cast<double>(bytes()), /*to_device=*/true);
      valid_ = Loc::Both;
    }
    return {data_.data(), data_.size()};
  }

  /// Mutable device access; invalidates the host copy.
  std::span<T> device_write() {
    (void)device_read();
    valid_ = Loc::Device;
    return {data_.data(), data_.size()};
  }

  /// Access on whichever side the context executes (the common idiom).
  std::span<T> write(ExecContext& ctx) {
    return ctx.on_device() ? device_write() : host_write();
  }
  std::span<const T> read(ExecContext& ctx) {
    return ctx.on_device() ? device_read() : host_read();
  }

 private:
  enum class Loc { Host, Device, Both };

  ExecContext* ctx_;
  std::vector<T> data_;
  Loc valid_;
};

/// Unified-memory style buffer: accesses from the "wrong" side migrate the
/// touched 64 KiB blocks rather than the whole allocation.
template <typename T>
class UnifiedBuffer {
 public:
  static constexpr std::size_t kPageBytes = 64 * 1024;

  UnifiedBuffer(ExecContext& ctx, std::size_t n, T init = T{})
      : ctx_(&ctx), data_(n, init) {
    const std::size_t pages = (bytes() + kPageBytes - 1) / kPageBytes;
    on_device_.assign(pages ? pages : 1, false);
  }

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  std::size_t pages() const { return on_device_.size(); }

  /// Touch elements [lo, hi) from the host; migrates device-resident pages.
  std::span<T> host_touch(std::size_t lo, std::size_t hi) {
    migrate(lo, hi, /*to_device=*/false);
    return {data_.data() + lo, hi - lo};
  }

  /// Touch elements [lo, hi) from the device; migrates host-resident pages.
  std::span<T> device_touch(std::size_t lo, std::size_t hi) {
    migrate(lo, hi, /*to_device=*/true);
    return {data_.data() + lo, hi - lo};
  }

  std::span<T> all() { return {data_.data(), data_.size()}; }

 private:
  void migrate(std::size_t lo, std::size_t hi, bool to_device) {
    assert(lo <= hi && hi <= data_.size());
    const std::size_t p0 = lo * sizeof(T) / kPageBytes;
    const std::size_t p1 =
        hi == lo ? p0 : ((hi * sizeof(T) - 1) / kPageBytes + 1);
    for (std::size_t p = p0; p < p1 && p < on_device_.size(); ++p) {
      if (on_device_[p] != to_device) {
        ctx_->record_transfer(static_cast<double>(kPageBytes), to_device);
        on_device_[p] = to_device;
      }
    }
  }

  ExecContext* ctx_;
  std::vector<T> data_;
  std::vector<bool> on_device_;
};

}  // namespace coe::core
