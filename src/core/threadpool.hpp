#pragma once
// Minimal blocking-fork-join thread pool used by the Threads backend.
// Workers are created once and parked on a condition variable; parallel_for
// partitions [0, n) into contiguous chunks, one per worker.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coe::core {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Number of chunks parallel_for(n, ...) will invoke fn with — the exact
  /// fan-out, so callers can size per-chunk accumulators safely.
  std::size_t chunk_count(std::size_t n) const {
    return n < size() ? n : size();
  }

  /// Runs fn(begin, end) on contiguous chunks of [0, n), blocking until all
  /// chunks complete. The calling thread executes one chunk itself.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop(std::size_t id);

  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
  };

  std::vector<std::thread> workers_;
  std::mutex mtx_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

/// Process-wide pool shared by all Threads-backend contexts.
ThreadPool& global_pool();

}  // namespace coe::core
