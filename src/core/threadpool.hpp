#pragma once
// Minimal blocking-fork-join thread pool used by the Threads backend.
// Workers are created once and parked on a condition variable; parallel_for
// partitions [0, n) into ~4x oversubscribed contiguous chunks that workers
// claim from a shared atomic counter (guided scheduling), so irregular
// bodies (CSR rows, neighbor lists) balance instead of being pinned to one
// static chunk per worker.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace coe::core {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Number of chunks parallel_for(n, ...) will partition [0, n) into —
  /// the maximum fan-out of fn invocations, so callers can size per-chunk
  /// accumulators safely. ~4x the worker count so claimed chunks balance.
  std::size_t chunk_count(std::size_t n) const {
    const std::size_t target = 4 * size();
    return n < target ? n : target;
  }

  /// Runs fn(begin, end) on contiguous chunks of [0, n), blocking until all
  /// chunks complete. The calling thread claims chunks alongside the
  /// workers. Type-erased path, kept for std::function callers.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    run(n, FnRef{const_cast<void*>(static_cast<const void*>(&fn)),
                 [](void* f, std::size_t lo, std::size_t hi) {
                   (*static_cast<
                       const std::function<void(std::size_t, std::size_t)>*>(
                       f))(lo, hi);
                 }});
  }

  /// Templated fast path: references the callable in place for the
  /// duration of the (blocking) call — no std::function allocation, one
  /// indirect call per chunk instead of a type-erased dispatch per
  /// boundary. This is what forall's lambda binds to.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>,
                std::function<void(std::size_t, std::size_t)>>>>
  void parallel_for(std::size_t n, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run(n, FnRef{const_cast<void*>(static_cast<const void*>(&fn)),
                 [](void* f, std::size_t lo, std::size_t hi) {
                   (*static_cast<Fn*>(f))(lo, hi);
                 }});
  }

 private:
  /// Non-owning callable reference (function_ref): valid only while the
  /// referenced callable outlives the blocking run() that uses it.
  struct FnRef {
    void* obj = nullptr;
    void (*call)(void*, std::size_t, std::size_t) = nullptr;
    void operator()(std::size_t lo, std::size_t hi) const { call(obj, lo, hi); }
  };

  struct Job {
    FnRef fn;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::size_t participants = 0;  ///< worker ids 1..participants join in
  };

  void run(std::size_t n, FnRef fn);
  /// Claims chunks from next_chunk_ until the job is drained.
  void drain(const Job& job);
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mtx_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

/// Process-wide pool shared by all Threads-backend contexts.
ThreadPool& global_pool();

}  // namespace coe::core
