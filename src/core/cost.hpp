#pragma once
// Operation counting and time prediction. Kernels annotate their work with a
// Workload (per-iteration flops/bytes); a CostModel turns accumulated counts
// into predicted seconds on a MachineModel.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coe::hsim {

/// Per-iteration work annotation for a kernel. Totals are obtained by
/// multiplying by the iteration count at launch time.
struct Workload {
  double flops_per_iter = 0.0;
  double bytes_per_iter = 0.0;
};

/// Total work of one kernel launch.
struct KernelCost {
  double flops = 0.0;
  double bytes = 0.0;

  KernelCost& operator+=(const KernelCost& o) {
    flops += o.flops;
    bytes += o.bytes;
    return *this;
  }
};

inline KernelCost total(const Workload& w, std::size_t iters) {
  const auto n = static_cast<double>(iters);
  return {w.flops_per_iter * n, w.bytes_per_iter * n};
}

/// Running totals of everything an execution context did. These are the
/// quantities our NVProf-substitute reports (cf. Figure 6, which plots
/// global load/store counts next to time).
struct Counters {
  double flops = 0.0;
  double bytes = 0.0;
  std::uint64_t launches = 0;
  double h2d_bytes = 0.0;
  double d2h_bytes = 0.0;
  std::uint64_t transfers = 0;

  void reset() { *this = Counters{}; }

  Counters& operator+=(const Counters& o) {
    flops += o.flops;
    bytes += o.bytes;
    launches += o.launches;
    h2d_bytes += o.h2d_bytes;
    d2h_bytes += o.d2h_bytes;
    transfers += o.transfers;
    return *this;
  }
};

/// Converts counts into predicted seconds on one machine.
class CostModel {
 public:
  explicit CostModel(MachineModel m) : machine_(std::move(m)) {}

  const MachineModel& machine() const { return machine_; }

  /// Roofline kernel time: launch overhead + max(compute, memory) time.
  double kernel_time(const KernelCost& c) const {
    const double t_flop = c.flops / machine_.flops();
    const double t_mem = c.bytes / machine_.bandwidth();
    return machine_.launch_overhead + (t_flop > t_mem ? t_flop : t_mem);
  }

  /// Host<->device transfer over the machine's link.
  double transfer_time(double bytes) const {
    return machine_.link_latency + bytes / machine_.link_bw;
  }

  /// Predicted time for a full counter set (kernels + transfers).
  ///
  /// CAUTION — this is a *lower bound*, not the authoritative accounting.
  /// It applies the roofline max over the run's AGGREGATE flop/byte
  /// totals, while the simulated clock (ExecContext::sim_time_, shadow
  /// pricing, reprice()) takes the max per launch:
  ///     max(sum f_i, sum b_i) <= sum max(f_i, b_i).
  /// The two agree exactly when every launch sits on the same side of the
  /// machine's ridge point; any run mixing compute- and memory-bound
  /// kernels makes this strictly optimistic. Per-launch pricing is
  /// authoritative — prefer a shadow machine or reprice() over a trace
  /// when per-launch information is available, and treat this as a quick
  /// aggregate estimate (e.g. for counter sets whose launch structure was
  /// never recorded).
  double predict(const Counters& c) const {
    const double t_flop = c.flops / machine_.flops();
    const double t_mem = c.bytes / machine_.bandwidth();
    const double t_kernels = (t_flop > t_mem ? t_flop : t_mem) +
                             static_cast<double>(c.launches) *
                                 machine_.launch_overhead;
    const double t_xfer =
        static_cast<double>(c.transfers) * machine_.link_latency +
        (c.h2d_bytes + c.d2h_bytes) / machine_.link_bw;
    return t_kernels + t_xfer;
  }

 private:
  MachineModel machine_;
};

/// Re-prices a recorded kernel/transfer trace on `m`, per event — the
/// authoritative per-launch form that CostModel::predict can only lower
/// bound. Restricting to one timeline phase (empty = all) gives the
/// cross-machine per-phase breakdowns of Figures 2/8 without shadowing.
/// The phase filter is hierarchical: "solve" also matches events tagged
/// "solve/cg/spmv" by nested prof::Scope spans.
double reprice(const obs::TraceBuffer& trace, const CostModel& m,
               std::string_view phase = {});

/// Re-prices a trace on `m` honoring stream overlap: events replay in
/// issue order through the same scheduling the streamed ExecContext clock
/// uses — per-stream in-order execution, kernels limited to the machine's
/// `concurrent_kernels` slots, one DMA engine per transfer direction —
/// with durations recomputed on the target machine. Returns the makespan.
/// The host-side ordering edges (record_event/wait_event/sync) are carried
/// in the trace as zero-duration markers and replayed at the repriced
/// times, so on the machine the trace was recorded on this agrees exactly
/// with ExecContext::simulated_time().
double reprice_streamed(const obs::TraceBuffer& trace, const CostModel& m);

/// Publishes a counter set into a metrics registry under dotted names
/// ("<prefix>.flops", ".bytes", ".launches", ".transfers", ".h2d_bytes",
/// ".d2h_bytes"). Deltas accumulate, so several contexts may publish under
/// one prefix.
void publish(obs::MetricsRegistry& m, const std::string& prefix,
             const Counters& c);

/// Named phase accumulator with both simulated and (optionally) measured
/// time, used to print the per-phase breakdowns of Figures 2 and 8.
class Timeline {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    Counters counters;
  };

  /// Adds `seconds` (and counts) to the named phase, creating it on first use.
  void add(const std::string& name, double seconds,
           const Counters& c = Counters{});

  const std::vector<Phase>& phases() const { return phases_; }
  double total() const;
  /// Formats a fixed-width breakdown table.
  std::string report(const std::string& title) const;
  void clear() { phases_.clear(); }

 private:
  std::vector<Phase> phases_;
};

}  // namespace coe::hsim
