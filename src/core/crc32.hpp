#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven and
// header-only. coe::resil uses it to fingerprint checkpoint generations so
// a restore can refuse a corrupt blob; it is deliberately the real
// algorithm (not a stand-in hash) so stored checksums are stable across
// platforms and match external crc32 tools byte for byte.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace coe::core {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC of `len` raw bytes. Pass a previous result as `seed` to checksum a
/// buffer in chunks (crc32(b, n) == crc32(b+k, n-k, crc32(b, k))).
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

/// CRC over a double array's bit patterns (the checkpoint-blob case).
inline std::uint32_t crc32(std::span<const double> v,
                           std::uint32_t seed = 0) {
  return crc32(v.data(), v.size() * sizeof(double), seed);
}

}  // namespace coe::core
