#pragma once
// Lightweight non-owning multi-dimensional accessors (row-major), the
// RAJA::View analog used throughout the mini-apps.

#include <cassert>
#include <cstddef>
#include <span>

namespace coe::core {

template <typename T>
class View2D {
 public:
  View2D() = default;
  View2D(T* data, std::size_t ni, std::size_t nj)
      : data_(data), ni_(ni), nj_(nj) {}
  View2D(std::span<T> data, std::size_t ni, std::size_t nj)
      : View2D(data.data(), ni, nj) {
    assert(data.size() >= ni * nj);
  }

  T& operator()(std::size_t i, std::size_t j) const {
    assert(i < ni_ && j < nj_);
    return data_[i * nj_ + j];
  }

  std::size_t extent0() const { return ni_; }
  std::size_t extent1() const { return nj_; }
  std::size_t size() const { return ni_ * nj_; }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t ni_ = 0, nj_ = 0;
};

template <typename T>
class View3D {
 public:
  View3D() = default;
  View3D(T* data, std::size_t ni, std::size_t nj, std::size_t nk)
      : data_(data), ni_(ni), nj_(nj), nk_(nk) {}
  View3D(std::span<T> data, std::size_t ni, std::size_t nj, std::size_t nk)
      : View3D(data.data(), ni, nj, nk) {
    assert(data.size() >= ni * nj * nk);
  }

  T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    assert(i < ni_ && j < nj_ && k < nk_);
    return data_[(i * nj_ + j) * nk_ + k];
  }

  std::size_t extent0() const { return ni_; }
  std::size_t extent1() const { return nj_; }
  std::size_t extent2() const { return nk_; }
  std::size_t size() const { return ni_ * nj_ * nk_; }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t ni_ = 0, nj_ = 0, nk_ = 0;
};

}  // namespace coe::core
