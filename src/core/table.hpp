#pragma once
// Fixed-width table printer so every bench binary emits the paper's tables
// in a uniform, diffable format.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace coe::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Formats a double with `prec` significant-ish digits, trimming noise.
  static std::string num(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  static std::string sci(double v, int prec = 3) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(prec) << v;
    return os.str();
  }

  std::string str() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        if (r[c].size() > width[c]) width[c] = r[c].size();
      }
    }
    std::ostringstream os;
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << "| " << std::left << std::setw(static_cast<int>(width[c]))
           << (c < cells.size() ? cells[c] : "") << " ";
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << "|" << std::string(width[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& r : rows_) line(r);
    return os.str();
  }

  void print(std::ostream& os = std::cout) const { os << str(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace coe::core
