#include "core/machine.hpp"

#include <cmath>

namespace coe::hsim {

namespace machines {

MachineModel power8() {
  MachineModel m;
  m.name = "POWER8 (2 sockets)";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 560e9;  // 2 x 10 cores x 3.5 GHz x 8 DP flop/cycle
  m.mem_bw = 230e9;      // Centaur buffered DRAM
  m.flop_efficiency = 0.60;
  m.bw_efficiency = 0.65;
  m.mem_capacity = 256ull << 30;
  return m;
}

MachineModel power9() {
  MachineModel m;
  m.name = "POWER9 (2 sockets)";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 1.01e12;  // 2 x 22 cores x 2.87 GHz x 8 DP flop/cycle
  m.mem_bw = 340e9;
  m.flop_efficiency = 0.60;
  m.bw_efficiency = 0.65;
  m.mem_capacity = 256ull << 30;
  return m;
}

MachineModel power9_socket() {
  MachineModel m = power9();
  m.name = "POWER9 (1 socket)";
  m.peak_flops /= 2;
  m.mem_bw /= 2;
  m.mem_capacity /= 2;
  return m;
}

MachineModel power8_thread() {
  MachineModel m = power8();
  m.name = "POWER8 (1 thread)";
  m.peak_flops = 28e9;   // 3.5 GHz x 8 DP flop/cycle
  m.mem_bw = 35e9;       // one thread + prefetch pulls a large share
  m.flop_efficiency = 0.85;
  m.bw_efficiency = 0.8;
  return m;
}

MachineModel power9_thread() {
  MachineModel m = power9();
  m.name = "POWER9 (1 thread)";
  m.peak_flops = 23e9;   // 2.87 GHz x 8 DP flop/cycle
  m.mem_bw = 45e9;       // one thread + prefetch pulls a large share
  m.flop_efficiency = 0.85;
  m.bw_efficiency = 0.8;
  return m;
}

MachineModel p100() {
  MachineModel m;
  m.name = "P100 (Pascal)";
  m.kind = ProcessorKind::Gpu;
  m.peak_flops = 5.3e12;
  m.mem_bw = 732e9;
  m.flop_efficiency = 0.55;
  m.bw_efficiency = 0.75;
  m.launch_overhead = 8e-6;
  m.concurrent_kernels = 4;
  m.mem_capacity = 16ull << 30;
  m.link_bw = 40e9;  // NVLink1 x2 bricks per GPU on Minsky
  m.link_latency = 8e-6;
  return m;
}

MachineModel v100() {
  MachineModel m;
  m.name = "V100 (Volta)";
  m.kind = ProcessorKind::Gpu;
  m.peak_flops = 7.8e12;
  m.mem_bw = 900e9;
  m.flop_efficiency = 0.60;  // improved caching vs Pascal (Section 4.7)
  m.bw_efficiency = 0.80;
  m.launch_overhead = 6e-6;
  m.concurrent_kernels = 8;  // Volta HW queues; plenty for our stream counts
  m.mem_capacity = 16ull << 30;
  m.link_bw = 75e9;  // NVLink2 x3 bricks per GPU on Witherspoon
  m.link_latency = 6e-6;
  return m;
}

MachineModel k40() {
  MachineModel m;
  m.name = "K40 (Kepler)";
  m.kind = ProcessorKind::Gpu;
  m.peak_flops = 1.43e12;
  m.mem_bw = 288e9;
  m.flop_efficiency = 0.45;
  m.bw_efficiency = 0.65;
  m.launch_overhead = 12e-6;
  m.concurrent_kernels = 2;
  m.mem_capacity = 12ull << 30;
  m.link_bw = 12e9;  // PCIe gen3 x16
  m.link_latency = 15e-6;
  return m;
}

MachineModel knl_node() {
  MachineModel m;
  m.name = "KNL node (Cori-II)";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 2.6e12;  // 68 cores, AVX-512
  m.mem_bw = 400e9;       // MCDRAM flat mode
  m.flop_efficiency = 0.25;  // hard-to-vectorize stencil reality
  m.bw_efficiency = 0.60;
  m.mem_capacity = 96ull << 30;
  return m;
}

MachineModel bgq_node() {
  MachineModel m;
  m.name = "BG/Q node";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 204.8e9;
  m.mem_bw = 42.7e9;
  m.flop_efficiency = 0.55;
  m.bw_efficiency = 0.70;
  m.mem_capacity = 16ull << 30;
  return m;
}

MachineModel cpu_2011() {
  MachineModel m;
  m.name = "2011 dual-socket node";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 150e9;
  m.mem_bw = 50e9;
  m.flop_efficiency = 0.55;
  m.bw_efficiency = 0.60;
  m.mem_capacity = 64ull << 30;
  return m;
}

MachineModel cpu_2014() {
  MachineModel m;
  m.name = "2014 dual-socket node";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 450e9;
  m.mem_bw = 100e9;
  m.flop_efficiency = 0.55;
  m.bw_efficiency = 0.60;
  m.mem_capacity = 128ull << 30;
  return m;
}

MachineModel host() {
  MachineModel m;
  m.name = "build host";
  m.kind = ProcessorKind::Cpu;
  m.peak_flops = 50e9;
  m.mem_bw = 20e9;
  m.flop_efficiency = 0.5;
  m.bw_efficiency = 0.5;
  return m;
}

}  // namespace machines

double ClusterModel::p2p(std::size_t bytes) const {
  return alpha + beta * static_cast<double>(bytes);
}

double ClusterModel::allreduce(std::size_t bytes, int ranks) const {
  if (ranks <= 1) return 0.0;
  // Rabenseifner: reduce-scatter + allgather, 2*(p-1)/p of the data each,
  // plus 2*log2(p) latency terms.
  const double p = static_cast<double>(ranks);
  const double data = 2.0 * (p - 1.0) / p * static_cast<double>(bytes);
  return 2.0 * std::log2(p) * alpha + beta * data;
}

double ClusterModel::alltoall(std::size_t bytes_per_pair, int ranks) const {
  if (ranks <= 1) return 0.0;
  const double p = static_cast<double>(ranks);
  // Pairwise exchange: p-1 rounds, each moving bytes_per_pair both ways.
  return (p - 1.0) * (alpha + beta * static_cast<double>(bytes_per_pair));
}

double ClusterModel::gather(std::size_t bytes_per_rank, int ranks) const {
  if (ranks <= 1) return 0.0;
  const double p = static_cast<double>(ranks);
  // Binomial-tree gather: log2(p) rounds, root link carries all of it.
  return std::log2(p) * alpha +
         beta * static_cast<double>(bytes_per_rank) * (p - 1.0);
}

namespace clusters {

ClusterModel sierra(int nodes) {
  // Dual-rail EDR: ~23 GB/s injection per node, non-blocking fat tree.
  return ClusterModel{"Sierra EDR fat-tree", nodes, 1.3e-6, 1.0 / 23e9,
                      23e9, 1.0};
}

ClusterModel cori(int nodes) {
  // Aries dragonfly: full injection but a tapered global bisection.
  return ClusterModel{"Cori Aries dragonfly", nodes, 1.5e-6, 1.0 / 10e9,
                      10e9, 0.5};
}

ClusterModel ethernet(int nodes) {
  // Commodity 10GbE through an oversubscribed switch hierarchy.
  return ClusterModel{"10GbE", nodes, 30e-6, 1.0 / 1.1e9, 1.1e9, 0.25};
}

}  // namespace clusters

}  // namespace coe::hsim
