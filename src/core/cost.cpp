#include "core/cost.hpp"

#include <iomanip>
#include <sstream>

namespace coe::hsim {

void Timeline::add(const std::string& name, double seconds,
                   const Counters& c) {
  for (auto& p : phases_) {
    if (p.name == name) {
      p.seconds += seconds;
      p.counters += c;
      return;
    }
  }
  phases_.push_back(Phase{name, seconds, c});
}

double Timeline::total() const {
  double t = 0.0;
  for (const auto& p : phases_) t += p.seconds;
  return t;
}

std::string Timeline::report(const std::string& title) const {
  std::ostringstream os;
  os << title << "\n";
  os << std::left << std::setw(28) << "  phase" << std::right << std::setw(14)
     << "time (s)" << std::setw(10) << "share" << std::setw(14) << "GFLOP"
     << std::setw(14) << "GB moved" << "\n";
  const double tot = total();
  for (const auto& p : phases_) {
    os << std::left << std::setw(28) << ("  " + p.name) << std::right
       << std::setw(14) << std::scientific << std::setprecision(3) << p.seconds
       << std::setw(9) << std::fixed << std::setprecision(1)
       << (tot > 0 ? 100.0 * p.seconds / tot : 0.0) << "%" << std::setw(14)
       << std::setprecision(3) << p.counters.flops / 1e9 << std::setw(14)
       << p.counters.bytes / 1e9 << "\n";
  }
  os << std::left << std::setw(28) << "  total" << std::right << std::setw(14)
     << std::scientific << std::setprecision(3) << tot << "\n";
  return os.str();
}

}  // namespace coe::hsim
