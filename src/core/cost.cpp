#include "core/cost.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace coe::hsim {

void Timeline::add(const std::string& name, double seconds,
                   const Counters& c) {
  for (auto& p : phases_) {
    if (p.name == name) {
      p.seconds += seconds;
      p.counters += c;
      return;
    }
  }
  phases_.push_back(Phase{name, seconds, c});
}

double Timeline::total() const {
  double t = 0.0;
  for (const auto& p : phases_) t += p.seconds;
  return t;
}

std::string Timeline::report(const std::string& title) const {
  std::ostringstream os;
  os << title << "\n";
  os << std::left << std::setw(28) << "  phase" << std::right << std::setw(14)
     << "time (s)" << std::setw(10) << "share" << std::setw(14) << "GFLOP"
     << std::setw(14) << "GB moved" << std::setw(8) << "xfers" << std::setw(14)
     << "GB xfer" << "\n";
  const double tot = total();
  for (const auto& p : phases_) {
    os << std::left << std::setw(28) << ("  " + p.name) << std::right
       << std::setw(14) << std::scientific << std::setprecision(3) << p.seconds
       << std::setw(9) << std::fixed << std::setprecision(1)
       << (tot > 0 ? 100.0 * p.seconds / tot : 0.0) << "%" << std::setw(14)
       << std::setprecision(3) << p.counters.flops / 1e9 << std::setw(14)
       << p.counters.bytes / 1e9 << std::setw(8) << p.counters.transfers
       << std::setw(14)
       << (p.counters.h2d_bytes + p.counters.d2h_bytes) / 1e9 << "\n";
  }
  os << std::left << std::setw(28) << "  total" << std::right << std::setw(14)
     << std::scientific << std::setprecision(3) << tot << "\n";
  return os.str();
}

namespace {

/// Phase filter used by reprice: exact match, or a hierarchical child
/// ("solve" matches "solve/cg/spmv" but not "solve2"). Spans (prof::Scope)
/// tag events with "/"-joined paths; callers aggregating by a coarse phase
/// name keep working unchanged.
bool phase_matches(std::string_view event_phase, std::string_view phase) {
  if (event_phase == phase) return true;
  return event_phase.size() > phase.size() &&
         event_phase.compare(0, phase.size(), phase) == 0 &&
         event_phase[phase.size()] == '/';
}

}  // namespace

double reprice(const obs::TraceBuffer& trace, const CostModel& m,
               std::string_view phase) {
  double t = 0.0;
  for (const auto& e : trace.snapshot()) {
    if (obs::is_marker(e.kind)) continue;
    if (!phase.empty() && !phase_matches(e.phase, phase)) continue;
    if (e.kind == obs::TraceEvent::Kind::Kernel) {
      t += m.kernel_time({e.flops, e.bytes});
    } else {
      t += m.transfer_time(e.bytes);
    }
  }
  return t;
}

double reprice_streamed(const obs::TraceBuffer& trace, const CostModel& m) {
  std::vector<double> stream_ready;
  std::vector<double> kernel_slots(
      static_cast<std::size_t>(std::max(1, m.machine().concurrent_kernels)),
      0.0);
  double copy_ready[2] = {0.0, 0.0};
  double makespan = 0.0;
  double floor = 0.0;
  // Stream-event completion times, rebuilt on the replay clock from the
  // record markers so wait edges bind at the repriced times, not the
  // recorded ones.
  std::map<std::int64_t, double> recorded;
  for (const auto& e : trace.snapshot()) {
    const auto s = static_cast<std::size_t>(e.stream < 0 ? 0 : e.stream);
    if (s >= stream_ready.size()) stream_ready.resize(s + 1, floor);
    if (obs::is_marker(e.kind)) {
      switch (e.kind) {
        case obs::TraceEvent::Kind::EventRecord:
          recorded[e.dep] = stream_ready[s];
          break;
        case obs::TraceEvent::Kind::EventWait: {
          const auto it = recorded.find(e.dep);
          if (it != recorded.end() && it->second > stream_ready[s]) {
            stream_ready[s] = it->second;
          }
          break;
        }
        default:  // Sync: join every stream at the replay makespan.
          floor = makespan;
          for (auto& r : stream_ready) r = makespan;
          break;
      }
      continue;
    }
    double start = stream_ready[s];
    double end = 0.0;
    if (e.kind == obs::TraceEvent::Kind::Kernel) {
      auto slot = std::min_element(kernel_slots.begin(), kernel_slots.end());
      if (*slot > start) start = *slot;
      end = start + m.kernel_time({e.flops, e.bytes});
      *slot = end;
    } else {
      double& engine =
          copy_ready[e.kind == obs::TraceEvent::Kind::TransferH2D ? 0 : 1];
      if (engine > start) start = engine;
      end = start + m.transfer_time(e.bytes);
      engine = end;
    }
    stream_ready[s] = end;
    if (end > makespan) makespan = end;
  }
  return makespan;
}

void publish(obs::MetricsRegistry& m, const std::string& prefix,
             const Counters& c) {
  m.add(prefix + ".flops", c.flops);
  m.add(prefix + ".bytes", c.bytes);
  m.add(prefix + ".launches", static_cast<double>(c.launches));
  m.add(prefix + ".transfers", static_cast<double>(c.transfers));
  m.add(prefix + ".h2d_bytes", c.h2d_bytes);
  m.add(prefix + ".d2h_bytes", c.d2h_bytes);
}

}  // namespace coe::hsim
