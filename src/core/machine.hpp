#pragma once
// coe::hsim -- analytic machine models for the heterogeneous systems the
// iCoE paper measured on (POWER8/9 hosts, P100/V100 GPUs, NVLink, Cori-II
// KNL nodes, and multi-node clusters).
//
// None of that hardware is available in this reproduction, so every kernel
// in the workload runs for real on the host and is annotated with its
// operation counts; these models convert counts into predicted times via a
// calibrated roofline (see DESIGN.md section 2).

#include <cstddef>
#include <cstdint>
#include <string>

namespace coe::hsim {

/// Kind of processor a model describes. Affects defaults such as kernel
/// launch overhead (zero for host processors).
enum class ProcessorKind { Cpu, Gpu };

/// Roofline-style description of one processor (a CPU socket pair or a
/// single GPU) plus the link that connects it to host memory.
struct MachineModel {
  std::string name;
  ProcessorKind kind = ProcessorKind::Cpu;

  double peak_flops = 1e12;     ///< double-precision FLOP/s, theoretical peak
  double mem_bw = 1e11;         ///< sustained memory bandwidth, B/s
  double flop_efficiency = 0.8; ///< achievable fraction of peak_flops
  double bw_efficiency = 0.8;   ///< achievable fraction of mem_bw

  double launch_overhead = 0.0; ///< s per kernel launch (GPU only)
  double mem_capacity = 1ull << 37; ///< bytes of directly attached memory

  /// Kernels from different streams that can execute concurrently (the
  /// CUDA concurrent-kernel limit; hardware queues on real GPUs). 1 means
  /// kernels serialize even across streams; transfers always overlap
  /// kernels because the DMA copy engines are separate resources.
  int concurrent_kernels = 1;

  // Host link (PCIe / NVLink). For CPUs this is a no-op link.
  double link_bw = 1e10;       ///< B/s host<->device
  double link_latency = 1e-5;  ///< s per transfer

  // Sustained effective rates.
  double flops() const { return peak_flops * flop_efficiency; }
  double bandwidth() const { return mem_bw * bw_efficiency; }

  /// Arithmetic-intensity ridge point (FLOP per byte) of the roofline.
  double ridge() const { return flops() / bandwidth(); }
};

/// Catalog of the machines named in the paper. Peak numbers follow public
/// spec sheets; efficiencies are calibrated so textbook kernels (STREAM
/// triad, DGEMM, 7-point stencil) land at commonly reported fractions.
namespace machines {
MachineModel power8();        ///< 2x POWER8 socket pair (EA "Minsky" host)
MachineModel power9();        ///< 2x POWER9 socket pair (Sierra host)
MachineModel power9_socket(); ///< single P9 socket (Table 5 "P9" column)
MachineModel power8_thread(); ///< one P8 core/thread (Fig. 8 CPU baseline)
MachineModel power9_thread(); ///< one P9 core/thread (Table 4 CPU baseline)
MachineModel p100();          ///< Pascal P100, NVLink1 host link
MachineModel v100();          ///< Volta V100, NVLink2 host link
MachineModel k40();           ///< early visualization-cluster GPU
MachineModel knl_node();      ///< Cori-II Xeon Phi 7250 node
MachineModel bgq_node();      ///< Blue Gene/Q node (historical graph rows)
MachineModel cpu_2011();      ///< ~2011 dual-socket node (Table 2 history)
MachineModel cpu_2014();      ///< ~2014 dual-socket node (Table 2 history)
MachineModel host();          ///< the real host this build runs on
}  // namespace machines

/// Latency/bandwidth (alpha-beta) model of a cluster interconnect with
/// tree-based collectives, used for the multi-node experiments (Table 2,
/// Figure 3, SW4-vs-Cori throughput).
struct ClusterModel {
  std::string name;
  int nodes = 1;
  double alpha = 1e-6;   ///< per-message latency, s
  double beta = 1e-10;   ///< per-byte time, s (inverse link bandwidth)

  /// Per-node NIC injection bandwidth, B/s. A node can only push (and pull)
  /// this fast regardless of how many messages it has in flight — the
  /// per-link occupancy resource net::reprice serializes on. 0 means
  /// "derive from beta" (1/beta), keeping the two views consistent.
  double injection_bw = 0.0;
  /// Fraction of full bisection bandwidth the fabric sustains (1.0 = full
  /// fat tree, <1 = tapered dragonfly/torus). net::reprice uses it as a
  /// global lower bound on any traffic pattern that crosses the machine.
  double bisection_factor = 1.0;

  /// Effective injection bandwidth (injection_bw, or 1/beta when unset).
  double effective_injection_bw() const {
    return injection_bw > 0.0 ? injection_bw : 1.0 / beta;
  }

  /// Time for a point-to-point message of `bytes`.
  double p2p(std::size_t bytes) const;
  /// Allreduce over `ranks` participants, Rabenseifner-style cost.
  double allreduce(std::size_t bytes, int ranks) const;
  /// All-to-all personalized exchange, `bytes` per pair.
  double alltoall(std::size_t bytes_per_pair, int ranks) const;
  /// Gather-to-one (the "aggregate" primitive in the Spark activity).
  double gather(std::size_t bytes_per_rank, int ranks) const;
};

namespace clusters {
ClusterModel sierra(int nodes);   ///< dual-rail EDR InfiniBand fat tree
ClusterModel cori(int nodes);     ///< Aries dragonfly
ClusterModel ethernet(int nodes); ///< commodity 10GbE (2011-era history)
}  // namespace clusters

}  // namespace coe::hsim
