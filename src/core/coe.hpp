#pragma once
// Umbrella header for the minicoe core: portability layer, machine models,
// buffers, memory pools, and reporting utilities.

#include "core/buffer.hpp"
#include "core/cost.hpp"
#include "core/exec.hpp"
#include "core/machine.hpp"
#include "core/pool.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/threadpool.hpp"
#include "core/view.hpp"
