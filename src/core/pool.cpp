#include "core/pool.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace coe::core {

MemoryPool::~MemoryPool() = default;

std::size_t MemoryPool::size_class(std::size_t bytes) {
  if (bytes < 8) bytes = 8;
  const std::size_t k = std::bit_width(bytes - 1);  // smallest k: 2^k >= bytes
  // free_ has kNumClasses lists and the rounded size is 2^k; a request
  // above 2^63 would index out of bounds and shift by >= 64 (UB). No
  // machine in the catalog has that much memory, so reject loudly instead
  // of corrupting the pool.
  if (k >= kNumClasses) {
    throw std::length_error(
        "MemoryPool: request of " + std::to_string(bytes) +
        " bytes exceeds the largest size class (2^" +
        std::to_string(kNumClasses - 1) + " bytes)");
  }
  return k;
}

void* MemoryPool::allocate(std::size_t bytes) {
  const std::size_t k = size_class(bytes);
  const std::size_t rounded = std::size_t{1} << k;
  ++stats_.request_count;
  stats_.bytes_requested += bytes;
  stats_.current_bytes += rounded;
  if (stats_.current_bytes > stats_.highwater_bytes) {
    stats_.highwater_bytes = stats_.current_bytes;
  }
  auto& list = free_[k];
  void* p = nullptr;
  if (!list.empty()) {
    ++stats_.reuse_count;
    auto block = std::move(list.back());
    list.pop_back();
    p = block.release();
  } else {
    ++stats_.backing_allocs;
    stats_.bytes_backed += rounded;
    p = new std::byte[rounded];
  }
  live_.emplace(p, k);
  return p;
}

void MemoryPool::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t k = size_class(bytes);
  // Debug checks catch the two frees that silently corrupt the statistics
  // (and the free lists) otherwise: returning a block twice, and returning
  // it under a different size than it was allocated with.
  const auto it = live_.find(p);
  if (debug_checks_) {
    if (it == live_.end()) {
      throw std::logic_error(
          "MemoryPool::deallocate: block is not live in this pool "
          "(double free, or never allocated here)");
    }
    if (it->second != k) {
      throw std::logic_error(
          "MemoryPool::deallocate: size-mismatched free (allocated as class "
          "2^" + std::to_string(it->second) + ", freed as class 2^" +
          std::to_string(k) + ")");
    }
  }
  if (it != live_.end()) live_.erase(it);
  // Saturating subtraction: a mismatched free in release must not wrap
  // current_bytes to ~2^64 and poison highwater/reuse reporting forever.
  const std::size_t rounded = std::size_t{1} << k;
  stats_.current_bytes -= std::min(rounded, stats_.current_bytes);
  free_[k].emplace_back(static_cast<std::byte*>(p));
}

void MemoryPool::release() {
  for (auto& list : free_) list.clear();
}

}  // namespace coe::core
