#include "core/pool.hpp"

#include <bit>

namespace coe::core {

MemoryPool::~MemoryPool() = default;

std::size_t MemoryPool::size_class(std::size_t bytes) {
  if (bytes < 8) bytes = 8;
  return std::bit_width(bytes - 1);  // smallest k with 2^k >= bytes
}

void* MemoryPool::allocate(std::size_t bytes) {
  const std::size_t k = size_class(bytes);
  const std::size_t rounded = std::size_t{1} << k;
  ++stats_.request_count;
  stats_.bytes_requested += bytes;
  stats_.current_bytes += rounded;
  if (stats_.current_bytes > stats_.highwater_bytes) {
    stats_.highwater_bytes = stats_.current_bytes;
  }
  auto& list = free_[k];
  if (!list.empty()) {
    ++stats_.reuse_count;
    auto block = std::move(list.back());
    list.pop_back();
    return block.release();
  }
  ++stats_.backing_allocs;
  stats_.bytes_backed += rounded;
  return new std::byte[rounded];
}

void MemoryPool::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t k = size_class(bytes);
  stats_.current_bytes -= std::size_t{1} << k;
  free_[k].emplace_back(static_cast<std::byte*>(p));
}

void MemoryPool::release() {
  for (auto& list : free_) list.clear();
}

}  // namespace coe::core
