#include "net/halo.hpp"

#include <stdexcept>

namespace coe::net {

int HaloPlan::add_neighbor(int peer, int send_tag, int recv_tag) {
  Neighbor nb;
  nb.peer = peer;
  nb.send_tag = send_tag;
  nb.recv_tag = recv_tag;
  neighbors_.push_back(std::move(nb));
  return static_cast<int>(neighbors_.size()) - 1;
}

void HaloPlan::add_send(int neighbor, std::size_t offset, std::size_t count) {
  auto& nb = neighbors_.at(static_cast<std::size_t>(neighbor));
  nb.sends.push_back({offset, count});
  nb.send_count += count;
  nb.send_map.clear();
}

void HaloPlan::add_recv(int neighbor, std::size_t offset, std::size_t count) {
  auto& nb = neighbors_.at(static_cast<std::size_t>(neighbor));
  nb.recvs.push_back({offset, count});
  nb.recv_count += count;
  nb.recv_map.clear();
}

void HaloPlan::build_map(const std::vector<Face>& faces,
                         std::vector<std::size_t>& map) {
  map.clear();
  std::size_t total = 0;
  for (const auto& f : faces) total += f.count;
  map.reserve(total);
  for (const auto& f : faces) {
    for (std::size_t i = 0; i < f.count; ++i) map.push_back(f.offset + i);
  }
}

std::size_t HaloPlan::send_doubles() const {
  std::size_t total = 0;
  for (const auto& nb : neighbors_) total += nb.send_count;
  return total;
}

void HaloPlan::pack(Neighbor& nb, std::span<const double> field,
                    std::vector<double>& buf) {
  buf.resize(nb.send_count);
  if (ctx_ == nullptr) {
    std::size_t o = 0;
    for (const auto& f : nb.sends) {
      for (std::size_t i = 0; i < f.count; ++i) buf[o++] = field[f.offset + i];
    }
    return;
  }
  if (nb.sends.size() == 1) {
    const Face f = nb.sends[0];
    ctx_->forall(f.count, {0, 16},
                 [&](std::size_t i) { buf[i] = field[f.offset + i]; });
  } else if (nb.sends.size() == 2 && nb.sends[0].count == nb.sends[1].count) {
    // The common two-faces-per-neighbor case: both copies fused into one
    // launch — the pack is a single kernel, like the send is one message.
    const Face a = nb.sends[0];
    const Face b = nb.sends[1];
    const std::size_t c = a.count;
    ctx_->fused(c)
        .then({0, 16}, [&](std::size_t i) { buf[i] = field[a.offset + i]; })
        .then({0, 16},
              [&](std::size_t i) { buf[c + i] = field[b.offset + i]; })
        .launch();
  } else {
    // General case: one gather through a flattened index map (the map read
    // is priced as the third stream).
    if (nb.send_map.size() != nb.send_count) build_map(nb.sends, nb.send_map);
    ctx_->forall(nb.send_count, {0, 24},
                 [&](std::size_t i) { buf[i] = field[nb.send_map[i]]; });
  }
}

void HaloPlan::unpack(Neighbor& nb, std::span<double> field,
                      const std::vector<double>& msg) {
  if (msg.size() != nb.recv_count) {
    throw std::runtime_error("HaloPlan: halo message size mismatch");
  }
  if (ctx_ == nullptr) {
    std::size_t o = 0;
    for (const auto& f : nb.recvs) {
      for (std::size_t i = 0; i < f.count; ++i) field[f.offset + i] = msg[o++];
    }
    return;
  }
  if (nb.recvs.size() == 1) {
    const Face f = nb.recvs[0];
    ctx_->forall(f.count, {0, 16},
                 [&](std::size_t i) { field[f.offset + i] = msg[i]; });
  } else if (nb.recvs.size() == 2 && nb.recvs[0].count == nb.recvs[1].count) {
    const Face a = nb.recvs[0];
    const Face b = nb.recvs[1];
    const std::size_t c = a.count;
    ctx_->fused(c)
        .then({0, 16}, [&](std::size_t i) { field[a.offset + i] = msg[i]; })
        .then({0, 16},
              [&](std::size_t i) { field[b.offset + i] = msg[c + i]; })
        .launch();
  } else {
    if (nb.recv_map.size() != nb.recv_count) build_map(nb.recvs, nb.recv_map);
    ctx_->forall(nb.recv_count, {0, 24},
                 [&](std::size_t i) { field[nb.recv_map[i]] = msg[i]; });
  }
}

void HaloPlan::begin(mpi::Communicator& comm, std::span<const double> field) {
  if (inflight_) {
    throw std::logic_error("HaloPlan::begin called with an exchange inflight");
  }
  inflight_ = true;
  // Post every receive before any send touches the wire.
  for (auto& nb : neighbors_) {
    nb.req = comm.irecv(nb.peer, nb.recv_tag);
  }
  prof::Scope s(prof_, ctx_, "halo/pack");
  std::vector<double> buf;
  for (auto& nb : neighbors_) {
    pack(nb, field, buf);
    const double bytes = 8.0 * static_cast<double>(buf.size());
    comm.isend(nb.peer, nb.send_tag, std::move(buf));
    logger_.send(nb.peer, nb.send_tag, bytes, false);
    stats_.messages += 1;
    stats_.bytes += bytes;
    buf = {};
  }
}

void HaloPlan::finish(mpi::Communicator& comm, std::span<double> field) {
  if (!inflight_) {
    throw std::logic_error("HaloPlan::finish called with no exchange inflight");
  }
  for (auto& nb : neighbors_) {
    std::vector<double> msg;
    {
      prof::Scope s(prof_, ctx_, "halo/wait");
      msg = comm.wait(nb.req);
      logger_.recv(nb.peer, nb.recv_tag,
                   8.0 * static_cast<double>(msg.size()));
    }
    prof::Scope s(prof_, ctx_, "halo/unpack");
    unpack(nb, field, msg);
  }
  inflight_ = false;
  stats_.exchanges += 1;
}

void HaloPlan::exchange(mpi::Communicator& comm, std::span<double> field) {
  begin(comm, field);
  finish(comm, field);
}

}  // namespace coe::net
