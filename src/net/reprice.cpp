#include "net/reprice.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <tuple>
#include <utility>

namespace coe::net {

Replay replay(const NetLog& log, const hsim::ClusterModel& net, int ranks) {
  Replay rep;
  rep.ranks = ranks;
  RepriceResult& res = rep.result;
  if (ranks <= 0) return rep;
  const auto snapshot = log.snapshot();
  rep.events.resize(snapshot.size());
  rep.rank_events.assign(static_cast<std::size_t>(ranks), {});

  // Per-rank program orders. Each rank thread pushes its own events in
  // order, so the per-rank subsequence of the shared log IS program order.
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const NetEvent& e = snapshot[i];
    rep.events[i].ev = e;
    if (e.rank < 0 || e.rank >= ranks) {
      res.well_formed = false;
      rep.diagnostics.push_back(
          "event " + std::to_string(i) + " has out-of-range rank " +
          std::to_string(e.rank) + " (world has " + std::to_string(ranks) +
          " ranks)");
      continue;
    }
    auto& order = rep.rank_events[static_cast<std::size_t>(e.rank)];
    rep.events[i].pos = order.size();
    order.push_back(i);
  }

  const double binj = net.effective_injection_bw();
  auto wire_time = [&](double bytes) {
    return binj > 0.0 ? bytes / binj : 0.0;
  };

  const std::size_t nr = rep.rank_events.size();
  std::vector<double> t(nr, 0.0);    // program clock
  std::vector<double> inj(nr, 0.0);  // NIC injection engine
  std::vector<double> ej(nr, 0.0);   // NIC ejection engine
  std::vector<double> comp(nr, 0.0);
  std::vector<std::size_t> pos(nr, 0);
  // In-flight messages: (arrival time, index of the Send in rep.events),
  // FIFO per (src, dst, tag) — the matching the mailbox substrate enforces.
  std::map<std::tuple<int, int, int>, std::deque<std::pair<double, std::size_t>>>
      arrivals;
  double coll_cost = 0.0;
  double cross_bytes = 0.0;
  const int half = ranks / 2;

  auto barrier_cost = [&]() {
    return ranks > 1 ? 2.0 * std::ceil(std::log2(ranks)) * net.alpha : 0.0;
  };

  while (true) {
    bool progress = false;
    for (std::size_t r = 0; r < nr; ++r) {
      while (pos[r] < rep.rank_events[r].size()) {
        const std::size_t ei = rep.rank_events[r][pos[r]];
        ReplayEvent& re = rep.events[ei];
        const NetEvent& e = re.ev;
        re.t_before = t[r];
        if (e.kind == NetEvent::Kind::Compute) {
          t[r] += e.seconds;
          comp[r] += e.seconds;
        } else if (e.kind == NetEvent::Kind::Send) {
          const double dur = wire_time(e.bytes);
          const double start = std::max(t[r], inj[r]);
          re.inj_before = inj[r];
          re.wire_start = start;
          re.wire_end = start + dur;
          re.arrival = start + net.alpha + dur;
          inj[r] = start + dur;
          arrivals[{static_cast<int>(r), e.peer, e.tag}].push_back(
              {start + net.alpha + dur, ei});
          if (e.blocking) {
            t[r] = inj[r];
          } else {
            t[r] += net.alpha;  // posting overhead only; the NIC drains it
          }
          res.messages += 1;
          res.bytes += e.bytes;
          if ((static_cast<int>(r) < half) != (e.peer < half)) {
            cross_bytes += e.bytes;
          }
        } else if (e.kind == NetEvent::Kind::Recv) {
          auto it = arrivals.find({e.peer, static_cast<int>(r), e.tag});
          if (it == arrivals.end() || it->second.empty()) break;  // blocked
          const auto [arrival, send_index] = it->second.front();
          it->second.pop_front();
          re.arrival = arrival;
          re.ej_before = ej[r];
          re.eject_start = std::max(arrival, ej[r]);
          re.match = static_cast<std::ptrdiff_t>(send_index);
          rep.events[send_index].match = static_cast<std::ptrdiff_t>(ei);
          const double done = re.eject_start + wire_time(e.bytes);
          re.done = done;
          ej[r] = done;
          // Logged at the wait point: if the rank computed past the
          // arrival meanwhile, the transfer cost vanishes — overlap.
          t[r] = std::max(t[r], done);
        } else {
          break;  // parked at a collective until everyone arrives
        }
        re.t_after = t[r];
        ++pos[r];
        progress = true;
      }
    }

    std::size_t exhausted = 0;
    std::size_t parked = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      if (pos[r] >= rep.rank_events[r].size()) {
        ++exhausted;
        continue;
      }
      const auto k = rep.events[rep.rank_events[r][pos[r]]].ev.kind;
      if (k == NetEvent::Kind::Allreduce || k == NetEvent::Kind::Barrier) {
        ++parked;
      }
    }
    if (exhausted == nr) break;  // replay complete

    if (parked == nr) {
      // Everyone is at a collective: synchronize and charge the analytic
      // cost. Mismatched kinds mean the program orders disagree.
      const auto kind = rep.events[rep.rank_events[0][pos[0]]].ev.kind;
      double bytes = 0.0;
      double entry = 0.0;
      const std::ptrdiff_t group =
          static_cast<std::ptrdiff_t>(rep.groups.size());
      rep.groups.emplace_back();
      for (std::size_t r = 0; r < nr; ++r) {
        const std::size_t ei = rep.rank_events[r][pos[r]];
        const NetEvent& e = rep.events[ei].ev;
        if (e.kind != kind) {
          res.well_formed = false;
          rep.diagnostics.push_back(
              "rank " + std::to_string(r) + " is parked at a " +
              (e.kind == NetEvent::Kind::Allreduce ? std::string("allreduce")
                                                   : std::string("barrier")) +
              " while rank 0 is at a different collective kind");
        }
        bytes = std::max(bytes, e.bytes);
        entry = std::max(entry, t[r]);
        rep.groups.back().push_back(ei);
      }
      const double cost =
          kind == NetEvent::Kind::Allreduce
              ? net.allreduce(static_cast<std::size_t>(bytes), ranks)
              : barrier_cost();
      coll_cost += cost;
      for (std::size_t r = 0; r < nr; ++r) {
        const std::size_t ei = rep.rank_events[r][pos[r]];
        ReplayEvent& re = rep.events[ei];
        re.t_before = t[r];
        re.entry = entry;
        re.cost = cost;
        re.group = group;
        t[r] = entry + cost;
        re.t_after = t[r];
        ++pos[r];
      }
      continue;
    }

    if (!progress) {
      // Blocked receives with no matching send, or some ranks finished
      // while others wait on a collective: a deadlocked trace.
      res.well_formed = false;
      for (std::size_t r = 0; r < nr; ++r) {
        if (pos[r] >= rep.rank_events[r].size()) continue;
        const NetEvent& e = rep.events[rep.rank_events[r][pos[r]]].ev;
        if (e.kind == NetEvent::Kind::Recv) {
          rep.diagnostics.push_back(
              "rank " + std::to_string(r) + " is blocked in recv(src=" +
              std::to_string(e.peer) + ", tag=" + std::to_string(e.tag) +
              ") with no matching send — truncated or malformed log");
        } else {
          rep.diagnostics.push_back(
              "rank " + std::to_string(r) +
              " is parked at a collective that not every rank reaches");
        }
      }
      break;
    }
  }

  // Sends nobody consumed: harmless to the legacy summary (the injection
  // engine still carried them) but a malformed merge — a receiver-side log
  // was truncated, or tags disagree.
  for (const auto& [key, q] : arrivals) {
    if (q.empty()) continue;
    rep.diagnostics.push_back(
        std::to_string(q.size()) + " unmatched send(s) rank " +
        std::to_string(std::get<0>(key)) + " -> rank " +
        std::to_string(std::get<1>(key)) + " tag " +
        std::to_string(std::get<2>(key)));
  }

  double makespan = 0.0;
  for (std::size_t r = 0; r < nr; ++r) {
    makespan = std::max({makespan, t[r], inj[r], ej[r]});
    res.compute_s = std::max(res.compute_s, comp[r]);
  }
  if (ranks >= 2 && binj > 0.0 && net.bisection_factor > 0.0) {
    res.bisection_floor_s =
        cross_bytes / (net.bisection_factor * binj * half);
  }
  rep.finish = std::move(t);
  rep.inj = std::move(inj);
  rep.ej = std::move(ej);
  rep.makespan_s = makespan;
  res.timeline_s = std::max(makespan, res.bisection_floor_s);
  res.comm_sequential_s = static_cast<double>(res.messages) * net.alpha +
                          net.beta * res.bytes + coll_cost;
  res.sequential_s = res.compute_s + res.comm_sequential_s;
  return rep;
}

RepriceResult reprice(const NetLog& log, const hsim::ClusterModel& net,
                      int ranks) {
  return replay(log, net, ranks).result;
}

}  // namespace coe::net
