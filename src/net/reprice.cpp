#include "net/reprice.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

namespace coe::net {

RepriceResult reprice(const NetLog& log, const hsim::ClusterModel& net,
                      int ranks) {
  RepriceResult res;
  if (ranks <= 0) return res;
  const auto events = log.snapshot();

  // Per-rank program orders. Each rank thread pushes its own events in
  // order, so the per-rank subsequence of the shared log IS program order.
  std::vector<std::vector<const NetEvent*>> ev(
      static_cast<std::size_t>(ranks));
  for (const auto& e : events) {
    if (e.rank < 0 || e.rank >= ranks) {
      res.well_formed = false;
      continue;
    }
    ev[static_cast<std::size_t>(e.rank)].push_back(&e);
  }

  const double binj = net.effective_injection_bw();
  auto wire_time = [&](double bytes) {
    return binj > 0.0 ? bytes / binj : 0.0;
  };

  std::vector<double> t(ev.size(), 0.0);    // program clock
  std::vector<double> inj(ev.size(), 0.0);  // NIC injection engine
  std::vector<double> ej(ev.size(), 0.0);   // NIC ejection engine
  std::vector<double> comp(ev.size(), 0.0);
  std::vector<std::size_t> pos(ev.size(), 0);
  std::map<std::tuple<int, int, int>, std::deque<double>> arrivals;
  double coll_cost = 0.0;
  double cross_bytes = 0.0;
  const int half = ranks / 2;

  auto barrier_cost = [&]() {
    return ranks > 1 ? 2.0 * std::ceil(std::log2(ranks)) * net.alpha : 0.0;
  };

  while (true) {
    bool progress = false;
    for (std::size_t r = 0; r < ev.size(); ++r) {
      while (pos[r] < ev[r].size()) {
        const NetEvent& e = *ev[r][pos[r]];
        if (e.kind == NetEvent::Kind::Compute) {
          t[r] += e.seconds;
          comp[r] += e.seconds;
        } else if (e.kind == NetEvent::Kind::Send) {
          const double dur = wire_time(e.bytes);
          const double start = std::max(t[r], inj[r]);
          inj[r] = start + dur;
          arrivals[{static_cast<int>(r), e.peer, e.tag}].push_back(
              start + net.alpha + dur);
          if (e.blocking) {
            t[r] = inj[r];
          } else {
            t[r] += net.alpha;  // posting overhead only; the NIC drains it
          }
          res.messages += 1;
          res.bytes += e.bytes;
          if ((static_cast<int>(r) < half) != (e.peer < half)) {
            cross_bytes += e.bytes;
          }
        } else if (e.kind == NetEvent::Kind::Recv) {
          auto it = arrivals.find({e.peer, static_cast<int>(r), e.tag});
          if (it == arrivals.end() || it->second.empty()) break;  // blocked
          const double arrival = it->second.front();
          it->second.pop_front();
          const double done = std::max(arrival, ej[r]) + wire_time(e.bytes);
          ej[r] = done;
          // Logged at the wait point: if the rank computed past the
          // arrival meanwhile, the transfer cost vanishes — overlap.
          t[r] = std::max(t[r], done);
        } else {
          break;  // parked at a collective until everyone arrives
        }
        ++pos[r];
        progress = true;
      }
    }

    std::size_t exhausted = 0;
    std::size_t parked = 0;
    for (std::size_t r = 0; r < ev.size(); ++r) {
      if (pos[r] >= ev[r].size()) {
        ++exhausted;
        continue;
      }
      const auto k = ev[r][pos[r]]->kind;
      if (k == NetEvent::Kind::Allreduce || k == NetEvent::Kind::Barrier) {
        ++parked;
      }
    }
    if (exhausted == ev.size()) break;  // replay complete

    if (parked == ev.size()) {
      // Everyone is at a collective: synchronize and charge the analytic
      // cost. Mismatched kinds mean the program orders disagree.
      const auto kind = ev[0][pos[0]]->kind;
      double bytes = 0.0;
      double entry = 0.0;
      for (std::size_t r = 0; r < ev.size(); ++r) {
        if (ev[r][pos[r]]->kind != kind) res.well_formed = false;
        bytes = std::max(bytes, ev[r][pos[r]]->bytes);
        entry = std::max(entry, t[r]);
      }
      const double cost =
          kind == NetEvent::Kind::Allreduce
              ? net.allreduce(static_cast<std::size_t>(bytes), ranks)
              : barrier_cost();
      coll_cost += cost;
      for (std::size_t r = 0; r < ev.size(); ++r) {
        t[r] = entry + cost;
        ++pos[r];
      }
      continue;
    }

    if (!progress) {
      // Blocked receives with no matching send, or some ranks finished
      // while others wait on a collective: a deadlocked trace.
      res.well_formed = false;
      break;
    }
  }

  double makespan = 0.0;
  for (std::size_t r = 0; r < ev.size(); ++r) {
    makespan = std::max({makespan, t[r], inj[r], ej[r]});
    res.compute_s = std::max(res.compute_s, comp[r]);
  }
  if (ranks >= 2 && binj > 0.0 && net.bisection_factor > 0.0) {
    res.bisection_floor_s =
        cross_bytes / (net.bisection_factor * binj * half);
  }
  res.timeline_s = std::max(makespan, res.bisection_floor_s);
  res.comm_sequential_s = static_cast<double>(res.messages) * net.alpha +
                          net.beta * res.bytes + coll_cost;
  res.sequential_s = res.compute_s + res.comm_sequential_s;
  return res;
}

}  // namespace coe::net
