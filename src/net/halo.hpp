#pragma once
// Halo aggregation (DESIGN.md section 15.3). A HaloPlan describes, once,
// which faces of a local field go to and come from each neighbor; every
// exchange then packs all of a neighbor's faces into ONE coalesced message
// (and unpacks one the other way), instead of one message per face. On an
// alpha-dominated interconnect this halves (or better) the per-step message
// count — the paper's "aggregate your halos" preparation step.
//
// Split-phase use is the point: begin() posts the receives and sends the
// packed faces, finish() waits and unpacks. Whatever the caller runs in
// between (interior stencil points, force kernels) overlaps the transfers,
// which net::reprice prices from the logged event order.

#include <cstddef>
#include <span>
#include <vector>

#include "core/exec.hpp"
#include "mpi/comm.hpp"
#include "net/log.hpp"
#include "prof/span.hpp"

namespace coe::net {

struct HaloStats {
  std::size_t exchanges = 0;  ///< begin/finish (or exchange) pairs completed
  std::size_t messages = 0;   ///< coalesced messages sent by this rank
  double bytes = 0.0;         ///< payload bytes sent by this rank
};

/// Per-neighbor face-aggregation plan over one flat field. Faces are
/// (offset, count) runs of contiguous indices; a neighbor may have any
/// number of send and recv faces, all carried in one message each way.
class HaloPlan {
 public:
  /// `ctx` prices pack/unpack as fused copy kernels (null = unpriced).
  explicit HaloPlan(core::ExecContext* ctx = nullptr) : ctx_(ctx) {}

  /// Registers a neighbor; returns its index for add_send/add_recv. Tags
  /// must be symmetric across ranks (my send_tag == peer's recv_tag).
  int add_neighbor(int peer, int send_tag, int recv_tag);
  /// Appends a contiguous face [offset, offset+count) to the neighbor's
  /// outgoing (packed) or incoming (unpacked) side.
  void add_send(int neighbor, std::size_t offset, std::size_t count);
  void add_recv(int neighbor, std::size_t offset, std::size_t count);

  /// Posts all receives, then packs and sends one message per neighbor.
  void begin(mpi::Communicator& comm, std::span<const double> field);
  /// Waits for every posted receive and unpacks into `field`.
  void finish(mpi::Communicator& comm, std::span<double> field);
  /// begin + finish with nothing in between (the non-overlapped path).
  void exchange(mpi::Communicator& comm, std::span<double> field);

  void set_profiler(prof::Profiler* p) { prof_ = p; }
  void set_logger(RankLogger logger) { logger_ = logger; }

  const HaloStats& stats() const { return stats_; }
  std::size_t neighbor_count() const { return neighbors_.size(); }
  /// Total doubles sent per exchange (all neighbors).
  std::size_t send_doubles() const;

 private:
  struct Face {
    std::size_t offset;
    std::size_t count;
  };
  struct Neighbor {
    int peer;
    int send_tag;
    int recv_tag;
    std::vector<Face> sends;
    std::vector<Face> recvs;
    std::size_t send_count = 0;  ///< sum of sends[i].count
    std::size_t recv_count = 0;
    // Flattened field indices, face-major — built lazily so pack/unpack is
    // a single gather/scatter kernel regardless of face count.
    std::vector<std::size_t> send_map;
    std::vector<std::size_t> recv_map;
    mpi::Request req;
  };

  void pack(Neighbor& nb, std::span<const double> field,
            std::vector<double>& buf);
  void unpack(Neighbor& nb, std::span<double> field,
              const std::vector<double>& msg);
  static void build_map(const std::vector<Face>& faces,
                        std::vector<std::size_t>& map);

  core::ExecContext* ctx_ = nullptr;
  prof::Profiler* prof_ = nullptr;
  RankLogger logger_;
  std::vector<Neighbor> neighbors_;
  HaloStats stats_;
  bool inflight_ = false;
};

}  // namespace coe::net
