#pragma once
// Per-link occupancy repricing (DESIGN.md section 15.4). The original
// mpi.modeled_time is a fully sequentialized bound — every message in the
// whole run pays alpha + beta*bytes back to back, as if one wire carried
// everything and nobody computed meanwhile. reprice() replays a NetLog
// against a ClusterModel with per-rank injection/ejection engines and
// per-rank program clocks, so messages from different nodes overlap each
// other and logged compute hides transfers posted before it. The gap
// between sequential_s and timeline_s is exactly the benefit the paper's
// communication preparation work (aggregation + overlap) is after.

#include <cstddef>

#include "core/machine.hpp"
#include "net/log.hpp"

namespace coe::net {

struct RepriceResult {
  /// Overlap-aware makespan: max over ranks of program clock and link
  /// engines, floored by the bisection bound.
  double timeline_s = 0.0;
  /// The legacy bound for the same traffic: per-rank compute critical path
  /// plus every message sequentialized at alpha + beta*bytes.
  double sequential_s = 0.0;
  double comm_sequential_s = 0.0;  ///< communication part of sequential_s
  double compute_s = 0.0;          ///< max per-rank logged compute seconds
  /// Lower bound from traffic crossing the machine midpoint through the
  /// fabric's bisection (bisection_factor * injection_bw * ranks/2).
  double bisection_floor_s = 0.0;
  std::size_t messages = 0;  ///< point-to-point sends in the log
  double bytes = 0.0;        ///< payload bytes of those sends
  /// False if the replay deadlocked (recv with no matching send, ranks
  /// parked on mismatched collectives) — results are then partial.
  bool well_formed = true;

  double speedup() const {
    return timeline_s > 0.0 ? sequential_s / timeline_s : 1.0;
  }
};

/// Replays `log` over `ranks` program orders against `net`. Event model:
/// sends occupy the source's injection engine (blocking sends also advance
/// the program clock through the injection; posted sends charge only alpha),
/// receives complete at max(arrival, ejection-engine availability) + the
/// ejection time, collectives are global synchronization points priced by
/// the analytic ClusterModel cost.
RepriceResult reprice(const NetLog& log, const hsim::ClusterModel& net,
                      int ranks);

}  // namespace coe::net
