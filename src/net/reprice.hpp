#pragma once
// Per-link occupancy repricing (DESIGN.md section 15.4). The original
// mpi.modeled_time is a fully sequentialized bound — every message in the
// whole run pays alpha + beta*bytes back to back, as if one wire carried
// everything and nobody computed meanwhile. reprice() replays a NetLog
// against a ClusterModel with per-rank injection/ejection engines and
// per-rank program clocks, so messages from different nodes overlap each
// other and logged compute hides transfers posted before it. The gap
// between sequential_s and timeline_s is exactly the benefit the paper's
// communication preparation work (aggregation + overlap) is after.
//
// replay() is the same machinery with the schedule kept: every event's
// program-clock interval, the wire occupancy of each send, the matched
// send index behind each receive, and the per-rank finish clocks. It is
// the substrate coe::xray (DESIGN.md section 16) builds the merged
// timeline and the distributed critical path on; reprice() is a thin
// summary of it, bit-identical to the original single-pass version.

#include <cstddef>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "net/log.hpp"

namespace coe::net {

struct RepriceResult {
  /// Overlap-aware makespan: max over ranks of program clock and link
  /// engines, floored by the bisection bound.
  double timeline_s = 0.0;
  /// The legacy bound for the same traffic: per-rank compute critical path
  /// plus every message sequentialized at alpha + beta*bytes.
  double sequential_s = 0.0;
  double comm_sequential_s = 0.0;  ///< communication part of sequential_s
  double compute_s = 0.0;          ///< max per-rank logged compute seconds
  /// Lower bound from traffic crossing the machine midpoint through the
  /// fabric's bisection (bisection_factor * injection_bw * ranks/2).
  double bisection_floor_s = 0.0;
  std::size_t messages = 0;  ///< point-to-point sends in the log
  double bytes = 0.0;        ///< payload bytes of those sends
  /// False if the replay deadlocked (recv with no matching send, ranks
  /// parked on mismatched collectives) — results are then partial.
  bool well_formed = true;

  double speedup() const {
    return timeline_s > 0.0 ? sequential_s / timeline_s : 1.0;
  }
};

/// One NetEvent placed on the replayed timeline. Times are replay seconds
/// (every rank's program clock starts at 0).
struct ReplayEvent {
  NetEvent ev;               ///< the logged event (copied out of the log)
  std::size_t pos = 0;       ///< position in its rank's program order
  double t_before = 0.0;     ///< rank program clock on reaching the event
  double t_after = 0.0;      ///< rank program clock after the event
  // Send only: occupancy of the source's injection engine, and the time
  // the message lands at the destination (wire_end + alpha).
  double wire_start = 0.0;
  double wire_end = 0.0;
  double arrival = 0.0;
  double inj_before = 0.0;   ///< injection engine availability at the send
  // Recv only: ejection engine availability, the matched send's arrival,
  // the drain interval, and the completion point.
  double ej_before = 0.0;
  double eject_start = 0.0;
  double done = 0.0;
  // Collective only: the synchronization entry time (max program clock
  // over ranks) and the analytic cost charged on top of it.
  double entry = 0.0;
  double cost = 0.0;
  /// Recv: index (into Replay::events) of the matched Send; Send: index of
  /// the matching Recv once one consumed the message. -1 = unmatched.
  std::ptrdiff_t match = -1;
  /// Collective: id shared by the P events of one synchronization.
  std::ptrdiff_t group = -1;
};

/// The full replayed schedule of a NetLog.
struct Replay {
  int ranks = 0;
  std::vector<ReplayEvent> events;  ///< log order (same order as the NetLog)
  /// Per-rank indices into `events`, program order. rank_events[r][p] is
  /// rank r's p-th event.
  std::vector<std::vector<std::size_t>> rank_events;
  /// Per-collective-group member indices into `events` (one per rank).
  std::vector<std::vector<std::size_t>> groups;
  std::vector<double> finish;  ///< per-rank final program clock
  std::vector<double> inj;     ///< per-rank final injection-engine time
  std::vector<double> ej;      ///< per-rank final ejection-engine time
  /// Event makespan: max over ranks of program clock and both engines
  /// (the quantity the bisection floor is applied to).
  double makespan_s = 0.0;
  RepriceResult result;
  /// Human-readable replay problems: blocked receives, unmatched sends,
  /// events with out-of-range ranks, mismatched collectives. Non-empty
  /// means the log was malformed or truncated; `result.well_formed` is
  /// false for the subset of these the legacy reprice() also detected
  /// (unmatched *sends* alone do not deadlock a replay, so they surface
  /// only here).
  std::vector<std::string> diagnostics;
};

/// Replays `log` over `ranks` program orders against `net`, keeping the
/// full schedule. Event model: sends occupy the source's injection engine
/// (blocking sends also advance the program clock through the injection;
/// posted sends charge only alpha), receives complete at max(arrival,
/// ejection-engine availability) + the ejection time, collectives are
/// global synchronization points priced by the analytic ClusterModel cost.
Replay replay(const NetLog& log, const hsim::ClusterModel& net, int ranks);

/// Summary-only replay: exactly replay(...).result.
RepriceResult reprice(const NetLog& log, const hsim::ClusterModel& net,
                      int ranks);

}  // namespace coe::net
