#pragma once
// coe::net umbrella — log-P collectives, halo aggregation, and the
// per-link occupancy repricer (DESIGN.md section 15).

#include "net/collective.hpp"
#include "net/halo.hpp"
#include "net/log.hpp"
#include "net/reprice.hpp"
