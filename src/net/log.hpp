#pragma once
// Traffic log for net::reprice (DESIGN.md section 15.4). Drivers and the
// net collectives append one event per communication action or overlapped
// compute interval; reprice() replays the log against a ClusterModel's
// per-link occupancy to produce a timeline estimate alongside the old
// fully-sequentialized alpha-beta bound.
//
// Event conventions:
//  * Send is logged at post time. `blocking` distinguishes a synchronous
//    send (the rank's program clock advances past the injection) from an
//    isend (only the link engine is occupied).
//  * Recv is logged at its COMPLETION point — for irecv that is the
//    wait()/waitall() call, which is exactly what lets compute logged
//    between post and wait hide the transfer in the replay.
//  * Compute carries modeled kernel seconds (e.g. an ExecContext
//    simulated-time delta) spent between communication actions.
//  * Allreduce/Barrier mark legacy shared-buffer collectives that send no
//    point-to-point messages; reprice prices them on the analytic
//    ClusterModel collective costs. Collectives built from real messages
//    (net::allreduce_sum) log their constituent Send/Recv events instead.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

namespace coe::net {

struct NetEvent {
  enum class Kind { Send, Recv, Compute, Allreduce, Barrier };
  Kind kind = Kind::Compute;
  int rank = 0;      ///< rank whose program order this event belongs to
  int peer = -1;     ///< destination (Send) / source (Recv)
  int tag = 0;
  double bytes = 0.0;    ///< message payload (Send/Recv) or collective size
  double seconds = 0.0;  ///< Compute only: modeled kernel seconds
  bool blocking = true;  ///< Send only: synchronous vs posted
  /// Wall-clock seconds since the owning log's epoch, stamped at the
  /// event's completion point (Recv only: the wait that delivered the
  /// message). -1 when unstamped. Purely diagnostic — reprice ignores it;
  /// coe::xray uses it to cross-check that the modeled merge agrees with
  /// the order the waits actually completed in.
  double t_wall = -1.0;
};

/// Thread-safe append-only event log shared by every rank of a world.
class NetLog {
 public:
  NetLog() : epoch_(std::chrono::steady_clock::now()) {}

  void push(const NetEvent& e) {
    std::lock_guard<std::mutex> lk(mtx_);
    events_.push_back(e);
  }

  /// Monotonic wall seconds since this log was created — the clock Recv
  /// completion stamps are expressed in.
  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  std::vector<NetEvent> snapshot() const {
    std::lock_guard<std::mutex> lk(mtx_);
    return events_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mtx_);
    return events_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mtx_);
    events_.clear();
  }

 private:
  mutable std::mutex mtx_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<NetEvent> events_;
};

/// Per-rank logging facade; every method is a cheap no-op when constructed
/// without a log, so instrumented drivers behave identically unlogged.
class RankLogger {
 public:
  RankLogger() = default;
  RankLogger(NetLog* log, int rank) : log_(log), rank_(rank) {}

  explicit operator bool() const { return log_ != nullptr; }
  int rank() const { return rank_; }

  void send(int dest, int tag, double bytes, bool blocking) const {
    if (log_) {
      log_->push({NetEvent::Kind::Send, rank_, dest, tag, bytes, 0.0,
                  blocking});
    }
  }
  void recv(int src, int tag, double bytes) const {
    if (log_) {
      log_->push({NetEvent::Kind::Recv, rank_, src, tag, bytes, 0.0, true,
                  log_->now_s()});
    }
  }
  void compute(double seconds) const {
    if (log_ && seconds > 0.0) {
      log_->push({NetEvent::Kind::Compute, rank_, -1, 0, 0.0, seconds, true});
    }
  }
  void allreduce(double bytes) const {
    if (log_) {
      log_->push({NetEvent::Kind::Allreduce, rank_, -1, 0, bytes, 0.0, true});
    }
  }
  void barrier() const {
    if (log_) {
      log_->push({NetEvent::Kind::Barrier, rank_, -1, 0, 0.0, 0.0, true});
    }
  }

 private:
  NetLog* log_ = nullptr;
  int rank_ = 0;
};

}  // namespace coe::net
