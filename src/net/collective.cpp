#include "net/collective.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/exec.hpp"

namespace coe::net {

namespace {

// Tag block reserved for net collectives. One tag per algorithm phase is
// enough: mailbox queues are FIFO per (src, dst, tag), and within a phase
// each round talks to a distinct partner, so messages can never overtake
// each other even across back-to-back collectives.
constexpr int kTagFold = 0x6A00;
constexpr int kTagUnfold = 0x6A01;
constexpr int kTagRd = 0x6A02;
constexpr int kTagRingRs = 0x6A03;
constexpr int kTagRingAg = 0x6A04;
constexpr int kTagNaive = 0x6A05;

enum class Op { Sum, Max };

void combine(std::span<double> acc, const std::vector<double>& in, Op op) {
  const std::size_t n = std::min(acc.size(), in.size());
  if (op == Op::Sum) {
    for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
  }
}

void count_send(std::size_t count, NetStats* stats) {
  if (stats) {
    stats->messages += 1;
    stats->bytes += 8.0 * static_cast<double>(count);
  }
}

void post(mpi::Communicator& comm, int dest, int tag,
          std::span<const double> v, NetStats* stats,
          const RankLogger& logger) {
  comm.isend(dest, tag, std::vector<double>(v.begin(), v.end()));
  count_send(v.size(), stats);
  logger.send(dest, tag, 8.0 * static_cast<double>(v.size()), false);
}

std::vector<double> fetch(mpi::Communicator& comm, int src, int tag,
                          const RankLogger& logger) {
  auto data = comm.recv(src, tag);
  logger.recv(src, tag, 8.0 * static_cast<double>(data.size()));
  return data;
}

/// Recursive doubling over the largest power-of-two subgroup; extra ranks
/// fold their vector into a partner up front and get the result back at the
/// end (the standard MPICH non-power-of-two reduction).
void allreduce_rd(mpi::Communicator& comm, std::span<double> inout, Op op,
                  NetStats* stats, const RankLogger& logger) {
  const int p = comm.size();
  const int r = comm.rank();
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      post(comm, r + 1, kTagFold, inout, stats, logger);
      newrank = -1;  // parked until the unfold
    } else {
      combine(inout, fetch(comm, r - 1, kTagFold, logger), op);
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int newpeer = newrank ^ mask;
      const int peer = newpeer < rem ? newpeer * 2 + 1 : newpeer + rem;
      post(comm, peer, kTagRd, inout, stats, logger);
      // Two-operand FP addition/max is commutative, so both partners end
      // the round with bit-identical partials.
      combine(inout, fetch(comm, peer, kTagRd, logger), op);
    }
  }

  if (r < 2 * rem) {
    if (r % 2 == 1) {
      post(comm, r - 1, kTagUnfold, inout, stats, logger);
    } else {
      auto result = fetch(comm, r + 1, kTagUnfold, logger);
      std::copy(result.begin(), result.end(), inout.begin());
    }
  }
}

/// Ring allreduce: p-1 reduce-scatter steps then p-1 allgather steps, each
/// rank moving one 1/p chunk per step — 2(p-1)/p of the vector total, the
/// bandwidth-optimal volume.
void allreduce_ring(mpi::Communicator& comm, std::span<double> inout, Op op,
                    NetStats* stats, const RankLogger& logger) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n = inout.size();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  auto chunk_lo = [&](int c) { return n * static_cast<std::size_t>(c) /
                                      static_cast<std::size_t>(p); };
  auto chunk = [&](int c) {
    return inout.subspan(chunk_lo(c), chunk_lo(c + 1) - chunk_lo(c));
  };

  // Reduce-scatter: after step s, the partial for chunk c has visited
  // ranks c+1..c+s+1 (mod p) in ring order — a fixed association identical
  // no matter which rank you ask.
  for (int s = 0; s < p - 1; ++s) {
    post(comm, right, kTagRingRs, chunk((r - s + p) % p), stats, logger);
    combine(chunk((r - s - 1 + 2 * p) % p),
            fetch(comm, left, kTagRingRs, logger), op);
  }
  // Allgather: rank r owns the finished chunk (r+1) mod p; circulate.
  for (int s = 0; s < p - 1; ++s) {
    post(comm, right, kTagRingAg, chunk((r + 1 - s + p) % p), stats, logger);
    auto in = fetch(comm, left, kTagRingAg, logger);
    auto dst = chunk((r - s + p) % p);
    std::copy(in.begin(), in.end(), dst.begin());
  }
}

/// Naive all-to-all broadcast: every rank sends its full vector to every
/// other rank and reduces in rank order. P(P-1) messages of the full size —
/// the O(P^2) baseline the ablation compares against.
void allreduce_naive(mpi::Communicator& comm, std::span<double> inout, Op op,
                     NetStats* stats, const RankLogger& logger) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::vector<double> mine(inout.begin(), inout.end());
  for (int dst = 0; dst < p; ++dst) {
    if (dst != r) post(comm, dst, kTagNaive, mine, stats, logger);
  }
  // Reduce in ascending rank order — the same association on every rank.
  std::fill(inout.begin(), inout.end(),
            op == Op::Sum ? 0.0 : -1.7976931348623157e308);
  for (int src = 0; src < p; ++src) {
    if (src == r) {
      combine(inout, mine, op);
    } else {
      combine(inout, fetch(comm, src, kTagNaive, logger), op);
    }
  }
}

void allreduce(mpi::Communicator& comm, std::span<double> inout, Op op,
               AllreduceAlgo algo, NetStats* stats, const RankLogger& logger) {
  if (stats) stats->reductions += 1;
  if (comm.size() <= 1) return;
  switch (algo) {
    case AllreduceAlgo::Central:
      if (op == Op::Sum) {
        comm.allreduce_sum(inout);
      } else {
        comm.allreduce_max(inout);
      }
      logger.allreduce(8.0 * static_cast<double>(inout.size()));
      return;
    case AllreduceAlgo::Naive:
      allreduce_naive(comm, inout, op, stats, logger);
      return;
    case AllreduceAlgo::RecursiveDoubling:
      allreduce_rd(comm, inout, op, stats, logger);
      return;
    case AllreduceAlgo::Ring:
      allreduce_ring(comm, inout, op, stats, logger);
      return;
  }
}

}  // namespace

const char* algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::Central: return "central";
    case AllreduceAlgo::Naive: return "naive";
    case AllreduceAlgo::RecursiveDoubling: return "rd";
    case AllreduceAlgo::Ring: return "ring";
  }
  return "?";
}

std::size_t allreduce_messages(AllreduceAlgo a, int ranks) {
  if (ranks <= 1) return 0;
  const auto p = static_cast<std::size_t>(ranks);
  switch (a) {
    case AllreduceAlgo::Central:
      return 0;
    case AllreduceAlgo::Naive:
      return p * (p - 1);
    case AllreduceAlgo::RecursiveDoubling: {
      std::size_t pof2 = 1;
      int rounds = 0;
      while (pof2 * 2 <= p) {
        pof2 *= 2;
        ++rounds;
      }
      const std::size_t rem = p - pof2;
      return pof2 * static_cast<std::size_t>(rounds) + 2 * rem;
    }
    case AllreduceAlgo::Ring:
      return 2 * p * (p - 1);
  }
  return 0;
}

double modeled_allreduce(AllreduceAlgo a, const hsim::ClusterModel& net,
                         std::size_t bytes, int ranks) {
  if (ranks <= 1) return 0.0;
  const double p = static_cast<double>(ranks);
  const double b = static_cast<double>(bytes);
  const double rounds = std::ceil(std::log2(p));
  switch (a) {
    case AllreduceAlgo::Central:
      return net.allreduce(bytes, ranks);
    case AllreduceAlgo::Naive:
      // Every rank injects p-1 full vectors through one NIC.
      return (p - 1.0) * (net.alpha + net.beta * b);
    case AllreduceAlgo::RecursiveDoubling:
      return rounds * (net.alpha + net.beta * b);
    case AllreduceAlgo::Ring:
      return 2.0 * (p - 1.0) * (net.alpha + net.beta * b / p);
  }
  return 0.0;
}

AllreduceAlgo select_allreduce(const hsim::ClusterModel& net,
                               std::size_t bytes, int ranks) {
  const double rd =
      modeled_allreduce(AllreduceAlgo::RecursiveDoubling, net, bytes, ranks);
  const double ring = modeled_allreduce(AllreduceAlgo::Ring, net, bytes, ranks);
  return rd <= ring ? AllreduceAlgo::RecursiveDoubling : AllreduceAlgo::Ring;
}

void allreduce_sum(mpi::Communicator& comm, std::span<double> inout,
                   AllreduceAlgo algo, NetStats* stats, RankLogger logger) {
  allreduce(comm, inout, Op::Sum, algo, stats, logger);
}

double allreduce_sum(mpi::Communicator& comm, double v, AllreduceAlgo algo,
                     NetStats* stats, RankLogger logger) {
  allreduce(comm, std::span<double>(&v, 1), Op::Sum, algo, stats, logger);
  return v;
}

void allreduce_max(mpi::Communicator& comm, std::span<double> inout,
                   AllreduceAlgo algo, NetStats* stats, RankLogger logger) {
  allreduce(comm, inout, Op::Max, algo, stats, logger);
}

double allreduce_max(mpi::Communicator& comm, double v, AllreduceAlgo algo,
                     NetStats* stats, RankLogger logger) {
  allreduce(comm, std::span<double>(&v, 1), Op::Max, algo, stats, logger);
  return v;
}

std::function<void(std::span<double>)> logged_reduce(
    mpi::Communicator& comm, AllreduceAlgo algo, NetStats* stats,
    RankLogger logger, core::ExecContext* ctx) {
  // The cursor lives on the heap so copies of the std::function share it
  // (la::cg copies its SolveOptions).
  auto cursor =
      std::make_shared<double>(ctx ? ctx->simulated_time() : 0.0);
  return [&comm, algo, stats, logger, ctx, cursor](std::span<double> vals) {
    if (ctx != nullptr) {
      const double s = ctx->simulated_time();
      logger.compute(s - *cursor);
      *cursor = s;
    }
    allreduce_sum(comm, vals, algo, stats, logger);
  };
}

}  // namespace coe::net
