#pragma once
// Exporters for the DAG attribution: a human-readable bottleneck report,
// the coe-prof-v1 JSON document (the PROF_*.json artifact every profiled
// bench writes next to its BENCH_ JSON), and Chrome trace flow events that
// highlight the critical path in the timeline viewer.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "prof/dag.hpp"
#include "prof/span.hpp"

namespace coe::prof {

/// Fixed-width text report: run summary (makespan, critical path,
/// coverage, overlap efficiency), per-stream utilization, critical-path
/// edge breakdown, and the per-phase five-way percentage table (the five
/// shares of each row sum to 100%).
std::string bottleneck_report(const DagProfile& prof,
                              const std::string& title);

/// Builds the coe-prof-v1 document. `spans` (optional) attaches the
/// Profiler tree with its per-region predicted-vs-measured skew.
obs::Json profile_json(const DagProfile& prof, const Profiler* spans,
                       const std::string& name);

/// Pre-serialized Chrome flow events ("ph":"s"/"f" pairs on id 1) linking
/// consecutive critical-path steps; pass to obs::write_chrome_trace as
/// `extra_events` so viewers draw the critical path as arrows.
std::vector<std::string> critical_path_flow_events(const DagProfile& prof);

}  // namespace coe::prof
