#include "prof/span.hpp"

#include <iomanip>
#include <sstream>

#include "core/exec.hpp"

namespace coe::prof {

Profiler::Node* Profiler::Node::child(const std::string& name) {
  for (auto& c : children) {
    if (c->name == name) return c.get();
  }
  auto node = std::make_unique<Node>();
  node->name = name;
  node->path = path.empty() ? name : path + "/" + name;
  node->parent = this;
  children.push_back(std::move(node));
  return children.back().get();
}

Profiler::Node* Profiler::enter(const std::string& name) {
  current_ = current_->child(name);
  return current_;
}

void Profiler::leave(Node* n, double wall_s, double sim_s) {
  n->calls++;
  n->wall_s += wall_s;
  n->sim_s += sim_s;
  if (current_ == n && n->parent) current_ = n->parent;
}

namespace {

void report_node(std::ostringstream& os, const Profiler::Node& n, int depth,
                 double wall_total, double sim_total) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const double wall_share = wall_total > 0 ? n.wall_s / wall_total : 0.0;
  const double sim_share = sim_total > 0 ? n.sim_s / sim_total : 0.0;
  os << std::left << std::setw(32) << ("  " + indent + n.name) << std::right
     << std::setw(8) << n.calls << std::setw(13) << std::scientific
     << std::setprecision(3) << n.wall_s << std::setw(13) << n.sim_s
     << std::setw(9) << std::fixed << std::setprecision(1)
     << 100.0 * wall_share << "%" << std::setw(9) << 100.0 * sim_share
     << "%" << std::setw(9) << std::showpos << std::setprecision(1)
     << 100.0 * (sim_share - wall_share) << std::noshowpos << "pp\n";
  for (const auto& c : n.children) {
    report_node(os, *c, depth + 1, wall_total, sim_total);
  }
}

void node_totals(const Profiler::Node& n, double* wall, double* sim) {
  *wall += n.wall_s;
  *sim += n.sim_s;
}

obs::Json node_json(const Profiler::Node& n) {
  obs::Json j = obs::Json::object();
  j.set("name", obs::Json::string(n.name));
  j.set("path", obs::Json::string(n.path));
  j.set("calls", obs::Json::number(static_cast<double>(n.calls)));
  j.set("wall_s", obs::Json::number(n.wall_s));
  j.set("sim_s", obs::Json::number(n.sim_s));
  obs::Json kids = obs::Json::array();
  for (const auto& c : n.children) kids.push(node_json(*c));
  j.set("children", std::move(kids));
  return j;
}

}  // namespace

std::string Profiler::report(const std::string& title) const {
  // Shares are computed over the top-level spans only; children are a
  // refinement of their parent's time, not additional time.
  double wall_total = 0.0, sim_total = 0.0;
  for (const auto& c : root_.children) {
    node_totals(*c, &wall_total, &sim_total);
  }
  std::ostringstream os;
  os << title << "\n";
  os << std::left << std::setw(32) << "  span" << std::right << std::setw(8)
     << "calls" << std::setw(13) << "wall (s)" << std::setw(13) << "sim (s)"
     << std::setw(10) << "wall%" << std::setw(10) << "sim%" << std::setw(11)
     << "skew\n";
  for (const auto& c : root_.children) {
    report_node(os, *c, 0, wall_total, sim_total);
  }
  return os.str();
}

obs::Json Profiler::to_json() const {
  obs::Json spans = obs::Json::array();
  for (const auto& c : root_.children) spans.push(node_json(*c));
  return spans;
}

Scope::Scope(Profiler* profiler, core::ExecContext* ctx,
             const std::string& name)
    : profiler_(profiler), ctx_(ctx) {
  if (!profiler_) return;
  // '/'-separated names open one level per segment so related spans from
  // different call sites share an ancestor ("guard/scrub", "guard/abft").
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t pos = name.find('/', start);
    const std::size_t end = pos == std::string::npos ? name.size() : pos;
    if (end > start) {
      node_ = profiler_->enter(name.substr(start, end - start));
      ++depth_;
    }
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  if (depth_ == 0) {
    node_ = profiler_->enter(name);
    depth_ = 1;
  }
  if (ctx_) {
    saved_phase_ = ctx_->phase();
    ctx_->set_phase(node_->path);
    sim0_ = ctx_->simulated_time();
  }
  t0_ = std::chrono::steady_clock::now();
}

Scope::~Scope() {
  if (!profiler_) return;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  double sim = 0.0;
  if (ctx_) {
    sim = ctx_->simulated_time() - sim0_;
    ctx_->set_phase(saved_phase_);
  }
  // Attribute the region to every level of the entered chain (a parent's
  // time includes its children's), popping one level per leave().
  Profiler::Node* n = node_;
  for (int i = 0; i < depth_ && n != nullptr; ++i) {
    Profiler::Node* parent = n->parent;
    profiler_->leave(n, wall, sim);
    n = parent;
  }
}

}  // namespace coe::prof
