#include "prof/dag.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

namespace coe::prof {

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::Root: return "root";
    case EdgeKind::ProgramOrder: return "program_order";
    case EdgeKind::EventWait: return "event_wait";
    case EdgeKind::KernelSlot: return "kernel_slot";
    case EdgeKind::DmaEngine: return "dma_engine";
    case EdgeKind::Dependency: return "dependency";
  }
  return "?";
}

const char* to_string(Category c) {
  switch (c) {
    case Category::Compute: return "compute";
    case Category::Memory: return "memory";
    case Category::Launch: return "launch";
    case Category::Transfer: return "transfer";
    case Category::DependencyStall: return "dependency_stall";
  }
  return "?";
}

Category PhaseProfile::bound() const {
  const double parts[5] = {compute_s, memory_s, launch_s, transfer_s,
                           stall_s};
  std::size_t best = 0;
  for (std::size_t i = 1; i < 5; ++i) {
    if (parts[i] > parts[best]) best = i;
  }
  return static_cast<Category>(best);
}

const PhaseProfile* DagProfile::phase(const std::string& name) const {
  for (const auto& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

namespace {

bool is_transfer(obs::TraceEvent::Kind k) {
  return k == obs::TraceEvent::Kind::TransferH2D ||
         k == obs::TraceEvent::Kind::TransferD2H;
}

double end_of(const obs::TraceEvent& e) { return e.t_start + e.duration; }

/// Finds the binding predecessor of `events[ci]`: the already-issued event
/// whose completion coincides with cur's start. When several ends land on
/// the start time (within eps), the most specific constraint wins:
/// program order on the same stream, then a replayed wait edge, then
/// resource contention (kernel slot / DMA engine), then a generic
/// dependency. Returns events.size() when no predecessor binds — the
/// chain has reached the window origin (or a trace gap).
std::size_t binding_predecessor(const std::vector<obs::TraceEvent>& events,
                                const std::vector<char>& wait_bound,
                                std::size_t ci, double eps, EdgeKind* via) {
  const obs::TraceEvent& cur = events[ci];
  const double target = cur.t_start;
  std::size_t best = events.size();
  int best_rank = 99;
  double best_err = 0.0;
  for (std::size_t j = ci; j-- > 0;) {
    const obs::TraceEvent& p = events[j];
    // Zero-duration predecessors cannot carry critical-path time and,
    // since their start == their end, chaining through them would not
    // advance the backward walk.
    if (!(p.duration > 0.0)) continue;
    const double err = std::abs(end_of(p) - target);
    if (err > eps) continue;
    int rank;
    if (p.stream == cur.stream) {
      rank = 0;  // ProgramOrder
    } else if (wait_bound[ci]) {
      rank = 1;  // EventWait
    } else if (cur.kind == obs::TraceEvent::Kind::Kernel &&
               p.kind == obs::TraceEvent::Kind::Kernel) {
      rank = 2;  // KernelSlot
    } else if (is_transfer(cur.kind) && p.kind == cur.kind) {
      rank = 2;  // DmaEngine
    } else {
      rank = 3;  // Dependency
    }
    if (rank < best_rank || (rank == best_rank && err < best_err)) {
      best = j;
      best_rank = rank;
      best_err = err;
    }
  }
  if (best == events.size()) {
    *via = EdgeKind::Root;
    return best;
  }
  switch (best_rank) {
    case 0: *via = EdgeKind::ProgramOrder; break;
    case 1: *via = EdgeKind::EventWait; break;
    case 2:
      *via = events[ci].kind == obs::TraceEvent::Kind::Kernel
                 ? EdgeKind::KernelSlot
                 : EdgeKind::DmaEngine;
      break;
    default: *via = EdgeKind::Dependency; break;
  }
  return best;
}

}  // namespace

DagProfile analyze(const obs::TraceBuffer& buf) {
  DagProfile prof;
  prof.machine = buf.source();
  prof.launch_overhead = buf.launch_overhead();
  prof.dropped = buf.dropped();

  const auto snap = buf.snapshot();
  // Split payload events from the zero-duration ordering markers, but
  // remember which waits bind which events: a wait_event marker raises its
  // stream to the recorded completion time, so the next payload event on
  // that stream starting exactly there entered through a wait edge.
  std::map<int, std::vector<double>> pending_waits;
  std::vector<char> wait_bound;
  for (const auto& e : snap) {
    if (obs::is_marker(e.kind)) {
      if (e.kind == obs::TraceEvent::Kind::EventWait) {
        pending_waits[e.stream].push_back(e.t_start);
      }
      continue;
    }
    prof.events.push_back(e);
    wait_bound.push_back(0);
    auto it = pending_waits.find(e.stream);
    if (it != pending_waits.end()) {
      for (double t : it->second) {
        if (std::abs(t - e.t_start) <=
            1e-12 * std::max(1.0, std::abs(e.t_start))) {
          wait_bound.back() = 1;
        }
      }
      it->second.clear();
    }
  }
  if (prof.events.empty()) return prof;

  prof.origin = prof.events.front().t_start;
  prof.makespan = end_of(prof.events.front());
  std::size_t sink = 0;
  std::map<int, StreamProfile> streams;
  std::map<int, double> last_end;  // per-stream previous completion
  std::map<std::string, std::size_t> phase_index;

  auto phase_of = [&](const obs::TraceEvent& e) -> PhaseProfile& {
    const std::string name = e.phase.empty() ? "(none)" : e.phase;
    auto it = phase_index.find(name);
    if (it == phase_index.end()) {
      it = phase_index.emplace(name, prof.phases.size()).first;
      prof.phases.push_back(PhaseProfile{});
      prof.phases.back().name = name;
    }
    return prof.phases[it->second];
  };

  for (std::size_t i = 0; i < prof.events.size(); ++i) {
    const auto& e = prof.events[i];
    prof.origin = std::min(prof.origin, e.t_start);
    if (end_of(e) > prof.makespan) {
      prof.makespan = end_of(e);
      sink = i;
    }
    prof.busy_s += e.duration;
    auto& s = streams[e.stream];
    s.stream = e.stream;
    s.busy_s += e.duration;
    s.events++;
  }
  prof.window_s = prof.makespan - prof.origin;

  // Per-phase busy decomposition + dependency stalls. The launch-overhead
  // share of each kernel comes from the stamped machine metadata; the
  // roofline remainder is attributed per the event's recorded bound.
  for (const auto& e : prof.events) {
    auto& ph = phase_of(e);
    ph.busy_s += e.duration;
    if (e.kind == obs::TraceEvent::Kind::Kernel) {
      ph.kernels++;
      const double launch = std::min(e.duration, prof.launch_overhead);
      ph.launch_s += launch;
      const double roofline = e.duration - launch;
      if (e.bound == obs::TraceEvent::Bound::Compute) {
        ph.compute_s += roofline;
      } else {
        ph.memory_s += roofline;
      }
    } else {
      ph.transfers++;
      ph.transfer_s += e.duration;
    }
    auto it = last_end.find(e.stream);
    const double prev = it == last_end.end() ? prof.origin : it->second;
    if (e.t_start > prev) ph.stall_s += e.t_start - prev;
    const double end = end_of(e);
    if (it == last_end.end()) {
      last_end.emplace(e.stream, end);
    } else if (end > it->second) {
      it->second = end;
    }
  }

  for (auto& [id, s] : streams) {
    s.utilization = prof.window_s > 0.0 ? s.busy_s / prof.window_s : 0.0;
    prof.streams.push_back(s);
  }
  prof.overlap_efficiency =
      prof.window_s > 0.0 ? prof.busy_s / prof.window_s : 0.0;

  // Backward walk from the sink. Each predecessor's end coincides with the
  // current start, so the chain is gapless and start times strictly
  // decrease (binding predecessors have duration > 0) — termination is
  // guaranteed.
  const double eps =
      1e-9 * std::max({1.0, std::abs(prof.makespan), prof.window_s});
  std::size_t cur = sink;
  for (;;) {
    EdgeKind via = EdgeKind::Root;
    const std::size_t pred = binding_predecessor(
        prof.events, wait_bound, cur, eps, &via);
    prof.critical_path.push_back(CritStep{cur, via});
    if (pred == prof.events.size()) break;
    cur = pred;
  }
  std::reverse(prof.critical_path.begin(), prof.critical_path.end());

  for (const auto& step : prof.critical_path) {
    const auto& e = prof.events[step.event];
    prof.critical_s += e.duration;
    prof.edge_seconds[static_cast<std::size_t>(step.via)] += e.duration;
    phase_of(e).crit_s += e.duration;
  }
  prof.coverage =
      prof.window_s > 0.0 ? prof.critical_s / prof.window_s : 1.0;
  return prof;
}

}  // namespace coe::prof
