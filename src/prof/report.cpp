#include "prof/report.hpp"

#include <iomanip>
#include <sstream>

namespace coe::prof {

namespace {

struct Shares {
  double compute = 0.0, memory = 0.0, launch = 0.0, transfer = 0.0,
         stall = 0.0;
};

/// Five-way percentage split of a phase total; sums to 100 when the total
/// is positive (the four busy parts partition busy_s exactly and stall_s
/// is the remainder of total_s).
Shares shares_of(const PhaseProfile& p) {
  const double tot = p.total_s();
  if (!(tot > 0.0)) return {};
  return {100.0 * p.compute_s / tot, 100.0 * p.memory_s / tot,
          100.0 * p.launch_s / tot, 100.0 * p.transfer_s / tot,
          100.0 * p.stall_s / tot};
}

PhaseProfile run_totals(const DagProfile& prof) {
  PhaseProfile all;
  all.name = "total";
  for (const auto& p : prof.phases) {
    all.busy_s += p.busy_s;
    all.crit_s += p.crit_s;
    all.stall_s += p.stall_s;
    all.compute_s += p.compute_s;
    all.memory_s += p.memory_s;
    all.launch_s += p.launch_s;
    all.transfer_s += p.transfer_s;
    all.kernels += p.kernels;
    all.transfers += p.transfers;
  }
  return all;
}

void phase_row(std::ostringstream& os, const PhaseProfile& p) {
  const Shares sh = shares_of(p);
  os << std::left << std::setw(24) << ("  " + p.name) << std::right
     << std::setw(12) << std::scientific << std::setprecision(3)
     << p.total_s() << std::setw(12) << p.crit_s << std::fixed
     << std::setprecision(1) << std::setw(8) << sh.compute << std::setw(8)
     << sh.memory << std::setw(8) << sh.launch << std::setw(8) << sh.transfer
     << std::setw(8) << sh.stall << "  " << to_string(p.bound()) << "\n";
}

obs::Json phase_json(const PhaseProfile& p) {
  const Shares sh = shares_of(p);
  obs::Json j = obs::Json::object();
  j.set("name", obs::Json::string(p.name));
  j.set("busy_s", obs::Json::number(p.busy_s));
  j.set("critical_s", obs::Json::number(p.crit_s));
  j.set("stall_s", obs::Json::number(p.stall_s));
  j.set("compute_s", obs::Json::number(p.compute_s));
  j.set("memory_s", obs::Json::number(p.memory_s));
  j.set("launch_s", obs::Json::number(p.launch_s));
  j.set("transfer_s", obs::Json::number(p.transfer_s));
  j.set("kernels", obs::Json::number(static_cast<double>(p.kernels)));
  j.set("transfers", obs::Json::number(static_cast<double>(p.transfers)));
  j.set("bound", obs::Json::string(to_string(p.bound())));
  obs::Json pct = obs::Json::object();
  pct.set("compute", obs::Json::number(sh.compute));
  pct.set("memory", obs::Json::number(sh.memory));
  pct.set("launch", obs::Json::number(sh.launch));
  pct.set("transfer", obs::Json::number(sh.transfer));
  pct.set("dependency_stall", obs::Json::number(sh.stall));
  j.set("pct", std::move(pct));
  return j;
}

}  // namespace

std::string bottleneck_report(const DagProfile& prof,
                              const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << "  machine: " << (prof.machine.empty() ? "?" : prof.machine)
     << "   events: " << prof.events.size() << "   dropped: " << prof.dropped
     << "\n";
  os << std::scientific << std::setprecision(6);
  os << "  makespan: " << prof.window_s << " s   critical path: "
     << prof.critical_s << " s (" << std::fixed << std::setprecision(2)
     << 100.0 * prof.coverage << "% coverage, " << prof.critical_path.size()
     << " steps)\n";
  os << "  serialized work: " << std::scientific << std::setprecision(6)
     << prof.busy_s << " s   overlap efficiency: " << std::fixed
     << std::setprecision(2) << prof.overlap_efficiency << "x\n";
  if (prof.dropped > 0) {
    os << "  WARNING: " << prof.dropped
       << " events dropped from the ring; attribution is partial\n";
  }

  os << "  streams:\n";
  for (const auto& s : prof.streams) {
    os << "    stream " << std::setw(2) << s.stream << ": " << std::setw(6)
       << s.events << " events, " << std::scientific << std::setprecision(3)
       << s.busy_s << " s busy, " << std::fixed << std::setprecision(1)
       << 100.0 * s.utilization << "% utilized\n";
  }

  os << "  critical path enters via:\n";
  for (std::size_t i = 0; i < 6; ++i) {
    if (prof.edge_seconds[i] <= 0.0) continue;
    os << "    " << std::left << std::setw(14)
       << to_string(static_cast<EdgeKind>(i)) << std::right << std::setw(12)
       << std::scientific << std::setprecision(3) << prof.edge_seconds[i]
       << " s  (" << std::fixed << std::setprecision(1)
       << (prof.critical_s > 0
               ? 100.0 * prof.edge_seconds[i] / prof.critical_s
               : 0.0)
       << "%)\n";
  }

  os << std::left << std::setw(24) << "  phase" << std::right << std::setw(12)
     << "total (s)" << std::setw(12) << "crit (s)" << std::setw(8) << "comp%"
     << std::setw(8) << "mem%" << std::setw(8) << "launch%" << std::setw(8)
     << "xfer%" << std::setw(8) << "stall%" << "  bound\n";
  for (const auto& p : prof.phases) phase_row(os, p);
  phase_row(os, run_totals(prof));
  return os.str();
}

obs::Json profile_json(const DagProfile& prof, const Profiler* spans,
                       const std::string& name) {
  obs::Json j = obs::Json::object();
  j.set("schema", obs::Json::string("coe-prof-v1"));
  j.set("name", obs::Json::string(name));
  j.set("machine", obs::Json::string(prof.machine));
  j.set("launch_overhead_s", obs::Json::number(prof.launch_overhead));
  j.set("dropped_events",
        obs::Json::number(static_cast<double>(prof.dropped)));
  j.set("events", obs::Json::number(static_cast<double>(prof.events.size())));
  j.set("origin_s", obs::Json::number(prof.origin));
  j.set("makespan_s", obs::Json::number(prof.makespan));
  j.set("window_s", obs::Json::number(prof.window_s));
  j.set("busy_s", obs::Json::number(prof.busy_s));
  j.set("critical_s", obs::Json::number(prof.critical_s));
  j.set("coverage", obs::Json::number(prof.coverage));
  j.set("overlap_efficiency", obs::Json::number(prof.overlap_efficiency));

  obs::Json edges = obs::Json::object();
  for (std::size_t i = 0; i < 6; ++i) {
    edges.set(to_string(static_cast<EdgeKind>(i)),
              obs::Json::number(prof.edge_seconds[i]));
  }
  j.set("critical_edge_seconds", std::move(edges));
  j.set("critical_steps",
        obs::Json::number(static_cast<double>(prof.critical_path.size())));

  obs::Json streams = obs::Json::array();
  for (const auto& s : prof.streams) {
    obs::Json js = obs::Json::object();
    js.set("stream", obs::Json::number(s.stream));
    js.set("events", obs::Json::number(static_cast<double>(s.events)));
    js.set("busy_s", obs::Json::number(s.busy_s));
    js.set("utilization", obs::Json::number(s.utilization));
    streams.push(std::move(js));
  }
  j.set("streams", std::move(streams));

  obs::Json phases = obs::Json::array();
  for (const auto& p : prof.phases) phases.push(phase_json(p));
  j.set("phases", std::move(phases));

  if (spans && !spans->empty()) {
    j.set("spans", spans->to_json());
  } else {
    j.set("spans", obs::Json());
  }
  return j;
}

std::vector<std::string> critical_path_flow_events(const DagProfile& prof) {
  std::vector<std::string> out;
  // One s->f flow pair per consecutive step; viewers render these as
  // arrows along the binding chain. Nothing else in the trace uses flow
  // ids, so a running counter suffices.
  for (std::size_t i = 0; i + 1 < prof.critical_path.size(); ++i) {
    const auto& a = prof.events[prof.critical_path[i].event];
    const auto& b = prof.events[prof.critical_path[i + 1].event];
    const double a_end_us = (a.t_start + a.duration) * 1e6;
    const double b_start_us = b.t_start * 1e6;
    std::ostringstream s, f;
    s << "{\"name\":\"critical\",\"cat\":\"critical_path\",\"ph\":\"s\","
      << "\"id\":" << i << ",\"ts\":" << obs::Json::number(a_end_us).dump()
      << ",\"pid\":0,\"tid\":" << a.stream << "}";
    f << "{\"name\":\"critical\",\"cat\":\"critical_path\",\"ph\":\"f\","
      << "\"bp\":\"e\",\"id\":" << i
      << ",\"ts\":" << obs::Json::number(b_start_us).dump()
      << ",\"pid\":0,\"tid\":" << b.stream << "}";
    out.push_back(s.str());
    out.push_back(f.str());
  }
  return out;
}

}  // namespace coe::prof
