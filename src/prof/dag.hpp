#pragma once
// coe::prof — critical-path attribution over the stream timeline
// (DESIGN.md section 12). The event-based simulated clock (section 11)
// produces a makespan but does not say *why* it is what it is; this module
// reconstructs the dependency DAG from a stream-tagged trace — program
// order per stream, record/wait event edges, kernel-slot and DMA-engine
// contention edges — and extracts the simulated critical path, per-stream
// utilization, overlap efficiency, and a per-phase bottleneck
// classification (compute / memory / launch / transfer / dependency-stall).
//
// Everything works offline from a TraceBuffer: either the live ring of a
// run or one parsed back from an on-disk TRACE_*.json, which is what the
// coe_report tool consumes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace coe::prof {

/// Which scheduling constraint bound a critical event's start time.
enum class EdgeKind : std::uint8_t {
  Root,          ///< starts at the trace window origin (nothing before it)
  ProgramOrder,  ///< previous event on the same stream
  EventWait,     ///< a wait_event edge from another stream
  KernelSlot,    ///< all concurrent_kernels execution slots were busy
  DmaEngine,     ///< the direction's DMA copy engine was busy
  Dependency,    ///< some other event's completion (e.g. a sync floor)
};

const char* to_string(EdgeKind k);

/// Resource a phase (or the whole run) is bound by.
enum class Category : std::uint8_t {
  Compute,          ///< roofline flop time of compute-bound kernels
  Memory,           ///< roofline byte time of memory-bound kernels
  Launch,           ///< per-kernel launch overhead
  Transfer,         ///< host<->device copies (latency + payload)
  DependencyStall,  ///< stream idle while blocked on waits/slots/engines
};

const char* to_string(Category c);

/// One step of the critical path, earliest-first. `event` indexes the
/// analysis' event list (markers excluded); `via` names the constraint
/// that chained this event to its predecessor.
struct CritStep {
  std::size_t event = 0;
  EdgeKind via = EdgeKind::Root;
};

/// Per-phase attribution. The busy decomposition (compute/memory/launch/
/// transfer) partitions the phase's busy seconds exactly; adding the
/// dependency-stall seconds gives the phase total the percentage
/// breakdown is reported over, so the five shares sum to 100%.
struct PhaseProfile {
  std::string name;
  double busy_s = 0.0;      ///< sum of event durations (serialized time)
  double crit_s = 0.0;      ///< seconds this phase occupies the critical path
  double stall_s = 0.0;     ///< stream idle before this phase's events
  double compute_s = 0.0;
  double memory_s = 0.0;
  double launch_s = 0.0;
  double transfer_s = 0.0;
  std::uint64_t kernels = 0;
  std::uint64_t transfers = 0;

  double total_s() const { return busy_s + stall_s; }
  /// Dominant category — the phase's stated bound.
  Category bound() const;
};

/// Per-stream occupancy over the trace window.
struct StreamProfile {
  int stream = 0;
  double busy_s = 0.0;
  std::uint64_t events = 0;
  double utilization = 0.0;  ///< busy_s / window_s
};

/// The full attribution of one traced run.
struct DagProfile {
  std::string machine;        ///< from the buffer's source metadata
  double launch_overhead = 0.0;
  std::uint64_t dropped = 0;  ///< ring drops — attribution is partial if > 0

  double origin = 0.0;      ///< earliest event start (trace window start)
  double makespan = 0.0;    ///< latest event end
  double window_s = 0.0;    ///< makespan - origin
  double busy_s = 0.0;      ///< serialized sum of all durations
  double critical_s = 0.0;  ///< total duration along the critical path
  /// critical_s / window_s: 1.0 when the chain tiles the window exactly;
  /// less when the trace is truncated or events are missing.
  double coverage = 0.0;
  /// busy_s / window_s: 1.0 = fully serialized, >1 = overlap won time.
  double overlap_efficiency = 0.0;

  std::vector<obs::TraceEvent> events;  ///< markers excluded, issue order
  std::vector<CritStep> critical_path;  ///< earliest-first
  /// Seconds of the critical path entered through each edge kind.
  double edge_seconds[6] = {0, 0, 0, 0, 0, 0};
  std::vector<StreamProfile> streams;
  std::vector<PhaseProfile> phases;     ///< first-use order

  const PhaseProfile* phase(const std::string& name) const;
};

/// Reconstructs the DAG and extracts the critical path and attributions.
/// The kernel launch-overhead split uses the buffer's stamped metadata
/// (ExecContext::set_trace records it; parse_chrome_trace restores it).
DagProfile analyze(const obs::TraceBuffer& buf);

}  // namespace coe::prof
