#pragma once
// Umbrella header for coe::prof — critical-path attribution (dag.hpp),
// hierarchical RAII phase spans (span.hpp), and report/JSON/trace
// exporters (report.hpp). See DESIGN.md section 12.

#include "prof/dag.hpp"      // IWYU pragma: export
#include "prof/report.hpp"   // IWYU pragma: export
#include "prof/span.hpp"     // IWYU pragma: export
