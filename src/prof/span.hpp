#pragma once
// Hierarchical RAII phase spans. A prof::Scope marks a region of driver
// code: it tags the ExecContext's timeline phase with its hierarchical
// path (so trace events attribute to it), measures real wall time with a
// steady clock, and accumulates the simulated-clock delta over the same
// region. Nested scopes form a profile tree whose report compares each
// region's share of wall time against its share of simulated time — the
// per-region model-skew that says where the cost model disagrees with the
// host it actually ran on.
//
// A Scope constructed with a null Profiler is a complete no-op (it does
// not even touch the context's phase), so instrumented drivers behave
// identically when profiling is off.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace coe::core {
class ExecContext;
}

namespace coe::prof {

/// Tree of instrumented regions. Not thread-safe; one per driver thread.
class Profiler {
 public:
  struct Node {
    std::string name;
    std::string path;  ///< "/"-joined ancestry, used as the timeline phase
    std::uint64_t calls = 0;
    double wall_s = 0.0;  ///< measured host seconds inside the region
    double sim_s = 0.0;   ///< simulated seconds accrued inside the region
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;

    Node* child(const std::string& name);
  };

  Profiler() { current_ = &root_; }

  /// Descends into (creating if new) the named child of the current node.
  Node* enter(const std::string& name);
  /// Accumulates a completed span and pops back to the node's parent.
  void leave(Node* n, double wall_s, double sim_s);

  const Node& root() const { return root_; }
  Node* current() { return current_; }
  bool empty() const { return root_.children.empty(); }

  /// Fixed-width per-region table: calls, wall, sim, and the wall-share vs
  /// sim-share skew.
  std::string report(const std::string& title) const;
  /// Tree as JSON ({name, calls, wall_s, sim_s, children:[...]}).
  obs::Json to_json() const;

 private:
  Node root_;
  Node* current_ = nullptr;
};

/// RAII span. `profiler == nullptr` disables it entirely; `ctx` may also
/// be null (wall time only — used by benches without a simulated context).
/// A name containing '/' opens one nested level per segment ("guard/scrub"
/// groups every detector under a shared "guard" node), with the region's
/// time attributed to every level of the chain.
class Scope {
 public:
  Scope(Profiler* profiler, core::ExecContext* ctx, const std::string& name);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* profiler_ = nullptr;
  core::ExecContext* ctx_ = nullptr;
  Profiler::Node* node_ = nullptr;
  int depth_ = 0;  ///< levels entered ('/'-separated name segments)
  std::string saved_phase_;
  double sim0_ = 0.0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace coe::prof
