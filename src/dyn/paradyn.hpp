#pragma once
// ParaDyn's compiler experiment in miniature (Section 4.8 / Figure 6).
// ParaDyn "contains many small loops" whose intermediates stay cache
// resident on CPUs but thrash GPU global memory. The IBM XL work added:
//
//  * SLNSP (Single Level No Synchronization Parallelism): each thread runs
//    one iteration of *every* loop, so data flow optimization works across
//    loop bodies without explicit fusion -- here the Fused variant.
//  * Dead-store elimination driven by OpenMP private-clause information --
//    here the FusedDse variant, which drops stores of intermediates no
//    later loop reads.
//
// All three variants compute identical results; they differ in kernel
// count and global load/store traffic, which we count exactly.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/exec.hpp"

namespace coe::dyn {

enum class LoopVariant {
  SmallLoops,  ///< seven separate kernels with array intermediates
  Fused,       ///< one SLNSP kernel; conservative stores kept
  FusedDse,    ///< one kernel + dead-store elimination
};

const char* to_string(LoopVariant v);

/// Global memory traffic per element per step (counted, not modeled).
struct TrafficCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t kernels = 0;

  std::uint64_t total() const { return loads + stores; }
};

/// Element state for the explicit-dynamics update chain.
struct ElementArrays {
  std::vector<double> b;      ///< strain-displacement factor
  std::vector<double> v;      ///< velocity
  std::vector<double> e;      ///< strain
  std::vector<double> m;      ///< mass
  // Intermediates (live in memory for SmallLoops; register-allocated in
  // the fused variants unless a conservative store keeps them).
  std::vector<double> gradv, s, q, f, work;

  explicit ElementArrays(std::size_t n, std::uint64_t seed = 42);
  std::size_t size() const { return v.size(); }
};

struct DynConfig {
  double dt = 1e-3;
  double stiffness = 2.0;
  double viscosity = 0.1;
  double damping = 0.05;
};

/// Runs `steps` of the element-update chain; returns exact traffic counts.
/// The checksum over (v, e) lets tests confirm variant equivalence.
TrafficCounts run_update(core::ExecContext& ctx, ElementArrays& a,
                         std::size_t steps, LoopVariant variant,
                         const DynConfig& cfg = DynConfig{});

/// Checksum over the externally visible state.
double state_checksum(const ElementArrays& a);

}  // namespace coe::dyn
