#include "dyn/paradyn.hpp"

#include <cmath>

#include "core/rng.hpp"

namespace coe::dyn {

const char* to_string(LoopVariant v) {
  switch (v) {
    case LoopVariant::SmallLoops: return "small-loops";
    case LoopVariant::Fused: return "SLNSP-fused";
    case LoopVariant::FusedDse: return "SLNSP-fused+DSE";
  }
  return "?";
}

ElementArrays::ElementArrays(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  b.resize(n);
  v.resize(n);
  e.assign(n, 0.0);
  m.resize(n);
  gradv.assign(n, 0.0);
  s.assign(n, 0.0);
  q.assign(n, 0.0);
  f.assign(n, 0.0);
  work.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(0.5, 1.5);
    v[i] = rng.uniform(-1.0, 1.0);
    m[i] = rng.uniform(0.8, 1.2);
  }
}

double state_checksum(const ElementArrays& a) {
  double c = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) c += a.v[i] + 2.0 * a.e[i];
  return c;
}

TrafficCounts run_update(core::ExecContext& ctx, ElementArrays& a,
                         std::size_t steps, LoopVariant variant,
                         const DynConfig& cfg) {
  TrafficCounts tc;
  const std::size_t n = a.size();
  const double dn = static_cast<double>(n);

  for (std::size_t step = 0; step < steps; ++step) {
    switch (variant) {
      case LoopVariant::SmallLoops: {
        // Seven kernels; every intermediate round-trips through memory.
        // Per-element traffic: loads 12, stores 7.
        ctx.forall(n, {2.0, 24.0}, [&](std::size_t i) {  // loads b,v
          a.gradv[i] = a.b[i] * a.v[i];
        });
        ctx.forall(n, {2.0, 24.0}, [&](std::size_t i) {  // loads e,gradv
          a.e[i] += cfg.dt * a.gradv[i];
        });
        ctx.forall(n, {3.0, 24.0}, [&](std::size_t i) {  // loads e,gradv
          a.s[i] = cfg.stiffness * a.e[i] + cfg.damping * a.gradv[i];
        });
        ctx.forall(n, {2.0, 16.0}, [&](std::size_t i) {  // loads gradv
          a.q[i] = cfg.viscosity * std::abs(a.gradv[i]);
        });
        ctx.forall(n, {1.0, 24.0}, [&](std::size_t i) {  // loads s,q
          a.f[i] = -(a.s[i] + a.q[i]);
        });
        ctx.forall(n, {3.0, 32.0}, [&](std::size_t i) {  // loads v,f,m
          a.v[i] += cfg.dt * a.f[i] / a.m[i];
        });
        ctx.forall(n, {1.0, 24.0}, [&](std::size_t i) {  // loads f,v
          a.work[i] = a.f[i] * a.v[i];
        });
        tc.loads += 12 * n;
        tc.stores += 7 * n;
        tc.kernels += 7;
        break;
      }
      case LoopVariant::Fused:
      case LoopVariant::FusedDse: {
        const bool dse = variant == LoopVariant::FusedDse;
        // One SLNSP kernel: intermediates live in registers, but every
        // array the source wrote is still stored. DSE (driven by the
        // private-clause information) proves `q` and `work` dead and
        // drops those stores; gradv/s/f stay (read by later phases of the
        // real application).
        // Per-element traffic: loads 4 (b, v, e, m); stores 7 or 5.
        const double store_bytes = dse ? 5.0 * 8.0 : 7.0 * 8.0;
        ctx.forall(n, {12.0, 4.0 * 8.0 + store_bytes}, [&](std::size_t i) {
          const double gradv = a.b[i] * a.v[i];
          const double e = a.e[i] + cfg.dt * gradv;
          const double s = cfg.stiffness * e + cfg.damping * gradv;
          const double q = cfg.viscosity * std::abs(gradv);
          const double f = -(s + q);
          const double v = a.v[i] + cfg.dt * f / a.m[i];
          a.e[i] = e;
          a.v[i] = v;
          a.gradv[i] = gradv;
          a.s[i] = s;
          a.f[i] = f;
          if (!dse) {
            a.q[i] = q;
            a.work[i] = f * v;
          }
        });
        tc.loads += 4 * n;
        tc.stores += (dse ? 5 : 7) * n;
        tc.kernels += 1;
        break;
      }
    }
  }
  (void)dn;
  return tc;
}

}  // namespace coe::dyn
