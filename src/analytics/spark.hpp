#pragma once
// Spark-stage cost simulator for the SparkPlug LDA runs of Figure 2. The
// paper's profiling found three bottlenecks -- JVM overheads (GC, lock
// contention, serialization), the shuffle (all-to-all), and the aggregate
// (all-to-one) -- and three fixes: the optimized JVM (OpenJ9), an adaptive
// shuffle, and scalable all-to-one operations. Each stage is costed from
// the real LDA iteration's measured compute and sufficient-statistics
// sizes.

#include <string>
#include <vector>

#include "core/machine.hpp"

namespace coe::analytics {

/// Which software stack the job runs on.
struct SparkStack {
  std::string name;
  double gc_overhead = 0.25;       ///< fraction of compute lost to GC/locks
  double serde_bytes_per_sec = 0.8e9;  ///< serialization throughput
  bool adaptive_shuffle = false;   ///< memory-optimized shuffle [20, 21]
  bool tree_aggregate = false;     ///< scalable all-to-one
};

SparkStack default_stack();
SparkStack optimized_stack();

/// One LDA iteration's inputs to the cost model.
struct LdaIterationProfile {
  double compute_flops_per_node = 0.0;  ///< E-step work per executor
  double shuffle_bytes_per_pair = 0.0;  ///< stats exchanged between nodes
  double aggregate_bytes_per_node = 0.0;///< stats gathered to the driver
};

/// Per-phase times for one iteration on `nodes` executors.
struct StageBreakdown {
  double compute = 0.0;
  double jvm = 0.0;       ///< GC + lock contention
  double serde = 0.0;     ///< serialization/deserialization
  double shuffle = 0.0;
  double aggregate = 0.0;

  double total() const {
    return compute + jvm + serde + shuffle + aggregate;
  }
};

StageBreakdown cost_iteration(const LdaIterationProfile& prof,
                              const SparkStack& stack,
                              const hsim::MachineModel& node,
                              const hsim::ClusterModel& net, int nodes);

}  // namespace coe::analytics
