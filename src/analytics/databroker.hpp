#pragma once
// The IBM Data Broker substitute (Section 4.4): "The Data Broker provides
// common shared, in-memory storage" [25], explored as a Spark adapter to
// scale topic modeling further. A namespaced key-value store with
// byte-level accounting so the Spark cost model can compare
// broker-mediated exchange against the shuffle path.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/machine.hpp"

namespace coe::analytics {

class DataBroker {
 public:
  struct Stats {
    std::size_t puts = 0;
    std::size_t gets = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    double bytes_in = 0.0;
    double bytes_out = 0.0;
    std::size_t live_objects = 0;
    double live_bytes = 0.0;
  };

  /// Creates (or opens) a namespace; returns false if it already existed.
  bool create_namespace(const std::string& ns);
  bool drop_namespace(const std::string& ns);
  std::vector<std::string> namespaces() const;

  /// Stores a value (overwrites). Returns false for an unknown namespace.
  bool put(const std::string& ns, const std::string& key,
           std::vector<double> value);
  /// Reads a value; nullopt on miss.
  std::optional<std::vector<double>> get(const std::string& ns,
                                         const std::string& key);
  bool erase(const std::string& ns, const std::string& key);

  const Stats& stats() const { return stats_; }

 private:
  std::map<std::string, std::map<std::string, std::vector<double>>> spaces_;
  Stats stats_;
};

/// Cost of exchanging per-iteration LDA statistics through the broker:
/// every worker puts its slice once and gets the merged model once, so the
/// wire volume is 2 * bytes_per_node * nodes regardless of pair count --
/// versus the O(nodes^2) pairwise shuffle.
double broker_exchange_time(double bytes_per_node,
                            const hsim::ClusterModel& net, int nodes);

}  // namespace coe::analytics
