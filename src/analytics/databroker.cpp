#include "analytics/databroker.hpp"

#include <algorithm>
#include <cmath>

namespace coe::analytics {

bool DataBroker::create_namespace(const std::string& ns) {
  return spaces_.try_emplace(ns).second;
}

bool DataBroker::drop_namespace(const std::string& ns) {
  auto it = spaces_.find(ns);
  if (it == spaces_.end()) return false;
  for (const auto& [k, v] : it->second) {
    --stats_.live_objects;
    stats_.live_bytes -= static_cast<double>(v.size()) * 8.0;
  }
  spaces_.erase(it);
  return true;
}

std::vector<std::string> DataBroker::namespaces() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : spaces_) out.push_back(k);
  return out;
}

bool DataBroker::put(const std::string& ns, const std::string& key,
                     std::vector<double> value) {
  auto it = spaces_.find(ns);
  if (it == spaces_.end()) return false;
  ++stats_.puts;
  const double bytes = static_cast<double>(value.size()) * 8.0;
  stats_.bytes_in += bytes;
  auto old = it->second.find(key);
  if (old != it->second.end()) {
    stats_.live_bytes -= static_cast<double>(old->second.size()) * 8.0;
    old->second = std::move(value);
  } else {
    ++stats_.live_objects;
    it->second.emplace(key, std::move(value));
  }
  stats_.live_bytes += bytes;
  return true;
}

std::optional<std::vector<double>> DataBroker::get(const std::string& ns,
                                                   const std::string& key) {
  ++stats_.gets;
  auto it = spaces_.find(ns);
  if (it == spaces_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  auto vit = it->second.find(key);
  if (vit == it->second.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.bytes_out += static_cast<double>(vit->second.size()) * 8.0;
  return vit->second;
}

bool DataBroker::erase(const std::string& ns, const std::string& key) {
  auto it = spaces_.find(ns);
  if (it == spaces_.end()) return false;
  auto vit = it->second.find(key);
  if (vit == it->second.end()) return false;
  --stats_.live_objects;
  stats_.live_bytes -= static_cast<double>(vit->second.size()) * 8.0;
  it->second.erase(vit);
  return true;
}

double broker_exchange_time(double bytes_per_node,
                            const hsim::ClusterModel& net, int nodes) {
  if (nodes <= 1) return 0.0;
  // Every node writes its slice and reads the merged result; the broker's
  // aggregate ingest bandwidth is the full bisection, so the exchange is
  // two bandwidth-bound phases plus per-node latencies.
  const double per_phase =
      net.alpha + net.beta * bytes_per_node;
  return 2.0 * per_phase + net.alpha * std::log2(std::max(nodes, 2));
}

}  // namespace coe::analytics
