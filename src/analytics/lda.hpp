#pragma once
// SparkPlug's core algorithm, reimplemented for real: variational EM for
// Latent Dirichlet Allocation (Section 4.4). The Wikipedia corpus is
// unavailable, so a Zipf/Dirichlet synthetic corpus generator with
// controllable dictionary and topic counts stands in (DESIGN.md section
// 2); the inference itself is the genuine Blei-style mean-field update.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace coe::analytics {

/// Bag-of-words document: (word id, count) pairs.
struct Document {
  std::vector<std::uint32_t> words;
  std::vector<double> counts;

  double total() const {
    double t = 0.0;
    for (double c : counts) t += c;
    return t;
  }
};

struct Corpus {
  std::size_t vocab = 0;
  std::vector<Document> docs;
  /// Ground-truth topics (topics x vocab), when synthetic.
  std::vector<double> true_beta;
  std::size_t true_topics = 0;
};

struct CorpusConfig {
  std::size_t vocab = 500;
  std::size_t topics = 5;
  std::size_t docs = 200;
  std::size_t words_per_doc = 100;
  double doc_alpha = 0.2;     ///< Dirichlet concentration of doc mixtures
  double topic_eta = 0.05;    ///< sparsity of topic-word distributions
  double zipf_s = 1.1;        ///< Zipf exponent of the base measure
  std::uint64_t seed = 1;
};

Corpus generate_corpus(const CorpusConfig& cfg);

/// Digamma function (asymptotic series with recurrence shift).
double digamma(double x);

struct LdaConfig {
  std::size_t topics = 5;
  double alpha = 0.1;
  double eta = 0.01;
  std::size_t e_step_iters = 20;
  std::uint64_t seed = 3;
};

/// Mean-field variational EM.
class LdaModel {
 public:
  LdaModel(std::size_t vocab, const LdaConfig& cfg);

  std::size_t topics() const { return cfg_.topics; }
  std::size_t vocab() const { return vocab_; }
  /// beta(k, w): topic-word probabilities (rows sum to 1).
  double beta(std::size_t k, std::size_t w) const {
    return beta_[k * vocab_ + w];
  }
  std::span<const double> beta_row(std::size_t k) const {
    return std::span<const double>(beta_).subspan(k * vocab_, vocab_);
  }

  /// One full EM iteration over the corpus; returns the (training-set)
  /// per-word perplexity after the update.
  double em_iteration(const Corpus& corpus);

  /// Distributed-style split of the EM iteration: workers accumulate
  /// sufficient statistics over their document shards (additively), then
  /// one m_step normalizes the merged statistics into the new topics.
  /// Shard-order independent: accumulate over any partition and merge.
  std::vector<double> make_stats() const {
    return std::vector<double>(cfg_.topics * vocab_, 0.0);
  }
  void accumulate(const Corpus& corpus, std::size_t doc_begin,
                  std::size_t doc_end, std::span<double> stats) const;
  void m_step(std::span<const double> merged_stats);

  /// Runs `iters` EM iterations; returns the perplexity trace.
  std::vector<double> train(const Corpus& corpus, std::size_t iters);

  /// Per-word perplexity of the corpus under the current model using
  /// variationally inferred document mixtures.
  double perplexity(const Corpus& corpus) const;

  /// E-step for one document: returns the variational gamma (size K).
  std::vector<double> infer_document(const Document& doc) const;

  /// Size in bytes of the per-iteration sufficient statistics each worker
  /// must shuffle (K x V doubles) -- input to the Spark cost model.
  double sufficient_stats_bytes() const {
    return static_cast<double>(cfg_.topics * vocab_) * 8.0;
  }

 private:
  std::size_t vocab_;
  LdaConfig cfg_;
  std::vector<double> beta_;  ///< topics x vocab
};

/// Cosine similarity between best-matched learned and true topics
/// (greedy matching); 1.0 = perfect recovery.
double topic_recovery_score(const LdaModel& model, const Corpus& corpus);

}  // namespace coe::analytics
