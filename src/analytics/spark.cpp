#include "analytics/spark.hpp"

#include <cmath>

namespace coe::analytics {

SparkStack default_stack() {
  SparkStack s;
  s.name = "default (HotSpot + stock Spark)";
  s.gc_overhead = 0.30;
  s.serde_bytes_per_sec = 0.8e9;
  s.adaptive_shuffle = false;
  s.tree_aggregate = false;
  return s;
}

SparkStack optimized_stack() {
  SparkStack s;
  s.name = "optimized (OpenJ9 + adaptive shuffle)";
  s.gc_overhead = 0.08;        // improved GC and lock contention schemes
  s.serde_bytes_per_sec = 2.4e9;  // reduced ser/deser overheads
  s.adaptive_shuffle = true;
  s.tree_aggregate = true;
  return s;
}

StageBreakdown cost_iteration(const LdaIterationProfile& prof,
                              const SparkStack& stack,
                              const hsim::MachineModel& node,
                              const hsim::ClusterModel& net, int nodes) {
  StageBreakdown b;
  b.compute = prof.compute_flops_per_node / node.flops();
  b.jvm = stack.gc_overhead * b.compute;

  const double shuffled_total =
      prof.shuffle_bytes_per_pair * static_cast<double>(nodes - 1);
  b.serde = 2.0 * shuffled_total / stack.serde_bytes_per_sec;

  if (stack.adaptive_shuffle) {
    // Memory-optimized shuffle: aggregation before exchange roughly
    // halves the data and pipelines the rounds (log p latency).
    const double bytes = 0.5 * prof.shuffle_bytes_per_pair;
    b.shuffle = std::log2(std::max(nodes, 2)) * net.alpha +
                net.beta * bytes * static_cast<double>(nodes - 1);
    b.serde *= 0.5;
  } else {
    b.shuffle = net.alltoall(
        static_cast<std::size_t>(prof.shuffle_bytes_per_pair), nodes);
  }

  if (stack.tree_aggregate) {
    // Tree reduction: log p rounds of one node's worth of data.
    b.aggregate = std::log2(std::max(nodes, 2)) *
                  (net.alpha + net.beta * prof.aggregate_bytes_per_node);
  } else {
    b.aggregate = net.gather(
        static_cast<std::size_t>(prof.aggregate_bytes_per_node), nodes);
  }
  return b;
}

}  // namespace coe::analytics
