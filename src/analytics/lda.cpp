#include "analytics/lda.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace coe::analytics {

double digamma(double x) {
  // Shift into the asymptotic regime, then the standard series.
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

Corpus generate_corpus(const CorpusConfig& cfg) {
  core::Rng rng(cfg.seed);
  Corpus corpus;
  corpus.vocab = cfg.vocab;
  corpus.true_topics = cfg.topics;

  // Zipf base measure over the vocabulary.
  std::vector<double> base(cfg.vocab);
  double zsum = 0.0;
  for (std::size_t w = 0; w < cfg.vocab; ++w) {
    base[w] = 1.0 / std::pow(static_cast<double>(w + 1), cfg.zipf_s);
    zsum += base[w];
  }
  for (auto& b : base) b /= zsum;

  // Topic-word distributions: Dirichlet(eta * vocab * base) -- sparse,
  // Zipf-flavored topics.
  corpus.true_beta.assign(cfg.topics * cfg.vocab, 0.0);
  for (std::size_t k = 0; k < cfg.topics; ++k) {
    double rowsum = 0.0;
    for (std::size_t w = 0; w < cfg.vocab; ++w) {
      const double shape =
          cfg.topic_eta * static_cast<double>(cfg.vocab) * base[w];
      const double g = rng.gamma(std::max(shape, 1e-3), 1.0);
      corpus.true_beta[k * cfg.vocab + w] = g;
      rowsum += g;
    }
    for (std::size_t w = 0; w < cfg.vocab; ++w) {
      corpus.true_beta[k * cfg.vocab + w] /= rowsum;
    }
  }

  // Documents.
  corpus.docs.resize(cfg.docs);
  std::vector<double> theta(cfg.topics);
  std::vector<double> word_cdf(cfg.vocab);
  for (auto& doc : corpus.docs) {
    // theta ~ Dirichlet(alpha).
    double tsum = 0.0;
    for (auto& t : theta) {
      t = rng.gamma(cfg.doc_alpha, 1.0);
      tsum += t;
    }
    for (auto& t : theta) t /= tsum;
    // Mixture word distribution for this document.
    for (std::size_t w = 0; w < cfg.vocab; ++w) {
      double p = 0.0;
      for (std::size_t k = 0; k < cfg.topics; ++k) {
        p += theta[k] * corpus.true_beta[k * cfg.vocab + w];
      }
      word_cdf[w] = p + (w > 0 ? word_cdf[w - 1] : 0.0);
    }
    std::map<std::uint32_t, double> bag;
    for (std::size_t n = 0; n < cfg.words_per_doc; ++n) {
      const double u = rng.uniform() * word_cdf.back();
      const auto it =
          std::lower_bound(word_cdf.begin(), word_cdf.end(), u);
      bag[static_cast<std::uint32_t>(it - word_cdf.begin())] += 1.0;
    }
    for (const auto& [w, c] : bag) {
      doc.words.push_back(w);
      doc.counts.push_back(c);
    }
  }
  return corpus;
}

LdaModel::LdaModel(std::size_t vocab, const LdaConfig& cfg)
    : vocab_(vocab), cfg_(cfg), beta_(cfg.topics * vocab) {
  core::Rng rng(cfg.seed);
  for (std::size_t k = 0; k < cfg_.topics; ++k) {
    double sum = 0.0;
    for (std::size_t w = 0; w < vocab_; ++w) {
      beta_[k * vocab_ + w] = rng.uniform(0.5, 1.5);
      sum += beta_[k * vocab_ + w];
    }
    for (std::size_t w = 0; w < vocab_; ++w) beta_[k * vocab_ + w] /= sum;
  }
}

std::vector<double> LdaModel::infer_document(const Document& doc) const {
  const std::size_t k = cfg_.topics;
  std::vector<double> gamma(k, cfg_.alpha + doc.total() /
                                                static_cast<double>(k));
  std::vector<double> phi(k);
  for (std::size_t it = 0; it < cfg_.e_step_iters; ++it) {
    std::vector<double> gnew(k, cfg_.alpha);
    std::vector<double> eg(k);
    for (std::size_t t = 0; t < k; ++t) eg[t] = std::exp(digamma(gamma[t]));
    for (std::size_t n = 0; n < doc.words.size(); ++n) {
      const std::uint32_t w = doc.words[n];
      double norm = 0.0;
      for (std::size_t t = 0; t < k; ++t) {
        phi[t] = beta_[t * vocab_ + w] * eg[t];
        norm += phi[t];
      }
      if (norm <= 0.0) continue;
      for (std::size_t t = 0; t < k; ++t) {
        gnew[t] += doc.counts[n] * phi[t] / norm;
      }
    }
    gamma = std::move(gnew);
  }
  return gamma;
}

void LdaModel::accumulate(const Corpus& corpus, std::size_t doc_begin,
                          std::size_t doc_end,
                          std::span<double> stats) const {
  const std::size_t k = cfg_.topics;
  std::vector<double> phi(k);
  for (std::size_t d = doc_begin; d < doc_end && d < corpus.docs.size();
       ++d) {
    const auto& doc = corpus.docs[d];
    auto gamma = infer_document(doc);
    std::vector<double> eg(k);
    for (std::size_t t = 0; t < k; ++t) eg[t] = std::exp(digamma(gamma[t]));
    for (std::size_t n = 0; n < doc.words.size(); ++n) {
      const std::uint32_t w = doc.words[n];
      double norm = 0.0;
      for (std::size_t t = 0; t < k; ++t) {
        phi[t] = beta_[t * vocab_ + w] * eg[t];
        norm += phi[t];
      }
      if (norm <= 0.0) continue;
      for (std::size_t t = 0; t < k; ++t) {
        stats[t * vocab_ + w] += doc.counts[n] * phi[t] / norm;
      }
    }
  }
}

void LdaModel::m_step(std::span<const double> merged_stats) {
  const std::size_t k = cfg_.topics;
  for (std::size_t t = 0; t < k; ++t) {
    double sum = 0.0;
    for (std::size_t w = 0; w < vocab_; ++w) {
      sum += merged_stats[t * vocab_ + w] + cfg_.eta;
    }
    for (std::size_t w = 0; w < vocab_; ++w) {
      beta_[t * vocab_ + w] = (merged_stats[t * vocab_ + w] + cfg_.eta) / sum;
    }
  }
}

double LdaModel::em_iteration(const Corpus& corpus) {
  auto stats = make_stats();
  accumulate(corpus, 0, corpus.docs.size(), stats);
  m_step(stats);
  return perplexity(corpus);
}

std::vector<double> LdaModel::train(const Corpus& corpus,
                                    std::size_t iters) {
  std::vector<double> trace;
  trace.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    trace.push_back(em_iteration(corpus));
  }
  return trace;
}

double LdaModel::perplexity(const Corpus& corpus) const {
  const std::size_t k = cfg_.topics;
  double loglik = 0.0, nwords = 0.0;
  for (const auto& doc : corpus.docs) {
    auto gamma = infer_document(doc);
    double gsum = 0.0;
    for (double g : gamma) gsum += g;
    for (std::size_t n = 0; n < doc.words.size(); ++n) {
      const std::uint32_t w = doc.words[n];
      double p = 0.0;
      for (std::size_t t = 0; t < k; ++t) {
        p += (gamma[t] / gsum) * beta_[t * vocab_ + w];
      }
      loglik += doc.counts[n] * std::log(std::max(p, 1e-300));
      nwords += doc.counts[n];
    }
  }
  return std::exp(-loglik / nwords);
}

double topic_recovery_score(const LdaModel& model, const Corpus& corpus) {
  const std::size_t kt = corpus.true_topics;
  const std::size_t km = model.topics();
  const std::size_t v = corpus.vocab;
  auto cosine = [&](std::size_t truek, std::size_t modelk) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t w = 0; w < v; ++w) {
      const double a = corpus.true_beta[truek * v + w];
      const double b = model.beta(modelk, w);
      dot += a * b;
      na += a * a;
      nb += b * b;
    }
    return dot / std::sqrt(na * nb);
  };
  // Greedy best matching.
  std::vector<bool> used(km, false);
  double total = 0.0;
  for (std::size_t t = 0; t < kt; ++t) {
    double best = -1.0;
    std::size_t best_m = 0;
    for (std::size_t m = 0; m < km; ++m) {
      if (used[m]) continue;
      const double c = cosine(t, m);
      if (c > best) {
        best = c;
        best_m = m;
      }
    }
    used[best_m] = true;
    total += best;
  }
  return total / static_cast<double>(kt);
}

}  // namespace coe::analytics
