#include "resil/fault.hpp"

#include <memory>

namespace coe::resil {

std::function<bool(int, std::size_t)> make_rank_fault_hook(
    int ranks, double mean_ops, std::uint64_t seed, double max_ops) {
  // One independent draw per rank (decorrelated by rank index), fixed at
  // hook-construction time so the plan is reproducible.
  auto doom = std::make_shared<std::vector<double>>();
  doom->reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    core::Rng rng(seed + 0x9e3779b97f4a7c15ull * std::uint64_t(r + 1));
    const double d = rng.exponential(1.0 / mean_ops);
    doom->push_back(d <= max_ops ? d : -1.0);
  }
  return [doom](int rank, std::size_t ops) {
    const double d = (*doom)[static_cast<std::size_t>(rank)];
    return d >= 0.0 && static_cast<double>(ops) >= d;
  };
}

}  // namespace coe::resil
