#pragma once
// Failure-aware execution driver: runs a step loop under an injected
// exponential fault process, checkpointing on a simulated-time interval and
// re-executing from the last checkpoint after each fault. The default
// interval is the Young/Daly optimum sqrt(2 * C * MTBF) computed from the
// modeled checkpoint cost C, so the machine model closes the loop: slower
// links -> dearer checkpoints -> sparser checkpointing -> more re-executed
// work per fault.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/exec.hpp"
#include "obs/metrics.hpp"
#include "resil/checkpoint.hpp"
#include "resil/fault.hpp"

namespace coe::resil {

struct ResilienceConfig {
  double mtbf = 0.0;                 ///< simulated s between faults (0: none)
  double checkpoint_interval = 0.0;  ///< simulated s (<=0: Young/Daly)
  std::uint64_t seed = 1;
  std::size_t max_faults = 100000;   ///< abort the run past this many
  /// Optional telemetry sink (not owned; must outlive run_resilient()).
  /// Publishes "resil.faults"/".checkpoints"/".checkpoint_bytes"/
  /// ".steps_replayed" counters and "resil.wasted_s"/".checkpoint_s"
  /// accumulators when the run finishes.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ResilienceReport {
  bool completed = false;
  std::size_t steps = 0;           ///< distinct steps of useful work
  std::size_t steps_executed = 0;  ///< total executions incl. replay
  std::size_t steps_replayed = 0;
  std::size_t faults = 0;
  std::size_t checkpoints = 0;
  double interval = 0.0;         ///< checkpoint interval actually used
  double checkpoint_cost = 0.0;  ///< modeled s per checkpoint write
  double total_time = 0.0;       ///< simulated s for the whole run
  double wasted_time = 0.0;      ///< simulated s of discarded work
  double checkpoint_time = 0.0;  ///< simulated s spent writing checkpoints

  double overhead() const {
    const double useful = total_time - wasted_time - checkpoint_time;
    return useful > 0.0 ? (total_time - useful) / useful : 0.0;
  }
};

/// First-order Young/Daly optimal checkpoint interval for checkpoint cost
/// `c` and mean time between failures `mtbf` (both in the same time unit).
double young_daly_interval(double mtbf, double c);

/// Modeled cost (seconds on ctx's machine) of writing one checkpoint of
/// `app`: the device drain of its serialized state.
double modeled_checkpoint_cost(const Checkpointable& app,
                               const core::ExecContext& ctx);

/// Executes do_step(0..steps-1) on `app` under cfg's fault process. Faults
/// are detected against ctx's simulated clock; on each fault the driver
/// restores the last checkpoint and replays. The final state of `app` is
/// bitwise identical to a fault-free run (enforced by tests); the price of
/// the faults is visible in ctx's simulated time and the report. An
/// external `store` may be supplied to inspect checkpoints afterwards.
ResilienceReport run_resilient(Checkpointable& app, core::ExecContext& ctx,
                               std::size_t steps,
                               const std::function<void(std::size_t)>& do_step,
                               const ResilienceConfig& cfg,
                               CheckpointStore* store = nullptr);

}  // namespace coe::resil
