#pragma once
// Failure-aware execution driver: runs a step loop under an injected
// exponential fault process, checkpointing on a simulated-time interval and
// re-executing from the last checkpoint after each fault. The default
// interval is the Young/Daly optimum sqrt(2 * C * MTBF) computed from the
// modeled checkpoint cost C, so the machine model closes the loop: slower
// links -> dearer checkpoints -> sparser checkpointing -> more re-executed
// work per fault.
//
// Silent-error containment (coe::guard integration): an optional verify
// hook validates the state before each step consumes it, before every
// checkpoint is written (a checkpoint must never capture unverified
// state), and after the final step (a run must never report success with a
// corrupt answer). A failed verification — a tripped detector — triggers
// the same rollback-and-recompute as a fail-stop fault, and the report
// attributes every injected corruption as contained (discarded by a
// rollback) or escaped (accepted by a passing verification): the measured
// escape rate of DESIGN.md §13.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/exec.hpp"
#include "obs/metrics.hpp"
#include "resil/checkpoint.hpp"
#include "resil/fault.hpp"

namespace coe::resil {

struct ResilienceConfig {
  double mtbf = 0.0;                 ///< simulated s between faults (0: none)
  double checkpoint_interval = 0.0;  ///< simulated s (<=0: Young/Daly)
  std::uint64_t seed = 1;
  std::size_t max_faults = 100000;   ///< abort the run past this many
  /// Optional telemetry sink (not owned; must outlive run_resilient()).
  /// Publishes "resil.faults"/".checkpoints"/".checkpoint_bytes"/
  /// ".steps_replayed"/".detections"/".rollbacks"/".escapes" counters and
  /// "resil.wasted_s"/".checkpoint_s"/".verify_s" accumulators when the
  /// run finishes.
  obs::MetricsRegistry* metrics = nullptr;

  /// Silent-error verification hook, called with the index of the next
  /// step to execute. Invoked every `verify_every` steps before the step
  /// consumes the state, immediately before each checkpoint write, and
  /// once after the final step. Return false to report detected
  /// corruption: the driver restores the newest intact checkpoint and
  /// recomputes forward. Bind guard::SdcInjector::poll +
  /// guard::DetectorSet::check_all here (see guard/guard.hpp).
  std::function<bool(std::size_t)> verify_hook;
  std::size_t verify_every = 1;  ///< steps between verifications (>= 1)
  /// Called with the restored step after every restore (fail-stop or
  /// detection), so reference-carrying detectors can re-arm against the
  /// restored state.
  std::function<void(std::size_t)> on_rollback;
  /// Monotone count of corruptions injected so far (bind
  /// guard::SdcInjector::injected). When set, the report classifies every
  /// corruption as contained or escaped.
  std::function<std::size_t()> corruption_count;
  std::size_t max_rollbacks = 100000;  ///< abort past this many detections
};

struct ResilienceReport {
  bool completed = false;
  std::size_t steps = 0;           ///< distinct steps of useful work
  std::size_t steps_executed = 0;  ///< total executions incl. replay
  std::size_t steps_replayed = 0;
  std::size_t faults = 0;
  std::size_t checkpoints = 0;
  double interval = 0.0;         ///< checkpoint interval actually used
  double checkpoint_cost = 0.0;  ///< modeled s per checkpoint write
  double total_time = 0.0;       ///< simulated s for the whole run
  double wasted_time = 0.0;      ///< simulated s of discarded work
  double checkpoint_time = 0.0;  ///< simulated s spent writing checkpoints

  // Silent-error containment (populated when verify_hook is set).
  std::size_t verifications = 0;
  std::size_t detections = 0;  ///< verifications that tripped
  std::size_t rollbacks = 0;   ///< restores triggered by detections
  std::size_t corruptions_seen = 0;       ///< injected (corruption_count)
  std::size_t corruptions_contained = 0;  ///< discarded by a rollback
  std::size_t corruptions_escaped = 0;    ///< accepted by a passing verify
  std::size_t checkpoint_aborts = 0;  ///< writes abandoned to a mid-write fault
  std::size_t checkpoint_crc_failures = 0;  ///< generations refused at restore
  double verify_time = 0.0;  ///< simulated s inside the verify hook

  /// Fraction of injected corruptions the guards failed to contain.
  double escape_rate() const {
    return corruptions_seen > 0 ? static_cast<double>(corruptions_escaped) /
                                      static_cast<double>(corruptions_seen)
                                : 0.0;
  }

  double overhead() const {
    const double useful = total_time - wasted_time - checkpoint_time;
    return useful > 0.0 ? (total_time - useful) / useful : 0.0;
  }
};

/// First-order Young/Daly optimal checkpoint interval for checkpoint cost
/// `c` and mean time between failures `mtbf` (both in the same time unit).
double young_daly_interval(double mtbf, double c);

/// Modeled cost (seconds on ctx's machine) of writing one checkpoint of
/// `app`: the device drain of its serialized state.
double modeled_checkpoint_cost(const Checkpointable& app,
                               const core::ExecContext& ctx);

/// Executes do_step(0..steps-1) on `app` under cfg's fault process. Faults
/// are detected against ctx's simulated clock; on each fault the driver
/// restores the last checkpoint and replays. The final state of `app` is
/// bitwise identical to a fault-free run (enforced by tests); the price of
/// the faults is visible in ctx's simulated time and the report. An
/// external `store` may be supplied to inspect checkpoints afterwards.
/// Checkpoint writes are two-phase: a fault arriving mid-write aborts the
/// pending generation, never leaving a partial blob as the newest visible
/// one.
ResilienceReport run_resilient(Checkpointable& app, core::ExecContext& ctx,
                               std::size_t steps,
                               const std::function<void(std::size_t)>& do_step,
                               const ResilienceConfig& cfg,
                               CheckpointStore* store = nullptr);

}  // namespace coe::resil
