#pragma once
// coe::resil — fault injection, checkpoint/restart, and failure-aware
// execution for the workload (see DESIGN.md section 9).

#include "resil/checkpoint.hpp"
#include "resil/driver.hpp"
#include "resil/fault.hpp"
