#include "resil/driver.hpp"

#include <algorithm>
#include <cmath>

namespace coe::resil {

double young_daly_interval(double mtbf, double c) {
  if (mtbf <= 0.0) return 1.7976931348623157e308;  // no faults: never
  return std::sqrt(2.0 * std::max(c, 1e-300) * mtbf);
}

double modeled_checkpoint_cost(const Checkpointable& app,
                               const core::ExecContext& ctx) {
  return ctx.model().transfer_time(app.state_bytes());
}

ResilienceReport run_resilient(Checkpointable& app, core::ExecContext& ctx,
                               std::size_t steps,
                               const std::function<void(std::size_t)>& do_step,
                               const ResilienceConfig& cfg,
                               CheckpointStore* store) {
  CheckpointStore local;
  if (store == nullptr) store = &local;
  const std::string key = "run_resilient";
  const std::size_t verify_every = std::max<std::size_t>(1, cfg.verify_every);

  ResilienceReport rep;
  rep.steps = steps;
  rep.checkpoint_cost = modeled_checkpoint_cost(app, ctx);
  rep.interval = cfg.checkpoint_interval > 0.0
                     ? cfg.checkpoint_interval
                     : young_daly_interval(cfg.mtbf, rep.checkpoint_cost);

  const double t0 = ctx.simulated_time();
  auto elapsed = [&] { return ctx.simulated_time() - t0; };

  // Containment ledger: corruptions injected since the last point the
  // state was known good. A passing verification accepts them (escaped); a
  // rollback discards them (contained).
  std::size_t clean_mark = cfg.corruption_count ? cfg.corruption_count() : 0;
  auto settle = [&](std::size_t* bucket) {
    if (!cfg.corruption_count) return;
    const std::size_t seen = cfg.corruption_count();
    *bucket += seen - clean_mark;
    clean_mark = seen;
  };

  auto verify = [&](std::size_t s) {
    ++rep.verifications;
    const double before = ctx.simulated_time();
    const bool ok = cfg.verify_hook(s);
    rep.verify_time += ctx.simulated_time() - before;
    if (!ok) {
      ++rep.detections;
      return false;
    }
    settle(&rep.corruptions_escaped);
    return true;
  };

  // Recovery baseline: without a step-0 checkpoint an early fault would
  // have nothing to restart from.
  store->write(key, 0, app, ctx);
  rep.checkpoints = 1;
  rep.checkpoint_time += elapsed();
  double last_ck_elapsed = elapsed();

  FaultInjector faults(cfg.mtbf, cfg.seed);
  std::size_t high_water = 0;  // distinct steps completed at least once
  std::size_t s = 0;
  std::size_t since_verify = 0;  // steps since the state was last verified
  bool aborted = false;

  // Restores the newest intact generation (CRC-verified, falling back to
  // the older one) and rewinds the step cursor. False when no intact
  // checkpoint remains — the run is unrecoverable.
  auto rollback = [&](double now) {
    const std::size_t crc_before = store->stats().crc_failures;
    std::size_t ck_step = 0;
    const bool ok = store->restore_latest(key, app, ctx, &ck_step);
    rep.checkpoint_crc_failures += store->stats().crc_failures - crc_before;
    if (!ok) return false;
    settle(&rep.corruptions_contained);
    if (cfg.on_rollback) cfg.on_rollback(ck_step);
    rep.wasted_time += now - last_ck_elapsed;
    s = ck_step;
    since_verify = 0;  // the restored state is known good
    return true;
  };
  auto detect_and_rollback = [&] {
    ++rep.rollbacks;
    if (rep.rollbacks > cfg.max_rollbacks) return false;
    return rollback(elapsed());
  };

  while (true) {
    if (s >= steps) {
      // Final gate: a run must never report success on unverified state.
      if (!cfg.verify_hook || verify(s)) break;
      if (!detect_and_rollback()) {
        aborted = true;
        break;
      }
      continue;
    }

    // Validate the state before the step consumes it, so detected
    // corruption is rolled back instead of propagated.
    if (cfg.verify_hook && since_verify >= verify_every) {
      since_verify = 0;
      // On a successful rollback execution falls through: the restored
      // state is known good and `s` now points at the restored step.
      if (!verify(s) && !detect_and_rollback()) {
        aborted = true;
        break;
      }
    }

    do_step(s);
    ++rep.steps_executed;
    ++since_verify;
    if (s < high_water) {
      ++rep.steps_replayed;
    } else {
      high_water = s + 1;
    }

    const double now = elapsed();
    if (faults.fire(now)) {
      ++rep.faults;
      if (rep.faults > cfg.max_faults || !rollback(now)) {
        aborted = true;
        break;
      }
      continue;
    }

    ++s;
    if (s < steps && now - last_ck_elapsed >= rep.interval) {
      // A checkpoint must never capture unverified state: a corrupt blob
      // with a valid CRC would be faithfully restored forever after.
      if (cfg.verify_hook && since_verify > 0) {
        since_verify = 0;
        if (!verify(s)) {
          if (!detect_and_rollback()) {
            aborted = true;
            break;
          }
          continue;
        }
      }
      const double before = ctx.simulated_time();
      store->begin_write(key, s, app, ctx);
      // fsync-order discipline: a fault landing while the write drains
      // aborts the pending generation — the newest visible checkpoint is
      // always complete — and recovery proceeds from it.
      if (faults.fire(elapsed())) {
        store->abort_write(key);
        ++rep.checkpoint_aborts;
        rep.checkpoint_time += ctx.simulated_time() - before;
        ++rep.faults;
        if (rep.faults > cfg.max_faults || !rollback(elapsed())) {
          aborted = true;
          break;
        }
        continue;
      }
      store->commit_write(key);
      ++rep.checkpoints;
      rep.checkpoint_time += ctx.simulated_time() - before;
      last_ck_elapsed = elapsed();
    }
  }

  rep.completed = !aborted && s >= steps;
  rep.total_time = elapsed();
  if (cfg.corruption_count) rep.corruptions_seen = cfg.corruption_count();
  if (cfg.metrics) {
    cfg.metrics->add("resil.faults", static_cast<double>(rep.faults));
    cfg.metrics->add("resil.checkpoints",
                     static_cast<double>(rep.checkpoints));
    cfg.metrics->add("resil.checkpoint_bytes",
                     static_cast<double>(rep.checkpoints) * app.state_bytes());
    cfg.metrics->add("resil.steps_replayed",
                     static_cast<double>(rep.steps_replayed));
    cfg.metrics->add("resil.wasted_s", rep.wasted_time);
    cfg.metrics->add("resil.checkpoint_s", rep.checkpoint_time);
    // Store integrity counters: generations refused on CRC mismatch and
    // the subset of restores the double-buffered fallback then served.
    const CheckpointStats& cst = store->stats();
    cfg.metrics->add("resil.refused_generations",
                     static_cast<double>(cst.crc_failures));
    cfg.metrics->add("resil.crc_fallbacks",
                     static_cast<double>(cst.fallbacks));
    if (cfg.verify_hook) {
      cfg.metrics->add("resil.verifications",
                       static_cast<double>(rep.verifications));
      cfg.metrics->add("resil.detections",
                       static_cast<double>(rep.detections));
      cfg.metrics->add("resil.rollbacks",
                       static_cast<double>(rep.rollbacks));
      cfg.metrics->add("resil.escapes",
                       static_cast<double>(rep.corruptions_escaped));
      cfg.metrics->add("resil.checkpoint_aborts",
                       static_cast<double>(rep.checkpoint_aborts));
      cfg.metrics->add("resil.verify_s", rep.verify_time);
    }
  }
  return rep;
}

}  // namespace coe::resil
