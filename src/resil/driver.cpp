#include "resil/driver.hpp"

#include <cmath>

namespace coe::resil {

double young_daly_interval(double mtbf, double c) {
  if (mtbf <= 0.0) return 1.7976931348623157e308;  // no faults: never
  return std::sqrt(2.0 * std::max(c, 1e-300) * mtbf);
}

double modeled_checkpoint_cost(const Checkpointable& app,
                               const core::ExecContext& ctx) {
  return ctx.model().transfer_time(app.state_bytes());
}

ResilienceReport run_resilient(Checkpointable& app, core::ExecContext& ctx,
                               std::size_t steps,
                               const std::function<void(std::size_t)>& do_step,
                               const ResilienceConfig& cfg,
                               CheckpointStore* store) {
  CheckpointStore local;
  if (store == nullptr) store = &local;
  const std::string key = "run_resilient";

  ResilienceReport rep;
  rep.steps = steps;
  rep.checkpoint_cost = modeled_checkpoint_cost(app, ctx);
  rep.interval = cfg.checkpoint_interval > 0.0
                     ? cfg.checkpoint_interval
                     : young_daly_interval(cfg.mtbf, rep.checkpoint_cost);

  const double t0 = ctx.simulated_time();
  auto elapsed = [&] { return ctx.simulated_time() - t0; };

  // Recovery baseline: without a step-0 checkpoint an early fault would
  // have nothing to restart from.
  store->write(key, 0, app, ctx);
  rep.checkpoints = 1;
  rep.checkpoint_time += elapsed();
  double last_ck_elapsed = elapsed();

  FaultInjector faults(cfg.mtbf, cfg.seed);
  std::size_t high_water = 0;  // distinct steps completed at least once
  std::size_t s = 0;
  while (s < steps) {
    do_step(s);
    ++rep.steps_executed;
    if (s < high_water) {
      ++rep.steps_replayed;
    } else {
      high_water = s + 1;
    }

    const double now = elapsed();
    if (faults.fire(now)) {
      ++rep.faults;
      if (rep.faults > cfg.max_faults) break;
      std::size_t ck_step = 0;
      store->restore_latest(key, app, ctx, &ck_step);
      rep.wasted_time += now - last_ck_elapsed;
      s = ck_step;
      continue;
    }

    ++s;
    if (s < steps && now - last_ck_elapsed >= rep.interval) {
      const double before = ctx.simulated_time();
      store->write(key, s, app, ctx);
      ++rep.checkpoints;
      rep.checkpoint_time += ctx.simulated_time() - before;
      last_ck_elapsed = elapsed();
    }
  }

  rep.completed = s >= steps;
  rep.total_time = elapsed();
  if (cfg.metrics) {
    cfg.metrics->add("resil.faults", static_cast<double>(rep.faults));
    cfg.metrics->add("resil.checkpoints",
                     static_cast<double>(rep.checkpoints));
    cfg.metrics->add("resil.checkpoint_bytes",
                     static_cast<double>(rep.checkpoints) * app.state_bytes());
    cfg.metrics->add("resil.steps_replayed",
                     static_cast<double>(rep.steps_replayed));
    cfg.metrics->add("resil.wasted_s", rep.wasted_time);
    cfg.metrics->add("resil.checkpoint_s", rep.checkpoint_time);
  }
  return rep;
}

}  // namespace coe::resil
