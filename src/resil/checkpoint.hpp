#pragma once
// Checkpoint/restart substrate. Long-running solvers implement
// Checkpointable (full dynamic state to/from a flat double blob — flat so
// the store can price it as one device drain); CheckpointStore keeps the
// blobs in host memory and charges every write/restore to the machine model
// through ExecContext::record_transfer, so checkpoint overhead shows up in
// simulated time exactly like any other host<->device traffic.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/exec.hpp"

namespace coe::resil {

/// A solver that can serialize its complete dynamic state. Restoring a
/// saved state and re-executing the same steps must reproduce the original
/// trajectory bitwise (the recovery tests enforce this), so implementations
/// must capture *everything* the stepping code reads: fields, clocks, RNG
/// streams, neighbor/reference structures.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Overwrites `out` with the full dynamic state.
  virtual void save_state(std::vector<double>& out) const = 0;

  /// Restores state previously produced by save_state on the same
  /// configuration (same sizes, same static parameters).
  virtual void restore_state(const std::vector<double>& in) = 0;

  /// Serialized size in bytes (used to price a checkpoint without taking
  /// one). Default: serialize and measure.
  virtual double state_bytes() const {
    std::vector<double> tmp;
    save_state(tmp);
    return static_cast<double>(tmp.size()) * 8.0;
  }
};

struct Checkpoint {
  std::size_t step = 0;
  std::vector<double> data;
};

struct CheckpointStats {
  std::size_t writes = 0;
  std::size_t restores = 0;
  double bytes_written = 0.0;
};

/// In-memory checkpoint store, keyed by application name; keeps the latest
/// two checkpoints per key (the classic double-buffer discipline: never
/// overwrite your only good checkpoint while writing a new one).
class CheckpointStore {
 public:
  /// Serializes `app` under `key` as the state after `step` steps. The
  /// device-to-host drain is charged to `ctx`.
  void write(const std::string& key, std::size_t step,
             const Checkpointable& app, core::ExecContext& ctx);

  /// Latest checkpoint for `key`, or nullptr.
  const Checkpoint* latest(const std::string& key) const;

  /// Restores `app` from the latest checkpoint (charging the host-to-device
  /// refill to `ctx`) and returns its step. Returns false if none exists.
  bool restore_latest(const std::string& key, Checkpointable& app,
                      core::ExecContext& ctx, std::size_t* step = nullptr);

  const CheckpointStats& stats() const { return stats_; }

 private:
  // [older, newer] per key.
  std::map<std::string, std::vector<Checkpoint>> slots_;
  CheckpointStats stats_;
};

}  // namespace coe::resil
