#pragma once
// Checkpoint/restart substrate. Long-running solvers implement
// Checkpointable (full dynamic state to/from a flat double blob — flat so
// the store can price it as one device drain); CheckpointStore keeps the
// blobs in host memory and charges every write/restore to the machine model
// through ExecContext::record_transfer, so checkpoint overhead shows up in
// simulated time exactly like any other host<->device traffic.
//
// Integrity: every generation carries a CRC32 of its payload, verified at
// restore time — a corrupt newest generation is refused and the restore
// falls back to the double-buffered older one (silent corruption of a
// checkpoint must not become silent corruption of the run). Writes follow
// fsync-order discipline via the two-phase begin_write/commit_write pair: a
// fault that lands mid-write aborts the pending blob, so the newest
// *visible* generation is always complete and checksummed.

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/exec.hpp"

namespace coe::resil {

/// A solver that can serialize its complete dynamic state. Restoring a
/// saved state and re-executing the same steps must reproduce the original
/// trajectory bitwise (the recovery tests enforce this), so implementations
/// must capture *everything* the stepping code reads: fields, clocks, RNG
/// streams, neighbor/reference structures.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Overwrites `out` with the full dynamic state.
  virtual void save_state(std::vector<double>& out) const = 0;

  /// Restores state previously produced by save_state on the same
  /// configuration (same sizes, same static parameters).
  virtual void restore_state(const std::vector<double>& in) = 0;

  /// Serialized size in bytes (used to price a checkpoint without taking
  /// one). Default: serialize and measure.
  virtual double state_bytes() const {
    std::vector<double> tmp;
    save_state(tmp);
    return static_cast<double>(tmp.size()) * 8.0;
  }
};

struct Checkpoint {
  std::size_t step = 0;
  std::uint32_t crc = 0;  ///< CRC32 of `data`'s bit patterns, set at write
  std::vector<double> data;
};

struct CheckpointStats {
  std::size_t writes = 0;
  std::size_t restores = 0;
  double bytes_written = 0.0;
  std::size_t aborted_writes = 0;  ///< begun but never committed
  std::size_t crc_failures = 0;    ///< generations refused at restore
  std::size_t fallbacks = 0;       ///< restores served by an older generation
};

/// In-memory checkpoint store, keyed by application name; keeps the latest
/// two checkpoints per key (the classic double-buffer discipline: never
/// overwrite your only good checkpoint while writing a new one).
class CheckpointStore {
 public:
  /// Serializes `app` under `key` as the state after `step` steps. The
  /// device-to-host drain is charged to `ctx`. Equivalent to begin_write
  /// immediately followed by commit_write — use the two-phase form when a
  /// fault process can interrupt the write.
  void write(const std::string& key, std::size_t step,
             const Checkpointable& app, core::ExecContext& ctx);

  /// Phase one: serialize, checksum, and charge the drain, but keep the
  /// blob pending — the visible generations are untouched. A second
  /// begin_write for the same key replaces the pending blob.
  void begin_write(const std::string& key, std::size_t step,
                   const Checkpointable& app, core::ExecContext& ctx);
  /// Phase two: atomically publish the pending blob as the newest
  /// generation (the "fsync" step). No-op if nothing is pending.
  void commit_write(const std::string& key);
  /// Discards the pending blob (fault during the write): the store is
  /// exactly as it was before begin_write, newest generation intact.
  void abort_write(const std::string& key);

  /// Latest *visible* checkpoint for `key`, or nullptr. Does not verify.
  const Checkpoint* latest(const std::string& key) const;

  /// Restores `app` from the newest generation whose CRC verifies
  /// (charging the host-to-device refill to `ctx`) and returns its step.
  /// Corrupt generations are counted, dropped, and skipped — falling back
  /// to the older one. Returns false if no intact checkpoint exists.
  bool restore_latest(const std::string& key, Checkpointable& app,
                      core::ExecContext& ctx, std::size_t* step = nullptr);

  /// Direct access to the stored generations, oldest first — how tests
  /// and SDC injection corrupt checkpoint payloads in place.
  std::span<Checkpoint> generations(const std::string& key);

  /// Recomputes every visible generation's CRC; true when all match.
  bool verify_all() const;

  /// CRC32 of a checkpoint's current payload (compare against ck.crc).
  static std::uint32_t payload_crc(const Checkpoint& ck);

  const CheckpointStats& stats() const { return stats_; }

 private:
  // [older, newer] per key.
  std::map<std::string, std::vector<Checkpoint>> slots_;
  std::map<std::string, Checkpoint> pending_;
  CheckpointStats stats_;
};

}  // namespace coe::resil
