#include "resil/checkpoint.hpp"

#include <utility>

namespace coe::resil {

void CheckpointStore::write(const std::string& key, std::size_t step,
                            const Checkpointable& app,
                            core::ExecContext& ctx) {
  Checkpoint ck;
  ck.step = step;
  app.save_state(ck.data);
  const double bytes = static_cast<double>(ck.data.size()) * 8.0;
  ctx.record_transfer(bytes, /*to_device=*/false);
  stats_.writes += 1;
  stats_.bytes_written += bytes;
  auto& slot = slots_[key];
  if (slot.size() < 2) {
    slot.push_back(std::move(ck));
  } else {
    slot[0] = std::move(slot[1]);
    slot[1] = std::move(ck);
  }
}

const Checkpoint* CheckpointStore::latest(const std::string& key) const {
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

bool CheckpointStore::restore_latest(const std::string& key,
                                     Checkpointable& app,
                                     core::ExecContext& ctx,
                                     std::size_t* step) {
  const Checkpoint* ck = latest(key);
  if (ck == nullptr) return false;
  ctx.record_transfer(static_cast<double>(ck->data.size()) * 8.0,
                      /*to_device=*/true);
  app.restore_state(ck->data);
  stats_.restores += 1;
  if (step != nullptr) *step = ck->step;
  return true;
}

}  // namespace coe::resil
