#include "resil/checkpoint.hpp"

#include <utility>

#include "core/crc32.hpp"

namespace coe::resil {

namespace {

/// Price the CRC pass over the blob: one streaming read plus table lookups
/// (a few ops per byte) — small next to the transfer it validates, but
/// nonzero so checkpoint integrity is not free.
void charge_crc(core::ExecContext& ctx, double bytes) {
  ctx.record_kernel({2.0 * bytes, bytes});
}

}  // namespace

std::uint32_t CheckpointStore::payload_crc(const Checkpoint& ck) {
  return core::crc32(std::span<const double>(ck.data));
}

void CheckpointStore::begin_write(const std::string& key, std::size_t step,
                                  const Checkpointable& app,
                                  core::ExecContext& ctx) {
  Checkpoint ck;
  ck.step = step;
  app.save_state(ck.data);
  const double bytes = static_cast<double>(ck.data.size()) * 8.0;
  ctx.record_transfer(bytes, /*to_device=*/false);
  charge_crc(ctx, bytes);
  ck.crc = payload_crc(ck);
  pending_[key] = std::move(ck);
}

void CheckpointStore::commit_write(const std::string& key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  stats_.writes += 1;
  stats_.bytes_written += static_cast<double>(it->second.data.size()) * 8.0;
  auto& slot = slots_[key];
  if (slot.size() < 2) {
    slot.push_back(std::move(it->second));
  } else {
    slot[0] = std::move(slot[1]);
    slot[1] = std::move(it->second);
  }
  pending_.erase(it);
}

void CheckpointStore::abort_write(const std::string& key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  stats_.aborted_writes += 1;
  pending_.erase(it);
}

void CheckpointStore::write(const std::string& key, std::size_t step,
                            const Checkpointable& app,
                            core::ExecContext& ctx) {
  begin_write(key, step, app, ctx);
  commit_write(key);
}

const Checkpoint* CheckpointStore::latest(const std::string& key) const {
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

bool CheckpointStore::restore_latest(const std::string& key,
                                     Checkpointable& app,
                                     core::ExecContext& ctx,
                                     std::size_t* step) {
  auto it = slots_.find(key);
  if (it == slots_.end()) return false;
  auto& slot = it->second;
  while (!slot.empty()) {
    Checkpoint& ck = slot.back();
    const double bytes = static_cast<double>(ck.data.size()) * 8.0;
    charge_crc(ctx, bytes);
    if (payload_crc(ck) != ck.crc) {
      // Refuse and discard the corrupt generation; a later write refills
      // the double buffer.
      stats_.crc_failures += 1;
      slot.pop_back();
      stats_.fallbacks += !slot.empty();
      continue;
    }
    ctx.record_transfer(bytes, /*to_device=*/true);
    app.restore_state(ck.data);
    stats_.restores += 1;
    if (step != nullptr) *step = ck.step;
    return true;
  }
  return false;
}

std::span<Checkpoint> CheckpointStore::generations(const std::string& key) {
  auto it = slots_.find(key);
  if (it == slots_.end()) return {};
  return it->second;
}

bool CheckpointStore::verify_all() const {
  for (const auto& [key, slot] : slots_) {
    for (const auto& ck : slot) {
      if (payload_crc(ck) != ck.crc) return false;
    }
  }
  return true;
}

}  // namespace coe::resil
