#pragma once
// coe::resil fault model. The paper's workload ran on Sierra-class systems
// (thousands of nodes) where component failure is routine; this layer gives
// the reproduction a failure process to test recovery behavior against: a
// deterministic, seeded fault clock drawing exponential (MTBF-parameterized)
// failure times, the exception types a failed component raises, and a hook
// factory that kills coe::mpi ranks mid-run.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace coe::resil {

/// Raised by a component (mpi rank, solver step) killed by fault injection.
struct RankFailure : std::runtime_error {
  RankFailure(int rank_, const std::string& what)
      : std::runtime_error(what), rank(rank_) {}
  int rank;
};

/// Memoryless failure clock: inter-failure times are exponential with the
/// given MTBF, drawn from a seeded splitmix64 stream so every run of an
/// experiment sees the identical fault sequence.
class FaultInjector {
 public:
  /// mtbf <= 0 disables the clock (next() stays at +infinity).
  FaultInjector(double mtbf, std::uint64_t seed)
      : mtbf_(mtbf), rng_(seed) {
    next_ = mtbf_ > 0.0 ? rng_.exponential(1.0 / mtbf_) : kNever;
  }

  double mtbf() const { return mtbf_; }
  bool enabled() const { return mtbf_ > 0.0; }

  /// Time of the next scheduled failure.
  double next() const { return next_; }

  /// True when `now` has reached the scheduled failure; reschedules the
  /// clock from `now` (exponential inter-arrivals are memoryless, so
  /// restarting the draw at the fault instant preserves the process).
  bool fire(double now) {
    if (!enabled() || now < next_) return false;
    next_ = now + rng_.exponential(1.0 / mtbf_);
    return true;
  }

  /// Draws one inter-failure interval directly.
  double draw() { return enabled() ? rng_.exponential(1.0 / mtbf_) : kNever; }

 private:
  static constexpr double kNever = 1.7976931348623157e308;
  double mtbf_;
  double next_;
  core::Rng rng_;
};

/// Builds a fault hook for coe::mpi::RunOptions: rank r is killed (raises
/// RankFailure from inside its next communicator operation) once it has
/// performed its seeded exponential op-count budget, with mean `mean_ops`
/// operations between failures per rank. Draws that land beyond `max_ops`
/// never fire, so with mean_ops >> expected op count most runs are clean.
std::function<bool(int, std::size_t)> make_rank_fault_hook(
    int ranks, double mean_ops, std::uint64_t seed,
    double max_ops = 1e18);

}  // namespace coe::resil
