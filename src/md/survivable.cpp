#include "md/survivable.hpp"

#include <algorithm>
#include <mutex>
#include <span>
#include <vector>

#include "core/exec.hpp"
#include "core/rng.hpp"
#include "md/forces.hpp"
#include "md/potentials.hpp"

namespace coe::md {

namespace {

/// One replica part: the full system plus this part's row slice of the
/// pair-force work and its share of the aggregated reduction buffer.
class MdPart final : public resil::Checkpointable {
 public:
  MdPart(const SurvivableMdConfig& cfg, int part)
      : cfg_(cfg),
        part_(part),
        pot_(1.0, 1.0, cfg.rcut),
        nl_(cfg.rcut, cfg.skin) {
    core::Rng rng(cfg.seed);  // same seed: identical replicas everywhere
    init_lattice(p_, box_, cfg.per_side, cfg.density, cfg.temperature, rng);
    p_.zero_momentum();
    nl_built_ = false;
    agg_.assign(3 * p_.n + 2, 0.0);
  }

  void save_state(std::vector<double>& out) const override {
    const std::size_t n = p_.n;
    out.clear();
    out.reserve(9 * n + 2);
    auto put = [&out](const std::vector<double>& v) {
      out.insert(out.end(), v.begin(), v.end());
    };
    put(p_.x);
    put(p_.y);
    put(p_.z);
    put(p_.vx);
    put(p_.vy);
    put(p_.vz);
    put(p_.fx);
    put(p_.fy);
    put(p_.fz);
    out.push_back(energy_);
    out.push_back(virial_);
    // The neighbor list's pairs and reference positions: preserving the
    // pair ordering and the rebuild schedule keeps the replay bitwise.
    nl_.save_state(out);
  }

  void restore_state(const std::vector<double>& in) override {
    const std::size_t n = p_.n;
    const double* at = in.data();
    auto get = [&at, n](std::vector<double>& v) {
      std::copy(at, at + n, v.begin());
      at += n;
    };
    get(p_.x);
    get(p_.y);
    get(p_.z);
    get(p_.vx);
    get(p_.vy);
    get(p_.vz);
    get(p_.fx);
    get(p_.fy);
    get(p_.fz);
    energy_ = *at++;
    virial_ = *at++;
    at = nl_.load_state(at);
    nl_built_ = true;
  }

  std::size_t n() const { return p_.n; }
  std::span<double> agg() { return agg_; }

  /// Row-slice partial forces into agg_ (the part-tree sums across parts).
  void partial_forces(core::ExecContext& ctx) {
    if (!nl_built_ || nl_.needs_rebuild(p_, box_)) {
      nl_.build(ctx, p_, box_);
      nl_built_ = true;
    }
    const std::size_t n = p_.n;
    const auto np = static_cast<std::size_t>(cfg_.workers);
    const auto r = static_cast<std::size_t>(part_);
    const std::size_t lo = n * r / np;
    const std::size_t hi = n * (r + 1) / np;
    p_.zero_forces();
    const PairResult pr = compute_pair_forces(ctx, p_, box_, nl_, pot_, lo, hi);
    std::copy(p_.fx.begin(), p_.fx.end(), agg_.begin());
    std::copy(p_.fy.begin(), p_.fy.end(), agg_.begin() + n);
    std::copy(p_.fz.begin(), p_.fz.end(), agg_.begin() + 2 * n);
    agg_[3 * n] = pr.energy;
    agg_[3 * n + 1] = pr.virial;
  }

  /// Installs the summed reduction result as this replica's forces.
  void adopt_forces() {
    const std::size_t n = p_.n;
    std::copy(agg_.begin(), agg_.begin() + n, p_.fx.begin());
    std::copy(agg_.begin() + n, agg_.begin() + 2 * n, p_.fy.begin());
    std::copy(agg_.begin() + 2 * n, agg_.begin() + 3 * n, p_.fz.begin());
    energy_ = agg_[3 * n];
    virial_ = agg_[3 * n + 1];
  }

  void half_kick_and_drift(core::ExecContext& ctx) {
    const std::size_t n = p_.n;
    const double dt = cfg_.dt;
    ctx.record_kernel({9.0 * double(n), 96.0 * double(n)});
    for (std::size_t i = 0; i < n; ++i) {
      const double inv_m = 1.0 / p_.mass[i];
      p_.vx[i] += 0.5 * dt * p_.fx[i] * inv_m;
      p_.vy[i] += 0.5 * dt * p_.fy[i] * inv_m;
      p_.vz[i] += 0.5 * dt * p_.fz[i] * inv_m;
      p_.x[i] = box_.fold(p_.x[i] + dt * p_.vx[i]);
      p_.y[i] = box_.fold(p_.y[i] + dt * p_.vy[i]);
      p_.z[i] = box_.fold(p_.z[i] + dt * p_.vz[i]);
    }
  }

  void half_kick(core::ExecContext& ctx) {
    const std::size_t n = p_.n;
    const double dt = cfg_.dt;
    ctx.record_kernel({6.0 * double(n), 96.0 * double(n)});
    for (std::size_t i = 0; i < n; ++i) {
      const double inv_m = 1.0 / p_.mass[i];
      p_.vx[i] += 0.5 * dt * p_.fx[i] * inv_m;
      p_.vy[i] += 0.5 * dt * p_.fy[i] * inv_m;
      p_.vz[i] += 0.5 * dt * p_.fz[i] * inv_m;
    }
  }

  double energy() const { return energy_; }
  double virial() const { return virial_; }
  double kinetic() const { return p_.kinetic_energy(); }
  double temp() const { return p_.temperature(); }

 private:
  const SurvivableMdConfig& cfg_;
  int part_;
  Particles p_;
  Box box_;
  LennardJones pot_;
  NeighborList nl_;
  bool nl_built_ = false;
  double energy_ = 0.0, virial_ = 0.0;
  std::vector<double> agg_;
};

MdPart& replica(phoenix::RankContext& rc, int p) {
  return static_cast<MdPart&>(rc.part(p));
}

}  // namespace

SurvivableMdResult survivable_md_run(const SurvivableMdConfig& cfg) {
  SurvivableMdResult result;
  std::mutex mtx;

  phoenix::SurvivableConfig pc;
  pc.workers = cfg.workers;
  pc.spares = cfg.spares;
  pc.policy = cfg.policy;
  pc.steps = cfg.steps + 1;  // step 0 computes the initial forces
  pc.ckpt_every = cfg.ckpt_every;
  pc.mpi = cfg.mpi;
  pc.node = cfg.node;
  pc.log = cfg.log;
  pc.metrics = cfg.metrics;
  pc.trace_ranks = cfg.trace_ranks;
  pc.fault_hook = cfg.fault_hook;

  phoenix::SurvivableHooks hooks;
  hooks.make = [&cfg](phoenix::RankContext&, int part) {
    return std::make_unique<MdPart>(cfg, part);
  };
  // One force evaluation: partial row-slice forces on every owned part,
  // one (3n+2)-wide part-tree reduction, result adopted by every replica.
  auto forces = [](phoenix::RankContext& rc) {
    for (int p : rc.owned()) replica(rc, p).partial_forces(rc.ctx());
    rc.log_compute();
    rc.part_allreduce(phoenix::RankContext::kChanApp, [&rc](int p) {
      return replica(rc, p).agg();
    });
    for (int p : rc.owned()) replica(rc, p).adopt_forces();
  };
  hooks.step = [&cfg, forces](phoenix::RankContext& rc, int step) {
    core::ExecContext& ctx = rc.ctx();
    if (cfg.trace_ranks) ctx.set_phase("md");
    if (step == 0) {
      forces(rc);
      return;
    }
    for (int p : rc.owned()) replica(rc, p).half_kick_and_drift(ctx);
    forces(rc);
    for (int p : rc.owned()) replica(rc, p).half_kick(ctx);
    rc.log_compute();
  };
  hooks.finish = [&result, &mtx](phoenix::RankContext& rc) {
    for (int p : rc.owned()) {
      if (p != 0) continue;
      MdPart& m = replica(rc, p);
      std::lock_guard<std::mutex> lk(mtx);
      result.n = m.n();
      result.potential = m.energy();
      result.virial = m.virial();
      result.kinetic = m.kinetic();
      result.temperature = m.temp();
    }
  };

  result.report = phoenix::run_survivable(pc, hooks);
  if (cfg.cluster != nullptr && cfg.log != nullptr) {
    result.modeled = net::reprice(*cfg.log, *cfg.cluster, cfg.workers);
  }
  return result;
}

}  // namespace coe::md
