#pragma once
// Particle storage for the ddcMD-style MD mini-app. Struct-of-arrays
// layout throughout -- Section 4.6: "To improve locality, we converted the
// array of structs to a struct of arrays."

#include <cstddef>
#include <vector>

#include "core/rng.hpp"

namespace coe::md {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// Periodic cubic box.
struct Box {
  double length = 1.0;

  double volume() const { return length * length * length; }
  /// Minimum-image displacement component.
  double wrap(double d) const {
    if (d > 0.5 * length) return d - length;
    if (d < -0.5 * length) return d + length;
    return d;
  }
  /// Folds a coordinate into [0, length).
  double fold(double c) const {
    while (c < 0.0) c += length;
    while (c >= length) c -= length;
    return c;
  }
};

/// SoA particle arrays.
struct Particles {
  std::size_t n = 0;
  std::vector<double> x, y, z;
  std::vector<double> vx, vy, vz;
  std::vector<double> fx, fy, fz;
  std::vector<double> mass;
  std::vector<int> type;

  explicit Particles(std::size_t count = 0) { resize(count); }

  void resize(std::size_t count) {
    n = count;
    x.assign(n, 0.0);
    y.assign(n, 0.0);
    z.assign(n, 0.0);
    vx.assign(n, 0.0);
    vy.assign(n, 0.0);
    vz.assign(n, 0.0);
    fx.assign(n, 0.0);
    fy.assign(n, 0.0);
    fz.assign(n, 0.0);
    mass.assign(n, 1.0);
    type.assign(n, 0);
  }

  void zero_forces() {
    std::fill(fx.begin(), fx.end(), 0.0);
    std::fill(fy.begin(), fy.end(), 0.0);
    std::fill(fz.begin(), fz.end(), 0.0);
  }

  double kinetic_energy() const {
    double ke = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ke += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
    }
    return ke;
  }

  /// Instantaneous temperature in reduced units (k_B = 1).
  double temperature() const {
    if (n == 0) return 0.0;
    return 2.0 * kinetic_energy() / (3.0 * static_cast<double>(n));
  }

  /// Removes net momentum.
  void zero_momentum() {
    double px = 0.0, py = 0.0, pz = 0.0, m = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      px += mass[i] * vx[i];
      py += mass[i] * vy[i];
      pz += mass[i] * vz[i];
      m += mass[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      vx[i] -= px / m;
      vy[i] -= py / m;
      vz[i] -= pz / m;
    }
  }
};

/// Places particles on a perturbed cubic lattice with Maxwell-Boltzmann
/// velocities at the given temperature (reduced units).
void init_lattice(Particles& p, Box& box, std::size_t per_side,
                  double density, double temperature, core::Rng& rng);

}  // namespace coe::md
