#pragma once
// Umbrella header for the ddcMD-style molecular-dynamics module.

#include "md/forces.hpp"
#include "md/neighbor.hpp"
#include "md/particles.hpp"
#include "md/potentials.hpp"
#include "md/simulation.hpp"
