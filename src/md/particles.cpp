#include "md/particles.hpp"

#include <cmath>

namespace coe::md {

void init_lattice(Particles& p, Box& box, std::size_t per_side,
                  double density, double temperature, core::Rng& rng) {
  const std::size_t n = per_side * per_side * per_side;
  p.resize(n);
  box.length = std::cbrt(static_cast<double>(n) / density);
  const double a = box.length / static_cast<double>(per_side);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < per_side; ++i) {
    for (std::size_t j = 0; j < per_side; ++j) {
      for (std::size_t k = 0; k < per_side; ++k, ++idx) {
        p.x[idx] = (static_cast<double>(i) + 0.5) * a +
                   0.05 * a * rng.normal();
        p.y[idx] = (static_cast<double>(j) + 0.5) * a +
                   0.05 * a * rng.normal();
        p.z[idx] = (static_cast<double>(k) + 0.5) * a +
                   0.05 * a * rng.normal();
        p.x[idx] = box.fold(p.x[idx]);
        p.y[idx] = box.fold(p.y[idx]);
        p.z[idx] = box.fold(p.z[idx]);
        const double s = std::sqrt(temperature / p.mass[idx]);
        p.vx[idx] = s * rng.normal();
        p.vy[idx] = s * rng.normal();
        p.vz[idx] = s * rng.normal();
      }
    }
  }
  p.zero_momentum();
}

}  // namespace coe::md
