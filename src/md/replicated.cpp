#include "md/replicated.hpp"

#include <algorithm>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/exec.hpp"
#include "core/rng.hpp"
#include "md/forces.hpp"
#include "md/potentials.hpp"

namespace coe::md {

ReplicatedResult replicated_md_run(int ranks, const ReplicatedConfig& cfg) {
  ReplicatedResult result;
  result.reductions_per_step = cfg.aggregate ? 1 : 5;
  std::mutex mtx;

  result.traffic = mpi::run(ranks, [&](mpi::Communicator& comm) {
    core::ExecContext ctx;
    core::Rng rng(cfg.seed);  // same seed: identical replicas everywhere
    Particles p;
    Box box;
    init_lattice(p, box, cfg.per_side, cfg.density, cfg.temperature, rng);
    p.zero_momentum();
    LennardJones pot(1.0, 1.0, cfg.rcut);
    NeighborList nl(cfg.rcut, cfg.skin);
    nl.build(ctx, p, box);

    const std::size_t n = p.n;
    const auto nr = static_cast<std::size_t>(ranks);
    const auto r = static_cast<std::size_t>(comm.rank());
    const std::size_t lo = n * r / nr;
    const std::size_t hi = n * (r + 1) / nr;

    net::NetStats stats;
    net::RankLogger logger(cfg.log, comm.rank());
    double logged_sim = 0.0;
    // Flush the ctx simulated-time delta accrued since the last comm
    // action into the log, so the replay sees compute between reductions.
    auto log_compute = [&] {
      const double s = ctx.simulated_time();
      logger.compute(s - logged_sim);
      logged_sim = s;
    };
    double energy = 0.0, virial = 0.0;

    // Partial forces over this rank's row slice, then the global sum:
    // either one (3n+2)-wide collective carrying forces + energy + virial,
    // or the five-round separate form.
    std::vector<double> agg(3 * n + 2);
    auto forces = [&] {
      p.zero_forces();
      const PairResult pr = compute_pair_forces(ctx, p, box, nl, pot, lo, hi);
      log_compute();
      if (cfg.aggregate) {
        std::copy(p.fx.begin(), p.fx.end(), agg.begin());
        std::copy(p.fy.begin(), p.fy.end(), agg.begin() + n);
        std::copy(p.fz.begin(), p.fz.end(), agg.begin() + 2 * n);
        agg[3 * n] = pr.energy;
        agg[3 * n + 1] = pr.virial;
        net::allreduce_sum(comm, agg, cfg.algo, &stats, logger);
        std::copy(agg.begin(), agg.begin() + n, p.fx.begin());
        std::copy(agg.begin() + n, agg.begin() + 2 * n, p.fy.begin());
        std::copy(agg.begin() + 2 * n, agg.begin() + 3 * n, p.fz.begin());
        energy = agg[3 * n];
        virial = agg[3 * n + 1];
      } else {
        net::allreduce_sum(comm, std::span<double>(p.fx), cfg.algo, &stats,
                           logger);
        net::allreduce_sum(comm, std::span<double>(p.fy), cfg.algo, &stats,
                           logger);
        net::allreduce_sum(comm, std::span<double>(p.fz), cfg.algo, &stats,
                           logger);
        energy =
            net::allreduce_sum(comm, pr.energy, cfg.algo, &stats, logger);
        virial =
            net::allreduce_sum(comm, pr.virial, cfg.algo, &stats, logger);
      }
    };

    forces();
    const double dt = cfg.dt;
    for (int s = 0; s < cfg.steps; ++s) {
      ctx.record_kernel({9.0 * double(n), 96.0 * double(n)});
      for (std::size_t i = 0; i < n; ++i) {
        const double inv_m = 1.0 / p.mass[i];
        p.vx[i] += 0.5 * dt * p.fx[i] * inv_m;
        p.vy[i] += 0.5 * dt * p.fy[i] * inv_m;
        p.vz[i] += 0.5 * dt * p.fz[i] * inv_m;
        p.x[i] = box.fold(p.x[i] + dt * p.vx[i]);
        p.y[i] = box.fold(p.y[i] + dt * p.vy[i]);
        p.z[i] = box.fold(p.z[i] + dt * p.vz[i]);
      }
      // Positions are replica-identical, so every rank rebuilds (or not)
      // in lockstep and the row slices stay consistent.
      if (nl.needs_rebuild(p, box)) nl.build(ctx, p, box);
      forces();
      ctx.record_kernel({6.0 * double(n), 96.0 * double(n)});
      for (std::size_t i = 0; i < n; ++i) {
        const double inv_m = 1.0 / p.mass[i];
        p.vx[i] += 0.5 * dt * p.fx[i] * inv_m;
        p.vy[i] += 0.5 * dt * p.fy[i] * inv_m;
        p.vz[i] += 0.5 * dt * p.fz[i] * inv_m;
      }
    }

    log_compute();  // tail: the final half-kick after the last reduction

    std::lock_guard<std::mutex> lk(mtx);
    result.net.messages += stats.messages;
    result.net.bytes += stats.bytes;
    result.net.reductions += stats.reductions;
    if (comm.rank() == 0) {
      result.n = n;
      result.potential = energy;
      result.virial = virial;
      result.kinetic = p.kinetic_energy();
      result.temperature = p.temperature();
    }
  });
  if (cfg.log != nullptr && cfg.cluster != nullptr) {
    result.modeled = net::reprice(*cfg.log, *cfg.cluster, ranks);
  }
  return result;
}

}  // namespace coe::md
