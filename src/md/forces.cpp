#include "md/forces.hpp"

#include <cmath>

namespace coe::md {

double compute_bond_forces(core::ExecContext& ctx, Particles& p,
                           const Box& box, std::span<const Bond> bonds) {
  double energy = 0.0;
  ctx.record_kernel({30.0 * static_cast<double>(bonds.size()),
                     150.0 * static_cast<double>(bonds.size())});
  for (const auto& b : bonds) {
    const double dx = box.wrap(p.x[b.i] - p.x[b.j]);
    const double dy = box.wrap(p.y[b.i] - p.y[b.j]);
    const double dz = box.wrap(p.z[b.i] - p.z[b.j]);
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
    const double dr = r - b.r0;
    energy += 0.5 * b.k * dr * dr;
    const double fr = -b.k * dr / r;
    p.fx[b.i] += fr * dx;
    p.fy[b.i] += fr * dy;
    p.fz[b.i] += fr * dz;
    p.fx[b.j] -= fr * dx;
    p.fy[b.j] -= fr * dy;
    p.fz[b.j] -= fr * dz;
  }
  return energy;
}

double compute_angle_forces(core::ExecContext& ctx, Particles& p,
                            const Box& box, std::span<const Angle> angles) {
  double energy = 0.0;
  ctx.record_kernel({80.0 * static_cast<double>(angles.size()),
                     250.0 * static_cast<double>(angles.size())});
  for (const auto& a : angles) {
    // Vectors from the apex j to i and k.
    const double ax = box.wrap(p.x[a.i] - p.x[a.j]);
    const double ay = box.wrap(p.y[a.i] - p.y[a.j]);
    const double az = box.wrap(p.z[a.i] - p.z[a.j]);
    const double bx = box.wrap(p.x[a.k] - p.x[a.j]);
    const double by = box.wrap(p.y[a.k] - p.y[a.j]);
    const double bz = box.wrap(p.z[a.k] - p.z[a.j]);
    const double la = std::sqrt(ax * ax + ay * ay + az * az);
    const double lb = std::sqrt(bx * bx + by * by + bz * bz);
    double c = (ax * bx + ay * by + az * bz) / (la * lb);
    c = std::clamp(c, -1.0, 1.0);
    const double theta = std::acos(c);
    const double dtheta = theta - a.theta0;
    energy += 0.5 * a.kth * dtheta * dtheta;
    // F_i = -k dtheta * dtheta/dr_i and dtheta/dcos = -1/sin, so the
    // common factor is +k dtheta / sin(theta).
    const double s = std::sqrt(std::max(1.0 - c * c, 1e-12));
    const double coef = a.kth * dtheta / s;
    // dtheta/dr gradients (standard angle-force expressions).
    const double fi_x = coef * (bx / (la * lb) - c * ax / (la * la));
    const double fi_y = coef * (by / (la * lb) - c * ay / (la * la));
    const double fi_z = coef * (bz / (la * lb) - c * az / (la * la));
    const double fk_x = coef * (ax / (la * lb) - c * bx / (lb * lb));
    const double fk_y = coef * (ay / (la * lb) - c * by / (lb * lb));
    const double fk_z = coef * (az / (la * lb) - c * bz / (lb * lb));
    p.fx[a.i] += fi_x;
    p.fy[a.i] += fi_y;
    p.fz[a.i] += fi_z;
    p.fx[a.k] += fk_x;
    p.fy[a.k] += fk_y;
    p.fz[a.k] += fk_z;
    p.fx[a.j] -= fi_x + fk_x;
    p.fy[a.j] -= fi_y + fk_y;
    p.fz[a.j] -= fi_z + fk_z;
  }
  return energy;
}

double pressure(const Particles& p, const Box& box, double pair_virial) {
  // P = (N k T + W/3) / V with W = sum r.f.
  const double nkt = static_cast<double>(p.n) * p.temperature();
  return (nkt + pair_virial / 3.0) / box.volume();
}

}  // namespace coe::md
