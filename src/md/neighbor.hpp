#pragma once
// Cell-list-based Verlet neighbor lists. The entire construction runs "on
// the GPU" in ddcMD (Section 4.6: "we moved the entire MD loop to the GPU,
// including ... neighbor list construction").

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/exec.hpp"
#include "md/particles.hpp"

namespace coe::md {

/// Half neighbor list (each pair stored once, i < j), built via cell
/// binning; valid until any particle moves more than skin/2.
class NeighborList {
 public:
  NeighborList(double rcut, double skin) : rcut_(rcut), skin_(skin) {}

  /// Rebuilds from scratch; O(N) with cell lists.
  void build(core::ExecContext& ctx, const Particles& p, const Box& box);

  /// Brute-force O(N^2) reference builder (tests/ablation).
  void build_n2(core::ExecContext& ctx, const Particles& p, const Box& box);

  /// True if any particle moved far enough to invalidate the list.
  bool needs_rebuild(const Particles& p, const Box& box) const;

  std::size_t num_pairs() const { return pair_j_.size(); }
  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::uint32_t> pair_j() const { return pair_j_; }

  double cutoff_with_skin() const { return rcut_ + skin_; }

  /// Appends the list state (pairs + build-time reference positions) for
  /// checkpointing. Restoring instead of rebuilding preserves the pair
  /// *ordering*, so replayed force sums are bitwise identical.
  void save_state(std::vector<double>& out) const;
  /// Restores state written by save_state; returns the advanced cursor.
  const double* load_state(const double* in);

 private:
  void snapshot(const Particles& p);

  double rcut_, skin_;
  std::vector<std::size_t> row_ptr_;   ///< per-particle neighbor offsets
  std::vector<std::uint32_t> pair_j_;  ///< neighbor indices (j > i)
  std::vector<double> x0_, y0_, z0_;   ///< positions at build time
};

}  // namespace coe::md
