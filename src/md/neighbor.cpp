#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

namespace coe::md {

void NeighborList::snapshot(const Particles& p) {
  x0_ = p.x;
  y0_ = p.y;
  z0_ = p.z;
}

bool NeighborList::needs_rebuild(const Particles& p, const Box& box) const {
  if (x0_.size() != p.n) return true;
  const double limit = 0.25 * skin_ * skin_;  // (skin/2)^2
  for (std::size_t i = 0; i < p.n; ++i) {
    const double dx = box.wrap(p.x[i] - x0_[i]);
    const double dy = box.wrap(p.y[i] - y0_[i]);
    const double dz = box.wrap(p.z[i] - z0_[i]);
    if (dx * dx + dy * dy + dz * dz > limit) return true;
  }
  return false;
}

void NeighborList::build(core::ExecContext& ctx, const Particles& p,
                         const Box& box) {
  const double rc = cutoff_with_skin();
  const double rc2 = rc * rc;
  // Cell binning.
  std::size_t ncell = static_cast<std::size_t>(box.length / rc);
  if (ncell < 1) ncell = 1;
  const double cell_size = box.length / static_cast<double>(ncell);
  const std::size_t ncell3 = ncell * ncell * ncell;

  auto cell_of = [&](std::size_t i) {
    auto clampc = [&](double c) {
      auto v = static_cast<std::size_t>(box.fold(c) / cell_size);
      return v >= ncell ? ncell - 1 : v;
    };
    return (clampc(p.x[i]) * ncell + clampc(p.y[i])) * ncell + clampc(p.z[i]);
  };

  std::vector<std::vector<std::uint32_t>> cells(ncell3);
  for (std::size_t i = 0; i < p.n; ++i) {
    cells[cell_of(i)].push_back(static_cast<std::uint32_t>(i));
  }

  row_ptr_.assign(p.n + 1, 0);
  std::vector<std::vector<std::uint32_t>> per_particle(p.n);

  const long nc = static_cast<long>(ncell);
  // Charge the construction as one kernel sweep over particles.
  ctx.record_kernel({30.0 * static_cast<double>(p.n),
                     64.0 * static_cast<double>(p.n)});
  for (std::size_t ci = 0; ci < ncell; ++ci) {
    for (std::size_t cj = 0; cj < ncell; ++cj) {
      for (std::size_t ck = 0; ck < ncell; ++ck) {
        const auto& home = cells[(ci * ncell + cj) * ncell + ck];
        if (home.empty()) continue;
        for (long di = -1; di <= 1; ++di) {
          for (long dj = -1; dj <= 1; ++dj) {
            for (long dk = -1; dk <= 1; ++dk) {
              // With few cells, neighbor offsets alias; dedupe via the
              // canonical wrapped index and skip repeats.
              const std::size_t ni =
                  static_cast<std::size_t>((static_cast<long>(ci) + di + nc) %
                                           nc);
              const std::size_t nj =
                  static_cast<std::size_t>((static_cast<long>(cj) + dj + nc) %
                                           nc);
              const std::size_t nk =
                  static_cast<std::size_t>((static_cast<long>(ck) + dk + nc) %
                                           nc);
              const auto& other = cells[(ni * ncell + nj) * ncell + nk];
              for (auto a : home) {
                for (auto b : other) {
                  if (b <= a) continue;
                  const double dx = box.wrap(p.x[a] - p.x[b]);
                  const double dy = box.wrap(p.y[a] - p.y[b]);
                  const double dz = box.wrap(p.z[a] - p.z[b]);
                  if (dx * dx + dy * dy + dz * dz <= rc2) {
                    per_particle[a].push_back(b);
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  // Deduplicate (cell aliasing at small ncell) and flatten to CSR shape.
  pair_j_.clear();
  for (std::size_t i = 0; i < p.n; ++i) {
    auto& nb = per_particle[i];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    row_ptr_[i] = pair_j_.size();
    pair_j_.insert(pair_j_.end(), nb.begin(), nb.end());
  }
  row_ptr_[p.n] = pair_j_.size();
  snapshot(p);
}

void NeighborList::build_n2(core::ExecContext& ctx, const Particles& p,
                            const Box& box) {
  const double rc2 = cutoff_with_skin() * cutoff_with_skin();
  row_ptr_.assign(p.n + 1, 0);
  pair_j_.clear();
  ctx.record_kernel(
      {10.0 * static_cast<double>(p.n) * static_cast<double>(p.n),
       24.0 * static_cast<double>(p.n) * static_cast<double>(p.n)});
  for (std::size_t i = 0; i < p.n; ++i) {
    row_ptr_[i] = pair_j_.size();
    for (std::size_t j = i + 1; j < p.n; ++j) {
      const double dx = box.wrap(p.x[i] - p.x[j]);
      const double dy = box.wrap(p.y[i] - p.y[j]);
      const double dz = box.wrap(p.z[i] - p.z[j]);
      if (dx * dx + dy * dy + dz * dz <= rc2) {
        pair_j_.push_back(static_cast<std::uint32_t>(j));
      }
    }
  }
  row_ptr_[p.n] = pair_j_.size();
  snapshot(p);
}

void NeighborList::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(row_ptr_.size()));
  for (std::size_t v : row_ptr_) out.push_back(static_cast<double>(v));
  out.push_back(static_cast<double>(pair_j_.size()));
  for (std::uint32_t v : pair_j_) out.push_back(static_cast<double>(v));
  out.push_back(static_cast<double>(x0_.size()));
  out.insert(out.end(), x0_.begin(), x0_.end());
  out.insert(out.end(), y0_.begin(), y0_.end());
  out.insert(out.end(), z0_.begin(), z0_.end());
}

const double* NeighborList::load_state(const double* in) {
  const auto nrow = static_cast<std::size_t>(*in++);
  row_ptr_.resize(nrow);
  for (auto& v : row_ptr_) v = static_cast<std::size_t>(*in++);
  const auto npair = static_cast<std::size_t>(*in++);
  pair_j_.resize(npair);
  for (auto& v : pair_j_) v = static_cast<std::uint32_t>(*in++);
  const auto n = static_cast<std::size_t>(*in++);
  x0_.assign(in, in + n);
  in += n;
  y0_.assign(in, in + n);
  in += n;
  z0_.assign(in, in + n);
  in += n;
  return in;
}

}  // namespace coe::md
