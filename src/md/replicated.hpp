#pragma once
// Replicated-data MD on the coe::mpi substrate (the decomposition ddcMD
// grew out of, and the paper's Section 4.6 baseline for small systems):
// every rank holds the full system and integrates identically; the pair
// force pass is split by neighbor-list rows, and one aggregated collective
// per step sums the partial force arrays plus the energy and virial —
// [fx | fy | fz | energy | virial] in a single (3n+2)-wide allreduce,
// instead of five rounds. With a rank-count-only reduction tree (recursive
// doubling, naive) the aggregated and separate forms reduce every element
// through the identical association, so trajectories are bitwise equal.

#include <cstddef>
#include <cstdint>

#include "core/machine.hpp"
#include "mpi/comm.hpp"
#include "net/collective.hpp"
#include "net/reprice.hpp"

namespace coe::md {

struct ReplicatedConfig {
  std::size_t per_side = 5;   ///< particles per lattice side (n = side^3)
  double density = 0.8;
  double temperature = 1.0;
  double rcut = 2.5;
  double skin = 0.3;
  double dt = 0.002;
  int steps = 20;
  std::uint64_t seed = 2718;
  /// One (3n+2)-wide allreduce per step vs five separate rounds.
  bool aggregate = true;
  /// Reduction algorithm. Note the ring chunks by vector length, so only
  /// length-independent trees (RecursiveDoubling, Naive, Central) keep the
  /// aggregated and separate forms bitwise identical to each other.
  net::AllreduceAlgo algo = net::AllreduceAlgo::RecursiveDoubling;

  /// When set, every rank logs its collective traffic and the modeled
  /// compute deltas between reductions here (for coe::xray merging; not
  /// owned, may be null).
  net::NetLog* log = nullptr;
  /// When set alongside `log`, result.modeled carries the reprice summary
  /// of the logged traffic (not owned, may be null).
  const hsim::ClusterModel* cluster = nullptr;
};

struct ReplicatedResult {
  double potential = 0.0;    ///< final-step potential energy
  double kinetic = 0.0;
  double temperature = 0.0;
  double virial = 0.0;
  std::size_t n = 0;         ///< particle count
  mpi::TrafficStats traffic;
  net::NetStats net;         ///< summed over ranks
  std::size_t reductions_per_step = 0;
  net::RepriceResult modeled;  ///< populated when cfg.log and cfg.cluster set
};

/// Runs `ranks` replicated-data ranks for cfg.steps velocity-Verlet steps
/// (NVE, LJ fluid); returns rank 0's final thermodynamic state, which every
/// rank holds identically.
ReplicatedResult replicated_md_run(int ranks, const ReplicatedConfig& cfg);

}  // namespace coe::md
