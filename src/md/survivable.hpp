#pragma once
// Survivable replicated-data MD (DESIGN.md §17): replicated.cpp's
// velocity-Verlet LJ loop re-hosted on phoenix::run_survivable. Every
// logical part holds a full replica and computes the pair forces over its
// neighbor-list row slice; the partial [fx | fy | fz | energy | virial]
// arrays are summed by the driver's fixed binary part-tree (real p2p
// messages, association independent of the part->rank mapping), so a run
// that rides through a rank kill replays to a bitwise-identical trajectory.
// The checkpoint blob carries positions, velocities, forces, AND the
// neighbor list (pairs + build-reference positions): the conditional
// rebuild schedule is part of the trajectory, so the list must roll back
// with the state it was built from.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/machine.hpp"
#include "net/reprice.hpp"
#include "phoenix/driver.hpp"

namespace coe::md {

struct SurvivableMdConfig {
  std::size_t per_side = 4;  ///< particles per lattice side (n = side^3)
  double density = 0.8;
  double temperature = 1.0;
  double rcut = 2.5;
  double skin = 0.3;
  double dt = 0.002;
  int steps = 8;  ///< velocity-Verlet steps (driver adds the force init)
  std::uint64_t seed = 2718;

  int workers = 4;
  int spares = 0;
  phoenix::RepairPolicy policy = phoenix::RepairPolicy::Shrink;
  int ckpt_every = 4;  ///< in driver steps (step 0 is the initial forces)

  hsim::MachineModel node = hsim::machines::host();
  const hsim::ClusterModel* cluster = nullptr;
  net::NetLog* log = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  bool trace_ranks = false;
  std::function<bool(int, std::size_t)> fault_hook;
  mpi::RunOptions mpi;
};

struct SurvivableMdResult {
  double potential = 0.0;  ///< final-step potential energy
  double kinetic = 0.0;
  double temperature = 0.0;
  double virial = 0.0;
  std::size_t n = 0;
  phoenix::SurvivableReport report;
  net::RepriceResult modeled;  ///< populated when cfg.cluster is set
};

/// Runs cfg.workers replica parts (+ cfg.spares parked spares) under the
/// phoenix driver; survives injected rank kills per cfg.policy.
SurvivableMdResult survivable_md_run(const SurvivableMdConfig& cfg);

}  // namespace coe::md
