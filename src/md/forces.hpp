#pragma once
// The templatized generic pair-processing infrastructure (Section 4.6).
// Any potential exposing rcut2() and operator()(r2) -> PairEval plugs in;
// the same traversal computes forces, potential energy, and the virial
// (needed by the Berendsen barostat).

#include <span>

#include "core/exec.hpp"
#include "md/neighbor.hpp"
#include "md/particles.hpp"
#include "md/potentials.hpp"

namespace coe::md {

struct PairResult {
  double energy = 0.0;
  double virial = 0.0;  ///< sum r . f over pairs (for pressure)
};

/// Evaluates the potential over rows [row_lo, row_hi) of the half neighbor
/// list, accumulating forces into p.f{x,y,z}. The row-range form is the
/// replicated-data decomposition's unit of work: each rank takes a slice of
/// rows and the partial force arrays are summed by one collective
/// (md/replicated.hpp). Charged to the context as one fused kernel
/// (ddcMD's force kernel is the hot spot the paper hand-optimized).
template <typename Potential>
PairResult compute_pair_forces(core::ExecContext& ctx, Particles& p,
                               const Box& box, const NeighborList& nl,
                               const Potential& pot, std::size_t row_lo,
                               std::size_t row_hi) {
  const double rc2 = pot.rcut2();
  const auto row = nl.row_ptr();
  const auto nbr = nl.pair_j();
  double energy = 0.0, virial = 0.0;
  // ~45 flops and ~200 bytes per neighbor-list entry (gather + scatter).
  const double npairs = static_cast<double>(row[row_hi] - row[row_lo]);
  ctx.record_kernel({45.0 * npairs, 200.0 * npairs});
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    for (std::size_t k = row[i]; k < row[i + 1]; ++k) {
      const std::size_t j = nbr[k];
      const double dx = box.wrap(p.x[i] - p.x[j]);
      const double dy = box.wrap(p.y[i] - p.y[j]);
      const double dz = box.wrap(p.z[i] - p.z[j]);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 > rc2 || r2 == 0.0) continue;
      const PairEval e = pot(r2);
      energy += e.energy;
      virial += e.fr * r2;
      p.fx[i] += e.fr * dx;
      p.fy[i] += e.fr * dy;
      p.fz[i] += e.fr * dz;
      p.fx[j] -= e.fr * dx;
      p.fy[j] -= e.fr * dy;
      p.fz[j] -= e.fr * dz;
    }
  }
  return {energy, virial};
}

/// Full-list evaluation (all rows).
template <typename Potential>
PairResult compute_pair_forces(core::ExecContext& ctx, Particles& p,
                               const Box& box, const NeighborList& nl,
                               const Potential& pot) {
  return compute_pair_forces(ctx, p, box, nl, pot, 0, p.n);
}

/// Harmonic bond i-j with rest length r0 and stiffness k.
struct Bond {
  std::uint32_t i, j;
  double r0;
  double k;
};

/// Harmonic angle i-j-k (j is the apex) with rest angle theta0.
struct Angle {
  std::uint32_t i, j, k;
  double theta0;
  double kth;
};

/// Bonded-force evaluation; returns the bonded potential energy.
double compute_bond_forces(core::ExecContext& ctx, Particles& p,
                           const Box& box, std::span<const Bond> bonds);
double compute_angle_forces(core::ExecContext& ctx, Particles& p,
                            const Box& box, std::span<const Angle> angles);

/// Instantaneous pressure from the virial theorem (reduced units).
double pressure(const Particles& p, const Box& box, double pair_virial);

}  // namespace coe::md
