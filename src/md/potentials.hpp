#pragma once
// Pair potentials for the templatized generic pair-processing
// infrastructure (Section 4.6): "we developed a templatized generic pair
// processing infrastructure that can be used to efficiently implement a
// diverse set of potential forms." Each potential supplies energy and
// force-over-distance at squared separation; all are cut-and-shifted so
// NVE trajectories conserve energy.

#include <cmath>

namespace coe::md {

/// Result of one pair evaluation: potential energy and f/r (so the force
/// vector is fr * (dx, dy, dz)).
struct PairEval {
  double energy = 0.0;
  double fr = 0.0;
};

/// 12-6 Lennard-Jones, cut & energy-shifted at rcut.
class LennardJones {
 public:
  LennardJones(double epsilon, double sigma, double rcut)
      : eps_(epsilon), sig2_(sigma * sigma), rcut2_(rcut * rcut) {
    const double s6 = std::pow(sig2_ / rcut2_, 3.0);
    shift_ = 4.0 * eps_ * (s6 * s6 - s6);
  }

  double rcut2() const { return rcut2_; }

  PairEval operator()(double r2) const {
    const double s2 = sig2_ / r2;
    const double s6 = s2 * s2 * s2;
    const double s12 = s6 * s6;
    return {4.0 * eps_ * (s12 - s6) - shift_,
            24.0 * eps_ * (2.0 * s12 - s6) / r2};
  }

 private:
  double eps_, sig2_, rcut2_, shift_;
};

/// Buckingham exp-6: A exp(-B r) - C / r^6, cut & shifted.
class Exp6 {
 public:
  Exp6(double a, double b, double c, double rcut)
      : a_(a), b_(b), c_(c), rcut2_(rcut * rcut) {
    shift_ = raw_energy(rcut);
  }

  double rcut2() const { return rcut2_; }

  PairEval operator()(double r2) const {
    const double r = std::sqrt(r2);
    const double e = raw_energy(r) - shift_;
    const double r6 = r2 * r2 * r2;
    // -dU/dr = A B exp(-B r) - 6 C / r^7; fr = (-dU/dr)/r.
    const double fr = (a_ * b_ * std::exp(-b_ * r) - 6.0 * c_ / (r6 * r)) / r;
    return {e, fr};
  }

 private:
  double raw_energy(double r) const {
    const double r6 = r * r * r * r * r * r;
    return a_ * std::exp(-b_ * r) - c_ / r6;
  }

  double a_, b_, c_, rcut2_, shift_;
};

/// Martini-style coarse-grained interaction: LJ 12-6 plus a screened
/// Coulomb term with the standard Martini shift to zero at rcut.
class MartiniPair {
 public:
  MartiniPair(double epsilon, double sigma, double q1q2, double rcut)
      : lj_(epsilon, sigma, rcut), qq_(q1q2), rcut2_(rcut * rcut) {
    coul_shift_ = qq_ / rcut;
  }

  double rcut2() const { return rcut2_; }

  PairEval operator()(double r2) const {
    PairEval e = lj_(r2);
    if (qq_ != 0.0) {
      const double r = std::sqrt(r2);
      e.energy += qq_ / r - coul_shift_;
      e.fr += qq_ / (r2 * r);
    }
    return e;
  }

 private:
  LennardJones lj_;
  double qq_, rcut2_, coul_shift_;
};

}  // namespace coe::md
