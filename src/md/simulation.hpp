#pragma once
// The ddcMD-style MD driver: velocity-Verlet with Langevin thermostat,
// Berendsen barostat, and SHAKE distance constraints. Two placements model
// the paper's comparison (Section 4.6):
//
//  * Placement::AllGpu -- the ddcMD port: "we moved the entire MD loop to
//    the GPU" -- every kernel is charged to the device context and no
//    per-step host transfers occur.
//  * Placement::Split  -- the GROMACS-like baseline: nonbonded forces on
//    the GPU (single precision), bonded terms + integration on the CPU,
//    with positions shipped to the device and forces shipped back every
//    step.

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "md/forces.hpp"
#include "prof/span.hpp"
#include "resil/checkpoint.hpp"

namespace coe::md {

enum class Thermostat { None, Langevin };
enum class Barostat { None, Berendsen };
enum class Placement { AllGpu, Split };

struct SimConfig {
  double dt = 0.002;
  Thermostat thermostat = Thermostat::None;
  double temperature = 1.0;
  double langevin_gamma = 1.0;
  Barostat barostat = Barostat::None;
  double pressure = 1.0;
  double tau_p = 1.0;
  double compressibility = 0.05;
  Placement placement = Placement::AllGpu;
  std::uint64_t seed = 2718;
  /// Optional span sink: when set, each step() wraps its stages in
  /// "md_step" / "integrate" / "constraints" / "forces" / "thermostat"
  /// prof::Scope regions.
  prof::Profiler* profiler = nullptr;
};

/// A distance constraint |r_i - r_j| = d (SHAKE).
struct Constraint {
  std::uint32_t i, j;
  double d;
};

struct StepInfo {
  double potential = 0.0;
  double kinetic = 0.0;
  double virial = 0.0;
  double pressure = 0.0;
  std::size_t shake_iters = 0;

  double total() const { return potential + kinetic; }
};

template <typename Potential>
class Simulation : public resil::Checkpointable {
 public:
  Simulation(core::ExecContext& device, core::ExecContext& host,
             Particles particles, Box box, Potential pot, SimConfig cfg,
             double skin = 0.3)
      : device_(&device), host_(&host), p_(std::move(particles)), box_(box),
        pot_(std::move(pot)), cfg_(cfg),
        nl_(std::sqrt(pot_.rcut2()), skin), rng_(cfg.seed) {
    if (cfg_.placement == Placement::AllGpu) {
      // One-time upload of the whole system; it stays resident (named so an
      // attached residency arena tracks it and can evict under pressure).
      device_->upload("md.system", static_cast<double>(p_.n) * 9.0 * 8.0);
    }
    nl_.build(*device_, p_, box_);
    compute_forces();
  }

  Particles& particles() { return p_; }
  const Box& box() const { return box_; }
  void set_bonds(std::vector<Bond> b) { bonds_ = std::move(b); }
  void set_angles(std::vector<Angle> a) { angles_ = std::move(a); }
  void set_constraints(std::vector<Constraint> c) {
    constraints_ = std::move(c);
  }

  /// One velocity-Verlet step (with optional thermostat/barostat/SHAKE).
  StepInfo step() {
    const double dt = cfg_.dt;
    auto& integ = integration_ctx();
    prof::Scope step_span(cfg_.profiler, device_, "md_step");
    // Half kick, snapshot (SHAKE reference), then drift -- fused into one
    // kernel as ddcMD does, expressed through the fusion API. Stage
    // workloads sum to the {9, 96}-per-particle kernel charged before,
    // and each stage touches only particle i, so the per-particle
    // interleaving leaves the trajectory bitwise unchanged.
    xprev_.resize(p_.n);
    yprev_.resize(p_.n);
    zprev_.resize(p_.n);
    {
      prof::Scope kick_span(cfg_.profiler, &integ, "integrate");
      integ.fused(p_.n)
          .then({3.0, 36.0},
                [&](std::size_t i) {
                  const double inv_m = 1.0 / p_.mass[i];
                  p_.vx[i] += 0.5 * dt * p_.fx[i] * inv_m;
                  p_.vy[i] += 0.5 * dt * p_.fy[i] * inv_m;
                  p_.vz[i] += 0.5 * dt * p_.fz[i] * inv_m;
                })
          .then({0.0, 24.0},
                [&](std::size_t i) {
                  xprev_[i] = p_.x[i];
                  yprev_[i] = p_.y[i];
                  zprev_[i] = p_.z[i];
                })
          .then({6.0, 36.0},
                [&](std::size_t i) {
                  p_.x[i] = box_.fold(p_.x[i] + dt * p_.vx[i]);
                  p_.y[i] = box_.fold(p_.y[i] + dt * p_.vy[i]);
                  p_.z[i] = box_.fold(p_.z[i] + dt * p_.vz[i]);
                })
          .launch();
    }

    StepInfo info;
    if (!constraints_.empty()) {
      prof::Scope shake_span(cfg_.profiler, &integ, "constraints");
      info.shake_iters = shake(dt);
    }

    {
      prof::Scope force_span(cfg_.profiler, device_, "forces");
      if (nl_.needs_rebuild(p_, box_)) nl_.build(*device_, p_, box_);
      info = compute_forces(info);
    }

    {
      prof::Scope kick_span(cfg_.profiler, &integ, "integrate");
      // Second half kick (same pricing as the record_kernel it replaces).
      integ.forall(p_.n, {6.0, 96.0}, [&](std::size_t i) {
        const double inv_m = 1.0 / p_.mass[i];
        p_.vx[i] += 0.5 * dt * p_.fx[i] * inv_m;
        p_.vy[i] += 0.5 * dt * p_.fy[i] * inv_m;
        p_.vz[i] += 0.5 * dt * p_.fz[i] * inv_m;
      });
    }

    if (cfg_.thermostat != Thermostat::None ||
        cfg_.barostat != Barostat::None) {
      prof::Scope thermo_span(cfg_.profiler, &integ, "thermostat");
      if (cfg_.thermostat == Thermostat::Langevin) apply_langevin(dt);
      if (cfg_.barostat == Barostat::Berendsen) {
        apply_berendsen(dt, info.pressure);
      }
    }

    info.kinetic = p_.kinetic_energy();
    info.pressure = pressure(p_, box_, info.virial);
    return info;
  }

  /// Current energies without advancing time.
  StepInfo measure() {
    StepInfo info = compute_forces();
    info.kinetic = p_.kinetic_energy();
    info.pressure = pressure(p_, box_, info.virial);
    return info;
  }

  /// Priced |sum_i m_i v_i| — the conserved-momentum invariant coe::guard's
  /// drift detector monitors (exactly conserved with the thermostat off,
  /// near-stationary per step with Langevin at equilibrium).
  double momentum_norm() {
    auto& ctx = integration_ctx();
    double p2 = 0.0;
    for (const auto* v : {&p_.vx, &p_.vy, &p_.vz}) {
      const auto& vel = *v;
      const double c = ctx.reduce_sum(p_.n, {2.0, 16.0}, [&](std::size_t i) {
        return p_.mass[i] * vel[i];
      });
      p2 += c * c;
    }
    return std::sqrt(p2);
  }

  /// Named views of the live particle arrays for SDC targeting and
  /// checksum scrubbing (positions, velocities, forces — the state a bit
  /// flip would silently propagate through the trajectory).
  std::vector<std::pair<std::string, std::span<double>>> sdc_targets() {
    return {{"md.x", std::span<double>(p_.x)},
            {"md.y", std::span<double>(p_.y)},
            {"md.z", std::span<double>(p_.z)},
            {"md.vx", std::span<double>(p_.vx)},
            {"md.vy", std::span<double>(p_.vy)},
            {"md.vz", std::span<double>(p_.vz)},
            {"md.fx", std::span<double>(p_.fx)},
            {"md.fy", std::span<double>(p_.fy)},
            {"md.fz", std::span<double>(p_.fz)}};
  }

  /// Checkpointable: the full dynamic state — positions, velocities,
  /// forces, the (barostat-scaled) box, the thermostat RNG stream, and the
  /// neighbor list with its reference positions. Restoring and re-stepping
  /// reproduces the original trajectory bitwise.
  void save_state(std::vector<double>& out) const override {
    out.clear();
    out.push_back(box_.length);
    rng_.save_state(out);
    for (const auto* v : {&p_.x, &p_.y, &p_.z, &p_.vx, &p_.vy, &p_.vz,
                          &p_.fx, &p_.fy, &p_.fz}) {
      out.insert(out.end(), v->begin(), v->end());
    }
    nl_.save_state(out);
  }

  void restore_state(const std::vector<double>& in) override {
    const double* c = in.data();
    box_.length = *c++;
    c = rng_.load_state(c);
    for (auto* v : {&p_.x, &p_.y, &p_.z, &p_.vx, &p_.vy, &p_.vz, &p_.fx,
                    &p_.fy, &p_.fz}) {
      std::copy(c, c + p_.n, v->begin());
      c += p_.n;
    }
    nl_.load_state(c);
  }

 private:
  core::ExecContext& nonbonded_ctx() { return *device_; }
  core::ExecContext& integration_ctx() {
    return cfg_.placement == Placement::AllGpu ? *device_ : *host_;
  }

  StepInfo compute_forces(StepInfo info = StepInfo{}) {
    const double xfer = static_cast<double>(p_.n) * 3.0 * 4.0;
    if (cfg_.placement == Placement::Split) {
      // Ship positions to the device, forces back (single precision). The
      // CPU integrator rewrote the positions, so the upload never elides.
      device_->touch_host("md.positions", xfer, core::MemAccess::Write);
      device_->upload("md.positions", xfer);
    } else {
      // The whole system lives on the device; each force pass rewrites it.
      device_->touch_device("md.system", static_cast<double>(p_.n) * 9.0 * 8.0,
                            core::MemAccess::Write);
    }
    p_.zero_forces();
    const PairResult pr = compute_pair_forces(*device_, p_, box_, nl_, pot_);
    if (cfg_.placement == Placement::Split) {
      device_->touch_device("md.forces", xfer, core::MemAccess::Write);
      device_->writeback("md.forces", xfer);
    }
    auto& bonded = integration_ctx();
    info.potential = pr.energy;
    info.virial = pr.virial;
    if (!bonds_.empty()) {
      info.potential += compute_bond_forces(bonded, p_, box_, bonds_);
    }
    if (!angles_.empty()) {
      info.potential += compute_angle_forces(bonded, p_, box_, angles_);
    }
    info.pressure = pressure(p_, box_, info.virial);
    return info;
  }

  std::size_t shake(double dt) {
    // Iterative SHAKE on positions, then velocity correction.
    auto& ctx = integration_ctx();
    const double tol = 1e-10;
    std::size_t iters = 0;
    for (; iters < 100; ++iters) {
      double worst = 0.0;
      for (const auto& c : constraints_) {
        const double dx = box_.wrap(p_.x[c.i] - p_.x[c.j]);
        const double dy = box_.wrap(p_.y[c.i] - p_.y[c.j]);
        const double dz = box_.wrap(p_.z[c.i] - p_.z[c.j]);
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double diff = r2 - c.d * c.d;
        worst = std::max(worst, std::abs(diff) / (c.d * c.d));
        if (std::abs(diff) < tol) continue;
        // Reference vector from pre-drift positions (classic SHAKE).
        const double rx = box_.wrap(xprev_[c.i] - xprev_[c.j]);
        const double ry = box_.wrap(yprev_[c.i] - yprev_[c.j]);
        const double rz = box_.wrap(zprev_[c.i] - zprev_[c.j]);
        const double mi = 1.0 / p_.mass[c.i];
        const double mj = 1.0 / p_.mass[c.j];
        const double dot = rx * dx + ry * dy + rz * dz;
        if (std::abs(dot) < 1e-14) continue;
        const double g = diff / (2.0 * (mi + mj) * dot);
        p_.x[c.i] = box_.fold(p_.x[c.i] - g * mi * rx);
        p_.y[c.i] = box_.fold(p_.y[c.i] - g * mi * ry);
        p_.z[c.i] = box_.fold(p_.z[c.i] - g * mi * rz);
        p_.x[c.j] = box_.fold(p_.x[c.j] + g * mj * rx);
        p_.y[c.j] = box_.fold(p_.y[c.j] + g * mj * ry);
        p_.z[c.j] = box_.fold(p_.z[c.j] + g * mj * rz);
      }
      if (worst < tol) break;
    }
    // Velocity correction so v matches the constrained trajectory.
    for (std::size_t i = 0; i < p_.n; ++i) {
      p_.vx[i] += (box_.wrap(p_.x[i] - xprev_[i]) - dt * p_.vx[i]) / dt;
      p_.vy[i] += (box_.wrap(p_.y[i] - yprev_[i]) - dt * p_.vy[i]) / dt;
      p_.vz[i] += (box_.wrap(p_.z[i] - zprev_[i]) - dt * p_.vz[i]) / dt;
    }
    ctx.record_kernel(
        {40.0 * double(constraints_.size()) * double(iters + 1),
         200.0 * double(constraints_.size()) * double(iters + 1)});
    return iters;
  }

  void apply_langevin(double dt) {
    auto& ctx = integration_ctx();
    const double c1 = std::exp(-cfg_.langevin_gamma * dt);
    ctx.record_kernel({12.0 * double(p_.n), 48.0 * double(p_.n)});
    for (std::size_t i = 0; i < p_.n; ++i) {
      const double sigma =
          std::sqrt(cfg_.temperature * (1.0 - c1 * c1) / p_.mass[i]);
      p_.vx[i] = c1 * p_.vx[i] + sigma * rng_.normal();
      p_.vy[i] = c1 * p_.vy[i] + sigma * rng_.normal();
      p_.vz[i] = c1 * p_.vz[i] + sigma * rng_.normal();
    }
  }

  void apply_berendsen(double dt, double current_pressure) {
    auto& ctx = integration_ctx();
    const double mu = std::cbrt(
        1.0 - cfg_.compressibility * dt / cfg_.tau_p *
                  (cfg_.pressure - current_pressure));
    box_.length *= mu;
    ctx.record_kernel({3.0 * double(p_.n), 48.0 * double(p_.n)});
    for (std::size_t i = 0; i < p_.n; ++i) {
      p_.x[i] *= mu;
      p_.y[i] *= mu;
      p_.z[i] *= mu;
    }
  }

  core::ExecContext* device_;
  core::ExecContext* host_;
  Particles p_;
  Box box_;
  Potential pot_;
  SimConfig cfg_;
  NeighborList nl_;
  core::Rng rng_;
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
  std::vector<Constraint> constraints_;
  std::vector<double> xprev_, yprev_, zprev_;
};

}  // namespace coe::md
