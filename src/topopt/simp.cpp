#include "topopt/simp.hpp"

#include <algorithm>
#include <cmath>

#include "la/krylov.hpp"
#include "la/vector_ops.hpp"

namespace coe::topopt {

namespace {

constexpr double kNu = 0.3;

/// Standard bilinear-quad plane-stress element stiffness (Sigmund's
/// 99-line layout), for E = 1.
const std::array<double, 64>& ke_matrix() {
  static const std::array<double, 64> ke = [] {
    const double nu = kNu;
    const double k[8] = {
        0.5 - nu / 6.0,        0.125 + nu / 8.0,  -0.25 - nu / 12.0,
        -0.125 + 3.0 * nu / 8.0, -0.25 + nu / 12.0, -0.125 - nu / 8.0,
        nu / 6.0,              0.125 - 3.0 * nu / 8.0};
    const int idx[8][8] = {{0, 1, 2, 3, 4, 5, 6, 7}, {1, 0, 7, 6, 5, 4, 3, 2},
                           {2, 7, 0, 5, 6, 3, 4, 1}, {3, 6, 5, 0, 7, 2, 1, 4},
                           {4, 5, 6, 7, 0, 1, 2, 3}, {5, 4, 3, 2, 1, 0, 7, 6},
                           {6, 3, 4, 1, 2, 7, 0, 5}, {7, 2, 1, 4, 3, 6, 5, 0}};
    std::array<double, 64> m{};
    const double scale = 1.0 / (1.0 - nu * nu);
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        m[i * 8 + j] = scale * k[idx[i][j]];
      }
    }
    return m;
  }();
  return ke;
}

}  // namespace

const double* TopOpt::element_stiffness() { return ke_matrix().data(); }

TopOpt::TopOpt(core::ExecContext& ctx, TopOptConfig cfg)
    : ctx_(&ctx), cfg_(cfg), x_(cfg.nelx * cfg.nely, cfg.volfrac),
      u_(num_dofs(), 0.0), f_(num_dofs(), 0.0), fixed_(num_dofs(), false) {
  // Cantilever: clamp the left edge.
  for (std::size_t iy = 0; iy <= cfg_.nely; ++iy) {
    fixed_[2 * node(0, iy)] = true;
    fixed_[2 * node(0, iy) + 1] = true;
  }
  // Unit downward load at the middle of the right edge.
  f_[2 * node(cfg_.nelx, cfg_.nely / 2) + 1] = -1.0;
}

void TopOpt::element_dofs(std::size_t ex, std::size_t ey,
                          std::size_t dofs[8]) const {
  const std::size_t n1 = node(ex, ey);
  const std::size_t n2 = node(ex + 1, ey);
  dofs[0] = 2 * n1;
  dofs[1] = 2 * n1 + 1;
  dofs[2] = 2 * n2;
  dofs[3] = 2 * n2 + 1;
  dofs[4] = 2 * n2 + 2;
  dofs[5] = 2 * n2 + 3;
  dofs[6] = 2 * n1 + 2;
  dofs[7] = 2 * n1 + 3;
}

double TopOpt::bytes_per_element() const {
  // 8 dof gathers + 8 scatters (16 B each with indices) plus KE streaming;
  // the texture-cache path catches most repeated gathers on Pascal.
  const double gathers = cfg_.texture_cache ? 0.45 * 16.0 * 8.0 : 16.0 * 8.0;
  return gathers + 16.0 * 8.0 + 8.0;
}

void TopOpt::apply_stiffness(std::span<const double> u,
                             std::span<double> y) const {
  const auto& ke = ke_matrix();
  std::fill(y.begin(), y.end(), 0.0);
  ctx_->record_kernel(
      {140.0 * static_cast<double>(num_elements()),
       bytes_per_element() * static_cast<double>(num_elements())});
  std::size_t dofs[8];
  for (std::size_t ex = 0; ex < cfg_.nelx; ++ex) {
    for (std::size_t ey = 0; ey < cfg_.nely; ++ey) {
      element_dofs(ex, ey, dofs);
      const double e = young(x_[ex * cfg_.nely + ey]);
      double ue[8];
      for (int i = 0; i < 8; ++i) {
        ue[i] = fixed_[dofs[i]] ? 0.0 : u[dofs[i]];
      }
      for (int i = 0; i < 8; ++i) {
        double s = 0.0;
        for (int j = 0; j < 8; ++j) s += ke[i * 8 + j] * ue[j];
        y[dofs[i]] += e * s;
      }
    }
  }
  for (std::size_t d = 0; d < y.size(); ++d) {
    if (fixed_[d]) y[d] = u[d];
  }
}

la::CsrMatrix TopOpt::assemble() const {
  const auto& ke = ke_matrix();
  std::vector<la::Triplet> trips;
  std::size_t dofs[8];
  for (std::size_t ex = 0; ex < cfg_.nelx; ++ex) {
    for (std::size_t ey = 0; ey < cfg_.nely; ++ey) {
      element_dofs(ex, ey, dofs);
      const double e = young(x_[ex * cfg_.nely + ey]);
      for (int i = 0; i < 8; ++i) {
        if (fixed_[dofs[i]]) continue;
        for (int j = 0; j < 8; ++j) {
          if (fixed_[dofs[j]]) continue;
          trips.push_back({dofs[i], dofs[j], e * ke[i * 8 + j]});
        }
      }
    }
  }
  for (std::size_t d = 0; d < num_dofs(); ++d) {
    if (fixed_[d]) trips.push_back({d, d, 1.0});
  }
  return la::CsrMatrix::from_triplets(num_dofs(), num_dofs(),
                                      std::move(trips));
}

std::vector<double> TopOpt::stiffness_diagonal() const {
  const auto& ke = ke_matrix();
  std::vector<double> d(num_dofs(), 0.0);
  std::size_t dofs[8];
  for (std::size_t ex = 0; ex < cfg_.nelx; ++ex) {
    for (std::size_t ey = 0; ey < cfg_.nely; ++ey) {
      element_dofs(ex, ey, dofs);
      const double e = young(x_[ex * cfg_.nely + ey]);
      for (int i = 0; i < 8; ++i) d[dofs[i]] += e * ke[i * 8 + i];
    }
  }
  for (std::size_t k = 0; k < num_dofs(); ++k) {
    if (fixed_[k]) d[k] = 1.0;
  }
  return d;
}

IterationInfo TopOpt::iterate() {
  IterationInfo info;

  // FE solve K u = f, matrix-free CG with Jacobi preconditioning.
  struct MatFree final : la::Operator {
    const TopOpt* self;
    std::size_t rows() const override { return self->num_dofs(); }
    std::size_t cols() const override { return self->num_dofs(); }
    void apply(core::ExecContext&, std::span<const double> x,
               std::span<double> y) const override {
      self->apply_stiffness(x, y);
    }
  } op;
  op.self = this;
  struct DiagPrec final : la::Preconditioner {
    std::vector<double> d;
    void apply(core::ExecContext& c, std::span<const double> r,
               std::span<double> z) const override {
      const auto& dd = d;
      c.forall(r.size(), {1.0, 24.0},
               [&](std::size_t i) { z[i] = r[i] / dd[i]; });
    }
  } prec;
  prec.d = stiffness_diagonal();

  std::fill(u_.begin(), u_.end(), 0.0);
  auto res = la::cg(*ctx_, op, prec, f_, u_,
                    {cfg_.cg_max_iters, cfg_.cg_tol, 0.0});
  info.cg_iters = res.iterations;

  // Compliance and sensitivities.
  const auto& ke = ke_matrix();
  const std::size_t nel = num_elements();
  std::vector<double> dc(nel, 0.0);
  std::size_t dofs[8];
  double compliance = 0.0;
  for (std::size_t ex = 0; ex < cfg_.nelx; ++ex) {
    for (std::size_t ey = 0; ey < cfg_.nely; ++ey) {
      element_dofs(ex, ey, dofs);
      double ue[8];
      for (int i = 0; i < 8; ++i) {
        ue[i] = fixed_[dofs[i]] ? 0.0 : u_[dofs[i]];
      }
      double ueku = 0.0;
      for (int i = 0; i < 8; ++i) {
        double s = 0.0;
        for (int j = 0; j < 8; ++j) s += ke[i * 8 + j] * ue[j];
        ueku += ue[i] * s;
      }
      const std::size_t e = ex * cfg_.nely + ey;
      compliance += young(x_[e]) * ueku;
      // dE/dx = penal * x^(penal-1) * (E0 - Emin).
      const double dedx = cfg_.penal * std::pow(x_[e], cfg_.penal - 1.0) *
                          (cfg_.e0 - cfg_.emin);
      dc[e] = -dedx * ueku;
    }
  }
  info.compliance = compliance;

  // Sensitivity filter (Sigmund's mesh-independence filter).
  std::vector<double> dcf(nel, 0.0);
  const auto r = static_cast<std::ptrdiff_t>(std::ceil(cfg_.rmin));
  for (std::ptrdiff_t ex = 0; ex < std::ptrdiff_t(cfg_.nelx); ++ex) {
    for (std::ptrdiff_t ey = 0; ey < std::ptrdiff_t(cfg_.nely); ++ey) {
      double num = 0.0, den = 0.0;
      for (std::ptrdiff_t ix = std::max<std::ptrdiff_t>(ex - r, 0);
           ix <= std::min<std::ptrdiff_t>(ex + r, cfg_.nelx - 1); ++ix) {
        for (std::ptrdiff_t iy = std::max<std::ptrdiff_t>(ey - r, 0);
             iy <= std::min<std::ptrdiff_t>(ey + r, cfg_.nely - 1); ++iy) {
          const double dist = std::sqrt(double((ex - ix) * (ex - ix) +
                                               (ey - iy) * (ey - iy)));
          const double w = cfg_.rmin - dist;
          if (w <= 0.0) continue;
          const std::size_t e2 = std::size_t(ix) * cfg_.nely + std::size_t(iy);
          num += w * x_[e2] * dc[e2];
          den += w;
        }
      }
      const std::size_t e = std::size_t(ex) * cfg_.nely + std::size_t(ey);
      dcf[e] = num / (den * std::max(x_[e], 1e-3));
    }
  }

  // Optimality-criteria update with bisection on the Lagrange multiplier.
  double l1 = 0.0, l2 = 1e9;
  std::vector<double> xnew(nel);
  const double target = cfg_.volfrac * static_cast<double>(nel);
  while (l2 - l1 > 1e-9 * (l1 + l2) + 1e-12) {
    const double lmid = 0.5 * (l1 + l2);
    double vol = 0.0;
    for (std::size_t e = 0; e < nel; ++e) {
      const double b = std::sqrt(std::max(-dcf[e], 0.0) / lmid);
      double xn = x_[e] * b;
      xn = std::clamp(xn, x_[e] - cfg_.move, x_[e] + cfg_.move);
      xn = std::clamp(xn, 1e-3, 1.0);
      xnew[e] = xn;
      vol += xn;
    }
    if (vol > target) {
      l1 = lmid;
    } else {
      l2 = lmid;
    }
  }
  double change = 0.0, vol = 0.0;
  for (std::size_t e = 0; e < nel; ++e) {
    change = std::max(change, std::abs(xnew[e] - x_[e]));
    x_[e] = xnew[e];
    vol += x_[e];
  }
  info.change = change;
  info.volume = vol / static_cast<double>(nel);
  return info;
}

std::vector<IterationInfo> TopOpt::run(std::size_t iters) {
  std::vector<IterationInfo> out;
  out.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) out.push_back(iterate());
  return out;
}

}  // namespace coe::topopt
