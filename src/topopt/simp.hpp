#pragma once
// The Optimization Framework's compute side (Section 4.7, Figure 5): SIMP
// topology optimization of a 2D elastic structure with a matrix-free CG
// solver -- the "matrix-free solver implemented in CUDA and texture cache
// memory" in miniature. The stiffness action never forms a global matrix;
// per-element gathers dominate, which is exactly where the texture cache
// mattered on Pascal (and stopped mattering on Volta).

#include <cstddef>
#include <vector>

#include "core/exec.hpp"
#include "la/csr.hpp"

namespace coe::topopt {

struct TopOptConfig {
  std::size_t nelx = 40;
  std::size_t nely = 20;
  double volfrac = 0.4;   ///< allowed material fraction
  double penal = 3.0;     ///< SIMP penalization
  double rmin = 1.5;      ///< sensitivity filter radius (elements)
  double e0 = 1.0;        ///< solid Young's modulus
  double emin = 1e-9;     ///< void stiffness
  double move = 0.2;      ///< OC move limit
  std::size_t cg_max_iters = 3000;
  double cg_tol = 1e-8;
  /// Models the Pascal texture-cache path: cached element gathers cost
  /// fewer effective bytes (only affects the machine model, not numerics).
  bool texture_cache = false;
};

struct IterationInfo {
  double compliance = 0.0;
  double volume = 0.0;
  double change = 0.0;     ///< max density update this iteration
  std::size_t cg_iters = 0;
};

/// Cantilever plate: left edge clamped, unit downward load at the middle
/// of the right edge.
class TopOpt {
 public:
  TopOpt(core::ExecContext& ctx, TopOptConfig cfg);

  std::size_t num_elements() const { return cfg_.nelx * cfg_.nely; }
  std::size_t num_dofs() const {
    return 2 * (cfg_.nelx + 1) * (cfg_.nely + 1);
  }

  /// One optimization step: FE solve, sensitivities, filter, OC update.
  IterationInfo iterate();
  std::vector<IterationInfo> run(std::size_t iters);

  double density(std::size_t ex, std::size_t ey) const {
    return x_[ex * cfg_.nely + ey];
  }
  std::span<const double> densities() const { return x_; }
  std::span<const double> displacement() const { return u_; }

  /// Matrix-free stiffness action y = K(x) u (fixed dofs condensed).
  void apply_stiffness(std::span<const double> u, std::span<double> y) const;
  /// Assembled oracle for tests.
  la::CsrMatrix assemble() const;
  /// Diagonal of K (for Jacobi preconditioning).
  std::vector<double> stiffness_diagonal() const;

  /// Modeled bytes per element gather+scatter for one apply.
  double bytes_per_element() const;

  static const double* element_stiffness();  ///< 8x8 row-major KE (E = 1)

 private:
  std::size_t node(std::size_t ix, std::size_t iy) const {
    return ix * (cfg_.nely + 1) + iy;
  }
  void element_dofs(std::size_t ex, std::size_t ey,
                    std::size_t dofs[8]) const;
  double young(double rho) const {
    double p = 1.0;
    for (int i = 0; i < static_cast<int>(cfg_.penal); ++i) p *= rho;
    return cfg_.emin + p * (cfg_.e0 - cfg_.emin);
  }

  core::ExecContext* ctx_;
  TopOptConfig cfg_;
  std::vector<double> x_;       ///< element densities
  std::vector<double> u_, f_;   ///< displacement / load
  std::vector<bool> fixed_;
};

}  // namespace coe::topopt
