#include "guard/sdc.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace coe::guard {

SdcInjector::SdcInjector(SdcConfig cfg)
    : cfg_(cfg),
      // The fail-stop clock machinery is reused verbatim: "MTBF" here is
      // the mean time between corruptions.
      clock_(cfg.rate > 0.0 ? 1.0 / cfg.rate : 0.0, cfg.seed),
      // Decorrelate bit/element choices from the arrival times so changing
      // the rate does not reshuffle which bits get hit.
      rng_(cfg.seed ^ 0x9e3779b97f4a7c15ull) {
  if (cfg_.bit_lo < 0) cfg_.bit_lo = 0;
  if (cfg_.bit_hi > 63) cfg_.bit_hi = 63;
  if (cfg_.bit_hi < cfg_.bit_lo) cfg_.bit_hi = cfg_.bit_lo;
  if (cfg_.burst_max < 1) cfg_.burst_max = 1;
}

void SdcInjector::add_target(std::string name, std::span<double> data,
                             bool on_device) {
  if (data.empty()) return;
  targets_.push_back(Target{std::move(name), data, on_device});
}

void SdcInjector::clear_targets() { targets_.clear(); }

Corruption SdcInjector::flip(std::span<double> data, const std::string& name,
                             double now) {
  Corruption c;
  c.time = now;
  c.target = name;
  c.index = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(data.size())));
  const int span = cfg_.bit_hi - cfg_.bit_lo + 1;
  c.bit = cfg_.bit_lo +
          static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(span)));
  const int burst =
      1 + static_cast<int>(
              rng_.uniform_int(static_cast<std::uint64_t>(cfg_.burst_max)));
  // The burst stays inside the word and inside the configured bit range.
  c.bits_flipped = std::min({burst, 64 - c.bit, cfg_.bit_hi - c.bit + 1});
  const std::uint64_t mask =
      (c.bits_flipped >= 64 ? ~0ull : ((1ull << c.bits_flipped) - 1ull))
      << c.bit;
  c.old_bits = std::bit_cast<std::uint64_t>(data[c.index]);
  c.new_bits = c.old_bits ^ mask;
  data[c.index] = std::bit_cast<double>(c.new_bits);
  ++injected_;
  log_.push_back(c);
  return c;
}

Corruption SdcInjector::corrupt_one(std::span<double> data,
                                    const std::string& name, double now) {
  return flip(data, name, now);
}

std::size_t SdcInjector::poll(double now) {
  ++polls_;
  if (!enabled() || injected_ >= cfg_.max_corruptions) return 0;
  bool due = false;
  if (cfg_.every_polls > 0) {
    due = polls_ % cfg_.every_polls == 0;
  } else {
    due = clock_.fire(now);
  }
  if (!due) return 0;
  // Pick uniformly among residency-eligible targets.
  std::vector<std::size_t> pool;
  pool.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (eligible(targets_[i])) pool.push_back(i);
  }
  if (pool.empty()) return 0;
  auto& t = targets_[pool[static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(pool.size())))]];
  flip(t.data, t.name, now);
  return 1;
}

}  // namespace coe::guard
