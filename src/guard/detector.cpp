#include "guard/detector.hpp"

#include <bit>
#include <cmath>

#include "prof/span.hpp"

namespace coe::guard {

bool Detector::check(core::ExecContext& ctx) {
  prof::Scope span(profiler_, &ctx, "guard/" + name_);
  const double before = ctx.simulated_time();
  const bool ok = do_check(ctx);
  const double spent = ctx.simulated_time() - before;
  ++stats_.checks;
  stats_.check_s += spent;
  if (!ok) ++stats_.trips;
  if (metrics_) {
    metrics_->add("guard.checks");
    metrics_->add("guard.check_s", spent);
    if (!ok) {
      metrics_->add("guard.trips");
      metrics_->add("guard." + name_ + ".trips");
    }
  }
  return ok;
}

void Detector::arm(core::ExecContext& ctx) {
  prof::Scope span(profiler_, &ctx, "guard/" + name_);
  do_arm(ctx);
  ++stats_.arms;
}

// --- ChecksumDetector ------------------------------------------------------

void ChecksumDetector::add_target(std::string name,
                                  std::span<const double> data) {
  targets_.push_back(Target{std::move(name), data, fingerprint(data)});
}

std::uint64_t ChecksumDetector::fingerprint(std::span<const double> data) {
  // Position-salted splitmix64 finalizer, summed mod 2^64. Each element's
  // contribution is a bijection of (bits, index), so any corruption
  // confined to one element always changes the sum; independent
  // multi-element corruptions cancel only with probability 2^-64.
  std::uint64_t sum = 0;
  std::uint64_t salt = 0x9e3779b97f4a7c15ull;
  for (const double& v : data) {
    std::uint64_t z = std::bit_cast<std::uint64_t>(v) + salt;
    salt += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    sum += z ^ (z >> 31);
  }
  return sum;
}

void ChecksumDetector::price(core::ExecContext& ctx) const {
  // One streaming read of every guarded byte plus a few ALU ops per
  // element — the scrub is memory-bound, like the kernels it guards.
  double n = 0.0;
  for (const auto& t : targets_) n += static_cast<double>(t.data.size());
  ctx.record_kernel({6.0 * n, 8.0 * n});
}

bool ChecksumDetector::do_check(core::ExecContext& ctx) {
  price(ctx);
  bool ok = true;
  for (const auto& t : targets_) {
    if (fingerprint(t.data) != t.ref) ok = false;
  }
  return ok;
}

void ChecksumDetector::do_arm(core::ExecContext& ctx) {
  price(ctx);
  for (auto& t : targets_) t.ref = fingerprint(t.data);
}

// --- BoundDetector ---------------------------------------------------------

bool BoundDetector::do_check(core::ExecContext& ctx) {
  const double v = value_(ctx);
  return std::isfinite(v) && v >= lo_ && v <= hi_;
}

// --- DriftDetector ---------------------------------------------------------

bool DriftDetector::do_check(core::ExecContext& ctx) {
  const double v = value_(ctx);
  if (!std::isfinite(v)) return false;
  if (!armed_) return true;
  return std::abs(v - ref_) <= rel_tol_ * (std::abs(ref_) + abs_floor_);
}

void DriftDetector::do_arm(core::ExecContext& ctx) {
  ref_ = value_(ctx);
  armed_ = true;
}

// --- RangeDetector ---------------------------------------------------------

bool RangeDetector::do_check(core::ExecContext& ctx) {
  if (data_.size() <= offset_) return true;
  const std::size_t n = (data_.size() - offset_ - 1) / stride_ + 1;
  // NaN fails `x >= lo`, so the comparison form doubles as a finiteness
  // check for everything except +/-Inf, which the explicit test catches.
  const double worst = ctx.reduce_max(
      n, {2.0, 8.0 * static_cast<double>(stride_)}, [&](std::size_t i) {
        const double x = data_[offset_ + i * stride_];
        const bool bad = !(x >= lo_ && x <= hi_) || !std::isfinite(x);
        return bad ? 1.0 : 0.0;
      });
  return worst < 0.5;
}

// --- DetectorSet -----------------------------------------------------------

Detector& DetectorSet::add(std::unique_ptr<Detector> d) {
  d->set_sinks(metrics_, profiler_);
  detectors_.push_back(std::move(d));
  return *detectors_.back();
}

bool DetectorSet::check_all(core::ExecContext& ctx) {
  bool ok = true;
  for (auto& d : detectors_) {
    if (!d->check(ctx)) ok = false;
  }
  return ok;
}

void DetectorSet::arm_all(core::ExecContext& ctx) {
  for (auto& d : detectors_) d->arm(ctx);
}

std::size_t DetectorSet::checks() const {
  std::size_t n = 0;
  for (const auto& d : detectors_) n += d->stats().checks;
  return n;
}

std::size_t DetectorSet::trips() const {
  std::size_t n = 0;
  for (const auto& d : detectors_) n += d->stats().trips;
  return n;
}

double DetectorSet::check_seconds() const {
  double s = 0.0;
  for (const auto& d : detectors_) s += d->stats().check_s;
  return s;
}

void DetectorSet::set_sinks(obs::MetricsRegistry* metrics,
                            prof::Profiler* profiler) {
  metrics_ = metrics;
  profiler_ = profiler;
  for (auto& d : detectors_) d->set_sinks(metrics, profiler);
}

}  // namespace coe::guard
