#pragma once
// Silent-data-corruption injection. Fail-stop faults (resil::FaultInjector)
// kill a component loudly; SDC flips bits in live data and says nothing —
// the failure mode that checkpoint/restart alone cannot handle, because a
// corrupted state is happily checkpointed and faithfully restored. The
// injector here drives the same seeded exponential clock as the fail-stop
// model, but its "fault" is a bit flip in a registered buffer payload:
// single-bit or burst, host- or device-resident targets, any bit class or a
// restricted range (high exponent bits produce loud, detectable damage; low
// mantissa bits produce the quiet damage that measures a detector's escape
// rate). Every corruption is logged (time, target, element, bits before and
// after) so tests can assert exact containment accounting.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "resil/fault.hpp"

namespace coe::guard {

/// Residency filter for corruption targets.
enum class SdcTarget { Any, Host, Device };

struct SdcConfig {
  /// Corruptions per simulated second (exponential inter-arrivals on the
  /// seeded clock). 0 disables the clock.
  double rate = 0.0;
  /// Deterministic mode for tests and ablations: corrupt on every k-th
  /// poll() regardless of simulated time. Overrides `rate` when nonzero.
  std::size_t every_polls = 0;
  std::uint64_t seed = 1;
  /// Eligible bit positions within the 64-bit payload word, inclusive.
  /// [62, 62] flips the top exponent bit (loud); [0, 20] stays in the low
  /// mantissa (quiet); the default covers the full word.
  int bit_lo = 0;
  int bit_hi = 63;
  /// Maximum adjacent bits flipped per corruption; 1 means single-bit
  /// upsets only, larger values model multi-bit bursts within one word.
  int burst_max = 1;
  SdcTarget target = SdcTarget::Any;
  std::size_t max_corruptions = static_cast<std::size_t>(-1);
};

/// One logged bit-flip event.
struct Corruption {
  double time = 0.0;        ///< simulated time of the poll that injected it
  std::string target;       ///< registered buffer name
  std::size_t index = 0;    ///< element within the buffer
  int bit = 0;              ///< lowest flipped bit position
  int bits_flipped = 1;     ///< burst width actually applied
  std::uint64_t old_bits = 0;
  std::uint64_t new_bits = 0;
};

/// Seeded SDC injector over named live buffers. Register the state arrays a
/// driver exposes (WaveSolver::sdc_targets() etc.), then poll() the clock
/// wherever the run already consults its fault process — typically inside
/// the resil verify hook, so detection runs against freshly corrupted
/// state. At most one corruption is applied per poll (corruptions land at
/// poll granularity, like fail-stop faults land at step granularity).
class SdcInjector {
 public:
  explicit SdcInjector(SdcConfig cfg);

  bool enabled() const {
    return (cfg_.rate > 0.0 || cfg_.every_polls > 0) && !targets_.empty();
  }

  /// Registers a buffer as corruptible. The span must stay valid (same
  /// storage, same size) for the injector's lifetime.
  void add_target(std::string name, std::span<double> data,
                  bool on_device = true);
  void clear_targets();

  /// Advances the corruption clock to `now`; flips bits in one registered
  /// target if the clock fired. Returns the number of corruptions applied
  /// (0 or 1).
  std::size_t poll(double now);

  /// Unconditionally corrupts one element of `data` (direct-injection path
  /// for unit tests); logged like a polled corruption.
  Corruption corrupt_one(std::span<double> data, const std::string& name,
                         double now = 0.0);

  /// Total corruptions injected so far — the ground truth the containment
  /// accounting in resil::ResilienceReport is measured against.
  std::size_t injected() const { return injected_; }
  std::size_t polls() const { return polls_; }
  const std::vector<Corruption>& log() const { return log_; }

 private:
  struct Target {
    std::string name;
    std::span<double> data;
    bool on_device;
  };

  bool eligible(const Target& t) const {
    return cfg_.target == SdcTarget::Any ||
           (cfg_.target == SdcTarget::Device) == t.on_device;
  }
  Corruption flip(std::span<double> data, const std::string& name,
                  double now);

  SdcConfig cfg_;
  resil::FaultInjector clock_;
  core::Rng rng_;
  std::vector<Target> targets_;
  std::vector<Corruption> log_;
  std::size_t injected_ = 0;
  std::size_t polls_ = 0;
};

}  // namespace coe::guard
