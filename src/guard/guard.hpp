#pragma once
// coe::guard — silent-error detection and containment, layered on
// coe::resil (DESIGN.md §13). SdcInjector flips bits in live solver state
// on a seeded clock; Detectors (exact checksum scrubs, ABFT residual
// guards in la/, invariant/range monitors per app) validate the state
// before each step consumes it; resil::run_resilient's verify hook turns a
// trip into rollback-and-recompute from a CRC-verified checkpoint
// generation. The wiring contract:
//
//   guard::SdcInjector inj(sdc_cfg);            // register sdc_targets()
//   guard::DetectorSet det;                     // add detectors, arm once
//   resil::ResilienceConfig cfg;
//   cfg.verify_hook = [&](std::size_t) {
//     inj.poll(ctx.simulated_time());           // corruption lands here...
//     return det.check_all(ctx);                // ...and is checked here
//   };
//   cfg.on_rollback = [&](std::size_t) { det.arm_all(ctx); };
//   cfg.corruption_count = [&] { return inj.injected(); };
//   run_resilient(app, ctx, steps,
//                 [&](std::size_t s) { app.step(); det.arm_all(ctx); },
//                 cfg, &store);
//
// Reference-carrying detectors re-arm after every accepted step and after
// every restore; the driver attributes each injected corruption as
// contained (discarded by a rollback) or escaped (accepted by a passing
// verification), giving the measured escape rate in ResilienceReport.

#include "guard/detector.hpp"
#include "guard/sdc.hpp"
