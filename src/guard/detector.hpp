#pragma once
// Silent-error detectors. A Detector validates some slice of live solver
// state and answers clean/tripped; resil::run_resilient consults a set of
// them through its verify hook before each step consumes the state, so a
// trip triggers rollback-and-recompute instead of propagating garbage.
//
// The protocol for reference-carrying detectors (checksums, drift
// monitors): check() compares the current state against the reference
// captured by the last arm(); the step loop re-arms after every accepted
// step, and the rollback path re-arms after every restore. A check thus
// always asks "did the state change since it was last known-good other
// than by the step itself?" — which, polled between steps, is exactly
// at-rest corruption.
//
// Every check is priced through the machine model (the detection tax is
// real time on the timeline), counted in per-detector stats, published to
// an obs::MetricsRegistry ("guard.checks"/"guard.trips"/"guard.check_s"),
// and wrapped in a prof::Scope ("guard/<name>") so it shows up in the
// bottleneck report next to the kernels it protects.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "obs/metrics.hpp"

namespace coe::prof {
class Profiler;
}

namespace coe::guard {

struct DetectorStats {
  std::size_t checks = 0;
  std::size_t trips = 0;
  std::size_t arms = 0;
  double check_s = 0.0;  ///< simulated s spent checking (the detection tax)
};

class Detector {
 public:
  explicit Detector(std::string name) : name_(std::move(name)) {}
  virtual ~Detector() = default;

  const std::string& name() const { return name_; }

  /// Validates the guarded state; true means clean. Counts, prices, and
  /// publishes around the subclass check.
  bool check(core::ExecContext& ctx);

  /// Captures the current state as the new known-good reference. No-op for
  /// stateless detectors (range checks).
  void arm(core::ExecContext& ctx);

  const DetectorStats& stats() const { return stats_; }

  /// Telemetry sinks (not owned; must outlive the detector).
  void set_sinks(obs::MetricsRegistry* metrics, prof::Profiler* profiler) {
    metrics_ = metrics;
    profiler_ = profiler;
  }

 protected:
  virtual bool do_check(core::ExecContext& ctx) = 0;
  virtual void do_arm(core::ExecContext&) {}

 private:
  std::string name_;
  DetectorStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
};

/// Exact at-rest corruption scrub: fingerprints the bit patterns of the
/// registered arrays (order-sensitive 64-bit mix, so any single flipped
/// element is detected with certainty, multi-element collisions only at
/// 2^-64 odds). This is the strong detector — it guarantees the bitwise
/// acceptance property — at the cost of a full read of the guarded state
/// per check, priced as one fused streaming pass.
class ChecksumDetector : public Detector {
 public:
  explicit ChecksumDetector(std::string name = "scrub") : Detector(name) {}

  /// The span must stay valid for the detector's lifetime.
  void add_target(std::string name, std::span<const double> data);

 protected:
  bool do_check(core::ExecContext& ctx) override;
  void do_arm(core::ExecContext& ctx) override;

 private:
  struct Target {
    std::string name;
    std::span<const double> data;
    std::uint64_t ref = 0;
  };
  static std::uint64_t fingerprint(std::span<const double> data);
  void price(core::ExecContext& ctx) const;
  std::vector<Target> targets_;
};

/// Bounds monitor on a scalar functional of the state (the invariant
/// style: stencil CFL/amplitude bounds, reaction gating bounds). Trips
/// when the value leaves [lo, hi] or is not finite. Stateless — arm() is a
/// no-op. Cheap but approximate: corruption that stays inside the bounds
/// escapes (and is counted as such by the driver).
class BoundDetector : public Detector {
 public:
  BoundDetector(std::string name,
                std::function<double(core::ExecContext&)> value, double lo,
                double hi)
      : Detector(std::move(name)), value_(std::move(value)), lo_(lo),
        hi_(hi) {}

 protected:
  bool do_check(core::ExecContext& ctx) override;

 private:
  std::function<double(core::ExecContext&)> value_;
  double lo_, hi_;
};

/// Relative-drift monitor on a scalar functional (MD momentum/energy
/// drift, stencil energy). check() compares against the value captured by
/// the last arm(); armed after every step, it bounds the legitimate
/// per-step change, so a corruption-induced jump trips. NaN/Inf always
/// trips.
class DriftDetector : public Detector {
 public:
  /// Trips when |v - ref| > rel_tol * (|ref| + abs_floor). The floor keeps
  /// near-zero conserved quantities (net momentum) from making every
  /// round-off wiggle a trip.
  DriftDetector(std::string name,
                std::function<double(core::ExecContext&)> value,
                double rel_tol, double abs_floor = 0.0)
      : Detector(std::move(name)), value_(std::move(value)),
        rel_tol_(rel_tol), abs_floor_(abs_floor) {}

 protected:
  bool do_check(core::ExecContext& ctx) override;
  void do_arm(core::ExecContext& ctx) override;

 private:
  std::function<double(core::ExecContext&)> value_;
  double rel_tol_, abs_floor_;
  double ref_ = 0.0;
  bool armed_ = false;
};

/// Elementwise range check over a strided span — the reaction-kernel
/// guard, where per-cell state is interleaved [v, m, h, n] and each
/// component has its own physiological range. Trips on any element outside
/// [lo, hi] or non-finite. Stateless.
class RangeDetector : public Detector {
 public:
  RangeDetector(std::string name, std::span<const double> data, double lo,
                double hi, std::size_t stride = 1, std::size_t offset = 0)
      : Detector(std::move(name)), data_(data), lo_(lo), hi_(hi),
        stride_(stride == 0 ? 1 : stride), offset_(offset) {}

 protected:
  bool do_check(core::ExecContext& ctx) override;

 private:
  std::span<const double> data_;
  double lo_, hi_;
  std::size_t stride_, offset_;
};

/// Owning composite: the set of detectors guarding one run. check_all runs
/// every detector (no short-circuit, so per-detector stats stay
/// comparable) and is shaped to slot straight into
/// resil::ResilienceConfig::verify_hook; arm_all re-arms after an accepted
/// step or a restore.
class DetectorSet {
 public:
  Detector& add(std::unique_ptr<Detector> d);

  template <typename D, typename... Args>
  D& emplace(Args&&... args) {
    auto d = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *d;
    add(std::move(d));
    return ref;
  }

  bool check_all(core::ExecContext& ctx);
  void arm_all(core::ExecContext& ctx);

  std::size_t size() const { return detectors_.size(); }
  Detector& operator[](std::size_t i) { return *detectors_[i]; }

  std::size_t checks() const;
  std::size_t trips() const;
  double check_seconds() const;

  /// Propagated to every current and future member.
  void set_sinks(obs::MetricsRegistry* metrics, prof::Profiler* profiler);

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
  obs::MetricsRegistry* metrics_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
};

}  // namespace coe::guard
