#include "ml/distributed.hpp"

#include <cmath>
#include <deque>

#include "net/collective.hpp"

namespace coe::ml {

const char* to_string(DistAlgo a) {
  switch (a) {
    case DistAlgo::SyncSgd: return "sync-SGD";
    case DistAlgo::Asgd: return "ASGD";
    case DistAlgo::Kavg: return "KAVG";
  }
  return "?";
}

namespace {

/// Samples a minibatch into (bx, by).
void sample_batch(const Dataset& ds, std::size_t batch, core::Rng& rng,
                  std::vector<double>& bx, std::vector<std::size_t>& by) {
  bx.resize(batch * ds.nfeat);
  by.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t s = rng.uniform_int(ds.size());
    std::copy(
        ds.x.begin() + static_cast<std::ptrdiff_t>(s * ds.nfeat),
        ds.x.begin() + static_cast<std::ptrdiff_t>((s + 1) * ds.nfeat),
        bx.begin() + static_cast<std::ptrdiff_t>(b * ds.nfeat));
    by[b] = ds.y[s];
  }
}

double eval_loss(const DenseNet& net, const Dataset& ds) {
  double loss = 0.0;
  for (std::size_t s = 0; s < ds.size(); ++s) {
    const auto p = net.predict(
        std::span<const double>(ds.x).subspan(s * ds.nfeat, ds.nfeat));
    loss += -std::log(std::max(p[ds.y[s]], 1e-30));
  }
  return loss / static_cast<double>(ds.size());
}

}  // namespace

DistResult train_distributed(DenseNet& net, const Dataset& ds,
                             DistAlgo algo, const DistConfig& cfg) {
  DistResult res;
  core::Rng rng(cfg.seed);
  std::vector<double> grad(net.num_params());
  std::vector<double> bx;
  std::vector<std::size_t> by;
  std::size_t used = 0;

  auto finite = [&]() {
    for (double p : net.params()) {
      if (!std::isfinite(p)) return false;
    }
    return true;
  };

  switch (algo) {
    case DistAlgo::SyncSgd: {
      // All learners contribute to one averaged gradient per step.
      std::vector<double> acc(net.num_params());
      while (used + cfg.learners <= cfg.gradient_budget) {
        std::fill(acc.begin(), acc.end(), 0.0);
        for (std::size_t l = 0; l < cfg.learners; ++l) {
          sample_batch(ds, cfg.batch, rng, bx, by);
          net.batch_loss_and_grad(bx, by, ds.nfeat, grad);
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += grad[i];
          ++used;
        }
        const double inv = 1.0 / static_cast<double>(cfg.learners);
        for (auto& g : acc) g *= inv;
        net.apply_gradient(acc, cfg.lr);
        ++res.updates;
        ++res.comm_rounds;  // one allreduce per step
      }
      break;
    }
    case DistAlgo::Asgd: {
      // Parameter server: each arriving gradient was computed from the
      // weights as of `staleness` updates ago. Staleness is uniform in
      // [0, learners-1] -- the uncontrollable spread the paper calls out.
      std::deque<std::vector<double>> history;  // past parameter snapshots
      history.emplace_back(net.params().begin(), net.params().end());
      DenseNet stale = net;
      while (used < cfg.gradient_budget) {
        const std::size_t s =
            std::min<std::size_t>(rng.uniform_int(cfg.learners),
                                  history.size() - 1);
        stale.set_params(history[history.size() - 1 - s]);
        sample_batch(ds, cfg.batch, rng, bx, by);
        stale.batch_loss_and_grad(bx, by, ds.nfeat, grad);
        ++used;
        net.apply_gradient(grad, cfg.lr);  // applied to *current* weights
        ++res.updates;
        ++res.comm_rounds;  // every gradient is a server round trip
        history.emplace_back(net.params().begin(), net.params().end());
        while (history.size() > cfg.learners) history.pop_front();
        if (!finite()) {
          res.diverged = true;
          break;
        }
      }
      break;
    }
    case DistAlgo::Kavg: {
      // Learners hold replicas; K local steps, then average the models.
      std::vector<DenseNet> replicas(cfg.learners, net);
      std::vector<double> avg(net.num_params());
      while (used + cfg.learners * cfg.k <= cfg.gradient_budget) {
        for (auto& rep : replicas) {
          for (std::size_t step = 0; step < cfg.k; ++step) {
            sample_batch(ds, cfg.batch, rng, bx, by);
            rep.batch_loss_and_grad(bx, by, ds.nfeat, grad);
            rep.apply_gradient(grad, cfg.lr);
            ++used;
            ++res.updates;
          }
        }
        std::fill(avg.begin(), avg.end(), 0.0);
        for (const auto& rep : replicas) {
          const auto p = rep.params();
          for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += p[i];
        }
        const double inv = 1.0 / static_cast<double>(cfg.learners);
        for (auto& v : avg) v *= inv;
        for (auto& rep : replicas) rep.set_params(avg);
        net.set_params(avg);
        ++res.comm_rounds;  // one global reduction per K steps
        if (!finite()) {
          res.diverged = true;
          break;
        }
      }
      break;
    }
  }

  if (cfg.cluster != nullptr && res.comm_rounds > 0) {
    const auto& cl = *cfg.cluster;
    const std::size_t bytes = net.num_params() * 8;
    const int p = static_cast<int>(cfg.learners);
    double central, logp;
    if (algo == DistAlgo::Asgd) {
      // Parameter-server round trip: gradient up, fresh weights down.
      // There is no collective to substitute, so both schemes coincide.
      central = logp = 2.0 * cl.p2p(bytes);
    } else {
      central = coe::net::modeled_allreduce(coe::net::AllreduceAlgo::Naive,
                                            cl, bytes, p);
      const auto algo_pick = coe::net::select_allreduce(cl, bytes, p);
      logp = coe::net::modeled_allreduce(algo_pick, cl, bytes, p);
    }
    res.comm_central_s = static_cast<double>(res.comm_rounds) * central;
    res.comm_logp_s = static_cast<double>(res.comm_rounds) * logp;
  }

  if (!finite()) res.diverged = true;
  res.final_loss = res.diverged ? 1e30 : eval_loss(net, ds);
  res.final_accuracy =
      res.diverged ? 0.0 : net.accuracy(ds.x, ds.y, ds.nfeat);
  return res;
}

}  // namespace coe::ml
