#include "ml/streams.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"

namespace coe::ml {

namespace {

void softmax_inplace(std::span<double> v) {
  const double mx = *std::max_element(v.begin(), v.end());
  double z = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    z += x;
  }
  for (auto& x : v) x /= z;
}

/// Fills a StreamScores block with the generative model: per sample a
/// shared error direction plus stream-private noise around the one-hot
/// signal of strength a_s.
StreamScores generate_block(std::size_t n, std::size_t classes,
                            const std::array<double, 3>& strength,
                            double rho, core::Rng& rng) {
  StreamScores d;
  d.classes = classes;
  d.scores.resize(n * 3 * classes);
  d.labels.resize(n);
  std::vector<double> shared(classes);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t y = rng.uniform_int(classes);
    d.labels[i] = y;
    for (auto& g : shared) g = rng.normal();
    for (std::size_t s = 0; s < 3; ++s) {
      auto block = std::span<double>(d.scores)
                       .subspan((i * 3 + s) * classes, classes);
      for (std::size_t c = 0; c < classes; ++c) {
        block[c] = rho * shared[c] +
                   std::sqrt(1.0 - rho * rho) * rng.normal();
      }
      block[y] += strength[s];
      softmax_inplace(block);
    }
  }
  return d;
}

/// Accuracy of a single stream given signal strength a (Monte Carlo).
double accuracy_for_strength(double a, std::size_t classes,
                             std::uint64_t seed) {
  core::Rng rng(seed);
  const std::size_t trials = 4000;
  std::size_t hits = 0;
  std::vector<double> z(classes);
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& v : z) v = rng.normal();
    z[0] += a;  // wlog the true class is 0
    hits += (std::max_element(z.begin(), z.end()) == z.begin());
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

double calibrate_strength(double target, std::size_t classes,
                          std::uint64_t seed) {
  double lo = 0.0, hi = 20.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (accuracy_for_strength(mid, classes, seed) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Flattens the three streams' scores into a feature matrix. Log
/// probabilities linearize the fusion problem (a logistic layer over log
/// probs can express the product-of-experts combination).
void features(const StreamScores& d, std::vector<double>& x) {
  x.resize(d.scores.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    x[k] = std::log(d.scores[k] + 1e-8) / 8.0;  // scaled to O(1)
  }
}

}  // namespace

StreamsDataset generate_streams(const StreamsConfig& cfg) {
  StreamsDataset ds;
  for (std::size_t s = 0; s < 3; ++s) {
    ds.calibrated_strength[s] = calibrate_strength(
        cfg.target_accuracy[s], cfg.classes, cfg.seed + 31 * s);
  }
  core::Rng rng(cfg.seed);
  ds.train = generate_block(cfg.train_samples, cfg.classes,
                            ds.calibrated_strength, cfg.correlation, rng);
  ds.test = generate_block(cfg.test_samples, cfg.classes,
                           ds.calibrated_strength, cfg.correlation, rng);
  return ds;
}

double stream_accuracy(const StreamScores& d, std::size_t stream) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto s = d.sample_stream(i, stream);
    const auto best = std::max_element(s.begin(), s.end()) - s.begin();
    hits += static_cast<std::size_t>(best) == d.labels[i];
  }
  return static_cast<double>(hits) / static_cast<double>(d.size());
}

namespace {

double combine_linear(const StreamScores& d,
                      const std::array<double, 3>& w) {
  std::size_t hits = 0;
  std::vector<double> acc(d.classes);
  for (std::size_t i = 0; i < d.size(); ++i) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::size_t s = 0; s < 3; ++s) {
      const auto block = d.sample_stream(i, s);
      for (std::size_t c = 0; c < d.classes; ++c) acc[c] += w[s] * block[c];
    }
    const auto best = std::max_element(acc.begin(), acc.end()) - acc.begin();
    hits += static_cast<std::size_t>(best) == d.labels[i];
  }
  return static_cast<double>(hits) / static_cast<double>(d.size());
}

}  // namespace

double combine_simple_average(const StreamScores& test) {
  return combine_linear(test, {1.0, 1.0, 1.0});
}

double combine_weighted_average(const StreamScores& test,
                                const std::array<double, 3>& weights) {
  return combine_linear(test, weights);
}

double combine_logistic_regression(const StreamScores& train,
                                   const StreamScores& test) {
  const std::size_t nfeat = 3 * train.classes;
  auto net = make_logistic_regression(nfeat, train.classes, 11);
  // Warm start at the product-of-experts solution (class c reads its own
  // log-probability from every stream); SGD then reweights the streams.
  {
    auto params = net.params();
    std::fill(params.begin(), params.end(), 0.0);
    for (std::size_t c = 0; c < train.classes; ++c) {
      for (std::size_t s = 0; s < 3; ++s) {
        params[c * nfeat + s * train.classes + c] = 8.0;
      }
    }
  }
  std::vector<double> xtr, xte;
  features(train, xtr);
  features(test, xte);
  TrainConfig cfg;
  cfg.lr = 0.05;
  cfg.momentum = 0.9;
  cfg.epochs = 10;
  cfg.batch = 32;
  train_sgd(net, xtr, train.labels, nfeat, cfg);
  return net.accuracy(xte, test.labels, nfeat);
}

namespace {

/// Class-shared fusion MLP: the same tiny network f(s1, s2, s3) -> score
/// is applied to every class's three stream log-probabilities, and the
/// fused scores feed a softmax. Weight sharing across classes is what
/// makes a "shallow NN" combiner generalize (it has ~40 parameters, not
/// 30k), and it can express nonlinear stream gating that the weighted
/// average cannot.
class FusionMlp {
 public:
  static constexpr std::size_t kHidden = 8;

  explicit FusionMlp(std::uint64_t seed) {
    core::Rng rng(seed);
    for (auto& v : w1_) v = 0.5 * rng.normal();
    for (auto& v : b1_) v = 0.0;
    for (auto& v : w2_) v = 0.5 * rng.normal();
    b2_ = 0.0;
  }

  double score(const double s[3], double hidden[kHidden]) const {
    double z = b2_;
    for (std::size_t j = 0; j < kHidden; ++j) {
      double h = b1_[j];
      for (int i = 0; i < 3; ++i) h += w1_[j * 3 + i] * s[i];
      h = std::max(h, 0.0);
      hidden[j] = h;
      z += w2_[j] * h;
    }
    return z;
  }

  /// One SGD step on a single sample; returns the loss.
  double step(const StreamScores& d, std::size_t sample, double lr) {
    const std::size_t c_count = d.classes;
    std::vector<double> z(c_count);
    std::vector<std::array<double, kHidden>> hidden(c_count);
    std::vector<std::array<double, 3>> feats(c_count);
    for (std::size_t c = 0; c < c_count; ++c) {
      for (std::size_t s = 0; s < 3; ++s) {
        feats[c][s] = std::log(d.sample_stream(sample, s)[c] + 1e-8) +
                      std::log(static_cast<double>(c_count));
      }
      z[c] = score(feats[c].data(), hidden[c].data());
    }
    // Softmax cross entropy.
    const double mx = *std::max_element(z.begin(), z.end());
    double sum = 0.0;
    for (auto& v : z) {
      v = std::exp(v - mx);
      sum += v;
    }
    const std::size_t y = d.labels[sample];
    const double loss = -std::log(std::max(z[y] / sum, 1e-30));
    // Backprop through the shared parameters.
    double gw1[kHidden * 3] = {0}, gb1[kHidden] = {0}, gw2[kHidden] = {0},
           gb2 = 0.0;
    for (std::size_t c = 0; c < c_count; ++c) {
      const double dz = z[c] / sum - (c == y ? 1.0 : 0.0);
      gb2 += dz;
      for (std::size_t j = 0; j < kHidden; ++j) {
        gw2[j] += dz * hidden[c][j];
        if (hidden[c][j] > 0.0) {
          const double dh = dz * w2_[j];
          gb1[j] += dh;
          for (int i = 0; i < 3; ++i) gw1[j * 3 + i] += dh * feats[c][i];
        }
      }
    }
    for (std::size_t k = 0; k < kHidden * 3; ++k) w1_[k] -= lr * gw1[k];
    for (std::size_t j = 0; j < kHidden; ++j) {
      b1_[j] -= lr * gb1[j];
      w2_[j] -= lr * gw2[j];
    }
    b2_ -= lr * gb2;
    return loss;
  }

  std::size_t predict(const StreamScores& d, std::size_t sample) const {
    const std::size_t c_count = d.classes;
    double best = -1e300;
    std::size_t best_c = 0;
    double hidden[kHidden];
    for (std::size_t c = 0; c < c_count; ++c) {
      double s[3];
      for (std::size_t st = 0; st < 3; ++st) {
        s[st] = std::log(d.sample_stream(sample, st)[c] + 1e-8) +
                std::log(static_cast<double>(c_count));
      }
      const double z = score(s, hidden);
      if (z > best) {
        best = z;
        best_c = c;
      }
    }
    return best_c;
  }

 private:
  std::array<double, kHidden * 3> w1_{};
  std::array<double, kHidden> b1_{};
  std::array<double, kHidden> w2_{};
  double b2_ = 0.0;
};

}  // namespace

double combine_shallow_nn(const StreamScores& train,
                          const StreamScores& test) {
  FusionMlp mlp(13);
  core::Rng rng(17);
  const std::size_t steps = 6 * train.size();
  for (std::size_t it = 0; it < steps; ++it) {
    mlp.step(train, rng.uniform_int(train.size()), 0.01);
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    hits += mlp.predict(test, i) == test.labels[i];
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace coe::ml
