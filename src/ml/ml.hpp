#pragma once
// Umbrella header for the deep-learning activity module.

#include "ml/data.hpp"
#include "ml/distributed.hpp"
#include "ml/lbann.hpp"
#include "ml/nn.hpp"
#include "ml/streams.hpp"
