#include "ml/lbann.hpp"

#include <cmath>

namespace coe::ml {

double sample_step_time(const LbannModel& m, const hsim::MachineModel& gpu,
                        std::size_t gpus_per_sample) {
  const double p = static_cast<double>(gpus_per_sample);
  const double compute = m.flops_per_sample / (gpu.flops() * p);
  // Halo exchange between the p partitions: surface-to-volume gives a
  // sqrt(p) aggregate-traffic law over the NVLink fabric.
  const double base_halo = m.activation_bytes * m.halo_fraction / gpu.link_bw;
  const double halo = gpus_per_sample > 1 ? base_halo * std::sqrt(p) : 0.0;
  return compute + halo;
}

double train_step_time(const LbannModel& m, const hsim::MachineModel& gpu,
                       const hsim::ClusterModel& net,
                       std::size_t total_gpus, std::size_t gpus_per_sample) {
  const std::size_t replicas =
      std::max<std::size_t>(total_gpus / gpus_per_sample, 1);
  const double step = sample_step_time(m, gpu, gpus_per_sample);
  const double reduce = net.allreduce(
      static_cast<std::size_t>(m.weight_bytes /
                               static_cast<double>(gpus_per_sample)),
      static_cast<int>(replicas));
  return step + reduce;
}

double sample_speedup(const LbannModel& m, const hsim::MachineModel& gpu,
                      std::size_t gpus_per_sample) {
  return sample_step_time(m, gpu, m.min_gpus_per_sample) /
         sample_step_time(m, gpu, gpus_per_sample);
}

}  // namespace coe::ml
