#pragma once
// The Table 3 study: combining spatial / temporal / SPyNet stream
// classifiers for video action recognition. The video datasets and deep
// backbones are unavailable here, so a calibrated synthetic score
// generator stands in for the three trained streams (each stream's
// single-network accuracy is matched to the paper's numbers by a signal-
// strength search); the *combination* methods -- simple average, weighted
// average, logistic regression, shallow NN -- are real implementations.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "ml/nn.hpp"

namespace coe::ml {

struct StreamScores {
  std::size_t classes = 0;
  std::size_t streams = 3;
  std::vector<double> scores;       ///< n * streams * classes (softmax-ed)
  std::vector<std::size_t> labels;  ///< n

  std::size_t size() const { return labels.size(); }
  std::span<const double> sample_stream(std::size_t i, std::size_t s) const {
    return std::span<const double>(scores).subspan(
        (i * streams + s) * classes, classes);
  }
};

struct StreamsConfig {
  std::size_t classes = 101;
  std::size_t train_samples = 3000;
  std::size_t test_samples = 3000;
  /// Target single-stream top-1 accuracies (spatial, temporal, SPyNet).
  std::array<double, 3> target_accuracy{0.85, 0.85, 0.88};
  double correlation = 0.55;  ///< shared error between streams
  std::uint64_t seed = 100;
};

struct StreamsDataset {
  StreamScores train;
  StreamScores test;
  std::array<double, 3> calibrated_strength{};
};

/// Generates train/test stream scores with single-stream test accuracies
/// calibrated to the targets (within ~1 point).
StreamsDataset generate_streams(const StreamsConfig& cfg);

/// Top-1 accuracy of one stream alone.
double stream_accuracy(const StreamScores& d, std::size_t stream);

/// Combination approaches of Table 3 (all evaluated on `test`).
double combine_simple_average(const StreamScores& test);
double combine_weighted_average(const StreamScores& test,
                                const std::array<double, 3>& weights);
/// Trains on `train` scores, evaluates on `test`.
double combine_logistic_regression(const StreamScores& train,
                                   const StreamScores& test);
double combine_shallow_nn(const StreamScores& train,
                          const StreamScores& test);

}  // namespace coe::ml
