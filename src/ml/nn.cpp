#include "ml/nn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coe::ml {

DenseNet::DenseNet(std::vector<std::size_t> sizes, std::uint64_t seed)
    : sizes_(std::move(sizes)) {
  assert(sizes_.size() >= 2);
  std::size_t off = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.in = sizes_[l];
    layer.out = sizes_[l + 1];
    layer.w_off = off;
    off += layer.in * layer.out;
    layer.b_off = off;
    off += layer.out;
    layers_.push_back(layer);
  }
  params_.assign(off, 0.0);
  core::Rng rng(seed);
  for (const auto& l : layers_) {
    const double scale = std::sqrt(2.0 / static_cast<double>(l.in));
    for (std::size_t k = 0; k < l.in * l.out; ++k) {
      params_[l.w_off + k] = scale * rng.normal();
    }
  }
}

std::size_t DenseNet::num_params() const { return params_.size(); }

void DenseNet::set_params(std::span<const double> p) {
  assert(p.size() == params_.size());
  std::copy(p.begin(), p.end(), params_.begin());
}

std::vector<double> DenseNet::forward(
    std::span<const double> x, std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur(x.begin(), x.end());
  if (acts != nullptr) acts->push_back(cur);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    std::vector<double> next(l.out);
    for (std::size_t o = 0; o < l.out; ++o) {
      double s = params_[l.b_off + o];
      const double* w = &params_[l.w_off + o * l.in];
      for (std::size_t i = 0; i < l.in; ++i) s += w[i] * cur[i];
      next[o] = s;
    }
    const bool last = li + 1 == layers_.size();
    if (!last) {
      for (auto& v : next) v = std::max(v, 0.0);  // ReLU
    }
    cur = std::move(next);
    if (acts != nullptr) acts->push_back(cur);
  }
  // Softmax on the final logits.
  const double mx = *std::max_element(cur.begin(), cur.end());
  double z = 0.0;
  for (auto& v : cur) {
    v = std::exp(v - mx);
    z += v;
  }
  for (auto& v : cur) v /= z;
  return cur;
}

std::vector<double> DenseNet::predict(std::span<const double> x) const {
  return forward(x, nullptr);
}

std::size_t DenseNet::predict_class(std::span<const double> x) const {
  const auto p = predict(x);
  return static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

double DenseNet::loss_and_grad(std::span<const double> x, std::size_t label,
                               std::span<double> grad) const {
  assert(grad.size() == params_.size());
  std::vector<std::vector<double>> acts;
  auto probs = forward(x, &acts);
  const double loss = -std::log(std::max(probs[label], 1e-30));

  // Backprop. delta at the softmax head: p - onehot.
  std::vector<double> delta = probs;
  delta[label] -= 1.0;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const Layer& l = layers_[li];
    const auto& input = acts[li];       // activation entering this layer
    const auto& output = acts[li + 1];  // post-ReLU (or logits for last)
    // For hidden layers, delta arrives post-ReLU-derivative already
    // applied below; for the last layer delta is the softmax gradient.
    std::vector<double> prev_delta(l.in, 0.0);
    for (std::size_t o = 0; o < l.out; ++o) {
      const double d = delta[o];
      grad[l.b_off + o] += d;
      double* gw = &grad[l.w_off + o * l.in];
      const double* w = &params_[l.w_off + o * l.in];
      for (std::size_t i = 0; i < l.in; ++i) {
        gw[i] += d * input[i];
        prev_delta[i] += d * w[i];
      }
    }
    if (li > 0) {
      // ReLU derivative w.r.t. the previous layer's output.
      for (std::size_t i = 0; i < l.in; ++i) {
        if (acts[li][i] <= 0.0) prev_delta[i] = 0.0;
      }
    }
    delta = std::move(prev_delta);
    (void)output;
  }
  return loss;
}

double DenseNet::batch_loss_and_grad(std::span<const double> xs,
                                     std::span<const std::size_t> labels,
                                     std::size_t nfeat,
                                     std::span<double> grad) const {
  std::fill(grad.begin(), grad.end(), 0.0);
  double loss = 0.0;
  const std::size_t n = labels.size();
  for (std::size_t s = 0; s < n; ++s) {
    loss += loss_and_grad(xs.subspan(s * nfeat, nfeat), labels[s], grad);
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (auto& g : grad) g *= inv;
  return loss * inv;
}

void DenseNet::apply_gradient(std::span<const double> grad, double lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i] -= lr * grad[i];
  }
}

double DenseNet::accuracy(std::span<const double> xs,
                          std::span<const std::size_t> labels,
                          std::size_t nfeat) const {
  std::size_t hits = 0;
  for (std::size_t s = 0; s < labels.size(); ++s) {
    hits += predict_class(xs.subspan(s * nfeat, nfeat)) == labels[s];
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

DenseNet make_logistic_regression(std::size_t in, std::size_t classes,
                                  std::uint64_t seed) {
  return DenseNet({in, classes}, seed);
}

void train_sgd(DenseNet& net, std::span<const double> xs,
               std::span<const std::size_t> labels, std::size_t nfeat,
               const TrainConfig& cfg) {
  core::Rng rng(cfg.seed);
  const std::size_t n = labels.size();
  std::vector<double> grad(net.num_params());
  std::vector<double> velocity(net.num_params(), 0.0);
  std::vector<double> bx(cfg.batch * nfeat);
  std::vector<std::size_t> by(cfg.batch);
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    for (std::size_t it = 0; it < (n + cfg.batch - 1) / cfg.batch; ++it) {
      for (std::size_t b = 0; b < cfg.batch; ++b) {
        const std::size_t s = rng.uniform_int(n);
        std::copy(xs.begin() + static_cast<std::ptrdiff_t>(s * nfeat),
                  xs.begin() + static_cast<std::ptrdiff_t>((s + 1) * nfeat),
                  bx.begin() + static_cast<std::ptrdiff_t>(b * nfeat));
        by[b] = labels[s];
      }
      net.batch_loss_and_grad(bx, by, nfeat, grad);
      if (cfg.momentum > 0.0) {
        for (std::size_t k = 0; k < grad.size(); ++k) {
          velocity[k] = cfg.momentum * velocity[k] + grad[k];
        }
        net.apply_gradient(velocity, cfg.lr);
      } else {
        net.apply_gradient(grad, cfg.lr);
      }
    }
  }
}

}  // namespace coe::ml
