#pragma once
// Distributed-training algorithm study (Section 4.5): synchronous SGD,
// asynchronous SGD with a parameter server (staleness modeled explicitly),
// and the K-step averaging algorithm (KAVG) the team proposed. Training is
// real (gradients on a real DenseNet over a real dataset); only the
// learner concurrency is simulated.

#include "core/machine.hpp"
#include "ml/data.hpp"
#include "ml/nn.hpp"

namespace coe::ml {

enum class DistAlgo { SyncSgd, Asgd, Kavg };

const char* to_string(DistAlgo a);

struct DistConfig {
  std::size_t learners = 4;
  double lr = 0.1;
  std::size_t k = 4;             ///< local steps per averaging round (KAVG)
  std::size_t batch = 16;        ///< per-learner minibatch
  std::size_t gradient_budget = 2000;  ///< total gradient evaluations
  std::uint64_t seed = 5;
  /// When set, each algorithm's communication rounds are priced on this
  /// interconnect (not owned): the naive/central scheme vs the log-P
  /// collective net::select_allreduce would pick for the model size.
  const hsim::ClusterModel* cluster = nullptr;
};

struct DistResult {
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  std::size_t comm_rounds = 0;   ///< global reductions / server round trips
  std::size_t updates = 0;       ///< parameter updates applied
  bool diverged = false;         ///< loss became non-finite or exploded
  /// Modeled seconds for all comm_rounds (0 unless cfg.cluster is set):
  /// naive all-to-all/server scheme vs the selected log-P collective.
  double comm_central_s = 0.0;
  double comm_logp_s = 0.0;
};

/// Trains `net` in place under the given algorithm until the gradient
/// budget is exhausted; evaluates on the same dataset (capacity regime).
DistResult train_distributed(DenseNet& net, const Dataset& ds,
                             DistAlgo algo, const DistConfig& cfg);

}  // namespace coe::ml
