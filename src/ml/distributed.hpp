#pragma once
// Distributed-training algorithm study (Section 4.5): synchronous SGD,
// asynchronous SGD with a parameter server (staleness modeled explicitly),
// and the K-step averaging algorithm (KAVG) the team proposed. Training is
// real (gradients on a real DenseNet over a real dataset); only the
// learner concurrency is simulated.

#include "ml/data.hpp"
#include "ml/nn.hpp"

namespace coe::ml {

enum class DistAlgo { SyncSgd, Asgd, Kavg };

const char* to_string(DistAlgo a);

struct DistConfig {
  std::size_t learners = 4;
  double lr = 0.1;
  std::size_t k = 4;             ///< local steps per averaging round (KAVG)
  std::size_t batch = 16;        ///< per-learner minibatch
  std::size_t gradient_budget = 2000;  ///< total gradient evaluations
  std::uint64_t seed = 5;
};

struct DistResult {
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  std::size_t comm_rounds = 0;   ///< global reductions / server round trips
  std::size_t updates = 0;       ///< parameter updates applied
  bool diverged = false;         ///< loss became non-finite or exploded
};

/// Trains `net` in place under the given algorithm until the gradient
/// budget is exhausted; evaluates on the same dataset (capacity regime).
DistResult train_distributed(DenseNet& net, const Dataset& ds,
                             DistAlgo algo, const DistConfig& cfg);

}  // namespace coe::ml
