#pragma once
// LBANN spatial-parallel training scaling model (Figure 3). The algorithm
// partitions *each sample* across `gpus_per_sample` GPUs (the model is too
// large for one Volta), on top of conventional data parallelism across
// replicas. Step time decomposes into sample-parallel compute, intra-
// sample halo exchange over NVLink, and the cross-replica weight
// allreduce; the published curves pin the constants.

#include <cstddef>

#include "core/machine.hpp"

namespace coe::hsim {
// (cluster/machine models come from coe::hsim)
}

namespace coe::ml {

struct LbannModel {
  double flops_per_sample = 2.0e13;   ///< semantic-segmentation 3D U-Net
  double weight_bytes = 2.0e9;        ///< model too big for one 16 GB V100
  double activation_bytes = 20.0e9;   ///< activations partitioned w/ sample
  /// Effective fraction of activations exchanged per step (sqrt-p law);
  /// calibrated so the 8/16-GPU speedups land on Fig. 3 (2.8x, 3.4x).
  double halo_fraction = 0.37;
  std::size_t min_gpus_per_sample = 2;
};

/// Time for one sample's forward+backward on p cooperating GPUs.
double sample_step_time(const LbannModel& m, const hsim::MachineModel& gpu,
                        std::size_t gpus_per_sample);

/// Time per global training step with `total_gpus` GPUs split into
/// replicas of `gpus_per_sample`, each replica processing one sample of
/// the mini-batch; includes the weight allreduce across replicas.
double train_step_time(const LbannModel& m, const hsim::MachineModel& gpu,
                       const hsim::ClusterModel& net,
                       std::size_t total_gpus, std::size_t gpus_per_sample);

/// Strong-scaling speedup of the per-sample step vs the minimum feasible
/// partitioning (2 GPUs/sample).
double sample_speedup(const LbannModel& m, const hsim::MachineModel& gpu,
                      std::size_t gpus_per_sample);

}  // namespace coe::ml
