#pragma once
// Synthetic classification datasets for the deep-learning activity tests
// and benches (the video datasets themselves are unavailable; DESIGN.md
// section 2 documents the substitution).

#include <cstddef>
#include <vector>

#include "core/rng.hpp"

namespace coe::ml {

struct Dataset {
  std::size_t nfeat = 0;
  std::size_t classes = 0;
  std::vector<double> x;            ///< n * nfeat
  std::vector<std::size_t> y;       ///< n

  std::size_t size() const { return y.size(); }
};

/// Gaussian blobs: `classes` clusters with the given center separation.
inline Dataset make_blobs(std::size_t n, std::size_t nfeat,
                          std::size_t classes, double separation,
                          std::uint64_t seed) {
  core::Rng rng(seed);
  Dataset ds;
  ds.nfeat = nfeat;
  ds.classes = classes;
  ds.x.resize(n * nfeat);
  ds.y.resize(n);
  std::vector<double> centers(classes * nfeat);
  for (auto& c : centers) c = separation * rng.normal();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = rng.uniform_int(classes);
    ds.y[i] = label;
    for (std::size_t f = 0; f < nfeat; ++f) {
      ds.x[i * nfeat + f] = centers[label * nfeat + f] + rng.normal();
    }
  }
  return ds;
}

}  // namespace coe::ml
