#pragma once
// A small dense neural network with ReLU hidden layers and a softmax
// cross-entropy head, plus plain SGD -- the real computational core behind
// the Data Science deep-learning experiments: the KAVG-vs-ASGD study runs
// real training on it, and it doubles as the "shallow NN" and "logistic
// regression" stream combiners of Table 3.

#include <cstddef>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace coe::ml {

/// Fully-connected network: sizes = {in, hidden..., out}.
class DenseNet {
 public:
  DenseNet(std::vector<std::size_t> sizes, std::uint64_t seed = 1);

  std::size_t num_params() const;
  std::span<double> params() { return params_; }
  std::span<const double> params() const { return params_; }
  void set_params(std::span<const double> p);

  /// Forward pass; returns class probabilities (softmax).
  std::vector<double> predict(std::span<const double> x) const;
  std::size_t predict_class(std::span<const double> x) const;

  /// Cross-entropy loss and gradient for one (x, label) pair, accumulated
  /// into `grad` (sized num_params). Returns the loss.
  double loss_and_grad(std::span<const double> x, std::size_t label,
                       std::span<double> grad) const;

  /// Mean loss over a batch; gradient averaged into `grad`.
  double batch_loss_and_grad(std::span<const double> xs,
                             std::span<const std::size_t> labels,
                             std::size_t nfeat, std::span<double> grad) const;

  /// params -= lr * grad
  void apply_gradient(std::span<const double> grad, double lr);

  double accuracy(std::span<const double> xs,
                  std::span<const std::size_t> labels,
                  std::size_t nfeat) const;

 private:
  struct Layer {
    std::size_t in, out;
    std::size_t w_off, b_off;  // offsets into params_
  };
  std::vector<double> forward(std::span<const double> x,
                              std::vector<std::vector<double>>* acts) const;

  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
  std::vector<double> params_;
};

/// Multinomial logistic regression = DenseNet with no hidden layer.
DenseNet make_logistic_regression(std::size_t in, std::size_t classes,
                                  std::uint64_t seed = 1);

/// Simple SGD training loop over an in-memory dataset.
struct TrainConfig {
  double lr = 0.1;
  double momentum = 0.0;
  std::size_t epochs = 20;
  std::size_t batch = 32;
  std::uint64_t seed = 7;
};
void train_sgd(DenseNet& net, std::span<const double> xs,
               std::span<const std::size_t> labels, std::size_t nfeat,
               const TrainConfig& cfg);

}  // namespace coe::ml
