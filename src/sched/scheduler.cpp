#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "resil/fault.hpp"

namespace coe::sched {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Fcfs: return "FCFS";
    case Policy::Sjf: return "SJF";
    case Policy::SjfQuota: return "SJF+Quota";
  }
  return "?";
}

ScheduleMetrics Simulator::run(std::vector<Job> jobs) {
  outcomes_.clear();
  ScheduleMetrics m;
  if (jobs.empty()) return m;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.submit_time < b.submit_time;
  });

  // Auto parameters for the quota policy.
  double threshold = cfg_.long_job_threshold;
  if (threshold <= 0.0) {
    std::vector<double> est;
    est.reserve(jobs.size());
    for (const auto& j : jobs) est.push_back(j.estimate);
    const std::size_t p90 = est.size() * 9 / 10;
    std::nth_element(est.begin(), est.begin() + p90, est.end());
    threshold = est[p90];
  }
  int reserve = cfg_.long_job_reserve;
  if (reserve <= 0) reserve = std::max(1, cfg_.num_gpus / 4);

  struct Running {
    double start;
    double finish;
    int gpus;
    bool is_long;
    std::size_t job_index;
  };
  std::vector<Running> running;  // unordered; failures need random access

  // Cluster-level failure clock (superposed per-GPU exponentials) and the
  // victim-selection stream, both seeded for reproducibility.
  resil::FaultInjector faults(
      cfg_.gpu_mtbf > 0.0 ? cfg_.gpu_mtbf / cfg_.num_gpus : 0.0,
      cfg_.fault_seed);
  core::Rng victim_rng(cfg_.fault_seed ^ 0xc0ffee);
  std::vector<double> repairs;  // pending GPU repair completion times
  int down_gpus = 0;

  std::vector<std::size_t> queue;  // indices of queued jobs
  std::vector<int> restarts(jobs.size(), 0);
  std::size_t next_arrival = 0;
  int free_gpus = cfg_.num_gpus;
  int long_gpus_busy = 0;
  double now = 0.0;
  double busy_gpu_time = 0.0;
  double total_wait = 0.0, total_turnaround = 0.0, max_wait = 0.0;
  outcomes_.resize(jobs.size());

  auto pick_next = [&]() -> std::ptrdiff_t {
    // Returns an index into `queue` or -1.
    // Under SjfQuota, when the long-job reserve is undersubscribed and a
    // feasible long job waits, it takes priority (shortest long first).
    std::ptrdiff_t best = -1;
    std::ptrdiff_t best_long = -1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const Job& j = jobs[queue[qi]];
      if (j.gpus > free_gpus) continue;
      const bool is_long = j.estimate >= threshold;
      if (cfg_.policy == Policy::Fcfs) return static_cast<std::ptrdiff_t>(qi);
      if (best < 0 ||
          j.estimate <
              jobs[queue[static_cast<std::size_t>(best)]].estimate) {
        best = static_cast<std::ptrdiff_t>(qi);
      }
      if (is_long &&
          (best_long < 0 ||
           j.estimate <
               jobs[queue[static_cast<std::size_t>(best_long)]].estimate)) {
        best_long = static_cast<std::ptrdiff_t>(qi);
      }
    }
    if (cfg_.policy == Policy::SjfQuota && best_long >= 0 &&
        long_gpus_busy < reserve) {
      return best_long;
    }
    return best;
  };

  auto launch_all_possible = [&]() {
    for (;;) {
      const std::ptrdiff_t qi = pick_next();
      if (qi < 0) break;
      const std::size_t ji = queue[static_cast<std::size_t>(qi)];
      queue.erase(queue.begin() + qi);
      const Job& j = jobs[ji];
      const bool is_long = j.estimate >= threshold;
      free_gpus -= j.gpus;
      if (is_long) long_gpus_busy += j.gpus;
      running.push_back(Running{now, now + j.duration, j.gpus, is_long, ji});
      outcomes_[ji] = JobOutcome{j, now, now + j.duration, restarts[ji]};
    }
  };

  auto min_finish = [&]() -> std::size_t {
    std::size_t best = 0;
    for (std::size_t i = 1; i < running.size(); ++i) {
      if (running[i].finish < running[best].finish) best = i;
    }
    return best;
  };

  while (next_arrival < jobs.size() || !running.empty() || !queue.empty()) {
    const double t_arr =
        next_arrival < jobs.size() ? jobs[next_arrival].submit_time : kInf;
    const double t_fin =
        running.empty() ? kInf : running[min_finish()].finish;
    const double t_rep =
        repairs.empty() ? kInf
                        : *std::min_element(repairs.begin(), repairs.end());
    const double t_fail = faults.enabled() ? faults.next() : kInf;

    if (t_arr == kInf && t_fin == kInf && t_rep == kInf) {
      // Only failure events (or nothing) remain: a failure cannot start
      // queued-but-infeasible jobs, so the schedule is done.
      break;
    }

    // Tie order preserves the reliable-cluster trace: arrival, finish,
    // repair, failure.
    if (t_arr <= t_fin && t_arr <= t_rep && t_arr <= t_fail) {
      now = std::max(now, t_arr);
      while (next_arrival < jobs.size() &&
             jobs[next_arrival].submit_time <= now) {
        queue.push_back(next_arrival++);
      }
    } else if (t_fin <= t_rep && t_fin <= t_fail) {
      const std::size_t ri = min_finish();
      const Running r = running[ri];
      running[ri] = running.back();
      running.pop_back();
      now = r.finish;
      free_gpus += r.gpus;
      if (r.is_long) long_gpus_busy -= r.gpus;
      const Job& j = jobs[r.job_index];
      busy_gpu_time += j.duration * j.gpus;
      const double wait = r.start - j.submit_time;
      total_wait += wait;
      max_wait = std::max(max_wait, wait);
      if (cfg_.metrics) cfg_.metrics->observe("sched.wait_s", wait);
      total_turnaround += r.finish - j.submit_time;
      ++m.completed;
    } else if (t_rep <= t_fail) {
      repairs.erase(std::min_element(repairs.begin(), repairs.end()));
      now = t_rep;
      free_gpus += 1;
      down_gpus -= 1;
    } else {
      now = t_fail;
      faults.fire(now);
      if (down_gpus >= cfg_.num_gpus) continue;  // nothing left to break
      ++m.gpu_failures;
      if (free_gpus > 0) {
        free_gpus -= 1;  // an idle GPU died
      } else {
        // Every GPU is busy: the failure lands on a running job, chosen
        // with probability proportional to its GPU footprint.
        int total = 0;
        for (const auto& r : running) total += r.gpus;
        int pick = static_cast<int>(
            victim_rng.uniform_int(static_cast<std::uint64_t>(total)));
        std::size_t vi = 0;
        for (; vi < running.size(); ++vi) {
          pick -= running[vi].gpus;
          if (pick < 0) break;
        }
        const Running v = running[vi];
        running[vi] = running.back();
        running.pop_back();
        m.lost_gpu_time += (now - v.start) * v.gpus;
        ++m.requeues;
        ++restarts[v.job_index];
        if (v.is_long) long_gpus_busy -= v.gpus;
        free_gpus += v.gpus - 1;  // the job's GPUs return, minus the corpse
        queue.push_back(v.job_index);
      }
      if (cfg_.gpu_repair_time > 0.0) {
        down_gpus += 1;
        repairs.push_back(now + cfg_.gpu_repair_time);
      } else {
        free_gpus += 1;  // instant repair
      }
    }
    launch_all_possible();
  }

  m.makespan = now;
  const double n = static_cast<double>(jobs.size());
  m.mean_wait = total_wait / n;
  m.max_wait = max_wait;
  m.mean_turnaround = total_turnaround / n;
  m.utilization =
      m.makespan > 0.0
          ? busy_gpu_time / (static_cast<double>(cfg_.num_gpus) * m.makespan)
          : 0.0;
  m.throughput = m.makespan > 0.0 ? n / m.makespan : 0.0;
  if (cfg_.metrics) {
    cfg_.metrics->add("sched.jobs", n);
    cfg_.metrics->add("sched.completed", static_cast<double>(m.completed));
    cfg_.metrics->add("sched.gpu_failures",
                      static_cast<double>(m.gpu_failures));
    cfg_.metrics->add("sched.requeues", static_cast<double>(m.requeues));
    cfg_.metrics->add("sched.lost_gpu_time", m.lost_gpu_time);
    cfg_.metrics->set("sched.makespan", m.makespan);
    cfg_.metrics->set("sched.utilization", m.utilization);
  }
  return m;
}

std::vector<Job> make_workload(const WorkloadConfig& cfg) {
  core::Rng rng(cfg.seed);
  std::vector<Job> jobs(cfg.num_jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.num_jobs; ++i) {
    Job& j = jobs[i];
    j.id = i;
    j.duration = rng.gamma(cfg.duration_shape,
                           cfg.mean_duration / cfg.duration_shape);
    j.estimate = j.duration;
    if (cfg.estimate_noise > 0.0) {
      j.estimate *= std::max(0.05, 1.0 + cfg.estimate_noise * rng.normal());
    }
    if (cfg.arrival_rate > 0.0) {
      t += rng.exponential(cfg.arrival_rate);
      j.submit_time = t;
    }
  }
  return jobs;
}

}  // namespace coe::sched
