#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace coe::sched {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Fcfs: return "FCFS";
    case Policy::Sjf: return "SJF";
    case Policy::SjfQuota: return "SJF+Quota";
  }
  return "?";
}

ScheduleMetrics Simulator::run(std::vector<Job> jobs) {
  outcomes_.clear();
  ScheduleMetrics m;
  if (jobs.empty()) return m;

  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.submit_time < b.submit_time;
  });

  // Auto parameters for the quota policy.
  double threshold = cfg_.long_job_threshold;
  if (threshold <= 0.0) {
    std::vector<double> est;
    est.reserve(jobs.size());
    for (const auto& j : jobs) est.push_back(j.estimate);
    const std::size_t p90 = est.size() * 9 / 10;
    std::nth_element(est.begin(), est.begin() + p90, est.end());
    threshold = est[p90];
  }
  int reserve = cfg_.long_job_reserve;
  if (reserve <= 0) reserve = std::max(1, cfg_.num_gpus / 4);

  struct Running {
    double finish;
    int gpus;
    bool is_long;
    std::size_t job_index;
    bool operator>(const Running& o) const { return finish > o.finish; }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;

  std::vector<std::size_t> queue;  // indices of queued jobs
  std::size_t next_arrival = 0;
  int free_gpus = cfg_.num_gpus;
  int long_gpus_busy = 0;
  double now = 0.0;
  double busy_gpu_time = 0.0;
  double total_wait = 0.0, total_turnaround = 0.0, max_wait = 0.0;
  outcomes_.resize(jobs.size());

  auto pick_next = [&]() -> std::ptrdiff_t {
    // Returns an index into `queue` or -1.
    // Under SjfQuota, when the long-job reserve is undersubscribed and a
    // feasible long job waits, it takes priority (shortest long first).
    std::ptrdiff_t best = -1;
    std::ptrdiff_t best_long = -1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const Job& j = jobs[queue[qi]];
      if (j.gpus > free_gpus) continue;
      const bool is_long = j.estimate >= threshold;
      if (cfg_.policy == Policy::Fcfs) return static_cast<std::ptrdiff_t>(qi);
      if (best < 0 ||
          j.estimate <
              jobs[queue[static_cast<std::size_t>(best)]].estimate) {
        best = static_cast<std::ptrdiff_t>(qi);
      }
      if (is_long &&
          (best_long < 0 ||
           j.estimate <
               jobs[queue[static_cast<std::size_t>(best_long)]].estimate)) {
        best_long = static_cast<std::ptrdiff_t>(qi);
      }
    }
    if (cfg_.policy == Policy::SjfQuota && best_long >= 0 &&
        long_gpus_busy < reserve) {
      return best_long;
    }
    return best;
  };

  auto launch_all_possible = [&]() {
    for (;;) {
      const std::ptrdiff_t qi = pick_next();
      if (qi < 0) break;
      const std::size_t ji = queue[static_cast<std::size_t>(qi)];
      queue.erase(queue.begin() + qi);
      const Job& j = jobs[ji];
      const bool is_long = j.estimate >= threshold;
      free_gpus -= j.gpus;
      if (is_long) long_gpus_busy += j.gpus;
      running.push(Running{now + j.duration, j.gpus, is_long, ji});
      outcomes_[ji] = JobOutcome{j, now, now + j.duration};
      const double wait = now - j.submit_time;
      total_wait += wait;
      max_wait = std::max(max_wait, wait);
      total_turnaround += wait + j.duration;
      busy_gpu_time += j.duration * j.gpus;
    }
  };

  while (next_arrival < jobs.size() || !running.empty() || !queue.empty()) {
    // Advance to the next event.
    double t_event = -1.0;
    const bool have_arrival = next_arrival < jobs.size();
    const bool have_finish = !running.empty();
    if (have_arrival && (!have_finish ||
                         jobs[next_arrival].submit_time <=
                             running.top().finish)) {
      t_event = jobs[next_arrival].submit_time;
      now = std::max(now, t_event);
      while (next_arrival < jobs.size() &&
             jobs[next_arrival].submit_time <= now) {
        queue.push_back(next_arrival++);
      }
    } else if (have_finish) {
      const Running r = running.top();
      running.pop();
      now = r.finish;
      free_gpus += r.gpus;
      if (r.is_long) long_gpus_busy -= r.gpus;
      ++m.completed;
    } else {
      break;  // only queued infeasible jobs remain (shouldn't happen)
    }
    launch_all_possible();
  }

  m.makespan = now;
  const double n = static_cast<double>(jobs.size());
  m.mean_wait = total_wait / n;
  m.max_wait = max_wait;
  m.mean_turnaround = total_turnaround / n;
  m.utilization =
      m.makespan > 0.0
          ? busy_gpu_time / (static_cast<double>(cfg_.num_gpus) * m.makespan)
          : 0.0;
  m.throughput = m.makespan > 0.0 ? n / m.makespan : 0.0;
  return m;
}

std::vector<Job> make_workload(const WorkloadConfig& cfg) {
  core::Rng rng(cfg.seed);
  std::vector<Job> jobs(cfg.num_jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.num_jobs; ++i) {
    Job& j = jobs[i];
    j.id = i;
    j.duration = rng.gamma(cfg.duration_shape,
                           cfg.mean_duration / cfg.duration_shape);
    j.estimate = j.duration;
    if (cfg.estimate_noise > 0.0) {
      j.estimate *= std::max(0.05, 1.0 + cfg.estimate_noise * rng.normal());
    }
    if (cfg.arrival_rate > 0.0) {
      t += rng.exponential(cfg.arrival_rate);
      j.submit_time = t;
    }
  }
  return jobs;
}

}  // namespace coe::sched
