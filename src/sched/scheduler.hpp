#pragma once
// Opt-activity job scheduler simulator (Section 4.7): "the team decided to
// develop a job scheduler simulator to study job scheduling policies with
// job requests that represent the behavior of the topological optimization
// application." An event-driven simulator of a multi-GPU node/cluster with
// FCFS, SJF, and SJF-with-quota policies, plus the two arrival regimes the
// paper studied (rate-distributed arrivals vs one batch).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "obs/metrics.hpp"

namespace coe::sched {

struct Job {
  std::uint64_t id = 0;
  double submit_time = 0.0;
  double duration = 0.0;   ///< true service time (GPU-seconds)
  double estimate = 0.0;   ///< scheduler-visible duration estimate
  int gpus = 1;            ///< GPUs required concurrently
};

enum class Policy {
  Fcfs,      ///< first come, first served
  Sjf,       ///< shortest (estimated) job first
  /// SJF, but long jobs are guaranteed a reserved share of the GPUs:
  /// whenever fewer than `long_job_reserve` GPUs run long jobs and a long
  /// job is waiting, the shortest *long* job is started. Bounds the
  /// starvation SJF inflicts on long jobs and keeps wide/long work
  /// spread through the schedule (better packing = higher utilization).
  SjfQuota,
};

const char* to_string(Policy p);

struct SchedulerConfig {
  int num_gpus = 4;
  Policy policy = Policy::Fcfs;
  /// Jobs with estimate >= long_job_threshold are "long" (0 = auto: the
  /// 90th percentile of the workload's estimates).
  double long_job_threshold = 0.0;
  /// GPUs reserved for long jobs under SjfQuota (0 = auto: a quarter).
  int long_job_reserve = 0;
  /// Mean time between failures of one GPU (0 = reliable cluster). The
  /// cluster-level failure process is the superposition: rate num_gpus/mtbf,
  /// driven by a seeded resil::FaultInjector. A failure takes down one GPU;
  /// if none is idle, a running job is killed (weighted by its GPU
  /// footprint), loses all progress, and is requeued.
  double gpu_mtbf = 0.0;
  /// Downtime before a failed GPU rejoins the pool (0 = instant repair).
  double gpu_repair_time = 0.0;
  std::uint64_t fault_seed = 99;
  /// Optional telemetry sink (not owned; must outlive run()). Publishes
  /// "sched.jobs"/".completed"/".gpu_failures"/".requeues"/
  /// ".lost_gpu_time" counters, "sched.makespan"/".utilization" gauges,
  /// and a "sched.wait_s" histogram (one observation per completed job).
  obs::MetricsRegistry* metrics = nullptr;
};

struct ScheduleMetrics {
  double makespan = 0.0;
  double mean_wait = 0.0;           ///< submit -> final successful start
  double max_wait = 0.0;
  double mean_turnaround = 0.0;     ///< submit -> completion
  double utilization = 0.0;         ///< useful GPU-time / (gpus * makespan)
  double throughput = 0.0;          ///< jobs per unit time
  std::size_t completed = 0;
  std::size_t gpu_failures = 0;     ///< failure events applied
  std::size_t requeues = 0;         ///< jobs killed mid-run and requeued
  double lost_gpu_time = 0.0;       ///< GPU-seconds of discarded progress
};

struct JobOutcome {
  Job job;
  double start_time = 0.0;   ///< start of the final (successful) attempt
  double finish_time = 0.0;
  int restarts = 0;          ///< attempts killed by GPU failures
};

/// Runs the workload to completion under the policy; jobs need not be
/// sorted by submit time.
class Simulator {
 public:
  explicit Simulator(SchedulerConfig cfg) : cfg_(cfg) {}

  ScheduleMetrics run(std::vector<Job> jobs);
  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

 private:
  SchedulerConfig cfg_;
  std::vector<JobOutcome> outcomes_;
};

/// Topology-optimization-style workload: gamma-distributed durations with a
/// heavy tail (a few very expensive loading conditions).
struct WorkloadConfig {
  std::size_t num_jobs = 1000;
  double mean_duration = 60.0;
  double duration_shape = 1.5;      ///< gamma shape (lower = heavier tail)
  double estimate_noise = 0.0;      ///< relative noise on the estimates
  double arrival_rate = 0.0;        ///< Poisson rate; 0 = all at t = 0
  std::uint64_t seed = 1234;
};

std::vector<Job> make_workload(const WorkloadConfig& cfg);

}  // namespace coe::sched
