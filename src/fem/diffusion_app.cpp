#include "fem/diffusion_app.hpp"

#include <cmath>

#include "la/vector_ops.hpp"
#include "prof/span.hpp"

namespace coe::fem {

namespace {

/// ydot = M^{-1} ( -K(u) u ), with the boundary pinned to zero.
class DiffusionRhs final : public ode::OdeRhs {
 public:
  DiffusionRhs(core::ExecContext& ctx, const TensorMesh2D& mesh,
               const DiffusionConfig& cfg, DiffusionReport& report)
      : ctx_(&ctx), cfg_(&cfg), report_(&report),
        mass_(mesh, cfg.assembly, 1.0, 0.0),
        stiff_(mesh, cfg.assembly, 0.0, 1.0),
        mass_diag_(mass_.assemble_diagonal()),
        scratch_(mesh.num_dofs()) {}

  void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
    ctx_->set_phase("formulation");
    prof::Scope span(cfg_->profiler, ctx_, "formulation");
    stiff_.set_kappa_from_nodal(y.data(), cfg_->conductivity);
    stiff_.apply(*ctx_, y.data(), scratch_);
    la::scale(*ctx_, -1.0, scratch_);
    // Boundary rows: K apply returned x[b]; the boundary is static.
    const auto& bdr = stiff_.mesh().boundary_dofs();
    ctx_->forall(bdr.size(), {0.0, 16.0},
                 [&](std::size_t i) { scratch_[bdr[i]] = 0.0; });
    // Mass solve M ydot = -K u via Jacobi-preconditioned CG (the mass
    // matrix is well conditioned at any order on GLL nodes).
    DiagPrec prec{&mass_diag_};
    ydot.fill(0.0);
    auto res = la::cg(*ctx_, mass_, prec, scratch_, ydot.data(),
                      {200, 1e-10, 0.0, false, cfg_->profiler});
    report_->mass_cg_iterations += res.iterations;
  }

  EllipticOperator& stiffness() { return stiff_; }
  EllipticOperator& mass() { return mass_; }

 private:
  struct DiagPrec final : la::Preconditioner {
    const std::vector<double>* d;
    explicit DiagPrec(const std::vector<double>* diag) : d(diag) {}
    void apply(core::ExecContext& ctx, std::span<const double> r,
               std::span<double> z) const override {
      const auto& diag = *d;
      ctx.forall(r.size(), {1.0, 24.0},
                 [&](std::size_t i) { z[i] = r[i] / diag[i]; });
    }
  };

  core::ExecContext* ctx_;
  const DiffusionConfig* cfg_;
  DiffusionReport* report_;
  EllipticOperator mass_;
  EllipticOperator stiff_;
  std::vector<double> mass_diag_;
  std::vector<double> scratch_;
};

/// Solves (I - gamma*J) x = r with J ~ -M^{-1} K(y), i.e. the SPD system
/// (M + gamma K) x = M r, CG-preconditioned with BoomerAMG on the LOR
/// rediscretization (or Jacobi when cfg.use_amg is false).
class DiffusionNewtonSolver final : public ode::OdeLinearSolver {
 public:
  DiffusionNewtonSolver(core::ExecContext& ctx, const TensorMesh2D& mesh,
                        const DiffusionConfig& cfg, DiffusionReport& report)
      : ctx_(&ctx), cfg_(&cfg), report_(&report),
        system_(mesh, cfg.assembly, 1.0, 0.0),
        mass_(mesh, cfg.assembly, 1.0, 0.0),
        rhs_(mesh.num_dofs()) {}

  void setup(double, const ode::NVector& y, double gamma) override {
    ctx_->set_phase("preconditioner");
    prof::Scope span(cfg_->profiler, ctx_, "preconditioner");
    system_.set_alpha_beta(1.0, gamma);
    system_.set_kappa_from_nodal(y.data(), cfg_->conductivity);
    if (cfg_->use_amg) {
      auto lor = system_.assemble_lor();
      // LOR assembly priced as one sweep over the fine lattice.
      ctx_->record_kernel({static_cast<double>(lor.nnz()) * 8.0,
                           static_cast<double>(lor.nnz()) * 24.0});
      const double lor_nnz = static_cast<double>(lor.nnz());
      amg_ = std::make_unique<amg::BoomerAmg>(std::move(lor), amg::AmgOptions{});
      // AMG setup (strength graph, PMIS, interpolation, Galerkin RAP):
      // ~10 flops and ~60 bytes per fine nonzero per level, summed via the
      // operator complexity.
      const double setup_scale = amg_->operator_complexity();
      ctx_->record_kernel({10.0 * lor_nnz * setup_scale,
                           60.0 * lor_nnz * setup_scale});
      jacobi_.reset();
    } else {
      diag_ = system_.assemble_diagonal();
      jacobi_ = std::make_unique<DiagPrec>(&diag_);
      amg_.reset();
    }
  }

  void solve(const ode::NVector& r, ode::NVector& x) override {
    ctx_->set_phase("solve");
    prof::Scope span(cfg_->profiler, ctx_, "solve");
    mass_.apply(*ctx_, r.data(), rhs_);
    x.fill(0.0);
    const la::Preconditioner& prec =
        cfg_->use_amg ? static_cast<const la::Preconditioner&>(*amg_)
                      : static_cast<const la::Preconditioner&>(*jacobi_);
    auto res = la::cg(*ctx_, system_, prec, rhs_, x.data(),
                      {500, 1e-8, 0.0, false, cfg_->profiler});
    report_->cg_iterations += res.iterations;
    report_->cg_solves += 1;
  }

 private:
  struct DiagPrec final : la::Preconditioner {
    const std::vector<double>* d;
    explicit DiagPrec(const std::vector<double>* diag) : d(diag) {}
    void apply(core::ExecContext& ctx, std::span<const double> r,
               std::span<double> z) const override {
      const auto& diag = *d;
      ctx.forall(r.size(), {1.0, 24.0},
                 [&](std::size_t i) { z[i] = r[i] / diag[i]; });
    }
  };

  core::ExecContext* ctx_;
  const DiffusionConfig* cfg_;
  DiffusionReport* report_;
  EllipticOperator system_;
  EllipticOperator mass_;
  std::unique_ptr<amg::BoomerAmg> amg_;
  std::unique_ptr<DiagPrec> jacobi_;
  std::vector<double> diag_;
  std::vector<double> rhs_;
};

}  // namespace

NonlinearDiffusion::NonlinearDiffusion(core::ExecContext& ctx,
                                       DiffusionConfig cfg)
    : ctx_(&ctx), cfg_(cfg), mesh_(cfg.nx, cfg.nx, cfg.order),
      u_(mesh_.num_dofs(), 0.0) {
  for (std::size_t ix = 0; ix < mesh_.ndof_x(); ++ix) {
    for (std::size_t iy = 0; iy < mesh_.ndof_y(); ++iy) {
      u_[mesh_.dof(ix, iy)] =
          initial_condition(mesh_.dof_x(ix), mesh_.dof_y(iy));
    }
  }
  for (std::size_t b : mesh_.boundary_dofs()) u_[b] = 0.0;
}

double NonlinearDiffusion::initial_condition(double x, double y) {
  return std::sin(M_PI * x) * std::sin(M_PI * y);
}

DiffusionReport NonlinearDiffusion::run() {
  DiffusionReport report;
  report.dofs = mesh_.num_dofs();

  DiffusionRhs rhs(*ctx_, mesh_, cfg_, report);
  DiffusionNewtonSolver newton(*ctx_, mesh_, cfg_, report);

  ode::NVector y(*ctx_, u_.size());
  for (std::size_t i = 0; i < u_.size(); ++i) y.data()[i] = u_[i];

  ode::BdfOptions opts;
  opts.rtol = cfg_.rtol;
  opts.atol = cfg_.atol;
  opts.dt_init = cfg_.dt_init;
  opts.max_steps = cfg_.max_timesteps;
  ode::Bdf bdf(opts);
  report.ode = bdf.integrate(rhs, &newton, 0.0, cfg_.t_final, y);

  for (std::size_t i = 0; i < u_.size(); ++i) u_[i] = y.data()[i];
  return report;
}

}  // namespace coe::fem
