#pragma once
// Structured 2D quadrilateral mesh with arbitrary-order tensor-product H1
// dofs on GLL nodes. Lattice lines may be non-uniform, which is exactly
// what the low-order-refined (LOR) mesh needs: its vertices sit at the
// high-order mesh's GLL points.

#include <cstddef>
#include <vector>

#include "fem/basis.hpp"

namespace coe::fem {

class TensorMesh2D {
 public:
  /// Uniform nx x ny element mesh of the unit square, order p.
  TensorMesh2D(std::size_t nx, std::size_t ny, std::size_t order);

  /// General mesh from element-boundary lines (ascending, size nx+1/ny+1).
  TensorMesh2D(std::vector<double> xlines, std::vector<double> ylines,
               std::size_t order);

  std::size_t nx() const { return xlines_.size() - 1; }
  std::size_t ny() const { return ylines_.size() - 1; }
  std::size_t order() const { return order_; }
  std::size_t num_elements() const { return nx() * ny(); }

  std::size_t ndof_x() const { return nx() * order_ + 1; }
  std::size_t ndof_y() const { return ny() * order_ + 1; }
  std::size_t num_dofs() const { return ndof_x() * ndof_y(); }

  /// Global dof id of lattice point (ix, iy).
  std::size_t dof(std::size_t ix, std::size_t iy) const {
    return ix * ndof_y() + iy;
  }

  /// Global dof of element (ex, ey), local tensor node (i, j).
  std::size_t elem_dof(std::size_t ex, std::size_t ey, std::size_t i,
                       std::size_t j) const {
    return dof(ex * order_ + i, ey * order_ + j);
  }

  double elem_hx(std::size_t ex) const { return xlines_[ex + 1] - xlines_[ex]; }
  double elem_hy(std::size_t ey) const { return ylines_[ey + 1] - ylines_[ey]; }

  /// Physical coordinate of lattice dof (ix, iy).
  double dof_x(std::size_t ix) const { return xcoord_[ix]; }
  double dof_y(std::size_t iy) const { return ycoord_[iy]; }

  /// Physical position of quadrature point q in element ex (1D).
  double quad_x(std::size_t ex, double ref) const {
    return xlines_[ex] + 0.5 * (ref + 1.0) * elem_hx(ex);
  }
  double quad_y(std::size_t ey, double ref) const {
    return ylines_[ey] + 0.5 * (ref + 1.0) * elem_hy(ey);
  }

  /// Indices of all boundary dofs (the homogeneous Dirichlet set).
  const std::vector<std::size_t>& boundary_dofs() const { return boundary_; }
  bool is_boundary(std::size_t dof_id) const { return on_boundary_[dof_id]; }

  /// Lattice line coordinates of all dofs along x/y (the LOR mesh lines).
  const std::vector<double>& dof_xcoords() const { return xcoord_; }
  const std::vector<double>& dof_ycoords() const { return ycoord_; }

 private:
  void build(std::size_t order);

  std::vector<double> xlines_, ylines_;
  std::size_t order_;
  std::vector<double> xcoord_, ycoord_;  // dof lattice coordinates
  std::vector<std::size_t> boundary_;
  std::vector<bool> on_boundary_;
};

}  // namespace coe::fem
