#include "fem/mesh.hpp"

#include <cassert>

namespace coe::fem {

namespace {
std::vector<double> uniform_lines(std::size_t n) {
  std::vector<double> lines(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    lines[i] = static_cast<double>(i) / static_cast<double>(n);
  }
  return lines;
}
}  // namespace

TensorMesh2D::TensorMesh2D(std::size_t nx, std::size_t ny, std::size_t order)
    : xlines_(uniform_lines(nx)), ylines_(uniform_lines(ny)), order_(order) {
  build(order);
}

TensorMesh2D::TensorMesh2D(std::vector<double> xlines,
                           std::vector<double> ylines, std::size_t order)
    : xlines_(std::move(xlines)), ylines_(std::move(ylines)), order_(order) {
  assert(xlines_.size() >= 2 && ylines_.size() >= 2);
  build(order);
}

void TensorMesh2D::build(std::size_t order) {
  assert(order >= 1);
  const auto gll = gll_nodes(order);
  xcoord_.resize(ndof_x());
  ycoord_.resize(ndof_y());
  for (std::size_t ex = 0; ex < nx(); ++ex) {
    for (std::size_t l = 0; l <= order; ++l) {
      xcoord_[ex * order + l] =
          xlines_[ex] + 0.5 * (gll[l] + 1.0) * elem_hx(ex);
    }
  }
  for (std::size_t ey = 0; ey < ny(); ++ey) {
    for (std::size_t l = 0; l <= order; ++l) {
      ycoord_[ey * order + l] =
          ylines_[ey] + 0.5 * (gll[l] + 1.0) * elem_hy(ey);
    }
  }
  on_boundary_.assign(num_dofs(), false);
  for (std::size_t ix = 0; ix < ndof_x(); ++ix) {
    for (std::size_t iy = 0; iy < ndof_y(); ++iy) {
      if (ix == 0 || iy == 0 || ix + 1 == ndof_x() || iy + 1 == ndof_y()) {
        const std::size_t d = dof(ix, iy);
        on_boundary_[d] = true;
        boundary_.push_back(d);
      }
    }
  }
}

}  // namespace coe::fem
