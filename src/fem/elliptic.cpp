#include "fem/elliptic.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace coe::fem {

namespace {
// Generous stack bounds: order <= 10, quadrature <= order + 2.
constexpr std::size_t kMaxP1 = 11;
constexpr std::size_t kMaxQ = 13;
}  // namespace

EllipticOperator::EllipticOperator(const TensorMesh2D& mesh, Assembly mode,
                                   double alpha, double beta)
    : mesh_(&mesh), mode_(mode), alpha_(alpha), beta_(beta),
      el_(make_element(mesh.order())) {
  assert(mesh.order() + 1 <= kMaxP1);
  const std::size_t q = el_.quad.points.size();
  kappa_q_.assign(mesh.num_elements() * q * q, 1.0);
  kappa_nodal_.assign(mesh.num_dofs(), 1.0);
}

void EllipticOperator::set_alpha_beta(double alpha, double beta) {
  alpha_ = alpha;
  beta_ = beta;
  full_built_ = false;
}

void EllipticOperator::set_kappa(
    const std::function<double(double, double)>& kappa) {
  const std::size_t q = el_.quad.points.size();
  for (std::size_t ex = 0; ex < mesh_->nx(); ++ex) {
    for (std::size_t ey = 0; ey < mesh_->ny(); ++ey) {
      const std::size_t e = ex * mesh_->ny() + ey;
      for (std::size_t q1 = 0; q1 < q; ++q1) {
        for (std::size_t q2 = 0; q2 < q; ++q2) {
          kappa_q_[(e * q + q1) * q + q2] =
              kappa(mesh_->quad_x(ex, el_.quad.points[q1]),
                    mesh_->quad_y(ey, el_.quad.points[q2]));
        }
      }
    }
  }
  for (std::size_t ix = 0; ix < mesh_->ndof_x(); ++ix) {
    for (std::size_t iy = 0; iy < mesh_->ndof_y(); ++iy) {
      kappa_nodal_[mesh_->dof(ix, iy)] =
          kappa(mesh_->dof_x(ix), mesh_->dof_y(iy));
    }
  }
  full_built_ = false;
}

void EllipticOperator::set_kappa_from_nodal(
    std::span<const double> u, const std::function<double(double)>& k) {
  const std::size_t p1 = mesh_->order() + 1;
  const std::size_t q = el_.quad.points.size();
  const auto& B = el_.tab;
  // Interpolate u to quadrature points per element, then apply k.
  for (std::size_t ex = 0; ex < mesh_->nx(); ++ex) {
    for (std::size_t ey = 0; ey < mesh_->ny(); ++ey) {
      const std::size_t e = ex * mesh_->ny() + ey;
      double tmp[kMaxQ][kMaxP1];
      for (std::size_t q1 = 0; q1 < q; ++q1) {
        for (std::size_t j = 0; j < p1; ++j) {
          double s = 0.0;
          for (std::size_t i = 0; i < p1; ++i) {
            s += B.b(q1, i) * u[mesh_->elem_dof(ex, ey, i, j)];
          }
          tmp[q1][j] = s;
        }
      }
      for (std::size_t q1 = 0; q1 < q; ++q1) {
        for (std::size_t q2 = 0; q2 < q; ++q2) {
          double s = 0.0;
          for (std::size_t j = 0; j < p1; ++j) s += tmp[q1][j] * B.b(q2, j);
          kappa_q_[(e * q + q1) * q + q2] = k(s);
        }
      }
    }
  }
  for (std::size_t d = 0; d < mesh_->num_dofs(); ++d) {
    kappa_nodal_[d] = k(u[d]);
  }
  full_built_ = false;
}

void EllipticOperator::apply(core::ExecContext& ctx,
                             std::span<const double> x,
                             std::span<double> y) const {
  if (mode_ == Assembly::Partial) {
    apply_partial(ctx, x, y);
  } else {
    assembled_matrix().spmv(ctx, x, y);
  }
  // Identity rows on the Dirichlet boundary.
  const auto& bdr = mesh_->boundary_dofs();
  ctx.forall(bdr.size(), {0.0, 24.0},
             [&](std::size_t i) { y[bdr[i]] = x[bdr[i]]; });
}

void EllipticOperator::apply_partial(core::ExecContext& ctx,
                                     std::span<const double> x,
                                     std::span<double> y) const {
  const std::size_t p1 = mesh_->order() + 1;
  const std::size_t q = el_.quad.points.size();
  const auto& T = el_.tab;
  const auto& w = el_.quad.weights;

  ctx.forall(y.size(), {0.0, 8.0}, [&](std::size_t i) { y[i] = 0.0; });

  const double fpe = pa_flops_per_apply() /
                     static_cast<double>(mesh_->num_elements());
  const double bpe = pa_bytes_per_apply() /
                     static_cast<double>(mesh_->num_elements());

  // Four-color element sweep: same-color elements share no dofs, so the
  // scatter-add is race-free under the Threads backend.
  for (std::size_t color = 0; color < 4; ++color) {
    const std::size_t cx = color % 2, cy = color / 2;
    const std::size_t nex = (mesh_->nx() + 1 - cx) / 2;
    const std::size_t ney = (mesh_->ny() + 1 - cy) / 2;
    if (nex == 0 || ney == 0) continue;
    ctx.forall2(nex, ney, {fpe, bpe}, [&](std::size_t bx, std::size_t by) {
      const std::size_t ex = 2 * bx + cx;
      const std::size_t ey = 2 * by + cy;
      if (ex >= mesh_->nx() || ey >= mesh_->ny()) return;
      const std::size_t e = ex * mesh_->ny() + ey;
      const double hx = mesh_->elem_hx(ex);
      const double hy = mesh_->elem_hy(ey);

      // ConstrainedOperator semantics: boundary columns are eliminated, so
      // boundary entries of x are treated as zero here and restored by the
      // identity rows afterwards.
      double E[kMaxP1][kMaxP1];
      for (std::size_t i = 0; i < p1; ++i) {
        for (std::size_t j = 0; j < p1; ++j) {
          const std::size_t d = mesh_->elem_dof(ex, ey, i, j);
          E[i][j] = mesh_->is_boundary(d) ? 0.0 : x[d];
        }
      }

      // Forward contractions: values and reference gradients at qpoints.
      double tb[kMaxQ][kMaxP1], tg[kMaxQ][kMaxP1];
      for (std::size_t q1 = 0; q1 < q; ++q1) {
        for (std::size_t j = 0; j < p1; ++j) {
          double sb = 0.0, sg = 0.0;
          for (std::size_t i = 0; i < p1; ++i) {
            sb += T.b(q1, i) * E[i][j];
            sg += T.g(q1, i) * E[i][j];
          }
          tb[q1][j] = sb;
          tg[q1][j] = sg;
        }
      }
      double Uq[kMaxQ][kMaxQ], Gx[kMaxQ][kMaxQ], Gy[kMaxQ][kMaxQ];
      for (std::size_t q1 = 0; q1 < q; ++q1) {
        for (std::size_t q2 = 0; q2 < q; ++q2) {
          double su = 0.0, sx = 0.0, sy = 0.0;
          for (std::size_t j = 0; j < p1; ++j) {
            su += tb[q1][j] * T.b(q2, j);
            sx += tg[q1][j] * T.b(q2, j);
            sy += tb[q1][j] * T.g(q2, j);
          }
          Uq[q1][q2] = su;
          Gx[q1][q2] = sx;
          Gy[q1][q2] = sy;
        }
      }

      // Pointwise quadrature scaling.
      for (std::size_t q1 = 0; q1 < q; ++q1) {
        for (std::size_t q2 = 0; q2 < q; ++q2) {
          const double ww = w[q1] * w[q2];
          const double kq = kappa_q_[(e * q + q1) * q + q2];
          const double m = alpha_ * ww * 0.25 * hx * hy;
          const double dx = beta_ * kq * ww * hy / hx;
          const double dy = beta_ * kq * ww * hx / hy;
          Uq[q1][q2] *= m;
          Gx[q1][q2] *= dx;
          Gy[q1][q2] *= dy;
        }
      }

      // Backward contractions: Y = B'(Uq)B + G'(Gx)B + B'(Gy)G.
      double sb1[kMaxP1][kMaxQ], sb2[kMaxP1][kMaxQ];
      for (std::size_t i = 0; i < p1; ++i) {
        for (std::size_t q2 = 0; q2 < q; ++q2) {
          double s1 = 0.0, s2 = 0.0;
          for (std::size_t q1 = 0; q1 < q; ++q1) {
            s1 += T.b(q1, i) * Uq[q1][q2] + T.g(q1, i) * Gx[q1][q2];
            s2 += T.b(q1, i) * Gy[q1][q2];
          }
          sb1[i][q2] = s1;
          sb2[i][q2] = s2;
        }
      }
      for (std::size_t i = 0; i < p1; ++i) {
        for (std::size_t j = 0; j < p1; ++j) {
          double s = 0.0;
          for (std::size_t q2 = 0; q2 < q; ++q2) {
            s += sb1[i][q2] * T.b(q2, j) + sb2[i][q2] * T.g(q2, j);
          }
          y[mesh_->elem_dof(ex, ey, i, j)] += s;
        }
      }
    });
  }
}

la::DenseMatrix EllipticOperator::element_matrix(std::size_t ex,
                                                 std::size_t ey) const {
  const std::size_t p1 = mesh_->order() + 1;
  const std::size_t q = el_.quad.points.size();
  const auto& T = el_.tab;
  const auto& w = el_.quad.weights;
  const double hx = mesh_->elem_hx(ex);
  const double hy = mesh_->elem_hy(ey);
  const std::size_t e = ex * mesh_->ny() + ey;
  const std::size_t n2 = p1 * p1;
  la::DenseMatrix m(n2, n2);
  for (std::size_t q1 = 0; q1 < q; ++q1) {
    for (std::size_t q2 = 0; q2 < q; ++q2) {
      const double ww = w[q1] * w[q2];
      const double kq = kappa_q_[(e * q + q1) * q + q2];
      const double cm = alpha_ * ww * 0.25 * hx * hy;
      const double cx = beta_ * kq * ww * hy / hx;
      const double cy = beta_ * kq * ww * hx / hy;
      for (std::size_t i = 0; i < p1; ++i) {
        for (std::size_t j = 0; j < p1; ++j) {
          const double bi = T.b(q1, i), bj = T.b(q2, j);
          const double gi = T.g(q1, i), gj = T.g(q2, j);
          for (std::size_t k = 0; k < p1; ++k) {
            for (std::size_t l = 0; l < p1; ++l) {
              const double bk = T.b(q1, k), bl = T.b(q2, l);
              const double gk = T.g(q1, k), gl = T.g(q2, l);
              m(i * p1 + j, k * p1 + l) += cm * bi * bj * bk * bl +
                                           cx * gi * bj * gk * bl +
                                           cy * bi * gj * bk * gl;
            }
          }
        }
      }
    }
  }
  return m;
}

void EllipticOperator::build_full() const {
  const std::size_t p1 = mesh_->order() + 1;
  std::vector<la::Triplet> trips;
  for (std::size_t ex = 0; ex < mesh_->nx(); ++ex) {
    for (std::size_t ey = 0; ey < mesh_->ny(); ++ey) {
      const auto m = element_matrix(ex, ey);
      for (std::size_t i = 0; i < p1; ++i) {
        for (std::size_t j = 0; j < p1; ++j) {
          const std::size_t r = mesh_->elem_dof(ex, ey, i, j);
          if (mesh_->is_boundary(r)) continue;
          for (std::size_t k = 0; k < p1; ++k) {
            for (std::size_t l = 0; l < p1; ++l) {
              const std::size_t c = mesh_->elem_dof(ex, ey, k, l);
              if (mesh_->is_boundary(c)) continue;
              trips.push_back({r, c, m(i * p1 + j, k * p1 + l)});
            }
          }
        }
      }
    }
  }
  for (std::size_t b : mesh_->boundary_dofs()) trips.push_back({b, b, 1.0});
  full_ = la::CsrMatrix::from_triplets(mesh_->num_dofs(), mesh_->num_dofs(),
                                       std::move(trips));
  full_built_ = true;
}

const la::CsrMatrix& EllipticOperator::assembled_matrix() const {
  if (!full_built_) build_full();
  return full_;
}

la::CsrMatrix EllipticOperator::assemble_lor() const {
  // Order-1 mesh whose element boundaries are the GLL lattice lines.
  TensorMesh2D lor_mesh(mesh_->dof_xcoords(), mesh_->dof_ycoords(), 1);
  EllipticOperator lor(lor_mesh, Assembly::Full, alpha_, beta_);
  // Coefficient per LOR cell: mean of the four corner nodal values (the
  // corners are exactly the high-order dofs).
  const std::size_t q = lor.el_.quad.points.size();
  for (std::size_t ex = 0; ex < lor_mesh.nx(); ++ex) {
    for (std::size_t ey = 0; ey < lor_mesh.ny(); ++ey) {
      const double kavg = 0.25 * (kappa_nodal_[mesh_->dof(ex, ey)] +
                                  kappa_nodal_[mesh_->dof(ex + 1, ey)] +
                                  kappa_nodal_[mesh_->dof(ex, ey + 1)] +
                                  kappa_nodal_[mesh_->dof(ex + 1, ey + 1)]);
      const std::size_t e = ex * lor_mesh.ny() + ey;
      for (std::size_t qq = 0; qq < q * q; ++qq) {
        lor.kappa_q_[e * q * q + qq] = kavg;
      }
    }
  }
  return lor.assembled_matrix();
}

std::vector<double> EllipticOperator::assemble_diagonal() const {
  const std::size_t p1 = mesh_->order() + 1;
  std::vector<double> d(mesh_->num_dofs(), 0.0);
  for (std::size_t ex = 0; ex < mesh_->nx(); ++ex) {
    for (std::size_t ey = 0; ey < mesh_->ny(); ++ey) {
      const auto m = element_matrix(ex, ey);
      for (std::size_t i = 0; i < p1; ++i) {
        for (std::size_t j = 0; j < p1; ++j) {
          d[mesh_->elem_dof(ex, ey, i, j)] += m(i * p1 + j, i * p1 + j);
        }
      }
    }
  }
  for (std::size_t b : mesh_->boundary_dofs()) d[b] = 1.0;
  return d;
}

double EllipticOperator::pa_flops_per_apply() const {
  const double p1 = static_cast<double>(mesh_->order() + 1);
  const double q = static_cast<double>(el_.quad.points.size());
  const double nel = static_cast<double>(mesh_->num_elements());
  // Forward: 2 fused passes (4 madds each over q*p1*p1 and q*q*p1 spaces),
  // pointwise: ~10 q^2, backward mirrors forward.
  const double per_elem = 8.0 * q * p1 * p1 + 12.0 * q * q * p1 +
                          10.0 * q * q + 8.0 * q * p1 * p1 +
                          12.0 * q * q * p1;
  return nel * per_elem;
}

double EllipticOperator::pa_bytes_per_apply() const {
  const double p1 = static_cast<double>(mesh_->order() + 1);
  const double q = static_cast<double>(el_.quad.points.size());
  const double nel = static_cast<double>(mesh_->num_elements());
  // Element dofs in+out plus quadrature coefficient data.
  return nel * (3.0 * p1 * p1 * 8.0 + q * q * 8.0);
}

double EllipticOperator::storage_bytes() const {
  if (mode_ == Assembly::Partial) {
    return static_cast<double>(kappa_q_.size()) * 8.0;
  }
  const auto& m = assembled_matrix();
  return static_cast<double>(m.nnz()) * 12.0 +
         static_cast<double>(m.rows()) * 8.0;
}

}  // namespace coe::fem
