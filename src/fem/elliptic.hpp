#pragma once
// The mini-MFEM elliptic operator  A = alpha*M + beta*K(kappa)  on a
// TensorMesh2D with homogeneous Dirichlet boundary (identity rows on
// boundary dofs). Two assembly levels, mirroring Section 4.10.3:
//
//  * Assembly::Full    -- classic global CSR assembly (the "existing
//                         algorithms ... wrong choice for GPUs").
//  * Assembly::Partial -- matrix-free sum-factorized action storing only
//                         quadrature-point data (the rewritten algorithm).
//
// assemble_lor() builds the order-1 operator on the GLL lattice -- the
// low-order-refined matrix handed to BoomerAMG as a preconditioner for the
// high-order operator (Figure 8 / Table 4 experiment).

#include <functional>
#include <vector>

#include "fem/mesh.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/operator.hpp"

namespace coe::fem {

enum class Assembly { Full, Partial };

class EllipticOperator final : public la::Operator {
 public:
  EllipticOperator(const TensorMesh2D& mesh, Assembly mode, double alpha,
                   double beta);

  std::size_t rows() const override { return mesh_->num_dofs(); }
  std::size_t cols() const override { return mesh_->num_dofs(); }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  /// Rescales the mass/stiffness blend (e.g. M + gamma*K inside Newton);
  /// invalidates any cached full assembly.
  void set_alpha_beta(double alpha, double beta);

  /// Diffusion coefficient from a function of position.
  void set_kappa(const std::function<double(double, double)>& kappa);

  /// Diffusion coefficient kappa = k(u) from a nodal state vector (the
  /// lagged linearization used in the nonlinear diffusion driver).
  void set_kappa_from_nodal(std::span<const double> u,
                            const std::function<double(double)>& k);

  /// y = A x. Partial mode contracts on the fly; Full mode does SpMV on
  /// the assembled matrix (assembling on first use).
  void apply(core::ExecContext& ctx, std::span<const double> x,
             std::span<double> y) const override;

  /// The assembled global matrix (built on demand; Dirichlet-condensed).
  const la::CsrMatrix& assembled_matrix() const;

  /// Order-1 rediscretization on the GLL lattice with the same alpha/beta
  /// and coefficient -- spectrally equivalent to the high-order operator.
  la::CsrMatrix assemble_lor() const;

  /// Diagonal of A (for Jacobi), computed matrix-free in Partial mode.
  std::vector<double> assemble_diagonal() const;

  /// Approximate flops of one partial-assembly apply (for reporting).
  double pa_flops_per_apply() const;
  /// Bytes touched by one partial-assembly apply.
  double pa_bytes_per_apply() const;
  /// Memory footprint of the operator data (PA qdata vs CSR).
  double storage_bytes() const;

  const TensorMesh2D& mesh() const { return *mesh_; }

 private:
  void apply_partial(core::ExecContext& ctx, std::span<const double> x,
                     std::span<double> y) const;
  la::DenseMatrix element_matrix(std::size_t ex, std::size_t ey) const;
  void build_full() const;

  const TensorMesh2D* mesh_;
  Assembly mode_;
  double alpha_, beta_;
  Element1D el_;
  std::vector<double> kappa_q_;      ///< nel * q * q quadrature coefficients
  std::vector<double> kappa_nodal_;  ///< kappa at lattice dofs (for LOR)
  mutable la::CsrMatrix full_;
  mutable bool full_built_ = false;
};

}  // namespace coe::fem
