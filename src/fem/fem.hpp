#pragma once
// Umbrella header for the mini-MFEM module.

#include "fem/basis.hpp"
#include "fem/diffusion_app.hpp"
#include "fem/elliptic.hpp"
#include "fem/mesh.hpp"
