#pragma once
// The library-integration experiment of Section 4.10.4: a nonlinear
// time-dependent diffusion problem
//
//     du/dt = div( k(u) grad u ),   u = 0 on the boundary,
//
// discretized with high-order continuous finite elements (mini-MFEM,
// partial assembly), integrated with the mini-SUNDIALS BDF integrator, and
// preconditioned with mini-hypre BoomerAMG applied to a low-order-refined
// version of the finite element operator. This is the driver behind
// Figure 8 (timing breakdown) and Table 4 (GPU speedups).

#include <functional>
#include <memory>

#include "amg/boomeramg.hpp"
#include "fem/elliptic.hpp"
#include "la/krylov.hpp"
#include "ode/integrator.hpp"

namespace coe::fem {

struct DiffusionConfig {
  std::size_t nx = 8;          ///< elements per side
  std::size_t order = 2;       ///< polynomial order p
  Assembly assembly = Assembly::Partial;
  double t_final = 0.01;
  double rtol = 1e-5;
  double atol = 1e-8;
  double dt_init = 1e-4;
  std::size_t max_timesteps = 200;
  bool use_amg = true;         ///< AMG-on-LOR vs plain Jacobi for CG
  /// Nonlinear conductivity k(u).
  std::function<double(double)> conductivity =
      [](double u) { return 1.0 + u * u; };
  /// Optional span sink: when set, the three driver phases become
  /// hierarchical prof::Scope regions ("formulation", "preconditioner",
  /// "solve") with the CG stages nested beneath them, so trace events are
  /// tagged "solve/cg/spmv" etc. instead of flat phase names.
  prof::Profiler* profiler = nullptr;
};

struct DiffusionReport {
  ode::IntegratorStats ode;
  std::size_t cg_iterations = 0;
  std::size_t cg_solves = 0;
  std::size_t mass_cg_iterations = 0;
  std::size_t dofs = 0;
};

/// Runs the full coupled problem on the given execution context. Timeline
/// phases recorded on the context: "formulation" (RHS evaluations + mass
/// solves), "preconditioner" (LOR assembly + AMG setup), and "solve"
/// (Newton-system CG iterations).
class NonlinearDiffusion {
 public:
  NonlinearDiffusion(core::ExecContext& ctx, DiffusionConfig cfg);

  /// Initial condition: a smooth bump, zero on the boundary.
  static double initial_condition(double x, double y);

  DiffusionReport run();

  std::span<const double> solution() const { return u_; }
  const TensorMesh2D& mesh() const { return mesh_; }

 private:
  core::ExecContext* ctx_;
  DiffusionConfig cfg_;
  TensorMesh2D mesh_;
  std::vector<double> u_;
};

}  // namespace coe::fem
