#include "fem/basis.hpp"

#include <cassert>
#include <cmath>

namespace coe::fem {

LegendreEval legendre(std::size_t n, double x) {
  double p0 = 1.0, p1 = x;
  if (n == 0) return {1.0, 0.0};
  for (std::size_t k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = pk;
  }
  // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1); handle |x| = 1 separately.
  double d;
  if (std::abs(std::abs(x) - 1.0) < 1e-14) {
    const double sign = x > 0 ? 1.0 : ((n % 2 == 0) ? -1.0 : 1.0);
    d = sign * static_cast<double>(n) * static_cast<double>(n + 1) / 2.0;
  } else {
    d = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
  }
  return {p1, d};
}

Quadrature gauss_legendre(std::size_t n) {
  assert(n >= 1);
  Quadrature q;
  q.points.resize(n);
  q.weights.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Initial guess (Chebyshev-like), then Newton on P_n.
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    for (int it = 0; it < 100; ++it) {
      const auto pe = legendre(n, x);
      const double dx = pe.value / pe.deriv;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const auto pe = legendre(n, x);
    q.points[n - 1 - i] = x;  // ascending order
    q.weights[n - 1 - i] = 2.0 / ((1.0 - x * x) * pe.deriv * pe.deriv);
  }
  return q;
}

std::vector<double> gll_nodes(std::size_t p) {
  const std::size_t n = p + 1;
  std::vector<double> x(n);
  x[0] = -1.0;
  x[n - 1] = 1.0;
  // Interior nodes are the roots of P_p' -- Newton from Chebyshev guesses.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    double xi = -std::cos(M_PI * static_cast<double>(i) /
                          static_cast<double>(p));
    for (int it = 0; it < 100; ++it) {
      // f = P_p'(x); f' = P_p''(x) from the Legendre ODE:
      // (1 - x^2) P'' - 2x P' + p(p+1) P = 0.
      const auto pe = legendre(p, xi);
      const double f = pe.deriv;
      const double fp = (2.0 * xi * pe.deriv -
                         static_cast<double>(p) * static_cast<double>(p + 1) *
                             pe.value) /
                        (1.0 - xi * xi);
      const double dx = f / fp;
      xi -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    x[i] = xi;
  }
  return x;
}

BasisTabulation tabulate_lagrange(const std::vector<double>& nodes,
                                  const std::vector<double>& points) {
  BasisTabulation t;
  t.npoints = points.size();
  t.nnodes = nodes.size();
  t.eval.assign(t.npoints * t.nnodes, 0.0);
  t.deriv.assign(t.npoints * t.nnodes, 0.0);
  const std::size_t n = nodes.size();
  for (std::size_t q = 0; q < points.size(); ++q) {
    const double x = points[q];
    for (std::size_t i = 0; i < n; ++i) {
      // l_i(x) = prod_{j != i} (x - x_j)/(x_i - x_j)
      double li = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) li *= (x - nodes[j]) / (nodes[i] - nodes[j]);
      }
      t.eval[q * n + i] = li;
      // l_i'(x) = sum_k prod_{j != i,k} (x - x_j) / prod_{j != i}(x_i - x_j)
      double di = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        double term = 1.0 / (nodes[i] - nodes[k]);
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i && j != k) term *= (x - nodes[j]) / (nodes[i] - nodes[j]);
        }
        di += term;
      }
      t.deriv[q * n + i] = di;
    }
  }
  return t;
}

Element1D make_element(std::size_t order) {
  Element1D e;
  e.order = order;
  e.nodes = gll_nodes(order);
  e.quad = gauss_legendre(order + 2);
  e.tab = tabulate_lagrange(e.nodes, e.quad.points);
  return e;
}

}  // namespace coe::fem
