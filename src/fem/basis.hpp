#pragma once
// 1D finite-element basis machinery for arbitrary-order tensor elements:
// Gauss-Legendre quadrature, Gauss-Lobatto-Legendre (GLL) nodal points, and
// Lagrange basis/derivative evaluation matrices. This is the kernel data
// that MFEM's sum-factorized partial assembly contracts with (Section
// 4.10.3).

#include <cstddef>
#include <vector>

namespace coe::fem {

/// Legendre polynomial P_n(x) and its derivative, by recurrence.
struct LegendreEval {
  double value;
  double deriv;
};
LegendreEval legendre(std::size_t n, double x);

/// Gauss-Legendre rule with n points on [-1, 1] (exact to degree 2n-1).
struct Quadrature {
  std::vector<double> points;
  std::vector<double> weights;
};
Quadrature gauss_legendre(std::size_t n);

/// Gauss-Lobatto-Legendre nodes for order-p elements (p+1 points on
/// [-1, 1], endpoints included). These are both the nodal interpolation
/// points and the vertices of the low-order-refined mesh.
std::vector<double> gll_nodes(std::size_t p);

/// Lagrange basis through the given nodes, evaluated at the given points.
/// Returns (eval, deriv): row-major [npoints x nnodes] matrices with
/// eval(q, i) = l_i(x_q), deriv(q, i) = l_i'(x_q).
struct BasisTabulation {
  std::size_t npoints = 0;
  std::size_t nnodes = 0;
  std::vector<double> eval;   ///< B: npoints x nnodes
  std::vector<double> deriv;  ///< G: npoints x nnodes

  double b(std::size_t q, std::size_t i) const {
    return eval[q * nnodes + i];
  }
  double g(std::size_t q, std::size_t i) const {
    return deriv[q * nnodes + i];
  }
};
BasisTabulation tabulate_lagrange(const std::vector<double>& nodes,
                                  const std::vector<double>& points);

/// Full per-order element data: GLL nodes, quadrature, and tabulations.
struct Element1D {
  std::size_t order;
  std::vector<double> nodes;  ///< p+1 GLL nodes
  Quadrature quad;            ///< p+2 Gauss points (overkill-safe)
  BasisTabulation tab;        ///< basis at quadrature points
};
Element1D make_element(std::size_t order);

}  // namespace coe::fem
