#pragma once
// mini-SUNDIALS NVector (Section 4.10.2): "the team's approach leaves
// high-level control to the time integrator and nonlinear solver calls on
// the CPU, and supplies vector implementations that operate on data in GPU
// memory." Integrator control flow below runs plain C++; every vector
// operation goes through the execution context so it is priced on (and
// keeps its data on) the modeled device.

#include <cmath>
#include <span>
#include <vector>

#include "core/exec.hpp"

namespace coe::ode {

/// Device-resident vector with SUNDIALS-style operations.
class NVector {
 public:
  NVector(core::ExecContext& ctx, std::size_t n, double init = 0.0)
      : ctx_(&ctx), data_(n, init) {}

  std::size_t size() const { return data_.size(); }
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  core::ExecContext& ctx() const { return *ctx_; }

  /// this = a*x + b*y
  void linear_sum(double a, const NVector& x, double b, const NVector& y) {
    auto& d = data_;
    const auto& xs = x.data_;
    const auto& ys = y.data_;
    ctx_->forall(d.size(), {3.0, 24.0}, [&](std::size_t i) {
      d[i] = a * xs[i] + b * ys[i];
    });
  }

  void copy_from(const NVector& x) {
    auto& d = data_;
    const auto& xs = x.data_;
    ctx_->forall(d.size(), {0.0, 16.0}, [&](std::size_t i) { d[i] = xs[i]; });
  }

  void fill(double c) {
    auto& d = data_;
    ctx_->forall(d.size(), {0.0, 8.0}, [&](std::size_t i) { d[i] = c; });
  }

  void scale(double c) {
    auto& d = data_;
    ctx_->forall(d.size(), {1.0, 16.0}, [&](std::size_t i) { d[i] *= c; });
  }

  void axpy(double a, const NVector& x) {
    auto& d = data_;
    const auto& xs = x.data_;
    ctx_->forall(d.size(), {2.0, 24.0},
                 [&](std::size_t i) { d[i] += a * xs[i]; });
  }

  double dot(const NVector& y) const {
    const auto& d = data_;
    const auto& ys = y.data_;
    return ctx_->reduce_sum(d.size(), {2.0, 16.0},
                            [&](std::size_t i) { return d[i] * ys[i]; });
  }

  double max_norm() const {
    const auto& d = data_;
    return ctx_->reduce_max(d.size(), {1.0, 8.0},
                            [&](std::size_t i) { return std::abs(d[i]); });
  }

  /// Weighted RMS norm with weights 1/(rtol*|ref_i| + atol): the SUNDIALS
  /// error norm.
  double wrms_norm(const NVector& ref, double rtol, double atol) const {
    const auto& d = data_;
    const auto& r = ref.data_;
    const double s = ctx_->reduce_sum(d.size(), {5.0, 16.0}, [&](std::size_t i) {
      const double w = 1.0 / (rtol * std::abs(r[i]) + atol);
      return d[i] * w * d[i] * w;
    });
    return std::sqrt(s / static_cast<double>(d.size()));
  }

 private:
  core::ExecContext* ctx_;
  std::vector<double> data_;
};

}  // namespace coe::ode
