#include "ode/integrator.hpp"

#include <algorithm>
#include <cmath>

namespace coe::ode {

IntegratorStats Rk4::integrate(OdeRhs& f, double t0, double tf,
                               std::size_t steps, NVector& y) {
  IntegratorStats stats;
  auto& ctx = y.ctx();
  const std::size_t n = y.size();
  NVector k1(ctx, n), k2(ctx, n), k3(ctx, n), k4(ctx, n), tmp(ctx, n);
  const double h = (tf - t0) / static_cast<double>(steps);
  double t = t0;
  for (std::size_t s = 0; s < steps; ++s) {
    f.eval(t, y, k1);
    tmp.linear_sum(1.0, y, 0.5 * h, k1);
    f.eval(t + 0.5 * h, tmp, k2);
    tmp.linear_sum(1.0, y, 0.5 * h, k2);
    f.eval(t + 0.5 * h, tmp, k3);
    tmp.linear_sum(1.0, y, h, k3);
    f.eval(t + h, tmp, k4);
    y.axpy(h / 6.0, k1);
    y.axpy(h / 3.0, k2);
    y.axpy(h / 3.0, k3);
    y.axpy(h / 6.0, k4);
    t += h;
    stats.rhs_evals += 4;
    ++stats.steps;
  }
  stats.last_dt = h;
  return stats;
}

Rk4Stepper::Rk4Stepper(OdeRhs& f, NVector& y, double t0, double dt)
    : f_(&f), y_(&y), k1_(y.ctx(), y.size()), k2_(y.ctx(), y.size()),
      k3_(y.ctx(), y.size()), k4_(y.ctx(), y.size()), tmp_(y.ctx(), y.size()),
      t_(t0), dt_(dt) {}

void Rk4Stepper::step() {
  NVector& y = *y_;
  f_->eval(t_, y, k1_);
  tmp_.linear_sum(1.0, y, 0.5 * dt_, k1_);
  f_->eval(t_ + 0.5 * dt_, tmp_, k2_);
  tmp_.linear_sum(1.0, y, 0.5 * dt_, k2_);
  f_->eval(t_ + 0.5 * dt_, tmp_, k3_);
  tmp_.linear_sum(1.0, y, dt_, k3_);
  f_->eval(t_ + dt_, tmp_, k4_);
  y.axpy(dt_ / 6.0, k1_);
  y.axpy(dt_ / 3.0, k2_);
  y.axpy(dt_ / 3.0, k3_);
  y.axpy(dt_ / 6.0, k4_);
  t_ += dt_;
  ++steps_;
}

void Rk4Stepper::save_state(std::vector<double>& out) const {
  out.clear();
  out.reserve(2 + y_->size());
  out.push_back(t_);
  out.push_back(static_cast<double>(steps_));
  const auto y = y_->data();
  out.insert(out.end(), y.begin(), y.end());
}

void Rk4Stepper::restore_state(const std::vector<double>& in) {
  const double* c = in.data();
  t_ = *c++;
  steps_ = static_cast<std::size_t>(*c++);
  auto y = y_->data();
  std::copy(c, c + y.size(), y.begin());
}

IntegratorStats Rk23::integrate(OdeRhs& f, double t0, double tf, NVector& y) {
  IntegratorStats stats;
  auto& ctx = y.ctx();
  const std::size_t n = y.size();
  NVector k1(ctx, n), k2(ctx, n), k3(ctx, n), k4(ctx, n), ynew(ctx, n),
      err(ctx, n);

  double t = t0;
  double h = std::min(opts_.dt_init, tf - t0);
  f.eval(t, y, k1);
  ++stats.rhs_evals;

  while (t < tf && stats.steps < opts_.max_steps) {
    h = std::min(h, tf - t);
    // Bogacki-Shampine stages.
    ynew.linear_sum(1.0, y, 0.5 * h, k1);
    f.eval(t + 0.5 * h, ynew, k2);
    ynew.linear_sum(1.0, y, 0.75 * h, k2);
    f.eval(t + 0.75 * h, ynew, k3);
    ynew.copy_from(y);
    ynew.axpy(2.0 / 9.0 * h, k1);
    ynew.axpy(1.0 / 3.0 * h, k2);
    ynew.axpy(4.0 / 9.0 * h, k3);
    f.eval(t + h, ynew, k4);
    stats.rhs_evals += 3;
    // Embedded error estimate.
    err.fill(0.0);
    err.axpy(-5.0 / 72.0 * h, k1);
    err.axpy(1.0 / 12.0 * h, k2);
    err.axpy(1.0 / 9.0 * h, k3);
    err.axpy(-1.0 / 8.0 * h, k4);
    const double e = err.wrms_norm(y, opts_.rtol, opts_.atol);

    if (e <= 1.0) {
      t += h;
      y.copy_from(ynew);
      k1.copy_from(k4);  // FSAL
      ++stats.steps;
      stats.last_dt = h;
    } else {
      ++stats.error_test_failures;
    }
    const double fac =
        std::clamp(0.9 * std::pow(std::max(e, 1e-10), -1.0 / 3.0), 0.2, 5.0);
    h = std::clamp(h * fac, opts_.dt_min, opts_.dt_max);
  }
  return stats;
}

namespace {

/// One Newton (or fixed-point) solve of y = c + gamma*f(t, y).
/// On entry y holds the predictor. Returns true on convergence.
bool nonlinear_solve(OdeRhs& f, OdeLinearSolver* ls, double t, double gamma,
                     const NVector& c, NVector& y, const NVector& weight_ref,
                     double rtol, double atol, std::size_t max_iters,
                     double tol, IntegratorStats& stats) {
  auto& ctx = y.ctx();
  const std::size_t n = y.size();
  NVector fy(ctx, n), resid(ctx, n), delta(ctx, n);

  if (ls != nullptr) {
    ls->setup(t, y, gamma);
    ++stats.lin_setups;
  }
  for (std::size_t it = 0; it < max_iters; ++it) {
    f.eval(t, y, fy);
    ++stats.rhs_evals;
    // resid = c + gamma*f(y) - y
    resid.linear_sum(1.0, c, gamma, fy);
    resid.axpy(-1.0, y);
    if (ls != nullptr) {
      // Newton: (I - gamma J) delta = resid.
      ls->solve(resid, delta);
    } else {
      // Fixed point: delta = resid.
      delta.copy_from(resid);
    }
    y.axpy(1.0, delta);
    ++stats.newton_iters;
    const double dn = delta.wrms_norm(weight_ref, rtol, atol);
    if (dn < tol) return true;
  }
  return false;
}

}  // namespace

IntegratorStats Bdf::integrate(OdeRhs& f, OdeLinearSolver* lsolver, double t0,
                               double tf, NVector& y) {
  IntegratorStats stats;
  auto& ctx = y.ctx();
  const std::size_t n = y.size();

  NVector yn(ctx, n), ynm1(ctx, n), ypred(ctx, n), c(ctx, n), fy(ctx, n),
      diff(ctx, n);
  yn.copy_from(y);
  double h_prev = 0.0;
  double t = t0;
  double h = std::min(opts_.dt_init, tf - t0);
  std::size_t order = 1;

  while (t < tf && stats.steps < opts_.max_steps) {
    h = std::min(h, tf - t);
    double a0, a1, beta;
    if (order == 1 || h_prev == 0.0) {
      a0 = 1.0;
      a1 = 0.0;
      beta = 1.0;
    } else {
      const double rho = h / h_prev;
      const double denom = 1.0 + 2.0 * rho;
      a0 = (1.0 + rho) * (1.0 + rho) / denom;
      a1 = -rho * rho / denom;
      beta = (1.0 + rho) / denom;
    }
    // Predictor: extrapolation through the history.
    if (order == 1 || h_prev == 0.0) {
      f.eval(t, yn, fy);
      ++stats.rhs_evals;
      ypred.linear_sum(1.0, yn, h, fy);
    } else {
      const double rho = h / h_prev;
      ypred.linear_sum(1.0 + rho, yn, -rho, ynm1);
    }
    // Constant part of the BDF equation.
    c.linear_sum(a0, yn, a1, ynm1);

    y.copy_from(ypred);
    const bool nl_ok = nonlinear_solve(
        f, lsolver, t + h, beta * h, c, y, yn, opts_.rtol, opts_.atol,
        opts_.max_newton_iters, opts_.newton_tol, stats);
    if (!nl_ok) {
      ++stats.newton_failures;
      h = std::max(h * 0.25, opts_.dt_min);
      continue;
    }

    // Error estimate from the predictor-corrector difference.
    diff.linear_sum(1.0, y, -1.0, ypred);
    const double coeff = order == 1 ? 0.5 : 1.0 / 3.0;
    const double e = coeff * diff.wrms_norm(yn, opts_.rtol, opts_.atol);

    if (e <= 1.0) {
      // Accept.
      ynm1.copy_from(yn);
      yn.copy_from(y);
      h_prev = h;
      t += h;
      ++stats.steps;
      stats.last_dt = h;
      if (order < opts_.max_order && stats.steps >= 2) order = 2;
    } else {
      ++stats.error_test_failures;
    }
    const double fac = std::clamp(
        0.9 * std::pow(std::max(e, 1e-10),
                       -1.0 / static_cast<double>(order + 1)),
        0.2, 4.0);
    h = std::clamp(h * fac, opts_.dt_min, opts_.dt_max);
  }
  y.copy_from(yn);
  return stats;
}

}  // namespace coe::ode
