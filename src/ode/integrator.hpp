#pragma once
// mini-SUNDIALS integrators: a fixed-step RK4, an adaptive embedded RK23
// (Bogacki-Shampine), and a CVODE-shaped variable-step BDF(1,2) with
// modified Newton and a pluggable lsetup/lsolve linear solver -- the seam
// through which MFEM + hypre plug in for the nonlinear diffusion experiment
// (Figure 8 / Table 4).

#include <cstddef>
#include <functional>

#include "ode/nvector.hpp"
#include "resil/checkpoint.hpp"

namespace coe::ode {

/// Right-hand side ydot = f(t, y).
class OdeRhs {
 public:
  virtual ~OdeRhs() = default;
  virtual void eval(double t, const NVector& y, NVector& ydot) = 0;
};

/// SUNDIALS-style linear-solver interface for Newton systems
/// (I - gamma*J) x = r, where J = df/dy at the setup point.
class OdeLinearSolver {
 public:
  virtual ~OdeLinearSolver() = default;
  /// Prepares for solves at state (t, y) with the given gamma.
  virtual void setup(double t, const NVector& y, double gamma) = 0;
  /// Solves (I - gamma*J) x = r.
  virtual void solve(const NVector& r, NVector& x) = 0;
};

struct IntegratorStats {
  std::size_t steps = 0;
  std::size_t rhs_evals = 0;
  std::size_t newton_iters = 0;
  std::size_t lin_setups = 0;
  std::size_t error_test_failures = 0;
  std::size_t newton_failures = 0;
  double last_dt = 0.0;
};

/// Classic fixed-step RK4.
class Rk4 {
 public:
  /// Advances y from t0 to tf in `steps` equal steps.
  IntegratorStats integrate(OdeRhs& f, double t0, double tf,
                            std::size_t steps, NVector& y);
};

/// Step-at-a-time RK4 driver for long-running integrations under the
/// resilience layer: one step() per call, full (t, y) state checkpointing.
/// step() matches Rk4::integrate's per-step arithmetic exactly, so a
/// checkpoint/restart trajectory is bitwise identical to an uninterrupted
/// one.
class Rk4Stepper : public resil::Checkpointable {
 public:
  /// `y` is advanced in place; the stepper borrows it and `f`.
  Rk4Stepper(OdeRhs& f, NVector& y, double t0, double dt);

  void step();
  double time() const { return t_; }
  std::size_t steps_taken() const { return steps_; }

  void save_state(std::vector<double>& out) const override;
  void restore_state(const std::vector<double>& in) override;

 private:
  OdeRhs* f_;
  NVector* y_;
  NVector k1_, k2_, k3_, k4_, tmp_;
  double t_, dt_;
  std::size_t steps_ = 0;
};

struct AdaptiveOptions {
  double rtol = 1e-6;
  double atol = 1e-9;
  double dt_init = 1e-4;
  double dt_min = 1e-14;
  double dt_max = 1e30;
  std::size_t max_steps = 1000000;
};

/// Bogacki-Shampine 3(2) adaptive explicit integrator.
class Rk23 {
 public:
  explicit Rk23(AdaptiveOptions opts = AdaptiveOptions{}) : opts_(opts) {}
  IntegratorStats integrate(OdeRhs& f, double t0, double tf, NVector& y);

 private:
  AdaptiveOptions opts_;
};

struct BdfOptions {
  double rtol = 1e-6;
  double atol = 1e-9;
  double dt_init = 1e-4;
  double dt_min = 1e-14;
  double dt_max = 1e30;
  std::size_t max_steps = 1000000;
  std::size_t max_order = 2;         ///< 1 or 2
  std::size_t max_newton_iters = 10;
  double newton_tol = 0.1;           ///< in units of the step error test
};

/// Variable-step BDF(1,2) with modified Newton (CVODE's stiff path, in
/// miniature). When no linear solver is supplied, damped fixed-point
/// iteration is used (CVODE's functional iteration).
class Bdf {
 public:
  explicit Bdf(BdfOptions opts = BdfOptions{}) : opts_(opts) {}

  IntegratorStats integrate(OdeRhs& f, OdeLinearSolver* lsolver, double t0,
                            double tf, NVector& y);

 private:
  BdfOptions opts_;
};

}  // namespace coe::ode
