#pragma once
// Umbrella header for the mini-SUNDIALS module.

#include "ode/integrator.hpp"
#include "ode/nvector.hpp"
