#pragma once
// Survivable Krylov pieces (DESIGN.md §17).
//
// PartCg is a checkpointable preconditioned-CG stepper shaped for
// phoenix::run_survivable: every part holds a full replica of the system,
// computes its dot-product contributions over a row slice, and the driver's
// fixed part-tree sums the partials — the full dots, bitwise identical on
// every part under any part->rank mapping. One CG iteration is one driver
// step, split into phases around the two reduction points (pap; then the
// fused {||r||^2, r.z} pair), so a rank kill between any two phases rolls
// back to a committed iteration and replays bitwise.
//
// replicated_reduce adapts the same part-tree to la::SolveOptions::reduce,
// wiring the stock la::cg into a phoenix world: each rank computes the
// *full* dots on its replica, the tree sums the nparts identical copies,
// and the hook rescales by 1/nparts — exact (not just close) when nparts
// is a power of two, since the scale touches only the exponent.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "phoenix/driver.hpp"

namespace coe::phoenix {

/// Replicated-system PCG (Jacobi preconditioner) advancing one iteration
/// per driver step through the phase methods below. The checkpoint blob is
/// [x | r | p | rz, rnorm0, done, iters] — everything the recursion reads.
class PartCg final : public resil::Checkpointable {
 public:
  PartCg(const la::CsrMatrix& a, std::vector<double> b, int part, int nparts,
         double rel_tol = 1e-10, double abs_tol = 0.0);

  void save_state(std::vector<double>& out) const override;
  void restore_state(const std::vector<double>& in) override;

  // --- step 0: residual/search-direction init ---------------------------
  /// r = b - A x, z = M r, p = z; stages partial {r.z, ||r||^2} (2-wide).
  void begin(core::ExecContext& ctx);
  /// Consumes the reduced pair.
  void end_begin();

  // --- steps >= 1: one CG iteration -------------------------------------
  /// q = A p; stages partial p.q (1-wide). No-op once done().
  void phase_pap(core::ExecContext& ctx);
  /// alpha update of x and r, z = M r; stages partial {||r||^2, r.z}.
  void phase_update(core::ExecContext& ctx);
  /// Convergence check and the beta update of p.
  void phase_close();

  /// Reduction scratch staged by the phases; pass through part_allreduce
  /// with width() entries before calling the consuming phase.
  std::span<double> reduction() { return {red_.data(), width_}; }
  std::size_t width() const { return width_; }

  bool done() const { return done_ != 0.0; }
  std::size_t iterations() const { return static_cast<std::size_t>(iters_); }
  double residual() const { return resid_; }
  std::span<const double> x() const { return x_; }

 private:
  double dot_partial(const std::vector<double>& u,
                     const std::vector<double>& v) const;

  const la::CsrMatrix* a_;
  std::vector<double> b_, diag_;
  std::vector<double> x_, r_, z_, p_, q_;
  std::vector<double> red_ = {0.0, 0.0};
  std::size_t width_ = 2;
  std::size_t lo_ = 0, hi_ = 0;
  double rel_tol_, abs_tol_;
  double rz_ = 0.0, rnorm0_ = 0.0, resid_ = 0.0;
  double done_ = 0.0, iters_ = 0.0;  ///< doubles: they ride the blob
};

/// la::SolveOptions::reduce hook backed by the part-tree. Requires exactly
/// one owned part (Spare policy or fault-free) and a power-of-two part
/// count for bitwise-exact rescaling of the replicated sums.
std::function<void(std::span<double>)> replicated_reduce(RankContext& rc,
                                                         int chan);

}  // namespace coe::phoenix
