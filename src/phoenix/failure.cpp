#include "phoenix/failure.hpp"

#include <map>
#include <memory>

#include "core/rng.hpp"

namespace coe::phoenix {

std::function<bool(int, std::size_t)> kill_rank_at(int rank,
                                                   std::size_t at_op) {
  return [rank, at_op](int r, std::size_t ops) {
    return at_op != 0 && r == rank && ops == at_op;
  };
}

std::function<bool(int, std::size_t)> seeded_kills(int ranks, int kills,
                                                   std::uint64_t seed,
                                                   std::size_t lo_op,
                                                   std::size_t hi_op) {
  auto schedule = std::make_shared<std::map<int, std::size_t>>();
  core::Rng rng(seed);
  const auto nr = static_cast<std::uint64_t>(ranks);
  while (static_cast<int>(schedule->size()) < kills &&
         static_cast<int>(schedule->size()) < ranks) {
    const int victim = static_cast<int>(rng.uniform_int(nr));
    if (schedule->count(victim)) continue;
    const std::size_t span = hi_op > lo_op ? hi_op - lo_op + 1 : 1;
    (*schedule)[victim] =
        lo_op + static_cast<std::size_t>(rng.uniform_int(span));
  }
  return [schedule](int r, std::size_t ops) {
    auto it = schedule->find(r);
    return it != schedule->end() && ops == it->second;
  };
}

}  // namespace coe::phoenix
