#include "phoenix/ckpt.hpp"

#include <utility>

namespace coe::phoenix {

namespace {
std::uint32_t blob_crc(const std::vector<double>& data) {
  resil::Checkpoint ck;
  ck.data = data;
  return resil::CheckpointStore::payload_crc(ck);
}
}  // namespace

void DistributedCheckpointStore::stage(std::uint64_t gen, int part,
                                       std::size_t step,
                                       std::vector<double> data) {
  std::lock_guard<std::mutex> lk(mtx_);
  PartBlob b;
  b.part = part;
  b.step = step;
  b.crc = blob_crc(data);
  b.data = std::move(data);
  stats_.staged += 1;
  stats_.bytes_staged += static_cast<double>(b.data.size()) * 8.0;
  pending_[gen][part] = std::move(b);
}

void DistributedCheckpointStore::commit(std::uint64_t gen) {
  std::lock_guard<std::mutex> lk(mtx_);
  auto it = pending_.find(gen);
  if (it == pending_.end()) return;
  auto& slot = committed_[gen];
  for (auto& [part, blob] : it->second) slot[part] = std::move(blob);
  pending_.erase(it);
  stats_.commits += 1;
  while (committed_.size() > 2) committed_.erase(committed_.begin());
}

void DistributedCheckpointStore::abort_pending() {
  std::lock_guard<std::mutex> lk(mtx_);
  stats_.aborted += pending_.size();
  pending_.clear();
}

std::uint64_t DistributedCheckpointStore::latest_committed() const {
  std::lock_guard<std::mutex> lk(mtx_);
  if (committed_.empty()) return kNone;
  return committed_.rbegin()->first;
}

bool DistributedCheckpointStore::has(std::uint64_t gen, int part) const {
  std::lock_guard<std::mutex> lk(mtx_);
  auto it = committed_.find(gen);
  return it != committed_.end() && it->second.count(part) != 0;
}

DistributedCheckpointStore::Fetch DistributedCheckpointStore::fetch(
    std::uint64_t gen, int part, std::vector<double>* data,
    std::size_t* step) const {
  std::lock_guard<std::mutex> lk(mtx_);
  auto it = committed_.find(gen);
  if (it == committed_.end()) return Fetch::Missing;
  auto jt = it->second.find(part);
  if (jt == it->second.end()) return Fetch::Missing;
  const PartBlob& b = jt->second;
  if (blob_crc(b.data) != b.crc) {
    refused_ += 1;
    return Fetch::Refused;
  }
  if (data) *data = b.data;
  if (step) *step = b.step;
  return Fetch::Ok;
}

std::vector<double>* DistributedCheckpointStore::mutable_payload(
    std::uint64_t gen, int part) {
  std::lock_guard<std::mutex> lk(mtx_);
  auto it = committed_.find(gen);
  if (it == committed_.end()) return nullptr;
  auto jt = it->second.find(part);
  if (jt == it->second.end()) return nullptr;
  return &jt->second.data;
}

DistStoreStats DistributedCheckpointStore::stats() const {
  std::lock_guard<std::mutex> lk(mtx_);
  DistStoreStats s = stats_;
  s.refused = refused_;
  return s;
}

}  // namespace coe::phoenix
