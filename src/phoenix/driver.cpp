#include "phoenix/driver.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace coe::phoenix {

namespace {

constexpr int kChanBuddy = 0;  ///< aggregated ring replication messages
constexpr int kChanBoot = 1;   ///< bootstrap ships to adopted spares

/// Wire tag for a channel + id (part or rank). Channels are 0x400 apart so
/// epoch salting (tag + epoch * 0x10000) never collides across channels.
int wire_tag(int chan, int id) { return chan * 0x400 + id; }

/// Local-mail key for same-rank part transfers.
std::uint64_t local_key(int chan, int from, int to) {
  return (static_cast<std::uint64_t>(chan) << 20) |
         (static_cast<std::uint64_t>(from) << 10) |
         static_cast<std::uint64_t>(to);
}

double wall_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

namespace detail {

/// World-shared driver state: config, the per-physical-thread checkpoint
/// stores (indexable cross-rank for buddy-fallback restores), traces, and
/// the aggregated report.
struct Shared {
  const SurvivableConfig& cfg;
  const SurvivableHooks& hooks;
  std::vector<std::unique_ptr<DistributedCheckpointStore>> stores;
  std::vector<obs::TraceBuffer> traces;
  std::mutex agg;
  PhoenixStats stats;   ///< under agg
  std::set<int> dead;   ///< under agg; every rank id ever marked dead
  int max_epoch = 0;    ///< under agg

  Shared(const SurvivableConfig& c, const SurvivableHooks& h)
      : cfg(c), hooks(h) {
    const int n = c.workers + c.spares;
    stores.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      stores.push_back(std::make_unique<DistributedCheckpointStore>());
    if (c.trace_ranks) traces.resize(static_cast<std::size_t>(n));
  }
};

}  // namespace detail

RankContext::RankContext(detail::Shared& sh, int phys,
                         mpi::Communicator& comm0)
    : sh_(sh),
      phys_(phys),
      base_comm_(&comm0),
      nparts_(sh.cfg.workers),
      ctx_(core::Backend::Seq, sh.cfg.node),
      store_(sh.stores[static_cast<std::size_t>(phys)].get()) {}

void RankContext::common_init() {
  logger_ = net::RankLogger(sh_.cfg.log, rank_);
  if (sh_.cfg.trace_ranks) {
    auto& tb = sh_.traces[static_cast<std::size_t>(phys_)];
    tb.set_rank(rank_);
    ctx_.set_trace(&tb);
  }
  pmap_.resize(static_cast<std::size_t>(nparts_));
  for (int p = 0; p < nparts_; ++p) pmap_[static_cast<std::size_t>(p)] = p;
  owned_ = {rank_};
  alive_.clear();
  for (int r = 0; r < nparts_; ++r) alive_.insert(r);
}

void RankContext::begin_as_worker() {
  rank_ = phys_;
  comm_ = base_comm_;
  world_epoch_ = comm_->epoch();
  common_init();
  parts_[rank_] = sh_.hooks.make(*this, rank_);
}

bool RankContext::begin_as_spare() {
  const mpi::Adoption a = base_comm_->park_spare();
  if (!a.adopted()) return false;
  rank_ = a.rank;
  adopted_comm_ = std::make_unique<mpi::Communicator>(
      base_comm_->adopted_view(a.rank));
  comm_ = adopted_comm_.get();
  world_epoch_ = a.epoch;
  common_init();
  // An adopted spare is "needy": it has no bookkeeping and no blobs until
  // the holder of its buddy copies ships the bootstrap message. It stays
  // needy (and never leads a repair) until a commit covers it.
  needy_self_ = true;
  needy_.insert(rank_);
  pending_boot_ = true;
  pending_restore_ = true;
  return true;
}

resil::Checkpointable& RankContext::part(int p) { return *parts_.at(p); }

std::uint64_t RankContext::gen_now() const {
  // epoch-major so generations are strictly monotone across rollbacks:
  // a re-checkpoint at an earlier step after a repair still sorts newer
  // than anything committed before the failure.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(world_epoch_))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(step_));
}

int RankContext::logged_tag(int wire) const {
  return wire + world_epoch_ * 0x10000;
}

int RankContext::ring_successor(const std::vector<int>& ring, int of) {
  auto it = std::upper_bound(ring.begin(), ring.end(), of);
  return it == ring.end() ? ring.front() : *it;
}

int RankContext::ring_predecessor(const std::vector<int>& ring, int of) {
  auto it = std::lower_bound(ring.begin(), ring.end(), of);
  return it == ring.begin() ? ring.back() : *(it - 1);
}

void RankContext::send_rank(int dest, int chan, std::vector<double> payload) {
  const int wire = wire_tag(chan, dest);
  const double bytes = static_cast<double>(payload.size()) * 8.0;
  comm_->send(dest, wire, std::move(payload));
  // Log after the deposit returns: a kill fires on operation entry, so an
  // event is logged iff the message actually entered the mailbox.
  logger_.send(dest, logged_tag(wire), bytes, true);
}

std::vector<double> RankContext::recv_rank(int src, int chan) {
  const int wire = wire_tag(chan, rank_);
  std::vector<double> v = comm_->recv(src, wire);
  logger_.recv(src, logged_tag(wire), static_cast<double>(v.size()) * 8.0);
  return v;
}

void RankContext::part_send(int from_part, int to_part, int chan,
                            std::vector<double> payload) {
  const int o = owner(to_part);
  if (o == rank_) {
    local_mail_[local_key(chan, from_part, to_part)].push(std::move(payload));
    return;
  }
  const int wire = wire_tag(chan, to_part);
  const double bytes = static_cast<double>(payload.size()) * 8.0;
  comm_->send(o, wire, std::move(payload));
  logger_.send(o, logged_tag(wire), bytes, false);
}

std::vector<double> RankContext::part_recv(int from_part, int to_part,
                                           int chan) {
  const int o = owner(from_part);
  if (o == rank_) {
    auto it = local_mail_.find(local_key(chan, from_part, to_part));
    if (it == local_mail_.end() || it->second.empty())
      throw std::logic_error("phoenix: part_recv with no local message");
    std::vector<double> v = std::move(it->second.front());
    it->second.pop();
    return v;
  }
  const int wire = wire_tag(chan, to_part);
  std::vector<double> v = comm_->recv(o, wire);
  logger_.recv(o, logged_tag(wire), static_cast<double>(v.size()) * 8.0);
  return v;
}

void RankContext::part_allreduce(
    int chan, const std::function<std::span<double>(int)>& buf) {
  // Fixed binary tree over part indices. Per level every owned sender
  // posts before any owned receiver blocks, so the phase is deadlock-free
  // on the eager substrate regardless of the part->rank mapping; and the
  // combine order v[p] += v[p + stride] in ascending p is mapping-
  // independent, so the result is bitwise identical under shrink, spare
  // substitution, or the fault-free run.
  int levels = 0;
  for (int stride = 1; stride < nparts_; stride *= 2, ++levels) {
    const int cu = chan + 2 * levels;
    for (int q : owned_) {
      if (q % (2 * stride) == stride) {
        auto s = buf(q);
        part_send(q, q - stride, cu,
                  std::vector<double>(s.begin(), s.end()));
      }
    }
    for (int p : owned_) {
      if (p % (2 * stride) == 0 && p + stride < nparts_) {
        std::vector<double> in = part_recv(p + stride, p, cu);
        auto d = buf(p);
        for (std::size_t i = 0; i < in.size(); ++i) d[i] += in[i];
      }
    }
  }
  for (int l = levels - 1; l >= 0; --l) {
    const int stride = 1 << l;
    const int cd = chan + 2 * l + 1;
    for (int p : owned_) {
      if (p % (2 * stride) == 0 && p + stride < nparts_) {
        auto s = buf(p);
        part_send(p, p + stride, cd,
                  std::vector<double>(s.begin(), s.end()));
      }
    }
    for (int q : owned_) {
      if (q % (2 * stride) == stride) {
        std::vector<double> in = part_recv(q - stride, q, cd);
        auto d = buf(q);
        std::copy(in.begin(), in.end(), d.begin());
      }
    }
  }
}

void RankContext::log_compute() {
  const double sim = ctx_.simulated_time();
  if (sim > logged_sim_) {
    logger_.compute(sim - logged_sim_);
    logged_sim_ = sim;
  }
}

void RankContext::checkpoint_exchange() {
  prof::Scope span(&prof_, &ctx_, "phoenix/ckpt");
  const std::uint64_t gen = gen_now();
  // Stage own parts and keep the blobs for the aggregated buddy message.
  std::vector<std::pair<int, std::vector<double>>> blobs;
  blobs.reserve(owned_.size());
  for (int p : owned_) {
    std::vector<double> blob;
    parts_.at(p)->save_state(blob);
    ctx_.record_transfer(static_cast<double>(blob.size()) * 8.0,
                         /*to_device=*/false);
    blobs.emplace_back(p, blob);
    store_->stage(gen, p, static_cast<std::size_t>(step_), std::move(blob));
  }
  std::size_t msgs = 0;
  double bytes = 0.0;
  if (alive_.size() > 1) {
    const std::vector<int> ring(alive_.begin(), alive_.end());
    const int succ = ring_successor(ring, rank_);
    const int pred = ring_predecessor(ring, rank_);
    std::vector<double> payload;
    payload.push_back(static_cast<double>(blobs.size()));
    for (auto& [p, blob] : blobs) {
      payload.push_back(static_cast<double>(p));
      payload.push_back(static_cast<double>(step_));
      payload.push_back(static_cast<double>(blob.size()));
      payload.insert(payload.end(), blob.begin(), blob.end());
    }
    bytes = static_cast<double>(payload.size()) * 8.0;
    log_compute();
    send_rank(succ, kChanBuddy, std::move(payload));
    std::vector<double> in = recv_rank(pred, kChanBuddy);
    std::size_t at = 0;
    const auto nb = static_cast<std::size_t>(in.at(at++));
    for (std::size_t b = 0; b < nb; ++b) {
      const int p = static_cast<int>(in.at(at++));
      const auto st = static_cast<std::size_t>(in.at(at++));
      const auto n = static_cast<std::size_t>(in.at(at++));
      store_->stage(gen, p,
                    st, std::vector<double>(in.begin() + static_cast<long>(at),
                                            in.begin() +
                                                static_cast<long>(at + n)));
      at += n;
    }
    msgs = 1;
  }
  // Two-phase commit decision: an unlogged Central collective (logging it
  // would park a dead rank's slot in the replay). Reaching it means every
  // active rank staged and replicated; any failure before this point
  // raises RankFailed first and the pending generation is aborted.
  comm_->allreduce_max(0.0);
  store_->commit(gen);
  GenSnapshot snap;
  snap.ring.assign(alive_.begin(), alive_.end());
  snap.pmap = pmap_;
  snap.sim_s = ctx_.simulated_time();
  gens_[gen] = std::move(snap);
  while (gens_.size() > 2) gens_.erase(gens_.begin());
  // A commit covers every adopted spare: their blobs are now replicated
  // like everyone else's, so they graduate to full members.
  needy_.clear();
  needy_self_ = false;
  last_ckpt_step_ = step_;
  local_.ckpt_commits += 1;
  local_.buddy_msgs += msgs;
  local_.buddy_bytes += bytes;
}

void RankContext::ship_bootstrap_to(int d) {
  // [agreed | -1, spares_used, n_needy, needy..., nblobs,
  //  (part, step, nwords, words...)...]
  std::vector<double> payload;
  payload.push_back(agreed_ == DistributedCheckpointStore::kNone
                        ? -1.0
                        : static_cast<double>(agreed_));
  payload.push_back(static_cast<double>(spares_used_));
  payload.push_back(static_cast<double>(needy_.size()));
  for (int r : needy_) payload.push_back(static_cast<double>(r));
  std::size_t nblobs = 0;
  const std::size_t count_at = payload.size();
  payload.push_back(0.0);
  if (agreed_ != DistributedCheckpointStore::kNone) {
    // Under the Spare policy pmap is identity: rank d owns exactly part d,
    // and this rank — d's ring successor — holds the buddy copy.
    std::vector<double> blob;
    std::size_t st = 0;
    if (store_->fetch(agreed_, d, &blob, &st) ==
        DistributedCheckpointStore::Fetch::Ok) {
      payload.push_back(static_cast<double>(d));
      payload.push_back(static_cast<double>(st));
      payload.push_back(static_cast<double>(blob.size()));
      payload.insert(payload.end(), blob.begin(), blob.end());
      ++nblobs;
    }
  }
  payload[count_at] = static_cast<double>(nblobs);
  local_.shipped_msgs += 1;
  local_.shipped_bytes += static_cast<double>(payload.size()) * 8.0;
  send_rank(d, kChanBoot, std::move(payload));
}

void RankContext::receive_bootstrap() {
  const int holder = (rank_ + 1) % nparts_;
  std::vector<double> in = recv_rank(holder, kChanBoot);
  std::size_t at = 0;
  const double g = in.at(at++);
  agreed_ = g < 0.0 ? DistributedCheckpointStore::kNone
                    : static_cast<std::uint64_t>(g);
  spares_used_ = static_cast<int>(in.at(at++));
  const auto nn = static_cast<std::size_t>(in.at(at++));
  needy_.clear();
  for (std::size_t i = 0; i < nn; ++i)
    needy_.insert(static_cast<int>(in.at(at++)));
  const auto nb = static_cast<std::size_t>(in.at(at++));
  for (std::size_t b = 0; b < nb; ++b) {
    const int p = static_cast<int>(in.at(at++));
    const auto st = static_cast<std::size_t>(in.at(at++));
    const auto n = static_cast<std::size_t>(in.at(at++));
    store_->stage(agreed_, p,
                  st, std::vector<double>(in.begin() + static_cast<long>(at),
                                          in.begin() +
                                              static_cast<long>(at + n)));
    at += n;
  }
  if (agreed_ != DistributedCheckpointStore::kNone) {
    store_->commit(agreed_);
    GenSnapshot snap;
    snap.ring.resize(static_cast<std::size_t>(nparts_));
    for (int r = 0; r < nparts_; ++r)
      snap.ring[static_cast<std::size_t>(r)] = r;
    snap.pmap = pmap_;
    snap.sim_s = 0.0;
    gens_[agreed_] = std::move(snap);
  }
}

void RankContext::recover() {
  const auto w0 = std::chrono::steady_clock::now();
  prof::Scope span(&prof_, &ctx_, "phoenix/repair");
  // Nominal bookkeeping kernel: gives the repair a trace presence (a
  // "phoenix/repair" phase on the timeline / critical path) and a
  // simulated-time footprint the next log_compute pins on the replay.
  ctx_.record_kernel({1e6, 8e6});

  // Sampled before the agreement: the leader may commit the repair the
  // moment its own agree_min returns, and await_repair must see that bump
  // as "already done" rather than wait for a second one.
  const int before = comm_->epoch();
  std::vector<int> dead;
  agreed_ = comm_->agree_min(store_->latest_committed(), &dead);
  {
    std::lock_guard<std::mutex> lk(sh_.agg);
    for (int d : dead) sh_.dead.insert(d);
  }

  mpi::RepairPlan plan;
  int leader = -1;
  if (!needy_self_) {
    // Every non-needy survivor computes the identical plan from the
    // identical dead set; only the leader commits it.
    for (int d : dead) {
      if (sh_.cfg.policy == RepairPolicy::Spare) {
        if (spares_used_ >= sh_.cfg.spares) {
          throw PhoenixUnrecoverable(
              "phoenix: spares exhausted adopting rank " + std::to_string(d));
        }
        const int s = sh_.cfg.workers + spares_used_;
        plan.adopt.emplace_back(d, s);
        embodiment_[d] = s;
        ++spares_used_;
        needy_.insert(d);
      } else {
        plan.retire.push_back(d);
        alive_.erase(d);
      }
    }
    for (int r : alive_) {
      if (!needy_.count(r)) {
        leader = r;
        break;
      }
    }
    if (leader < 0) {
      throw PhoenixUnrecoverable(
          "phoenix: no non-needy survivor left to lead the repair");
    }
  }

  if (!needy_self_ && rank_ == leader) {
    const mpi::RepairResult res = comm_->repair(plan);
    world_epoch_ = res.epoch;
    local_.repairs += 1;
    local_.adoptions += plan.adopt.size();
    local_.retirements += plan.retire.size();
    // Drain every purged in-flight message: a synthetic Recv at its
    // destination, salted with the epoch it was posted in, so the replay
    // timeline stays well-formed (no unmatched sends).
    if (sh_.cfg.log) {
      for (const mpi::PurgedMessage& pm : res.purged) {
        sh_.cfg.log->push({net::NetEvent::Kind::Recv, pm.dest, pm.src,
                           pm.tag + pm.epoch * 0x10000, pm.bytes, 0.0, true,
                           sh_.cfg.log->now_s()});
      }
    }
  } else {
    world_epoch_ = comm_->await_repair(before);
  }

  if (sh_.cfg.policy == RepairPolicy::Spare) {
    if (!needy_self_) {
      // Validate first so every non-needy survivor throws consistently,
      // then ship. A needy holder has no blobs: the dead rank's buddy
      // copies died with the pair — unrecoverable by construction.
      for (int d : needy_) {
        const int h = (d + 1) % nparts_;
        if (h != d && needy_.count(h)) {
          throw PhoenixUnrecoverable(
              "phoenix: buddy pair lost around rank " + std::to_string(d));
        }
      }
      for (int d : needy_) {
        if ((d + 1) % nparts_ == rank_ && d != rank_) ship_bootstrap_to(d);
      }
    }
    // needy_self_: the bootstrap receive runs via pending_boot_ in
    // main_loop, once per recovery round, matching the holder's ship.
  } else {
    // Shrink: reassign every part of a dead owner to the ring successor
    // (at the agreed generation) that replicated its blobs.
    GenSnapshot fresh;
    const GenSnapshot* snap = nullptr;
    if (agreed_ == DistributedCheckpointStore::kNone) {
      fresh.ring.resize(static_cast<std::size_t>(nparts_));
      fresh.pmap.resize(static_cast<std::size_t>(nparts_));
      for (int p = 0; p < nparts_; ++p) {
        fresh.ring[static_cast<std::size_t>(p)] = p;
        fresh.pmap[static_cast<std::size_t>(p)] = p;
      }
      snap = &fresh;
    } else {
      auto it = gens_.find(agreed_);
      if (it == gens_.end()) {
        throw PhoenixUnrecoverable(
            "phoenix: no membership snapshot for the agreed generation");
      }
      snap = &it->second;
    }
    std::vector<int> np(static_cast<std::size_t>(nparts_));
    for (int p = 0; p < nparts_; ++p) {
      const int o = snap->pmap[static_cast<std::size_t>(p)];
      if (alive_.count(o)) {
        np[static_cast<std::size_t>(p)] = o;
        continue;
      }
      int h = ring_successor(snap->ring, o);
      if (agreed_ == DistributedCheckpointStore::kNone) {
        // Fresh rebuild: no blobs to inherit, any survivor can take it.
        while (!alive_.count(h)) h = ring_successor(snap->ring, h);
      } else if (!alive_.count(h)) {
        throw PhoenixUnrecoverable("phoenix: buddy pair lost for part " +
                                   std::to_string(p));
      }
      np[static_cast<std::size_t>(p)] = h;
    }
    pmap_ = std::move(np);
    owned_.clear();
    for (int p = 0; p < nparts_; ++p) {
      if (pmap_[static_cast<std::size_t>(p)] == rank_) owned_.push_back(p);
    }
    for (auto it = parts_.begin(); it != parts_.end();) {
      if (pmap_[static_cast<std::size_t>(it->first)] != rank_) {
        it = parts_.erase(it);
      } else {
        ++it;
      }
    }
  }

  local_.repair_s += wall_since(w0);
  pending_restore_ = true;
}

void RankContext::restore() {
  if (agreed_ == DistributedCheckpointStore::kNone) {
    for (int p : owned_) parts_[p] = sh_.hooks.make(*this, p);
    step_ = 0;
  } else {
    const int st = static_cast<int>(agreed_ & 0xffffffffull);
    for (int p : owned_) {
      if (!parts_.count(p)) parts_[p] = sh_.hooks.make(*this, p);
      std::vector<double> blob;
      std::size_t bstep = 0;
      auto f = store_->fetch(agreed_, p, &blob, &bstep);
      if (f != DistributedCheckpointStore::Fetch::Ok && !needy_self_) {
        // Own copy missing or CRC-refused: scan the surviving stores for
        // the buddy copy. Dead ranks' stores died with them, and needy
        // ranks have nothing to serve yet.
        for (int r : alive_) {
          if (r == rank_ || needy_.count(r)) continue;
          const auto eit = embodiment_.find(r);
          const int ph = eit == embodiment_.end() ? r : eit->second;
          if (sh_.stores[static_cast<std::size_t>(ph)]->fetch(
                  agreed_, p, &blob, &bstep) ==
              DistributedCheckpointStore::Fetch::Ok) {
            f = DistributedCheckpointStore::Fetch::Ok;
            local_.crc_fallbacks += 1;
            break;
          }
        }
      }
      if (f != DistributedCheckpointStore::Fetch::Ok) {
        throw PhoenixUnrecoverable("phoenix: no intact copy of part " +
                                   std::to_string(p) + " at generation " +
                                   std::to_string(agreed_));
      }
      parts_.at(p)->restore_state(blob);
      ctx_.record_transfer(static_cast<double>(blob.size()) * 8.0,
                           /*to_device=*/true);
      local_.restores += 1;
    }
    if (step_ > st)
      local_.replayed_steps += static_cast<std::size_t>(step_ - st);
    auto git = gens_.find(agreed_);
    if (git != gens_.end() && ctx_.simulated_time() > git->second.sim_s)
      local_.lost_work_s += ctx_.simulated_time() - git->second.sim_s;
    step_ = st;
  }
  // Re-replicate at the restore point: a membership change (retired rank,
  // adopted spare) leaves some blobs single-copy until the next exchange —
  // commit one now so a second failure in this window stays recoverable.
  checkpoint_exchange();
}

void RankContext::main_loop() {
  while (true) {
    try {
      if (need_recover_) {
        need_recover_ = false;
        recover();
      }
      if (pending_boot_) {
        receive_bootstrap();
        pending_boot_ = false;
        pending_restore_ = true;
      }
      if (pending_restore_) {
        restore();
        pending_restore_ = false;
      }
      while (step_ < sh_.cfg.steps) {
        if (sh_.cfg.ckpt_every > 0 && step_ > 0 &&
            step_ % sh_.cfg.ckpt_every == 0 && last_ckpt_step_ != step_) {
          checkpoint_exchange();
        }
        sh_.hooks.step(*this, step_);
        ++step_;
      }
      // Final all-or-none vote: nobody reports success until everyone
      // finished every step (a late failure rolls all of us back).
      comm_->allreduce_max(0.0);
      log_compute();
      if (sh_.hooks.finish) sh_.hooks.finish(*this);
      break;
    } catch (const mpi::RankFailed&) {
      local_.detections += 1;
      store_->abort_pending();
      local_mail_.clear();  // half-executed step's same-rank transfers
      comm_->revoke();
      need_recover_ = true;
      if (needy_self_) pending_boot_ = true;  // the holder re-ships
    }
  }
}

void RankContext::flush_stats() {
  local_.ckpt_aborts = store_->stats().aborted;
  std::lock_guard<std::mutex> lk(sh_.agg);
  PhoenixStats& a = sh_.stats;
  a.detections += local_.detections;
  a.repairs += local_.repairs;
  a.adoptions += local_.adoptions;
  a.retirements += local_.retirements;
  a.ckpt_commits += local_.ckpt_commits;
  a.ckpt_aborts += local_.ckpt_aborts;
  a.restores += local_.restores;
  a.crc_fallbacks += local_.crc_fallbacks;
  a.replayed_steps += local_.replayed_steps;
  a.buddy_msgs += local_.buddy_msgs;
  a.buddy_bytes += local_.buddy_bytes;
  a.shipped_msgs += local_.shipped_msgs;
  a.shipped_bytes += local_.shipped_bytes;
  a.repair_s += local_.repair_s;
  a.lost_work_s += local_.lost_work_s;
  sh_.max_epoch = std::max(sh_.max_epoch, world_epoch_);
  local_ = PhoenixStats{};
}

SurvivableReport run_survivable(const SurvivableConfig& cfg,
                                const SurvivableHooks& hooks) {
  if (cfg.workers < 1) throw std::invalid_argument("phoenix: workers < 1");
  if (!hooks.make || !hooks.step)
    throw std::invalid_argument("phoenix: hooks.make and hooks.step required");
  if (cfg.policy == RepairPolicy::Shrink && cfg.spares > 0)
    throw std::invalid_argument("phoenix: shrink policy takes no spares");

  detail::Shared sh(cfg, hooks);
  mpi::RunOptions opts = cfg.mpi;
  opts.recoverable = true;
  opts.spares = cfg.spares;
  opts.fault_hook = cfg.fault_hook;
  opts.metrics = cfg.metrics;

  SurvivableReport rep;
  rep.traffic = mpi::run(
      cfg.workers + cfg.spares, opts, [&](mpi::Communicator& comm) {
        RankContext rc(sh, comm.rank(), comm);
        try {
          if (comm.rank() >= cfg.workers) {
            if (!rc.begin_as_spare()) {
              rc.flush_stats();
              return;
            }
          } else {
            rc.begin_as_worker();
          }
          rc.main_loop();
          rc.flush_stats();
        } catch (...) {
          // Victims and fatal failures still contribute their counters.
          rc.flush_stats();
          throw;
        }
      });

  rep.stats = sh.stats;
  rep.stats.kills = sh.dead.size();
  rep.dead.assign(sh.dead.begin(), sh.dead.end());
  rep.epochs = sh.max_epoch;
  rep.rank_traces = std::move(sh.traces);

  if (cfg.metrics) {
    auto& m = *cfg.metrics;
    const PhoenixStats& s = rep.stats;
    m.add("phoenix.kills", static_cast<double>(s.kills));
    m.add("phoenix.detections", static_cast<double>(s.detections));
    m.add("phoenix.repairs", static_cast<double>(s.repairs));
    m.add("phoenix.adoptions", static_cast<double>(s.adoptions));
    m.add("phoenix.retirements", static_cast<double>(s.retirements));
    m.add("phoenix.ckpt_commits", static_cast<double>(s.ckpt_commits));
    m.add("phoenix.ckpt_aborts", static_cast<double>(s.ckpt_aborts));
    m.add("phoenix.restores", static_cast<double>(s.restores));
    m.add("phoenix.crc_fallbacks", static_cast<double>(s.crc_fallbacks));
    m.add("phoenix.replayed_steps", static_cast<double>(s.replayed_steps));
    m.add("phoenix.buddy_msgs", static_cast<double>(s.buddy_msgs));
    m.add("phoenix.buddy_bytes", s.buddy_bytes);
    m.add("phoenix.shipped_msgs", static_cast<double>(s.shipped_msgs));
    m.add("phoenix.shipped_bytes", s.shipped_bytes);
    m.add("phoenix.repair_s", s.repair_s);
    m.add("phoenix.lost_work_s", s.lost_work_s);
  }
  return rep;
}

}  // namespace coe::phoenix
