#pragma once
// Rank-kill injectors for survivable-run experiments (DESIGN.md §17).
// These complement resil::make_rank_fault_hook (PR 1's MTBF-driven
// op-count faults): instead of an exponential clock, they place a kill on
// a chosen victim at a chosen operation index, so recovery tests can sweep
// a death across every phase of a protocol deterministically.
//
// All injectors return a RunOptions::fault_hook — called concurrently from
// every rank thread with (rank, ops completed by that rank) — and are
// immutable after construction, so they are trivially thread-safe. A hook
// fires when the victim's op count *equals* the kill point: the count is
// monotonic per rank id, so a spare that adopts the victim's id (and
// continues its op count past the kill point) is not re-killed.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace coe::phoenix {

/// Kills `rank` at exactly its `at_op`-th communicator operation.
/// at_op == 0 never fires (op counts start at 1).
std::function<bool(int, std::size_t)> kill_rank_at(int rank,
                                                   std::size_t at_op);

/// Seeded multi-kill schedule: picks `kills` distinct victims out of
/// [0, ranks) and, for each, an op index uniform in [lo_op, hi_op],
/// deterministically from `seed`. Victims whose schedule lands past their
/// actual op count simply survive.
std::function<bool(int, std::size_t)> seeded_kills(int ranks, int kills,
                                                   std::uint64_t seed,
                                                   std::size_t lo_op,
                                                   std::size_t hi_op);

}  // namespace coe::phoenix
