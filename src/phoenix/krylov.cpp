#include "phoenix/krylov.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace coe::phoenix {

PartCg::PartCg(const la::CsrMatrix& a, std::vector<double> b, int part,
               int nparts, double rel_tol, double abs_tol)
    : a_(&a),
      b_(std::move(b)),
      diag_(a.diagonal()),
      rel_tol_(rel_tol),
      abs_tol_(abs_tol) {
  const std::size_t n = b_.size();
  x_.assign(n, 0.0);
  r_.assign(n, 0.0);
  z_.assign(n, 0.0);
  p_.assign(n, 0.0);
  q_.assign(n, 0.0);
  lo_ = n * static_cast<std::size_t>(part) / static_cast<std::size_t>(nparts);
  hi_ = n * static_cast<std::size_t>(part + 1) /
        static_cast<std::size_t>(nparts);
}

void PartCg::save_state(std::vector<double>& out) const {
  out.clear();
  out.reserve(3 * x_.size() + 5);
  out.insert(out.end(), x_.begin(), x_.end());
  out.insert(out.end(), r_.begin(), r_.end());
  out.insert(out.end(), p_.begin(), p_.end());
  out.push_back(rz_);
  out.push_back(rnorm0_);
  out.push_back(resid_);
  out.push_back(done_);
  out.push_back(iters_);
}

void PartCg::restore_state(const std::vector<double>& in) {
  const std::size_t n = x_.size();
  const double* at = in.data();
  std::copy(at, at + n, x_.begin());
  at += n;
  std::copy(at, at + n, r_.begin());
  at += n;
  std::copy(at, at + n, p_.begin());
  at += n;
  rz_ = *at++;
  rnorm0_ = *at++;
  resid_ = *at++;
  done_ = *at++;
  iters_ = *at++;
}

double PartCg::dot_partial(const std::vector<double>& u,
                           const std::vector<double>& v) const {
  double s = 0.0;
  for (std::size_t i = lo_; i < hi_; ++i) s += u[i] * v[i];
  return s;
}

void PartCg::begin(core::ExecContext& ctx) {
  const std::size_t n = x_.size();
  a_->spmv(ctx, x_, q_);
  ctx.record_kernel({3.0 * double(n), 40.0 * double(n)});
  for (std::size_t i = 0; i < n; ++i) {
    r_[i] = b_[i] - q_[i];
    z_[i] = r_[i] / diag_[i];
    p_[i] = z_[i];
  }
  red_[0] = dot_partial(r_, z_);
  red_[1] = dot_partial(r_, r_);
  width_ = 2;
}

void PartCg::end_begin() {
  rz_ = red_[0];
  rnorm0_ = std::sqrt(red_[1]);
  resid_ = rnorm0_;
  if (rnorm0_ == 0.0) done_ = 1.0;
}

void PartCg::phase_pap(core::ExecContext& ctx) {
  if (done()) return;
  a_->spmv(ctx, p_, q_);
  red_[0] = dot_partial(p_, q_);
  width_ = 1;
}

void PartCg::phase_update(core::ExecContext& ctx) {
  if (done()) return;
  const std::size_t n = x_.size();
  const double alpha = rz_ / red_[0];
  ctx.record_kernel({5.0 * double(n), 64.0 * double(n)});
  for (std::size_t i = 0; i < n; ++i) {
    x_[i] += alpha * p_[i];
    r_[i] -= alpha * q_[i];
    z_[i] = r_[i] / diag_[i];
  }
  red_[0] = dot_partial(r_, r_);
  red_[1] = dot_partial(r_, z_);
  width_ = 2;
}

void PartCg::phase_close() {
  if (done()) return;
  const double rr = red_[0];
  const double rz_new = red_[1];
  iters_ += 1.0;
  resid_ = std::sqrt(rr);
  if (resid_ <= std::max(rel_tol_ * rnorm0_, abs_tol_)) {
    done_ = 1.0;
    return;
  }
  const double beta = rz_new / rz_;
  rz_ = rz_new;
  const std::size_t n = x_.size();
  for (std::size_t i = 0; i < n; ++i) p_[i] = z_[i] + beta * p_[i];
}

std::function<void(std::span<double>)> replicated_reduce(RankContext& rc,
                                                         int chan) {
  return [&rc, chan](std::span<double> v) {
    if (rc.owned().size() != 1) {
      throw std::logic_error(
          "phoenix::replicated_reduce: needs exactly one owned part");
    }
    rc.part_allreduce(chan, [v](int) { return v; });
    const double inv = 1.0 / static_cast<double>(rc.nparts());
    for (double& x : v) x *= inv;
  };
}

}  // namespace coe::phoenix
