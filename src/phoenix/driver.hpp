#pragma once
// Survivable distributed runs (DESIGN.md §17): the recovery orchestration
// that lets a multi-rank driver ride through injected rank kills. The
// world's work is decomposed into fixed logical *parts* (one per initial
// worker rank); parts — not ranks — own the numerics, the checkpoints, and
// the reduction tree, so a repair can remap parts onto survivors (shrink)
// or onto a warm spare adopting the dead rank's id (spare substitution)
// without perturbing a single bit of the arithmetic.
//
// The protocol, end to end:
//   1. Steady state: hooks.step() advances every owned part; every
//      cfg.ckpt_every steps checkpoint_exchange() stages each part's blob
//      locally, replicates it to the ring successor in ONE aggregated
//      tagged message (priced by net::replay, "phoenix/ckpt" span), votes
//      on an unlogged Central collective — the all-or-none decision of a
//      two-phase commit — and commits generation (epoch << 32 | step).
//   2. A kill raises resil::RankFailure in the victim (the thread retires
//      and coe::mpi marks the rank dead); survivors' operations raise the
//      recoverable mpi::RankFailed. Each survivor revokes the world,
//      aborts any pending checkpoint, and enters recovery.
//   3. Recovery: agree_min over latest committed generations (also fixing
//      the dead set), deterministic plan (shrink: retire; spare: adopt),
//      leader = lowest non-needy survivor commits repair() — purged
//      in-flight messages get synthetic drain Recv events so the replay
//      timeline stays free of unmatched sends — everyone else
//      await_repair()s. Post-repair, holders ship buddy blobs to adopted
//      spares ("bootstrap"), shrink reassigns dead ranks' parts to the
//      ring successor holding their buddy copies.
//   4. Restore: every rank reloads its (possibly newly adopted) parts
//      from the agreed generation — own copy first, CRC-refused blobs
//      fall back to a surviving buddy copy — then the world immediately
//      re-replicates at the restore point (closing the single-copy
//      window) and replays steps to bitwise-identical state.
//
// Logged collectives would deadlock a net::replay whose ranks died, so
// survivable drivers never log Allreduce/Barrier events: votes ride the
// unlogged Central reduction, and data reductions use a fixed binary
// part-tree of real point-to-point messages (bitwise stable under any
// part->rank mapping). All logged tags are epoch-salted so pre- and
// post-repair traffic cannot alias.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/exec.hpp"
#include "mpi/comm.hpp"
#include "net/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phoenix/ckpt.hpp"
#include "prof/span.hpp"
#include "resil/checkpoint.hpp"

namespace coe::phoenix {

/// The buddy model ran out of copies: both members of a buddy pair died
/// within one commit window, spares were exhausted, or no intact blob of a
/// needed part survives. Deliberately fatal and loud — this aborts the
/// world rather than continuing from wrong state.
struct PhoenixUnrecoverable : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class RepairPolicy {
  Shrink,  ///< retire dead ranks; ring successor adopts their parts
  Spare,   ///< parked warm spare adopts the dead rank's id and parts
};

struct PhoenixStats {
  std::size_t kills = 0;        ///< distinct ranks that died
  std::size_t detections = 0;   ///< RankFailed catches (rank-summed)
  std::size_t repairs = 0;      ///< committed repairs
  std::size_t adoptions = 0;    ///< spare substitutions
  std::size_t retirements = 0;  ///< shrink retirements
  std::size_t ckpt_commits = 0;    ///< committed generations (rank-summed)
  std::size_t ckpt_aborts = 0;     ///< pending generations dropped
  std::size_t restores = 0;        ///< part blobs restored
  std::size_t crc_fallbacks = 0;   ///< restores served by a buddy copy
  std::size_t replayed_steps = 0;  ///< steps re-executed after rollback
  std::size_t buddy_msgs = 0;      ///< committed-round replication messages
  double buddy_bytes = 0.0;
  std::size_t shipped_msgs = 0;  ///< bootstrap ships to adopted spares
  double shipped_bytes = 0.0;
  double repair_s = 0.0;     ///< wall seconds inside recovery (rank-summed)
  double lost_work_s = 0.0;  ///< simulated seconds rolled back (rank-summed)
};

struct SurvivableConfig {
  int workers = 4;  ///< initial worker ranks == logical part count
  int spares = 0;   ///< parked warm spares (Spare policy)
  RepairPolicy policy = RepairPolicy::Shrink;
  int steps = 8;       ///< hooks.step calls per part (step 0 may be init)
  int ckpt_every = 4;  ///< checkpoint before steps that are multiples of this
  /// Base communicator options; recoverable/spares/fault_hook/metrics are
  /// overwritten by the driver.
  mpi::RunOptions mpi;
  hsim::MachineModel node = hsim::machines::host();
  /// Shared traffic log (net::replay / coe::xray); may be null.
  net::NetLog* log = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  bool trace_ranks = false;
  /// Kill injector (phoenix::kill_rank_at / seeded_kills /
  /// resil::make_rank_fault_hook); may be null for a fault-free run.
  std::function<bool(int, std::size_t)> fault_hook;
};

class RankContext;

/// Application plug-in. `make` builds one part's app (called for initial
/// ownership, adoption, and fresh rebuilds — it must be deterministic in
/// the part index). `step` advances every part the context owns by one
/// step, using only RankContext communication (part_send/part_recv/
/// part_allreduce) — never unlogged side channels and never logged
/// collectives. `finish` runs once per surviving rank after the final
/// consistency vote; it must be communication-free.
struct SurvivableHooks {
  std::function<std::unique_ptr<resil::Checkpointable>(RankContext&, int)>
      make;
  std::function<void(RankContext&, int)> step;
  std::function<void(RankContext&)> finish;
};

struct SurvivableReport {
  mpi::TrafficStats traffic;
  PhoenixStats stats;
  int epochs = 0;          ///< final mailbox epoch (== committed repairs)
  std::vector<int> dead;   ///< every rank id that died, ascending
  std::vector<obs::TraceBuffer> rank_traces;  ///< per physical thread
};

namespace detail {
struct Shared;
}

/// Per-rank runtime handed to the hooks. Owned parts, their apps, the
/// part-addressed messaging, and the fixed-tree reduction all live here;
/// the recovery machinery is internal.
class RankContext {
 public:
  /// Current logical rank id (an adopted spare reports the adopted id).
  int rank() const { return rank_; }
  int nparts() const { return nparts_; }
  /// Parts this rank currently owns, ascending.
  const std::vector<int>& owned() const { return owned_; }
  /// Current owner rank of a part.
  int owner(int part) const { return pmap_[static_cast<std::size_t>(part)]; }
  resil::Checkpointable& part(int p);
  core::ExecContext& ctx() { return ctx_; }
  int step() const { return step_; }

  /// Part-addressed tagged message on channel `chan` (app channels are
  /// kChanApp..). Same-rank transfers short-circuit through a local queue
  /// (no message, no log); remote ones are real epoch-salted-logged mpi
  /// traffic. Sends are eager (never block), so a phase that posts all
  /// sends before any receive is deadlock-free.
  void part_send(int from_part, int to_part, int chan,
                 std::vector<double> payload);
  std::vector<double> part_recv(int from_part, int to_part, int chan);

  /// In-place sum-allreduce over all parts of the vectors `buf(p)` (valid
  /// for owned parts; all the same length): a fixed binary tree over part
  /// indices — combine v[p] += v[p + stride] in part order, broadcast
  /// down — so the association (and hence every bit of the result) is
  /// independent of the part->rank mapping. Uses channels
  /// [chan, chan + 2*levels).
  void part_allreduce(int chan,
                      const std::function<std::span<double>(int)>& buf);

  /// Flushes the simulated-time delta accrued since the last flush into
  /// the traffic log as a Compute event.
  void log_compute();

  /// First app channel; kChanBuddy/kChanBoot below it are reserved for
  /// the checkpoint and bootstrap protocol.
  static constexpr int kChanApp = 8;

 private:
  friend SurvivableReport run_survivable(const SurvivableConfig&,
                                         const SurvivableHooks&);
  friend struct detail::Shared;

  RankContext(detail::Shared& sh, int phys, mpi::Communicator& comm0);

  // Lifecycle (driver-internal; defined in driver.cpp).
  void begin_as_worker();
  bool begin_as_spare();  ///< false: released without adoption
  void common_init();
  void main_loop();
  void flush_stats();

  void recover();
  void restore();
  void checkpoint_exchange();
  void ship_bootstrap_to(int d);
  void receive_bootstrap();
  void send_rank(int dest, int chan, std::vector<double> payload);
  std::vector<double> recv_rank(int src, int chan);
  static int ring_successor(const std::vector<int>& ring, int of);
  static int ring_predecessor(const std::vector<int>& ring, int of);
  std::uint64_t gen_now() const;
  int logged_tag(int wire) const;

  detail::Shared& sh_;
  int phys_;       ///< physical thread index (== store index)
  mpi::Communicator* base_comm_;
  int rank_ = -1;  ///< current logical rank id
  int nparts_ = 0;
  mpi::Communicator* comm_ = nullptr;
  std::unique_ptr<mpi::Communicator> adopted_comm_;
  core::ExecContext ctx_;
  net::RankLogger logger_;
  prof::Profiler prof_;
  DistributedCheckpointStore* store_ = nullptr;

  // Bookkeeping every non-needy rank tracks deterministically (identical
  // on all of them): membership, part ownership, spare usage, and the
  // ring/pmap snapshot of each committed generation.
  std::vector<int> pmap_;
  std::vector<int> owned_;
  std::set<int> alive_;
  std::set<int> needy_;  ///< adopted but not yet covered by a commit
  int spares_used_ = 0;
  std::map<int, int> embodiment_;  ///< logical rank -> physical thread
  struct GenSnapshot {
    std::vector<int> ring;
    std::vector<int> pmap;
    double sim_s = 0.0;
  };
  std::map<std::uint64_t, GenSnapshot> gens_;

  std::map<int, std::unique_ptr<resil::Checkpointable>> parts_;
  std::map<std::uint64_t, std::queue<std::vector<double>>> local_mail_;

  int step_ = 0;
  int last_ckpt_step_ = -1;
  int world_epoch_ = 0;
  bool needy_self_ = false;
  bool need_recover_ = false;
  bool pending_boot_ = false;
  bool pending_restore_ = false;
  std::uint64_t agreed_ = DistributedCheckpointStore::kNone;
  double logged_sim_ = 0.0;
  PhoenixStats local_;
};

/// Runs the survivable world: cfg.workers + cfg.spares threads, recovery
/// enabled. Returns after every surviving rank finished (or rethrows the
/// first unrecoverable failure).
SurvivableReport run_survivable(const SurvivableConfig& cfg,
                                const SurvivableHooks& hooks);

}  // namespace coe::phoenix
