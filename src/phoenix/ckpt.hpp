#pragma once
// Buddy-replicated distributed checkpoint store (DESIGN.md §17). ISSUE 10
// places this "in coe::resil"; it lives in coe::phoenix because resil must
// stay mpi-free — the store itself is a pure data structure (blobs + CRC +
// two-phase commit), and the buddy *protocol* around it (aggregated ring
// messages, the commit vote, restore-from-buddy) is driven by
// phoenix::run_survivable.
//
// Each physical rank thread owns one store holding part-granular blobs:
// its own parts' checkpoints plus the buddy copies its ring predecessor
// replicated to it. Generations follow the same two-phase discipline as
// resil::CheckpointStore — stage (pending, invisible) then commit — except
// commit here is the *local* half of a distributed two-phase commit: the
// driver only issues it after a world-wide vote, so a generation is either
// committed on every live rank or on none. The latest two committed
// generations are kept (double buffering); every blob carries a CRC32
// (computed by resil::CheckpointStore::payload_crc) that is re-verified on
// fetch — a corrupt blob is refused, counted, and the driver falls back to
// the surviving buddy copy.
//
// All methods lock an internal mutex: the common path is single-writer
// (the owning rank thread), but post-repair recovery performs cross-store
// fallback reads when a rank's own copy is refused.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "resil/checkpoint.hpp"

namespace coe::phoenix {

/// One part's serialized state within a generation.
struct PartBlob {
  int part = -1;
  std::size_t step = 0;   ///< next driver step after this state
  std::uint32_t crc = 0;  ///< CRC32 of `data`'s bit patterns
  std::vector<double> data;
};

struct DistStoreStats {
  std::size_t staged = 0;
  std::size_t commits = 0;        ///< committed generations
  std::size_t aborted = 0;        ///< pending generations dropped
  std::size_t refused = 0;        ///< fetches refused on CRC mismatch
  double bytes_staged = 0.0;
};

class DistributedCheckpointStore {
 public:
  /// Generation sentinel meaning "nothing committed"; chosen as the max
  /// uint64 so an agree_min over latest_committed() naturally ignores
  /// ranks with empty stores.
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  /// Stages a blob for `gen` (own part or a received buddy copy). Pending
  /// until commit(gen); re-staging the same (gen, part) overwrites.
  void stage(std::uint64_t gen, int part, std::size_t step,
             std::vector<double> data);

  /// Publishes every pending blob of `gen` and prunes committed
  /// generations older than the newest two. The driver calls this only
  /// after the world-wide commit vote succeeds.
  void commit(std::uint64_t gen);

  /// Drops all pending blobs (a failure interrupted the exchange); the
  /// committed generations are untouched.
  void abort_pending();

  /// Newest committed generation, or kNone.
  std::uint64_t latest_committed() const;

  bool has(std::uint64_t gen, int part) const;

  enum class Fetch { Ok, Missing, Refused };

  /// Copies (gen, part) out if present and CRC-intact. A CRC mismatch is
  /// counted and reported as Refused — the caller falls back to the buddy
  /// copy in another store; silently serving a corrupt blob is the one
  /// thing a checkpoint store must never do.
  Fetch fetch(std::uint64_t gen, int part, std::vector<double>* data,
              std::size_t* step) const;

  /// Test hook: in-place mutable payload access for corruption injection
  /// (nullptr if absent). The CRC recorded at stage time is kept, so a
  /// flipped word is caught by the next fetch.
  std::vector<double>* mutable_payload(std::uint64_t gen, int part);

  DistStoreStats stats() const;

 private:
  mutable std::mutex mtx_;
  std::map<std::uint64_t, std::map<int, PartBlob>> committed_;
  std::map<std::uint64_t, std::map<int, PartBlob>> pending_;
  DistStoreStats stats_;
  mutable std::size_t refused_ = 0;  ///< fetch() is const; count anyway
};

}  // namespace coe::phoenix
