#pragma once
// coe::phoenix — survivable distributed runs (DESIGN.md §17): rank-kill
// injection, ULFM-style world repair (shrink or spare substitution),
// buddy-replicated two-phase checkpoints, and the recovery orchestration
// that rolls survivors back and replays to bitwise-identical state.

#include "phoenix/ckpt.hpp"
#include "phoenix/driver.hpp"
#include "phoenix/failure.hpp"
#include "phoenix/krylov.hpp"
