#include "graph/bfs.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace coe::graph {

Graph::Graph(std::size_t vertices,
             const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                 edges) {
  std::vector<std::size_t> degree(vertices, 0);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;  // self loops dropped (Graph500 convention)
    ++degree[u];
    ++degree[v];
  }
  offsets_.assign(vertices + 1, 0);
  for (std::size_t v = 0; v < vertices; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
  }
  adjacency_.resize(offsets_[vertices]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> rmat_edges(
    std::size_t scale, std::size_t edge_factor, core::Rng& rng, double a,
    double b, double c) {
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t m = edge_factor * n;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    std::uint32_t u = 0, v = 0;
    for (std::size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // quadrant (0,0)
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.emplace_back(u, v);
  }
  return edges;
}

BfsResult bfs(core::ExecContext& ctx, const Graph& g, std::uint32_t root,
              BfsMode mode) {
  const std::size_t n = g.num_vertices();
  BfsResult r;
  r.parent.assign(n, -1);
  r.parent[root] = root;
  std::vector<std::uint32_t> frontier{root};
  std::vector<std::uint32_t> next;
  r.reached = 1;

  while (!frontier.empty()) {
    ++r.levels;
    next.clear();
    const bool bottom_up =
        mode == BfsMode::BottomUp ||
        (mode == BfsMode::Hybrid && frontier.size() > n / 16);
    if (!bottom_up) {
      // Top-down: scan the frontier's adjacency.
      std::size_t scanned = 0;
      std::vector<char> in_frontier;  // unused in top-down
      (void)in_frontier;
      for (const auto u : frontier) {
        for (const auto v : g.neighbors(u)) {
          ++scanned;
          if (r.parent[v] < 0) {
            r.parent[v] = u;
            next.push_back(v);
          }
        }
      }
      r.edges_traversed += scanned;
      ctx.record_kernel({4.0 * double(scanned), 20.0 * double(scanned)});
    } else {
      // Bottom-up: every unvisited vertex probes its neighbors for a
      // frontier member.
      std::vector<char> in_frontier(n, 0);
      for (const auto u : frontier) in_frontier[u] = 1;
      std::size_t scanned = 0;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (r.parent[v] >= 0) continue;
        for (const auto u : g.neighbors(v)) {
          ++scanned;
          if (in_frontier[u]) {
            r.parent[v] = u;
            next.push_back(v);
            break;
          }
        }
      }
      r.edges_traversed += scanned;
      ctx.record_kernel({4.0 * double(scanned), 12.0 * double(scanned)});
    }
    r.reached += next.size();
    frontier.swap(next);
  }
  return r;
}

bool validate_bfs(const Graph& g, std::uint32_t root, const BfsResult& r) {
  const std::size_t n = g.num_vertices();
  if (r.parent[root] != static_cast<std::int64_t>(root)) return false;
  // Depths via the parent chain (with cycle guard).
  std::vector<std::int64_t> depth(n, -1);
  depth[root] = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (r.parent[v] < 0 || depth[v] >= 0) continue;
    // Walk up to a settled vertex.
    std::vector<std::uint32_t> chain;
    std::uint32_t cur = v;
    while (depth[cur] < 0) {
      chain.push_back(cur);
      cur = static_cast<std::uint32_t>(r.parent[cur]);
      if (chain.size() > n) return false;  // cycle
    }
    std::int64_t d = depth[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
  }
  // Tree edges must exist; depths must differ by one.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (r.parent[v] < 0 || v == root) continue;
    const auto p = static_cast<std::uint32_t>(r.parent[v]);
    const auto nb = g.neighbors(v);
    if (std::find(nb.begin(), nb.end(), p) == nb.end()) return false;
    if (depth[v] != depth[p] + 1) return false;
  }
  // Reachability agrees with a reference BFS.
  std::vector<char> seen(n, 0);
  std::queue<std::uint32_t> q;
  q.push(root);
  seen[root] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const auto u = q.front();
    q.pop();
    for (const auto v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (seen[v] != (r.parent[v] >= 0 ? 1 : 0)) return false;
  }
  return count == r.reached;
}

double measured_bytes_per_edge(const Graph& g) {
  // Run a real traversal under a counting context and divide.
  auto ctx = core::make_seq();
  auto r = bfs(ctx, g, 0, BfsMode::Hybrid);
  if (r.edges_traversed == 0) return 20.0;
  return ctx.counters().bytes / static_cast<double>(r.edges_traversed);
}

ComponentsResult connected_components(core::ExecContext& ctx,
                                      const Graph& g) {
  const std::size_t n = g.num_vertices();
  ComponentsResult r;
  r.label.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) r.label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    ++r.iterations;
    ctx.record_kernel({2.0 * double(g.num_directed_edges()),
                       12.0 * double(g.num_directed_edges())});
    for (std::uint32_t v = 0; v < n; ++v) {
      for (const auto u : g.neighbors(v)) {
        if (r.label[u] < r.label[v]) {
          r.label[v] = r.label[u];
          changed = true;
        }
      }
    }
  }
  std::vector<char> is_root(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) is_root[r.label[v]] = 1;
  for (char b : is_root) r.num_components += (b != 0);
  return r;
}

ScalePrediction scale_model(const GraphSystem& sys, double bytes_per_edge,
                            double bytes_per_vertex,
                            std::size_t edge_factor) {
  // Calibrated constants (see header comment).
  constexpr double kLineAmplification = 4.0;   // cache-line waste on gathers
  constexpr double kIoBytesPerEdge = 20.0;     // HavoqGT external traversal
  constexpr double kMessageBatch = 512.0;      // visitor-queue aggregation
  constexpr double kFrameworkNs = 25.0;        // async framework per edge

  ScalePrediction p;
  // Capacity: 2 * edge_factor * 2^s directed edges at ~8 B each plus
  // vertex arrays must fit in aggregate storage (DRAM + flash).
  const double total_storage =
      (sys.node_dram_bytes + sys.node_flash_bytes) *
      static_cast<double>(sys.nodes);
  double graph_bytes = 0.0;
  for (std::size_t s = 20; s <= 48; ++s) {
    const double verts = std::pow(2.0, static_cast<double>(s));
    const double need = verts * bytes_per_vertex +
                        2.0 * static_cast<double>(edge_factor) * verts * 8.0;
    if (need <= total_storage) {
      p.max_scale = s;
      graph_bytes = need;
    }
  }

  // Per-node nanoseconds per traversed edge: the max of four terms.
  double ns = bytes_per_edge * kLineAmplification /
              sys.node.bandwidth() * 1e9;
  p.bound_by = "dram";
  const double per_node_bytes =
      graph_bytes / static_cast<double>(sys.nodes);
  if (per_node_bytes > sys.node_dram_bytes) {
    const double io = kIoBytesPerEdge / sys.node_flash_bw * 1e9;
    if (io > ns) {
      ns = io;
      p.bound_by = "flash I/O";
    }
  }
  if (sys.nodes > 1) {
    const double nodes = static_cast<double>(sys.nodes);
    const double remote = (nodes - 1.0) / nodes;
    const double contention = std::sqrt(nodes) / 4.0;
    const double net = remote *
                       (sys.network.alpha / kMessageBatch +
                        16.0 * sys.network.beta * std::max(contention, 1.0)) *
                       1e9;
    if (net > ns) {
      ns = net;
      p.bound_by = "network";
    }
    if (kFrameworkNs > ns) {
      ns = kFrameworkNs;
      p.bound_by = "framework";
    }
  }
  p.ns_per_edge = ns;
  p.gteps = static_cast<double>(sys.nodes) / ns;
  return p;
}

}  // namespace coe::graph
