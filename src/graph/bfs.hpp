#pragma once
// HavoqGT-style graph engine (Section 4.4, Table 2): Kronecker/RMAT
// generation, direction-optimizing BFS with Graph500-style validation, and
// GTEPs accounting. The historical Table 2 rows are reproduced by running
// the real BFS locally to extract bytes-per-edge, then scaling through the
// machine-era + interconnect + NVMe-capacity model in scale_model().

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/exec.hpp"
#include "core/machine.hpp"
#include "core/rng.hpp"

namespace coe::graph {

/// Undirected graph in CSR adjacency form.
class Graph {
 public:
  Graph() = default;
  /// Builds from an edge list (both directions inserted).
  Graph(std::size_t vertices,
        const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

  std::size_t num_vertices() const { return offsets_.size() - 1; }
  std::size_t num_directed_edges() const { return adjacency_.size(); }

  std::span<const std::uint32_t> neighbors(std::size_t v) const {
    return std::span<const std::uint32_t>(adjacency_)
        .subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }
  std::size_t degree(std::size_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> adjacency_;
};

/// Graph500 RMAT generator: 2^scale vertices, edge_factor * 2^scale edges.
std::vector<std::pair<std::uint32_t, std::uint32_t>> rmat_edges(
    std::size_t scale, std::size_t edge_factor, core::Rng& rng,
    double a = 0.57, double b = 0.19, double c = 0.19);

struct BfsResult {
  std::vector<std::int64_t> parent;  ///< -1 = unreached
  std::size_t edges_traversed = 0;
  std::size_t levels = 0;
  std::size_t reached = 0;
};

enum class BfsMode { TopDown, BottomUp, Hybrid };

/// BFS from `root`; Hybrid switches to bottom-up on large frontiers (the
/// direction-optimizing heuristic).
BfsResult bfs(core::ExecContext& ctx, const Graph& g, std::uint32_t root,
              BfsMode mode = BfsMode::Hybrid);

/// Graph500-style validation of the parent tree: root is its own parent,
/// every tree edge exists in the graph, child depth = parent depth + 1,
/// and reachability matches a reference sweep.
bool validate_bfs(const Graph& g, std::uint32_t root, const BfsResult& r);

/// Effective bytes of memory traffic per traversed edge, extracted from a
/// real run (the calibration input to the distributed model).
double measured_bytes_per_edge(const Graph& g);

/// Connected components via label propagation (HavoqGT's second analytic).
/// Returns per-vertex component ids (the minimum vertex id in each
/// component) and the number of components.
struct ComponentsResult {
  std::vector<std::uint32_t> label;
  std::size_t num_components = 0;
  std::size_t iterations = 0;
};
ComponentsResult connected_components(core::ExecContext& ctx,
                                      const Graph& g);

/// Historical machine configuration for the Table 2 model.
struct GraphSystem {
  std::string name;
  hsim::MachineModel node;
  hsim::ClusterModel network;
  int nodes = 1;
  double node_dram_bytes = 0.0;
  double node_flash_bytes = 0.0;  ///< flash/NVMe (HavoqGT's home turf)
  double node_flash_bw = 1.0e9;   ///< sustained random-read bandwidth
};

struct ScalePrediction {
  std::size_t max_scale = 0;   ///< largest 2^s problem that fits
  double gteps = 0.0;          ///< predicted traversal rate at that scale
  double ns_per_edge = 0.0;    ///< per-node cost and which term bound it
  const char* bound_by = "";
};

/// Predicts max feasible scale (capacity) and GTEPs for a system. Per-node
/// edge cost is the max of: DRAM random-gather time (cache-line amplified),
/// external-memory I/O when the graph exceeds DRAM, the aggregated-message
/// network term (with endpoint contention growing as sqrt(nodes)), and a
/// fixed asynchronous-framework overhead on multi-node runs. Constants are
/// calibrated once against the published rows (see bench/table2_graph).
ScalePrediction scale_model(const GraphSystem& sys, double bytes_per_edge,
                            double bytes_per_vertex,
                            std::size_t edge_factor = 16);

}  // namespace coe::graph
