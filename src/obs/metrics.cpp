#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace coe::obs {

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lk(mtx_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mtx_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mtx_);
  histograms_[name].observe(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mtx_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mtx_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStat MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mtx_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStat{} : it->second;
}

std::map<std::string, double> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return gauges_;
}

std::map<std::string, HistogramStat> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return histograms_;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mtx_);
  Json root = Json::object();
  Json jc = Json::object();
  for (const auto& [k, v] : counters_) jc.set(k, Json::number(v));
  Json jg = Json::object();
  for (const auto& [k, v] : gauges_) jg.set(k, Json::number(v));
  Json jh = Json::object();
  for (const auto& [k, h] : histograms_) {
    Json stat = Json::object();
    stat.set("count", Json::number(static_cast<double>(h.count)));
    stat.set("sum", Json::number(h.sum));
    // Empty series would dump non-finite extremes; normalize to 0.
    stat.set("min", Json::number(h.count ? h.min : 0.0));
    stat.set("max", Json::number(h.count ? h.max : 0.0));
    jh.set(k, std::move(stat));
  }
  root.set("counters", std::move(jc));
  root.set("gauges", std::move(jg));
  root.set("histograms", std::move(jh));
  return root.dump();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mtx_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace coe::obs
