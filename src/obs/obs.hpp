#pragma once
// coe::obs — the observability layer: per-kernel tracing, Chrome
// trace_event export, metrics registry, and the JSON substrate the bench
// harness emits machine-readable results through (DESIGN.md §10).

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
