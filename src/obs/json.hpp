#pragma once
// Minimal JSON value, writer, and parser for coe::obs. The observability
// layer emits machine-readable artifacts (Chrome traces, metrics dumps,
// BENCH_*.json reports); this gives the repo one dependency-free way to
// write them, and — just as important — to read them back, so tests and
// the CI schema validator can verify round trips instead of trusting the
// emitters.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace coe::obs {

/// Raised by Json::parse on malformed input, and by the typed accessors on
/// a type mismatch.
struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One JSON value (null, bool, number, string, array, or object). Numbers
/// are doubles, like JavaScript; object keys are kept sorted (std::map) so
/// dumps are deterministic.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  /// Parses one complete JSON document (throws JsonError on trailing
  /// garbage, bad escapes, unterminated containers, non-finite numbers).
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::map<std::string, Json>& fields() const;

  /// Object lookup; throws JsonError when absent or not an object.
  const Json& at(const std::string& key) const;
  /// Array element; throws JsonError when out of range or not an array.
  const Json& at(std::size_t i) const;
  bool contains(const std::string& key) const;

  /// Mutators (for building documents programmatically).
  Json& set(const std::string& key, Json v);
  Json& push(Json v);

  /// Serializes back to compact JSON text.
  std::string dump() const;

  /// Escapes a raw string for embedding between double quotes.
  static std::string escape(std::string_view raw);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace coe::obs
