#pragma once
// Per-kernel trace ring buffer — the NVProf-substitute timeline the paper's
// figures are built from. An ExecContext with tracing enabled appends one
// TraceEvent per kernel launch and per host<->device transfer: the phase it
// accrued to, a label, exact flop/byte counts, the predicted duration, the
// backend, and the roofline classification (memory- vs compute-bound
// against the active machine's ridge point). Tracing is opt-in: a context
// without an attached buffer pays one branch per launch and nothing else.
//
// Beyond kernels and transfers the buffer also records zero-duration
// *marker* events for the host-side ordering edges (record_event,
// wait_event, sync). Markers carry no cost; they exist so an offline
// consumer (coe::prof, hsim::reprice_streamed) can rebuild the full
// dependency DAG of a streamed run instead of treating the streams as
// free-running.
//
// The buffer is a fixed-capacity ring so a long run cannot exhaust memory;
// when it wraps, the oldest events are dropped and counted.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace coe::obs {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    Kernel,
    TransferH2D,
    TransferD2H,
    // Zero-duration ordering markers (see header comment). `dep` holds the
    // stream-event id being recorded or waited on; Sync carries none.
    EventRecord,
    EventWait,
    Sync,
  };
  /// Roofline classification against the machine the event was priced on.
  enum class Bound : std::uint8_t { Compute, Memory };

  Kind kind = Kind::Kernel;
  Bound bound = Bound::Memory;
  const char* backend = "";  ///< static string ("seq"/"threads"/"device")
  std::string phase;         ///< timeline phase the event accrued to
  std::string label;         ///< kernel label (op kind when unlabeled)
  double flops = 0.0;
  double bytes = 0.0;        ///< kernel bytes moved, or transfer payload
  double t_start = 0.0;      ///< simulated seconds at event start
  double duration = 0.0;     ///< predicted seconds
  int stream = 0;            ///< simulated stream the event was issued on
  std::int64_t dep = -1;     ///< stream-event id for Record/Wait markers

  double end() const { return t_start + duration; }
};

const char* to_string(TraceEvent::Kind k);
const char* to_string(TraceEvent::Bound b);

/// True for the zero-duration ordering markers (no cost, no timeline
/// occupancy — repricing and utilization accounting skip them).
inline bool is_marker(TraceEvent::Kind k) {
  return k == TraceEvent::Kind::EventRecord ||
         k == TraceEvent::Kind::EventWait || k == TraceEvent::Kind::Sync;
}

/// Fixed-capacity ring of TraceEvents. Oldest events are overwritten once
/// full; `dropped()` counts them so truncation is never silent.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16)
      : capacity_(capacity ? capacity : 1) {}

  void push(TraceEvent e) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(e));
    } else {
      ring_[head_] = std::move(e);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return ring_.empty(); }
  /// Events overwritten after the ring wrapped.
  std::uint64_t dropped() const { return dropped_; }
  /// Accounts for events lost outside the ring (e.g. restored from a
  /// truncated on-disk trace), so drop counts survive a round trip.
  void note_dropped(std::uint64_t n) { dropped_ += n; }

  /// Machine metadata stamped by ExecContext::set_trace: the name of the
  /// machine the events were priced on and its per-launch overhead (needed
  /// offline to split a kernel's duration into launch vs roofline time).
  void set_source(std::string machine, double launch_overhead) {
    source_ = std::move(machine);
    launch_overhead_ = launch_overhead;
  }
  const std::string& source() const { return source_; }
  double launch_overhead() const { return launch_overhead_; }

  /// The mpi rank this buffer's events belong to. Exported as the Chrome
  /// trace `pid` (with process_name / process_sort_index metadata rows) so
  /// per-rank traces merge into one ordered, labeled multi-process
  /// timeline; parse_chrome_trace restores it. 0 = single-process trace.
  void set_rank(int rank) { rank_ = rank; }
  int rank() const { return rank_; }

  /// Retained events in chronological order (oldest first).
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest event once full
  std::uint64_t dropped_ = 0;
  std::string source_;
  double launch_overhead_ = 0.0;
  int rank_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Pre-serialized Chrome metadata rows ("ph":"M" process_name +
/// process_sort_index) naming viewer process `rank` as `label` and pinning
/// its sort order to the rank id. write_chrome_trace emits them for its own
/// buffer; multi-rank mergers (coe::xray) emit one pair per rank.
std::string process_metadata_events(int rank, const std::string& label);

/// Writes the buffer as a Chrome trace_event JSON document (the
/// `about:tracing` / Perfetto "JSON Array Format" with a `traceEvents`
/// object wrapper). Simulated seconds map to microseconds of trace time;
/// flops/bytes/backend/bound ride along in each event's `args`, markers as
/// zero-duration events. `otherData` carries the dropped-event count and
/// the source machine so a truncated ring is visible in the viewer instead
/// of silently short. `extra_events` (pre-serialized JSON objects, e.g.
/// critical-path flow events from coe::prof) are appended to the array.
void write_chrome_trace(std::ostream& os, const TraceBuffer& buf,
                        const std::vector<std::string>* extra_events = nullptr);

/// Same, as a string.
std::string chrome_trace_json(const TraceBuffer& buf);

/// Parses a Chrome trace document produced by write_chrome_trace back into
/// a TraceBuffer (the round trip coe_report and hsim::reprice_streamed use
/// to consume on-disk TRACE_*.json). Events this writer did not emit (flow
/// events, metadata rows) are skipped; dropped counts and the machine
/// metadata are restored. Throws JsonError on malformed documents.
TraceBuffer parse_chrome_trace(std::string_view text);

}  // namespace coe::obs
