#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace coe::obs {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return arr_;
}

const std::map<std::string, Json>& Json::fields() const {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_;
}

const Json& Json::at(const std::string& key) const {
  const auto& f = fields();
  const auto it = f.find(key);
  if (it == f.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

const Json& Json::at(std::size_t i) const {
  const auto& a = items();
  if (i >= a.size()) throw JsonError("json: index out of range");
  return a[i];
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && obj_.count(key) > 0;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ != Type::Object) throw JsonError("json: set() on non-object");
  obj_[key] = std::move(v);
  return *this;
}

Json& Json::push(Json v) {
  if (type_ != Type::Array) throw JsonError("json: push() on non-array");
  arr_.push_back(std::move(v));
  return *this;
}

std::string Json::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double v) {
  if (!std::isfinite(v)) throw JsonError("json: non-finite number");
  char buf[32];
  // Round-trippable shortest-ish form; trim a trailing ".000000".
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string Json::dump() const {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return bool_ ? "true" : "false";
    case Type::Number: return format_number(num_);
    case Type::String: return "\"" + escape(str_) + "\"";
    case Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ",";
        out += arr_[i].dump();
      }
      return out + "]";
    }
    case Type::Object: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + escape(k) + "\":" + v.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (consume_word("true")) return Json::boolean(true);
    if (consume_word("false")) return Json::boolean(false);
    if (consume_word("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what our emitters produce; keep them as-is bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
      fail("bad number '" + tok + "'");
    }
    return Json::number(v);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace coe::obs
