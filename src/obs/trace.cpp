#include "obs/trace.hpp"

#include <cstring>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace coe::obs {

const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::Kernel: return "kernel";
    case TraceEvent::Kind::TransferH2D: return "h2d";
    case TraceEvent::Kind::TransferD2H: return "d2h";
    case TraceEvent::Kind::EventRecord: return "event_record";
    case TraceEvent::Kind::EventWait: return "event_wait";
    case TraceEvent::Kind::Sync: return "sync";
  }
  return "?";
}

const char* to_string(TraceEvent::Bound b) {
  switch (b) {
    case TraceEvent::Bound::Compute: return "compute";
    case TraceEvent::Bound::Memory: return "memory";
  }
  return "?";
}

std::string process_metadata_events(int rank, const std::string& label) {
  // Chrome metadata rows: name the pid and pin its sort order so a merged
  // multi-rank document lists ranks in rank order, not arrival order. The
  // ts field is not required by the format but keeps every event uniform
  // for schema validators.
  const std::string pid = std::to_string(rank);
  return "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" + pid +
         ",\"args\":{\"name\":\"" + Json::escape(label) +
         "\"}},{\"name\":\"process_sort_index\",\"ph\":\"M\",\"ts\":0,"
         "\"pid\":" + pid + ",\"args\":{\"sort_index\":" + pid + "}}";
}

void write_chrome_trace(std::ostream& os, const TraceBuffer& buf,
                        const std::vector<std::string>* extra_events) {
  const int pid = buf.rank();
  os << "{\"traceEvents\":["
     << process_metadata_events(pid, "rank " + std::to_string(pid));
  for (const auto& e : buf.snapshot()) {
    os << ",";
    // Complete ("X") events, one viewer process per rank and one row per
    // simulated stream so cross-stream overlap reads directly in the
    // timeline. Markers become zero-duration events on the same row;
    // `args.dep` keeps the ordering edge recoverable.
    const int tid = e.stream;
    os << "{\"name\":\"" << Json::escape(e.label) << "\",\"cat\":\""
       << Json::escape(e.phase) << "\",\"ph\":\"X\",\"ts\":"
       << Json::number(e.t_start * 1e6).dump()
       << ",\"dur\":" << Json::number(e.duration * 1e6).dump()
       << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"args\":{\"kind\":\""
       << to_string(e.kind) << "\",\"bound\":\"" << to_string(e.bound)
       << "\",\"backend\":\"" << Json::escape(e.backend)
       << "\",\"flops\":" << Json::number(e.flops).dump()
       << ",\"bytes\":" << Json::number(e.bytes).dump()
       << ",\"stream\":" << e.stream << ",\"dep\":" << e.dep << "}}";
  }
  if (extra_events) {
    for (const auto& ev : *extra_events) {
      os << "," << ev;
    }
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << buf.dropped() << ",\"machine\":\"" << Json::escape(buf.source())
     << "\",\"launch_overhead_s\":"
     << Json::number(buf.launch_overhead()).dump()
     << ",\"rank\":" << pid
     << ",\"retained_events\":" << buf.size() << "}}";
}

std::string chrome_trace_json(const TraceBuffer& buf) {
  std::ostringstream os;
  write_chrome_trace(os, buf);
  return os.str();
}

namespace {

/// Maps a parsed backend string onto the static strings TraceEvent uses;
/// unknown backends collapse to "" rather than dangling.
const char* intern_backend(const std::string& s) {
  if (s == "seq") return "seq";
  if (s == "threads") return "threads";
  if (s == "device") return "device";
  return "";
}

bool parse_kind(const std::string& s, TraceEvent::Kind* out) {
  for (auto k : {TraceEvent::Kind::Kernel, TraceEvent::Kind::TransferH2D,
                 TraceEvent::Kind::TransferD2H, TraceEvent::Kind::EventRecord,
                 TraceEvent::Kind::EventWait, TraceEvent::Kind::Sync}) {
    if (s == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

TraceBuffer parse_chrome_trace(std::string_view text) {
  const Json doc = Json::parse(text);
  if (!doc.contains("traceEvents") || !doc.at("traceEvents").is_array()) {
    throw JsonError("chrome trace has no traceEvents array");
  }
  const auto& events = doc.at("traceEvents").items();
  TraceBuffer buf(events.size() ? events.size() : 1);
  for (const Json& je : events) {
    // Only the events this writer emits round-trip: complete events whose
    // args carry a recognized kind. Flow/metadata events are decoration.
    if (!je.is_object() || !je.contains("args") ||
        !je.at("args").is_object()) {
      continue;
    }
    const Json& args = je.at("args");
    if (!args.contains("kind") || !args.at("kind").is_string()) continue;
    TraceEvent e;
    if (!parse_kind(args.at("kind").as_string(), &e.kind)) continue;
    if (!je.contains("ts") || !je.contains("dur")) continue;
    e.t_start = je.at("ts").as_number() * 1e-6;
    e.duration = je.at("dur").as_number() * 1e-6;
    if (je.contains("name")) e.label = je.at("name").as_string();
    if (je.contains("cat")) e.phase = je.at("cat").as_string();
    if (args.contains("bound") && args.at("bound").is_string()) {
      e.bound = args.at("bound").as_string() == "compute"
                    ? TraceEvent::Bound::Compute
                    : TraceEvent::Bound::Memory;
    }
    if (args.contains("backend") && args.at("backend").is_string()) {
      e.backend = intern_backend(args.at("backend").as_string());
    }
    if (args.contains("flops")) e.flops = args.at("flops").as_number();
    if (args.contains("bytes")) e.bytes = args.at("bytes").as_number();
    if (args.contains("stream")) {
      e.stream = static_cast<int>(args.at("stream").as_number());
    } else if (je.contains("tid")) {
      e.stream = static_cast<int>(je.at("tid").as_number());
    }
    if (args.contains("dep")) {
      e.dep = static_cast<std::int64_t>(args.at("dep").as_number());
    }
    buf.push(std::move(e));
  }
  if (doc.contains("otherData") && doc.at("otherData").is_object()) {
    const Json& meta = doc.at("otherData");
    std::string machine;
    double overhead = 0.0;
    if (meta.contains("machine") && meta.at("machine").is_string()) {
      machine = meta.at("machine").as_string();
    }
    if (meta.contains("launch_overhead_s")) {
      overhead = meta.at("launch_overhead_s").as_number();
    }
    buf.set_source(std::move(machine), overhead);
    if (meta.contains("rank")) {
      buf.set_rank(static_cast<int>(meta.at("rank").as_number()));
    }
    if (meta.contains("dropped_events")) {
      buf.note_dropped(static_cast<std::uint64_t>(
          meta.at("dropped_events").as_number()));
    }
  }
  return buf;
}

}  // namespace coe::obs
