#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace coe::obs {

const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::Kernel: return "kernel";
    case TraceEvent::Kind::TransferH2D: return "h2d";
    case TraceEvent::Kind::TransferD2H: return "d2h";
  }
  return "?";
}

const char* to_string(TraceEvent::Bound b) {
  switch (b) {
    case TraceEvent::Bound::Compute: return "compute";
    case TraceEvent::Bound::Memory: return "memory";
  }
  return "?";
}

void write_chrome_trace(std::ostream& os, const TraceBuffer& buf) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : buf.snapshot()) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events, one viewer row per simulated stream so
    // cross-stream overlap reads directly in the timeline.
    const int tid = e.stream;
    os << "{\"name\":\"" << Json::escape(e.label) << "\",\"cat\":\""
       << Json::escape(e.phase) << "\",\"ph\":\"X\",\"ts\":"
       << Json::number(e.t_start * 1e6).dump()
       << ",\"dur\":" << Json::number(e.duration * 1e6).dump()
       << ",\"pid\":0,\"tid\":" << tid << ",\"args\":{\"kind\":\""
       << to_string(e.kind) << "\",\"bound\":\"" << to_string(e.bound)
       << "\",\"backend\":\"" << Json::escape(e.backend)
       << "\",\"flops\":" << Json::number(e.flops).dump()
       << ",\"bytes\":" << Json::number(e.bytes).dump()
       << ",\"stream\":" << e.stream << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << buf.dropped() << "}}";
}

std::string chrome_trace_json(const TraceBuffer& buf) {
  std::ostringstream os;
  write_chrome_trace(os, buf);
  return os.str();
}

}  // namespace coe::obs
