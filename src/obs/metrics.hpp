#pragma once
// MetricsRegistry — a thread-safe counter/gauge/histogram sink the
// subsystems publish operational telemetry into (mpi message/timeout
// counts, scheduler requeues, resilience faults and checkpoint bytes).
// Registries are plain objects handed to a subsystem via its config
// struct; nothing publishes unless a registry is attached, so the cost
// when unused is a null-pointer test.
//
// Naming convention: dotted lowercase paths scoped by subsystem, e.g.
// "mpi.messages", "sched.requeues", "resil.checkpoint_bytes",
// "guard.checks"/"guard.trips" (plus "guard.<detector>.trips" per
// detector); counters and accumulators that measure time carry a unit
// suffix ("sched.wait_s", "guard.check_s"). See DESIGN.md §10.

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace coe::obs {

/// Summary statistics of one histogram series. A fixed set of moments
/// rather than buckets: every consumer here wants count/sum/extremes, and
/// the raw series stays reproducible from the trace when needed.
struct HistogramStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void observe(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

class MetricsRegistry {
 public:
  /// Adds `delta` to a monotonically accumulating counter.
  void add(const std::string& name, double delta = 1.0);
  /// Sets a gauge to its latest value.
  void set(const std::string& name, double value);
  /// Records one observation into a histogram series.
  void observe(const std::string& name, double value);

  /// Reads (0 / empty stat when the name was never published).
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  HistogramStat histogram(const std::string& name) const;

  /// Snapshots for export.
  std::map<std::string, double> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistogramStat> histograms() const;

  /// Serializes the whole registry as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max}}}
  std::string to_json() const;

  void clear();

 private:
  mutable std::mutex mtx_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramStat> histograms_;
};

}  // namespace coe::obs
