#pragma once
// Cardioid's reaction kernels in miniature (Section 4.1): a Hodgkin-Huxley
// style excitable membrane model whose gate-rate functions are built from
// the expensive exp() calls the Melodee DSL replaces. Two kernel variants:
// RateTables::Libm evaluates rates exactly; RateTables::Rational runs the
// DSL-generated rational-polynomial approximations.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/exec.hpp"
#include "reaction/rational.hpp"

namespace coe::reaction {

/// Per-cell membrane state.
struct CellState {
  double v = -65.0;  ///< membrane potential, mV
  double m = 0.053;  ///< Na activation
  double h = 0.596;  ///< Na inactivation
  double n = 0.318;  ///< K activation
};

/// Exact HH gate-rate functions (removable singularities handled).
namespace rates {
double alpha_m(double v);
double beta_m(double v);
double alpha_h(double v);
double beta_h(double v);
double alpha_n(double v);
double beta_n(double v);
}  // namespace rates

enum class RateKind { Libm, Rational };

/// The reaction kernel over a population of cells; Rush-Larsen gate
/// integration (exact exponential per gate), forward-Euler voltage.
///
/// The Rational variant does what Melodee does: for a fixed dt it fits the
/// complete Rush-Larsen update  g' = A(v) + B(v) g  with A, B rational in
/// v, eliminating *every* exp() from the inner loop (the rates and the
/// exponential integrator alike).
class MembraneKernel {
 public:
  /// Builds rational fits over the physiological window [-100, 60] mV.
  /// `baked_dt` is the timestep compiled into the Rational variant.
  explicit MembraneKernel(RateKind kind, std::size_t np = 7,
                          std::size_t nq = 4, double baked_dt = 0.01);

  RateKind kind() const { return kind_; }

  /// Advances all cells by dt; stim adds a current (uA/cm^2) to every
  /// cell in [stim_begin, stim_end). For the Rational variant dt must
  /// equal the baked dt.
  void step(core::ExecContext& ctx, std::span<CellState> cells, double dt,
            double stim = 0.0, std::size_t stim_begin = 0,
            std::size_t stim_end = 0) const;

  /// Advances ONE cell in place — the building block step() launches over,
  /// exposed so callers (the monodomain driver) can fuse the reaction into
  /// an adjacent same-range kernel. `stim_on` gates the stimulus current
  /// exactly as step()'s [stim_begin, stim_end) range does.
  void update_cell(CellState& s, double dt, double stim = 0.0,
                   bool stim_on = false) const;

  /// Per-cell workload of one update, for pricing a fused launch.
  hsim::Workload cell_workload() const {
    return kind_ == RateKind::Rational ? hsim::Workload{170.0, 64.0}
                                       : hsim::Workload{300.0, 64.0};
  }

  /// Ionic current for one state (for diffusion coupling).
  double ionic_current(const CellState& s) const;

  /// Worst-case relative error of the fitted rates vs libm.
  double fit_error() const { return fit_error_; }

 private:
  struct Fits;

  RateKind kind_;
  std::shared_ptr<const Fits> fits_;
  double baked_dt_ = 0.01;
  double fit_error_ = 0.0;
};

}  // namespace coe::reaction
