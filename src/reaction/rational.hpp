#pragma once
// The Melodee-DSL substitute (Section 4.1): Cardioid "developed a DSL that
// automatically finds and replaces expensive math functions with rational
// polynomials." RationalFit least-squares fits P(x)/Q(x) to an arbitrary
// scalar function on an interval; three evaluation variants reproduce the
// paper's performance ladder:
//
//   libm          -- call the original function (exp/log/pow),
//   runtime       -- Clenshaw with heap-resident coefficients,
//   specialized   -- fixed-degree unrolled Clenshaw with coefficients baked
//                    into the closure (the "compile-time constants" trick
//                    that "could yield significant performance").

#include <array>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace coe::reaction {

class RationalFit {
 public:
  /// Fits f on [a, b] with numerator degree np and denominator degree nq
  /// (Q(0) = 1 normalization, in the scaled variable t in [-1, 1]).
  RationalFit(const std::function<double(double)>& f, double a, double b,
              std::size_t np, std::size_t nq, std::size_t samples = 256);

  double a() const { return a_; }
  double b() const { return b_; }
  std::span<const double> p() const { return p_; }
  std::span<const double> q() const { return q_; }

  /// Horner evaluation with runtime coefficients.
  double operator()(double x) const;

  /// Max |fit - f| / max(1, |f|) over a dense sample of [a, b].
  double max_relative_error(const std::function<double(double)>& f,
                            std::size_t samples = 1000) const;

 private:
  double scale(double x) const { return (2.0 * x - (a_ + b_)) / (b_ - a_); }

  double a_, b_;
  std::vector<double> p_, q_;  ///< q_[0] == 1
};

/// Fixed-degree evaluator with the coefficients captured by value: the
/// compiler unrolls and constant-propagates through the closure, the
/// "compile-time constants" version. Degrees are template parameters like
/// the generated kernels Cardioid JIT-compiled per model.
template <std::size_t NP, std::size_t NQ>
class SpecializedRational {
 public:
  explicit SpecializedRational(const RationalFit& fit)
      : a_(fit.a()), b_(fit.b()) {
    for (std::size_t i = 0; i <= NP; ++i) p_[i] = fit.p()[i];
    for (std::size_t i = 0; i <= NQ; ++i) q_[i] = fit.q()[i];
  }

  double operator()(double x) const {
    const double t = (2.0 * x - (a_ + b_)) / (b_ - a_);
    return clenshaw<NP>(p_, t) / clenshaw<NQ>(q_, t);
  }

 private:
  template <std::size_t N>
  static double clenshaw(const std::array<double, N + 1>& c, double t) {
    double b1 = 0.0, b2 = 0.0;
    for (std::size_t k = N + 1; k-- > 1;) {
      const double b = c[k] + 2.0 * t * b1 - b2;
      b2 = b1;
      b1 = b;
    }
    return c[0] + t * b1 - b2;
  }

  double a_, b_;
  std::array<double, NP + 1> p_{};
  std::array<double, NQ + 1> q_{};
};

}  // namespace coe::reaction
