#include "reaction/monodomain.hpp"

#include <algorithm>

#include "prof/span.hpp"

namespace coe::reaction {

Monodomain::Monodomain(core::ExecContext& device, core::ExecContext& host,
                       TissueConfig cfg)
    : device_(&device), host_(&host), cfg_(cfg), kernel_(cfg.rates),
      cells_(cfg.nx * cfg.ny), lap_(cfg.nx * cfg.ny, 0.0) {
  // One-time upload of the tissue state (named so an attached residency
  // arena tracks the cell array's device copy).
  device_->upload("cardioid.cells", static_cast<double>(cells_.size()) * 32.0);
}

void Monodomain::stimulate(std::size_t x0, std::size_t x1, std::size_t y0,
                           std::size_t y1, double current, double duration) {
  sx0_ = x0;
  sx1_ = x1;
  sy0_ = y0;
  sy1_ = y1;
  stim_current_ = current;
  stim_until_ = t_ + duration;
}

void Monodomain::step() {
  const std::size_t nx = cfg_.nx, ny = cfg_.ny;
  const double coef = cfg_.diffusion / (cfg_.dx * cfg_.dx);

  prof::Scope step_span(cfg_.profiler, device_, "cardioid_step");
  auto& dctx = diffusion_ctx();
  {
    prof::Scope diff_span(cfg_.profiler, &dctx, "diffusion");
    if (cfg_.placement == TissuePlacement::SplitCpuDiffusion) {
      // Voltage field leaves the device and the Laplacian comes back. With
      // an elision-enabled arena the very first step's d2h is skipped (the
      // device copy is still clean from the constructor upload).
      device_->writeback("cardioid.cells",
                         static_cast<double>(cells_.size()) * 8.0);
    }
    // 5-point Laplacian with no-flux (mirrored) boundaries.
    dctx.forall2(nx, ny, {8.0, 48.0}, [&](std::size_t i, std::size_t j) {
      auto v = [&](std::size_t a, std::size_t b) {
        return cells_[a * ny + b].v;
      };
      const double vim = v(i > 0 ? i - 1 : 1, j);
      const double vip = v(i + 1 < nx ? i + 1 : nx - 2, j);
      const double vjm = v(i, j > 0 ? j - 1 : 1);
      const double vjp = v(i, j + 1 < ny ? j + 1 : ny - 2);
      lap_[i * ny + j] =
          coef * (vim + vip + vjm + vjp - 4.0 * v(i, j));
    });
    if (cfg_.placement == TissuePlacement::SplitCpuDiffusion) {
      // Host just rewrote the Laplacian, so the upload is never elidable.
      const double lb = static_cast<double>(cells_.size()) * 8.0;
      device_->touch_host("cardioid.lap", lb, core::MemAccess::Write);
      device_->upload("cardioid.lap", lb);
    } else {
      // Diffusion ran on the device: it read the voltages and wrote lap_.
      device_->touch_device("cardioid.cells",
                            static_cast<double>(cells_.size()) * 32.0,
                            core::MemAccess::Read);
      device_->touch_device("cardioid.lap",
                            static_cast<double>(cells_.size()) * 8.0,
                            core::MemAccess::Write);
    }
  }
  prof::Scope react_span(cfg_.profiler, device_, "reaction");
  // Reaction + voltage update rewrite the cell state on the device and read
  // the Laplacian from device memory.
  device_->touch_device("cardioid.cells",
                        static_cast<double>(cells_.size()) * 32.0,
                        core::MemAccess::Write);
  device_->touch_device("cardioid.lap",
                        static_cast<double>(cells_.size()) * 8.0,
                        core::MemAccess::Read);

  // Voltage update from diffusion + stimulus (device resident), then the
  // reaction kernel (always on the device). Both touch only cell idx, so
  // they fuse into one launch when configured — each cell's voltage stays
  // in registers between the two stages (16 B store+reload elided).
  // Diffusion above cannot join the fusion: it reads neighbor voltages.
  const bool stim_active = t_ < stim_until_;
  auto voltage_update = [&](std::size_t idx) {
    cells_[idx].v += cfg_.dt * lap_[idx];
    if (stim_active) {
      const std::size_t i = idx / ny, j = idx % ny;
      if (i >= sx0_ && i < sx1_ && j >= sy0_ && j < sy1_) {
        cells_[idx].v += cfg_.dt * stim_current_;
      }
    }
  };
  if (cfg_.fuse_reaction) {
    device_->fused(cells_.size())
        .then({3.0, 32.0}, voltage_update)
        .then(kernel_.cell_workload(),
              [&](std::size_t idx) {
                kernel_.update_cell(cells_[idx], cfg_.dt);
              })
        .elide(16.0)
        .launch();
  } else {
    device_->forall(cells_.size(), {3.0, 32.0}, voltage_update);
    kernel_.step(*device_, cells_, cfg_.dt);
  }
  t_ += cfg_.dt;
}

void Monodomain::run(double duration) {
  const auto steps = static_cast<std::size_t>(duration / cfg_.dt + 0.5);
  for (std::size_t s = 0; s < steps; ++s) step();
}

double Monodomain::max_voltage() const {
  double m = -1e300;
  for (const auto& c : cells_) m = std::max(m, c.v);
  return m;
}

double Monodomain::excited_fraction(double threshold) const {
  std::size_t count = 0;
  for (const auto& c : cells_) count += (c.v > threshold);
  return static_cast<double>(count) / static_cast<double>(cells_.size());
}

std::span<double> Monodomain::state_data() {
  static_assert(sizeof(CellState) == 4 * sizeof(double),
                "CellState must stay 4 packed doubles for the flat view");
  return {reinterpret_cast<double*>(cells_.data()), cells_.size() * 4};
}

}  // namespace coe::reaction
