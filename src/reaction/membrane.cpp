#include "reaction/membrane.hpp"

#include <cassert>
#include <cmath>

namespace coe::reaction {

namespace rates {

namespace {
/// x / (1 - exp(-x/s)) with the removable singularity at x = 0.
double vtrap(double x, double s) {
  const double r = x / s;
  if (std::abs(r) < 1e-6) return s * (1.0 + 0.5 * r);
  return x / (1.0 - std::exp(-r));
}
}  // namespace

double alpha_m(double v) { return 0.1 * vtrap(v + 40.0, 10.0); }
double beta_m(double v) { return 4.0 * std::exp(-(v + 65.0) / 18.0); }
double alpha_h(double v) { return 0.07 * std::exp(-(v + 65.0) / 20.0); }
double beta_h(double v) { return 1.0 / (1.0 + std::exp(-(v + 35.0) / 10.0)); }
double alpha_n(double v) { return 0.01 * vtrap(v + 55.0, 10.0); }
double beta_n(double v) { return 0.125 * std::exp(-(v + 65.0) / 80.0); }

}  // namespace rates

// Per gate, the complete dt-baked Rush-Larsen update g' = A(v) + B(v) g.
struct MembraneKernel::Fits {
  SpecializedRational<7, 4> a[3];
  SpecializedRational<7, 4> b[3];
};

namespace {

/// Exact Rush-Larsen coefficients for one gate at fixed dt.
double rl_b(double alpha, double beta, double dt) {
  return std::exp(-dt * (alpha + beta));
}
double rl_a(double alpha, double beta, double dt) {
  const double inf = alpha / (alpha + beta);
  return inf * (1.0 - rl_b(alpha, beta, dt));
}

}  // namespace

MembraneKernel::MembraneKernel(RateKind kind, std::size_t np, std::size_t nq,
                               double baked_dt)
    : kind_(kind), baked_dt_(baked_dt) {
  if (kind_ != RateKind::Rational) return;
  const double lo = -100.0, hi = 60.0;
  using RateFn = double (*)(double);
  const RateFn alphas[3] = {rates::alpha_m, rates::alpha_h, rates::alpha_n};
  const RateFn betas[3] = {rates::beta_m, rates::beta_h, rates::beta_n};
  // Fit degree fixed at (7,4) -- the template arity the "generated code"
  // specializes on.
  (void)np;
  (void)nq;
  auto a_fn = [&](int g) {
    return [alpha = alphas[g], beta = betas[g], dt = baked_dt](double v) {
      return rl_a(alpha(v), beta(v), dt);
    };
  };
  auto b_fn = [&](int g) {
    return [alpha = alphas[g], beta = betas[g], dt = baked_dt](double v) {
      return rl_b(alpha(v), beta(v), dt);
    };
  };
  RationalFit fa0(a_fn(0), lo, hi, 7, 4), fb0(b_fn(0), lo, hi, 7, 4);
  RationalFit fa1(a_fn(1), lo, hi, 7, 4), fb1(b_fn(1), lo, hi, 7, 4);
  RationalFit fa2(a_fn(2), lo, hi, 7, 4), fb2(b_fn(2), lo, hi, 7, 4);
  fit_error_ = 0.0;
  fit_error_ = std::max(fit_error_, fa0.max_relative_error(a_fn(0)));
  fit_error_ = std::max(fit_error_, fb0.max_relative_error(b_fn(0)));
  fit_error_ = std::max(fit_error_, fa1.max_relative_error(a_fn(1)));
  fit_error_ = std::max(fit_error_, fb1.max_relative_error(b_fn(1)));
  fit_error_ = std::max(fit_error_, fa2.max_relative_error(a_fn(2)));
  fit_error_ = std::max(fit_error_, fb2.max_relative_error(b_fn(2)));
  fits_ = std::make_shared<const Fits>(Fits{
      {SpecializedRational<7, 4>(fa0), SpecializedRational<7, 4>(fa1),
       SpecializedRational<7, 4>(fa2)},
      {SpecializedRational<7, 4>(fb0), SpecializedRational<7, 4>(fb1),
       SpecializedRational<7, 4>(fb2)}});
}

double MembraneKernel::ionic_current(const CellState& s) const {
  const double gna = 120.0, ena = 50.0;
  const double gk = 36.0, ek = -77.0;
  const double gl = 0.3, el = -54.387;
  const double ina = gna * s.m * s.m * s.m * s.h * (s.v - ena);
  const double ik = gk * s.n * s.n * s.n * s.n * (s.v - ek);
  const double il = gl * (s.v - el);
  return ina + ik + il;
}

void MembraneKernel::update_cell(CellState& s, double dt, double stim,
                                 bool stim_on) const {
  if (kind_ == RateKind::Rational) {
    // exp-free path: ~170 flops of pure multiply-add per cell.
    const Fits& f = *fits_;
    s.m = f.a[0](s.v) + f.b[0](s.v) * s.m;
    s.h = f.a[1](s.v) + f.b[1](s.v) * s.h;
    s.n = f.a[2](s.v) + f.b[2](s.v) * s.n;
    double current = -ionic_current(s);
    if (stim_on) current += stim;
    s.v += dt * current;
    return;
  }
  // libm path: 9 exp evaluations per cell (~300 flops equivalent).
  const double a[3] = {rates::alpha_m(s.v), rates::alpha_h(s.v),
                       rates::alpha_n(s.v)};
  const double b[3] = {rates::beta_m(s.v), rates::beta_h(s.v),
                       rates::beta_n(s.v)};
  double* gates[3] = {&s.m, &s.h, &s.n};
  for (int g = 0; g < 3; ++g) {
    const double tau = 1.0 / (a[g] + b[g]);
    const double inf = a[g] * tau;
    *gates[g] = inf + (*gates[g] - inf) * std::exp(-dt / tau);
  }
  double current = -ionic_current(s);
  if (stim_on) current += stim;
  s.v += dt * current;  // Cm = 1 uF/cm^2
}

void MembraneKernel::step(core::ExecContext& ctx, std::span<CellState> cells,
                          double dt, double stim, std::size_t stim_begin,
                          std::size_t stim_end) const {
  if (kind_ == RateKind::Rational) {
    assert(std::abs(dt - baked_dt_) < 1e-12 &&
           "Rational kernel is specialized for its baked dt");
  }
  ctx.forall(cells.size(), cell_workload(), [&](std::size_t i) {
    update_cell(cells[i], dt, stim, i >= stim_begin && i < stim_end);
  });
}

}  // namespace coe::reaction
