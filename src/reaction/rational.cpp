#include "reaction/rational.hpp"

#include <cassert>
#include <cmath>

#include "la/dense.hpp"

namespace coe::reaction {

RationalFit::RationalFit(const std::function<double(double)>& f, double a,
                         double b, std::size_t np, std::size_t nq,
                         std::size_t samples)
    : a_(a), b_(b), p_(np + 1, 0.0), q_(nq + 1, 0.0) {
  assert(b > a && samples > np + nq + 1);
  q_[0] = 1.0;
  // Linearized least squares in the Chebyshev basis (monomial normal
  // equations are hopelessly ill-conditioned beyond degree ~8):
  // P(t) - f(x) * (Q(t) - 1) = f(x), unknowns p_0..p_np and q_1..q_nq,
  // with P, Q expanded in T_k(t).
  const std::size_t ncoef = np + 1 + nq;
  la::DenseMatrix ata(ncoef, ncoef);
  std::vector<double> atb(ncoef, 0.0);
  std::vector<double> row(ncoef);
  std::vector<double> cheb(std::max(np, nq) + 1);
  for (std::size_t s = 0; s < samples; ++s) {
    // Chebyshev-distributed sample points resist Runge oscillation.
    const double t = -std::cos(M_PI * (static_cast<double>(s) + 0.5) /
                               static_cast<double>(samples));
    const double x = 0.5 * ((b_ - a_) * t + (a_ + b_));
    const double fx = f(x);
    cheb[0] = 1.0;
    if (cheb.size() > 1) cheb[1] = t;
    for (std::size_t k = 2; k < cheb.size(); ++k) {
      cheb[k] = 2.0 * t * cheb[k - 1] - cheb[k - 2];
    }
    for (std::size_t i = 0; i <= np; ++i) row[i] = cheb[i];
    for (std::size_t i = 1; i <= nq; ++i) row[np + i] = -fx * cheb[i];
    for (std::size_t i = 0; i < ncoef; ++i) {
      atb[i] += row[i] * fx;
      for (std::size_t j = 0; j < ncoef; ++j) {
        ata(i, j) += row[i] * row[j];
      }
    }
  }
  la::LuFactor lu(ata);
  lu.solve(atb);
  for (std::size_t i = 0; i <= np; ++i) p_[i] = atb[i];
  for (std::size_t i = 1; i <= nq; ++i) q_[i] = atb[np + i];
}

namespace {
/// Clenshaw evaluation of a Chebyshev series.
double clenshaw(std::span<const double> c, double t) {
  double b1 = 0.0, b2 = 0.0;
  for (std::size_t k = c.size(); k-- > 1;) {
    const double b = c[k] + 2.0 * t * b1 - b2;
    b2 = b1;
    b1 = b;
  }
  return c[0] + t * b1 - b2;
}
}  // namespace

double RationalFit::operator()(double x) const {
  const double t = scale(x);
  return clenshaw(p_, t) / clenshaw(q_, t);
}

double RationalFit::max_relative_error(
    const std::function<double(double)>& f, std::size_t samples) const {
  double worst = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double x = a_ + (b_ - a_) * static_cast<double>(s) /
                              static_cast<double>(samples - 1);
    const double fx = f(x);
    const double err = std::abs((*this)(x)-fx) / std::max(1.0, std::abs(fx));
    worst = std::max(worst, err);
  }
  return worst;
}

}  // namespace coe::reaction
