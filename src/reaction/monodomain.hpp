#pragma once
// The Cardioid monodomain driver (Section 4.1): reaction kernels (membrane
// ion transport) plus a memory-bound diffusion stencil over a 2D tissue
// sheet. Placement options reproduce the paper's data-migration study:
//
//  * AllGpu     -- both kernels on the device, no per-step transfers (the
//    decision the team made: "perform all computations on the GPU to
//    minimize data migration").
//  * SplitCpuDiffusion -- diffusion on the CPU overlapped with reaction on
//    the GPU, paying a voltage-field round trip every step.

#include <span>
#include <vector>

#include "core/exec.hpp"
#include "reaction/membrane.hpp"

namespace coe::prof {
class Profiler;
}

namespace coe::reaction {

enum class TissuePlacement { AllGpu, SplitCpuDiffusion };

struct TissueConfig {
  std::size_t nx = 64;
  std::size_t ny = 64;
  double dx = 0.02;        ///< cm
  double diffusion = 0.001;///< cm^2/ms
  double dt = 0.01;        ///< ms
  RateKind rates = RateKind::Libm;
  TissuePlacement placement = TissuePlacement::AllGpu;
  /// Fuse the voltage-update kernel into the reaction kernel (one launch
  /// per step instead of two, the voltage round trip between them elided)
  /// — the Cardioid fusion the paper reports. Per-cell arithmetic and its
  /// order are unchanged, so results are bitwise identical.
  bool fuse_reaction = false;
  /// Optional span sink: when set, each step() wraps its stages in
  /// "cardioid_step" / "diffusion" / "reaction" prof::Scope regions (and
  /// tags the contexts' timeline phases accordingly).
  prof::Profiler* profiler = nullptr;
};

class Monodomain {
 public:
  Monodomain(core::ExecContext& device, core::ExecContext& host,
             TissueConfig cfg);

  /// Stimulates a rectangle of tissue with the given current for the next
  /// `duration` ms of simulation.
  void stimulate(std::size_t x0, std::size_t x1, std::size_t y0,
                 std::size_t y1, double current, double duration);

  void step();
  void run(double duration);

  double time() const { return t_; }
  double voltage(std::size_t i, std::size_t j) const {
    return cells_[i * cfg_.ny + j].v;
  }
  double max_voltage() const;
  /// Fraction of cells currently depolarized above the threshold.
  double excited_fraction(double threshold = 0.0) const;

  /// Raw per-cell state as one flat double span, interleaved
  /// [v, m, h, n] per cell — the SDC target and the input to coe::guard
  /// range detectors (stride 4, offset 0..3 selects one component; see
  /// the k*Lo/k*Hi physiological bounds below).
  std::span<double> state_data();

  // Physiological ranges for the HH state variables: v spans resting
  // through spike overshoot with stimulus headroom; the gates are
  // mathematically confined to [0, 1] (a small margin absorbs round-off).
  // A bit flip that leaves a component inside its range escapes a range
  // detector — by design; that residual escape rate is measured, not
  // hidden.
  static constexpr double kVoltageLo = -150.0;
  static constexpr double kVoltageHi = 100.0;
  static constexpr double kGateLo = -1e-3;
  static constexpr double kGateHi = 1.0 + 1e-3;

  const TissueConfig& config() const { return cfg_; }

 private:
  core::ExecContext& diffusion_ctx() {
    return cfg_.placement == TissuePlacement::AllGpu ? *device_ : *host_;
  }

  core::ExecContext* device_;
  core::ExecContext* host_;
  TissueConfig cfg_;
  MembraneKernel kernel_;
  std::vector<CellState> cells_;
  std::vector<double> lap_;
  double t_ = 0.0;
  // Active stimulus.
  std::size_t sx0_ = 0, sx1_ = 0, sy0_ = 0, sy1_ = 0;
  double stim_current_ = 0.0;
  double stim_until_ = -1.0;
};

}  // namespace coe::reaction
