#include "stencil/survivable.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "core/exec.hpp"

namespace coe::stencil {

namespace {

// Identical constants and per-point pricing to distributed.cpp: the two
// drivers must produce the same bits and charge the same modeled work.
constexpr double kC0 = -30.0 / 12.0;
constexpr double kC1 = 16.0 / 12.0;
constexpr double kC2 = -1.0 / 12.0;
constexpr double kFlopsPerPoint = 38.0;
constexpr double kBytesPerPoint = 120.0;

constexpr int kChanRight = phoenix::RankContext::kChanApp;     // p -> p+1
constexpr int kChanLeft = phoenix::RankContext::kChanApp + 1;  // p -> p-1

/// One x-slab: the owning part's (u, u_prev) state plus the step kernels,
/// arithmetic-identical to the per-rank body of distributed_wave_run.
class WavePart final : public resil::Checkpointable {
 public:
  WavePart(const SurvivableWaveConfig& cfg, int part,
           const std::function<double(double, double, double)>& u0)
      : cfg_(cfg),
        part_(part),
        lnx_(cfg.nx / static_cast<std::size_t>(cfg.workers)),
        my_(cfg.ny + 4),
        mz_(cfg.nz + 4),
        plane_(my_ * mz_),
        mx_(lnx_ + 4),
        first_(part == 0),
        last_(part + 1 == cfg.workers) {
    const double h = cfg.length / static_cast<double>(cfg.nx + 1);
    const double dt =
        cfg.dt_factor * 0.5 * h / (cfg.c * std::sqrt(3.0) * 1.16);
    cdt2_ = cfg.c * cfg.c * dt * dt;
    ih2_ = 1.0 / (h * h);
    u_.assign(mx_ * plane_, 0.0);
    up_.assign(mx_ * plane_, 0.0);
    un_.assign(mx_ * plane_, 0.0);
    for (std::size_t a = 2; a < lnx_ + 2; ++a) {
      const std::size_t gi =
          static_cast<std::size_t>(part_) * lnx_ + (a - 2);
      const double x = h * static_cast<double>(gi + 1);
      for (std::size_t j = 0; j < cfg.ny; ++j) {
        for (std::size_t k = 0; k < cfg.nz; ++k) {
          u_[idx(a, j + 2, k + 2)] =
              u0(x, h * double(j + 1), h * double(k + 1));
        }
      }
    }
  }

  void save_state(std::vector<double>& out) const override {
    out.clear();
    out.reserve(2 * u_.size());
    out.insert(out.end(), u_.begin(), u_.end());
    out.insert(out.end(), up_.begin(), up_.end());
  }

  void restore_state(const std::vector<double>& in) override {
    const std::size_t m = u_.size();
    std::copy(in.begin(), in.begin() + static_cast<long>(m), u_.begin());
    std::copy(in.begin() + static_cast<long>(m), in.end(), up_.begin());
    // un_ is scratch: every entry read in a step is written first.
  }

  bool first() const { return first_; }
  bool last() const { return last_; }

  void fill_yz_walls() {
    for (std::size_t a = 0; a < mx_; ++a) {
      for (std::size_t k = 0; k < mz_; ++k) {
        u_[idx(a, 1, k)] = 0.0;
        u_[idx(a, 0, k)] = -u_[idx(a, 2, k)];
        u_[idx(a, my_ - 2, k)] = 0.0;
        u_[idx(a, my_ - 1, k)] = -u_[idx(a, my_ - 3, k)];
      }
      for (std::size_t j = 0; j < my_; ++j) {
        u_[idx(a, j, 1)] = 0.0;
        u_[idx(a, j, 0)] = -u_[idx(a, j, 2)];
        u_[idx(a, j, mz_ - 2)] = 0.0;
        u_[idx(a, j, mz_ - 1)] = -u_[idx(a, j, mz_ - 3)];
      }
    }
  }

  void fill_x_walls() {
    if (first_) {
      for (std::size_t p = 0; p < plane_; ++p) {
        u_[1 * plane_ + p] = 0.0;
        u_[0 * plane_ + p] = -u_[2 * plane_ + p];
      }
    }
    if (last_) {
      for (std::size_t p = 0; p < plane_; ++p) {
        u_[(lnx_ + 2) * plane_ + p] = 0.0;
        u_[(lnx_ + 3) * plane_ + p] = -u_[(lnx_ + 1) * plane_ + p];
      }
    }
  }

  /// Both planes toward the left neighbor (its right ghosts), aggregated.
  std::vector<double> pack_to_left() const {
    return pack(2 * plane_, 3 * plane_);
  }
  std::vector<double> pack_to_right() const {
    return pack(lnx_ * plane_, (lnx_ + 1) * plane_);
  }
  void unpack_from_left(const std::vector<double>& v) {
    unpack(v, 0, plane_);
  }
  void unpack_from_right(const std::vector<double>& v) {
    unpack(v, (lnx_ + 2) * plane_, (lnx_ + 3) * plane_);
  }

  /// Step 0: Taylor backstep for u_prev (v0 = 0). No swap.
  void taylor(core::ExecContext& ctx) {
    sweep(ctx, [&](std::size_t id) {
      up_[id] = u_[id] + 0.5 * cdt2_ * lap_at(id);
    });
  }

  /// One leapfrog step, then rotate the buffers.
  void leapfrog(core::ExecContext& ctx) {
    sweep(ctx, [&](std::size_t id) {
      un_[id] = 2.0 * u_[id] - up_[id] + cdt2_ * lap_at(id);
    });
    std::swap(up_, u_);
    std::swap(u_, un_);
  }

  /// Copies the interior slab into the global x-major field.
  void gather(std::vector<double>& field) const {
    for (std::size_t a = 2; a < lnx_ + 2; ++a) {
      const std::size_t gi =
          static_cast<std::size_t>(part_) * lnx_ + (a - 2);
      for (std::size_t j = 0; j < cfg_.ny; ++j) {
        for (std::size_t k = 0; k < cfg_.nz; ++k) {
          field[(gi * cfg_.ny + j) * cfg_.nz + k] = u_[idx(a, j + 2, k + 2)];
        }
      }
    }
  }

 private:
  std::size_t idx(std::size_t a, std::size_t j, std::size_t k) const {
    return (a * my_ + j) * mz_ + k;
  }

  double lap_at(std::size_t id) const {
    const std::size_t si = plane_, sj = mz_;
    const double lx = kC2 * (u_[id - 2 * si] + u_[id + 2 * si]) +
                      kC1 * (u_[id - si] + u_[id + si]) + kC0 * u_[id];
    const double ly = kC2 * (u_[id - 2 * sj] + u_[id + 2 * sj]) +
                      kC1 * (u_[id - sj] + u_[id + sj]) + kC0 * u_[id];
    const double lz = kC2 * (u_[id - 2] + u_[id + 2]) +
                      kC1 * (u_[id - 1] + u_[id + 1]) + kC0 * u_[id];
    return (lx + ly + lz) * ih2_;
  }

  template <typename Upd>
  void sweep(core::ExecContext& ctx, Upd&& upd) {
    for (std::size_t a = 2; a < lnx_ + 2; ++a) {
      for (std::size_t j = 2; j < cfg_.ny + 2; ++j) {
        for (std::size_t k = 2; k < cfg_.nz + 2; ++k) {
          upd(idx(a, j, k));
        }
      }
    }
    const auto n = static_cast<double>(lnx_ * cfg_.ny * cfg_.nz);
    ctx.record_kernel({kFlopsPerPoint * n, kBytesPerPoint * n});
  }

  std::vector<double> pack(std::size_t p0, std::size_t p1) const {
    std::vector<double> v;
    v.reserve(2 * plane_);
    v.insert(v.end(), u_.begin() + static_cast<long>(p0),
             u_.begin() + static_cast<long>(p0 + plane_));
    v.insert(v.end(), u_.begin() + static_cast<long>(p1),
             u_.begin() + static_cast<long>(p1 + plane_));
    return v;
  }

  void unpack(const std::vector<double>& v, std::size_t p0, std::size_t p1) {
    std::copy(v.begin(), v.begin() + static_cast<long>(plane_),
              u_.begin() + static_cast<long>(p0));
    std::copy(v.begin() + static_cast<long>(plane_), v.end(),
              u_.begin() + static_cast<long>(p1));
  }

  const SurvivableWaveConfig& cfg_;
  int part_;
  std::size_t lnx_, my_, mz_, plane_, mx_;
  bool first_, last_;
  double cdt2_ = 0.0, ih2_ = 0.0;
  std::vector<double> u_, up_, un_;
};

WavePart& wave(phoenix::RankContext& rc, int p) {
  return static_cast<WavePart&>(rc.part(p));
}

}  // namespace

SurvivableWaveResult survivable_wave_run(
    const SurvivableWaveConfig& cfg,
    const std::function<double(double, double, double)>& u0) {
  if (cfg.workers < 1 ||
      cfg.nx % static_cast<std::size_t>(cfg.workers) != 0) {
    throw std::invalid_argument(
        "survivable_wave_run: nx must divide by workers");
  }
  SurvivableWaveResult result;
  const double h = cfg.length / static_cast<double>(cfg.nx + 1);
  result.dt = cfg.dt_factor * 0.5 * h / (cfg.c * std::sqrt(3.0) * 1.16);
  result.field.assign(cfg.nx * cfg.ny * cfg.nz, 0.0);
  std::mutex field_mtx;

  phoenix::SurvivableConfig pc;
  pc.workers = cfg.workers;
  pc.spares = cfg.spares;
  pc.policy = cfg.policy;
  pc.steps = cfg.steps + 1;  // step 0 is the Taylor backstep
  pc.ckpt_every = cfg.ckpt_every;
  pc.mpi = cfg.mpi;
  pc.node = cfg.node;
  pc.log = cfg.log;
  pc.metrics = cfg.metrics;
  pc.trace_ranks = cfg.trace_ranks;
  pc.fault_hook = cfg.fault_hook;

  phoenix::SurvivableHooks hooks;
  hooks.make = [&cfg, &u0](phoenix::RankContext&, int part) {
    return std::make_unique<WavePart>(cfg, part, u0);
  };
  hooks.step = [&cfg](phoenix::RankContext& rc, int step) {
    core::ExecContext& ctx = rc.ctx();
    if (cfg.trace_ranks) ctx.set_phase("stencil");
    for (int p : rc.owned()) wave(rc, p).fill_yz_walls();
    rc.log_compute();
    if (cfg.trace_ranks) ctx.set_phase("halo");
    // All sends posted (eager) before any receive blocks: deadlock-free
    // under any part->rank mapping, including a shrunken world where one
    // rank owns both ends of an exchange (those short-circuit locally).
    for (int p : rc.owned()) {
      WavePart& w = wave(rc, p);
      if (!w.first()) rc.part_send(p, p - 1, kChanLeft, w.pack_to_left());
      if (!w.last()) rc.part_send(p, p + 1, kChanRight, w.pack_to_right());
    }
    for (int p : rc.owned()) {
      WavePart& w = wave(rc, p);
      if (!w.first()) w.unpack_from_left(rc.part_recv(p - 1, p, kChanRight));
      if (!w.last()) w.unpack_from_right(rc.part_recv(p + 1, p, kChanLeft));
    }
    if (cfg.trace_ranks) ctx.set_phase("stencil");
    for (int p : rc.owned()) {
      WavePart& w = wave(rc, p);
      w.fill_x_walls();
      if (step == 0) {
        w.taylor(ctx);
      } else {
        w.leapfrog(ctx);
      }
    }
    rc.log_compute();
  };
  hooks.finish = [&result, &field_mtx](phoenix::RankContext& rc) {
    std::lock_guard<std::mutex> lk(field_mtx);
    for (int p : rc.owned()) wave(rc, p).gather(result.field);
  };

  result.report = phoenix::run_survivable(pc, hooks);
  if (cfg.cluster != nullptr && cfg.log != nullptr) {
    result.modeled = net::reprice(*cfg.log, *cfg.cluster, cfg.workers);
  }
  return result;
}

}  // namespace coe::stencil
