#include "stencil/distributed.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>

#include "core/exec.hpp"

namespace coe::stencil {

namespace {

constexpr double kC0 = -30.0 / 12.0;
constexpr double kC1 = 16.0 / 12.0;
constexpr double kC2 = -1.0 / 12.0;

// Per-point cost of the fused Laplacian + leapfrog update, matching the
// serial WaveSolver pricing (5-point MACs per axis + time update; 13
// stencil loads, u_prev load, u_next store).
constexpr double kFlopsPerPoint = 38.0;
constexpr double kBytesPerPoint = 120.0;

}  // namespace

DistributedWaveResult distributed_wave_run(
    int ranks, const DistributedWaveConfig& cfg,
    const std::function<double(double, double, double)>& u0) {
  assert(cfg.nx % static_cast<std::size_t>(ranks) == 0);
  const std::size_t lnx = cfg.nx / static_cast<std::size_t>(ranks);
  const std::size_t my = cfg.ny + 4, mz = cfg.nz + 4;
  const std::size_t plane = my * mz;
  const double h = cfg.length / static_cast<double>(cfg.nx + 1);
  const double dt =
      cfg.dt_factor * 0.5 * h / (cfg.c * std::sqrt(3.0) * 1.16);
  const double cdt2 = cfg.c * cfg.c * dt * dt;
  const double ih2 = 1.0 / (h * h);

  DistributedWaveResult result;
  result.dt = dt;
  result.field.assign(cfg.nx * cfg.ny * cfg.nz, 0.0);

  net::NetLog local_log;
  net::NetLog& netlog = cfg.log ? *cfg.log : local_log;
  std::mutex stats_mtx;
  if (cfg.trace_ranks) {
    result.rank_traces.resize(static_cast<std::size_t>(ranks));
  }

  result.traffic = mpi::run(ranks, [&](mpi::Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    // Modeled-cost skew only: every rank still executes identical
    // arithmetic, so the field cannot change.
    const double skew =
        comm.rank() == cfg.skew_rank ? cfg.skew_factor : 1.0;
    const bool first = comm.rank() == 0;
    const bool last = comm.rank() + 1 == ranks;
    const std::size_t mx = lnx + 4;
    std::vector<double> u(mx * plane, 0.0), up(mx * plane, 0.0),
        un(mx * plane, 0.0);
    auto idx = [&](std::size_t a, std::size_t j, std::size_t k) {
      return (a * my + j) * mz + k;
    };

    core::ExecContext ctx(core::Backend::Seq, cfg.node);
    if (cfg.trace_ranks) {
      result.rank_traces[r].set_rank(comm.rank());
      ctx.set_trace(&result.rank_traces[r]);
      ctx.set_phase("stencil");
    }
    net::RankLogger logger((cfg.cluster || cfg.log) ? &netlog : nullptr,
                           comm.rank());
    double logged_sim = 0.0;
    auto log_compute = [&] {
      const double s = ctx.simulated_time();
      logger.compute(s - logged_sim);
      logged_sim = s;
    };

    // Halo plan: the two ghost-deep planes per direction, either one
    // neighbor carrying both faces (aggregated: 1 message per direction)
    // or one single-face neighbor per plane (the legacy 2 messages, with
    // the legacy tags).
    net::HaloPlan halo(&ctx);
    halo.set_logger(logger);
    const int left = comm.rank() - 1, right = comm.rank() + 1;
    if (cfg.aggregate_halos) {
      if (!first) {
        const int nb = halo.add_neighbor(left, /*send=*/30, /*recv=*/31);
        halo.add_send(nb, 2 * plane, plane);
        halo.add_send(nb, 3 * plane, plane);
        halo.add_recv(nb, 0, plane);
        halo.add_recv(nb, plane, plane);
      }
      if (!last) {
        const int nb = halo.add_neighbor(right, /*send=*/31, /*recv=*/30);
        halo.add_send(nb, lnx * plane, plane);
        halo.add_send(nb, (lnx + 1) * plane, plane);
        halo.add_recv(nb, (lnx + 2) * plane, plane);
        halo.add_recv(nb, (lnx + 3) * plane, plane);
      }
    } else {
      if (!first) {
        int nb = halo.add_neighbor(left, 20, 22);
        halo.add_send(nb, 2 * plane, plane);
        halo.add_recv(nb, 0, plane);
        nb = halo.add_neighbor(left, 21, 23);
        halo.add_send(nb, 3 * plane, plane);
        halo.add_recv(nb, plane, plane);
      }
      if (!last) {
        int nb = halo.add_neighbor(right, 22, 20);
        halo.add_send(nb, lnx * plane, plane);
        halo.add_recv(nb, (lnx + 2) * plane, plane);
        nb = halo.add_neighbor(right, 23, 21);
        halo.add_send(nb, (lnx + 1) * plane, plane);
        halo.add_recv(nb, (lnx + 3) * plane, plane);
      }
    }

    // Initial condition on the interior.
    for (std::size_t a = 2; a < lnx + 2; ++a) {
      const std::size_t gi = r * lnx + (a - 2);
      const double x = h * static_cast<double>(gi + 1);
      for (std::size_t j = 0; j < cfg.ny; ++j) {
        for (std::size_t k = 0; k < cfg.nz; ++k) {
          u[idx(a, j + 2, k + 2)] =
              u0(x, h * double(j + 1), h * double(k + 1));
        }
      }
    }

    auto fill_yz_walls = [&] {
      for (std::size_t a = 0; a < mx; ++a) {
        for (std::size_t k = 0; k < mz; ++k) {
          u[idx(a, 1, k)] = 0.0;
          u[idx(a, 0, k)] = -u[idx(a, 2, k)];
          u[idx(a, my - 2, k)] = 0.0;
          u[idx(a, my - 1, k)] = -u[idx(a, my - 3, k)];
        }
        for (std::size_t j = 0; j < my; ++j) {
          u[idx(a, j, 1)] = 0.0;
          u[idx(a, j, 0)] = -u[idx(a, j, 2)];
          u[idx(a, j, mz - 2)] = 0.0;
          u[idx(a, j, mz - 1)] = -u[idx(a, j, mz - 3)];
        }
      }
    };

    // Global x walls: odd reflection (matches the serial solver).
    auto fill_x_walls = [&] {
      if (first) {
        for (std::size_t p = 0; p < plane; ++p) {
          u[1 * plane + p] = 0.0;
          u[0 * plane + p] = -u[2 * plane + p];
        }
      }
      if (last) {
        for (std::size_t p = 0; p < plane; ++p) {
          u[(lnx + 2) * plane + p] = 0.0;
          u[(lnx + 3) * plane + p] = -u[(lnx + 1) * plane + p];
        }
      }
    };

    auto lap_at = [&](std::size_t id) {
      const std::size_t si = plane, sj = mz;
      const double lx = kC2 * (u[id - 2 * si] + u[id + 2 * si]) +
                        kC1 * (u[id - si] + u[id + si]) + kC0 * u[id];
      const double ly = kC2 * (u[id - 2 * sj] + u[id + 2 * sj]) +
                        kC1 * (u[id - sj] + u[id + sj]) + kC0 * u[id];
      const double lz = kC2 * (u[id - 2] + u[id + 2]) +
                        kC1 * (u[id - 1] + u[id + 1]) + kC0 * u[id];
      return (lx + ly + lz) * ih2;
    };

    // Runs `upd` over x-planes [a0, a1) and charges the node model. Every
    // point performs the same arithmetic regardless of which sweep it lands
    // in, so splitting interior from boundary cannot change a single bit.
    auto sweep = [&](std::size_t a0, std::size_t a1, auto&& upd) {
      if (a0 >= a1) return;
      for (std::size_t a = a0; a < a1; ++a) {
        for (std::size_t j = 2; j < cfg.ny + 2; ++j) {
          for (std::size_t k = 2; k < cfg.nz + 2; ++k) {
            upd(idx(a, j, k));
          }
        }
      }
      const auto n =
          static_cast<double>((a1 - a0) * cfg.ny * cfg.nz);
      ctx.record_kernel({kFlopsPerPoint * n * skew, kBytesPerPoint * n * skew});
    };

    // One exchange + update phase. Interior planes [4, lnx) read only
    // locally-owned data (their a +/- 2 neighbors are non-ghost), so with
    // overlap enabled they run between begin() and finish(); the four
    // ghost-adjacent boundary planes run after the halos land.
    const std::size_t int_lo = 4;
    const std::size_t int_hi = std::max<std::size_t>(4, lnx);
    auto comm_step = [&](auto&& upd) {
      fill_yz_walls();
      log_compute();
      if (cfg.trace_ranks) ctx.set_phase("halo");
      halo.begin(comm, u);
      if (cfg.trace_ranks) ctx.set_phase("stencil");
      if (cfg.overlap) sweep(int_lo, int_hi, upd);
      log_compute();
      if (cfg.trace_ranks) ctx.set_phase("halo");
      halo.finish(comm, u);
      if (cfg.trace_ranks) ctx.set_phase("stencil");
      fill_x_walls();
      if (cfg.overlap) {
        sweep(2, std::min<std::size_t>(4, lnx + 2), upd);
        sweep(int_hi, lnx + 2, upd);
      } else {
        sweep(2, lnx + 2, upd);
      }
      log_compute();
    };

    // Taylor backstep for u_prev (v0 = 0).
    comm_step([&](std::size_t id) {
      up[id] = u[id] + 0.5 * cdt2 * lap_at(id);
    });

    for (int s = 0; s < cfg.steps; ++s) {
      comm_step([&](std::size_t id) {
        un[id] = 2.0 * u[id] - up[id] + cdt2 * lap_at(id);
      });
      std::swap(up, u);
      std::swap(u, un);
    }

    // Gather into the shared global field (disjoint slabs: no race).
    for (std::size_t a = 2; a < lnx + 2; ++a) {
      const std::size_t gi = r * lnx + (a - 2);
      for (std::size_t j = 0; j < cfg.ny; ++j) {
        for (std::size_t k = 0; k < cfg.nz; ++k) {
          result.field[(gi * cfg.ny + j) * cfg.nz + k] =
              u[idx(a, j + 2, k + 2)];
        }
      }
    }

    std::lock_guard<std::mutex> lk(stats_mtx);
    result.halo.exchanges += halo.stats().exchanges;
    result.halo.messages += halo.stats().messages;
    result.halo.bytes += halo.stats().bytes;
  });

  if (cfg.cluster != nullptr) {
    result.modeled = net::reprice(netlog, *cfg.cluster, ranks);
  }
  return result;
}

}  // namespace coe::stencil
