#include "stencil/distributed.hpp"

#include <cassert>
#include <cmath>

namespace coe::stencil {

namespace {

constexpr double kC0 = -30.0 / 12.0;
constexpr double kC1 = 16.0 / 12.0;
constexpr double kC2 = -1.0 / 12.0;

}  // namespace

DistributedWaveResult distributed_wave_run(
    int ranks, const DistributedWaveConfig& cfg,
    const std::function<double(double, double, double)>& u0) {
  assert(cfg.nx % static_cast<std::size_t>(ranks) == 0);
  const std::size_t lnx = cfg.nx / static_cast<std::size_t>(ranks);
  const std::size_t my = cfg.ny + 4, mz = cfg.nz + 4;
  const std::size_t plane = my * mz;
  const double h = cfg.length / static_cast<double>(cfg.nx + 1);
  const double dt =
      cfg.dt_factor * 0.5 * h / (cfg.c * std::sqrt(3.0) * 1.16);
  const double cdt2 = cfg.c * cfg.c * dt * dt;
  const double ih2 = 1.0 / (h * h);

  DistributedWaveResult result;
  result.dt = dt;
  result.field.assign(cfg.nx * cfg.ny * cfg.nz, 0.0);

  result.traffic = mpi::run(ranks, [&](mpi::Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const bool first = comm.rank() == 0;
    const bool last = comm.rank() + 1 == ranks;
    const std::size_t mx = lnx + 4;
    std::vector<double> u(mx * plane, 0.0), up(mx * plane, 0.0),
        un(mx * plane, 0.0);
    auto idx = [&](std::size_t a, std::size_t j, std::size_t k) {
      return (a * my + j) * mz + k;
    };

    // Initial condition on the interior.
    for (std::size_t a = 2; a < lnx + 2; ++a) {
      const std::size_t gi = r * lnx + (a - 2);
      const double x = h * static_cast<double>(gi + 1);
      for (std::size_t j = 0; j < cfg.ny; ++j) {
        for (std::size_t k = 0; k < cfg.nz; ++k) {
          u[idx(a, j + 2, k + 2)] =
              u0(x, h * double(j + 1), h * double(k + 1));
        }
      }
    }

    auto fill_yz_walls = [&] {
      for (std::size_t a = 0; a < mx; ++a) {
        for (std::size_t k = 0; k < mz; ++k) {
          u[idx(a, 1, k)] = 0.0;
          u[idx(a, 0, k)] = -u[idx(a, 2, k)];
          u[idx(a, my - 2, k)] = 0.0;
          u[idx(a, my - 1, k)] = -u[idx(a, my - 3, k)];
        }
        for (std::size_t j = 0; j < my; ++j) {
          u[idx(a, j, 1)] = 0.0;
          u[idx(a, j, 0)] = -u[idx(a, j, 2)];
          u[idx(a, j, mz - 2)] = 0.0;
          u[idx(a, j, mz - 1)] = -u[idx(a, j, mz - 3)];
        }
      }
    };

    auto exchange_x = [&] {
      auto plane_of = [&](std::size_t a) {
        return std::vector<double>(u.begin() + std::ptrdiff_t(a * plane),
                                   u.begin() + std::ptrdiff_t((a + 1) * plane));
      };
      auto put_plane = [&](std::size_t a, const std::vector<double>& p) {
        std::copy(p.begin(), p.end(),
                  u.begin() + std::ptrdiff_t(a * plane));
      };
      if (!first) {
        comm.send(comm.rank() - 1, /*tag=*/20, plane_of(2));
        comm.send(comm.rank() - 1, 21, plane_of(3));
      }
      if (!last) {
        comm.send(comm.rank() + 1, 22, plane_of(lnx));
        comm.send(comm.rank() + 1, 23, plane_of(lnx + 1));
      }
      if (!last) {
        put_plane(lnx + 2, comm.recv(comm.rank() + 1, 20));
        put_plane(lnx + 3, comm.recv(comm.rank() + 1, 21));
      }
      if (!first) {
        put_plane(0, comm.recv(comm.rank() - 1, 22));
        put_plane(1, comm.recv(comm.rank() - 1, 23));
      }
      // Global x walls: odd reflection (matches the serial solver).
      if (first) {
        for (std::size_t p = 0; p < plane; ++p) {
          u[1 * plane + p] = 0.0;
          u[0 * plane + p] = -u[2 * plane + p];
        }
      }
      if (last) {
        for (std::size_t p = 0; p < plane; ++p) {
          u[(lnx + 2) * plane + p] = 0.0;
          u[(lnx + 3) * plane + p] = -u[(lnx + 1) * plane + p];
        }
      }
    };

    auto lap_at = [&](std::size_t id) {
      const std::size_t si = plane, sj = mz;
      const double lx = kC2 * (u[id - 2 * si] + u[id + 2 * si]) +
                        kC1 * (u[id - si] + u[id + si]) + kC0 * u[id];
      const double ly = kC2 * (u[id - 2 * sj] + u[id + 2 * sj]) +
                        kC1 * (u[id - sj] + u[id + sj]) + kC0 * u[id];
      const double lz = kC2 * (u[id - 2] + u[id + 2]) +
                        kC1 * (u[id - 1] + u[id + 1]) + kC0 * u[id];
      return (lx + ly + lz) * ih2;
    };

    // Taylor backstep for u_prev (v0 = 0).
    fill_yz_walls();
    exchange_x();
    for (std::size_t a = 2; a < lnx + 2; ++a) {
      for (std::size_t j = 2; j < cfg.ny + 2; ++j) {
        for (std::size_t k = 2; k < cfg.nz + 2; ++k) {
          const std::size_t id = idx(a, j, k);
          up[id] = u[id] + 0.5 * cdt2 * lap_at(id);
        }
      }
    }

    for (int s = 0; s < cfg.steps; ++s) {
      fill_yz_walls();
      exchange_x();
      for (std::size_t a = 2; a < lnx + 2; ++a) {
        for (std::size_t j = 2; j < cfg.ny + 2; ++j) {
          for (std::size_t k = 2; k < cfg.nz + 2; ++k) {
            const std::size_t id = idx(a, j, k);
            un[id] = 2.0 * u[id] - up[id] + cdt2 * lap_at(id);
          }
        }
      }
      std::swap(up, u);
      std::swap(u, un);
    }

    // Gather into the shared global field (disjoint slabs: no race).
    for (std::size_t a = 2; a < lnx + 2; ++a) {
      const std::size_t gi = r * lnx + (a - 2);
      for (std::size_t j = 0; j < cfg.ny; ++j) {
        for (std::size_t k = 0; k < cfg.nz; ++k) {
          result.field[(gi * cfg.ny + j) * cfg.nz + k] =
              u[idx(a, j + 2, k + 2)];
        }
      }
    }
  });
  return result;
}

}  // namespace coe::stencil
