#pragma once
// Distributed SW4-style wave propagation: the serial 4th-order kernel run
// over an x-slab decomposition with 2-deep halo exchange on the coe::mpi
// substrate -- the multi-node structure of the paper's 256-node Hayward
// runs, with real messages between real ranks.
//
// The communication preparation knobs reproduce the paper's scaling work:
// `aggregate_halos` coalesces the two halo planes per direction into one
// message (halving the per-step message count on this 1-D decomposition),
// and `overlap` computes the interior points — which read no ghost data —
// between posting and completing the exchange. Both paths are bit-identical
// in the field they produce; only the modeled communication cost moves,
// which net::reprice quantifies when a ClusterModel is attached.

#include <functional>
#include <vector>

#include "core/machine.hpp"
#include "mpi/comm.hpp"
#include "net/net.hpp"
#include "obs/trace.hpp"

namespace coe::stencil {

struct DistributedWaveConfig {
  std::size_t nx = 32;   ///< global interior points per axis (x divisible
  std::size_t ny = 32;   ///  by the rank count)
  std::size_t nz = 32;
  double length = 1.0;
  double c = 1.0;
  int steps = 20;
  double dt_factor = 0.5;  ///< fraction of the CFL-stable dt

  /// One coalesced message per neighbor per step (both halo planes packed)
  /// instead of one message per plane.
  bool aggregate_halos = true;
  /// Update ghost-independent interior points between halo begin/finish.
  bool overlap = true;
  /// Node model pricing each rank's compute (and the pack/unpack kernels).
  hsim::MachineModel node = hsim::machines::host();
  /// When set, the run's traffic is logged and replayed through
  /// net::reprice against this interconnect (not owned; may be null).
  const hsim::ClusterModel* cluster = nullptr;
  /// When set alongside `cluster`, the raw per-rank traffic log is also
  /// appended here so coe::xray can merge the run offline (the `modeled`
  /// summary alone cannot be merged; not owned, may be null).
  net::NetLog* log = nullptr;

  /// Deliberate compute skew for straggler-hunt experiments: rank
  /// `skew_rank` (when >= 0) models `skew_factor`x the cost per point.
  /// Only the priced workload changes — the arithmetic and the produced
  /// field stay bit-identical to the unskewed run.
  int skew_rank = -1;
  double skew_factor = 1.0;

  /// Collect one rank-stamped obs::TraceBuffer per rank
  /// (result.rank_traces) with "stencil"/"halo" phases, for xray merging.
  bool trace_ranks = false;
};

struct DistributedWaveResult {
  std::vector<double> field;  ///< global interior field, x-major
  mpi::TrafficStats traffic;
  double dt = 0.0;
  net::HaloStats halo;         ///< summed over ranks
  net::RepriceResult modeled;  ///< populated when cfg.cluster is set
  /// Per-rank kernel traces (cfg.trace_ranks): entry r is rank r's buffer,
  /// rank-stamped for the merged Chrome export.
  std::vector<obs::TraceBuffer> rank_traces;
};

/// Runs `ranks` threads, each owning an x-slab with zero-Dirichlet global
/// walls (odd-reflection ghosts) and neighbor halos exchanged every step.
/// The initial condition is a function of physical position.
DistributedWaveResult distributed_wave_run(
    int ranks, const DistributedWaveConfig& cfg,
    const std::function<double(double, double, double)>& u0);

}  // namespace coe::stencil
