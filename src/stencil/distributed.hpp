#pragma once
// Distributed SW4-style wave propagation: the serial 4th-order kernel run
// over an x-slab decomposition with 2-deep halo exchange on the coe::mpi
// substrate -- the multi-node structure of the paper's 256-node Hayward
// runs, with real messages between real ranks.

#include <functional>
#include <vector>

#include "core/machine.hpp"
#include "mpi/comm.hpp"

namespace coe::stencil {

struct DistributedWaveConfig {
  std::size_t nx = 32;   ///< global interior points per axis (x divisible
  std::size_t ny = 32;   ///  by the rank count)
  std::size_t nz = 32;
  double length = 1.0;
  double c = 1.0;
  int steps = 20;
  double dt_factor = 0.5;  ///< fraction of the CFL-stable dt
};

struct DistributedWaveResult {
  std::vector<double> field;  ///< global interior field, x-major
  mpi::TrafficStats traffic;
  double dt = 0.0;
};

/// Runs `ranks` threads, each owning an x-slab with zero-Dirichlet global
/// walls (odd-reflection ghosts) and neighbor halos exchanged every step.
/// The initial condition is a function of physical position.
DistributedWaveResult distributed_wave_run(
    int ranks, const DistributedWaveConfig& cfg,
    const std::function<double(double, double, double)>& u0);

}  // namespace coe::stencil
