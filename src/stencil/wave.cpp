#include "stencil/wave.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "prof/span.hpp"

namespace coe::stencil {

double PointSource::value(double t) const {
  // Ricker wavelet.
  const double arg = M_PI * freq * (t - t0);
  return amplitude * (1.0 - 2.0 * arg * arg) * std::exp(-arg * arg);
}

WaveSolver::WaveSolver(core::ExecContext& ctx, std::size_t nx, std::size_t ny,
                       std::size_t nz, double length, double c,
                       WaveOptions opts)
    : ctx_(&ctx), nx_(nx), ny_(ny), nz_(nz),
      h_(length / static_cast<double>(nx + 1)), c_(c), opts_(opts),
      c_max_(c) {
  const std::size_t total = (nx_ + 4) * (ny_ + 4) * (nz_ + 4);
  u_.assign(total, 0.0);
  u_prev_.assign(total, 0.0);
  u_next_.assign(total, 0.0);
  lap_.assign(total, 0.0);
  shake_.assign(nx_ * ny_, 0.0);
}

double WaveSolver::stable_dt() const {
  // 4th-order stencil CFL in 3D; 0.5 safety; heterogeneous media use the
  // fastest material.
  return 0.5 * h_ / (c_max_ * std::sqrt(3.0) * 1.16);
}

void WaveSolver::set_wave_speed(
    const std::function<double(double, double, double)>& c) {
  c2_field_.assign(u_.size(), c_ * c_);
  c_max_ = 0.0;
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t k = 0; k < nz_; ++k) {
        const double x = h_ * static_cast<double>(i + 1);
        const double y = h_ * static_cast<double>(j + 1);
        const double z = h_ * static_cast<double>(k + 1);
        const double ci = c(x, y, z);
        c2_field_[idx(i + 2, j + 2, k + 2)] = ci * ci;
        c_max_ = std::max(c_max_, ci);
      }
    }
  }
}

void WaveSolver::set_initial(
    const std::function<double(double, double, double)>& u0,
    const std::function<double(double, double, double)>& v0, double dt) {
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t k = 0; k < nz_; ++k) {
        const double x = h_ * static_cast<double>(i + 1);
        const double y = h_ * static_cast<double>(j + 1);
        const double z = h_ * static_cast<double>(k + 1);
        const std::size_t id = idx(i + 2, j + 2, k + 2);
        u_[id] = u0(x, y, z);
        u_prev_[id] = u_[id] - dt * v0(x, y, z);
      }
    }
  }
  // Second-order Taylor backstep: u(-dt) ~= u0 - dt v0 + dt^2/2 c^2 lap u0.
  fill_ghosts();
  const double c0 = -30.0 / 12.0, c1 = 16.0 / 12.0, c2 = -1.0 / 12.0;
  const double ih2 = 1.0 / (h_ * h_);
  const std::size_t sj = nz_ + 4;
  const std::size_t si = (ny_ + 4) * (nz_ + 4);
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t k = 0; k < nz_; ++k) {
        const std::size_t id = idx(i + 2, j + 2, k + 2);
        const double lap =
            (c2 * (u_[id - 2 * si] + u_[id + 2 * si]) +
             c1 * (u_[id - si] + u_[id + si]) +
             c2 * (u_[id - 2 * sj] + u_[id + 2 * sj]) +
             c1 * (u_[id - sj] + u_[id + sj]) +
             c2 * (u_[id - 2] + u_[id + 2]) +
             c1 * (u_[id - 1] + u_[id + 1]) + 3.0 * c0 * u_[id]) *
            ih2;
        u_prev_[id] += 0.5 * dt * dt * c_ * c_ * lap;
      }
    }
  }
}

double WaveSolver::bytes_per_point() const {
  // (heterogeneous media add one c^2 load per point, charged below)
  // Naive: 13 stencil loads miss cache for 3 of 5 planes per axis, plus
  // u_prev load and u_next store. Tiled: each value loaded ~once from main
  // memory (plus prev/next traffic).
  const double naive = (13.0 + 1.0 + 1.0) * 8.0;
  const double tiled = (1.3 + 1.0 + 1.0) * 8.0;
  double b = opts_.tiled ? tiled : naive;
  if (!opts_.fused) b += 2.0 * 8.0;  // extra lap write + read round trip
  return b;
}

double WaveSolver::flops_per_point() const {
  return 3.0 * 10.0 + 8.0;  // 5-point MACs per axis + time update
}

void WaveSolver::fill_ghosts() {
  // Zero Dirichlet walls sit between the ghost frame and the interior
  // (array index 1 along each axis); odd reflection keeps the 4th-order
  // stencil accurate at the boundary.
  const std::size_t mx = nx_ + 4, my = ny_ + 4, mz = nz_ + 4;
  for (std::size_t j = 0; j < my; ++j) {
    for (std::size_t k = 0; k < mz; ++k) {
      u_[idx(1, j, k)] = 0.0;
      u_[idx(0, j, k)] = -u_[idx(2, j, k)];
      u_[idx(mx - 2, j, k)] = 0.0;
      u_[idx(mx - 1, j, k)] = -u_[idx(mx - 3, j, k)];
    }
  }
  for (std::size_t i = 0; i < mx; ++i) {
    for (std::size_t k = 0; k < mz; ++k) {
      u_[idx(i, 1, k)] = 0.0;
      u_[idx(i, 0, k)] = -u_[idx(i, 2, k)];
      u_[idx(i, my - 2, k)] = 0.0;
      u_[idx(i, my - 1, k)] = -u_[idx(i, my - 3, k)];
    }
  }
  for (std::size_t i = 0; i < mx; ++i) {
    for (std::size_t j = 0; j < my; ++j) {
      u_[idx(i, j, 1)] = 0.0;
      u_[idx(i, j, 0)] = -u_[idx(i, j, 2)];
      u_[idx(i, j, mz - 2)] = 0.0;
      u_[idx(i, j, mz - 1)] = -u_[idx(i, j, mz - 3)];
    }
  }
}

void WaveSolver::apply_laplacian_and_update(double dt) {
  const double c0 = -30.0 / 12.0, c1 = 16.0 / 12.0, c2 = -1.0 / 12.0;
  const double ih2 = 1.0 / (h_ * h_);
  const double cdt2_const = c_ * c_ * dt * dt;
  const double dt2 = dt * dt;
  const bool hetero = heterogeneous();
  const std::size_t sj = nz_ + 4;
  const std::size_t si = (ny_ + 4) * (nz_ + 4);

  // The RAJA path runs the same numerics at a modeled ~30% overhead.
  const double abstraction = opts_.raja_abstraction ? 1.3 : 1.0;

  auto lap_at = [&](std::size_t id) {
    const double lx = c2 * (u_[id - 2 * si] + u_[id + 2 * si]) +
                      c1 * (u_[id - si] + u_[id + si]) + c0 * u_[id];
    const double ly = c2 * (u_[id - 2 * sj] + u_[id + 2 * sj]) +
                      c1 * (u_[id - sj] + u_[id + sj]) + c0 * u_[id];
    const double lz = c2 * (u_[id - 2] + u_[id + 2]) +
                      c1 * (u_[id - 1] + u_[id + 1]) + c0 * u_[id];
    return (lx + ly + lz) * ih2;
  };

  auto cdt2_at = [&](std::size_t id) {
    return hetero ? c2_field_[id] * dt2 : cdt2_const;
  };
  if (opts_.fused) {
    // One kernel via the fusion builder: Laplacian + leapfrog update in a
    // single launch, the per-point lap store+reload elided. The stage
    // workloads sum (after elision) to exactly `w`, the same total the
    // hand-fused kernel charged, so the optimization ladder is unchanged.
    const hsim::Workload w_lap{
        abstraction * (flops_per_point() - 8.0),
        abstraction * (bytes_per_point() - 16.0 + (hetero ? 8.0 : 0.0))};
    const hsim::Workload w_upd{abstraction * 8.0, abstraction * 32.0};
    ctx_->fused3(nx_, ny_, nz_)
        .then(w_lap,
              [&](std::size_t i, std::size_t j, std::size_t k) {
                const std::size_t id = idx(i + 2, j + 2, k + 2);
                lap_[id] = lap_at(id);
              })
        .then(w_upd,
              [&](std::size_t i, std::size_t j, std::size_t k) {
                const std::size_t id = idx(i + 2, j + 2, k + 2);
                u_next_[id] =
                    2.0 * u_[id] - u_prev_[id] + cdt2_at(id) * lap_[id];
              })
        .elide(abstraction * 16.0)
        .launch();
  } else {
    // Two kernels with an intermediate array (the unfused baseline).
    const hsim::Workload w1{flops_per_point() - 8.0, bytes_per_point() - 16.0};
    ctx_->forall3(nx_, ny_, nz_, w1, [&](std::size_t i, std::size_t j,
                                         std::size_t k) {
      const std::size_t id = idx(i + 2, j + 2, k + 2);
      lap_[id] = lap_at(id);
    });
    ctx_->forall3(nx_, ny_, nz_, {8.0, 32.0}, [&](std::size_t i,
                                                  std::size_t j,
                                                  std::size_t k) {
      const std::size_t id = idx(i + 2, j + 2, k + 2);
      u_next_[id] = 2.0 * u_[id] - u_prev_[id] + cdt2_at(id) * lap_[id];
    });
  }
}

void WaveSolver::apply_forcing(double dt, bool skip_transfer) {
  if (sources_.empty()) return;
  const double dt2 = dt * dt;
  if (!opts_.forcing_on_device && !skip_transfer) {
    // Host computes the source values and ships them over per step. The
    // host-side write marks the staging buffer dirty so an attached arena
    // never elides this genuinely-fresh upload.
    const double b = static_cast<double>(sources_.size()) * 16.0;
    ctx_->touch_host("wave.forcing", b, core::MemAccess::Write);
    ctx_->upload("wave.forcing", b);
  }
  ctx_->forall(sources_.size(), {20.0, 48.0}, [&](std::size_t s) {
    const auto& src = sources_[s];
    u_next_[idx(src.i + 2, src.j + 2, src.k + 2)] +=
        dt2 * src.value(t_ + dt);
  });
}

void WaveSolver::step(double dt) {
  // Streamed mode reproduces SW4's forcing-offload overlap: the upload of
  // host-computed source values rides stream 1 concurrently with the
  // stencil on stream 0; only the forcing kernel (which touches u_next_)
  // waits on it.
  const bool stream_offload =
      opts_.use_streams && !opts_.forcing_on_device && !sources_.empty();
  prof::Scope step_span(opts_.profiler, ctx_, "wave_step");
  // Declare the step's device working set to the residency arena (no-op
  // without one): the three rotating fields plus the Laplacian scratch, and
  // the c^2 field when the medium is heterogeneous. Under an over-committed
  // arena these touches trigger priced evictions/refaults.
  const double fb = static_cast<double>(u_.size()) * 8.0;
  ctx_->touch_device("wave.u", fb, core::MemAccess::Read);
  ctx_->touch_device("wave.u_prev", fb, core::MemAccess::Read);
  ctx_->touch_device("wave.u_next", fb, core::MemAccess::Write);
  if (!opts_.fused) ctx_->touch_device("wave.lap", fb, core::MemAccess::Write);
  if (heterogeneous())
    ctx_->touch_device("wave.c2", fb, core::MemAccess::Read);
  core::ExecContext::StreamEvent upload_done{};
  if (stream_offload) {
    prof::Scope s(opts_.profiler, ctx_, "forcing_upload");
    ctx_->stream(1);
    const double b = static_cast<double>(sources_.size()) * 16.0;
    ctx_->touch_host("wave.forcing", b, core::MemAccess::Write);
    ctx_->upload("wave.forcing", b);
    upload_done = ctx_->record_event();
    ctx_->stream(0);
  }
  {
    prof::Scope s(opts_.profiler, ctx_, "stencil");
    apply_laplacian_and_update(dt);
  }
  {
    prof::Scope s(opts_.profiler, ctx_, "forcing");
    if (stream_offload) ctx_->wait_event(upload_done);
    apply_forcing(dt, /*skip_transfer=*/stream_offload);
  }
  std::swap(u_prev_, u_);
  std::swap(u_, u_next_);
  // Refresh the ghost shell of the field that just rotated in. Doing this at
  // the end of the step (rather than at the start of the stencil) keeps the
  // logical state Markov: u's ghosts are always a function of its own
  // interior, never stale bytes inherited from the scratch buffer's previous
  // rotation. Checkpoint/restore plus replay is then bitwise reproducible.
  fill_ghosts();
  t_ += dt;
  ++steps_;
  // Track the surface (k = 0 plane) shake map.
  auto shake = [&](std::size_t i, std::size_t j) {
    const double v = std::abs(u_[idx(i + 2, j + 2, 2)]);
    double& m = shake_[i * ny_ + j];
    if (v > m) m = v;
  };
  prof::Scope shake_span(opts_.profiler, ctx_, "shake");
  ctx_->touch_device("wave.shake",
                     static_cast<double>(shake_.size()) * 8.0,
                     core::MemAccess::Write);
  if (opts_.use_streams) {
    // The shake map only reads the settled field, so on its own stream it
    // overlaps the NEXT step's stencil instead of extending the critical
    // path; the event keeps it ordered after this step's forcing.
    const auto field_done = ctx_->record_event();
    ctx_->stream(2);
    ctx_->wait_event(field_done);
    ctx_->forall2(nx_, ny_, {2.0, 24.0}, shake);
    ctx_->stream(0);
  } else {
    ctx_->forall2(nx_, ny_, {2.0, 24.0}, shake);
  }
}

double WaveSolver::at(std::size_t i, std::size_t j, std::size_t k) const {
  return u_[idx(i + 2, j + 2, k + 2)];
}

double WaveSolver::max_abs() const {
  double m = 0.0;
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t k = 0; k < nz_; ++k) {
        m = std::max(m, std::abs(at(i, j, k)));
      }
    }
  }
  return m;
}

double WaveSolver::field_norm2() {
  auto& u = u_;
  auto& up = u_prev_;
  return ctx_->reduce_sum(u.size(), {4.0, 16.0}, [&](std::size_t i) {
    return u[i] * u[i] + up[i] * up[i];
  });
}

std::vector<std::pair<std::string, std::span<double>>>
WaveSolver::sdc_targets() {
  return {{"wave.u", std::span<double>(u_)},
          {"wave.u_prev", std::span<double>(u_prev_)}};
}

void WaveSolver::save_state(std::vector<double>& out) const {
  out.clear();
  out.reserve(2 + u_.size() + u_prev_.size() + shake_.size());
  out.push_back(t_);
  out.push_back(static_cast<double>(steps_));
  out.insert(out.end(), u_.begin(), u_.end());
  out.insert(out.end(), u_prev_.begin(), u_prev_.end());
  out.insert(out.end(), shake_.begin(), shake_.end());
}

void WaveSolver::restore_state(const std::vector<double>& in) {
  const double* c = in.data();
  t_ = *c++;
  steps_ = static_cast<std::size_t>(*c++);
  std::copy(c, c + u_.size(), u_.begin());
  c += u_.size();
  std::copy(c, c + u_prev_.size(), u_prev_.begin());
  c += u_prev_.size();
  std::copy(c, c + shake_.size(), shake_.begin());
}

double halo_exchange_time(const hsim::ClusterModel& net, std::size_t n) {
  // Six faces, 2-deep ghosts, 8-byte values; sends overlap in 3 phases.
  const double face_bytes = 2.0 * 8.0 * static_cast<double>(n) *
                            static_cast<double>(n);
  return 3.0 * 2.0 * net.p2p(static_cast<std::size_t>(face_bytes));
}

}  // namespace coe::stencil
