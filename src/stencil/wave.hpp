#pragma once
// sw4lite: the seismic-wave proxy kernel (Section 4.9). Solves the scalar
// wave equation u_tt = c^2 lap(u) + f on a 3D grid with a 4th-order
// spatial stencil and 2nd-order leapfrog in time. The optimization knobs
// mirror the sw4lite GPU work:
//
//  * tiled            -- shared-memory/cache-blocked stencil: same numerics,
//                        far less main-memory traffic ("improved ... almost
//                        2X using fast on-chip shared memory").
//  * fused            -- merge the Laplacian and time-update kernels
//                        ("merging small GPU kernels into larger ones").
//  * forcing_on_device - compute the source term on the device instead of
//                        computing it on the host and copying it over
//                        ("offloading the forcing computation ... 2X").

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/exec.hpp"
#include "core/view.hpp"
#include "core/machine.hpp"
#include "resil/checkpoint.hpp"

namespace coe::prof {
class Profiler;
}

namespace coe::stencil {

struct WaveOptions {
  bool tiled = false;
  bool fused = true;
  bool forcing_on_device = true;
  /// Models the RAJA-vs-CUDA abstraction penalty the SW4 team measured
  /// ("approximately 30%"): same numerics, 1.3x modeled kernel cost.
  bool raja_abstraction = false;
  /// Issue the per-step work onto simulated streams: the host-forcing
  /// upload rides stream 1 and hides under the stencil, and the shake-map
  /// kernel rides stream 2 so it overlaps the next step's stencil instead
  /// of extending the critical path. Accounting-only — the numerics and
  /// their order are untouched, so fields are bitwise identical.
  bool use_streams = false;
  /// Optional span sink: when set, each step() wraps its stages in
  /// "wave_step" / "forcing_upload" / "stencil" / "forcing" / "shake"
  /// prof::Scope regions.
  prof::Profiler* profiler = nullptr;
};

/// A Ricker-like point source at a grid location.
struct PointSource {
  std::size_t i = 0, j = 0, k = 0;
  double amplitude = 1.0;
  double freq = 1.0;
  double t0 = 1.0;

  double value(double t) const;
};

class WaveSolver : public resil::Checkpointable {
 public:
  /// Interior grid n^3 on [0, L]^3, zero Dirichlet boundary, wave speed c.
  WaveSolver(core::ExecContext& ctx, std::size_t nx, std::size_t ny,
             std::size_t nz, double length, double c,
             WaveOptions opts = WaveOptions{});

  std::size_t nx() const { return nx_; }
  double h() const { return h_; }
  /// CFL-stable timestep (with safety factor).
  double stable_dt() const;

  /// Sets u(x, 0) and u_t(x, 0) from functions of position.
  void set_initial(const std::function<double(double, double, double)>& u0,
                   const std::function<double(double, double, double)>& v0,
                   double dt);

  /// Heterogeneous material: wave speed as a function of position (the
  /// paper's follow-on work, "model slower wave speeds"). Overrides the
  /// constant speed; stable_dt() then uses the maximum speed.
  void set_wave_speed(
      const std::function<double(double, double, double)>& c);
  bool heterogeneous() const { return !c2_field_.empty(); }

  void add_source(PointSource src) { sources_.push_back(src); }

  /// Advances one timestep of size dt.
  void step(double dt);

  double time() const { return t_; }
  std::size_t steps_taken() const { return steps_; }

  /// Current field value at interior grid point (i, j, k), 0-based.
  double at(std::size_t i, std::size_t j, std::size_t k) const;
  /// Max |u| over the grid.
  double max_abs() const;
  /// Priced ||u||^2 + ||u_prev||^2 over the ghosted arrays — the energy
  /// proxy coe::guard's drift/bound detectors monitor (a flipped exponent
  /// bit anywhere in the leapfrog state moves it violently; legitimate
  /// per-step evolution moves it smoothly).
  double field_norm2();
  /// Named views of the live leapfrog state (u, u_prev) for SDC targeting
  /// and checksum scrubbing. u_next/lap are per-step scratch — corruption
  /// there dies at the next step, so they are not exposed.
  std::vector<std::pair<std::string, std::span<double>>> sdc_targets();
  /// Surface slice |u| maxima over time -- the "shake map" (Figure 7).
  std::span<const double> shake_map() const { return shake_; }

  /// Model data: bytes touched per grid point for the current options.
  double bytes_per_point() const;
  double flops_per_point() const;

  /// Checkpointable: the leapfrog state (u, u_prev), the shake map, and
  /// the clock. Sources and material fields are configuration, not state.
  /// step() refreshes u's ghost shell after the buffer rotation, so the
  /// saved blob is Markov — restore + replay is bitwise reproducible even
  /// though the scratch buffer is not captured.
  void save_state(std::vector<double>& out) const override;
  void restore_state(const std::vector<double>& in) override;

 private:
  std::size_t idx(std::size_t i, std::size_t j, std::size_t k) const {
    return (i * (ny_ + 4) + j) * (nz_ + 4) + k;
  }
  void fill_ghosts();
  void apply_laplacian_and_update(double dt);
  /// `skip_transfer` when the streamed step() already issued the upload.
  void apply_forcing(double dt, bool skip_transfer = false);

  core::ExecContext* ctx_;
  std::size_t nx_, ny_, nz_;
  double h_, c_;
  WaveOptions opts_;
  // Ghosted arrays (2-deep ghosts for the 4th-order stencil).
  std::vector<double> u_, u_prev_, u_next_, lap_;
  std::vector<double> c2_field_;  ///< per-point c^2 (heterogeneous media)
  double c_max_;                  ///< for the CFL bound
  std::vector<double> shake_;
  std::vector<PointSource> sources_;
  double t_ = 0.0;
  std::size_t steps_ = 0;
};

/// Alpha-beta model of one halo exchange for an n^3 block with 2-deep
/// ghosts (six faces, nonblocking pairs).
double halo_exchange_time(const hsim::ClusterModel& net, std::size_t n);

}  // namespace coe::stencil
