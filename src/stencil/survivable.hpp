#pragma once
// Survivable distributed wave (DESIGN.md §17): the distributed.cpp
// 4th-order kernel re-hosted on phoenix::run_survivable. Each logical part
// owns one x-slab; slabs exchange the two ghost-deep halo planes per
// direction as one aggregated part-addressed message per neighbor per step
// and carry (u, u_prev) as their checkpoint blob. Every point performs
// arithmetic identical to distributed_wave_run — the same Taylor backstep,
// leapfrog update, and odd-reflection walls in the same order — so the
// fault-free survivable field matches the distributed one bitwise, and a
// run that rides through a rank kill (restore + replay) matches its own
// fault-free reference bitwise: the acceptance gate of ISSUE 10.

#include <cstddef>
#include <functional>
#include <vector>

#include "core/machine.hpp"
#include "net/reprice.hpp"
#include "phoenix/driver.hpp"

namespace coe::stencil {

struct SurvivableWaveConfig {
  std::size_t nx = 32;  ///< global interior points (x divisible by workers)
  std::size_t ny = 8;
  std::size_t nz = 8;
  double length = 1.0;
  double c = 1.0;
  int steps = 8;  ///< leapfrog steps (the driver adds the Taylor backstep)
  double dt_factor = 0.5;

  int workers = 4;
  int spares = 0;
  phoenix::RepairPolicy policy = phoenix::RepairPolicy::Shrink;
  /// Checkpoint cadence in driver steps (step 0 is the backstep).
  int ckpt_every = 4;

  hsim::MachineModel node = hsim::machines::host();
  /// Replays the logged traffic against this interconnect (not owned).
  const hsim::ClusterModel* cluster = nullptr;
  net::NetLog* log = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  bool trace_ranks = false;
  std::function<bool(int, std::size_t)> fault_hook;
  mpi::RunOptions mpi;
};

struct SurvivableWaveResult {
  std::vector<double> field;  ///< global interior field, x-major
  double dt = 0.0;
  phoenix::SurvivableReport report;
  net::RepriceResult modeled;  ///< populated when cfg.cluster is set
};

/// Runs cfg.workers parts (+ cfg.spares parked spares) under the phoenix
/// driver; survives injected rank kills per cfg.policy.
SurvivableWaveResult survivable_wave_run(
    const SurvivableWaveConfig& cfg,
    const std::function<double(double, double, double)>& u0);

}  // namespace coe::stencil
