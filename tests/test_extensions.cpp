// Tests for the extension features beyond the paper's core evaluation:
// heterogeneous wave speeds (SW4's stated follow-on work), the Data Broker
// (Section 4.4), graph connected components, and the RAJA-overhead model.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/databroker.hpp"
#include "graph/bfs.hpp"
#include "stencil/wave.hpp"

namespace {

using namespace coe;

TEST(HeteroWave, ConstantFieldMatchesHomogeneous) {
  auto run = [](bool hetero) {
    auto ctx = core::make_seq();
    stencil::WaveSolver s(ctx, 11, 11, 11, 1.0, 1.0, {});
    const double dt = 0.5 * s.stable_dt();
    if (hetero) {
      s.set_wave_speed([](double, double, double) { return 1.0; });
    }
    auto u0 = [](double x, double y, double z) {
      return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
    };
    s.set_initial(u0, [](double, double, double) { return 0.0; }, dt);
    for (int k = 0; k < 40; ++k) s.step(dt);
    return s.at(5, 5, 5);
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(HeteroWave, SlowRegionDelaysArrival) {
  // A wave from a source reaches a far probe later when the middle of the
  // domain is slow material ("model slower wave speeds").
  auto arrival_time = [](double mid_speed) {
    auto ctx = core::make_seq();
    stencil::WaveSolver s(ctx, 31, 9, 9, 1.0, 1.0, {});
    s.set_wave_speed([&](double x, double, double) {
      return (x > 0.3 && x < 0.7) ? mid_speed : 1.0;
    });
    stencil::PointSource src;
    src.i = 2;
    src.j = 4;
    src.k = 4;
    src.amplitude = 500.0;
    src.freq = 6.0;
    src.t0 = 0.08;
    s.add_source(src);
    const double dt = s.stable_dt();
    while (s.time() < 2.5) {
      s.step(dt);
      if (std::abs(s.at(28, 4, 4)) > 1e-5) return s.time();
    }
    return 1e9;
  };
  const double fast = arrival_time(1.0);
  const double slow = arrival_time(0.4);
  ASSERT_LT(fast, 1e9);
  ASSERT_LT(slow, 1e9);
  EXPECT_GT(slow, 1.2 * fast);
}

TEST(HeteroWave, CflUsesFastestMaterial) {
  auto ctx = core::make_seq();
  stencil::WaveSolver s(ctx, 9, 9, 9, 1.0, 1.0, {});
  const double dt_before = s.stable_dt();
  s.set_wave_speed([](double x, double, double) {
    return x < 0.5 ? 1.0 : 4.0;
  });
  EXPECT_NEAR(s.stable_dt(), dt_before / 4.0, 1e-12);
}

TEST(RajaOverhead, SameNumericsHigherModeledCost) {
  auto run = [](bool raja) {
    auto ctx = core::make_device();
    stencil::WaveOptions opts;
    opts.raja_abstraction = raja;
    stencil::WaveSolver s(ctx, 33, 33, 33, 1.0, 1.0, opts);
    const double dt = 0.5 * s.stable_dt();
    s.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) *
                 std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, dt);
    for (int k = 0; k < 10; ++k) s.step(dt);
    return std::pair<double, double>(s.at(16, 16, 16), ctx.simulated_time());
  };
  const auto cuda = run(false);
  const auto raja = run(true);
  EXPECT_DOUBLE_EQ(cuda.first, raja.first);  // identical numerics
  // ~30% modeled overhead on the stencil kernel (diluted by shake-map).
  EXPECT_GT(raja.second, 1.05 * cuda.second);
  EXPECT_LT(raja.second, 1.35 * cuda.second);
}

TEST(DataBroker, NamespacesAndRoundTrip) {
  analytics::DataBroker db;
  EXPECT_TRUE(db.create_namespace("lda"));
  EXPECT_FALSE(db.create_namespace("lda"));  // already exists
  EXPECT_TRUE(db.put("lda", "stats/0", {1.0, 2.0, 3.0}));
  EXPECT_FALSE(db.put("nope", "k", {1.0}));  // unknown namespace
  auto v = db.get("lda", "stats/0");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 3u);
  EXPECT_DOUBLE_EQ((*v)[2], 3.0);
  EXPECT_FALSE(db.get("lda", "missing").has_value());
  EXPECT_EQ(db.stats().hits, 1u);
  EXPECT_EQ(db.stats().misses, 1u);
}

TEST(DataBroker, AccountingTracksOverwritesAndErase) {
  analytics::DataBroker db;
  db.create_namespace("ns");
  db.put("ns", "k", std::vector<double>(100, 0.0));
  EXPECT_DOUBLE_EQ(db.stats().live_bytes, 800.0);
  db.put("ns", "k", std::vector<double>(10, 0.0));  // overwrite shrinks
  EXPECT_DOUBLE_EQ(db.stats().live_bytes, 80.0);
  EXPECT_EQ(db.stats().live_objects, 1u);
  EXPECT_TRUE(db.erase("ns", "k"));
  EXPECT_EQ(db.stats().live_objects, 0u);
  EXPECT_DOUBLE_EQ(db.stats().live_bytes, 0.0);
  EXPECT_FALSE(db.erase("ns", "k"));
}

TEST(DataBroker, DropNamespaceReleasesEverything) {
  analytics::DataBroker db;
  db.create_namespace("a");
  db.put("a", "x", {1.0, 2.0});
  db.put("a", "y", {3.0});
  EXPECT_EQ(db.stats().live_objects, 2u);
  EXPECT_TRUE(db.drop_namespace("a"));
  EXPECT_EQ(db.stats().live_objects, 0u);
  EXPECT_TRUE(db.namespaces().empty());
}

TEST(DataBroker, ExchangeBeatsPairwiseShuffleAtScale) {
  // The broker exchange is O(nodes) in wire time vs the O(nodes) *per
  // node* pairwise shuffle: the gap widens with node count.
  const double bytes_per_node = 400e6;
  auto gap_at = [&](int nodes) {
    const auto net = hsim::clusters::sierra(nodes);
    const double shuffle =
        net.alltoall(static_cast<std::size_t>(bytes_per_node /
                                              std::max(nodes - 1, 1)),
                     nodes);
    const double broker =
        analytics::broker_exchange_time(bytes_per_node, net, nodes);
    return shuffle / broker;
  };
  EXPECT_GT(gap_at(256), gap_at(16));
}

TEST(Components, LineAndIslands) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {3, 4}};
  graph::Graph g(6, edges);  // components {0,1,2}, {3,4}, {5}
  auto ctx = core::make_seq();
  auto r = graph::connected_components(ctx, g);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.label[0], r.label[2]);
  EXPECT_EQ(r.label[3], r.label[4]);
  EXPECT_NE(r.label[0], r.label[3]);
  EXPECT_EQ(r.label[5], 5u);
}

TEST(Components, AgreesWithBfsReachability) {
  core::Rng rng(9);
  auto edges = graph::rmat_edges(10, 4, rng);  // sparse: many components
  graph::Graph g(1024, edges);
  auto ctx = core::make_seq();
  auto cc = graph::connected_components(ctx, g);
  // BFS from vertex 0 must reach exactly the vertices sharing 0's label.
  auto bfs = graph::bfs(ctx, g, 0);
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    const bool same_comp = cc.label[v] == cc.label[0];
    const bool reached = bfs.parent[v] >= 0;
    EXPECT_EQ(same_comp, reached) << "vertex " << v;
  }
}

}  // namespace
