// Tests for coe::phoenix (DESIGN.md §17): the distributed checkpoint
// store, the rank-kill injectors, the mpi repair primitives under kills
// swept across every protocol phase, and the survivable wave/MD/CG drivers'
// bitwise ride-through-failure guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include "la/la.hpp"
#include "md/survivable.hpp"
#include "net/net.hpp"
#include "obs/metrics.hpp"
#include "phoenix/phoenix.hpp"
#include "resil/resil.hpp"
#include "stencil/distributed.hpp"
#include "stencil/survivable.hpp"
#include "xray/xray.hpp"

namespace {

using namespace coe;

// ---------------------------------------------------------------------------
// DistributedCheckpointStore units
// ---------------------------------------------------------------------------

TEST(PhoenixStore, TwoPhaseCommitVisibilityAndPrune) {
  phoenix::DistributedCheckpointStore s;
  EXPECT_EQ(s.latest_committed(), phoenix::DistributedCheckpointStore::kNone);

  s.stage(10, 0, 4, {1.0, 2.0});
  // Staged but uncommitted blobs are invisible.
  EXPECT_FALSE(s.has(10, 0));
  EXPECT_EQ(s.latest_committed(), phoenix::DistributedCheckpointStore::kNone);

  s.commit(10);
  EXPECT_TRUE(s.has(10, 0));
  EXPECT_EQ(s.latest_committed(), 10u);

  std::vector<double> out;
  std::size_t step = 0;
  EXPECT_EQ(s.fetch(10, 0, &out, &step),
            phoenix::DistributedCheckpointStore::Fetch::Ok);
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(step, 4u);

  // Double buffering: only the newest two committed generations survive.
  s.stage(20, 0, 8, {3.0});
  s.commit(20);
  s.stage(30, 0, 12, {4.0});
  s.commit(30);
  EXPECT_FALSE(s.has(10, 0));
  EXPECT_TRUE(s.has(20, 0));
  EXPECT_TRUE(s.has(30, 0));
  EXPECT_EQ(s.latest_committed(), 30u);
  EXPECT_EQ(s.stats().commits, 3u);
}

TEST(PhoenixStore, AbortPendingDropsOnlyTheStagedGeneration) {
  phoenix::DistributedCheckpointStore s;
  s.stage(5, 1, 2, {7.0});
  s.commit(5);
  s.stage(9, 1, 3, {8.0});
  s.abort_pending();
  s.commit(9);  // nothing left to publish
  EXPECT_FALSE(s.has(9, 1));
  EXPECT_TRUE(s.has(5, 1));
  EXPECT_EQ(s.latest_committed(), 5u);
  EXPECT_EQ(s.stats().aborted, 1u);
}

TEST(PhoenixStore, CrcRefusalFallsBackToBuddyCopy) {
  phoenix::DistributedCheckpointStore own, buddy;
  const std::vector<double> blob{1.5, -2.5, 3.5};
  own.stage(7, 2, 6, blob);
  own.commit(7);
  buddy.stage(7, 2, 6, blob);
  buddy.commit(7);

  // Flip a word in the owner's committed copy; the stage-time CRC stays.
  (*own.mutable_payload(7, 2))[1] = 99.0;

  std::vector<double> out;
  std::size_t step = 0;
  EXPECT_EQ(own.fetch(7, 2, &out, &step),
            phoenix::DistributedCheckpointStore::Fetch::Refused);
  EXPECT_EQ(own.stats().refused, 1u);
  EXPECT_EQ(own.fetch(7, 99, &out, &step),
            phoenix::DistributedCheckpointStore::Fetch::Missing);

  // The buddy copy still serves, bit-exact.
  EXPECT_EQ(buddy.fetch(7, 2, &out, &step),
            phoenix::DistributedCheckpointStore::Fetch::Ok);
  EXPECT_EQ(out, blob);
  EXPECT_EQ(step, 6u);
}

// ---------------------------------------------------------------------------
// Kill injectors
// ---------------------------------------------------------------------------

TEST(PhoenixFailure, KillRankAtFiresExactlyAtTheChosenOp) {
  auto hook = phoenix::kill_rank_at(2, 5);
  for (std::size_t op = 1; op <= 10; ++op) {
    EXPECT_EQ(hook(2, op), op == 5);
    EXPECT_FALSE(hook(1, op));
  }
  // at_op == 0 never fires.
  auto never = phoenix::kill_rank_at(0, 0);
  for (std::size_t op = 1; op <= 4; ++op) EXPECT_FALSE(never(0, op));
}

TEST(PhoenixFailure, SeededKillsAreDeterministicAndDistinct) {
  auto a = phoenix::seeded_kills(8, 3, 42, 5, 50);
  auto b = phoenix::seeded_kills(8, 3, 42, 5, 50);
  std::set<int> victims_a, victims_b;
  for (int r = 0; r < 8; ++r) {
    for (std::size_t op = 1; op <= 60; ++op) {
      if (a(r, op)) {
        victims_a.insert(r);
        EXPECT_GE(op, 5u);
        EXPECT_LE(op, 50u);
      }
      if (b(r, op)) victims_b.insert(r);
    }
  }
  EXPECT_EQ(victims_a.size(), 3u);
  EXPECT_EQ(victims_a, victims_b);
}

// ---------------------------------------------------------------------------
// mpi repair primitives: waitall containment and double-delivery
// ---------------------------------------------------------------------------

// Satellite (a): a failure waking waitall mid-flight must keep completed
// payloads readable, cancel the pending irecvs, and the subsequent repair
// must purge the unconsumed in-flight message so a same-tag retry can never
// observe the stale payload (double delivery).
TEST(PhoenixMpi, WaitallContainmentAndRepairKillsDoubleDelivery) {
  mpi::RunOptions opts;
  opts.recoverable = true;
  opts.timeout_seconds = 5.0;
  opts.max_retries = 1;
  // Rank 2 dies at its second op — after consuming rank 0's go-signal, so
  // the death deterministically lands after rank 0's sends are deposited.
  opts.fault_hook = phoenix::kill_rank_at(2, 2);

  std::mutex mtx;
  std::vector<mpi::PurgedMessage> purged;
  std::vector<double> delivered;

  mpi::run(3, opts, [&](mpi::Communicator& comm) {
    const int r = comm.rank();
    if (r == 2) {
      comm.recv(0, 9);          // go-signal: rank 0 has sent tags 4 and 5
      comm.send(0, 88, {0.0});  // killed on entry: never deposited
      return;
    }
    auto recover = [&](bool leader) {
      for (;;) {
        try {
          const int before = comm.epoch();
          comm.revoke();
          std::vector<int> dead;
          comm.agree_min(0, &dead);
          EXPECT_EQ(dead, (std::vector<int>{2}));
          if (leader) {
            mpi::RepairPlan plan;
            plan.retire = dead;
            auto res = comm.repair(plan);
            std::lock_guard<std::mutex> lk(mtx);
            purged = res.purged;
          } else {
            comm.await_repair(before);
          }
          return;
        } catch (const mpi::RankFailed&) {
        }
      }
    };
    if (r == 0) {
      comm.send(1, 4, {4.0});
      comm.send(1, 5, {1.0});  // stale: purged by the repair, never seen
      comm.send(2, 9, {0.0});  // go-signal: rank 2 may die now
      try {
        comm.recv(1, 77);  // parked: woken by the revocation
        ADD_FAILURE() << "recv should have been interrupted";
      } catch (const mpi::RankFailed&) {
      }
      recover(/*leader=*/true);
      comm.send(1, 5, {99.0});
    } else {  // r == 1
      std::vector<mpi::Request> rs(2);
      rs[0] = comm.irecv(0, 4);
      rs[1] = comm.irecv(2, 99);  // never sent: pending when the kill lands
      // Complete the first receive before the batch wait: tag 4 is already
      // (or about to be) deposited, and a deliverable operation completes
      // even with a failure pending.
      comm.wait(rs[0]);
      try {
        comm.waitall(rs);
        ADD_FAILURE() << "waitall should have raised RankFailed";
      } catch (const mpi::RankFailed&) {
      }
      // Completed request keeps its payload; the pending one is cancelled.
      EXPECT_TRUE(rs[0].done());
      EXPECT_FALSE(rs[0].cancelled());
      EXPECT_EQ(rs[0].data(), (std::vector<double>{4.0}));
      EXPECT_TRUE(rs[1].cancelled());
      EXPECT_TRUE(rs[1].data().empty());
      recover(/*leader=*/false);
      auto v = comm.recv(0, 5);
      std::lock_guard<std::mutex> lk(mtx);
      delivered = v;
    }
  });

  // The post-repair receive saw the fresh payload, not the purged one.
  EXPECT_EQ(delivered, (std::vector<double>{99.0}));
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].src, 0);
  EXPECT_EQ(purged[0].dest, 1);
  EXPECT_EQ(purged[0].tag, 5);
  EXPECT_EQ(purged[0].epoch, 0);
  EXPECT_EQ(purged[0].bytes, 8.0);
}

// ---------------------------------------------------------------------------
// Satellite (c), part 1: kill a rank at every phase of recursive-doubling
// allreduce. Survivors must always reach agreement (or the recoverable
// RankFailed) and never deadlock, across pof2 and non-pof2 world sizes and
// victim positions.
// ---------------------------------------------------------------------------

TEST(PhoenixMpi, RecursiveDoublingKillSweepAlwaysReachesAgreement) {
  for (int ws : {4, 5, 8}) {
    const std::vector<int> victims = {0, ws / 2, ws - 1};
    for (int victim : victims) {
      for (std::size_t at_op = 1; at_op <= 9; ++at_op) {
        mpi::RunOptions opts;
        opts.recoverable = true;
        opts.timeout_seconds = 5.0;
        opts.max_retries = 1;
        opts.fault_hook = phoenix::kill_rank_at(victim, at_op);

        std::mutex mtx;
        std::vector<double> totals;
        mpi::run(ws, opts, [&](mpi::Communicator& comm) {
          std::set<int> alive;
          for (int r = 0; r < ws; ++r) alive.insert(r);
          auto recover = [&] {
            for (;;) {
              try {
                const int before = comm.epoch();
                comm.revoke();
                std::vector<int> dead;
                comm.agree_min(0, &dead);
                for (int d : dead) alive.erase(d);
                if (comm.rank() == *alive.begin()) {
                  mpi::RepairPlan plan;
                  plan.retire = dead;
                  comm.repair(plan);
                } else {
                  comm.await_repair(before);
                }
                return;
              } catch (const mpi::RankFailed&) {
              }
            }
          };
          std::vector<double> v = {1.0};
          try {
            net::allreduce_sum(comm, v, net::AllreduceAlgo::RecursiveDoubling);
          } catch (const mpi::RankFailed&) {
            recover();
          }
          // Fault-tolerant completion: agree on the survivor count via the
          // repaired world's collective (retried through further repairs).
          double total = -1.0;
          while (total < 0.0) {
            try {
              total = comm.allreduce_sum(1.0);
            } catch (const mpi::RankFailed&) {
              recover();
            }
          }
          std::lock_guard<std::mutex> lk(mtx);
          totals.push_back(total);
        });

        // Every completing rank is a survivor and all agree on the same
        // total: the number of survivors.
        ASSERT_FALSE(totals.empty())
            << "ws=" << ws << " victim=" << victim << " op=" << at_op;
        for (double t : totals) {
          EXPECT_EQ(t, static_cast<double>(totals.size()))
              << "ws=" << ws << " victim=" << victim << " op=" << at_op;
        }
        EXPECT_GE(totals.size(), static_cast<std::size_t>(ws - 1));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Survivable wave
// ---------------------------------------------------------------------------

double wave_u0(double x, double y, double z) {
  return std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) * std::sin(M_PI * z);
}

stencil::SurvivableWaveConfig wave_cfg(int workers, int spares,
                                       phoenix::RepairPolicy policy) {
  stencil::SurvivableWaveConfig c;
  c.nx = 20;  // divides by 4 and by 5
  c.ny = 4;
  c.nz = 4;
  c.steps = 5;
  c.workers = workers;
  c.spares = spares;
  c.policy = policy;
  c.ckpt_every = 2;
  c.mpi.timeout_seconds = 5.0;
  c.mpi.max_retries = 1;
  return c;
}

TEST(PhoenixWave, FaultFreeSurvivableMatchesDistributedBitwise) {
  auto cfg = wave_cfg(4, 0, phoenix::RepairPolicy::Shrink);
  auto sur = stencil::survivable_wave_run(cfg, wave_u0);

  stencil::DistributedWaveConfig dc;
  dc.nx = cfg.nx;
  dc.ny = cfg.ny;
  dc.nz = cfg.nz;
  dc.steps = cfg.steps;
  auto dist = stencil::distributed_wave_run(4, dc, wave_u0);

  EXPECT_EQ(sur.dt, dist.dt);
  ASSERT_EQ(sur.field.size(), dist.field.size());
  EXPECT_EQ(sur.field, dist.field);
  EXPECT_EQ(sur.report.stats.kills, 0u);
  EXPECT_GT(sur.report.stats.ckpt_commits, 0u);
}

TEST(PhoenixWave, SpareSubstitutionRecoversBitwise) {
  auto cfg = wave_cfg(4, 1, phoenix::RepairPolicy::Spare);
  auto ref = stencil::survivable_wave_run(cfg, wave_u0);
  ASSERT_EQ(ref.report.stats.kills, 0u);

  // Op 22 is rank 1's second commit vote: dying there guarantees its ring
  // predecessor already advanced past the agreed generation, so rollback
  // provably replays work (replayed_steps > 0 is deterministic).
  cfg.fault_hook = phoenix::kill_rank_at(1, 22);
  auto r = stencil::survivable_wave_run(cfg, wave_u0);

  EXPECT_EQ(r.report.stats.kills, 1u);
  EXPECT_EQ(r.report.dead, (std::vector<int>{1}));
  EXPECT_GE(r.report.stats.repairs, 1u);
  EXPECT_EQ(r.report.stats.adoptions, 1u);
  EXPECT_EQ(r.report.stats.retirements, 0u);
  EXPECT_GT(r.report.stats.restores, 0u);
  EXPECT_GT(r.report.stats.replayed_steps, 0u);
  EXPECT_GE(r.report.stats.shipped_msgs, 1u);
  EXPECT_GE(r.report.epochs, 1);
  EXPECT_EQ(r.field, ref.field);
}

TEST(PhoenixWave, ShrinkRecoversBitwise) {
  auto cfg = wave_cfg(4, 0, phoenix::RepairPolicy::Shrink);
  auto ref = stencil::survivable_wave_run(cfg, wave_u0);

  cfg.fault_hook = phoenix::kill_rank_at(2, 16);
  auto r = stencil::survivable_wave_run(cfg, wave_u0);

  EXPECT_EQ(r.report.stats.kills, 1u);
  EXPECT_GE(r.report.stats.repairs, 1u);
  EXPECT_EQ(r.report.stats.retirements, 1u);
  EXPECT_EQ(r.report.stats.adoptions, 0u);
  EXPECT_GT(r.report.stats.restores, 0u);
  // The shrunken world computes the identical global field: parts, not
  // ranks, own the arithmetic.
  EXPECT_EQ(r.field, ref.field);
}

// Satellite (c), part 2: kill a rank at every op index through the run —
// covering every phase of the buddy-exchange two-phase commit (stage, ship,
// receive, vote) as well as the halo phases around it — for pof2 and
// non-pof2 worlds and several victim positions. Every run must either ride
// through bitwise or (never, with a single kill and a spare in reserve)
// abort loudly; silent divergence and deadlock are the failure modes.
TEST(PhoenixWave, KillEveryPhaseSweepSpare) {
  for (int ws : {4, 5}) {
    auto base = wave_cfg(ws, 2, phoenix::RepairPolicy::Spare);
    auto ref = stencil::survivable_wave_run(base, wave_u0);
    const std::vector<int> victims = {0, ws / 2, ws - 1};
    for (int victim : victims) {
      for (std::size_t at_op = 1; at_op <= 24; ++at_op) {
        auto cfg = base;
        cfg.fault_hook = phoenix::kill_rank_at(victim, at_op);
        auto r = stencil::survivable_wave_run(cfg, wave_u0);
        EXPECT_LE(r.report.stats.kills, 1u);
        EXPECT_EQ(r.field, ref.field)
            << "ws=" << ws << " victim=" << victim << " op=" << at_op;
      }
    }
  }
}

TEST(PhoenixWave, KillEveryPhaseSweepShrink) {
  auto base = wave_cfg(4, 0, phoenix::RepairPolicy::Shrink);
  auto ref = stencil::survivable_wave_run(base, wave_u0);
  for (int victim : {1, 3}) {
    for (std::size_t at_op = 1; at_op <= 20; ++at_op) {
      auto cfg = base;
      cfg.fault_hook = phoenix::kill_rank_at(victim, at_op);
      auto r = stencil::survivable_wave_run(cfg, wave_u0);
      EXPECT_EQ(r.field, ref.field)
          << "victim=" << victim << " op=" << at_op;
    }
  }
}

TEST(PhoenixWave, SecondKillDuringRecoveryStillBitwise) {
  auto cfg = wave_cfg(4, 2, phoenix::RepairPolicy::Spare);
  cfg.steps = 6;
  auto ref = stencil::survivable_wave_run(cfg, wave_u0);

  // Non-adjacent victims (their buddy holders survive), near-simultaneous:
  // the second death can land inside the first recovery round.
  auto h1 = phoenix::kill_rank_at(1, 16);
  auto h2 = phoenix::kill_rank_at(3, 17);
  cfg.fault_hook = [h1, h2](int r, std::size_t op) {
    return h1(r, op) || h2(r, op);
  };
  auto r = stencil::survivable_wave_run(cfg, wave_u0);

  EXPECT_EQ(r.report.stats.kills, 2u);
  EXPECT_EQ(r.report.dead, (std::vector<int>{1, 3}));
  EXPECT_EQ(r.report.stats.adoptions, 2u);
  EXPECT_EQ(r.field, ref.field);
}

TEST(PhoenixWave, BuddyPairLossIsUnrecoverable) {
  // Ranks 1 and 2 are ring-adjacent: rank 2 holds rank 1's buddy copies.
  // Killing both inside one commit window leaves no intact copy of part 1.
  auto cfg = wave_cfg(4, 0, phoenix::RepairPolicy::Shrink);
  cfg.steps = 5;
  cfg.ckpt_every = 3;
  auto h1 = phoenix::kill_rank_at(1, 18);
  auto h2 = phoenix::kill_rank_at(2, 18);
  cfg.fault_hook = [h1, h2](int r, std::size_t op) {
    return h1(r, op) || h2(r, op);
  };
  EXPECT_THROW(stencil::survivable_wave_run(cfg, wave_u0),
               phoenix::PhoenixUnrecoverable);
}

TEST(PhoenixWave, SpareExhaustionIsUnrecoverable) {
  auto cfg = wave_cfg(4, 1, phoenix::RepairPolicy::Spare);
  cfg.steps = 10;
  cfg.ckpt_every = 3;
  auto h1 = phoenix::kill_rank_at(1, 6);
  auto h2 = phoenix::kill_rank_at(3, 30);
  cfg.fault_hook = [h1, h2](int r, std::size_t op) {
    return h1(r, op) || h2(r, op);
  };
  EXPECT_THROW(stencil::survivable_wave_run(cfg, wave_u0),
               phoenix::PhoenixUnrecoverable);
}

TEST(PhoenixDriver, ConfigValidation) {
  phoenix::SurvivableConfig cfg;
  phoenix::SurvivableHooks hooks;
  EXPECT_THROW(phoenix::run_survivable(cfg, hooks), std::invalid_argument);

  auto wcfg = wave_cfg(4, 2, phoenix::RepairPolicy::Shrink);
  EXPECT_THROW(stencil::survivable_wave_run(wcfg, wave_u0),
               std::invalid_argument);  // shrink takes no spares
  auto bad = wave_cfg(3, 0, phoenix::RepairPolicy::Shrink);
  EXPECT_THROW(stencil::survivable_wave_run(bad, wave_u0),
               std::invalid_argument);  // nx % workers != 0
}

// ---------------------------------------------------------------------------
// Survivable MD
// ---------------------------------------------------------------------------

TEST(PhoenixMd, SpareRecoveryIsBitwise) {
  md::SurvivableMdConfig cfg;
  cfg.per_side = 3;
  cfg.steps = 6;
  cfg.workers = 4;
  cfg.spares = 1;
  cfg.policy = phoenix::RepairPolicy::Spare;
  cfg.ckpt_every = 3;
  cfg.mpi.timeout_seconds = 5.0;
  cfg.mpi.max_retries = 1;
  auto ref = md::survivable_md_run(cfg);
  ASSERT_EQ(ref.report.stats.kills, 0u);
  ASSERT_EQ(ref.n, 27u);

  // Op 30 is rank 2's second commit vote (4 tree ops/step, 3-op ckpts):
  // its buddy-recv at op 29 proves the ring predecessor reached step 6,
  // past the commit at step 3, so replayed_steps > 0 is deterministic.
  cfg.fault_hook = phoenix::kill_rank_at(2, 30);
  auto r = md::survivable_md_run(cfg);

  EXPECT_EQ(r.report.stats.kills, 1u);
  EXPECT_GT(r.report.stats.replayed_steps, 0u);
  // The whole trajectory — including the neighbor-list rebuild schedule —
  // replays to identical bits.
  EXPECT_EQ(r.potential, ref.potential);
  EXPECT_EQ(r.kinetic, ref.kinetic);
  EXPECT_EQ(r.virial, ref.virial);
  EXPECT_EQ(r.temperature, ref.temperature);
}

TEST(PhoenixMd, ShrinkRecoveryIsBitwise) {
  md::SurvivableMdConfig cfg;
  cfg.per_side = 3;
  cfg.steps = 5;
  cfg.workers = 3;  // non-pof2 part tree
  cfg.policy = phoenix::RepairPolicy::Shrink;
  cfg.ckpt_every = 2;
  cfg.mpi.timeout_seconds = 5.0;
  cfg.mpi.max_retries = 1;
  auto ref = md::survivable_md_run(cfg);

  cfg.fault_hook = phoenix::kill_rank_at(1, 14);
  auto r = md::survivable_md_run(cfg);

  EXPECT_EQ(r.report.stats.kills, 1u);
  EXPECT_EQ(r.report.stats.retirements, 1u);
  EXPECT_EQ(r.potential, ref.potential);
  EXPECT_EQ(r.kinetic, ref.kinetic);
  EXPECT_EQ(r.virial, ref.virial);
}

// ---------------------------------------------------------------------------
// Survivable Krylov
// ---------------------------------------------------------------------------

struct CgRunOut {
  std::map<int, std::vector<double>> x;  // by final rank id
  std::map<int, std::size_t> iters;
  phoenix::SurvivableReport report;
};

CgRunOut run_survivable_cg(const la::CsrMatrix& a,
                           const std::vector<double>& b, int workers,
                           int spares, int steps, int ckpt_every,
                           std::function<bool(int, std::size_t)> hook) {
  phoenix::SurvivableConfig cfg;
  cfg.workers = workers;
  cfg.spares = spares;
  cfg.policy = spares > 0 ? phoenix::RepairPolicy::Spare
                          : phoenix::RepairPolicy::Shrink;
  cfg.steps = steps;
  cfg.ckpt_every = ckpt_every;
  cfg.mpi.timeout_seconds = 5.0;
  cfg.mpi.max_retries = 1;
  cfg.fault_hook = std::move(hook);

  auto cgp = [](phoenix::RankContext& rc, int p) -> phoenix::PartCg& {
    return static_cast<phoenix::PartCg&>(rc.part(p));
  };

  phoenix::SurvivableHooks hooks;
  hooks.make = [&a, &b](phoenix::RankContext& rc, int part) {
    return std::make_unique<phoenix::PartCg>(a, b, part, rc.nparts());
  };
  hooks.step = [cgp](phoenix::RankContext& rc, int step) {
    const int chan = phoenix::RankContext::kChanApp;
    auto buf = [&](int p) { return cgp(rc, p).reduction(); };
    if (step == 0) {
      for (int p : rc.owned()) cgp(rc, p).begin(rc.ctx());
      rc.part_allreduce(chan, buf);
      for (int p : rc.owned()) cgp(rc, p).end_begin();
      return;
    }
    for (int p : rc.owned()) cgp(rc, p).phase_pap(rc.ctx());
    rc.part_allreduce(chan, buf);
    for (int p : rc.owned()) cgp(rc, p).phase_update(rc.ctx());
    rc.part_allreduce(chan, buf);
    for (int p : rc.owned()) cgp(rc, p).phase_close();
  };

  CgRunOut out;
  std::mutex mtx;
  hooks.finish = [&, cgp](phoenix::RankContext& rc) {
    std::lock_guard<std::mutex> lk(mtx);
    for (int p : rc.owned()) {
      auto xs = cgp(rc, p).x();
      out.x[p].assign(xs.begin(), xs.end());
      out.iters[p] = cgp(rc, p).iterations();
    }
  };
  out.report = phoenix::run_survivable(cfg, hooks);
  return out;
}

TEST(PhoenixKrylov, PartCgSurvivesKillBitwise) {
  auto a = la::poisson2d(8, 8);
  const std::size_t n = a.rows();
  std::vector<double> x_true(n), b(n);
  core::Rng rng(11);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  a.spmv(ctx, x_true, b);

  auto ref = run_survivable_cg(a, b, 4, 1, 40, 8, {});
  ASSERT_EQ(ref.report.stats.kills, 0u);
  ASSERT_EQ(ref.x.size(), 4u);
  // Replicated parts converge to the identical iterate.
  for (int p = 1; p < 4; ++p) {
    EXPECT_EQ(ref.x.at(p), ref.x.at(0));
    EXPECT_EQ(ref.iters.at(p), ref.iters.at(0));
  }
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ref.x.at(0)[i], x_true[i], 1e-6);

  auto r = run_survivable_cg(a, b, 4, 1, 40, 8,
                             phoenix::kill_rank_at(1, 40));
  EXPECT_EQ(r.report.stats.kills, 1u);
  EXPECT_GT(r.report.stats.replayed_steps, 0u);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(r.x.at(p), ref.x.at(p)) << "part " << p;
    EXPECT_EQ(r.iters.at(p), ref.iters.at(p));
  }
}

// The la::cg wiring: with a pof2 part count the replicated tree-sum and the
// 1/nparts rescale are exact, so the distributed solve is bitwise the
// single-domain solve.
TEST(PhoenixKrylov, ReplicatedReduceMatchesPlainCgBitwise) {
  auto a = la::poisson2d(6, 6);
  const std::size_t n = a.rows();
  std::vector<double> x_true(n), b(n);
  core::Rng rng(23);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx0 = core::make_seq();
  a.spmv(ctx0, x_true, b);

  la::CsrOperator op(a);
  la::JacobiPreconditioner prec(a);
  la::SolveOptions plain_opts;
  plain_opts.max_iters = 500;
  plain_opts.rel_tol = 1e-10;
  std::vector<double> x_plain(n, 0.0);
  auto plain_ctx = core::make_seq();
  auto plain = la::cg(plain_ctx, op, prec, b, x_plain, plain_opts);
  ASSERT_TRUE(plain.converged);

  struct NullPart final : resil::Checkpointable {
    void save_state(std::vector<double>& out) const override { out.clear(); }
    void restore_state(const std::vector<double>&) override {}
  };

  phoenix::SurvivableConfig cfg;
  cfg.workers = 4;
  cfg.steps = 1;
  cfg.ckpt_every = 0;
  cfg.mpi.timeout_seconds = 5.0;

  std::mutex mtx;
  std::map<int, std::vector<double>> xs;
  std::map<int, std::size_t> its;
  phoenix::SurvivableHooks hooks;
  hooks.make = [](phoenix::RankContext&, int) {
    return std::make_unique<NullPart>();
  };
  hooks.step = [&](phoenix::RankContext& rc, int) {
    la::SolveOptions opts = plain_opts;
    opts.reduce =
        phoenix::replicated_reduce(rc, phoenix::RankContext::kChanApp);
    la::CsrOperator lop(a);
    la::JacobiPreconditioner lprec(a);
    std::vector<double> x(n, 0.0);
    auto res = la::cg(rc.ctx(), lop, lprec, b, x, opts);
    std::lock_guard<std::mutex> lk(mtx);
    xs[rc.rank()] = std::move(x);
    its[rc.rank()] = res.iterations;
  };
  phoenix::run_survivable(cfg, hooks);

  ASSERT_EQ(xs.size(), 4u);
  for (auto& [r, x] : xs) {
    EXPECT_EQ(x, x_plain) << "rank " << r;
    EXPECT_EQ(its.at(r), plain.iterations);
  }
}

// ---------------------------------------------------------------------------
// Observability: metrics, the xray merge, and drain logging
// ---------------------------------------------------------------------------

TEST(PhoenixObs, MetricsXrayAndDrainLoggingOnRecovery) {
  auto cluster = hsim::clusters::ethernet(4);
  net::NetLog log;
  obs::MetricsRegistry metrics;

  auto cfg = wave_cfg(4, 1, phoenix::RepairPolicy::Spare);
  cfg.nx = 16;
  cfg.steps = 6;
  cfg.ckpt_every = 3;
  cfg.cluster = &cluster;
  cfg.log = &log;
  cfg.metrics = &metrics;
  cfg.trace_ranks = true;
  // Second commit vote (see SpareSubstitutionRecoversBitwise): makes the
  // replayed_steps metric assertion below deterministic.
  cfg.fault_hook = phoenix::kill_rank_at(1, 30);
  auto r = stencil::survivable_wave_run(cfg, wave_u0);
  ASSERT_EQ(r.report.stats.kills, 1u);

  // phoenix.* metrics published (the schema validate_bench_json pins).
  EXPECT_EQ(metrics.counter("phoenix.kills"), 1.0);
  EXPECT_GE(metrics.counter("phoenix.detections"), 1.0);
  EXPECT_GE(metrics.counter("phoenix.repairs"), 1.0);
  EXPECT_EQ(metrics.counter("phoenix.adoptions"), 1.0);
  EXPECT_GT(metrics.counter("phoenix.ckpt_commits"), 0.0);
  EXPECT_GT(metrics.counter("phoenix.restores"), 0.0);
  EXPECT_GT(metrics.counter("phoenix.replayed_steps"), 0.0);
  EXPECT_GT(metrics.counter("phoenix.buddy_msgs"), 0.0);
  EXPECT_GT(metrics.counter("phoenix.buddy_bytes"), 0.0);
  EXPECT_GE(metrics.counter("phoenix.shipped_msgs"), 1.0);
  EXPECT_GT(metrics.counter("phoenix.repair_s"), 0.0);

  const auto events = log.snapshot();
  // Recovery traffic is epoch-salted: post-repair tags live past 0x10000.
  bool salted = false;
  // Every send is matched by a receive — real or the repair leader's
  // synthetic drain — so the replay has no unmatched sends.
  std::map<std::tuple<int, int, int>, long> balance;
  for (const auto& e : events) {
    if (e.tag >= 0x10000) salted = true;
    if (e.kind == net::NetEvent::Kind::Send) {
      balance[{e.rank, e.peer, e.tag}] += 1;
    } else if (e.kind == net::NetEvent::Kind::Recv) {
      balance[{e.peer, e.rank, e.tag}] -= 1;
    }
  }
  EXPECT_TRUE(salted);
  for (const auto& [k, v] : balance) {
    EXPECT_EQ(v, 0) << "unbalanced (src=" << std::get<0>(k)
                    << ", dest=" << std::get<1>(k)
                    << ", tag=" << std::get<2>(k) << ")";
  }

  // The merged cross-rank view replays clean, and the repair has a trace
  // presence ("phoenix/repair" phase) for critical-path attribution.
  xray::MergeInputs in;
  in.log = &log;
  in.cluster = &cluster;
  in.ranks = 4;
  auto rep = xray::analyze(in);
  EXPECT_TRUE(rep.well_formed) << (rep.diagnostics.empty()
                                       ? std::string("no diagnostics")
                                       : rep.diagnostics.front());
  EXPECT_GT(rep.critical_s, 0.0);

  bool saw_repair = false, saw_ckpt = false;
  for (const auto& tb : r.report.rank_traces) {
    for (const auto& e : tb.snapshot()) {
      if (e.phase == "phoenix/repair") saw_repair = true;
      if (e.phase == "phoenix/ckpt") saw_ckpt = true;
    }
  }
  EXPECT_TRUE(saw_repair);
  EXPECT_TRUE(saw_ckpt);
}

// Satellite (b): the resil store-integrity counters ride the registry.
TEST(PhoenixObs, ResilStoreIntegrityCountersPublished) {
  struct One final : resil::Checkpointable {
    double v = 1.0;
    void save_state(std::vector<double>& out) const override { out = {v}; }
    void restore_state(const std::vector<double>& in) override { v = in[0]; }
  };
  One app;
  auto ctx = core::make_seq();
  obs::MetricsRegistry m;
  resil::ResilienceConfig cfg;
  cfg.metrics = &m;
  resil::run_resilient(
      app, ctx, 3,
      [&](std::size_t) {
        app.v += 1.0;
        ctx.record_kernel({8.0, 8.0});
      },
      cfg);
  const auto cs = m.counters();
  EXPECT_EQ(cs.count("resil.refused_generations"), 1u);
  EXPECT_EQ(cs.count("resil.crc_fallbacks"), 1u);
  EXPECT_EQ(cs.at("resil.refused_generations"), 0.0);
  EXPECT_EQ(cs.at("resil.crc_fallbacks"), 0.0);
}

// ---------------------------------------------------------------------------
// Chaos: CI's chaos job sweeps COE_CHAOS_SEED through this binary
// ---------------------------------------------------------------------------

/// Chaos seed for this process: CI sets COE_CHAOS_SEED per matrix entry; a
/// failure is reproducible by exporting the logged value.
std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("COE_CHAOS_SEED");
    std::uint64_t v = env != nullptr ? std::strtoull(env, nullptr, 10) : 1ull;
    if (v == 0) v = 1;
    std::cout << "[chaos] COE_CHAOS_SEED=" << v << "\n";
    return v;
  }();
  return seed;
}

// The survivability contract under arbitrary seeded kill schedules: every
// run either rides through to the fault-free bits or aborts loudly with
// PhoenixUnrecoverable (a buddy pair died inside one commit window) —
// never a hang, never silently wrong bits. Any seed must pass.
TEST(PhoenixChaos, SeededKillSchedulesSurviveBitwiseOrFailLoud) {
  const std::uint64_t seed = chaos_seed();
  auto cfg = wave_cfg(4, 2, phoenix::RepairPolicy::Spare);
  cfg.steps = 8;
  cfg.ckpt_every = 3;
  const auto ref = stencil::survivable_wave_run(cfg, wave_u0);

  std::size_t survived = 0, aborted = 0;
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    auto c = cfg;
    c.fault_hook = phoenix::seeded_kills(4, 2, seed * 1000 + trial, 4, 40);
    try {
      const auto r = stencil::survivable_wave_run(c, wave_u0);
      EXPECT_EQ(r.field, ref.field)
          << "seed " << seed << " trial " << trial;
      ++survived;
    } catch (const phoenix::PhoenixUnrecoverable&) {
      ++aborted;
    }
  }
  EXPECT_EQ(survived + aborted, 6u);
  std::cout << "[chaos] " << survived << " survived bitwise, " << aborted
            << " aborted loud\n";
}

}  // namespace
