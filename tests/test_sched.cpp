// Tests for the Opt job-scheduler simulator: conservation, policy ordering
// properties, quota behaviour, and the paper's two arrival regimes.
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/scheduler.hpp"

namespace {

using namespace coe;

sched::Job job(std::uint64_t id, double submit, double dur, int gpus = 1) {
  return sched::Job{id, submit, dur, dur, gpus};
}

TEST(Scheduler, SingleGpuFcfsIsSequential) {
  sched::Simulator sim({1, sched::Policy::Fcfs, 0.0, 0});
  auto m = sim.run({job(0, 0, 10), job(1, 0, 5), job(2, 0, 1)});
  EXPECT_EQ(m.completed, 3u);
  EXPECT_DOUBLE_EQ(m.makespan, 16.0);
  EXPECT_NEAR(m.utilization, 1.0, 1e-12);
  // FCFS order: starts at 0, 10, 15.
  EXPECT_DOUBLE_EQ(sim.outcomes()[1].start_time, 10.0);
  EXPECT_DOUBLE_EQ(sim.outcomes()[2].start_time, 15.0);
}

TEST(Scheduler, SjfReordersByEstimate) {
  sched::Simulator sim({1, sched::Policy::Sjf, 0.0, 0});
  auto m = sim.run({job(0, 0, 10), job(1, 0, 5), job(2, 0, 1)});
  EXPECT_DOUBLE_EQ(m.makespan, 16.0);
  // SJF runs 1, 5, 10: job 2 first, then 1, then 0.
  EXPECT_DOUBLE_EQ(sim.outcomes()[2].start_time, 0.0);
  EXPECT_DOUBLE_EQ(sim.outcomes()[1].start_time, 1.0);
  EXPECT_DOUBLE_EQ(sim.outcomes()[0].start_time, 6.0);
}

TEST(Scheduler, SjfMinimizesMeanWaitForBatch) {
  auto jobs = sched::make_workload({200, 30.0, 1.2, 0.0, 0.0, 7});
  sched::Simulator fcfs({4, sched::Policy::Fcfs, 0.0, 0});
  sched::Simulator sjf({4, sched::Policy::Sjf, 0.0, 0});
  const auto mf = fcfs.run(jobs);
  const auto ms = sjf.run(jobs);
  EXPECT_EQ(mf.completed, 200u);
  EXPECT_EQ(ms.completed, 200u);
  // SJF is optimal for mean wait on a single batch.
  EXPECT_LT(ms.mean_wait, mf.mean_wait);
  // Identical total work: makespans close (same conservation).
  EXPECT_NEAR(ms.makespan, mf.makespan, 0.2 * mf.makespan);
}

TEST(Scheduler, QuotaReservesGpusForLongJobs) {
  // 8 long jobs + 8 short ones on 4 GPUs, 2 GPUs reserved for long work.
  std::vector<sched::Job> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(job(i, 0, 100));
  for (int i = 8; i < 16; ++i) jobs.push_back(job(i, 0, 1));
  sched::Simulator quota({4, sched::Policy::SjfQuota, 50.0, 2});
  auto mq = quota.run(jobs);
  EXPECT_EQ(mq.completed, 16u);
  // Long jobs start at t = 0 under the reserve (plain SJF runs all the
  // short jobs first).
  int long_at_zero = 0;
  for (const auto& o : quota.outcomes()) {
    if (o.job.duration >= 50.0 && o.start_time == 0.0) ++long_at_zero;
  }
  EXPECT_EQ(long_at_zero, 2);
  // Plain SJF delays the first long job until all shorts are done.
  sched::Simulator sjf({4, sched::Policy::Sjf, 50.0, 2});
  sjf.run(jobs);
  for (const auto& o : sjf.outcomes()) {
    if (o.job.duration >= 50.0) EXPECT_GT(o.start_time, 0.0);
  }
}

TEST(Scheduler, QuotaPreventsLongJobStarvationUnderLoad) {
  // A saturating stream of short jobs starves long jobs under plain SJF;
  // the reserve guarantees the longs run.
  auto make_jobs = [] {
    // Slightly overloaded short stream: the queue never drains.
    auto jobs = sched::make_workload({600, 8.0, 1.5, 0.0, 0.6, 33});
    for (int i = 0; i < 2; ++i) {
      // Long jobs arrive while the machine is already saturated.
      jobs.push_back(sched::Job{9000u + std::uint64_t(i), 50.0, 300.0,
                                300.0, 1});
    }
    return jobs;
  };
  auto max_long_wait = [](const sched::Simulator& sim) {
    double w = 0.0;
    for (const auto& o : sim.outcomes()) {
      if (o.job.duration >= 300.0) {
        w = std::max(w, o.start_time - o.job.submit_time);
      }
    }
    return w;
  };
  sched::Simulator sjf({4, sched::Policy::Sjf, 100.0, 2});
  sched::Simulator quota({4, sched::Policy::SjfQuota, 100.0, 2});
  sjf.run(make_jobs());
  quota.run(make_jobs());
  EXPECT_LT(max_long_wait(quota), 0.5 * max_long_wait(sjf));
}

TEST(Scheduler, QuotaNeverDeadlocks) {
  // All jobs long and wide: the reserve path must keep making progress.
  std::vector<sched::Job> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back(job(i, 0, 100, 3));
  sched::Simulator sim({4, sched::Policy::SjfQuota, 1.0, 2});
  auto m = sim.run(jobs);
  EXPECT_EQ(m.completed, 5u);
  EXPECT_DOUBLE_EQ(m.makespan, 500.0);
}

TEST(Scheduler, ConservationNoJobLostAnyPolicy) {
  auto jobs = sched::make_workload({500, 20.0, 1.5, 0.3, 0.5, 99});
  for (auto p : {sched::Policy::Fcfs, sched::Policy::Sjf,
                 sched::Policy::SjfQuota}) {
    sched::Simulator sim({8, p, 0.0, 0});
    auto m = sim.run(jobs);
    EXPECT_EQ(m.completed, 500u) << sched::to_string(p);
    // Every job ran for exactly its duration after its submit time.
    for (const auto& o : sim.outcomes()) {
      EXPECT_GE(o.start_time, o.job.submit_time);
      EXPECT_NEAR(o.finish_time - o.start_time, o.job.duration, 1e-9);
    }
  }
}

TEST(Scheduler, OverloadedArrivalsBlowUpWaitTimes) {
  // Paper conclusion: "job arrival rate should be throttled to less than
  // the aggregated processing capacity of the GPUs."
  const int gpus = 4;
  const double mean_dur = 10.0;
  const double capacity = gpus / mean_dur;  // jobs per second
  auto run_at = [&](double rate) {
    auto jobs = sched::make_workload({2000, mean_dur, 2.0, 0.0, rate, 5});
    sched::Simulator sim({gpus, sched::Policy::Fcfs, 0.0, 0});
    return sim.run(jobs).mean_wait;
  };
  const double wait_under = run_at(0.7 * capacity);
  const double wait_over = run_at(1.4 * capacity);
  EXPECT_GT(wait_over, 10.0 * wait_under);
}

TEST(Scheduler, BatchSjfQuotaImprovesUtilizationOverFcfs) {
  // Heavy-tailed batch with mixed widths: FCFS interleaves long jobs
  // arbitrarily; SJF+Quota keeps short jobs flowing while long/wide jobs
  // start early, so the tail of the schedule stays packed.
  auto jobs = sched::make_workload({400, 30.0, 0.7, 0.0, 0.0, 21});
  core::Rng rng(5);
  for (auto& j : jobs) j.gpus = 1 + int(rng.uniform_int(3));
  sched::Simulator fcfs({8, sched::Policy::Fcfs, 0.0, 0});
  sched::Simulator quota({8, sched::Policy::SjfQuota, 0.0, 0});
  const auto mf = fcfs.run(jobs);
  const auto mq = quota.run(jobs);
  EXPECT_LE(mq.mean_wait, mf.mean_wait);
  EXPECT_GE(mq.utilization, 0.95 * mf.utilization);
}

TEST(Workload, GeneratorStatistics) {
  auto jobs = sched::make_workload({5000, 60.0, 1.5, 0.0, 0.0, 3});
  double sum = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GT(j.duration, 0.0);
    EXPECT_DOUBLE_EQ(j.estimate, j.duration);
    EXPECT_DOUBLE_EQ(j.submit_time, 0.0);
    sum += j.duration;
  }
  EXPECT_NEAR(sum / 5000.0, 60.0, 3.0);
}

TEST(Workload, PoissonArrivalsAreOrderedAndSpaced) {
  auto jobs = sched::make_workload({1000, 10.0, 1.5, 0.0, 2.0, 11});
  double prev = 0.0, sum_gap = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, prev);
    sum_gap += j.submit_time - prev;
    prev = j.submit_time;
  }
  EXPECT_NEAR(sum_gap / 1000.0, 0.5, 0.1);  // mean inter-arrival = 1/rate
}

}  // namespace
