// Tests for coe::mem (DESIGN.md section 14): DeviceArena residency — LRU
// eviction order, dirty-spill vs clean-drop pricing, refault charging,
// upload/writeback elision — plus the accounting contract that matters
// most: with the working set under capacity, an arena-attached run of the
// wave/Cardioid/MD/CG drivers performs *bit-identical* accounting to a
// detached run. Also the allocator/UM bugfix regressions that ride along:
// MemoryPool size-class overflow and double-free detection, and
// UnifiedBuffer's partial trailing-page charge and read-touch elision.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/buffer.hpp"
#include "core/pool.hpp"
#include "core/rng.hpp"
#include "la/la.hpp"
#include "md/simulation.hpp"
#include "mem/mem.hpp"
#include "obs/metrics.hpp"
#include "reaction/monodomain.hpp"
#include "stencil/wave.hpp"

namespace {

using namespace coe;

constexpr auto kRead = core::MemAccess::Read;
constexpr auto kWrite = core::MemAccess::Write;

// --- DeviceArena unit behavior ---------------------------------------------

TEST(DeviceArena, AttachesAndDetaches) {
  auto ctx = core::make_device();
  EXPECT_EQ(ctx.arena(), nullptr);
  {
    mem::DeviceArena arena(ctx);
    EXPECT_EQ(ctx.arena(), &arena);
    // Default capacity comes from the machine model (16 GiB V100).
    EXPECT_EQ(arena.capacity(), ctx.model().machine().mem_capacity);
  }
  EXPECT_EQ(ctx.arena(), nullptr);
  // Detached, upload() is the raw record_transfer it replaces.
  ctx.upload("anything", 100.0);
  EXPECT_EQ(ctx.counters().h2d_bytes, 100.0);
}

TEST(DeviceArena, FirstAdmissionIsFreeAndLruOrderHolds) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.capacity_bytes = 100.0;
  mem::DeviceArena arena(ctx, cfg);

  ctx.touch_device("a", 40.0, kWrite);
  ctx.touch_device("b", 40.0, kRead);
  // Fresh data is born on the device (cudaMalloc), not copied there.
  EXPECT_EQ(ctx.counters().h2d_bytes, 0.0);
  EXPECT_EQ(ctx.counters().d2h_bytes, 0.0);
  EXPECT_EQ(arena.stats().admits, 2u);
  EXPECT_EQ(arena.lru_order(), (std::vector<std::string>{"a", "b"}));

  // Admitting c (40 B into the 20 B left) evicts the LRU victim a, whose
  // device copy is dirty: the spill is priced d2h.
  ctx.touch_device("c", 40.0, kRead);
  EXPECT_FALSE(arena.resident("a"));
  EXPECT_TRUE(arena.resident("b"));
  EXPECT_TRUE(arena.resident("c"));
  EXPECT_EQ(arena.stats().evictions, 1u);
  EXPECT_EQ(arena.stats().spill_bytes, 40.0);
  EXPECT_EQ(ctx.counters().d2h_bytes, 40.0);
  EXPECT_EQ(ctx.counters().h2d_bytes, 0.0);
  EXPECT_EQ(arena.lru_order(), (std::vector<std::string>{"b", "c"}));

  // Re-touching a evicts b — clean, so it drops free — and refaults a h2d.
  ctx.touch_device("a", 40.0, kRead);
  EXPECT_FALSE(arena.resident("b"));
  EXPECT_EQ(arena.stats().evictions, 2u);
  EXPECT_EQ(arena.stats().spill_bytes, 40.0);  // unchanged: b was clean
  EXPECT_EQ(arena.stats().faults, 1u);
  EXPECT_EQ(arena.stats().fault_bytes, 40.0);
  EXPECT_EQ(ctx.counters().h2d_bytes, 40.0);
  EXPECT_EQ(arena.lru_order(), (std::vector<std::string>{"c", "a"}));
}

TEST(DeviceArena, SingleAllocationOverCapacityThrows) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.capacity_bytes = 100.0;
  mem::DeviceArena arena(ctx, cfg);
  EXPECT_THROW(ctx.touch_device("big", 200.0, kRead), std::length_error);
}

TEST(DeviceArena, HostWriteForcesCoherenceFault) {
  auto ctx = core::make_device();
  mem::DeviceArena arena(ctx);
  ctx.touch_device("x", 64.0, kRead);
  ctx.touch_host("x", 64.0, kWrite);  // host copy is now newer
  EXPECT_EQ(ctx.counters().h2d_bytes, 0.0);
  ctx.touch_device("x", 64.0, kRead);  // device must re-pull it
  EXPECT_EQ(ctx.counters().h2d_bytes, 64.0);
  EXPECT_EQ(arena.stats().faults, 1u);
}

TEST(DeviceArena, HostReadOfDirtyDeviceDataWritesBack) {
  auto ctx = core::make_device();
  mem::DeviceArena arena(ctx);
  ctx.touch_device("x", 64.0, kWrite);
  ctx.touch_host("x", 64.0, kRead);
  EXPECT_EQ(ctx.counters().d2h_bytes, 64.0);
  EXPECT_EQ(arena.stats().writebacks, 1u);
  EXPECT_FALSE(arena.dirty("x"));
  // A second host read is coherent: free.
  ctx.touch_host("x", 64.0, kRead);
  EXPECT_EQ(ctx.counters().d2h_bytes, 64.0);
}

TEST(DeviceArena, UploadAndWritebackElision) {
  auto ctx = core::make_device();
  mem::DeviceArena arena(ctx);

  EXPECT_TRUE(ctx.arena()->upload("x", 100.0));
  EXPECT_EQ(ctx.counters().h2d_bytes, 100.0);
  // Device copy still current: the re-upload is elided and counted.
  EXPECT_FALSE(ctx.arena()->upload("x", 100.0));
  EXPECT_EQ(ctx.counters().h2d_bytes, 100.0);
  EXPECT_EQ(arena.stats().elided_transfers, 1u);
  EXPECT_EQ(arena.stats().elided_bytes, 100.0);

  // Host rewrite invalidates the device copy: upload charges again.
  ctx.touch_host("x", 100.0, kWrite);
  EXPECT_TRUE(ctx.arena()->upload("x", 100.0));
  EXPECT_EQ(ctx.counters().h2d_bytes, 200.0);

  // Clean device copy: the writeback is redundant, elided.
  EXPECT_FALSE(ctx.arena()->writeback("x", 100.0));
  EXPECT_EQ(ctx.counters().d2h_bytes, 0.0);
  ctx.touch_device("x", 100.0, kWrite);
  EXPECT_TRUE(ctx.arena()->writeback("x", 100.0));
  EXPECT_EQ(ctx.counters().d2h_bytes, 100.0);
}

TEST(DeviceArena, ElisionOffChargesEveryTransfer) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.elide_clean_transfers = false;
  mem::DeviceArena arena(ctx, cfg);
  ctx.upload("x", 100.0);
  ctx.upload("x", 100.0);
  ctx.writeback("x", 100.0);
  ctx.writeback("x", 100.0);
  EXPECT_EQ(ctx.counters().h2d_bytes, 200.0);
  EXPECT_EQ(ctx.counters().d2h_bytes, 200.0);
  EXPECT_EQ(arena.stats().elided_transfers, 0u);
}

TEST(DeviceArena, ReleaseDropsResidencyWithoutTraffic) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.capacity_bytes = 100.0;
  mem::DeviceArena arena(ctx, cfg);
  ctx.touch_device("x", 80.0, kWrite);  // dirty
  ctx.arena()->release("x");
  EXPECT_FALSE(arena.resident("x"));
  EXPECT_EQ(ctx.counters().d2h_bytes, 0.0);  // free() is not a copy
  // The space is genuinely back: y fits without evicting anything.
  ctx.touch_device("y", 80.0, kRead);
  EXPECT_EQ(arena.stats().evictions, 0u);
}

TEST(DeviceArena, PublishEmitsTheMemMetricsFamily) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.capacity_bytes = 100.0;
  mem::DeviceArena arena(ctx, cfg);
  ctx.touch_device("a", 60.0, kWrite);
  ctx.touch_device("b", 60.0, kRead);  // evicts a (dirty spill)
  obs::MetricsRegistry reg;
  arena.publish(reg);
  EXPECT_EQ(reg.counter("mem.admits"), 2.0);
  EXPECT_EQ(reg.counter("mem.evictions"), 1.0);
  EXPECT_EQ(reg.counter("mem.spill_bytes"), 60.0);
  EXPECT_EQ(reg.gauge("mem.resident_bytes"), 60.0);
  EXPECT_EQ(reg.gauge("mem.resident_highwater"), 60.0);
  EXPECT_EQ(reg.gauge("mem.capacity_bytes"), 100.0);
}

TEST(ArenaArray, PoolBackedStorageAndResidency) {
  auto ctx = core::make_device();
  mem::DeviceArena arena(ctx);
  {
    mem::ArenaArray<double> a(arena, "arr", 100);
    a.host_write()[0] = 1.0;
    EXPECT_EQ(a.device_read()[0], 1.0);  // host-dirty: faults h2d
    EXPECT_EQ(ctx.counters().h2d_bytes, 800.0);
    EXPECT_TRUE(arena.resident("arr"));
    EXPECT_EQ(arena.pool().stats().current_bytes, 1024u);  // rounded pow2
  }
  EXPECT_FALSE(arena.resident("arr"));
  EXPECT_EQ(arena.pool().stats().current_bytes, 0u);
}

// --- Bit-identical accounting under capacity --------------------------------

struct RunTotals {
  double sim = 0.0;
  hsim::Counters c;
};

bool totals_equal(const RunTotals& a, const RunTotals& b) {
  return a.sim == b.sim && a.c.flops == b.c.flops && a.c.bytes == b.c.bytes &&
         a.c.launches == b.c.launches && a.c.transfers == b.c.transfers &&
         a.c.h2d_bytes == b.c.h2d_bytes && a.c.d2h_bytes == b.c.d2h_bytes;
}

RunTotals run_wave(bool with_arena, bool elide, bool streams) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.elide_clean_transfers = elide;
  std::optional<mem::DeviceArena> arena;
  if (with_arena) arena.emplace(ctx, cfg);
  stencil::WaveOptions opts;
  opts.forcing_on_device = false;  // per-step host forcing uploads
  opts.use_streams = streams;
  stencil::WaveSolver solver(ctx, 10, 10, 10, 1.0, 1.0, opts);
  for (std::size_t s = 0; s < 40; ++s) {
    solver.add_source({s % 10, (3 * s) % 10, (7 * s) % 10, 1.0, 2.0, 0.2});
  }
  const double dt = solver.stable_dt();
  for (int s = 0; s < 6; ++s) solver.step(dt);
  ctx.sync();
  return {ctx.simulated_time(), ctx.counters()};
}

TEST(BitIdentical, WaveUnderCapacityMatchesDetachedRun) {
  for (const bool streams : {false, true}) {
    const RunTotals off = run_wave(false, false, streams);
    // The forcing staging buffer is host-rewritten before every upload, so
    // even with elision ON nothing is skipped: all three runs must match
    // the detached run bit for bit.
    EXPECT_TRUE(totals_equal(off, run_wave(true, false, streams)));
    EXPECT_TRUE(totals_equal(off, run_wave(true, true, streams)));
  }
}

RunTotals run_cardioid(bool with_arena, bool elide,
                       reaction::TissuePlacement placement,
                       std::uint64_t* elided = nullptr) {
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  mem::ArenaConfig acfg;
  acfg.elide_clean_transfers = elide;
  std::optional<mem::DeviceArena> arena;
  if (with_arena) arena.emplace(gpu, acfg);
  reaction::TissueConfig cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.placement = placement;
  reaction::Monodomain tissue(gpu, cpu, cfg);
  tissue.stimulate(0, 4, 0, cfg.ny, 30.0, 2.0);
  for (int s = 0; s < 10; ++s) tissue.step();
  if (elided != nullptr) *elided = arena->stats().elided_transfers;
  return {gpu.simulated_time(), gpu.counters()};
}

TEST(BitIdentical, CardioidMatchesDetachedRunWithElisionOff) {
  for (const auto placement : {reaction::TissuePlacement::AllGpu,
                               reaction::TissuePlacement::SplitCpuDiffusion}) {
    const RunTotals off = run_cardioid(false, false, placement);
    EXPECT_TRUE(totals_equal(off, run_cardioid(true, false, placement)));
  }
}

TEST(Elision, CardioidSplitSkipsExactlyTheFirstCleanReadback) {
  // The constructor upload leaves the cell state clean on the device, so
  // the first step's voltage d2h is redundant; every later step's readback
  // follows a device-side reaction write and must still be priced.
  const auto placement = reaction::TissuePlacement::SplitCpuDiffusion;
  const RunTotals off = run_cardioid(true, false, placement);
  std::uint64_t elided = 0;
  const RunTotals on = run_cardioid(true, true, placement, &elided);
  const double cell_bytes = 16.0 * 16.0 * 8.0;
  EXPECT_EQ(off.c.d2h_bytes - on.c.d2h_bytes, cell_bytes);
  EXPECT_EQ(off.c.h2d_bytes, on.c.h2d_bytes);  // every lap upload is fresh
  EXPECT_EQ(elided, 1u);
  EXPECT_LT(on.sim, off.sim);
}

RunTotals run_md(bool with_arena, bool elide, md::Placement placement) {
  core::Rng rng(11);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.7, 0.8, rng);
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  mem::ArenaConfig acfg;
  acfg.elide_clean_transfers = elide;
  std::optional<mem::DeviceArena> arena;
  if (with_arena) arena.emplace(gpu, acfg);
  md::SimConfig cfg;
  cfg.placement = placement;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg,
                                       0.4);
  for (int s = 0; s < 20; ++s) sim.step();
  return {gpu.simulated_time(), gpu.counters()};
}

TEST(BitIdentical, MdMatchesDetachedRunBothPlacementsBothElisionModes) {
  // Split MD rewrites positions on the host and forces on the device every
  // step, so nothing is ever elidable: all four arena combinations match
  // the detached run exactly.
  for (const auto placement : {md::Placement::AllGpu, md::Placement::Split}) {
    const RunTotals off = run_md(false, false, placement);
    EXPECT_TRUE(totals_equal(off, run_md(true, false, placement)));
    EXPECT_TRUE(totals_equal(off, run_md(true, true, placement)));
  }
}

struct CgRun {
  RunTotals totals;
  std::vector<double> x;
  la::SolveResult res;
  mem::DeviceArena::Stats stats;
};

CgRun run_cg(double capacity_bytes) {  // 0: huge (machine), -1: no arena
  auto ctx = core::make_device();
  std::optional<mem::DeviceArena> arena;
  if (capacity_bytes >= 0.0) {
    mem::ArenaConfig cfg;
    cfg.capacity_bytes = capacity_bytes;
    arena.emplace(ctx, cfg);
  }
  const la::CsrMatrix a = la::poisson2d(40, 40);
  const la::CsrOperator op(a);
  const la::JacobiPreconditioner prec(a);
  std::vector<double> b(a.rows(), 1.0), x(a.rows(), 0.0);
  CgRun r;
  r.res = la::cg(ctx, op, prec, b, x, {.max_iters = 200, .rel_tol = 1e-8});
  ctx.sync();
  r.totals = {ctx.simulated_time(), ctx.counters()};
  r.x = std::move(x);
  if (arena) r.stats = arena->stats();
  return r;
}

TEST(BitIdentical, CgUnderCapacityMatchesDetachedRun) {
  const CgRun detached = run_cg(-1.0);
  const CgRun huge = run_cg(0.0);
  EXPECT_TRUE(detached.res.converged);
  EXPECT_TRUE(totals_equal(detached.totals, huge.totals));
  EXPECT_EQ(detached.x, huge.x);
  EXPECT_EQ(huge.stats.evictions, 0u);
}

TEST(DeviceArena, CgOverCapacityThrashesButSolvesIdentically) {
  const CgRun huge = run_cg(0.0);
  // Matrix footprint ~107 KB, 7 operands ~196 KB total: 120 KB holds the
  // matrix plus one vector, so every iteration's operand sweep thrashes.
  const CgRun tight = run_cg(120.0e3);
  EXPECT_GT(tight.stats.evictions, 0u);
  EXPECT_GT(tight.stats.spill_bytes, 0.0);  // x/r/z/p/ap evict dirty
  EXPECT_GT(tight.totals.sim, huge.totals.sim);
  // Residency pricing never perturbs the arithmetic.
  EXPECT_EQ(tight.x, huge.x);
  EXPECT_EQ(tight.res.iterations, huge.res.iterations);
}

// --- MemoryPool regressions (satellites 1 and 2) ----------------------------

TEST(MemoryPool, HugeRequestThrowsInsteadOfCorruptingFreeLists) {
  core::MemoryPool pool;
  // These used to compute size class k >= 64: free_[k] indexed out of
  // bounds and 1ull << k was UB. Now they are rejected up front, with the
  // pool untouched.
  EXPECT_THROW(pool.allocate(std::numeric_limits<std::size_t>::max()),
               std::length_error);
  EXPECT_THROW(pool.allocate((std::size_t{1} << 63) + 1), std::length_error);
  EXPECT_EQ(pool.stats().request_count, 0u);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
  // The pool still works afterwards.
  void* p = pool.allocate(64);
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, 64);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
}

TEST(MemoryPool, DeallocateNeverUnderflowsCurrentBytes) {
  core::MemoryPool pool;
  pool.set_debug_checks(false);  // the release-mode clamping path
  void* p = pool.allocate(100);  // class 2^7 = 128 B
  EXPECT_EQ(pool.stats().current_bytes, 128u);
  pool.deallocate(p, 100);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
  // A mismatched free used to wrap current_bytes to ~2^64 and poison the
  // highwater/reuse reporting forever; now the subtraction saturates.
  pool.deallocate(pool.allocate(8), 100);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
}

TEST(MemoryPool, DebugChecksDetectDoubleFree) {
  core::MemoryPool pool;
  pool.set_debug_checks(true);
  void* p = pool.allocate(100);
  pool.deallocate(p, 100);
  EXPECT_THROW(pool.deallocate(p, 100), std::logic_error);
}

TEST(MemoryPool, DebugChecksDetectSizeMismatchedFree) {
  core::MemoryPool pool;
  pool.set_debug_checks(true);
  void* p = pool.allocate(100);   // class 2^7
  EXPECT_THROW(pool.deallocate(p, 300), std::logic_error);  // class 2^9
  // The block is still live after the rejected free; a matched free works.
  pool.deallocate(p, 100);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
}

// --- UnifiedBuffer regressions (satellite 3) + read-touch elision -----------

TEST(UnifiedBuffer, TrailingPartialPageChargesItsRealSize) {
  auto ctx = core::make_device();
  // 8200 doubles = 65600 B = one full 64 KiB page + a 64 B trailing page.
  core::UnifiedBuffer<double> ub(ctx, 8200);
  ASSERT_EQ(ub.pages(), 2u);
  ub.device_touch(0, ub.size());
  // The old model charged 2 * 65536 = 131072 B here.
  EXPECT_EQ(ctx.counters().h2d_bytes, 65600.0);
}

TEST(UnifiedBuffer, SubPageBufferChargesItsOwnBytes) {
  auto ctx = core::make_device();
  core::UnifiedBuffer<double> ub(ctx, 8);  // 64 B, one (tiny) page
  ub.device_touch(0, 8);
  EXPECT_EQ(ctx.counters().h2d_bytes, 64.0);  // not 65536
}

TEST(UnifiedBuffer, ReadTouchesElideTheReturnTrip) {
  auto ctx = core::make_device();
  core::UnifiedBuffer<double> ub(ctx, 8192);  // exactly one page
  ub.device_touch(0, ub.size());              // h2d migration
  EXPECT_EQ(ctx.counters().h2d_bytes, 65536.0);
  (void)ub.host_read(0, ub.size());  // d2h: host copy was stale
  EXPECT_EQ(ctx.counters().d2h_bytes, 65536.0);
  // Neither side has written since: the page is coherent, so re-reading it
  // from the device is free where the old model re-charged the crossing.
  (void)ub.device_read(0, ub.size());
  EXPECT_EQ(ctx.counters().h2d_bytes, 65536.0);
  EXPECT_EQ(ub.elided_transfers(), 1u);
  EXPECT_EQ(ub.elided_bytes(), 65536.0);
  (void)ub.host_read(0, ub.size());
  EXPECT_EQ(ctx.counters().d2h_bytes, 65536.0);
  EXPECT_EQ(ub.elided_transfers(), 2u);
}

TEST(UnifiedBuffer, WriteTouchPingPongMatchesTheLegacyModel) {
  auto ctx = core::make_device();
  core::UnifiedBuffer<double> ub(ctx, 8192);
  // The pre-dirty-tracking API: every crossing pays one page migration,
  // and nothing is ever elided — the legacy accounting, bit for bit.
  for (int i = 0; i < 3; ++i) {
    ub.device_touch(0, ub.size());
    ub.host_touch(0, ub.size());
  }
  EXPECT_EQ(ctx.counters().h2d_bytes, 3.0 * 65536.0);
  EXPECT_EQ(ctx.counters().d2h_bytes, 3.0 * 65536.0);
  EXPECT_EQ(ub.elided_transfers(), 0u);
}

// --- Named Buffer<T> under the arena ----------------------------------------

TEST(Buffer, NamedBufferRefaultsAfterEviction) {
  auto ctx = core::make_device();
  mem::ArenaConfig cfg;
  cfg.capacity_bytes = 10000.0;
  mem::DeviceArena arena(ctx, cfg);
  core::Buffer<double> buf(ctx, "buf.x", 1000);  // 8000 B
  (void)buf.device_read();                       // first admission: free
  EXPECT_EQ(ctx.counters().h2d_bytes, 0.0);
  ctx.touch_device("hog", 9000.0, kRead);  // evicts buf.x (clean)
  EXPECT_FALSE(arena.resident("buf.x"));
  (void)buf.device_read();  // refault: priced h2d
  EXPECT_EQ(ctx.counters().h2d_bytes, 8000.0);
  EXPECT_TRUE(arena.resident("buf.x"));
}

TEST(Buffer, UnnamedBufferKeepsRawAccountingEvenWithArenaAttached) {
  auto ctx = core::make_device();
  mem::DeviceArena arena(ctx);
  core::Buffer<double> buf(ctx, 1000);
  buf.host_write()[0] = 1.0;
  (void)buf.device_read();
  EXPECT_EQ(ctx.counters().h2d_bytes, 8000.0);
  EXPECT_EQ(arena.stats().admits, 0u);  // the arena never saw it
}

}  // namespace
