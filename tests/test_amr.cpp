// Tests for the mini-SAMRAI module: box algebra, ghost exchange, pool-
// backed patch storage, prolongation/restriction, and the CleverLeaf Euler
// solver (Sod shock physics, conservation, multi-patch equivalence).
#include <gtest/gtest.h>

#include <cmath>

#include "amr/euler.hpp"
#include "amr/two_level.hpp"

namespace {

using namespace coe;

TEST(Box, Algebra) {
  amr::Box a{0, 0, 9, 4};
  EXPECT_EQ(a.ni(), 10);
  EXPECT_EQ(a.nj(), 5);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_TRUE(a.contains(9, 4));
  EXPECT_FALSE(a.contains(10, 0));
  auto g = a.grown(2);
  EXPECT_EQ(g.ilo, -2);
  EXPECT_EQ(g.size(), 14u * 9u);
  auto i = amr::Box::intersect(a, amr::Box{5, 3, 20, 20});
  EXPECT_EQ(i.ilo, 5);
  EXPECT_EQ(i.ihi, 9);
  EXPECT_EQ(i.jlo, 3);
  EXPECT_TRUE(amr::Box::intersect(a, amr::Box{20, 20, 30, 30}).empty());
  auto r = a.refined(2);
  EXPECT_EQ(r.ni(), 20);
  EXPECT_EQ(r.coarsened(2).ni(), a.ni());
}

TEST(Patch, PoolBackedFields) {
  core::MemoryPool pool;
  {
    amr::Patch p(pool, amr::Box{0, 0, 7, 7}, 2);
    p.add_field("rho");
    p.field("rho").at(3, 3) = 5.0;
    EXPECT_DOUBLE_EQ(p.field("rho").at(3, 3), 5.0);
    EXPECT_GT(pool.stats().current_bytes, 0u);
  }
  EXPECT_EQ(pool.stats().current_bytes, 0u);
  // A second patch of the same shape reuses the freed block.
  amr::Patch q(pool, amr::Box{0, 0, 7, 7}, 2);
  q.add_field("rho");
  EXPECT_GT(pool.stats().reuse_count, 0u);
}

TEST(PatchLevel, GhostExchangeBetweenPatches) {
  core::MemoryPool pool;
  amr::PatchLevel level(pool, amr::Box{0, 0, 15, 7}, 2,
                        amr::BoundaryKind::Periodic);
  auto& left = level.add_patch(amr::Box{0, 0, 7, 7});
  auto& right = level.add_patch(amr::Box{8, 0, 15, 7});
  left.add_field("f");
  right.add_field("f");
  for (std::int64_t i = 0; i <= 7; ++i) {
    for (std::int64_t j = 0; j <= 7; ++j) {
      left.field("f").at(i, j) = double(i * 100 + j);
      right.field("f").at(i + 8, j) = double((i + 8) * 100 + j);
    }
  }
  level.fill_ghosts("f");
  // Left patch's right ghosts come from the right patch.
  EXPECT_DOUBLE_EQ(left.field("f").at(8, 3), 803.0);
  EXPECT_DOUBLE_EQ(left.field("f").at(9, 0), 900.0);
  // Periodic wrap: left patch's left ghosts come from the right edge.
  EXPECT_DOUBLE_EQ(left.field("f").at(-1, 2), 1502.0);
  // Right patch's right ghosts wrap to the left edge.
  EXPECT_DOUBLE_EQ(right.field("f").at(16, 5), 5.0);
}

TEST(PatchLevel, OutflowClampsAtWalls) {
  core::MemoryPool pool;
  amr::PatchLevel level(pool, amr::Box{0, 0, 7, 7}, 1,
                        amr::BoundaryKind::Outflow);
  auto& p = level.add_patch(amr::Box{0, 0, 7, 7});
  p.add_field("f");
  for (std::int64_t i = 0; i <= 7; ++i) {
    for (std::int64_t j = 0; j <= 7; ++j) {
      p.field("f").at(i, j) = double(i);
    }
  }
  level.fill_ghosts("f");
  EXPECT_DOUBLE_EQ(p.field("f").at(-1, 3), 0.0);  // clamped to i = 0
  EXPECT_DOUBLE_EQ(p.field("f").at(8, 3), 7.0);   // clamped to i = 7
}

TEST(Refinement, RestrictionAverages) {
  core::MemoryPool pool;
  amr::PatchLevel coarse(pool, amr::Box{0, 0, 7, 7}, 1,
                         amr::BoundaryKind::Outflow);
  amr::PatchLevel fine(pool, amr::Box{0, 0, 15, 15}, 1,
                       amr::BoundaryKind::Outflow);
  auto& cp = coarse.add_patch(amr::Box{0, 0, 7, 7});
  auto& fp = fine.add_patch(amr::Box{4, 4, 11, 11});
  cp.add_field("f");
  fp.add_field("f");
  for (std::int64_t i = 4; i <= 11; ++i) {
    for (std::int64_t j = 4; j <= 11; ++j) {
      fp.field("f").at(i, j) = double(i + j);
    }
  }
  amr::restrict_onto(fine, coarse, "f", 2);
  // Coarse cell (2,2) covers fine cells (4..5, 4..5): mean of 8,9,9,10.
  EXPECT_DOUBLE_EQ(cp.field("f").at(2, 2), 9.0);
  // Uncovered coarse cells untouched.
  EXPECT_DOUBLE_EQ(cp.field("f").at(0, 0), 0.0);
}

TEST(Refinement, ProlongationFillsFineGhosts) {
  core::MemoryPool pool;
  amr::PatchLevel coarse(pool, amr::Box{0, 0, 7, 7}, 1,
                         amr::BoundaryKind::Outflow);
  auto& cp = coarse.add_patch(amr::Box{0, 0, 7, 7});
  cp.add_field("f");
  for (std::int64_t i = 0; i <= 7; ++i) {
    for (std::int64_t j = 0; j <= 7; ++j) {
      cp.field("f").at(i, j) = double(10 * i + j);
    }
  }
  amr::Patch fp(pool, amr::Box{4, 4, 11, 11}, 2);
  fp.add_field("f");
  amr::prolong_into(coarse, fp, "f", 2);
  // Fine ghost (3, 6) -> coarse (1, 3) = 13.
  EXPECT_DOUBLE_EQ(fp.field("f").at(3, 6), 13.0);
  EXPECT_DOUBLE_EQ(fp.field("f").at(12, 12), 66.0);
}

TEST(Euler, SodShockQualitative) {
  core::MemoryPool pool;
  const std::int64_t n = 200;
  amr::PatchLevel level(pool, amr::Box{0, 0, n - 1, 3}, 2,
                        amr::BoundaryKind::Outflow);
  level.add_patch(amr::Box{0, 0, n - 1, 3});
  auto ctx = core::make_seq();
  amr::EulerConfig cfg;
  cfg.dx = 1.0 / double(n);
  cfg.dy = 1.0 / double(n);
  amr::EulerSolver solver(ctx, level, cfg);
  solver.init([n](std::int64_t i, std::int64_t) {
    return amr::sod_state(i, n / 2);
  });
  solver.advance(0.15);
  // Density profile: left state ~1, right state ~0.125, shock moved right,
  // monotone decrease overall for Sod.
  const auto left = solver.primitive_at(5, 1);
  const auto right = solver.primitive_at(n - 5, 1);
  EXPECT_NEAR(left.rho, 1.0, 0.02);
  EXPECT_NEAR(right.rho, 0.125, 0.02);
  // Contact/shock structure exists between the states.
  const auto mid = solver.primitive_at(n / 2 + 10, 1);
  EXPECT_GT(mid.rho, 0.2);
  EXPECT_LT(mid.rho, 0.9);
  EXPECT_GT(mid.u, 0.1);  // gas moving right
}

TEST(Euler, PeriodicConservation) {
  core::MemoryPool pool;
  amr::PatchLevel level(pool, amr::Box{0, 0, 31, 31}, 2,
                        amr::BoundaryKind::Periodic);
  level.add_patch(amr::Box{0, 0, 31, 31});
  auto ctx = core::make_seq();
  amr::EulerConfig cfg;
  cfg.dx = cfg.dy = 1.0 / 32.0;
  amr::EulerSolver solver(ctx, level, cfg);
  solver.init([](std::int64_t i, std::int64_t j) {
    amr::PrimState s;
    s.rho = 1.0 + 0.2 * std::sin(2.0 * M_PI * double(i) / 32.0);
    s.u = 0.3;
    s.v = 0.1 * std::cos(2.0 * M_PI * double(j) / 32.0);
    s.p = 1.0;
    return s;
  });
  const double m0 = solver.total_mass();
  const double e0 = solver.total_energy();
  const double px0 = solver.total_momentum_x();
  for (int s = 0; s < 50; ++s) solver.step(solver.compute_dt());
  EXPECT_NEAR(solver.total_mass(), m0, 1e-10 * std::abs(m0));
  EXPECT_NEAR(solver.total_energy(), e0, 1e-10 * std::abs(e0));
  EXPECT_NEAR(solver.total_momentum_x(), px0, 1e-10 * std::abs(px0) + 1e-12);
}

TEST(Euler, MultiPatchMatchesSinglePatch) {
  auto run = [](bool split) {
    core::MemoryPool pool;
    amr::PatchLevel level(pool, amr::Box{0, 0, 31, 15}, 2,
                          amr::BoundaryKind::Periodic);
    if (split) {
      level.add_patch(amr::Box{0, 0, 15, 15});
      level.add_patch(amr::Box{16, 0, 31, 15});
    } else {
      level.add_patch(amr::Box{0, 0, 31, 15});
    }
    auto ctx = core::make_seq();
    amr::EulerConfig cfg;
    cfg.dx = cfg.dy = 1.0 / 32.0;
    auto solver = std::make_unique<amr::EulerSolver>(ctx, level, cfg);
    solver->init([](std::int64_t i, std::int64_t j) {
      amr::PrimState s;
      s.rho = 1.0 + 0.3 * std::exp(-0.05 * (double(i - 16) * double(i - 16) +
                                            double(j - 8) * double(j - 8)));
      s.p = s.rho;
      return s;
    });
    const double dt = 0.5 * solver->compute_dt();
    for (int step = 0; step < 20; ++step) solver->step(dt);
    std::vector<double> rho;
    for (std::int64_t i = 0; i < 32; ++i) {
      for (std::int64_t j = 0; j < 16; ++j) {
        rho.push_back(solver->primitive_at(i, j).rho);
      }
    }
    return rho;
  };
  const auto single = run(false);
  const auto multi = run(true);
  ASSERT_EQ(single.size(), multi.size());
  for (std::size_t k = 0; k < single.size(); ++k) {
    EXPECT_NEAR(single[k], multi[k], 1e-12);
  }
}


TEST(TwoLevel, FreeStreamPreserved) {
  // A uniform moving gas must remain exactly uniform through the
  // coarse/fine cycle (prolongation and restriction of constants are
  // identities; both solvers preserve free streams).
  core::MemoryPool pool;
  amr::PatchLevel coarse(pool, amr::Box{0, 0, 15, 15}, 2,
                         amr::BoundaryKind::Periodic);
  coarse.add_patch(amr::Box{0, 0, 15, 15});
  amr::PatchLevel fine(pool, amr::Box{0, 0, 31, 31}, 2,
                       amr::BoundaryKind::Periodic);
  fine.add_patch(amr::Box{8, 8, 23, 23});
  auto ctx = core::make_seq();
  amr::EulerConfig cfg;
  cfg.dx = cfg.dy = 1.0 / 16.0;
  amr::TwoLevelEuler sim(ctx, coarse, fine, 2, cfg);
  sim.init([](double, double) {
    amr::PrimState s;
    s.rho = 1.0;
    s.u = 0.4;
    s.v = -0.2;
    s.p = 1.0;
    return s;
  });
  for (int step = 0; step < 10; ++step) sim.step(sim.compute_dt());
  for (std::int64_t i = 0; i < 16; ++i) {
    for (std::int64_t j = 0; j < 16; ++j) {
      const auto s = sim.best_at(i, j);
      EXPECT_NEAR(s.rho, 1.0, 1e-12);
      EXPECT_NEAR(s.u, 0.4, 1e-12);
      EXPECT_NEAR(s.p, 1.0, 1e-11);
    }
  }
}

TEST(TwoLevel, RefinementSharpensTheShock) {
  // Sod tube with the fine level over the shock region: the two-level
  // solution must be closer to a fine-everywhere reference than the
  // coarse-only run (the whole point of SAMR).
  const std::int64_t n = 64;
  auto sod_xy = [n](double x, double) {
    return amr::sod_state(std::int64_t(x), n / 2);
  };

  // Reference: uniform fine grid (2x).
  core::MemoryPool pool_ref;
  amr::PatchLevel ref_level(pool_ref, amr::Box{0, 0, 2 * n - 1, 7}, 2,
                            amr::BoundaryKind::Outflow);
  ref_level.add_patch(amr::Box{0, 0, 2 * n - 1, 7});
  auto ctx = core::make_seq();
  amr::EulerConfig ref_cfg;
  ref_cfg.dx = ref_cfg.dy = 0.5 / double(n);
  amr::EulerSolver ref(ctx, ref_level, ref_cfg);
  ref.init([&](std::int64_t i, std::int64_t) {
    return amr::sod_state(i, n);  // same physical interface
  });
  ref.advance(0.1);

  auto error_vs_ref = [&](auto&& value_at) {
    double err = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double fine_avg = 0.5 * (ref.primitive_at(2 * i, 2).rho +
                                     ref.primitive_at(2 * i + 1, 2).rho);
      err += std::abs(value_at(i) - fine_avg);
    }
    return err / double(n);
  };

  // Coarse-only run.
  core::MemoryPool pool_c;
  amr::PatchLevel conly(pool_c, amr::Box{0, 0, n - 1, 3}, 2,
                        amr::BoundaryKind::Outflow);
  conly.add_patch(amr::Box{0, 0, n - 1, 3});
  amr::EulerConfig cfg;
  cfg.dx = cfg.dy = 1.0 / double(n);
  amr::EulerSolver coarse_only(ctx, conly, cfg);
  coarse_only.init([&](std::int64_t i, std::int64_t) {
    return amr::sod_state(i, n / 2);
  });
  coarse_only.advance(0.1);
  const double e_coarse = error_vs_ref([&](std::int64_t i) {
    return coarse_only.primitive_at(i, 1).rho;
  });

  // Two-level run with the fine patch over the evolving wave fan.
  core::MemoryPool pool_t;
  amr::PatchLevel coarse(pool_t, amr::Box{0, 0, n - 1, 3}, 2,
                         amr::BoundaryKind::Outflow);
  coarse.add_patch(amr::Box{0, 0, n - 1, 3});
  amr::PatchLevel fine(pool_t, amr::Box{0, 0, 2 * n - 1, 7}, 2,
                       amr::BoundaryKind::Outflow);
  fine.add_patch(amr::Box{n / 2, 0, 2 * n - n / 2 - 1, 7});
  amr::TwoLevelEuler sim(ctx, coarse, fine, 2, cfg);
  sim.init(sod_xy);
  sim.advance(0.1);
  const double e_amr = error_vs_ref([&](std::int64_t i) {
    return sim.best_at(i, 1).rho;
  });

  EXPECT_LT(e_amr, 0.8 * e_coarse);
}

}  // namespace
