// Tests for the ddcMD-style MD module: potentials, neighbor lists,
// integrator invariants (NVE energy, momentum), thermostat/barostat
// targets, SHAKE constraints, and placement accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "md/md.hpp"

namespace {

using namespace coe;

TEST(Potentials, LennardJonesMinimumAtR0) {
  md::LennardJones lj(1.0, 1.0, 3.0);
  const double rmin2 = std::pow(2.0, 1.0 / 3.0);  // r = 2^(1/6) sigma
  // Force vanishes at the minimum.
  EXPECT_NEAR(lj(rmin2).fr, 0.0, 1e-12);
  // Repulsive inside, attractive outside.
  EXPECT_GT(lj(0.8).fr, 0.0);
  EXPECT_LT(lj(1.5).fr, 0.0);
  // Shifted to ~0 at the cutoff.
  EXPECT_NEAR(lj(9.0).energy, 0.0, 1e-12);
}

TEST(Potentials, LennardJonesForceMatchesEnergyDerivative) {
  md::LennardJones lj(1.0, 1.0, 3.0);
  for (double r : {0.95, 1.1, 1.5, 2.0}) {
    const double h = 1e-6;
    const double dudr =
        (lj((r + h) * (r + h)).energy - lj((r - h) * (r - h)).energy) /
        (2.0 * h);
    EXPECT_NEAR(lj(r * r).fr, -dudr / r, 1e-5) << "r=" << r;
  }
}

TEST(Potentials, Exp6ForceMatchesEnergyDerivative) {
  md::Exp6 pot(1000.0, 5.0, 1.0, 3.0);
  for (double r : {0.9, 1.2, 1.8, 2.5}) {
    const double h = 1e-6;
    const double dudr =
        (pot((r + h) * (r + h)).energy - pot((r - h) * (r - h)).energy) /
        (2.0 * h);
    EXPECT_NEAR(pot(r * r).fr, -dudr / r, 1e-4) << "r=" << r;
  }
}

TEST(Potentials, MartiniAddsCoulomb) {
  md::MartiniPair neutral(1.0, 1.0, 0.0, 3.0);
  md::MartiniPair charged(1.0, 1.0, 1.0, 3.0);
  EXPECT_GT(charged(4.0).energy, neutral(4.0).energy);
  EXPECT_NEAR(charged(9.0).energy, 0.0, 1e-12);  // shifted at cutoff
}

TEST(Neighbor, CellListMatchesBruteForce) {
  core::Rng rng(5);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 5, 0.8, 1.0, rng);
  auto ctx = core::make_seq();
  md::NeighborList a(1.1, 0.3), b(1.1, 0.3);
  a.build(ctx, p, box);
  b.build_n2(ctx, p, box);
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  for (std::size_t i = 0; i < p.n; ++i) {
    ASSERT_EQ(a.row_ptr()[i + 1] - a.row_ptr()[i],
              b.row_ptr()[i + 1] - b.row_ptr()[i]);
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      EXPECT_EQ(a.pair_j()[k], b.pair_j()[k]);
    }
  }
}

TEST(Neighbor, RebuildTriggeredByMotion) {
  core::Rng rng(6);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.7, 1.0, rng);
  auto ctx = core::make_seq();
  md::NeighborList nl(1.1, 0.4);
  nl.build(ctx, p, box);
  EXPECT_FALSE(nl.needs_rebuild(p, box));
  p.x[0] = box.fold(p.x[0] + 0.3);  // beyond skin/2 = 0.2
  EXPECT_TRUE(nl.needs_rebuild(p, box));
}

TEST(Forces, NewtonThirdLawNetForceZero) {
  core::Rng rng(7);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.8, 1.0, rng);
  auto ctx = core::make_seq();
  md::NeighborList nl(1.5, 0.3);
  nl.build(ctx, p, box);
  p.zero_forces();
  md::LennardJones lj(1.0, 1.0, 1.5);
  auto res = md::compute_pair_forces(ctx, p, box, nl, lj);
  EXPECT_NE(res.energy, 0.0);
  double fx = 0.0, fy = 0.0, fz = 0.0;
  for (std::size_t i = 0; i < p.n; ++i) {
    fx += p.fx[i];
    fy += p.fy[i];
    fz += p.fz[i];
  }
  EXPECT_NEAR(fx, 0.0, 1e-9);
  EXPECT_NEAR(fy, 0.0, 1e-9);
  EXPECT_NEAR(fz, 0.0, 1e-9);
}

TEST(Simulation, NveConservesEnergy) {
  core::Rng rng(11);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 5, 0.7, 0.8, rng);
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::SimConfig cfg;
  cfg.dt = 0.002;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg,
                                       0.4);
  const double e0 = sim.measure().total();
  double emax_drift = 0.0;
  for (int s = 0; s < 200; ++s) {
    const auto info = sim.step();
    emax_drift = std::max(emax_drift, std::abs(info.total() - e0));
  }
  EXPECT_LT(emax_drift / std::abs(e0), 5e-3);
}

TEST(Simulation, MomentumConserved) {
  core::Rng rng(12);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.7, 1.0, rng);
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), {});
  for (int s = 0; s < 100; ++s) sim.step();
  auto& part = sim.particles();
  double px = 0.0;
  for (std::size_t i = 0; i < part.n; ++i) px += part.mass[i] * part.vx[i];
  EXPECT_NEAR(px, 0.0, 1e-8);
}

TEST(Simulation, LangevinReachesTargetTemperature) {
  core::Rng rng(13);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 5, 0.6, 0.2, rng);  // start cold
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::SimConfig cfg;
  cfg.thermostat = md::Thermostat::Langevin;
  cfg.temperature = 1.4;
  cfg.langevin_gamma = 2.0;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg);
  double tavg = 0.0;
  int samples = 0;
  for (int s = 0; s < 800; ++s) {
    sim.step();
    if (s >= 400) {
      tavg += sim.particles().temperature();
      ++samples;
    }
  }
  tavg /= samples;
  EXPECT_NEAR(tavg, 1.4, 0.15);
}

TEST(Simulation, BerendsenDrivesPressureTowardTarget) {
  core::Rng rng(14);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 5, 0.9, 1.2, rng);  // dense: high pressure
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::SimConfig cfg;
  cfg.thermostat = md::Thermostat::Langevin;
  cfg.temperature = 1.2;
  cfg.barostat = md::Barostat::Berendsen;
  cfg.pressure = 1.0;
  cfg.tau_p = 0.5;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg);
  const double p_initial = sim.measure().pressure;
  double p_final = 0.0;
  int samples = 0;
  for (int s = 0; s < 600; ++s) {
    const auto info = sim.step();
    if (s >= 300) {
      p_final += info.pressure;
      ++samples;
    }
  }
  p_final /= samples;
  EXPECT_GT(p_initial, 2.0);  // started well above target
  EXPECT_LT(std::abs(p_final - 1.0), std::abs(p_initial - 1.0) * 0.5);
}

TEST(Simulation, ShakeHoldsBondLengths) {
  // Diatomic molecules with constrained bonds.
  md::Particles p(8);
  md::Box box;
  box.length = 10.0;
  core::Rng rng(15);
  std::vector<md::Constraint> cons;
  for (std::size_t m = 0; m < 4; ++m) {
    const double cx = rng.uniform(2.0, 8.0);
    const double cy = rng.uniform(2.0, 8.0);
    const double cz = rng.uniform(2.0, 8.0);
    p.x[2 * m] = cx;
    p.y[2 * m] = cy;
    p.z[2 * m] = cz;
    p.x[2 * m + 1] = cx + 0.5;
    p.y[2 * m + 1] = cy;
    p.z[2 * m + 1] = cz;
    for (std::size_t k = 0; k < 2; ++k) {
      p.vx[2 * m + k] = rng.normal(0.0, 0.5);
      p.vy[2 * m + k] = rng.normal(0.0, 0.5);
      p.vz[2 * m + k] = rng.normal(0.0, 0.5);
    }
    cons.push_back({std::uint32_t(2 * m), std::uint32_t(2 * m + 1), 0.5});
  }
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::SimConfig cfg;
  cfg.dt = 0.002;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg);
  sim.set_constraints(cons);
  for (int s = 0; s < 200; ++s) sim.step();
  auto& part = sim.particles();
  for (const auto& c : cons) {
    const double dx = box.wrap(part.x[c.i] - part.x[c.j]);
    const double dy = box.wrap(part.y[c.i] - part.y[c.j]);
    const double dz = box.wrap(part.z[c.i] - part.z[c.j]);
    EXPECT_NEAR(std::sqrt(dx * dx + dy * dy + dz * dz), 0.5, 1e-6);
  }
}

TEST(Simulation, BondedForcesPullTowardRestLength) {
  md::Particles p(2);
  md::Box box;
  box.length = 10.0;
  p.x[0] = 4.0;
  p.x[1] = 5.0;  // stretched vs r0 = 0.8
  p.y[0] = p.y[1] = 5.0;
  p.z[0] = p.z[1] = 5.0;
  auto ctx = core::make_seq();
  p.zero_forces();
  std::vector<md::Bond> bonds{{0, 1, 0.8, 100.0}};
  const double e = md::compute_bond_forces(ctx, p, box, bonds);
  EXPECT_NEAR(e, 0.5 * 100.0 * 0.04, 1e-12);
  EXPECT_GT(p.fx[0], 0.0);  // pulled toward the partner
  EXPECT_LT(p.fx[1], 0.0);
  EXPECT_NEAR(p.fx[0] + p.fx[1], 0.0, 1e-12);
}

TEST(Simulation, AngleForcesRestoreRestAngle) {
  md::Particles p(3);
  md::Box box;
  box.length = 10.0;
  // 90-degree angle, rest angle 180 degrees: force opens it up.
  p.x[0] = 4.0;
  p.y[0] = 5.0;
  p.x[1] = 5.0;
  p.y[1] = 5.0;
  p.x[2] = 5.0;
  p.y[2] = 4.0;
  p.z[0] = p.z[1] = p.z[2] = 5.0;
  auto ctx = core::make_seq();
  p.zero_forces();
  std::vector<md::Angle> angles{{0, 1, 2, M_PI, 10.0}};
  const double e = md::compute_angle_forces(ctx, p, box, angles);
  EXPECT_GT(e, 0.0);
  // Energy decreases along the force direction (finite-difference check).
  const double h = 1e-6;
  p.x[0] += h * p.fx[0];
  p.y[0] += h * p.fy[0];
  p.x[1] += h * p.fx[1];
  p.y[1] += h * p.fy[1];
  p.x[2] += h * p.fx[2];
  p.y[2] += h * p.fy[2];
  md::Particles q = p;
  q.zero_forces();
  const double e2 = md::compute_angle_forces(ctx, q, box, angles);
  EXPECT_LT(e2, e);
}

TEST(Simulation, SplitPlacementTransfersEveryStep) {
  core::Rng rng(16);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.7, 1.0, rng);
  auto gpu1 = core::make_device();
  auto cpu1 = core::make_cpu();
  md::SimConfig all_gpu;
  all_gpu.placement = md::Placement::AllGpu;
  md::Simulation<md::LennardJones> sim1(gpu1, cpu1, p, box,
                                        md::LennardJones(1.0, 1.0, 2.5),
                                        all_gpu);
  auto gpu2 = core::make_device();
  auto cpu2 = core::make_cpu();
  md::SimConfig split;
  split.placement = md::Placement::Split;
  md::Simulation<md::LennardJones> sim2(gpu2, cpu2, p, box,
                                        md::LennardJones(1.0, 1.0, 2.5),
                                        split);
  const auto t1_before = gpu1.counters().transfers;
  const auto t2_before = gpu2.counters().transfers;
  for (int s = 0; s < 10; ++s) {
    sim1.step();
    sim2.step();
  }
  // ddcMD placement: no per-step transfers. GROMACS-like: 2 per step.
  EXPECT_EQ(gpu1.counters().transfers - t1_before, 0u);
  EXPECT_EQ(gpu2.counters().transfers - t2_before, 20u);
}

}  // namespace
