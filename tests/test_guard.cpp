// Tests for coe::guard: seeded SDC injection, silent-error detectors
// (checksum scrubs, ABFT-checksummed SpMV, invariant/range monitors), and
// the containment guarantee when wired into resil::run_resilient — every
// injected corruption is detected before a step consumes it, rolled back,
// and the final answer is bitwise identical to a fault-free run. The
// acceptance runs (CG + stencil + MD) inject well over 100 corruptions
// between them. Seeds derive from COE_CHAOS_SEED (CI's chaos job sweeps
// it); every assertion here is cadence-based, not seed-based, so any seed
// must pass.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "guard/guard.hpp"
#include "la/la.hpp"
#include "md/simulation.hpp"
#include "obs/metrics.hpp"
#include "prof/span.hpp"
#include "reaction/monodomain.hpp"
#include "resil/resil.hpp"
#include "stencil/wave.hpp"

namespace {

using namespace coe;

/// Chaos seed for this process: CI's chaos job sets COE_CHAOS_SEED per
/// matrix entry; a failure is reproducible by exporting the logged value.
std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("COE_CHAOS_SEED");
    std::uint64_t v = env != nullptr ? std::strtoull(env, nullptr, 10) : 1ull;
    if (v == 0) v = 1;
    std::cout << "[chaos] COE_CHAOS_SEED=" << v << "\n";
    return v;
  }();
  return seed;
}

// --- SdcInjector -----------------------------------------------------------

TEST(SdcInjector, DeterministicForEqualSeeds) {
  std::vector<double> a(64, 1.5), b(64, 1.5);
  guard::SdcConfig cfg;
  cfg.every_polls = 1;
  cfg.seed = chaos_seed();
  guard::SdcInjector ia(cfg), ib(cfg);
  ia.add_target("buf", a);
  ib.add_target("buf", b);
  for (int k = 0; k < 20; ++k) {
    ia.poll(0.0);
    ib.poll(0.0);
  }
  ASSERT_EQ(ia.log().size(), 20u);
  ASSERT_EQ(ib.log().size(), 20u);
  for (std::size_t i = 0; i < ia.log().size(); ++i) {
    EXPECT_EQ(ia.log()[i].index, ib.log()[i].index);
    EXPECT_EQ(ia.log()[i].bit, ib.log()[i].bit);
    EXPECT_EQ(ia.log()[i].new_bits, ib.log()[i].new_bits);
  }
  // Bit-pattern compare: flips can produce NaN, where operator== would lie.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]));
  }
}

TEST(SdcInjector, EveryPollsCadence) {
  std::vector<double> buf(16, 0.25);
  guard::SdcConfig cfg;
  cfg.every_polls = 3;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  inj.add_target("buf", buf);
  for (int k = 0; k < 12; ++k) inj.poll(0.0);
  EXPECT_EQ(inj.polls(), 12u);
  EXPECT_EQ(inj.injected(), 4u);
}

TEST(SdcInjector, MaxCorruptionsCapsInjection) {
  std::vector<double> buf(16, 0.25);
  guard::SdcConfig cfg;
  cfg.every_polls = 1;
  cfg.max_corruptions = 3;
  guard::SdcInjector inj(cfg);
  inj.add_target("buf", buf);
  for (int k = 0; k < 10; ++k) inj.poll(0.0);
  EXPECT_EQ(inj.injected(), 3u);
}

TEST(SdcInjector, ExponentBitClassIsLoud) {
  std::vector<double> buf(8, 1.0);
  guard::SdcConfig cfg;
  cfg.bit_lo = 62;
  cfg.bit_hi = 62;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  const auto c = inj.corrupt_one(buf, "buf");
  EXPECT_EQ(c.bit, 62);
  EXPECT_EQ(c.bits_flipped, 1);
  EXPECT_EQ(c.new_bits, c.old_bits ^ (1ull << 62));
  // Top exponent bit of 1.0: the damage is many orders of magnitude.
  const double v = buf[c.index];
  EXPECT_TRUE(v != 1.0);
  EXPECT_GT(std::abs(std::log2(std::abs(v))), 100.0);
}

TEST(SdcInjector, MantissaBitClassIsQuiet) {
  std::vector<double> buf(8, 1.0);
  guard::SdcConfig cfg;
  cfg.bit_lo = 0;
  cfg.bit_hi = 20;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  const auto c = inj.corrupt_one(buf, "buf");
  EXPECT_LE(c.bit, 20);
  const double v = buf[c.index];
  EXPECT_NE(v, 1.0);                      // the flip really landed...
  EXPECT_LT(std::abs(v - 1.0), 1e-9);     // ...but below any loose tolerance
}

TEST(SdcInjector, BurstStaysContiguousAndBounded) {
  std::vector<double> buf(8, 3.0);
  guard::SdcConfig cfg;
  cfg.every_polls = 1;
  cfg.burst_max = 4;
  cfg.seed = chaos_seed() + 7;
  guard::SdcInjector inj(cfg);
  inj.add_target("buf", buf);
  for (int k = 0; k < 32; ++k) inj.poll(0.0);
  for (const auto& c : inj.log()) {
    EXPECT_GE(c.bits_flipped, 1);
    EXPECT_LE(c.bits_flipped, 4);
    const std::uint64_t mask = c.old_bits ^ c.new_bits;
    // Exactly bits_flipped contiguous bits starting at c.bit.
    const std::uint64_t expect =
        ((c.bits_flipped >= 64 ? ~0ull : (1ull << c.bits_flipped) - 1ull))
        << c.bit;
    EXPECT_EQ(mask, expect);
  }
}

TEST(SdcInjector, ResidencyFilterSelectsOnlyEligibleTargets) {
  std::vector<double> dev(32, 1.0), host(32, 1.0);
  guard::SdcConfig cfg;
  cfg.every_polls = 1;
  cfg.target = guard::SdcTarget::Host;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  inj.add_target("dev", dev, /*on_device=*/true);
  inj.add_target("host", host, /*on_device=*/false);
  for (int k = 0; k < 16; ++k) inj.poll(0.0);
  EXPECT_EQ(inj.injected(), 16u);
  for (const auto& c : inj.log()) EXPECT_EQ(c.target, "host");
  for (double v : dev) EXPECT_EQ(v, 1.0);
}

TEST(SdcInjector, DisabledWithoutTargetsOrClock) {
  guard::SdcInjector off(guard::SdcConfig{});  // rate 0, every_polls 0
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.poll(1e300), 0u);

  guard::SdcConfig cfg;
  cfg.every_polls = 1;
  guard::SdcInjector no_targets(cfg);
  EXPECT_FALSE(no_targets.enabled());  // armed clock, nothing to corrupt
  EXPECT_EQ(no_targets.poll(0.0), 0u);
}

TEST(SdcInjector, RateModeFollowsSimulatedClock) {
  std::vector<double> buf(64, 2.0);
  guard::SdcConfig cfg;
  cfg.rate = 100.0;  // one corruption per 0.01 simulated s on average
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  inj.add_target("buf", buf);
  for (int k = 1; k <= 1000; ++k) inj.poll(static_cast<double>(k) * 0.01);
  EXPECT_GT(inj.injected(), 0u);
  EXPECT_LT(inj.injected(), 1000u);
}

// --- Detectors -------------------------------------------------------------

TEST(ChecksumDetector, CatchesAnySingleBitFlip) {
  auto ctx = core::make_device();
  std::vector<double> buf(256, 0.125);
  guard::ChecksumDetector det("scrub");
  det.add_target("buf", buf);
  EXPECT_TRUE(det.check(ctx));

  guard::SdcConfig cfg;
  cfg.bit_lo = 0;
  cfg.bit_hi = 0;  // the quietest possible flip: lowest mantissa bit
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  inj.corrupt_one(buf, "buf");
  EXPECT_FALSE(det.check(ctx));
  EXPECT_EQ(det.stats().checks, 2u);
  EXPECT_EQ(det.stats().trips, 1u);

  det.arm(ctx);  // accept the current bits as the new reference
  EXPECT_TRUE(det.check(ctx));
}

TEST(ChecksumDetector, ChecksArePricedOnTheMachineModel) {
  auto ctx = core::make_device();
  std::vector<double> buf(1 << 14, 1.0);
  guard::ChecksumDetector det;
  det.add_target("buf", buf);
  const double t0 = ctx.simulated_time();
  EXPECT_TRUE(det.check(ctx));
  EXPECT_GT(ctx.simulated_time(), t0);  // the detection tax is real time
  EXPECT_GT(det.stats().check_s, 0.0);
}

TEST(BoundDetector, TripsOutsideBoundsAndOnNonFinite) {
  auto ctx = core::make_device();
  double value = 1.0;
  guard::BoundDetector det("bound", [&](core::ExecContext&) { return value; },
                           0.0, 2.0);
  EXPECT_TRUE(det.check(ctx));
  value = 3.0;
  EXPECT_FALSE(det.check(ctx));
  value = std::nan("");
  EXPECT_FALSE(det.check(ctx));
  EXPECT_EQ(det.stats().trips, 2u);
}

TEST(DriftDetector, TripsOnJumpNotOnSmallDrift) {
  auto ctx = core::make_device();
  double value = 100.0;
  guard::DriftDetector det("drift", [&](core::ExecContext&) { return value; },
                           1e-3);
  EXPECT_TRUE(det.check(ctx));  // unarmed: any finite value passes
  det.arm(ctx);
  value = 100.0 * (1.0 + 1e-6);
  EXPECT_TRUE(det.check(ctx));  // inside the per-step tolerance
  value = 101.0;
  EXPECT_FALSE(det.check(ctx));  // 1% jump against 0.1% tolerance
}

TEST(RangeDetector, StridedComponentRangesOverInterleavedState) {
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  reaction::TissueConfig tc;
  tc.nx = 12;
  tc.ny = 12;
  reaction::Monodomain tissue(gpu, cpu, tc);
  tissue.stimulate(0, 4, 0, 12, 60.0, 1.0);
  tissue.run(2.0);

  auto state = tissue.state_data();
  guard::DetectorSet det;
  det.emplace<guard::RangeDetector>("v_range", state,
                                    reaction::Monodomain::kVoltageLo,
                                    reaction::Monodomain::kVoltageHi, 4, 0);
  for (std::size_t gate = 1; gate <= 3; ++gate) {
    det.emplace<guard::RangeDetector>("gate_range", state,
                                      reaction::Monodomain::kGateLo,
                                      reaction::Monodomain::kGateHi, 4, gate);
  }
  EXPECT_TRUE(det.check_all(gpu));  // physiological state is in range

  // Blow the top exponent bit of one m-gate (offset 1 of cell 0): any gate
  // value in (0, 1) has that bit clear, so the flip always lands far above
  // kGateHi and the stride-4 component guard must trip — exactly one trip,
  // from the right component's detector.
  guard::SdcConfig cfg;
  cfg.bit_lo = 62;
  cfg.bit_hi = 62;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  auto gate = state.subspan(1, 1);
  inj.corrupt_one(gate, "m_gate");
  EXPECT_FALSE(det.check_all(gpu));
  EXPECT_EQ(det.trips(), 1u);
  EXPECT_EQ(det[0].stats().trips, 0u);  // the voltage guard stayed clean
}

TEST(DetectorSet, ChecksAllWithoutShortCircuit) {
  auto ctx = core::make_device();
  double bad = 10.0;  // outside [0,1] from the start
  guard::DetectorSet det;
  det.emplace<guard::BoundDetector>(
      "first", [&](core::ExecContext&) { return bad; }, 0.0, 1.0);
  auto& second = det.emplace<guard::BoundDetector>(
      "second", [](core::ExecContext&) { return 0.5; }, 0.0, 1.0);
  EXPECT_FALSE(det.check_all(ctx));
  // The second detector still ran (stats stay comparable across the set).
  EXPECT_EQ(second.stats().checks, 1u);
  EXPECT_EQ(det.checks(), 2u);
  EXPECT_EQ(det.trips(), 1u);
}

TEST(DetectorSet, PublishesMetricsAndProfilerSpans) {
  auto ctx = core::make_device();
  obs::MetricsRegistry metrics;
  prof::Profiler profiler;
  std::vector<double> buf(1024, 1.0);
  guard::DetectorSet det;
  det.set_sinks(&metrics, &profiler);
  auto& scrub = det.emplace<guard::ChecksumDetector>("scrub");
  scrub.add_target("buf", buf);
  det.arm_all(ctx);
  EXPECT_TRUE(det.check_all(ctx));
  buf[17] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(buf[17]) ^ 1u);
  EXPECT_FALSE(det.check_all(ctx));

  EXPECT_DOUBLE_EQ(metrics.counter("guard.checks"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.counter("guard.trips"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("guard.scrub.trips"), 1.0);
  EXPECT_GT(metrics.counter("guard.check_s"), 0.0);

  // "guard/scrub" opens a shared "guard" node with the detector beneath it,
  // so the detection tax lines up next to the kernels in the report.
  const auto& root = profiler.root();
  const prof::Profiler::Node* guard_node = nullptr;
  for (const auto& c : root.children) {
    if (c->name == "guard") guard_node = c.get();
  }
  ASSERT_NE(guard_node, nullptr);
  ASSERT_EQ(guard_node->children.size(), 1u);
  EXPECT_EQ(guard_node->children[0]->name, "scrub");
  EXPECT_GE(guard_node->children[0]->calls, 2u);
  EXPECT_GT(guard_node->sim_s, 0.0);
}

// --- ABFT (Huang–Abraham checksummed SpMV) ---------------------------------

TEST(Abft, ColumnSumsAreTheTransposeChecksum) {
  auto a = la::poisson2d(6, 5);
  const auto w = a.column_sums();
  std::vector<double> e(a.rows(), 1.0), wt(a.cols(), 0.0);
  a.spmv_transpose(e, wt);
  ASSERT_EQ(w.size(), wt.size());
  for (std::size_t j = 0; j < w.size(); ++j) EXPECT_DOUBLE_EQ(w[j], wt[j]);
}

TEST(Abft, CleanApplyMatchesPlainSpmvBitwise) {
  auto ctx = core::make_device();
  auto a = la::poisson2d(10, 10);
  la::AbftCsrOperator guarded(a);
  core::Rng rng(chaos_seed());
  std::vector<double> x(a.cols()), y_plain(a.rows()), y_guarded(a.rows());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  a.spmv(ctx, x, y_plain);
  guarded.apply(ctx, x, y_guarded);
  for (std::size_t i = 0; i < y_plain.size(); ++i) {
    ASSERT_EQ(y_plain[i], y_guarded[i]);
  }
  EXPECT_EQ(guarded.checks(), 1u);
  EXPECT_EQ(guarded.trips(), 0u);
  EXPECT_LT(guarded.last_relative_error(), 1e-12);
}

TEST(Abft, StaleChecksumDetectsCorruptedMatrix) {
  // Corrupting A after the checksum vector w = A^T e is computed is the
  // classic ABFT scenario: the product is consistent with the corrupted
  // matrix but not with the checksum, so the identity e^T y = w^T x fails.
  auto ctx = core::make_device();
  auto a = la::poisson2d(8, 8);
  la::AbftCsrOperator guarded(a, 1e-9);
  std::vector<double> x(a.cols(), 1.0), y(a.rows());
  guarded.apply(ctx, x, y);
  EXPECT_EQ(guarded.trips(), 0u);

  guard::SdcConfig cfg;
  cfg.bit_lo = 55;  // exponent-range flip: loud corruption
  cfg.bit_hi = 55;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  inj.corrupt_one(a.values(), "A.values");

  guarded.apply(ctx, x, y);
  EXPECT_EQ(guarded.checks(), 2u);
  EXPECT_EQ(guarded.trips(), 1u);
  EXPECT_GT(guarded.last_relative_error(), 1e-9);
  guarded.clear_trips();
  EXPECT_EQ(guarded.trips(), 0u);
}

TEST(Abft, CgSelfHealsThroughResidualRestart) {
  // cg() with the ABFT residual guard enabled on a clean run: checks
  // happen, nothing trips, and the answer matches the unguarded solve.
  auto a = la::poisson2d(12, 12);
  const std::size_t n = a.rows();
  core::Rng rng(chaos_seed());
  std::vector<double> x_true(n), b(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  a.spmv(ctx, x_true, b);
  la::CsrOperator op(a);
  la::JacobiPreconditioner prec(a);

  std::vector<double> x(n, 0.0);
  la::SolveOptions opts;
  opts.max_iters = 500;
  opts.rel_tol = 1e-8;
  opts.abft_every = 5;
  // Near convergence the recursive and true residual norms agree
  // absolutely (to rounding) but not relatively; the tolerance must sit
  // above that floor or the guard trips on its own rounding noise.
  opts.abft_tol = 1e-4;
  auto res = la::cg(ctx, op, prec, b, x, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.abft_checks, 0u);
  EXPECT_EQ(res.abft_trips, 0u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-4);
}

TEST(CgStepper, ConvergesAndRoundTripsBitwise) {
  auto a = la::poisson2d(8, 8);
  const std::size_t n = a.rows();
  core::Rng rng(chaos_seed());
  std::vector<double> x_true(n), b(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_device();
  a.spmv(ctx, x_true, b);
  la::CsrOperator op(a);
  la::JacobiPreconditioner prec(a);

  std::vector<double> x(n, 0.0);
  la::CgStepper cg(ctx, op, prec, b, x);
  EXPECT_EQ(cg.sdc_targets().size(), 4u);
  for (int k = 0; k < 20; ++k) cg.step();
  std::vector<double> ck;
  cg.save_state(ck);
  for (int k = 0; k < 20; ++k) cg.step();
  std::vector<double> final_a;
  cg.save_state(final_a);
  const double resid_a = cg.residual();

  cg.restore_state(ck);
  EXPECT_EQ(cg.iteration(), 20u);
  for (int k = 0; k < 20; ++k) cg.step();
  std::vector<double> final_b;
  cg.save_state(final_b);
  ASSERT_EQ(final_a.size(), final_b.size());
  for (std::size_t i = 0; i < final_a.size(); ++i) {
    ASSERT_EQ(final_a[i], final_b[i]) << "blob index " << i;
  }
  EXPECT_LT(resid_a, 1e-8);  // 40 PCG iterations on an 8x8 Poisson problem
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

// --- Guarded runs: containment acceptance ----------------------------------

// Wires an app into run_resilient under SDC injection exactly as
// guard/guard.hpp prescribes and returns the report. `targets` are the
// app's live state spans; the checksum scrub guards all of them.
template <typename App, typename Step>
resil::ResilienceReport guarded_run(
    App& app, core::ExecContext& ctx, std::size_t steps, Step&& do_step,
    std::vector<std::pair<std::string, std::span<double>>> targets,
    guard::SdcInjector& inj, resil::CheckpointStore* store = nullptr,
    obs::MetricsRegistry* metrics = nullptr) {
  guard::DetectorSet det;
  auto& scrub = det.emplace<guard::ChecksumDetector>("scrub");
  for (auto& [name, span] : targets) {
    inj.add_target(name, span);
    scrub.add_target(name, span);
  }
  det.set_sinks(metrics, nullptr);

  resil::ResilienceConfig cfg;
  cfg.checkpoint_interval = 1e-300;  // checkpoint after every step
  cfg.metrics = metrics;
  cfg.verify_hook = [&](std::size_t) {
    inj.poll(ctx.simulated_time());
    return det.check_all(ctx);
  };
  cfg.on_rollback = [&](std::size_t) { det.arm_all(ctx); };
  cfg.corruption_count = [&] { return inj.injected(); };
  return resil::run_resilient(
      app, ctx, steps,
      [&](std::size_t s) {
        do_step(s);
        det.arm_all(ctx);
      },
      cfg, store);
}

void expect_bitwise_equal(const resil::Checkpointable& a,
                          const resil::Checkpointable& b) {
  std::vector<double> sa, sb;
  a.save_state(sa);
  b.save_state(sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i], sb[i]) << "blob index " << i;
  }
}

TEST(GuardedRun, CgContainsEveryCorruptionBitwise) {
  auto a = la::poisson2d(16, 16);
  const std::size_t n = a.rows();
  core::Rng rng(7);
  std::vector<double> x_true(n), b(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  la::JacobiPreconditioner prec(a);
  const std::size_t steps = 60;

  // Fault-free reference (ABFT-checksummed operator: the guard stack's
  // SpMV is the one whose answer must be reproduced).
  auto ctx_ref = core::make_device();
  la::AbftCsrOperator op_ref(a);
  std::vector<double> x_ref(n, 0.0);
  a.spmv(ctx_ref, x_true, b);
  la::CgStepper cg_ref(ctx_ref, op_ref, prec, b, x_ref);
  for (std::size_t s = 0; s < steps; ++s) cg_ref.step();

  // Corrupted run: a bit flip lands on every second verification poll.
  auto ctx = core::make_device();
  la::AbftCsrOperator op(a);
  std::vector<double> x(n, 0.0);
  la::CgStepper cg(ctx, op, prec, b, x);
  guard::SdcConfig sdc;
  sdc.every_polls = 2;
  sdc.seed = chaos_seed() * 1000003 + 1;
  guard::SdcInjector inj(sdc);
  resil::CheckpointStore store;
  auto rep = guarded_run(
      cg, ctx, steps, [&](std::size_t) { cg.step(); }, cg.sdc_targets(), inj,
      &store);

  ASSERT_TRUE(rep.completed);
  EXPECT_GE(inj.injected(), 40u);
  EXPECT_EQ(rep.corruptions_seen, inj.injected());
  EXPECT_EQ(rep.corruptions_contained, rep.corruptions_seen);
  EXPECT_EQ(rep.corruptions_escaped, 0u);
  EXPECT_DOUBLE_EQ(rep.escape_rate(), 0.0);
  EXPECT_EQ(rep.detections, rep.rollbacks);
  EXPECT_GT(rep.detections, 0u);
  EXPECT_GT(rep.steps_replayed, 0u);
  EXPECT_GT(rep.verify_time, 0.0);
  EXPECT_TRUE(store.verify_all());
  // ABFT never saw a corrupted operand: the scrub rolled every flip back
  // before a step's SpMV could consume it.
  EXPECT_EQ(op.trips(), 0u);
  expect_bitwise_equal(cg, cg_ref);
  ASSERT_EQ(x.size(), x_ref.size());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(x[i], x_ref[i]);
}

TEST(GuardedRun, WaveSolverContainsEveryCorruptionBitwise) {
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 10, 10, 10, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };
  const std::size_t steps = 40;

  auto ctx_ref = core::make_device();
  auto w_ref = build(ctx_ref);
  for (std::size_t s = 0; s < steps; ++s) w_ref.step(0.01);

  auto ctx = core::make_device();
  auto w = build(ctx);
  guard::SdcConfig sdc;
  sdc.every_polls = 2;
  sdc.seed = chaos_seed() * 1000003 + 2;
  guard::SdcInjector inj(sdc);
  auto rep = guarded_run(
      w, ctx, steps, [&](std::size_t) { w.step(0.01); }, w.sdc_targets(), inj);

  ASSERT_TRUE(rep.completed);
  EXPECT_GE(inj.injected(), 30u);
  EXPECT_EQ(rep.corruptions_contained, rep.corruptions_seen);
  EXPECT_EQ(rep.corruptions_escaped, 0u);
  EXPECT_GT(rep.detections, 0u);
  expect_bitwise_equal(w, w_ref);
}

TEST(GuardedRun, MdSimulationContainsEveryCorruptionBitwise) {
  auto build = [](core::ExecContext& gpu, core::ExecContext& cpu) {
    core::Rng init(13);
    md::Particles p;
    md::Box box;
    md::init_lattice(p, box, 4, 0.7, 1.0, init);
    return md::Simulation<md::LennardJones>(
        gpu, cpu, std::move(p), box, md::LennardJones(1.0, 1.0, 2.5),
        md::SimConfig{}, 0.4);
  };
  const std::size_t steps = 30;

  auto gpu_ref = core::make_device();
  auto cpu_ref = core::make_cpu();
  auto md_ref = build(gpu_ref, cpu_ref);
  for (std::size_t s = 0; s < steps; ++s) md_ref.step();

  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  auto sim = build(gpu, cpu);
  guard::SdcConfig sdc;
  sdc.every_polls = 2;
  sdc.seed = chaos_seed() * 1000003 + 3;
  guard::SdcInjector inj(sdc);
  obs::MetricsRegistry metrics;
  auto rep = guarded_run(
      sim, gpu, steps, [&](std::size_t) { sim.step(); }, sim.sdc_targets(),
      inj, nullptr, &metrics);

  ASSERT_TRUE(rep.completed);
  EXPECT_GE(inj.injected(), 25u);
  EXPECT_EQ(rep.corruptions_contained, rep.corruptions_seen);
  EXPECT_EQ(rep.corruptions_escaped, 0u);
  EXPECT_GT(rep.detections, 0u);
  expect_bitwise_equal(sim, md_ref);

  // Telemetry from both layers of the stack landed in one registry.
  EXPECT_GT(metrics.counter("guard.checks"), 0.0);
  EXPECT_GT(metrics.counter("guard.trips"), 0.0);
  EXPECT_GT(metrics.counter("resil.rollbacks"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.counter("resil.escapes"), 0.0);
}

TEST(GuardedRun, WeakDetectorMeasuresEscapeRate) {
  // Quiet mantissa flips against a drift monitor too loose to see them:
  // every corruption is accepted by a passing verification and the report
  // says so — the escape rate is measured, not hidden.
  auto ctx = core::make_device();
  stencil::WaveSolver w(ctx, 8, 8, 8, 1.0, 1.0, {});
  w.set_initial(
      [](double x, double y, double z) {
        return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
      },
      [](double, double, double) { return 0.0; }, 0.01);
  const std::size_t steps = 30;

  guard::SdcConfig sdc;
  sdc.every_polls = 2;
  sdc.bit_lo = 0;
  sdc.bit_hi = 20;  // low mantissa: relative damage ~1e-10
  sdc.seed = chaos_seed() * 1000003 + 4;
  guard::SdcInjector inj(sdc);
  for (auto& [name, span] : w.sdc_targets()) inj.add_target(name, span);

  guard::DetectorSet det;
  det.emplace<guard::DriftDetector>(
      "energy_drift", [&](core::ExecContext&) { return w.field_norm2(); },
      1e-3);

  resil::ResilienceConfig cfg;
  cfg.checkpoint_interval = 1e-300;
  cfg.verify_hook = [&](std::size_t) {
    inj.poll(ctx.simulated_time());
    return det.check_all(ctx);
  };
  cfg.on_rollback = [&](std::size_t) { det.arm_all(ctx); };
  cfg.corruption_count = [&] { return inj.injected(); };
  auto rep = resil::run_resilient(
      w, ctx, steps,
      [&](std::size_t) {
        w.step(0.01);
        det.arm_all(ctx);
      },
      cfg);

  ASSERT_TRUE(rep.completed);
  EXPECT_GT(rep.corruptions_seen, 10u);
  EXPECT_EQ(rep.detections, 0u);  // nothing tripped...
  EXPECT_EQ(rep.corruptions_escaped, rep.corruptions_seen);  // ...all escaped
  EXPECT_EQ(rep.corruptions_contained, 0u);
  EXPECT_DOUBLE_EQ(rep.escape_rate(), 1.0);
}

// --- Checkpoint CRC containment --------------------------------------------

struct Blob : resil::Checkpointable {
  std::vector<double> v;
  void save_state(std::vector<double>& out) const override { out = v; }
  void restore_state(const std::vector<double>& in) override { v = in; }
};

TEST(CheckpointCrc, CorruptNewestGenerationFallsBackToOlder) {
  auto ctx = core::make_device();
  Blob b;
  resil::CheckpointStore store;
  b.v.assign(128, 1.0);
  store.write("b", 1, b, ctx);
  b.v.assign(128, 2.0);
  store.write("b", 2, b, ctx);
  ASSERT_TRUE(store.verify_all());

  // SDC lands in the newest checkpoint payload itself.
  auto gens = store.generations("b");
  ASSERT_EQ(gens.size(), 2u);
  guard::SdcConfig cfg;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  inj.corrupt_one(gens.back().data, "ck");
  EXPECT_FALSE(store.verify_all());
  EXPECT_NE(resil::CheckpointStore::payload_crc(gens.back()),
            gens.back().crc);

  b.v.assign(128, -1.0);
  std::size_t step = 0;
  ASSERT_TRUE(store.restore_latest("b", b, ctx, &step));
  EXPECT_EQ(step, 1u);  // served by the intact older generation
  EXPECT_DOUBLE_EQ(b.v[0], 1.0);
  EXPECT_EQ(store.stats().crc_failures, 1u);
  EXPECT_EQ(store.stats().fallbacks, 1u);
  // The corrupt generation was dropped, not retried.
  EXPECT_EQ(store.generations("b").size(), 1u);
  EXPECT_TRUE(store.verify_all());
}

TEST(CheckpointCrc, AllGenerationsCorruptMeansUnrecoverable) {
  auto ctx = core::make_device();
  Blob b;
  resil::CheckpointStore store;
  b.v.assign(64, 1.0);
  store.write("b", 1, b, ctx);
  b.v.assign(64, 2.0);
  store.write("b", 2, b, ctx);
  guard::SdcConfig cfg;
  cfg.seed = chaos_seed();
  guard::SdcInjector inj(cfg);
  for (auto& g : store.generations("b")) inj.corrupt_one(g.data, "ck");

  b.v.assign(64, -1.0);
  EXPECT_FALSE(store.restore_latest("b", b, ctx));
  EXPECT_EQ(store.stats().crc_failures, 2u);
  EXPECT_DOUBLE_EQ(b.v[0], -1.0);  // app state untouched by failed restore
}

TEST(CheckpointCrc, DriverRecoversFromCorruptNewestGeneration) {
  // In-driver version: a detector trips once, the newest generation has
  // been silently corrupted in the meantime, and the rollback path must
  // refuse it by CRC and recover from the older generation — finishing
  // with the exact fault-free answer.
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 8, 8, 8, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };
  const std::size_t steps = 25;

  auto ctx_ref = core::make_device();
  auto w_ref = build(ctx_ref);
  for (std::size_t s = 0; s < steps; ++s) w_ref.step(0.01);

  auto ctx = core::make_device();
  auto w = build(ctx);
  resil::CheckpointStore store;
  guard::SdcConfig cfg_sdc;
  cfg_sdc.seed = chaos_seed();
  guard::SdcInjector inj(cfg_sdc);

  bool fired = false;
  resil::ResilienceConfig cfg;
  cfg.checkpoint_interval = 1e-300;
  cfg.verify_hook = [&](std::size_t) {
    auto gens = store.generations("run_resilient");
    if (!fired && gens.size() == 2) {
      fired = true;
      inj.corrupt_one(gens.back().data, "ck");  // rot the newest generation
      return false;  // and simultaneously report detected state corruption
    }
    return true;
  };
  auto rep = resil::run_resilient(
      w, ctx, steps, [&](std::size_t) { w.step(0.01); }, cfg, &store);

  ASSERT_TRUE(fired);
  ASSERT_TRUE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 1u);
  EXPECT_EQ(rep.checkpoint_crc_failures, 1u);
  EXPECT_EQ(store.stats().crc_failures, 1u);
  EXPECT_EQ(store.stats().fallbacks, 1u);
  EXPECT_GT(rep.steps_replayed, 0u);
  EXPECT_TRUE(store.verify_all());
  expect_bitwise_equal(w, w_ref);
}

}  // namespace
