// Cross-module integration tests: the workflows the iCoE actually ran,
// stitched together from multiple libraries.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analytics/databroker.hpp"
#include "analytics/lda.hpp"
#include "md/md.hpp"
#include "sched/scheduler.hpp"
#include "stencil/wave.hpp"
#include "topopt/simp.hpp"

namespace {

using namespace coe;

TEST(Integration, DistributedLdaThroughDataBrokerMatchesSerial) {
  // Four "workers" each E-step a shard, push sufficient statistics into
  // the Data Broker, one reducer merges and runs the M-step. The result
  // must equal the serial EM iteration bit-for-bit (the statistics are a
  // sum, so sharding commutes).
  analytics::CorpusConfig ccfg;
  ccfg.vocab = 300;
  ccfg.topics = 5;
  ccfg.docs = 120;
  ccfg.words_per_doc = 60;
  auto corpus = analytics::generate_corpus(ccfg);
  analytics::LdaConfig lcfg;
  lcfg.topics = 5;

  analytics::LdaModel serial(corpus.vocab, lcfg);
  analytics::LdaModel distributed(corpus.vocab, lcfg);

  serial.em_iteration(corpus);

  analytics::DataBroker broker;
  broker.create_namespace("lda-iter-0");
  const std::size_t workers = 4;
  const std::size_t shard = (corpus.docs.size() + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    auto stats = distributed.make_stats();
    distributed.accumulate(corpus, w * shard,
                           std::min((w + 1) * shard, corpus.docs.size()),
                           stats);
    broker.put("lda-iter-0", "worker/" + std::to_string(w),
               std::move(stats));
  }
  auto merged = distributed.make_stats();
  for (std::size_t w = 0; w < workers; ++w) {
    auto part = broker.get("lda-iter-0", "worker/" + std::to_string(w));
    ASSERT_TRUE(part.has_value());
    for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += (*part)[i];
  }
  distributed.m_step(merged);

  for (std::size_t k = 0; k < lcfg.topics; ++k) {
    for (std::size_t w = 0; w < corpus.vocab; ++w) {
      EXPECT_NEAR(distributed.beta(k, w), serial.beta(k, w), 1e-12)
          << "topic " << k << " word " << w;
    }
  }
  EXPECT_EQ(broker.stats().puts, workers);
  EXPECT_EQ(broker.stats().hits, workers);
}

TEST(Integration, MummiStyleCampaignSchedulesRealMdJobs) {
  // MuMMI schedules thousands of micro-scale MD jobs (Section 4.6 + 4.7):
  // derive job durations from a *real* MD step measurement, then drive
  // the scheduler with them.
  core::Rng rng(5);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 8, 0.6, 1.0, rng);
  auto gpu = core::make_device(hsim::machines::v100());
  auto cpu = core::make_cpu();
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), {});
  const double t0 = gpu.simulated_time();
  for (int s = 0; s < 20; ++s) sim.step();
  const double sec_per_step = (gpu.simulated_time() - t0) / 20.0;
  ASSERT_GT(sec_per_step, 0.0);

  // Each campaign job = 50k steps +- spread.
  std::vector<sched::Job> jobs;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const double steps = 50000.0 * rng.uniform(0.5, 2.0);
    jobs.push_back({i, 0.0, steps * sec_per_step, steps * sec_per_step, 1});
  }
  sched::Simulator scheduler({4, sched::Policy::SjfQuota, 0.0, 0});
  auto m = scheduler.run(jobs);
  EXPECT_EQ(m.completed, 400u);
  EXPECT_GT(m.utilization, 0.95);  // a batch campaign keeps GPUs packed
}

TEST(Integration, TopOptCampaignDurationsFeedScheduler) {
  // The Opt activity end-to-end: per-design FE-solve cost from the real
  // matrix-free solver (CG iterations vary with the evolving design),
  // scheduled as a batch.
  auto ctx = core::make_device(hsim::machines::v100());
  topopt::TopOptConfig cfg;
  cfg.nelx = 16;
  cfg.nely = 8;
  topopt::TopOpt opt(ctx, cfg);
  std::vector<sched::Job> jobs;
  double prev_time = 0.0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    opt.iterate();
    const double dur = ctx.simulated_time() - prev_time;
    prev_time = ctx.simulated_time();
    ASSERT_GT(dur, 0.0);
    jobs.push_back({i, 0.0, dur, dur, 1});
  }
  sched::Simulator scheduler({2, sched::Policy::Sjf, 0.0, 0});
  auto m = scheduler.run(jobs);
  EXPECT_EQ(m.completed, 12u);
  // Conservation: utilization * gpus * makespan = total simulated work.
  double total = 0.0;
  for (const auto& j : jobs) total += j.duration;
  EXPECT_NEAR(m.utilization * 2.0 * m.makespan, total, 1e-9 * total);
}

TEST(Integration, SierraNodeDayOneWorkloadComparison) {
  // "Running the complete application workload ... well before system
  // acceptance": run three mini-apps under one device context and compare
  // the aggregate on the EA system (P100) vs the final system (V100) --
  // the final system must be uniformly faster.
  auto run_on = [](hsim::MachineModel machine) {
    auto ctx = core::make_device(std::move(machine));
    // Seismic step.
    {
      stencil::WaveSolver s(ctx, 24, 24, 24, 1.0, 1.0, {});
      const double dt = s.stable_dt();
      for (int k = 0; k < 5; ++k) s.step(dt);
    }
    // MD burst.
    {
      core::Rng rng(7);
      md::Particles p;
      md::Box box;
      md::init_lattice(p, box, 6, 0.7, 1.0, rng);
      auto cpu = core::make_cpu();
      md::Simulation<md::LennardJones> sim(
          ctx, cpu, std::move(p), box, md::LennardJones(1.0, 1.0, 2.5), {});
      for (int s = 0; s < 10; ++s) sim.step();
    }
    // Design-solver burst.
    {
      topopt::TopOptConfig cfg;
      cfg.nelx = 12;
      cfg.nely = 6;
      topopt::TopOpt opt(ctx, cfg);
      opt.iterate();
    }
    return ctx.simulated_time();
  };
  const double ea = run_on(hsim::machines::p100());
  const double final_system = run_on(hsim::machines::v100());
  EXPECT_LT(final_system, ea);
  EXPECT_GT(final_system, 0.3 * ea);  // same generation class, not 10x
}

}  // namespace
