// Edge cases and failure injection: empty inputs, singular systems,
// non-convergence reporting, degenerate configurations. A library a
// downstream user adopts must fail loudly and predictably, not crash.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/amg.hpp"
#include "beamline/fft.hpp"
#include "core/coe.hpp"
#include "kinetics/solver.hpp"
#include "la/la.hpp"
#include "ode/ode.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace coe;

TEST(EdgeCase, EmptyForallAndReduction) {
  auto ctx = core::make_device();
  ctx.forall(0, {1.0, 8.0}, [](std::size_t) { FAIL() << "body ran"; });
  EXPECT_EQ(ctx.counters().launches, 1u);  // launch still counted
  EXPECT_DOUBLE_EQ(ctx.counters().flops, 0.0);
  EXPECT_DOUBLE_EQ(
      ctx.reduce_sum(0, {}, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(EdgeCase, BufferOfZeroElements) {
  auto ctx = core::make_device();
  core::Buffer<double> buf(ctx, 0);
  EXPECT_EQ(buf.size(), 0u);
  (void)buf.device_read();
  (void)buf.host_read();
  EXPECT_EQ(ctx.counters().transfers, 0u);
}

TEST(EdgeCase, PoolHandlesNullAndHugeClasses) {
  core::MemoryPool pool;
  pool.deallocate(nullptr, 100);  // no-op
  void* p = pool.allocate(std::size_t{1} << 26);  // 64 MiB class
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, std::size_t{1} << 26);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
  pool.release();
  EXPECT_EQ(pool.stats().backing_allocs, 1u);
}

TEST(EdgeCase, SingularLuReportsNotOk) {
  la::DenseMatrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // rank 2 of 4
  la::LuFactor lu(a);
  EXPECT_FALSE(lu.ok());
}

TEST(EdgeCase, CgReportsNonConvergenceHonestly) {
  // An indefinite matrix breaks CG's assumptions: the result must say
  // converged = false rather than pretending.
  auto a = la::CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 1, -1.0}});
  std::vector<double> b{1.0, 1.0}, x(2, 0.0);
  auto ctx = core::make_seq();
  la::CsrOperator op(a);
  la::IdentityPreconditioner id;
  auto res = la::cg(ctx, op, id, b, x, {3, 1e-14, 0.0});
  // Either it solved the (diagonal) system exactly or reported failure;
  // it must not report convergence with a bad residual.
  if (res.converged) {
    std::vector<double> r(2);
    a.spmv(ctx, x, r);
    EXPECT_NEAR(r[0], 1.0, 1e-10);
    EXPECT_NEAR(r[1], 1.0, 1e-10);
  }
}

TEST(EdgeCase, GmresOnIdentityConvergesImmediately) {
  auto a = la::CsrMatrix::from_triplets(3, 3, {{0, 0, 1.0},
                                               {1, 1, 1.0},
                                               {2, 2, 1.0}});
  std::vector<double> b{1.0, 2.0, 3.0}, x(3, 0.0);
  auto ctx = core::make_seq();
  la::CsrOperator op(a);
  la::IdentityPreconditioner id;
  auto res = la::gmres(ctx, op, id, b, x, 5, {50, 1e-12, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2u);
  EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(EdgeCase, AmgOnDiagonalMatrix) {
  // No strong connections anywhere: coarsening stalls gracefully and the
  // "hierarchy" is a single level with a direct solve.
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < 32; ++i) t.push_back({i, i, 2.0 + double(i)});
  auto a = la::CsrMatrix::from_triplets(32, 32, t);
  amg::BoomerAmg solver(a, {});
  EXPECT_EQ(solver.num_levels(), 1u);
  std::vector<double> b(32, 1.0), x(32, 0.0);
  auto ctx = core::make_seq();
  solver.solve(ctx, b, x, 1e-12, 10);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(x[i], 1.0 / (2.0 + double(i)), 1e-10);
  }
}

TEST(EdgeCase, FftSizeOneAndTwo) {
  auto ctx = core::make_seq();
  std::vector<beamline::cplx> one{beamline::cplx(3.0, -1.0)};
  beamline::fft(ctx, one, false);
  EXPECT_DOUBLE_EQ(one[0].real(), 3.0);
  std::vector<beamline::cplx> two{beamline::cplx(1.0, 0.0),
                                  beamline::cplx(2.0, 0.0)};
  beamline::fft(ctx, two, false);
  EXPECT_NEAR(two[0].real(), 3.0, 1e-14);
  EXPECT_NEAR(two[1].real(), -1.0, 1e-14);
}

TEST(EdgeCase, SchedulerEmptyAndSingleJob) {
  sched::Simulator sim({4, sched::Policy::Sjf, 0.0, 0});
  auto empty = sim.run({});
  EXPECT_EQ(empty.completed, 0u);
  EXPECT_DOUBLE_EQ(empty.makespan, 0.0);
  auto one = sim.run({sched::Job{0, 5.0, 2.0, 2.0, 1}});
  EXPECT_EQ(one.completed, 1u);
  EXPECT_DOUBLE_EQ(one.makespan, 7.0);  // waits for its own arrival
  EXPECT_DOUBLE_EQ(one.mean_wait, 0.0);
}

TEST(EdgeCase, BdfZeroLengthIntervalIsIdentity) {
  auto ctx = core::make_seq();
  struct Zero final : ode::OdeRhs {
    void eval(double, const ode::NVector&, ode::NVector& ydot) override {
      ydot.fill(0.0);
    }
  } rhs;
  ode::NVector y(ctx, 3, 2.5);
  ode::Bdf bdf;
  auto stats = bdf.integrate(rhs, nullptr, 1.0, 1.0, y);
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_DOUBLE_EQ(y.data()[0], 2.5);
}

TEST(EdgeCase, KineticsTwoLevelAnalytic) {
  // A 2-level collisional-only system has the closed-form Boltzmann
  // steady state; the solver must hit it exactly.
  kinetics::AtomicModel m;
  m.energy = {0.0, 0.5};
  m.weight = {2.0, 8.0};
  m.transitions.push_back({0, 1, 0.3, false});
  kinetics::Zone z{0.7, 1.3};
  auto pops = kinetics::solve_zone(m, z, kinetics::SolveMethod::DenseDirect);
  const double ratio = (m.weight[1] / m.weight[0]) * std::exp(-0.5 / z.te);
  EXPECT_NEAR(pops[1] / pops[0], ratio, 1e-10);
  EXPECT_NEAR(pops[0] + pops[1], 1.0, 1e-12);
}

TEST(EdgeCase, TimelineEmptyReport) {
  hsim::Timeline t;
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
  const auto s = t.report("empty");
  EXPECT_NE(s.find("total"), std::string::npos);
}

TEST(EdgeCase, UnifiedBufferSmallerThanOnePage) {
  auto ctx = core::make_device();
  core::UnifiedBuffer<double> buf(ctx, 16);  // 128 B << 64 KiB
  EXPECT_EQ(buf.pages(), 1u);
  buf.device_touch(0, 16);
  EXPECT_EQ(ctx.counters().transfers, 1u);
  buf.device_touch(4, 8);  // same page: free
  EXPECT_EQ(ctx.counters().transfers, 1u);
}

}  // namespace
