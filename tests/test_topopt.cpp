// Tests for the Opt topology-optimization module: element stiffness
// sanity, matrix-free vs assembled equivalence, optimization progress,
// volume constraint, and the texture-cache byte model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "topopt/simp.hpp"

namespace {

using namespace coe;

TEST(ElementStiffness, SymmetricPositiveSemidefinite) {
  const double* ke = topopt::TopOpt::element_stiffness();
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(ke[i * 8 + j], ke[j * 8 + i], 1e-14);
    }
  }
  // Rigid-body translation in x lies in the null space.
  for (int i = 0; i < 8; ++i) {
    double s = 0.0;
    for (int j = 0; j < 8; j += 2) s += ke[i * 8 + j];
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
  // Diagonal positive.
  for (int i = 0; i < 8; ++i) EXPECT_GT(ke[i * 8 + i], 0.0);
}

TEST(TopOpt, MatrixFreeMatchesAssembled) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig cfg;
  cfg.nelx = 6;
  cfg.nely = 4;
  topopt::TopOpt opt(ctx, cfg);
  auto a = opt.assemble();
  core::Rng rng(3);
  std::vector<double> u(opt.num_dofs()), y1(opt.num_dofs()),
      y2(opt.num_dofs());
  for (auto& v : u) v = rng.uniform(-1.0, 1.0);
  opt.apply_stiffness(u, y1);
  a.spmv(ctx, u, y2);
  // The assembled operator eliminated fixed columns too, matching the
  // matrix-free constrained semantics (identity on fixed dofs).
  for (std::size_t d = 0; d < u.size(); ++d) {
    EXPECT_NEAR(y1[d], y2[d], 1e-10) << "dof " << d;
  }
}

TEST(TopOpt, ComplianceDecreasesAndVolumeHolds) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig cfg;
  cfg.nelx = 24;
  cfg.nely = 12;
  topopt::TopOpt opt(ctx, cfg);
  auto infos = opt.run(25);
  EXPECT_LT(infos.back().compliance, 0.7 * infos.front().compliance);
  for (const auto& it : infos) {
    EXPECT_NEAR(it.volume, cfg.volfrac, 0.01);
    EXPECT_GT(it.cg_iters, 0u);
  }
}

TEST(TopOpt, DesignBecomesNearlyBinary) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig cfg;
  cfg.nelx = 24;
  cfg.nely = 12;
  topopt::TopOpt opt(ctx, cfg);
  opt.run(40);
  std::size_t decided = 0;
  for (double x : opt.densities()) {
    decided += (x > 0.8 || x < 0.2);
  }
  EXPECT_GT(decided, opt.num_elements() / 2);
}

TEST(TopOpt, MaterialConnectsSupportToLoad) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig cfg;
  cfg.nelx = 30;
  cfg.nely = 10;
  topopt::TopOpt opt(ctx, cfg);
  opt.run(40);
  // Every column of the cantilever must carry some material -- otherwise
  // the load path is broken.
  for (std::size_t ex = 0; ex < cfg.nelx; ++ex) {
    double colmax = 0.0;
    for (std::size_t ey = 0; ey < cfg.nely; ++ey) {
      colmax = std::max(colmax, opt.density(ex, ey));
    }
    EXPECT_GT(colmax, 0.5) << "column " << ex;
  }
}

TEST(TopOpt, TextureCacheShrinksModeledBytes) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig plain;
  topopt::TopOptConfig tex;
  tex.texture_cache = true;
  topopt::TopOpt a(ctx, plain), b(ctx, tex);
  EXPECT_GT(a.bytes_per_element(), b.bytes_per_element());
}

TEST(TopOpt, StiffnessDiagonalMatchesAssembled) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig cfg;
  cfg.nelx = 5;
  cfg.nely = 3;
  topopt::TopOpt opt(ctx, cfg);
  auto d1 = opt.stiffness_diagonal();
  auto d2 = opt.assemble().diagonal();
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_NEAR(d1[i], d2[i], 1e-12);
  }
}

}  // namespace
